(** Benchmark driver: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md's experiment index).

    Usage:
      dune exec bench/main.exe                    # everything, quick scale
      dune exec bench/main.exe -- fig5            # one experiment
      dune exec bench/main.exe -- fig6 fig9
      dune exec bench/main.exe -- --full          # paper-scale op counts
      dune exec bench/main.exe -- --json out.json # machine-readable results

    Experiments: fig5 fig6 fig7 fig8 fig9 nullcall ablations complexity
    micro stats rings.

    Every experiment also reports its headline numbers to the shared
    recorder; [--json PATH] (or BENCH_JSON=PATH) flushes them as a JSON
    array of {run, metric, value, unit} rows on exit — the bench.json
    artifact CI uploads. *)

let all = [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "nullcall"; "ablations";
            "complexity"; "micro"; "stats"; "rings" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let json_path, args =
    let rec pick acc = function
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> pick (a :: acc) rest
      | [] -> (Sys.getenv_opt "BENCH_JSON", List.rev acc)
    in
    pick [] args
  in
  let chosen = List.filter (fun a -> a <> "--full") args in
  let chosen = if chosen = [] then all else chosen in
  let unknown = List.filter (fun c -> not (List.mem c all)) chosen in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
      (String.concat " " unknown) (String.concat " " all);
    exit 2
  end;
  let ops = if full then 200_000 else 40_000 in
  let want x = List.mem x chosen in
  if want "fig5" then Fig5.run ();
  let figs =
    List.filter_map
      (fun f ->
        match f with
        | "fig6" -> Some 6
        | "fig7" -> Some 7
        | "fig8" -> Some 8
        | "fig9" -> Some 9
        | _ -> None)
      chosen
  in
  if figs <> [] then ignore (Throughput.run ~ops ~only:figs ());
  if want "nullcall" then Nullcall.run ();
  if want "ablations" then Ablations.run ();
  if want "complexity" then Complexity.run ();
  if want "micro" then Micro.run ();
  if want "stats" then Stats.run ~ops:(ops / 4) ();
  if want "rings" then Rings.run ~ops:(ops / 2) ();
  match json_path with
  | Some path -> Scenarios.write_json path
  | None -> ()
