(** Real wall-clock microbenchmarks (bechamel) of the actual code
    paths, complementing the virtual-time results: what the substrate
    itself costs on this machine. *)

open Bechamel
open Toolkit

module St =
  Mc_core.Store.Make (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc)
    (Platform.Real_sync)

(* The same store wrapped in the lock-order validator: its overhead is
   the price of running the race-hunting harness in real time. *)
module LSt =
  Mc_core.Store.Make (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc)
    (Platform.Lockdep.Make (Platform.Real_sync))

let bench_cfg ~bump_interval_s =
  { Mc_core.Store.default_config with hashpower = 12; lock_count = 64;
    lru_count = 8; stats_slots = 8; bump_interval_s }

let make_region () =
  let reg =
    Shm.Region.create ~name:"micro-kv" ~size:(32 * 1024 * 1024) ~pkey:0 ()
  in
  (reg, Ralloc.create reg)

let make_store ?(bump_interval_s = 60) () =
  let reg, heap = make_region () in
  let st =
    St.create
      ~mem:(Mc_core.Shared_memory.of_region reg)
      ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
      (bench_cfg ~bump_interval_s)
  in
  ignore (St.set st "bench-key" (String.make 128 'v'));
  (reg, heap, st)

let make_lockdep_store () =
  let reg, heap = make_region () in
  let st =
    LSt.create
      ~mem:(Mc_core.Shared_memory.of_region reg)
      ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
      (bench_cfg ~bump_interval_s:60)
  in
  ignore (LSt.set st "bench-key" (String.make 128 'v'));
  st

let tests () =
  let reg, heap, _ = make_store () in
  let _, _, st = make_store () in
  (* bump_interval_s = 0 restores the historical bump-on-every-hit
     behaviour; the default rate-limits LRU movement memcached-style *)
  let _, _, st_eager = make_store ~bump_interval_s:0 () in
  let lst = make_lockdep_store () in
  [ Test.make ~name:"murmur3_32(16B key)"
      (Staged.stage (fun () -> Mc_core.Hash.murmur3_32 "someuserkey12345"));
    Test.make ~name:"pkru read+wrpkru"
      (Staged.stage (fun () ->
         let v = Pku.Pkru.read () in
         Pku.Pkru.wrpkru v));
    Test.make ~name:"region read_i64 (checked)"
      (Staged.stage (fun () -> Shm.Region.read_i64 reg 4096));
    Test.make ~name:"ralloc alloc+free 64B"
      (Staged.stage (fun () ->
         let o = Ralloc.alloc heap 64 in
         Ralloc.free heap o));
    Test.make ~name:"store get (rate-limited bump)"
      (Staged.stage (fun () -> St.get st "bench-key"));
    Test.make ~name:"store get (bump every hit)"
      (Staged.stage (fun () -> St.get st_eager "bench-key"));
    Test.make ~name:"store get (lockdep wrapped)"
      (Staged.stage (fun () -> LSt.get lst "bench-key"));
    Test.make ~name:"store set 128B (real time)"
      (Staged.stage (fun () -> St.set st "bench-key" (String.make 128 'w'))) ]

let run () =
  Scenarios.header "Real wall-clock microbenchmarks (bechamel, this machine)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Printf.printf "%-40s %10.1f ns/op\n" name est;
        Scenarios.note ~run:"micro" ~metric:name ~unit_:"ns/op" est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results
