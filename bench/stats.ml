(** Telemetry snapshot: domain-crossing counts per YCSB workload mix
    and a full [stats] dump of the protected-library store.

    The crossing counts ground EXPERIMENTS.md's table: every client
    operation enters the library through exactly one trampoline, so
    crossings/op should sit at ~1.0 for any read/update mix — the
    paper's Figure 5 latencies are per-crossing costs, and the mix
    (YCSB A 50/50, B 95/5, C 100/0) moves which ops pay them, not how
    many crossings occur. The final STAT block is the snapshot the CI
    workflow uploads as an artifact. *)

open Scenarios
module C = Telemetry.Counters

let mixes = [ ("A", 0.5); ("B", 0.95); ("C", 1.0) ]

let records = 20_000

let workload (tag, read_proportion) ~ops =
  Ycsb.Workload.make
    ~name:("ycsb-" ^ tag)
    ~record_count:records ~operation_count:ops ~read_proportion
    ~field_length:128 ()

let run ~ops () =
  header "Telemetry: crossings per YCSB workload + stats snapshot";
  let plib =
    make_plib ~protection:Hodor.Library.Protected ~size:(64 lsl 20)
      ~hashpower:15 ()
  in
  load_plib plib (workload (List.hd mixes) ~ops);
  pf "%-10s %10s %12s %14s %12s\n" "workload" "ops" "crossings"
    "crossings/op" "pkru wr/op";
  List.iter
    (fun mix ->
      let w = workload mix ~ops in
      (* Per-workload window: the shared-heap counters are cumulative,
         so zero them between runs. *)
      C.reset ();
      Telemetry.Timers.reset ();
      ignore (plib_point ~plib ~threads:4 w);
      let enters = C.read C.Id.hodor_enter in
      let wrpkru = C.read C.Id.pkru_writes in
      pf "%-10s %10d %12d %14.3f %12.3f\n"
        (fst mix) ops enters
        (float_of_int enters /. float_of_int ops)
        (float_of_int wrpkru /. float_of_int ops);
      pf "crossings.ycsb_%s %d\n" (fst mix) enters;
      note ~run:"stats" ~metric:("crossings_per_op_ycsb_" ^ fst mix)
        ~unit_:"crossings/op" (float_of_int enters /. float_of_int ops))
    mixes;
  (* Batch plane: the same read-heavy mix driven through the batched
     op path at B ops per crossing. crossings/op = 1/B up to the final
     partial batch each thread flushes; pkru writes/op = 2/B. The
     greppable [batch.*] lines are what the CI gate asserts on. *)
  header "Batch plane: crossings amortized over batch size (YCSB B)";
  pf "%-8s %10s %12s %14s %12s %12s %10s\n" "batch" "ops" "crossings"
    "crossings/op" "pkru wr/op" "ktps" "mean_B";
  let base_ktps = ref 0.0 in
  List.iter
    (fun b ->
      C.reset ();
      Telemetry.Timers.reset ();
      Telemetry.Span.reset ();
      Telemetry.Contention.reset ();
      let res =
        plib_batch_point ~plib ~threads:4 ~batch:b (workload ("B", 0.95) ~ops)
      in
      let enters = C.read C.Id.hodor_enter in
      let wrpkru = C.read C.Id.pkru_writes in
      let bcalls = C.read C.Id.hodor_batch_calls in
      let bops = C.read C.Id.hodor_batch_ops in
      let ktps = Ycsb.Runner.throughput_ktps res in
      if b = 1 then base_ktps := ktps;
      pf "%-8d %10d %12d %14.4f %12.4f %12.1f %10.2f\n" b ops enters
        (float_of_int enters /. float_of_int ops)
        (float_of_int wrpkru /. float_of_int ops)
        ktps
        (float_of_int bops /. float_of_int (max 1 bcalls));
      pf "batch.crossings_per_op.B%d %.4f\n" b
        (float_of_int enters /. float_of_int ops);
      pf "batch.pkru_per_op.B%d %.4f\n" b
        (float_of_int wrpkru /. float_of_int ops);
      pf "batch.ktps.B%d %.1f\n" b ktps;
      if b > 1 then pf "batch.speedup.B%d %.3f\n" b (ktps /. !base_ktps);
      note ~run:"batch" ~metric:(Printf.sprintf "crossings_per_op_B%d" b)
        ~unit_:"crossings/op" (float_of_int enters /. float_of_int ops);
      note ~run:"batch" ~metric:(Printf.sprintf "ktps_B%d" b) ~unit_:"ktps"
        ktps;
      (* Span-level attribution for this window: the crossing phase's
         self time per op shrinks ~1/B while the store phase holds
         steady — the per-phase view of why batching wins. *)
      let phases = Telemetry.Span.phase_report () in
      let e2e = Telemetry.Span.e2e_report () in
      let self_of name =
        match List.assoc_opt name phases with
        | Some s -> s
        | None ->
          { Telemetry.Span.p_count = 0; p_self_ns = 0; p_p50_ns = 0;
            p_p99_ns = 0 }
      in
      let crossing = self_of "crossing" and store = self_of "store" in
      pf "span.crossing_self_per_op_ns.B%d %.1f\n" b
        (float_of_int crossing.Telemetry.Span.p_self_ns /. float_of_int ops);
      pf "span.crossing_p99_ns.B%d %d\n" b crossing.Telemetry.Span.p_p99_ns;
      pf "span.store_p99_ns.B%d %d\n" b store.Telemetry.Span.p_p99_ns;
      pf "span.crossing_share.B%d %.4f\n" b
        (float_of_int crossing.Telemetry.Span.p_self_ns
         /. float_of_int (max 1 e2e.Telemetry.Span.p_self_ns)))
    [ 1; 8; 32 ];

  (* Phase-attribution JSON (the CI artifact) and a trace-tree sample
     from the last (B=32) window. *)
  pf "phases.json %s\n" (Telemetry.Span.phases_json ());
  (match Telemetry.Contention.kvs ~k:4 () with
   | [] -> ()
   | kvs -> List.iter (fun (k, v) -> pf "STAT %s %s\n" k v) kvs);
  pf "--- trace-tree sample ---\n";
  List.iter
    (fun tr -> pf "%s" (Telemetry.Span.render_tree tr))
    (Telemetry.Span.traces ~n:2 ());
  pf "--- end trace-tree ---\n";

  pf "\nstats snapshot (last workload window):\n";
  let kvs =
    in_vm (fun () -> Plib.stats plib) @ C.boundary_kvs ()
    @ Telemetry.Timers.kvs ()
  in
  List.iter (fun (k, v) -> pf "STAT %s %s\n" k v) kvs;

  (* Seqlock read path: the same read-only mix against the same store
     geometry, once with every get taking its stripe lock and once
     optimistic. Few stripes (8) so the zipfian hot keys actually
     collide — the point is how much stripe wait the optimistic path
     makes disappear, which is what the CI gate asserts (ratio <=
     0.5). *)
  header "Seqlock read path: stripe wait, locked vs optimistic (YCSB B/C)";
  let measure w ~optimistic =
    let plib =
      make_plib ~optimistic ~lock_count:8
        ~protection:Hodor.Library.Protected ~size:(32 lsl 20) ~hashpower:14 ()
    in
    load_plib plib w;
    C.reset ();
    Telemetry.Timers.reset ();
    Telemetry.Contention.reset ();
    let res = plib_point ~plib ~threads:8 w in
    let _, acqs, wait = Telemetry.Contention.totals () in
    (Ycsb.Runner.throughput_ktps res, acqs, wait)
  in
  pf "%-6s %-12s %12s %14s %12s\n" "mix" "read path" "ktps" "stripe acqs"
    "wait_ns";
  List.iter
    (fun (tag, rp) ->
      let w = workload (tag, rp) ~ops in
      let ktps_l, acqs_l, wait_l = measure w ~optimistic:false in
      let hits = C.read C.Id.opt_hits in
      let retries = C.read C.Id.opt_retries in
      let fallbacks = C.read C.Id.opt_fallbacks in
      let ktps_o, acqs_o, wait_o = measure w ~optimistic:true in
      let hits = C.read C.Id.opt_hits - hits in
      let retries = C.read C.Id.opt_retries - retries in
      let fallbacks = C.read C.Id.opt_fallbacks - fallbacks in
      pf "%-6s %-12s %12.1f %14d %12d\n" tag "locked" ktps_l acqs_l wait_l;
      pf "%-6s %-12s %12.1f %14d %12d\n" tag "optimistic" ktps_o acqs_o
        wait_o;
      let line fmt = pf ("optimistic." ^^ fmt ^^ ".ycsb_%s %s\n") in
      line "stripe_wait_total_ns.locked" tag (string_of_int wait_l);
      line "stripe_wait_total_ns.on" tag (string_of_int wait_o);
      line "wait_ratio" tag
        (Printf.sprintf "%.4f" (float_of_int wait_o /. float_of_int (max 1 wait_l)));
      line "ktps.locked" tag (Printf.sprintf "%.1f" ktps_l);
      line "ktps.on" tag (Printf.sprintf "%.1f" ktps_o);
      line "speedup" tag (Printf.sprintf "%.3f" (ktps_o /. ktps_l));
      line "hits" tag (string_of_int hits);
      line "retries" tag (string_of_int retries);
      line "fallbacks" tag (string_of_int fallbacks);
      line "hit_rate" tag
        (Printf.sprintf "%.4f"
           (float_of_int hits /. float_of_int (max 1 (hits + fallbacks))));
      note ~run:"optimistic" ~metric:("wait_ratio_ycsb_" ^ tag)
        ~unit_:"ratio"
        (float_of_int wait_o /. float_of_int (max 1 wait_l));
      note ~run:"optimistic" ~metric:("speedup_ycsb_" ^ tag) ~unit_:"ratio"
        (ktps_o /. ktps_l);
      (* unsuffixed aliases on the read-only mix: what the CI gate greps *)
      if tag = "C" then begin
        pf "optimistic.stripe_wait_total_ns.locked %d\n" wait_l;
        pf "optimistic.stripe_wait_total_ns.on %d\n" wait_o;
        pf "optimistic.wait_ratio %.4f\n"
          (float_of_int wait_o /. float_of_int (max 1 wait_l));
        pf "optimistic.hit_rate %.4f\n"
          (float_of_int hits /. float_of_int (max 1 (hits + fallbacks)))
      end)
    [ ("B", 0.95); ("C", 1.0) ]
