(** Ablations of the design choices §3.2 and §2 call out:

    - abl1: a single LRU list vs the hash-chosen multi-LRU ("we tried
      putting all items into a single list, but this caused
      unacceptable lock contention at high thread counts");
    - abl2: one statistics lock vs scattering statistics over the
      slots of a shared array;
    - abl3: trampoline-level copying of all arguments vs the manual
      copy-in of only security-sensitive ones (Figure 4). *)

open Scenarios

let threads_list = [ 1; 4; 8; 16; 24; 40 ]

let ops = 20_000

let workload () =
  Ycsb.Workload.make ~name:"ablation" ~record_count:100_000
    ~operation_count:ops ~read_proportion:0.5 ~field_length:128 ()

let sweep ~label plib =
  let w = workload () in
  load_plib plib w;
  pf "%-34s" label;
  List.iter
    (fun threads ->
      let r = plib_point ~plib ~threads w in
      pf " %8.0f" (Ycsb.Runner.throughput_ktps r);
      note ~run:"ablations"
        ~metric:(Printf.sprintf "%s_t%d" label threads)
        ~unit_:"ktps" (Ycsb.Runner.throughput_ktps r))
    threads_list;
  pf "\n"

let custom_plib_locks ~lock_count () =
  let owner = Simos.Process.make ~uid:1000 (fresh_name "bk-locks") in
  Plib.create
    ~store_cfg:{ (store_cfg ~hashpower:17) with lock_count }
    ~path:(fresh_name "/dev/shm/locks") ~size:(128 lsl 20) ~owner ()

let custom_plib ~lru_count ~single_stats_lock () =
  let owner = Simos.Process.make ~uid:1000 (fresh_name "bk-abl") in
  Plib.create
    ~store_cfg:
      { (store_cfg ~hashpower:17) with
        lru_count = (if lru_count = 0 then 64 else lru_count);
        single_stats_lock }
    ~path:(fresh_name "/dev/shm/abl") ~size:(128 lsl 20) ~owner ()

let run_lru () =
  header "Ablation abl1: single LRU list vs hash-chosen multi-LRU (KTPS)";
  pf "%-34s" "config \\ threads";
  List.iter (fun t -> pf " %8d" t) threads_list;
  pf "\n";
  sweep ~label:"lru_lists = 64 (paper's design)"
    (custom_plib ~lru_count:64 ~single_stats_lock:false ());
  sweep ~label:"lru_lists = 1 (rejected design)"
    (custom_plib ~lru_count:1 ~single_stats_lock:false ())

let run_stats () =
  header "Ablation abl2: scattered statistics vs one stats lock (KTPS)";
  pf "%-34s" "config \\ threads";
  List.iter (fun t -> pf " %8d" t) threads_list;
  pf "\n";
  sweep ~label:"scattered slots (paper's design)"
    (custom_plib ~lru_count:64 ~single_stats_lock:false ());
  sweep ~label:"single stats lock (rejected)"
    (custom_plib ~lru_count:64 ~single_stats_lock:true ())

(* The paper: "the overall system bottleneck becomes the
   synchronization employed in hash table critical sections" (§4.1).
   Sweep the item-lock stripe count, down to one global lock (early
   memcached's cache_lock). *)
let run_lock_striping () =
  header "Ablation abl4: item-lock striping (KTPS)";
  pf "%-34s" "config \\ threads";
  List.iter (fun t -> pf " %8d" t) threads_list;
  pf "\n";
  List.iter
    (fun lock_count ->
      sweep
        ~label:(Printf.sprintf "lock stripes = %d%s" lock_count
                  (if lock_count = 1024 then " (paper's design)"
                   else if lock_count = 1 then " (global lock)"
                   else ""))
        (custom_plib_locks ~lock_count ()))
    [ 1024; 16; 1 ]

let run_argcopy () =
  header "Ablation abl3: trampoline arg copying vs manual copy-in (us/op)";
  let measure ~copy_args =
    let owner = Simos.Process.make ~uid:1000 (fresh_name "bk-copy") in
    let plib =
      Plib.create ~copy_args ~store_cfg:(store_cfg ~hashpower:14)
        ~path:(fresh_name "/dev/shm/copy") ~size:(64 lsl 20) ~owner ()
    in
    in_vm (fun () ->
      ignore (Plib.set plib "key" (String.make 128 'v'));
      let iters = 500 in
      let key = Bytes.of_string "key" in
      let data = Bytes.make (5 * 1024) 'v' in
      let t0 = S.now_ns () in
      for _ = 1 to iters do
        (* exercise the raw bytes interface, where copying matters *)
        ignore (Plib.set_raw plib key data);
        ignore (Plib.get_raw plib key)
      done;
      (S.now_ns () - t0) / iters)
  in
  let manual = measure ~copy_args:false in
  let auto = measure ~copy_args:true in
  pf "manual copy-in of key only (paper): %6.2f us per set5KB+get\n" (us manual);
  pf "trampoline copies every argument:   %6.2f us per set5KB+get (+%.0f%%)\n"
    (us auto)
    (100.0 *. (float_of_int (auto - manual) /. float_of_int manual));
  note_i ~run:"ablations" ~metric:"argcopy_manual" manual;
  note_i ~run:"ablations" ~metric:"argcopy_trampoline" auto

let run () =
  run_lru ();
  run_stats ();
  run_lock_striping ();
  run_argcopy ()
