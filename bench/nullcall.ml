(** §2's motivating microbenchmark: an empty protected-library call
    (~40 ns round trip on the paper's machine) versus an empty message
    round trip over Unix-domain sockets (3.3-9.6 us minimum,
    depending on placement). *)

open Scenarios
module T = Transport.Sock.Make (Vm.Sync)

let iters = 2000

let empty_hodor ~protection () =
  let lib =
    Hodor.Library.create ~protection ~name:"null" ~owner_uid:0 ()
  in
  Hodor.Runtime.configure ~advance:S.advance ~now:S.now_ns;
  let r =
    in_vm (fun () ->
      let t0 = S.now_ns () in
      for _ = 1 to iters do
        (* Each call is its own trace root so the CI tracer-overhead
           gate exercises the full mint/attribute path per iteration. *)
        let root = Telemetry.Span.ingress ~op:"null" () in
        Hodor.Trampoline.call lib (fun () -> ());
        Telemetry.Span.finish root
      done;
      (S.now_ns () - t0) / iters)
  in
  Hodor.Library.release lib;
  r

(* Ping-pong over a raw pipe: the idle-peer case (context switch both
   ways) and the saturated case (peer already awake). *)
let empty_socket_rt () =
  in_vm (fun () ->
    let p = T.pipe () in
    let server =
      S.spawn ~name:"pong" (fun () ->
        try
          while true do
            let m = T.pipe_recv p.T.a2b in
            ignore m;
            T.pipe_send p.T.b2a "pong"
          done
        with S.Closed -> ())
    in
    let t0 = S.now_ns () in
    for _ = 1 to iters do
      T.pipe_send p.T.a2b "ping";
      ignore (T.pipe_recv p.T.b2a)
    done;
    let dt = (S.now_ns () - t0) / iters in
    S.close p.T.a2b;
    S.close p.T.b2a;
    S.join server;
    dt)

(* ---- vpkey multiplexing sweep ---------------------------------------- *)

(* Per-op cost of a tenant-scoped call as the tenant count crosses the
   hardware-slot capacity (12 by default): each op pays the same
   trampoline crossing plus, when its tenant's vkey was evicted since
   its last burst, the pkey_mprotect re-tags of a slot miss. Tenants
   are picked per 64-op burst with an 80/20 skew (connections serve a
   few hot tenants, a long tail of cold ones), as a cache in front of
   real traffic would see — uniform round-robin over 64 tenants would
   just measure LRU's cyclic worst case. *)
let tenant_burst = 64
let tenant_bursts = 96

let tenant_point ~tenants =
  Pku.Vpkey.reset ();
  let owner = Simos.Process.make ~uid:1000 (fresh_name "memcached-bk") in
  let path = fresh_name "/dev/shm/vpk" in
  let plib =
    Plib.create ~protection:Hodor.Library.Protected
      ~store_cfg:(store_cfg ~hashpower:12) ~path
      ~size:(8 * 1024 * 1024) ~owner ()
  in
  Hodor.Runtime.configure ~advance:S.advance ~now:S.now_ns;
  let res =
    in_vm (fun () ->
      Simos.Process.with_process owner (fun () ->
        let slots =
          Array.init tenants (fun i ->
            Plib.create_tenant plib ~name:(Printf.sprintf "t%02d" i)
              ~uid:1000 ())
        in
        Array.iter (fun s -> ignore (Plib.tenant_set plib s "k" "v")) slots;
        let hot = min tenants 4 in
        let pick r =
          if r mod 5 < 4 then slots.(r mod hot) else slots.(r mod tenants)
        in
        let binds0 = Pku.Vpkey.binds ()
        and misses0 = Pku.Vpkey.slot_misses () in
        let t0 = S.now_ns () in
        for r = 1 to tenant_bursts do
          let s = pick r in
          for _ = 1 to tenant_burst do
            ignore (Plib.tenant_get plib s "k")
          done
        done;
        let per_op =
          (S.now_ns () - t0) / (tenant_bursts * tenant_burst)
        in
        let binds = Pku.Vpkey.binds () - binds0
        and misses = Pku.Vpkey.slot_misses () - misses0 in
        (per_op, float_of_int misses /. float_of_int (max 1 binds))))
  in
  Simos.Sim_fs.unlink path;
  Hodor.Library.release (Plib.library plib);
  Pku.Vpkey.reset ();
  res

let tenant_sweep () =
  pf "\ntenant-scoped get, per-op cost vs tenant count (hw slot cap %d):\n"
    12;
  List.iter
    (fun n ->
      let ns, missrate = tenant_point ~tenants:n in
      pf "  %2d tenant%s: %5d ns/op   slot-miss rate %5.3f per bind\n" n
        (if n = 1 then " " else "s") ns missrate;
      pf "nullcall.vpkey_t%d_ns %d\n" n ns;
      pf "nullcall.vpkey_missrate_t%d %.3f\n" n missrate;
      note_i ~run:"nullcall" ~metric:(Printf.sprintf "vpkey_t%d" n) ns;
      note ~run:"nullcall" ~metric:(Printf.sprintf "vpkey_missrate_t%d" n)
        ~unit_:"miss/bind" missrate)
    [ 1; 4; 16; 64 ]

let run () =
  header "Null-call microbenchmark (paper section 2)";
  let hodor = empty_hodor ~protection:Hodor.Library.Protected () in
  let plain = empty_hodor ~protection:Hodor.Library.Unprotected () in
  let socket = empty_socket_rt () in
  pf "empty Hodor call round trip:        %5d ns   (paper: ~40 ns)\n" hodor;
  pf "empty plain-library call:           %5d ns\n" plain;
  pf "empty Unix-socket round trip:       %5d ns   (paper: 3300-9600 ns)\n"
    socket;
  pf "socket / hodor ratio:               %5.0fx    (paper: ~two orders of magnitude)\n"
    (float_of_int socket /. float_of_int hodor);
  (* Machine-readable lines for the CI overhead gate: virtual-time
     cost per call, greppable as "nullcall.<config>_ns <n>". *)
  pf "nullcall.hodor_ns %d\n" hodor;
  pf "nullcall.plain_ns %d\n" plain;
  pf "nullcall.socket_ns %d\n" socket;
  note_i ~run:"nullcall" ~metric:"hodor" hodor;
  note_i ~run:"nullcall" ~metric:"plain" plain;
  note_i ~run:"nullcall" ~metric:"socket" socket;
  tenant_sweep ()
