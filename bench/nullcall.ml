(** §2's motivating microbenchmark: an empty protected-library call
    (~40 ns round trip on the paper's machine) versus an empty message
    round trip over Unix-domain sockets (3.3-9.6 us minimum,
    depending on placement). *)

open Scenarios
module T = Transport.Sock.Make (Vm.Sync)

let iters = 2000

let empty_hodor ~protection () =
  let lib =
    Hodor.Library.create ~protection ~name:"null" ~owner_uid:0 ()
  in
  Hodor.Runtime.configure ~advance:S.advance ~now:S.now_ns;
  let r =
    in_vm (fun () ->
      let t0 = S.now_ns () in
      for _ = 1 to iters do
        (* Each call is its own trace root so the CI tracer-overhead
           gate exercises the full mint/attribute path per iteration. *)
        let root = Telemetry.Span.ingress ~op:"null" () in
        Hodor.Trampoline.call lib (fun () -> ());
        Telemetry.Span.finish root
      done;
      (S.now_ns () - t0) / iters)
  in
  Hodor.Library.release lib;
  r

(* Ping-pong over a raw pipe: the idle-peer case (context switch both
   ways) and the saturated case (peer already awake). *)
let empty_socket_rt () =
  in_vm (fun () ->
    let p = T.pipe () in
    let server =
      S.spawn ~name:"pong" (fun () ->
        try
          while true do
            let m = T.pipe_recv p.T.a2b in
            ignore m;
            T.pipe_send p.T.b2a "pong"
          done
        with S.Closed -> ())
    in
    let t0 = S.now_ns () in
    for _ = 1 to iters do
      T.pipe_send p.T.a2b "ping";
      ignore (T.pipe_recv p.T.b2a)
    done;
    let dt = (S.now_ns () - t0) / iters in
    S.close p.T.a2b;
    S.close p.T.b2a;
    S.join server;
    dt)

let run () =
  header "Null-call microbenchmark (paper section 2)";
  let hodor = empty_hodor ~protection:Hodor.Library.Protected () in
  let plain = empty_hodor ~protection:Hodor.Library.Unprotected () in
  let socket = empty_socket_rt () in
  pf "empty Hodor call round trip:        %5d ns   (paper: ~40 ns)\n" hodor;
  pf "empty plain-library call:           %5d ns\n" plain;
  pf "empty Unix-socket round trip:       %5d ns   (paper: 3300-9600 ns)\n"
    socket;
  pf "socket / hodor ratio:               %5.0fx    (paper: ~two orders of magnitude)\n"
    (float_of_int socket /. float_of_int hodor);
  (* Machine-readable lines for the CI overhead gate: virtual-time
     cost per call, greppable as "nullcall.<config>_ns <n>". *)
  pf "nullcall.hodor_ns %d\n" hodor;
  pf "nullcall.plain_ns %d\n" plain;
  pf "nullcall.socket_ns %d\n" socket
