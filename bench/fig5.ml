(** Figure 5: single-threaded operation latency for the original
    (socket) memcached versus the protected library with and without
    Hodor protection, with speedups. *)

open Scenarios

type row = {
  label : string;
  paper : float * float * float;  (** us: memcached, plib hodor, plib none *)
  measure : [ `Sock of Sock.t | `Plib of Plib.t ] -> int;
  (** mean ns per op in the given configuration *)
}

let iters = 300

let key128 = "latency-key-128"

let key5k = "latency-key-5k"

let keyctr = "latency-counter"

let val128 = String.make 128 'x'

let val5k = String.make (5 * 1024) 'y'

(* Time [f] [iters] times on the virtual clock; untimed setup can run
   inside the loop because only the [f] window is accumulated. *)
let timed ?(setup = fun _ -> ()) f =
  let acc = ref 0 in
  for i = 1 to iters do
    setup i;
    let t0 = S.now_ns () in
    f i;
    acc := !acc + (S.now_ns () - t0)
  done;
  !acc / iters

let api_get c k =
  match c with
  | `Sock s -> ignore (Sock.get s k)
  | `Plib p -> ignore (Plib.get p k)

let api_set c k v =
  match c with
  | `Sock s -> ignore (Sock.set s k v)
  | `Plib p -> ignore (Plib.set p k v)

let api_delete c k =
  match c with
  | `Sock s -> ignore (Sock.delete s k)
  | `Plib p -> ignore (Plib.delete p k)

let api_incr c k =
  match c with
  | `Sock s -> ignore (Sock.incr s k 1L)
  | `Plib p -> ignore (Plib.incr p k 1L)

let rows : row list =
  [ { label = "Get 128 B"; paper = (13.0, 0.67, 0.64);
      measure = (fun c -> timed (fun _ -> api_get c key128)) };
    { label = "Get 5 KB"; paper = (13.0, 0.67, 0.64);
      measure = (fun c -> timed (fun _ -> api_get c key5k)) };
    { label = "Set 128 B"; paper = (13.0, 1.2, 1.2);
      measure = (fun c -> timed (fun _ -> api_set c key128 val128)) };
    { label = "Set 5 KB"; paper = (17.0, 1.5, 1.5);
      measure = (fun c -> timed (fun _ -> api_set c key5k val5k)) };
    { label = "Delete"; paper = (10.0, 0.21, 0.18);
      measure =
        (fun c ->
          timed
            ~setup:(fun _ -> api_set c "del-key" "gone")
            (fun _ -> api_delete c "del-key")) };
    { label = "Increment"; paper = (54.0, 1.6, 1.5);
      measure = (fun c -> timed (fun _ -> api_incr c keyctr)) } ]

let preload c =
  api_set c key128 val128;
  api_set c key5k val5k;
  (match c with
   | `Sock s -> ignore (Sock.set s keyctr "1000")
   | `Plib p -> ignore (Plib.set p keyctr "1000"))

(* One simulation per configuration: measure all rows in it. *)
let measure_sock () =
  let store = make_baseline_store ~mem_limit:(64 lsl 20) ~hashpower:16 () in
  let name = fresh_name "mc-fig5" in
  in_vm (fun () ->
    let srv =
      Srv.start
        ~cfg:{ Mc_server.Server.default_config with workers = 4 }
        ~prebuilt:store ~name ()
    in
    let conn = Sock.connect ~name () in
    preload (`Sock conn);
    let r = List.map (fun row -> row.measure (`Sock conn)) rows in
    Srv.stop srv;
    r)

let measure_plib ~protection () =
  let plib = make_plib ~protection ~size:(64 lsl 20) ~hashpower:16 () in
  in_vm (fun () ->
    preload (`Plib plib);
    List.map (fun row -> row.measure (`Plib plib)) rows)

let run () =
  header
    "Figure 5: operation latency (single thread), us and speedup vs memcached";
  let sock = measure_sock () in
  let hodor = measure_plib ~protection:Hodor.Library.Protected () in
  let plain = measure_plib ~protection:Hodor.Library.Unprotected () in
  pf "%-12s | %-18s | %-22s | %-22s\n" "Op" "Memcached" "Plib w/Hodor"
    "Plib no-Hodor";
  pf "%-12s | %-18s | %-22s | %-22s\n" "" "meas (paper)" "meas (paper)  speedup"
    "meas (paper)  speedup";
  List.iteri
    (fun i row ->
      let m = List.nth sock i and h = List.nth hodor i and p = List.nth plain i in
      let pm, ph, pp = row.paper in
      pf "%-12s | %6.2f (%5.1f)    | %6.2f (%5.2f)  %5.1fx | %6.2f (%5.2f)  %5.1fx\n"
        row.label (us m) pm (us h) ph
        (float_of_int m /. float_of_int h)
        (us p) pp
        (float_of_int m /. float_of_int p);
      note_i ~run:"fig5" ~metric:(row.label ^ "_sock") m;
      note_i ~run:"fig5" ~metric:(row.label ^ "_hodor") h;
      note_i ~run:"fig5" ~metric:(row.label ^ "_plain") p)
    rows;
  pf "\nPaper: 11-56x latency reduction; empty Hodor call ~40 ns.\n"
