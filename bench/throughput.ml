(** Figures 6-9: throughput (KTPS) vs client thread count, four curves
    per figure — original memcached with 4 and 8 server threads, and
    the protected library with and without Hodor — on the modeled
    10-core/20-hyperthread machine.

    The dataset is loaded once per configuration and reused across
    thread counts (threads die with each simulation; the store object
    does not). *)

open Scenarios

type figure = {
  fig_no : int;
  small_value : bool;
  read_heavy : bool;
}

let figures =
  [ { fig_no = 6; small_value = true; read_heavy = false };
    { fig_no = 7; small_value = false; read_heavy = false };
    { fig_no = 8; small_value = true; read_heavy = true };
    { fig_no = 9; small_value = false; read_heavy = true } ]

let thread_counts = [ 1; 2; 4; 6; 8; 10; 12; 16; 20; 24; 28; 32; 36; 40 ]

(* Scaled geometry: keep the paper's ~1.2-1.5 hash load factor and the
   footprint ratio between the 128 B and 5 KB datasets. *)
let geometry ~small_value =
  if small_value then (`Records 400_000, `Hashpower 18, `Heap (256 lsl 20))
  else (`Records 10_000, `Hashpower 13, `Heap (128 lsl 20))

let workload fig ~ops =
  let `Records records, _, _ = geometry ~small_value:fig.small_value in
  Ycsb.Workload.make
    ~name:(Printf.sprintf "fig%d" fig.fig_no)
    ~record_count:records ~operation_count:ops
    ~read_proportion:(if fig.read_heavy then 0.95 else 0.5)
    ~field_length:(if fig.small_value then 128 else 5 * 1024)
    ()

type series = { s_label : string; s_points : (int * float) list }

let sweep_baseline fig ~ops ~workers =
  let _, `Hashpower hashpower, `Heap heap = geometry ~small_value:fig.small_value in
  let store = make_baseline_store ~mem_limit:heap ~hashpower () in
  let w = workload fig ~ops in
  load_baseline store w;
  { s_label = Printf.sprintf "Memcached %d threads" workers;
    s_points =
      List.map
        (fun threads ->
          let r = baseline_point ~store ~workers ~threads w in
          (threads, Ycsb.Runner.throughput_ktps r))
        thread_counts }

let sweep_plib fig ~ops ~protection =
  let _, `Hashpower hashpower, `Heap heap = geometry ~small_value:fig.small_value in
  let plib = make_plib ~protection ~size:heap ~hashpower () in
  let w = workload fig ~ops in
  load_plib plib w;
  { s_label =
      (match protection with
       | Hodor.Library.Protected -> "Modified memcached, with Hodor"
       | Hodor.Library.Unprotected -> "Modified memcached, no Hodor");
    s_points =
      List.map
        (fun threads ->
          let r = plib_point ~plib ~threads w in
          (threads, Ycsb.Runner.throughput_ktps r))
        thread_counts }

let print_figure fig (series : series list) =
  header
    (Printf.sprintf "Figure %d: field length %s - %s (KTPS vs threads)"
       fig.fig_no
       (if fig.small_value then "128B" else "5KB")
       (if fig.read_heavy then "Read Heavy (95/5)" else "Write Heavy (50/50)"));
  pf "%-8s" "threads";
  List.iter (fun s -> pf " | %-28s" s.s_label) series;
  pf "\n";
  List.iteri
    (fun i threads ->
      pf "%-8d" threads;
      List.iter (fun s -> pf " | %28.0f" (snd (List.nth s.s_points i))) series;
      pf "\n")
    thread_counts

let run_figure ~ops fig =
  let series =
    [ sweep_baseline fig ~ops ~workers:8;
      sweep_baseline fig ~ops ~workers:4;
      sweep_plib fig ~ops ~protection:Hodor.Library.Unprotected;
      sweep_plib fig ~ops ~protection:Hodor.Library.Protected ]
  in
  print_figure fig series;
  List.iter
    (fun s ->
      List.iter
        (fun (threads, ktps) ->
          note
            ~run:(Printf.sprintf "fig%d" fig.fig_no)
            ~metric:(Printf.sprintf "%s_t%d" s.s_label threads)
            ~unit_:"ktps" ktps)
        s.s_points)
    series;
  (fig, series)

let run ?(ops = 60_000) ?(only = []) () =
  let selected =
    if only = [] then figures
    else List.filter (fun f -> List.mem f.fig_no only) figures
  in
  List.map (run_figure ~ops) selected
