(** §4.2's code-complexity accounting, computed over this repository.

    The paper reports, on a ~26 KLoC base: ~5200 lines of socket
    communication and message packing/unpacking deleted, ~1600 lines of
    slab allocation deleted, ~600 lines added — a net reduction of
    ~24%. Here we classify our own modules the same way: everything the
    protected library makes unnecessary (wire protocols, transport,
    server event loops, socket client) versus what it adds (the plib
    layer and its Hodor integration). *)

open Scenarios

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let rec files_under dir =
  if Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.concat_map (fun e -> files_under (Filename.concat dir e))
  else if Filename.check_suffix dir ".ml" || Filename.check_suffix dir ".mli"
  then [ dir ]
  else []

let loc_of paths = List.fold_left (fun a p -> a + count_lines p) 0 paths

let group dirs = loc_of (List.concat_map files_under dirs)

let run () =
  header "Section 4.2: code complexity (this repository's equivalents)";
  let root = "lib" in
  let dir d = Filename.concat root d in
  let socket_side =
    group [ dir "mc_protocol"; dir "transport"; dir "mc_server" ]
    + loc_of [ Filename.concat (dir "core") "socket_client.ml" ]
  in
  let slab = loc_of [ Filename.concat (dir "mc_core") "slab.ml" ] in
  let plib_added =
    loc_of
      [ Filename.concat (dir "core") "plib_store.ml" ]
  in
  let hodor = group [ dir "hodor" ] in
  let shared_store = group [ dir "mc_core" ] - slab in
  let substrate = group [ dir "ralloc"; dir "shm"; dir "pku"; dir "simos" ] in
  let everything =
    group
      [ dir "mc_protocol"; dir "transport"; dir "mc_server"; dir "mc_core";
        dir "core"; dir "hodor"; dir "ralloc"; dir "shm"; dir "pku";
        dir "simos"; dir "platform"; dir "vm"; dir "tls"; dir "ycsb" ]
  in
  pf "%-52s %8s %s\n" "category" "LoC" "(paper's figure)";
  pf "%-52s %8d\n" "whole workspace (libraries)" everything;
  pf "%-52s %8d  (~26,000 base)\n" "store shared by both builds (mc_core sans slab)"
    shared_store;
  pf "%-52s %8d  (~5,200 deleted)\n"
    "deleted by plib: sockets, protocols, server, client" socket_side;
  pf "%-52s %8d  (~1,600 deleted)\n" "deleted by plib: slab allocator" slab;
  pf "%-52s %8d  (~600 added)\n" "added by plib: library layer" plib_added;
  pf "%-52s %8d  (provided by Hodor, not memcached)\n"
    "hodor runtime (trampolines, loader)" hodor;
  pf "%-52s %8d  (provided by Ralloc + OS in the paper)\n"
    "simulated substrate (ralloc/shm/pku/simos)" substrate;
  let base = shared_store + socket_side + slab in
  let net =
    100.0 *. float_of_int (socket_side + slab - plib_added) /. float_of_int base
  in
  pf "\nnet reduction for a socket-free build: %.0f%%  (paper: ~24%%)\n" net;
  note_i ~run:"complexity" ~metric:"shared_store" ~unit_:"loc" shared_store;
  note_i ~run:"complexity" ~metric:"deleted_socket_side" ~unit_:"loc"
    socket_side;
  note_i ~run:"complexity" ~metric:"deleted_slab" ~unit_:"loc" slab;
  note_i ~run:"complexity" ~metric:"added_plib" ~unit_:"loc" plib_added;
  note ~run:"complexity" ~metric:"net_reduction" ~unit_:"percent" net
