(** Shared-ring transport with adaptive batching: the two properties
    the design promises, measured.

    - {b Idle latency}: with one closed-loop client the adaptive
      window must stay at 1 (a lone request never waits out a nagle
      delay), so ring mode's single-op round trip lands within a few
      percent of the legacy per-message socket path.
    - {b The knee}: under open-loop (arrival-rate) load the window
      grows toward B_max and whole ring windows drain through one
      batch crossing — crossings/op falls automatically as offered
      load rises, with no caller-side batching, and p99 stays flat
      until the service rate is actually exhausted.

    Greppable lines (CI gates in .github/workflows/ci.yml):
      rings.idle_p50_ns.ring / rings.idle_p50_ns.legacy
      rings.cpo.rate<R> / rings.p99_us.rate<R> / rings.ktps.rate<R> *)

open Scenarios

module C = Telemetry.Counters

let record_count = 20_000

let workload ~ops =
  Ycsb.Workload.make ~name:"rings" ~record_count ~operation_count:ops
    ~read_proportion:0.9 ~field_length:128 ()

let fresh_plib () =
  make_plib ~protection:Hodor.Library.Protected ~size:(96 lsl 20)
    ~hashpower:16 ()

(* ---- Idle point: closed-loop, one client ------------------------------- *)

let idle_point ~rings ~ops =
  let rings =
    if rings then Some Mc_server.Server.default_ring_config else None
  in
  let plib = fresh_plib () in
  let w = workload ~ops in
  load_plib plib w;
  let name = fresh_name "mc-rings-idle" in
  let r =
    in_vm (fun () ->
      let srv = Plib.serve_remote ?rings plib ~name in
      let conn = Sock.connect ~name () in
      let r = Run.run ~threads:1 w ~db_for:(fun _ -> sock_db conn) in
      Plib.stop_remote srv;
      r)
  in
  Telemetry.Histogram.percentile r.Ycsb.Runner.r_hist 50.0

let run_idle ~ops =
  header "Rings: idle (closed-loop, 1 client) single-op latency";
  let legacy = idle_point ~rings:false ~ops in
  let ring = idle_point ~rings:true ~ops in
  pf "rings.idle_p50_ns.legacy = %d\n" legacy;
  pf "rings.idle_p50_ns.ring = %d\n" ring;
  note_i ~run:"rings" ~metric:"idle_p50_legacy" legacy;
  note_i ~run:"rings" ~metric:"idle_p50_ring" ring;
  pf "  (ring/legacy = %.3f; the adaptive window must hold W=1 here)\n"
    (float_of_int ring /. float_of_int legacy)

(* ---- The knee: open-loop sweep over offered rates ----------------------- *)

let rates_kops = [ 50; 100; 200; 400; 800; 1600 ]

let run_knee ~ops =
  header "Rings: open-loop knee (crossings/op and p99 vs offered load)";
  let plib = fresh_plib () in
  let w = workload ~ops in
  load_plib plib w;
  let threads = 4 in
  pf "%-12s %10s %10s %10s %10s\n" "offered" "achieved" "cpo" "p99_us"
    "ops/drain";
  List.iter
    (fun rate_kops ->
      let name = fresh_name "mc-rings-knee" in
      let e0 = C.read C.Id.hodor_enter in
      let d0 = C.read C.Id.ring_drains and o0 = C.read C.Id.ring_drain_ops in
      let r =
        in_vm (fun () ->
          let srv =
            Plib.serve_remote ~rings:Mc_server.Server.default_ring_config plib
              ~name
          in
          let conns = Array.init threads (fun _ -> Sock.connect ~name ()) in
          let r =
            Run.run_open ~threads ~rate_kops w
              ~db_for:(fun i -> sock_open_db conns.(i))
          in
          Plib.stop_remote srv;
          r)
      in
      let crossings = C.read C.Id.hodor_enter - e0 in
      let drains = max 1 (C.read C.Id.ring_drains - d0) in
      let dops = C.read C.Id.ring_drain_ops - o0 in
      let cpo = float_of_int crossings /. float_of_int r.Ycsb.Runner.r_ops in
      let p99 = Telemetry.Histogram.percentile r.Ycsb.Runner.r_hist 99.0 in
      pf "%-12s %10.0f %10.3f %10.1f %10.2f\n"
        (Printf.sprintf "%d kops" rate_kops)
        (Ycsb.Runner.throughput_ktps r)
        cpo (us p99)
        (float_of_int dops /. float_of_int drains);
      pf "rings.ktps.rate%d = %.0f\n" rate_kops (Ycsb.Runner.throughput_ktps r);
      pf "rings.cpo.rate%d = %.3f\n" rate_kops cpo;
      pf "rings.p99_us.rate%d = %.1f\n" rate_kops (us p99);
      note ~run:"rings" ~metric:(Printf.sprintf "ktps_rate%d" rate_kops)
        ~unit_:"ktps" (Ycsb.Runner.throughput_ktps r);
      note ~run:"rings" ~metric:(Printf.sprintf "cpo_rate%d" rate_kops)
        ~unit_:"crossings/op" cpo;
      note ~run:"rings" ~metric:(Printf.sprintf "p99_rate%d" rate_kops)
        ~unit_:"us" (us p99))
    rates_kops

let run ?(ops = 20_000) () =
  run_idle ~ops;
  run_knee ~ops
