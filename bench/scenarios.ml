(** Shared plumbing for the paper-reproduction benchmarks: everything
    here runs inside the virtual-time machine on the modeled 10-core /
    20-hyperthread Xeon. *)

module S = Vm.Sync
module Cl = Core.Client.Make (Vm.Sync)
module Plib = Cl.Plib
module Sock = Cl.Sock
module Srv = Mc_server.Server.Make (Vm.Sync)
module Run = Ycsb.Runner.Make (Vm.Sync)
module CM = Platform.Cost_model

(* Run [f] as the main thread of a fresh simulation and hand back its
   result (wall-clock here is virtual). *)
let in_vm ?config f =
  let vm = Vm.create ?config () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  match !out with
  | Some v -> v
  | None -> failwith "in_vm: main thread produced no result"

(* ---- Store builders --------------------------------------------------- *)

let fresh_names = Atomic.make 0

let fresh_name prefix =
  Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add fresh_names 1)

let store_cfg ~hashpower =
  { Mc_core.Store.default_config with hashpower; lock_count = 1024;
    lru_count = 64; stats_slots = 64 }

(* [optimistic] toggles the seqlock read path; [lock_count] overrides
   the stripe count (fewer stripes = more collisions — what the
   locked-vs-optimistic contention comparison needs). *)
let make_plib ?(optimistic = true) ?lock_count ~protection ~size ~hashpower ()
    =
  let owner = Simos.Process.make ~uid:1000 (fresh_name "memcached-bk") in
  let cfg = store_cfg ~hashpower in
  let cfg =
    { cfg with
      optimistic_reads = optimistic;
      lock_count = Option.value lock_count ~default:cfg.lock_count }
  in
  Plib.create ~protection ~store_cfg:cfg ~path:(fresh_name "/dev/shm/kv")
    ~size ~owner ()

let make_baseline_store ~mem_limit ~hashpower () =
  let arena = Mc_core.Private_memory.create ~limit:(2 * mem_limit) in
  let slab = Mc_core.Slab.create ~arena ~mem_limit in
  Srv.Store.create ~mem:arena ~alloc:slab
    { (store_cfg ~hashpower) with lru_by_size_class = true }

(* ---- YCSB adapters ------------------------------------------------------ *)

(* Both adapters charge the YCSB driver's own per-op cost, as the
   paper's Java harness pays it regardless of backend. *)

let plib_db plib : Ycsb.Runner.db =
  { db_read =
      (fun k ->
        S.advance CM.current.ycsb_driver;
        Plib.get plib k <> None);
    db_update =
      (fun k v ->
        S.advance CM.current.ycsb_driver;
        Plib.set plib k v = Mc_core.Store.Stored) }

let sock_db conn : Ycsb.Runner.db =
  { db_read =
      (fun k ->
        S.advance CM.current.ycsb_driver;
        Sock.get conn k <> None);
    db_update =
      (fun k v ->
        S.advance CM.current.ycsb_driver;
        Sock.set conn k v = Mc_core.Store.Stored) }

(* Batched adapters (the batch plane): the whole batch is one driver
   dispatch — a batched YCSB driver assembles the op vector and issues
   a single call — so the driver cost, like the crossing cost, is paid
   once per batch. *)

let plib_batch_db plib : Ycsb.Runner.batch_db =
  { b_run =
      (fun ops ->
        S.advance CM.current.ycsb_driver;
        let bops =
          List.map
            (function
              | Ycsb.Workload.Read k -> Plib.B_get k
              | Ycsb.Workload.Update (k, v) ->
                Plib.B_set
                  { b_key = k; b_data = v; b_flags = 0; b_exptime = 0 })
            ops
        in
        List.map
          (function
            | Plib.R_get r -> r <> None
            | Plib.R_store r -> r = Mc_core.Store.Stored
            | Plib.R_found b -> b)
          (Plib.batch plib bops)) }

let sock_batch_db conn : Ycsb.Runner.batch_db =
  let module P = Mc_protocol.Types in
  { b_run =
      (fun ops ->
        S.advance CM.current.ycsb_driver;
        let cmds =
          List.map
            (function
              | Ycsb.Workload.Read k -> P.Gets [ k ]
              | Ycsb.Workload.Update (k, v) ->
                P.Set
                  { P.key = k; flags = 0; exptime = 0; data = v;
                    noreply = false })
            ops
        in
        List.map
          (function
            | P.Values { vals; _ } -> vals <> []
            | P.Stored -> true
            | _ -> false)
          (Sock.pipeline conn cmds)) }

(* Open-loop adapter: requests stream out through the split
   submit/await plane (over either transport; with ring mode the
   submit is a shared-memory produce), completions parse back in
   submission order. *)
let sock_open_db conn : Ycsb.Runner.open_db =
  let module P = Mc_protocol.Types in
  let st = Sock.stream conn in
  let inflight = Queue.create () in
  { o_submit =
      (fun op ->
        S.advance CM.current.ycsb_driver;
        let cmd =
          match op with
          | Ycsb.Workload.Read k -> P.Gets [ k ]
          | Ycsb.Workload.Update (k, v) ->
            P.Set { P.key = k; flags = 0; exptime = 0; data = v;
                    noreply = false }
        in
        Queue.push cmd inflight;
        Sock.submit st cmd);
    o_await =
      (fun () ->
        let cmd = Queue.pop inflight in
        match Sock.await st cmd with
        | P.Values { vals; _ } -> vals <> []
        | P.Stored -> true
        | _ -> false) }

(* Load the dataset straight into a store object (the load phase is
   not part of any measurement). *)
let load_plib plib w =
  in_vm (fun () ->
    Run.load w
      { db_read = (fun k -> Plib.get plib k <> None);
        db_update = (fun k v -> Plib.set plib k v = Mc_core.Store.Stored) })

let load_baseline store w =
  in_vm (fun () ->
    Run.load w
      { db_read = (fun k -> Srv.Store.get store k <> None);
        db_update =
          (fun k v -> Srv.Store.set store k v = Mc_core.Store.Stored) })

(* ---- Throughput measurement points ---------------------------------------- *)

let baseline_point ~store ~workers ~threads (w : Ycsb.Workload.t) =
  let name = fresh_name "mc" in
  in_vm (fun () ->
    let cfg =
      { Mc_server.Server.default_config with workers;
        store = { (store_cfg ~hashpower:16) with lru_by_size_class = true } }
    in
    let srv = Srv.start ~cfg ~prebuilt:store ~name () in
    let conns = Array.init threads (fun _ -> Sock.connect ~name ()) in
    let res = Run.run ~threads w ~db_for:(fun i -> sock_db conns.(i)) in
    Srv.stop srv;
    res)

let plib_point ~plib ~threads (w : Ycsb.Workload.t) =
  in_vm (fun () -> Run.run ~threads w ~db_for:(fun _ -> plib_db plib))

(* The batch-plane point: B ops per crossing. [batch = 1] degenerates
   to the one-op path's crossing count (every op still goes through
   [call_batch], so crossings/op stays measurable as 1/B). *)
let plib_batch_point ~plib ~threads ~batch (w : Ycsb.Workload.t) =
  in_vm (fun () ->
    Run.run_batched ~threads ~batch w ~db_for:(fun _ -> plib_batch_db plib))

(* ---- Output helpers ----------------------------------------------------------- *)

let us ns = float_of_int ns /. 1e3

let pf = Printf.printf

let header title =
  pf "\n================================================================\n";
  pf "%s\n" title;
  pf "================================================================\n"

(* ---- Machine-readable results (bench.json) ----------------------------

   Each bench target reports its headline numbers here as well as to
   stdout; the driver flushes them as a JSON array of
   {run, metric, value, unit} rows — the bench.json CI artifact, so a
   dashboard (or a later regression gate) never has to scrape the
   human tables. *)

let results : (string * string * float * string) list ref = ref []

let note ~run ~metric ?(unit_ = "ns") value =
  results := (run, metric, value, unit_) :: !results

let note_i ~run ~metric ?unit_ v = note ~run ~metric ?unit_ (float_of_int v)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let write_json path =
  let rows = List.rev !results in
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (run, metric, v, u) ->
      Printf.fprintf oc
        "  {\"run\": %s, \"metric\": %s, \"value\": %s, \"unit\": %s}%s\n"
        (json_string run) (json_string metric) (json_number v) (json_string u)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc;
  pf "\nwrote %d result row(s) to %s\n" (List.length rows) path
