(** Virtual protection keys (libmpk-style).

    PKU gives 16 hardware keys; a multi-tenant cache needs one
    protection domain per tenant, and far more than 16 tenants. This
    layer virtualizes {!Pkey}: {!alloc} hands out an unbounded supply
    of {e virtual} keys, and a slot table multiplexes the bound subset
    onto hardware keys on demand, exactly as libmpk (Park et al., ATC
    '19) multiplexes [pkey_mprotect] domains:

    - {!bind} returns the hardware key currently backing a vkey. A
      miss grabs a free hardware slot (allocating from {!Pkey} up to a
      configurable cap) or {e evicts} the least-recently-bound vkey.
    - Evicting a vkey re-tags every memory range attached to it to a
      dedicated {e quarantine} key that no thread ever enables, so an
      unbound vkey's memory is unreadable by everyone. The ranges are
      lazily re-tagged to the new hardware key on the vkey's next
      bind ({!attach_retag} registers the re-tag callback).
    - Each thread keeps a shadow of which vkeys it has enabled in its
      pkru and on which hardware slot; {!sync_thread} — called by the
      Hodor trampoline on every crossing — revokes rights on slots
      whose binding moved and re-establishes them on the vkey's
      current slot, so slot reuse never leaks rights across vkeys.

    Binds, slot misses and evictions are counted in
    [Telemetry.Counters] ([vpkey_binds] / [vpkey_slot_misses] /
    [vpkey_evictions]).

    Trust model: this module is kernel-side code (libmpk's kernel
    module). Re-tag callbacks run with whatever privilege the
    registrant gave them — registrants that manage seccomp-filtered
    regions must wrap their callback in [Region.kernel_mode]. *)

type t = int
(** A virtual key id (>= 1). *)

exception Unknown_vkey of int

exception Permission_denied of string
(** Raised by {!bind}/{!enable} when [~owner] does not match the
    vkey's owner (and {!owner_checks_enabled} is on). *)

(** {1 Red-team toggles} — revert a defense to demonstrate the attack
    it blocks. Shipping default for all three is [true]. *)

val eviction_enabled : bool ref
(** Off: a full slot table raises {!Pkey.Out_of_keys} on miss — the
    pre-virtualization world where key exhaustion is denial of
    protection. *)

val owner_checks_enabled : bool ref
(** Off: any caller may bind (and so enable) any tenant's vkey. *)

val quarantine_on_evict : bool ref
(** Off: eviction leaves the victim's ranges tagged with the old
    hardware key, readable by whoever inherits the slot. *)

(** {1 Allocation} *)

val alloc : ?owner:int -> unit -> t
(** A fresh virtual key. [owner] (default 0 = root) is the uid allowed
    to bind it; uid 0 bypasses ownership checks. *)

val free : t -> unit
(** Quarantines the vkey's ranges, releases its slot, and retires the
    id. @raise Unknown_vkey on double-free. *)

val restore : id:t -> owner:int -> unit
(** Recovery path: re-create vkey [id] (unbound) if this process does
    not know it — used to rebuild the slot table from a persisted
    tenant registry after a crash. Idempotent. *)

(** {1 Binding} *)

val bind : ?owner:int -> t -> Pkey.t
(** The hardware key backing the vkey, binding it to a slot first if
    needed (evicting the LRU vkey when the table is full) and lazily
    re-tagging its attached ranges. [owner] is the caller's uid for
    the ownership check; omit it only from trusted kernel-side code.
    @raise Permission_denied on an ownership mismatch.
    @raise Pkey.Out_of_keys if the table is full and
    {!eviction_enabled} is off. *)

val hw_key : t -> Pkey.t option
(** The slot currently backing the vkey, if bound. *)

val owner_of : t -> int

val attach_retag : t -> (Pkey.t -> unit) -> unit
(** Register a callback that re-tags one of the vkey's memory ranges
    to a given hardware key. Called immediately with the current
    mapping (the quarantine key if unbound), then on every eviction
    and rebind. *)

val quarantine_key : unit -> Pkey.t
(** The quarantine key (allocated on first use). Never enable it. *)

val retag_cost_hook : (int -> unit) ref
(** Called with the number of ranges walked each time eviction, rebind
    or {!free} re-tags a vkey's memory — where libmpk pays its
    [pkey_mprotect] calls. Installed by [Hodor.Runtime.configure] to
    charge modeled CPU time in the virtual-time benchmarks; default
    no-op. *)

(** {1 Per-thread pkru shadow} *)

val enable : ?owner:int -> t -> Pkey.t
(** Bind the vkey and enable its hardware key in the calling thread's
    pkru, recording the grant in the thread's shadow. *)

val disable : t -> unit
(** Drop the thread's grant and close the pkru bits (unless another
    of the thread's grants shares the slot). *)

val sync_thread : unit -> unit
(** Reconcile the calling thread's pkru with the slot table: revoke
    rights on slots whose vkey was evicted or moved, re-bind and
    re-enable the vkeys this thread still holds. O(1) when the thread
    holds no vkey grants; called by the Hodor trampoline on every
    protected crossing. *)

(** {1 Capacity and introspection} *)

val set_hw_cap : int -> unit
(** Cap on hardware slots the table may occupy (clamped to 1..14;
    default 12, leaving headroom for Hodor library keys and the
    quarantine key). *)

val slots_in_use : unit -> int

val live_vkeys : unit -> int

val binds : unit -> int
(** Process-lifetime bind count (monotonic; reset by {!reset}). *)

val slot_misses : unit -> int

val evictions : unit -> int

val check_invariants : unit -> unit
(** Slot table consistency: every slot's occupant points back at the
    slot, bound count within cap, quarantine key never a slot.
    @raise Failure on violation. *)

val reset : unit -> unit
(** Test harness: free every hardware key back to {!Pkey}, drop all
    vkeys, zero the counters, clear the calling thread's shadow, and
    restore default cap and toggles. *)
