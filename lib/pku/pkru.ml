(** The per-thread pkru register.

    32 bits, two per key: bit [2k] is access-disable (AD), bit [2k+1]
    is write-disable (WD), exactly as on Intel hardware. The register
    is thread-local; under the virtual-time machine each {e simulated}
    thread has its own copy (see {!Tls}).

    This module is the raw register. The *policy* of who may execute
    [wrpkru] (only Hodor trampolines) is enforced one level up, by the
    loader's binary scan and breakpoints ({!Debug_regs}) and by
    {!Hodor}'s trampoline discipline. *)

type perm = Enable | Write_disable | Access_disable

type t = int

(* Linux's initial pkru: everything but key 0 access-disabled. *)
let init_value : t =
  let v = ref 0 in
  for k = 1 to Pkey.count - 1 do
    v := !v lor (1 lsl (2 * k))
  done;
  !v

let all_enabled : t = 0

let key = Tls.new_key (fun () -> ref init_value)

let read () : t = !(Tls.get key)

let wrpkru (v : t) =
  Telemetry.Counters.incr Telemetry.Counters.Id.pkru_writes;
  Tls.get key := v land 0xFFFFFFFF

let reset_thread () = Tls.get key := init_value

let set_perm (v : t) (k : Pkey.t) (p : perm) : t =
  if not (Pkey.is_valid k) then invalid_arg "Pkru.set_perm";
  let cleared = v land lnot (0b11 lsl (2 * k)) in
  match p with
  | Enable -> cleared
  | Write_disable -> cleared lor (0b10 lsl (2 * k))
  | Access_disable -> cleared lor (0b01 lsl (2 * k))

let perm_of (v : t) (k : Pkey.t) : perm =
  match (v lsr (2 * k)) land 0b11 with
  | 0b00 -> Enable
  | 0b10 -> Write_disable
  | _ -> Access_disable

let allows_read (v : t) (k : Pkey.t) = (v lsr (2 * k)) land 0b01 = 0

let allows_write (v : t) (k : Pkey.t) = (v lsr (2 * k)) land 0b11 = 0

let pp fmt (v : t) = Format.fprintf fmt "pkru:%08x" v
