(** Protection keys (PKU associates one of 16 keys with each page).

    Key 0 is the conventional "unrestricted" key that tags ordinary
    memory; keys 1-15 are allocatable, mirroring Linux's
    [pkey_alloc(2)] interface. *)

type t = int

let count = 16

let default : t = 0

exception Out_of_keys

let allocated = Array.make count false

let () = allocated.(0) <- true

let alloc_lock = Mutex.create ()

(* Syscall gate, installed by Simos.Process at startup: pkey_alloc(2)
   and pkey_free(2) are real syscalls, so a seccomp-style filter must
   see them. A hook (rather than a direct call) keeps the dependency
   arrow pointing simos -> pku. *)
let syscall_gate : ([ `Alloc | `Free ] -> unit) ref = ref (fun _ -> ())

let set_syscall_gate f = syscall_gate := f

let alloc () : t =
  !syscall_gate `Alloc;
  Mutex.lock alloc_lock;
  let rec find i =
    if i >= count then begin
      Mutex.unlock alloc_lock;
      raise Out_of_keys
    end
    else if not allocated.(i) then begin
      allocated.(i) <- true;
      Mutex.unlock alloc_lock;
      i
    end
    else find (i + 1)
  in
  find 1

(* Freeing a key that is not allocated is refused: the old silent
   version let a double-[free] release a key that had already been
   recycled to another library, silently merging two protection
   domains (the double-admission attack in lib/redteam). *)
let free (k : t) =
  if k <= 0 || k >= count then invalid_arg "Pkey.free";
  !syscall_gate `Free;
  Mutex.lock alloc_lock;
  let was = allocated.(k) in
  allocated.(k) <- false;
  Mutex.unlock alloc_lock;
  if not was then
    invalid_arg (Printf.sprintf "Pkey.free: pkey%d is not allocated" k)

let is_valid (k : t) = k >= 0 && k < count

let pp fmt (k : t) = Format.fprintf fmt "pkey%d" k
