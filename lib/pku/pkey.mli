(** Protection keys: PKU associates one of 16 keys with each page.
    Key 0 is the conventional "unrestricted" key; keys 1-15 are
    allocatable, mirroring [pkey_alloc(2)]. *)

type t = int

val count : int
(** 16. *)

val default : t
(** Key 0. *)

exception Out_of_keys

val alloc : unit -> t
(** A fresh key in 1..15. @raise Out_of_keys when all are taken. *)

val free : t -> unit
(** @raise Invalid_argument if the key is out of range {e or not
    currently allocated} — a silent double-free would hand an already
    recycled key back to the pool, merging two protection domains. *)

val set_syscall_gate : ([ `Alloc | `Free ] -> unit) -> unit
(** Install the seccomp-style gate consulted before [pkey_alloc] /
    [pkey_free] (wired up by [Simos.Process]; identity function by
    default). *)

val is_valid : t -> bool

val pp : Format.formatter -> t -> unit
