(** A miniature binary model, just rich enough for Hodor's loader
    story: binaries are arrays of opcodes; the loader scans them for
    stray [wrpkru] occurrences outside trampolines and plants hardware
    breakpoints (or flips page permissions when it runs out of
    breakpoint registers).

    Beyond the opcode view, every binary also has a {e byte image}
    (see {!byte_image}): the Garmr-style attacks that defeat
    breakpoint-based scanning hide a [wrpkru]/[xrstor] byte pattern at
    an address that is not an instruction boundary — inside immediate
    operands or data islands — where an instruction-granular scan
    never looks but an indirect jump can still land. *)

type t =
  | Wrpkru of int  (** attempt to write this value into pkru *)
  | Xrstor of int
  (** restore an attacker-controlled extended-state image: on real
      hardware [xrstor] rewrites pkru from memory the caller controls,
      so it is exactly as dangerous as a stray [wrpkru] (Garmr's
      second gadget family) *)
  | Compute of int  (** [n] ns of ordinary computation *)
  | Call of string  (** call into a named (library) symbol *)
  | Ret
  | Data of string
  (** a data island embedded in text (jump tables, constants). Never
      executed by straight-line code — but its bytes are reachable by
      a hijacked indirect branch, which is what makes byte-level
      gadget scanning necessary. *)

type binary = {
  binary_name : string;
  text : t array;  (** index = address *)
  trampoline_addrs : int list;
  (** addresses of loader-installed trampolines, where [Wrpkru] is
      legitimate. NOTE: this list is {e self-declared} by whoever made
      the binary; the loader's admission path cross-checks it against
      its own registry of installed trampolines ({!Hodor.Loader}),
      because an attacker can claim anything here. *)
}

let make ?(trampolines = []) name text =
  { binary_name = name; text; trampoline_addrs = trampolines }

(* All addresses holding a pkru-writing opcode that is NOT part of a
   trampoline: these are the strays the loader must neutralise. An
   [Xrstor] is a stray even at a declared trampoline address — no
   legitimate trampoline restores pkru from caller-controlled
   memory. *)
let stray_wrpkru_addrs (b : binary) : int list =
  let strays = ref [] in
  Array.iteri
    (fun addr insn ->
      match insn with
      | Wrpkru _ when not (List.mem addr b.trampoline_addrs) ->
        strays := addr :: !strays
      | Xrstor _ -> strays := addr :: !strays
      | Wrpkru _ | Compute _ | Call _ | Ret | Data _ -> ())
    b.text;
  List.rev !strays

(* ---- Byte-level view ------------------------------------------------ *)

(* Encodings mirror x86 just enough for pattern scanning to mean
   something: wrpkru is the real 3-byte opcode 0F 01 EF; xrstor is
   0F AE /5 (we fix the modrm to 2F); the 4 bytes after either carry
   the pkru value our pseudo-ISA threads through. *)
let wrpkru_pattern = "\x0f\x01\xef"

let xrstor_prefix = "\x0f\xae"

let xrstor_modrm = '\x2f' (* reg field 5 = xrstor *)

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xff));
  Bytes.to_string b

let decode_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode_insn = function
  | Wrpkru v -> wrpkru_pattern ^ le32 (v land 0xFFFFFFFF)
  | Xrstor v ->
    xrstor_prefix ^ String.make 1 xrstor_modrm ^ le32 (v land 0xFFFFFFFF)
  | Compute _ -> "\x90"
  | Call _ -> "\xe8\x00\x00\x00\x00"
  | Ret -> "\xc3"
  | Data s -> s

let byte_image (b : binary) : string =
  String.concat "" (Array.to_list (Array.map encode_insn b.text))

(* Start byte offset of every instruction, parallel to [text]. *)
let byte_offsets (b : binary) : int array =
  let offs = Array.make (Array.length b.text) 0 in
  let at = ref 0 in
  Array.iteri
    (fun i insn ->
      offs.(i) <- !at;
      at := !at + String.length (encode_insn insn))
    b.text;
  offs

(* The instruction whose byte span contains [byte_off], with its
   address — what a hijacked jump into the middle of the image lands
   in. *)
let insn_at_byte (b : binary) ~(byte_off : int) : (int * t) option =
  let offs = byte_offsets b in
  let n = Array.length b.text in
  let rec go i =
    if i >= n then None
    else
      let start = offs.(i) in
      let stop = start + String.length (encode_insn b.text.(i)) in
      if byte_off >= start && byte_off < stop then Some (i, b.text.(i))
      else go (i + 1)
  in
  go 0

type gadget_kind = Gadget_wrpkru | Gadget_xrstor

(* Every byte offset of [img] at which a pkru-writing instruction
   pattern begins — instruction boundaries be damned. This is what an
   admission-time scan must cover: a breakpoint on an instruction
   address cannot trap a jump into offset addr+1. *)
let find_gadgets (img : string) : (int * gadget_kind) list =
  let n = String.length img in
  let out = ref [] in
  for off = 0 to n - 3 do
    if String.sub img off 3 = wrpkru_pattern then
      out := (off, Gadget_wrpkru) :: !out
    else if
      off + 2 < n
      && String.sub img off 2 = xrstor_prefix
      && (Char.code img.[off + 2] lsr 3) land 0b111 = 5
    then out := (off, Gadget_xrstor) :: !out
  done;
  List.rev !out

(* Decode the pkru value a gadget at [off] would write, when the 4
   trailing bytes exist (an attacker jumping into a truncated pattern
   at the image's end just faults). *)
let gadget_value (img : string) ~(off : int) (kind : gadget_kind) : int option =
  let imm_at = off + 3 in
  if imm_at + 4 > String.length img then None
  else
    match kind with
    | Gadget_wrpkru | Gadget_xrstor -> Some (decode_le32 img imm_at)
