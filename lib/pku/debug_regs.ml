(** The four x86 hardware breakpoint (debug address) registers, as used
    by Hodor's loader to trap stray [wrpkru] instructions.

    When a binary contains more than four strays, the loader cannot
    cover them all with breakpoints and falls back to gating the pages
    that contain them (modeled by {!gated_pages}), at some cost. *)

let register_count = 4

type t = {
  mutable bps : (string * int) list;  (* (binary name, address) *)
  mutable gated_pages : (string * int) list;  (* page-permission fallback *)
}

let create () = { bps = []; gated_pages = [] }

exception Exhausted

let install t ~binary ~addr =
  if List.length t.bps >= register_count then raise Exhausted;
  t.bps <- (binary, addr) :: t.bps

let gate_page t ~binary ~page = t.gated_pages <- (binary, page) :: t.gated_pages

let page_of_addr addr = addr / 64
(* Our pseudo-binaries pack 64 insns per "page". *)

let trips t ~binary ~addr =
  List.mem (binary, addr) t.bps
  || List.mem (binary, page_of_addr addr) t.gated_pages

(* Page gating alone. A hardware breakpoint fires on an instruction
   fetch at its exact address, so a jump into the {e middle} of an
   instruction sails past it; a gated page, by contrast, faults any
   fetch landing anywhere in it. The red-team gadget simulator needs
   the distinction. *)
let page_trips t ~binary ~addr =
  List.mem (binary, page_of_addr addr) t.gated_pages

let installed t = List.length t.bps

let gated t = List.length t.gated_pages

let clear t =
  t.bps <- [];
  t.gated_pages <- []
