(** Faults raised by the simulated protection hardware. *)

exception Protection_fault of string
(** A load or store hit a page whose protection key the current
    thread's pkru register does not open. Equivalent to the SIGSEGV
    with si_code SEGV_PKUERR delivered by real PKU hardware. *)

exception Breakpoint_trap of string
(** Execution reached an address covered by a hardware breakpoint that
    Hodor's loader planted on a stray [wrpkru] instruction. *)

let protection_fault fmt =
  Printf.ksprintf
    (fun s ->
      Telemetry.Counters.incr Telemetry.Counters.Id.pku_faults;
      Telemetry.Trace.emit ~sev:Telemetry.Trace.Error ~subsys:"pku" s;
      raise (Protection_fault s))
    fmt

let breakpoint_trap fmt = Printf.ksprintf (fun s -> raise (Breakpoint_trap s)) fmt
