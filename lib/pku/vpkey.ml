(** Virtual pkeys: an unbounded key space multiplexed onto the 16
    hardware slots with LRU eviction, quarantine re-tagging and lazy
    sync — see vpkey.mli for the protocol and the trust model. *)

type t = int

exception Unknown_vkey of int

exception Permission_denied of string

(* Red-team toggles (shipping defaults all true). *)
let eviction_enabled = ref true
let owner_checks_enabled = ref true
let quarantine_on_evict = ref true

type vk = {
  id : int;
  owner : int;
  mutable hw : Pkey.t option;  (* the slot currently backing us *)
  mutable last_use : int;      (* LRU stamp (bind ticks) *)
  mutable retags : (Pkey.t -> unit) list;
}

let default_hw_cap = 12

let lock = Mutex.create ()

(* Everything below the lock line is guarded by [lock]. *)
let table : (int, vk) Hashtbl.t = Hashtbl.create 64
let slots : (Pkey.t, vk) Hashtbl.t = Hashtbl.create 16
let pool : Pkey.t list ref = ref [] (* hw keys we own, currently free *)
let quarantine : Pkey.t option ref = ref None
let hw_cap = ref default_hw_cap
let next_id = ref 1
let clock = ref 0

(* Monotonic process-local stats (telemetry mirrors them, but the
   bench needs them with TELEMETRY=off too). *)
let n_binds = ref 0
let n_misses = ref 0
let n_evictions = ref 0

(* Charged with the number of ranges walked whenever eviction, rebind
   or free re-tags a vkey's memory — the seat of libmpk's
   pkey_mprotect cost. Installed by Hodor.Runtime so the virtual-time
   benchmarks see slot misses as the page-table work they are.

   The hook may advance virtual time — a scheduler sync point where a
   crash kill can switch fibers — so it must never run while [lock] is
   held: re-tag walks accumulate into [pending_retags] under the lock
   and [locked] drains the total into the hook after unlocking. *)
let retag_cost_hook : (int -> unit) ref = ref (fun _ -> ())

let pending_retags = ref 0

let note_retags vk = pending_retags := !pending_retags + List.length vk.retags

let drain_retags () =
  let n = !pending_retags in
  pending_retags := 0;
  n

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    let n = drain_retags () in
    Mutex.unlock lock;
    if n > 0 then !retag_cost_hook n;
    v
  | exception e ->
    let n = drain_retags () in
    Mutex.unlock lock;
    if n > 0 then !retag_cost_hook n;
    raise e

let find_locked id =
  match Hashtbl.find_opt table id with
  | Some vk -> vk
  | None -> raise (Unknown_vkey id)

let quarantine_locked () =
  match !quarantine with
  | Some k -> k
  | None ->
    let k = Pkey.alloc () in
    quarantine := Some k;
    k

(* Pick the least-recently-bound vkey, quarantine its ranges, and hand
   its slot to the caller. *)
let evict_one_locked () =
  if not !eviction_enabled then raise Pkey.Out_of_keys;
  let victim =
    Hashtbl.fold
      (fun _ vk best ->
        match best with
        | Some b when b.last_use <= vk.last_use -> best
        | _ -> Some vk)
      slots None
  in
  match victim with
  | None -> raise Pkey.Out_of_keys (* cap 0 and empty pool: impossible *)
  | Some vk ->
    let k = match vk.hw with Some k -> k | None -> assert false in
    Hashtbl.remove slots k;
    vk.hw <- None;
    if !quarantine_on_evict then begin
      let q = quarantine_locked () in
      note_retags vk;
      List.iter (fun f -> f q) vk.retags
    end;
    incr n_evictions;
    Telemetry.Counters.incr Telemetry.Counters.Id.vpkey_evictions;
    k

let acquire_slot_locked () =
  match !pool with
  | k :: rest -> pool := rest; k
  | [] ->
    if Hashtbl.length slots < !hw_cap then
      (try Pkey.alloc () with Pkey.Out_of_keys -> evict_one_locked ())
    else evict_one_locked ()

let bind_locked vk =
  incr clock;
  vk.last_use <- !clock;
  incr n_binds;
  Telemetry.Counters.incr Telemetry.Counters.Id.vpkey_binds;
  match vk.hw with
  | Some k -> k
  | None ->
    incr n_misses;
    Telemetry.Counters.incr Telemetry.Counters.Id.vpkey_slot_misses;
    let k = acquire_slot_locked () in
    vk.hw <- Some k;
    Hashtbl.replace slots k vk;
    (* lazy sync: the ranges were parked on the quarantine key since
       our eviction; re-tag them to the slot we just won *)
    note_retags vk;
    List.iter (fun f -> f k) vk.retags;
    k

let check_owner vk = function
  | None -> ()
  | Some o ->
    if !owner_checks_enabled && o <> 0 && o <> vk.owner then
      raise
        (Permission_denied
           (Printf.sprintf "vkey%d belongs to uid %d; bind by uid %d refused"
              vk.id vk.owner o))

let alloc ?(owner = 0) () =
  locked (fun () ->
      let id = !next_id in
      incr next_id;
      Hashtbl.replace table id
        { id; owner; hw = None; last_use = 0; retags = [] };
      id)

let restore ~id ~owner =
  locked (fun () ->
      if not (Hashtbl.mem table id) then
        Hashtbl.replace table id
          { id; owner; hw = None; last_use = 0; retags = [] };
      if id >= !next_id then next_id := id + 1)

let free id =
  locked (fun () ->
      let vk = find_locked id in
      (match vk.hw with
       | Some k ->
         Hashtbl.remove slots k;
         vk.hw <- None;
         pool := k :: !pool
       | None -> ());
      (* the id is dead; its memory must not stay readable under a
         recycled slot *)
      if vk.retags <> [] then begin
        let q = quarantine_locked () in
        note_retags vk;
        List.iter (fun f -> f q) vk.retags
      end;
      Hashtbl.remove table id)

let bind ?owner id =
  locked (fun () ->
      let vk = find_locked id in
      check_owner vk owner;
      bind_locked vk)

let hw_key id = locked (fun () -> (find_locked id).hw)

let owner_of id = locked (fun () -> (find_locked id).owner)

let attach_retag id f =
  locked (fun () ->
      let vk = find_locked id in
      vk.retags <- f :: vk.retags;
      (* apply the current mapping right away: bound -> the live slot,
         unbound -> quarantined until the next bind *)
      match vk.hw with
      | Some k -> f k
      | None -> f (quarantine_locked ()))

let quarantine_key () = locked quarantine_locked

(* ---- per-thread pkru shadow ----------------------------------------- *)

(* (vkey id, hw slot at grant time) for every vkey this thread has
   enabled. The slot table can move bindings underneath us; crossings
   call [sync_thread] to reconcile. *)
let shadow_key : (int * Pkey.t) list ref Tls.key =
  Tls.new_key (fun () -> ref [])

let enable ?owner id =
  let k = bind ?owner id in
  Pkru.wrpkru (Pkru.set_perm (Pkru.read ()) k Pkru.Enable);
  let s = Tls.get shadow_key in
  s := (id, k) :: List.remove_assoc id !s;
  k

let disable id =
  let s = Tls.get shadow_key in
  match List.assoc_opt id !s with
  | None -> ()
  | Some k ->
    s := List.remove_assoc id !s;
    if not (List.exists (fun (_, k') -> k' = k) !s) then
      Pkru.wrpkru (Pkru.set_perm (Pkru.read ()) k Pkru.Access_disable)

let sync_thread () =
  let s = Tls.get shadow_key in
  match !s with
  | [] -> ()
  | entries ->
    (* Re-derive each grant from the slot table: dead vkeys drop, moved
       vkeys re-bind (no ownership check — the thread held the grant). *)
    let survivors =
      locked (fun () ->
          List.filter_map
            (fun (id, k) ->
              match Hashtbl.find_opt table id with
              | None -> None
              | Some vk ->
                (match vk.hw with
                 | Some k' when k' = k -> Some (id, k)
                 | _ -> Some (id, bind_locked vk)))
            entries)
    in
    let new_ks = List.map snd survivors in
    let v =
      List.fold_left
        (fun v (_, k) ->
          if List.mem k new_ks then v
          else Pkru.set_perm v k Pkru.Access_disable)
        (Pkru.read ()) entries
    in
    let v = List.fold_left (fun v k -> Pkru.set_perm v k Pkru.Enable) v new_ks in
    if v <> Pkru.read () then Pkru.wrpkru v;
    s := survivors

(* ---- capacity / introspection --------------------------------------- *)

let set_hw_cap n = locked (fun () -> hw_cap := max 1 (min 14 n))

let slots_in_use () = locked (fun () -> Hashtbl.length slots)

let live_vkeys () = locked (fun () -> Hashtbl.length table)

let binds () = !n_binds
let slot_misses () = !n_misses
let evictions () = !n_evictions

let check_invariants () =
  locked (fun () ->
      if Hashtbl.length slots > !hw_cap then
        failwith
          (Printf.sprintf "Vpkey: %d slots bound, cap %d"
             (Hashtbl.length slots) !hw_cap);
      Hashtbl.iter
        (fun k vk ->
          (match vk.hw with
           | Some k' when k' = k -> ()
           | _ ->
             failwith
               (Printf.sprintf "Vpkey: slot %d occupant vkey%d points at %s"
                  k vk.id
                  (match vk.hw with
                   | None -> "nothing"
                   | Some k' -> Printf.sprintf "slot %d" k')));
          if not (Hashtbl.mem table vk.id) then
            failwith (Printf.sprintf "Vpkey: slot %d holds dead vkey%d" k vk.id);
          match !quarantine with
          | Some q when q = k -> failwith "Vpkey: quarantine key used as a slot"
          | _ -> ())
        slots)

let reset () =
  locked (fun () ->
      let free_hw k = try Pkey.free k with Invalid_argument _ -> () in
      Hashtbl.iter (fun k _ -> free_hw k) slots;
      List.iter free_hw !pool;
      (match !quarantine with Some k -> free_hw k | None -> ());
      Hashtbl.reset table;
      Hashtbl.reset slots;
      pool := [];
      quarantine := None;
      hw_cap := default_hw_cap;
      next_id := 1;
      clock := 0;
      n_binds := 0;
      n_misses := 0;
      n_evictions := 0;
      eviction_enabled := true;
      owner_checks_enabled := true;
      quarantine_on_evict := true);
  Tls.get shadow_key := []
