(** The YCSB client harness: load a store, then drive it from a set of
    client threads, measuring per-operation latency and aggregate
    throughput. A functor over the substrate, so the same harness runs
    the examples on real threads and the benchmarks inside the
    virtual-time machine. *)

type db = {
  db_read : string -> bool;  (** returns hit/miss *)
  db_update : string -> string -> bool;
}

type batch_db = {
  b_run : Workload.op list -> bool list;
  (** execute the ops as one batch — one protection crossing or one
      pipelined round trip — returning per-op outcomes aligned with
      the input (reads report hit/miss; updates report true) *)
}

type open_db = {
  o_submit : Workload.op -> unit;
  (** enqueue the request; returns as soon as the transport accepted
      it (which may block on transport backpressure — that stall is
      real queueing delay and is charged to the op) *)
  o_await : unit -> bool;
  (** receive the next completion, in submission order (reads report
      hit/miss; updates report true) *)
}

type result = {
  r_ops : int;
  r_elapsed_ns : int;
  r_hist : Histogram.t;
  r_read_hist : Histogram.t;
  r_update_hist : Histogram.t;
  r_hits : int;
  r_misses : int;
}

let throughput_ktps r =
  if r.r_elapsed_ns = 0 then 0.0
  else float_of_int r.r_ops /. (float_of_int r.r_elapsed_ns /. 1e9) /. 1e3

module Make (S : Platform.Sync_intf.S) = struct
  (* Populate the store with every key (the YCSB load phase). *)
  let load (w : Workload.t) (db : db) =
    for i = 0 to w.Workload.record_count - 1 do
      let key = Workload.key_of w i in
      ignore (db.db_update key (Workload.value_of w i))
    done

  type thread_result = {
    hist : Histogram.t;
    rhist : Histogram.t;
    uhist : Histogram.t;
    mutable hits : int;
    mutable misses : int;
  }

  let client_body (w : Workload.t) (db : db) ~tid ~ops (tr : thread_result) =
    let rng = Rng.create (w.Workload.seed + (7919 * tid)) in
    let choose = Workload.chooser w rng in
    for _ = 1 to ops do
      let op = Workload.next_op w rng choose in
      let t0 = S.now_ns () in
      (* Driver-level ingress: the plib backend's own [plib.*] ingress
         nests under this as a child, so a trace shows the whole op as
         the driver saw it. *)
      let root =
        Telemetry.Span.ingress
          ~op:(match op with
               | Workload.Read _ -> "ycsb.read"
               | Workload.Update _ -> "ycsb.update")
          ()
      in
      (match op with
       | Workload.Read key ->
         if db.db_read key then tr.hits <- tr.hits + 1
         else tr.misses <- tr.misses + 1
       | Workload.Update (key, value) -> ignore (db.db_update key value));
      Telemetry.Span.finish root;
      let dt = S.now_ns () - t0 in
      Histogram.record tr.hist dt;
      (match op with
       | Workload.Read _ -> Histogram.record tr.rhist dt
       | Workload.Update _ -> Histogram.record tr.uhist dt)
    done

  (* Batched client: the op stream is drawn from exactly the same
     per-thread rng stream as [client_body] — batching changes only
     where execution happens, so a same-seed run touches the same keys
     in the same order at every batch size (the determinism the
     regression test pins). Per-op latency is the batch's wall time
     split evenly over its ops. *)
  let client_body_batched (w : Workload.t) (db : batch_db) ~batch ~tid ~ops
      (tr : thread_result) =
    let rng = Rng.create (w.Workload.seed + (7919 * tid)) in
    let choose = Workload.chooser w rng in
    let pending = ref [] and npending = ref 0 in
    let flush () =
      if !npending > 0 then begin
        let batch_ops = List.rev !pending in
        let n = !npending in
        pending := [];
        npending := 0;
        let t0 = S.now_ns () in
        let root = Telemetry.Span.ingress ~op:"ycsb.batch" () in
        let oks = db.b_run batch_ops in
        Telemetry.Span.finish root;
        let dt = (S.now_ns () - t0) / n in
        List.iter2
          (fun op ok ->
            Histogram.record tr.hist dt;
            match op with
            | Workload.Read _ ->
              Histogram.record tr.rhist dt;
              if ok then tr.hits <- tr.hits + 1
              else tr.misses <- tr.misses + 1
            | Workload.Update _ -> Histogram.record tr.uhist dt)
          batch_ops oks
      end
    in
    for _ = 1 to ops do
      pending := Workload.next_op w rng choose :: !pending;
      incr npending;
      if !npending >= batch then flush ()
    done;
    flush ()

  let collect threads ops_per_thread t_start (results : thread_result array) =
    let elapsed = S.now_ns () - t_start in
    let hist = Histogram.create () in
    let rhist = Histogram.create () in
    let uhist = Histogram.create () in
    let hits = ref 0 and misses = ref 0 in
    Array.iter
      (fun tr ->
        Histogram.merge ~into:hist tr.hist;
        Histogram.merge ~into:rhist tr.rhist;
        Histogram.merge ~into:uhist tr.uhist;
        hits := !hits + tr.hits;
        misses := !misses + tr.misses)
      results;
    { r_ops = ops_per_thread * threads; r_elapsed_ns = elapsed; r_hist = hist;
      r_read_hist = rhist; r_update_hist = uhist; r_hits = !hits;
      r_misses = !misses }

  (* Run [w.operation_count] operations split across [threads] clients;
     [db_for] lets each client own its connection (socket backend) or
     share the library handle (plib backend). *)
  let run ?(threads = 1) (w : Workload.t) ~(db_for : int -> db) : result =
    let ops_per_thread = max 1 (w.Workload.operation_count / threads) in
    let results =
      Array.init threads (fun _ ->
        { hist = Histogram.create (); rhist = Histogram.create ();
          uhist = Histogram.create (); hits = 0; misses = 0 })
    in
    let t_start = S.now_ns () in
    let handles =
      List.init threads (fun tid ->
        let db = db_for tid in
        S.spawn
          ~name:(Printf.sprintf "ycsb-client-%d" tid)
          (fun () -> client_body w db ~tid ~ops:ops_per_thread results.(tid)))
    in
    List.iter S.join handles;
    collect threads ops_per_thread t_start results

  (* Open-loop (arrival-rate) client: a submitter fiber paces requests
     at a fixed interval and a collector fiber consumes completions,
     measuring each op's latency from its *intended* arrival time —
     the coordinated-omission-correct figure, so queueing delay past
     the knee shows up instead of silently stretching the load loop.
     The op stream is drawn from exactly the same per-thread rng
     stream as [client_body]: a same-seed run touches the same keys in
     the same order at every offered rate and batch-window setting. *)
  let client_body_open (w : Workload.t) (db : open_db) ~interval_ns ~tid ~ops
      (tr : thread_result) =
    let rng = Rng.create (w.Workload.seed + (7919 * tid)) in
    let choose = Workload.chooser w rng in
    let stamps : (int * Workload.op) S.chan = S.chan () in
    let t0 = S.now_ns () in
    let submitter =
      S.spawn
        ~name:(Printf.sprintf "ycsb-submit-%d" tid)
        (fun () ->
          for i = 0 to ops - 1 do
            let op = Workload.next_op w rng choose in
            let intended = t0 + (i * interval_ns) in
            let now = S.now_ns () in
            if now < intended then S.sleep_ns (intended - now);
            S.send stamps (intended, op);
            db.o_submit op
          done;
          S.close stamps)
    in
    let rec collect () =
      match S.recv stamps with
      | intended, op ->
        let ok = db.o_await () in
        let dt = S.now_ns () - intended in
        Histogram.record tr.hist dt;
        (match op with
         | Workload.Read _ ->
           Histogram.record tr.rhist dt;
           if ok then tr.hits <- tr.hits + 1 else tr.misses <- tr.misses + 1
         | Workload.Update _ -> Histogram.record tr.uhist dt);
        collect ()
      | exception S.Closed -> ()
    in
    collect ();
    S.join submitter

  (* Offered load [rate_kops] is split evenly across the client
     threads; each thread runs its own submitter/collector pair. *)
  let run_open ?(threads = 1) ~rate_kops (w : Workload.t)
      ~(db_for : int -> open_db) : result =
    if rate_kops <= 0 then invalid_arg "Runner.run_open: rate_kops <= 0";
    let ops_per_thread = max 1 (w.Workload.operation_count / threads) in
    let interval_ns = max 1 (1_000_000 * threads / rate_kops) in
    let results =
      Array.init threads (fun _ ->
        { hist = Histogram.create (); rhist = Histogram.create ();
          uhist = Histogram.create (); hits = 0; misses = 0 })
    in
    let t_start = S.now_ns () in
    let handles =
      List.init threads (fun tid ->
        let db = db_for tid in
        S.spawn
          ~name:(Printf.sprintf "ycsb-client-%d" tid)
          (fun () ->
            client_body_open w db ~interval_ns ~tid ~ops:ops_per_thread
              results.(tid)))
    in
    List.iter S.join handles;
    collect threads ops_per_thread t_start results

  (* The batch-size knob: identical orchestration, but each client
     submits its ops [batch] at a time through a {!batch_db}. *)
  let run_batched ?(threads = 1) ?(batch = 1) (w : Workload.t)
      ~(db_for : int -> batch_db) : result =
    if batch < 1 then invalid_arg "Runner.run_batched: batch < 1";
    let ops_per_thread = max 1 (w.Workload.operation_count / threads) in
    let results =
      Array.init threads (fun _ ->
        { hist = Histogram.create (); rhist = Histogram.create ();
          uhist = Histogram.create (); hits = 0; misses = 0 })
    in
    let t_start = S.now_ns () in
    let handles =
      List.init threads (fun tid ->
        let db = db_for tid in
        S.spawn
          ~name:(Printf.sprintf "ycsb-client-%d" tid)
          (fun () ->
            client_body_batched w db ~batch ~tid ~ops:ops_per_thread
              results.(tid)))
    in
    List.iter S.join handles;
    collect threads ops_per_thread t_start results
end
