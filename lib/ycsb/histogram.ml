(** Re-export of the project-wide histogram (moved to
    {!Telemetry.Histogram} so the YCSB driver and the telemetry
    subsystem share one implementation). *)

include Telemetry.Histogram
