(** Reimplementation of the Ralloc shared-heap allocator (Cai et al.,
    ISMM '20), the substrate the paper's protected-library memcached
    stores all keys, values and buckets in.

    Architecture, matching the original:
    - the heap lives in a {!Shm.Region} (the stand-in for Ralloc's
      shared memory-mapped file);
    - storage is carved into 64 KiB {e superblocks}, each dedicated to
      one size class (so there is no external fragmentation for the
      block sizes memcached uses); blocks above the largest class take
      runs of contiguous superblocks;
    - each thread keeps a {e per-thread cache} of free blocks per size
      class, so the common alloc/free path touches no shared state;
    - all intra-heap references are {e position independent}
      ({!Pptr}: self-relative offsets, distance 0 = null), so the heap
      works at a different base address in every process;
    - {e persistent roots}, identified by small integer IDs, anchor the
      data structures across restarts ([pm_set_root]/[pm_get_root] in
      the paper's Figures 2 and 3).

    Deviation from the original, documented in DESIGN.md: the global
    per-size-class superblock lists are protected by short mutexes
    rather than CAS loops (OCaml [Bytes] has no atomics); the
    per-thread caches keep those sections cold, which is where Ralloc's
    scalability comes from. *)

type t
(** A heap handle: a region plus per-process runtime state (class
    locks, thread caches). *)

exception Out_of_heap

val superblock_size : int

val max_small : int
(** Largest size served from size-class superblocks. *)

val root_slots : int
(** Number of persistent root slots (64). *)

val create : Shm.Region.t -> t
(** Format a fresh heap over the whole region and return a handle.
    Runs in kernel mode (it is the bookkeeping process's setup step). *)

val attach : Shm.Region.t -> t
(** Attach to an already-formatted heap (e.g. one reloaded from its
    backing file). Rebuilds the runtime state; in-heap state is taken
    as found. *)

val region : t -> Shm.Region.t

val alloc : t -> int -> int
(** [alloc t size] returns the region offset of a block of at least
    [size] bytes. Raises {!Out_of_heap} when the heap cannot satisfy
    the request; the store evicts and retries. *)

val free : t -> int -> unit
(** Return a block. The block's size is recovered from its superblock
    header, as in C [free]. *)

val usable_size : t -> int -> int

val used_bytes : t -> int
(** Bytes currently allocated (block granularity), the store's input
    to its eviction watermark. *)

val capacity : t -> int

val flush_thread_cache : t -> unit
(** Return the calling thread's cached blocks to the shared lists
    (called by exiting threads, and before {!flush}). *)

val flush : t -> path:string -> unit
(** Persist the heap to its backing file (bookkeeping-process
    shutdown). *)

val recover : t -> live:int list -> unit
(** Post-crash recovery (the paper's "Ralloc is a recovering
    allocator"). [live] is the set of block offsets still reachable
    from the store's data structures; every carved block not in it —
    blocks cached by a dead process's threads, blocks allocated but not
    yet linked when the process was killed — is reclaimed. Rebuilds,
    from the superblock headers alone: per-superblock freelists, the
    free-superblock pool, the per-class partial lists, and the used
    counter; clears poison marks on reachable blocks and re-marks
    reclaimed ones. Also bumps the heap generation so every thread's
    local cache (including survivors') is discarded rather than handing
    out blocks recovery just reclaimed. Runs in kernel mode at
    quiescence: no concurrent library calls may be in flight. Raises
    [Invalid_argument] if [live] names an offset that is not a carved
    block. *)

(** {1 Persistent roots} *)

val set_root : t -> int -> int -> unit
(** [set_root t id off] anchors the object at [off]; [off = 0] clears. *)

val get_root : t -> int -> int
(** Offset anchored under [id], or [0]. *)

(** {1 Position-independent pointers} *)

module Pptr : sig
  val store : Shm.Region.t -> at:int -> int -> unit
  (** [store r ~at target] writes at [at] the self-relative encoding of
      region offset [target]; [target = 0] encodes null. *)

  val load : Shm.Region.t -> at:int -> int
  (** Decode the pptr at [at]: the target's region offset, or [0]. *)

  val is_null : Shm.Region.t -> at:int -> bool
end

(** {1 Use-after-free poisoning (test harness)} *)

exception Use_after_free of string

val set_poisoning : t -> bool -> unit
(** [set_poisoning t true] turns silent use-after-free into a hard
    failure: from then on {!free} fills the block body with [0xDE] and
    records its granules in a side bitmap, {!alloc} clears the record
    on the block it returns, and {!poison_guard} raises
    {!Use_after_free} for any guarded access that touches a recorded
    granule. Off by default; costs nothing while off. *)

val poisoning : t -> bool

val poison_mark : t -> off:int -> len:int -> unit
(** Record (and 0xDE-fill) a span as dead in the poison bitmap, as
    {!free} does for whole blocks. No-op with poisoning off. Used by
    allocators layered over Ralloc (the bump arena) whose objects are
    interior to Ralloc blocks. *)

val poison_clear : t -> off:int -> len:int -> unit
(** Clear poison marks over a span being handed out, as {!alloc}
    does. No-op with poisoning off. *)

val poison_guard : Shm.Region.t -> off:int -> len:int -> unit
(** Check one prospective access against the poison bitmap of the heap
    living in [reg] (no-op when that heap does not poison, or no heap
    is known for [reg]). Called by the store's memory layer on every
    data access; the allocator's own metadata traffic deliberately
    bypasses it — a freed block's first word legitimately carries the
    freelist link. *)

(** {1 Introspection (tests, EXPERIMENTS.md)} *)

type class_stat = {
  cs_block_size : int;
  cs_superblocks : int;
  cs_free_blocks : int;
  cs_cached_blocks : int;
}

val class_stats : t -> class_stat array

val size_classes : int array

val class_of_size : int -> int
(** Index into {!size_classes} of the class serving [size];
    [Array.length size_classes] when large. Exposed for tests. *)

val check_invariants : t -> unit
(** Walk every superblock and verify header/freelist consistency;
    raises [Failure] with a description on corruption. Test hook. *)

(** {1 Heap observatory} *)

type heap_class = {
  hc_block_size : int;
  hc_superblocks : int;
  hc_capacity : int;
  hc_carved : int;
  hc_live : int;
}

type heap_map = {
  hm_classes : heap_class array;
  hm_large_runs : int;
  hm_large_sbs : int;
  hm_large_bytes : int;
  hm_small_sbs : int;
  hm_free_sbs : int;
  hm_fresh_sbs : int;
  hm_total_sbs : int;
  hm_live_bytes : int;
  hm_largest_free_run : int;
  hm_free_run_sbs : int;
  hm_ext_frag : float;
}

val heap_map : t -> heap_map
(** One structural walk over the superblock headers: per-size-class
    occupancy, large-run accounting, free/fresh extents, and the
    external-fragmentation ratio. [hm_live_bytes] reconciles exactly
    with {!used_bytes} (per-thread cached blocks count as live in
    both). Safe on a freshly attached post-crash heap. *)

val heap_kvs : t -> (string * string) list
(** {!heap_map} flattened for the [stats heap] surface. *)

val render_heap_map : t -> string
(** Human-readable map — one character per superblock plus per-class
    utilization lines (the heap-map.txt CI artifact). *)
