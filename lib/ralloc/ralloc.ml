module Region = Shm.Region

exception Out_of_heap

let superblock_size = 65536

let sb_hdr = 128

let root_slots = 64

let size_classes =
  [| 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048;
     3072; 4096; 6144; 8192; 12288; 16384 |]

let n_classes = Array.length size_classes

let max_small = size_classes.(n_classes - 1)

let class_of_size size =
  let rec go i =
    if i >= n_classes then n_classes
    else if size_classes.(i) >= size then i
    else go (i + 1)
  in
  go 0

(* ---- Heap header layout (region offsets) ---------------------------

   0   magic              40  used_bytes (stored at flush)
   8   sb_size            48  free_sb_head (absolute sb offset, 0 none)
   16  sb_base            64  root pptrs       (64 x 8)
   24  sb_count           576 class partial heads (32 x 8, absolute)
   32  next_fresh_sb      832 end

   Superblock header layout (offsets within the superblock):

   0   kind (0 free / 1 small / 2 large head)
   8   class_idx          56  next_partial (absolute, 0 none)
   16  block_size         64  on_partial (0/1)
   24  num_blocks         72  large_sbs
   32  free_head          80  large_size
   40  free_count         88  next_free_sb (absolute, 0 none)
   48  bump_idx           96  prev_partial (absolute, 0 none)
   ------------------------------------------------------------------- *)

let magic = 0x52414C4C4F433031 (* "RALLOC01" *)

let off_magic = 0
let off_sb_size = 8
let off_sb_base = 16
let off_sb_count = 24
let off_next_fresh = 32
let off_used = 40
let off_free_sb_head = 48
let off_roots = 64
let off_partial_heads = 576

let sb_base = 4096

let f_kind = 0
let f_class = 8
let f_block_size = 16
let f_num_blocks = 24
let f_free_head = 32
let f_free_count = 40
let f_bump = 48
let f_next_partial = 56
let f_on_partial = 64
let f_large_sbs = 72
let f_large_size = 80
let f_next_free_sb = 88
let f_prev_partial = 96

let kind_free = 0
let kind_small = 1
let kind_large_head = 2

(* A large block's data area starts at [head + sb_hdr] and runs
   straight through the following superblocks of its run — their 128
   header bytes are part of the data and hold no metadata at all. Every
   walk over superblocks must therefore step {e structurally}: on a
   large head, skip [f_large_sbs] superblocks instead of trusting
   per-superblock kind markers, which inside a run are user bytes. *)

module Pptr = struct
  let store r ~at target =
    if target = 0 then Region.write_i64 r at 0
    else Region.write_i64 r at (target - at)

  let load r ~at =
    let d = Region.read_i64 r at in
    if d = 0 then 0 else at + d

  let is_null r ~at = Region.read_i64 r at = 0
end

type t = {
  reg : Region.t;
  heap_id : int;
  class_locks : Mutex.t array;
  sb_lock : Mutex.t;
  used : int Atomic.t;
  mutable poison : Bytes.t option;
  (* use-after-free detector (opt-in): 1 bit per 8-byte granule, set
     while the granule belongs to a freed block *)
  mutable gen : int;
  (* bumped by {!recover}: per-thread caches stamped with an older
     generation are discarded, since recovery may have put their blocks
     back on the shared freelists *)
}

(* Runtime state must be shared by every handle attached to the same
   region: the class locks model PTHREAD_PROCESS_SHARED locks living in
   the shared segment. *)
let runtimes : (Region.t * t) list ref = ref []

let runtimes_lock = Mutex.create ()

let next_heap_id = Atomic.make 1

let find_runtime reg =
  Mutex.lock runtimes_lock;
  let r = List.find_opt (fun (r, _) -> r == reg) !runtimes in
  Mutex.unlock runtimes_lock;
  Option.map snd r

let new_runtime reg =
  Mutex.lock runtimes_lock;
  let t =
    match List.find_opt (fun (r, _) -> r == reg) !runtimes with
    | Some (_, t) -> t
    | None ->
      let t =
        { reg; heap_id = Atomic.fetch_and_add next_heap_id 1;
          class_locks = Array.init n_classes (fun _ -> Mutex.create ());
          sb_lock = Mutex.create (); used = Atomic.make 0; poison = None;
          gen = 0 }
      in
      runtimes := (reg, t) :: !runtimes;
      t
  in
  Mutex.unlock runtimes_lock;
  t

let region t = t.reg

let rd t off = Region.read_i64 t.reg off

let wr t off v = Region.write_i64 t.reg off v

let sb_count t = rd t off_sb_count

let sb_off t i = sb_base + (i * rd t off_sb_size)

let sb_of_block _t off =
  sb_base + ((off - sb_base) / superblock_size * superblock_size)

let capacity t = Region.size t.reg - sb_base

let used_bytes t = Atomic.get t.used

(* ---- Use-after-free poisoning (opt-in test harness) ------------------

   When enabled, [free] overwrites the block body with 0xDE and marks
   its 8-byte granules in a side bitmap; [alloc] clears the marks on
   the block it hands out. {!poison_guard} (called by the store's
   memory layer, never by the allocator's own metadata traffic — the
   freelist link legitimately reuses a freed block's first word) turns
   any access to a marked granule into {!Use_after_free}. *)

exception Use_after_free of string

let poison_byte = '\xDE'

(* How many heaps currently poison — lets the guard's common "nobody
   does" path be a single atomic load. *)
let n_poisoning = Atomic.make 0

let set_poisoning t on =
  match (t.poison, on) with
  | None, true ->
    t.poison <-
      Some (Bytes.make (((Region.size t.reg / 8) + 7) / 8) '\000');
    Atomic.incr n_poisoning
  | Some _, false ->
    t.poison <- None;
    Atomic.decr n_poisoning
  | _ -> ()

let poisoning t = t.poison <> None

(* Mark only granules fully inside the freed block (a block boundary
   always is granule-aligned for small classes; large sizes may end
   mid-granule and the tail granule stays unmarked). *)
let poison_free t off len =
  match t.poison with
  | None -> ()
  | Some bm ->
    Region.fill t.reg ~off ~len poison_byte;
    for g = (off + 7) / 8 to ((off + len) / 8) - 1 do
      Bytes.set_uint8 bm (g / 8)
        (Bytes.get_uint8 bm (g / 8) lor (1 lsl (g mod 8)))
    done

(* Clear every granule overlapping the block being handed out — also
   erases stale marks left from a previous life of the storage under a
   different block geometry. *)
let unpoison_alloc t off len =
  match t.poison with
  | None -> ()
  | Some bm ->
    for g = off / 8 to (off + len - 1) / 8 do
      Bytes.set_uint8 bm (g / 8)
        (Bytes.get_uint8 bm (g / 8) land lnot (1 lsl (g mod 8)))
    done

(* Exposed for satellite allocators (the bump arena) that carve their
   own objects out of Ralloc large blocks: they keep use-after-free
   detection alive by marking freed object spans and clearing spans
   they hand out, with the same granule discipline as free/alloc. *)
let poison_mark t ~off ~len = poison_free t off len

let poison_clear t ~off ~len = unpoison_alloc t off len

let poison_guard reg ~off ~len =
  if Atomic.get n_poisoning > 0 then
    (* Racy read of the runtimes list is fine: it is an immutable list
       behind a ref, and a stale snapshot only delays detection for a
       heap registered concurrently with this access. *)
    match List.find_opt (fun (r, _) -> r == reg) !runtimes with
    | Some (_, { poison = Some bm; _ }) ->
      let g1 = (off + max len 1 - 1) / 8 in
      for g = off / 8 to g1 do
        if Bytes.get_uint8 bm (g / 8) land (1 lsl (g mod 8)) <> 0 then
          raise
            (Use_after_free
               (Printf.sprintf
                  "use-after-free: access at off=%d len=%d touches freed \
                   heap block"
                  off len))
      done
    | _ -> ()

(* ---- Format and attach ---------------------------------------------- *)

let create reg =
  let t = new_runtime reg in
  Region.kernel_mode (fun () ->
    let count = (Region.size reg - sb_base) / superblock_size in
    if count < 1 then invalid_arg "Ralloc.create: region too small";
    wr t off_magic magic;
    wr t off_sb_size superblock_size;
    wr t off_sb_base sb_base;
    wr t off_sb_count count;
    wr t off_next_fresh 0;
    wr t off_used 0;
    wr t off_free_sb_head 0;
    for i = 0 to root_slots - 1 do
      wr t (off_roots + (8 * i)) 0
    done;
    for c = 0 to 31 do
      wr t (off_partial_heads + (8 * c)) 0
    done);
  t

let scan_used t =
  let total = ref 0 in
  let fresh = min (rd t off_next_fresh) (sb_count t) in
  let i = ref 0 in
  while !i < fresh do
    let sb = sb_off t !i in
    match rd t (sb + f_kind) with
    | k when k = kind_small ->
      let bs = rd t (sb + f_block_size) in
      let live = rd t (sb + f_bump) - rd t (sb + f_free_count) in
      total := !total + (live * bs);
      incr i
    | k when k = kind_large_head ->
      total := !total + rd t (sb + f_large_size);
      i := !i + max 1 (rd t (sb + f_large_sbs))
    | _ -> incr i
  done;
  !total

let attach reg =
  match find_runtime reg with
  | Some t -> t
  | None ->
    let t = new_runtime reg in
    Region.kernel_mode (fun () ->
      if rd t off_magic <> magic then
        failwith "Ralloc.attach: bad magic (not a formatted heap)";
      if rd t off_sb_size <> superblock_size then
        failwith "Ralloc.attach: superblock size mismatch";
      Atomic.set t.used (scan_used t));
    t

(* ---- Per-thread caches ----------------------------------------------- *)

let cache_refill = 16

let cache_flush_trigger = 48

let cache_keep = 16

type cache = int list ref array (* one free-block list per class *)

let caches_key : (int, int * cache) Hashtbl.t Tls.key =
  Tls.new_key (fun () -> Hashtbl.create 4)

(* Caches are stamped with the heap generation they were filled under;
   a recovery bumps the generation, so survivors of a crash silently
   drop caches whose blocks recovery may have reclaimed. *)
let my_cache t : cache =
  let tbl = Tls.get caches_key in
  match Hashtbl.find_opt tbl t.heap_id with
  | Some (g, c) when g = t.gen -> c
  | _ ->
    let c = Array.init n_classes (fun _ -> ref []) in
    Hashtbl.replace tbl t.heap_id (t.gen, c);
    c

(* ---- Partial-list management (under the class lock) ------------------ *)

let partial_head_off c = off_partial_heads + (8 * c)

let push_partial t c sb =
  let head = rd t (partial_head_off c) in
  wr t (sb + f_next_partial) head;
  wr t (sb + f_prev_partial) 0;
  if head <> 0 then wr t (head + f_prev_partial) sb;
  wr t (partial_head_off c) sb;
  wr t (sb + f_on_partial) 1

let unlink_partial t c sb =
  let next = rd t (sb + f_next_partial) in
  let prev = rd t (sb + f_prev_partial) in
  if prev <> 0 then wr t (prev + f_next_partial) next
  else wr t (partial_head_off c) next;
  if next <> 0 then wr t (next + f_prev_partial) prev;
  wr t (sb + f_next_partial) 0;
  wr t (sb + f_prev_partial) 0;
  wr t (sb + f_on_partial) 0

(* ---- Superblock pool (under sb_lock) ---------------------------------- *)

let push_free_sb t sb =
  wr t (sb + f_kind) kind_free;
  wr t (sb + f_next_free_sb) (rd t off_free_sb_head);
  wr t off_free_sb_head sb

(* Pop a free superblock: first the free list (skipping entries
   re-claimed by the large-allocation scan), then fresh storage. *)
let pop_free_sb t =
  let rec from_list () =
    let head = rd t off_free_sb_head in
    if head = 0 then None
    else begin
      wr t off_free_sb_head (rd t (head + f_next_free_sb));
      if rd t (head + f_kind) = kind_free then Some head else from_list ()
    end
  in
  match from_list () with
  | Some sb -> Some sb
  | None ->
    let fresh = rd t off_next_fresh in
    if fresh >= sb_count t then None
    else begin
      wr t off_next_fresh (fresh + 1);
      Some (sb_off t fresh)
    end

let grab_superblock t c =
  Mutex.lock t.sb_lock;
  let sb = pop_free_sb t in
  (match sb with
   | Some sb ->
     let bs = size_classes.(c) in
     wr t (sb + f_kind) kind_small;
     wr t (sb + f_class) c;
     wr t (sb + f_block_size) bs;
     wr t (sb + f_num_blocks) ((superblock_size - sb_hdr) / bs);
     wr t (sb + f_free_head) 0;
     wr t (sb + f_free_count) 0;
     wr t (sb + f_bump) 0;
     wr t (sb + f_next_partial) 0;
     wr t (sb + f_prev_partial) 0;
     wr t (sb + f_on_partial) 0
   | None -> ());
  Mutex.unlock t.sb_lock;
  sb

(* ---- Small allocation ------------------------------------------------- *)

(* Carve up to [want] blocks from [sb]'s freelist then bump area.
   Returns blocks carved; caller holds the class lock. *)
let carve t sb bs want =
  let got = ref [] in
  let n = ref 0 in
  let continue_ = ref true in
  while !n < want && !continue_ do
    let fh = rd t (sb + f_free_head) in
    if fh <> 0 then begin
      wr t (sb + f_free_head) (rd t (fh + 0));
      wr t (sb + f_free_count) (rd t (sb + f_free_count) - 1);
      got := fh :: !got;
      incr n
    end
    else begin
      let bump = rd t (sb + f_bump) in
      if bump < rd t (sb + f_num_blocks) then begin
        wr t (sb + f_bump) (bump + 1);
        got := (sb + sb_hdr + (bump * bs)) :: !got;
        incr n
      end
      else continue_ := false
    end
  done;
  !got

let refill_class t c want =
  let bs = size_classes.(c) in
  Mutex.lock t.class_locks.(c);
  let acc = ref [] in
  let missing () = want - List.length !acc in
  (* grab_superblock takes sb_lock while we hold the class lock; lock
     order is always class -> sb, so this cannot deadlock. *)
  let rec fill () =
    if missing () > 0 then begin
      let sb = rd t (partial_head_off c) in
      if sb <> 0 then begin
        let got = carve t sb bs (missing ()) in
        acc := got @ !acc;
        if missing () > 0 then begin
          (* Head exhausted; retire it from the partial list. *)
          unlink_partial t c sb;
          fill ()
        end
      end
      else
        match grab_superblock t c with
        | Some sb ->
          push_partial t c sb;
          fill ()
        | None -> ()
    end
  in
  fill ();
  let got_n = List.length !acc in
  if got_n > 0 then
    Atomic.set t.used (Atomic.get t.used + (got_n * bs));
  Mutex.unlock t.class_locks.(c);
  !acc

(* ---- Large allocation -------------------------------------------------- *)

let large_sbs_needed size = (size + sb_hdr + superblock_size - 1) / superblock_size

(* Unlink every superblock of the run [head, head + n*superblock_size)
   from the free-superblock list. Must happen {e before} the run is
   handed out as a large block: once user data covers the absorbed
   headers, their [f_next_free_sb] words are gone and a later
   {!pop_free_sb} would chase garbage. Caller holds [sb_lock]. *)
let unlink_free_run t head n =
  let lo = head and hi = head + (n * superblock_size) in
  let rec filter prev p =
    if p <> 0 then begin
      let next = rd t (p + f_next_free_sb) in
      if p >= lo && p < hi then begin
        if prev = 0 then wr t off_free_sb_head next
        else wr t (prev + f_next_free_sb) next;
        filter prev next
      end
      else filter p next
    end
  in
  filter 0 (rd t off_free_sb_head)

let alloc_large t size =
  let need = large_sbs_needed size in
  Mutex.lock t.sb_lock;
  let count = sb_count t in
  let head = ref 0 in
  (* Prefer fresh contiguous storage. *)
  let fresh = rd t off_next_fresh in
  if fresh + need <= count then begin
    wr t off_next_fresh (fresh + need);
    head := sb_off t fresh
  end
  else begin
    (* First-fit scan for a free run, stepping structurally so live
       large runs are never inspected in the middle. *)
    let run_start = ref 0 and run_len = ref 0 and i = ref 0 in
    while !head = 0 && !i < fresh do
      let sb = sb_off t !i in
      match rd t (sb + f_kind) with
      | k when k = kind_free ->
        if !run_len = 0 then run_start := !i;
        incr run_len;
        if !run_len = need then head := sb_off t !run_start;
        incr i
      | k when k = kind_large_head ->
        run_len := 0;
        i := !i + max 1 (rd t (sb + f_large_sbs))
      | _ ->
        run_len := 0;
        incr i
    done;
    if !head <> 0 then unlink_free_run t !head need
  end;
  if !head <> 0 then begin
    let h = !head in
    wr t (h + f_kind) kind_large_head;
    wr t (h + f_large_sbs) need;
    wr t (h + f_large_size) size;
    Atomic.set t.used (Atomic.get t.used + size)
  end;
  Mutex.unlock t.sb_lock;
  if !head = 0 then raise Out_of_heap
  else begin
    let off = !head + sb_hdr in
    unpoison_alloc t off size;
    off
  end

(* ---- Public alloc/free -------------------------------------------------- *)

let alloc t size =
  if size <= 0 then invalid_arg "Ralloc.alloc: size must be positive";
  Telemetry.Counters.incr Telemetry.Counters.Id.alloc_calls;
  Telemetry.Counters.add ~n:size Telemetry.Counters.Id.alloc_bytes;
  Telemetry.Span.around ~phase:"alloc" @@ fun () ->
  if size > max_small then begin
    let off = alloc_large t size in
    Telemetry.Flight.record Telemetry.Flight.Alloc_large ~a:size ~b:off;
    off
  end
  else begin
    let c = class_of_size size in
    let cache = (my_cache t).(c) in
    match !cache with
    | off :: rest ->
      cache := rest;
      unpoison_alloc t off size_classes.(c);
      off
    | [] ->
      (match refill_class t c cache_refill with
       | [] -> raise Out_of_heap
       | off :: rest ->
         cache := rest;
         unpoison_alloc t off size_classes.(c);
         off)
  end

(* Return one block to its superblock; caller holds the class lock. *)
let return_block t c sb off =
  wr t (off + 0) (rd t (sb + f_free_head));
  wr t (sb + f_free_head) off;
  let fc = rd t (sb + f_free_count) + 1 in
  wr t (sb + f_free_count) fc;
  let bump = rd t (sb + f_bump) in
  if fc = bump && fc = rd t (sb + f_num_blocks) then begin
    (* Every carved block is back: release the superblock. *)
    if rd t (sb + f_on_partial) = 1 then unlink_partial t c sb;
    Mutex.lock t.sb_lock;
    push_free_sb t sb;
    Mutex.unlock t.sb_lock
  end
  else if rd t (sb + f_on_partial) = 0 then push_partial t c sb

let flush_blocks t c blocks =
  let bs = size_classes.(c) in
  Mutex.lock t.class_locks.(c);
  List.iter (fun off -> return_block t c (sb_of_block t off) off) blocks;
  Atomic.set t.used (Atomic.get t.used - (List.length blocks * bs));
  Mutex.unlock t.class_locks.(c)

let free_large t off =
  let sb = off - sb_hdr in
  Mutex.lock t.sb_lock;
  let n = rd t (sb + f_large_sbs) in
  let size = rd t (sb + f_large_size) in
  for j = n - 1 downto 0 do
    push_free_sb t (sb + (j * superblock_size))
  done;
  Atomic.set t.used (Atomic.get t.used - size);
  Mutex.unlock t.sb_lock

let free t off =
  if off < sb_base || off >= Region.size t.reg then
    invalid_arg "Ralloc.free: offset outside heap";
  Telemetry.Counters.incr Telemetry.Counters.Id.free_calls;
  Telemetry.Span.around ~phase:"free" @@ fun () ->
  let sb = sb_of_block t off in
  match rd t (sb + f_kind) with
  | k when k = kind_large_head ->
    if off <> sb + sb_hdr then invalid_arg "Ralloc.free: misaligned large block";
    let size = rd t (sb + f_large_size) in
    poison_free t off size;
    free_large t off;
    Telemetry.Flight.record Telemetry.Flight.Free_large ~a:size ~b:off
  | k when k = kind_small ->
    let c = rd t (sb + f_class) in
    poison_free t off size_classes.(c);
    let cache = (my_cache t).(c) in
    cache := off :: !cache;
    if List.length !cache > cache_flush_trigger then begin
      let rec split i acc = function
        | l when i = 0 -> (acc, l)
        | x :: rest -> split (i - 1) (x :: acc) rest
        | [] -> (acc, [])
      in
      let keep, spill = split cache_keep [] !cache in
      cache := keep;
      flush_blocks t c spill
    end
  | _ -> invalid_arg "Ralloc.free: block not allocated"

let usable_size t off =
  let sb = sb_of_block t off in
  match rd t (sb + f_kind) with
  | k when k = kind_small -> rd t (sb + f_block_size)
  | k when k = kind_large_head -> rd t (sb + f_large_size)
  | _ -> invalid_arg "Ralloc.usable_size: block not allocated"

let flush_thread_cache t =
  let cache = my_cache t in
  for c = 0 to n_classes - 1 do
    let blocks = !(cache.(c)) in
    if blocks <> [] then begin
      cache.(c) := [];
      flush_blocks t c blocks
    end
  done

(* ---- Roots -------------------------------------------------------------- *)

let root_off id =
  if id < 0 || id >= root_slots then invalid_arg "Ralloc: root id";
  off_roots + (8 * id)

let set_root t id off = Pptr.store t.reg ~at:(root_off id) off

let get_root t id = Pptr.load t.reg ~at:(root_off id)

(* ---- Persistence ---------------------------------------------------------- *)

let flush t ~path =
  Region.kernel_mode (fun () ->
    (* the cache flush touches the (possibly pkey-sealed) heap, and
       shutdown runs in the bookkeeping process's kernel-side path *)
    flush_thread_cache t;
    wr t off_used (Atomic.get t.used);
    Region.flush t.reg ~path)

(* ---- Post-crash recovery --------------------------------------------------

   Rebuild every piece of volatile allocator metadata from two inputs:
   the superblock headers (which crash points can never tear — the
   allocator's critical sections contain no scheduler sync points) and
   the caller-supplied set of reachable block offsets. Everything
   carved but not reachable is reclaimed: blocks sitting in a dead
   process's thread cache, and blocks in the allocated-but-not-yet-
   linked window of a call killed mid-flight. *)

let recover t ~live =
  Region.kernel_mode (fun () ->
    let fail fmt = Printf.ksprintf invalid_arg fmt in
    (* Survivors' caches may hold blocks that the rebuild below puts
       back on shared freelists; invalidate every cache at once. *)
    t.gen <- t.gen + 1;
    let fresh = min (rd t off_next_fresh) (sb_count t) in
    let carved_end = sb_off t fresh in
    let live_by_sb = Hashtbl.create 64 in
    List.iter
      (fun off ->
        if off < sb_base + sb_hdr || off >= carved_end then
          fail "Ralloc.recover: live offset %d outside carved heap" off;
        let sb = sb_of_block t off in
        Hashtbl.replace live_by_sb sb
          (off :: Option.value ~default:[] (Hashtbl.find_opt live_by_sb sb)))
      live;
    let free_sbs = ref [] in
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      let live_here =
        Option.value ~default:[] (Hashtbl.find_opt live_by_sb sb)
      in
      match rd t (sb + f_kind) with
      | k when k = kind_small ->
        let bs = rd t (sb + f_block_size) in
        let bump = rd t (sb + f_bump) in
        if live_here = [] then begin
          (* No reachable block: reclaim the whole superblock. *)
          poison_free t (sb + sb_hdr) (bump * bs);
          free_sbs := sb :: !free_sbs
        end
        else begin
          let is_live = Array.make (max bump 1) false in
          List.iter
            (fun off ->
              let rel = off - sb - sb_hdr in
              if rel < 0 || rel mod bs <> 0 || rel / bs >= bump then
                fail "Ralloc.recover: offset %d is not a carved block" off;
              is_live.(rel / bs) <- true)
            live_here;
          (* Fresh freelist out of the dead carved blocks; reachable
             blocks get their poison marks cleared (they may have been
             freed by the dead process after the store last saw them —
             reachability wins). *)
          wr t (sb + f_free_head) 0;
          let fc = ref 0 in
          for b = bump - 1 downto 0 do
            let off = sb + sb_hdr + (b * bs) in
            if is_live.(b) then unpoison_alloc t off bs
            else begin
              poison_free t off bs;
              wr t (off + 0) (rd t (sb + f_free_head));
              wr t (sb + f_free_head) off;
              incr fc
            end
          done;
          wr t (sb + f_free_count) !fc;
          wr t (sb + f_next_partial) 0;
          wr t (sb + f_prev_partial) 0;
          wr t (sb + f_on_partial) 0
        end;
        incr i
      | k when k = kind_large_head ->
        let n = max 1 (rd t (sb + f_large_sbs)) in
        let lsize = rd t (sb + f_large_size) in
        if List.mem (sb + sb_hdr) live_here then
          unpoison_alloc t (sb + sb_hdr) lsize
        else begin
          if live_here <> [] then
            fail "Ralloc.recover: interior offset into large block";
          poison_free t (sb + sb_hdr) lsize;
          for j = n - 1 downto 0 do
            free_sbs := (sb + (j * superblock_size)) :: !free_sbs
          done
        end;
        i := !i + n
      | _ ->
        if live_here <> [] then
          fail "Ralloc.recover: live offset in a free superblock";
        free_sbs := sb :: !free_sbs;
        incr i
    done;
    (* Rebuild the free-superblock list... *)
    wr t off_free_sb_head 0;
    List.iter (fun sb -> push_free_sb t sb) (List.rev !free_sbs);
    (* ...then the per-class partial lists, from scratch. *)
    for c = 0 to 31 do
      wr t (partial_head_off c) 0
    done;
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      match rd t (sb + f_kind) with
      | k when k = kind_small ->
        if rd t (sb + f_free_count) > 0
           || rd t (sb + f_bump) < rd t (sb + f_num_blocks)
        then push_partial t (rd t (sb + f_class)) sb;
        incr i
      | k when k = kind_large_head ->
        i := !i + max 1 (rd t (sb + f_large_sbs))
      | _ -> incr i
    done;
    Atomic.set t.used (scan_used t))

(* ---- Introspection --------------------------------------------------------- *)

type class_stat = {
  cs_block_size : int;
  cs_superblocks : int;
  cs_free_blocks : int;
  cs_cached_blocks : int;
}

let class_stats t =
  Region.kernel_mode (fun () ->
    let stats =
      Array.init n_classes (fun c ->
        { cs_block_size = size_classes.(c); cs_superblocks = 0;
          cs_free_blocks = 0;
          cs_cached_blocks = List.length !((my_cache t).(c)) })
    in
    let fresh = rd t off_next_fresh in
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      (match rd t (sb + f_kind) with
       | k when k = kind_small ->
         let c = rd t (sb + f_class) in
         let free_blocks =
           rd t (sb + f_free_count)
           + (rd t (sb + f_num_blocks) - rd t (sb + f_bump))
         in
         stats.(c) <-
           { (stats.(c)) with
             cs_superblocks = stats.(c).cs_superblocks + 1;
             cs_free_blocks = stats.(c).cs_free_blocks + free_blocks };
         incr i
       | k when k = kind_large_head ->
         i := !i + max 1 (rd t (sb + f_large_sbs))
       | _ -> incr i)
    done;
    stats)

(* ---- Heap observatory ------------------------------------------------ *)

type heap_class = {
  hc_block_size : int;
  hc_superblocks : int;
  hc_capacity : int;  (** blocks the class's superblocks could hold *)
  hc_carved : int;  (** blocks ever bumped out *)
  hc_live : int;  (** carved minus freelisted (cached blocks count live) *)
}

type heap_map = {
  hm_classes : heap_class array;
  hm_large_runs : int;
  hm_large_sbs : int;
  hm_large_bytes : int;
  hm_small_sbs : int;
  hm_free_sbs : int;  (** carved then fully released *)
  hm_fresh_sbs : int;  (** never carved *)
  hm_total_sbs : int;
  hm_live_bytes : int;  (** reconciles with {!used_bytes} *)
  hm_largest_free_run : int;
  (** longest allocatable extent in superblocks; the fresh tail
      extends a free run ending at the carve frontier *)
  hm_free_run_sbs : int;  (** free + fresh superblocks *)
  hm_ext_frag : float;
  (** 1 - largest_free_run / free_run_sbs: 0 when all free storage is
      one extent (or there is none), approaching 1 as the free space
      shatters into unusable shards *)
}

(* One structural walk builds the whole profile; like [scan_used] it
   reads superblock headers only, so it is safe on a freshly attached
   (even crashed) heap. *)
let heap_map t =
  Region.kernel_mode (fun () ->
    let classes =
      Array.init n_classes (fun c ->
        { hc_block_size = size_classes.(c); hc_superblocks = 0;
          hc_capacity = 0; hc_carved = 0; hc_live = 0 })
    in
    let count = sb_count t in
    let fresh = min (rd t off_next_fresh) count in
    let large_runs = ref 0 and large_sbs = ref 0 and large_bytes = ref 0 in
    let small_sbs = ref 0 and free_sbs = ref 0 in
    let live_bytes = ref 0 in
    let run = ref 0 and largest = ref 0 in
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      (match rd t (sb + f_kind) with
       | k when k = kind_small ->
         let c = rd t (sb + f_class) in
         let bump = rd t (sb + f_bump) in
         let live = bump - rd t (sb + f_free_count) in
         if c >= 0 && c < n_classes then
           classes.(c) <-
             { (classes.(c)) with
               hc_superblocks = classes.(c).hc_superblocks + 1;
               hc_capacity = classes.(c).hc_capacity + rd t (sb + f_num_blocks);
               hc_carved = classes.(c).hc_carved + bump;
               hc_live = classes.(c).hc_live + live };
         live_bytes := !live_bytes + (live * rd t (sb + f_block_size));
         incr small_sbs;
         run := 0;
         incr i
       | k when k = kind_large_head ->
         let n = max 1 (rd t (sb + f_large_sbs)) in
         incr large_runs;
         large_sbs := !large_sbs + n;
         large_bytes := !large_bytes + rd t (sb + f_large_size);
         live_bytes := !live_bytes + rd t (sb + f_large_size);
         run := 0;
         i := !i + n
       | _ ->
         incr free_sbs;
         incr run;
         if !run > !largest then largest := !run;
         incr i)
    done;
    (* A free run touching the carve frontier merges with the fresh
       tail: [alloc_large] prefers fresh storage, so the allocatable
       extent is their sum. *)
    let fresh_tail = count - fresh in
    if !run + fresh_tail > !largest then largest := !run + fresh_tail;
    let free_total = !free_sbs + fresh_tail in
    { hm_classes = classes; hm_large_runs = !large_runs;
      hm_large_sbs = !large_sbs; hm_large_bytes = !large_bytes;
      hm_small_sbs = !small_sbs; hm_free_sbs = !free_sbs;
      hm_fresh_sbs = fresh_tail; hm_total_sbs = count;
      hm_live_bytes = !live_bytes;
      hm_largest_free_run = (if free_total = 0 then 0 else !largest);
      hm_free_run_sbs = free_total;
      hm_ext_frag =
        (if free_total = 0 then 0.
         else 1. -. (float_of_int !largest /. float_of_int free_total)) })

let heap_kvs t =
  let m = heap_map t in
  let base =
    [ ("heap_bytes_used", string_of_int (used_bytes t));
      ("heap_bytes_live", string_of_int m.hm_live_bytes);
      ("heap_bytes_capacity", string_of_int (capacity t));
      ("heap_sb_total", string_of_int m.hm_total_sbs);
      ("heap_sb_small", string_of_int m.hm_small_sbs);
      ("heap_sb_large", string_of_int m.hm_large_sbs);
      ("heap_sb_free", string_of_int m.hm_free_sbs);
      ("heap_sb_fresh", string_of_int m.hm_fresh_sbs);
      ("heap_large_runs", string_of_int m.hm_large_runs);
      ("heap_large_bytes", string_of_int m.hm_large_bytes);
      ("heap_largest_free_run_sbs", string_of_int m.hm_largest_free_run);
      ("heap_ext_frag", Printf.sprintf "%.4f" m.hm_ext_frag) ]
  in
  let per_class =
    Array.to_list m.hm_classes
    |> List.filter (fun hc -> hc.hc_superblocks > 0)
    |> List.concat_map (fun hc ->
      let p = Printf.sprintf "heap_class_%d" hc.hc_block_size in
      [ (p ^ "_superblocks", string_of_int hc.hc_superblocks);
        (p ^ "_live", string_of_int hc.hc_live);
        (p ^ "_capacity", string_of_int hc.hc_capacity);
        (p ^ "_util",
         Printf.sprintf "%.4f"
           (if hc.hc_capacity = 0 then 0.
            else float_of_int hc.hc_live /. float_of_int hc.hc_capacity)) ])
  in
  base @ per_class

(* One character per superblock ('.' free, 's' small, 'L' large head,
   'l' large continuation, '_' never carved), 64 to a row — the
   heap-map.txt CI artifact. *)
let render_heap_map t =
  let m = heap_map t in
  let b = Buffer.create 1024 in
  Region.kernel_mode (fun () ->
    let count = sb_count t in
    let fresh = min (rd t off_next_fresh) count in
    let chars = Bytes.make count '_' in
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      (match rd t (sb + f_kind) with
       | k when k = kind_small ->
         Bytes.set chars !i 's';
         incr i
       | k when k = kind_large_head ->
         let n = max 1 (rd t (sb + f_large_sbs)) in
         Bytes.set chars !i 'L';
         for j = 1 to min (n - 1) (count - !i - 1) do
           Bytes.set chars (!i + j) 'l'
         done;
         i := !i + n
       | _ ->
         Bytes.set chars !i '.';
         incr i)
    done;
    Buffer.add_string b
      (Printf.sprintf
         "heap map: %d superblocks x %d bytes (used %d / %d bytes, ext-frag \
          %.4f, largest free extent %d sbs)\n"
         count superblock_size (used_bytes t) (capacity t) m.hm_ext_frag
         m.hm_largest_free_run);
    let pos = ref 0 in
    while !pos < count do
      let n = min 64 (count - !pos) in
      Buffer.add_string b (Bytes.sub_string chars !pos n);
      Buffer.add_char b '\n';
      pos := !pos + n
    done);
  Array.iter
    (fun hc ->
      if hc.hc_superblocks > 0 then
        Buffer.add_string b
          (Printf.sprintf "class %5d: %2d sb, %4d/%4d blocks live (%.1f%%)\n"
             hc.hc_block_size hc.hc_superblocks hc.hc_live hc.hc_capacity
             (100.
              *. (if hc.hc_capacity = 0 then 0.
                  else float_of_int hc.hc_live /. float_of_int hc.hc_capacity))))
    m.hm_classes;
  Buffer.contents b

let check_invariants t =
  Region.kernel_mode (fun () ->
    let fail fmt = Printf.ksprintf failwith fmt in
    if rd t off_magic <> magic then fail "bad magic";
    let fresh = rd t off_next_fresh in
    let count = sb_count t in
    if fresh < 0 || fresh > count then fail "next_fresh out of range";
    let i = ref 0 in
    while !i < fresh do
      let sb = sb_off t !i in
      (match rd t (sb + f_kind) with
       | k when k = kind_free -> incr i
       | k when k = kind_small ->
         let bs = rd t (sb + f_block_size) in
         let c = rd t (sb + f_class) in
         if c < 0 || c >= n_classes || size_classes.(c) <> bs then
           fail "sb %d: class/block-size mismatch" !i;
         let bump = rd t (sb + f_bump) in
         let fc = rd t (sb + f_free_count) in
         let nb = rd t (sb + f_num_blocks) in
         if not (0 <= fc && fc <= bump && bump <= nb) then
           fail "sb %d: counter order violated (fc=%d bump=%d nb=%d)" !i fc
             bump nb;
         (* Walk the freelist. *)
         let seen = ref 0 in
         let p = ref (rd t (sb + f_free_head)) in
         while !p <> 0 do
           if !p < sb + sb_hdr || !p >= sb + superblock_size then
             fail "sb %d: freelist escapes superblock" !i;
           if (!p - sb - sb_hdr) mod bs <> 0 then
             fail "sb %d: misaligned freelist entry" !i;
           incr seen;
           if !seen > fc then fail "sb %d: freelist longer than free_count" !i;
           p := rd t (!p + 0)
         done;
         if !seen <> fc then
           fail "sb %d: freelist length %d <> free_count %d" !i !seen fc;
         incr i
       | k when k = kind_large_head ->
         let n = rd t (sb + f_large_sbs) in
         if n < 1 || !i + n > count then fail "sb %d: large run escapes heap" !i;
         let sz = rd t (sb + f_large_size) in
         if sz + sb_hdr > n * superblock_size
            || (n > 1 && sz + sb_hdr <= (n - 1) * superblock_size)
         then fail "sb %d: large size %d does not fit its %d-sb run" !i sz n;
         i := !i + n
       | k -> fail "sb %d: invalid kind %d" !i k)
    done;
    (* The free-superblock list must stay within the carved area and
       contain only free superblocks. *)
    let seen_free = ref 0 in
    let p = ref (rd t off_free_sb_head) in
    while !p <> 0 do
      incr seen_free;
      if !seen_free > count then fail "free-superblock list cycles";
      if !p < sb_base || !p >= sb_off t fresh then
        fail "free-superblock list escapes carved area";
      if (!p - sb_base) mod superblock_size <> 0 then
        fail "misaligned free-superblock entry";
      if rd t (!p + f_kind) <> kind_free then
        fail "non-free superblock on the free list";
      p := rd t (!p + f_next_free_sb)
    done;
    (* Partial lists must be doubly linked and flagged. *)
    for c = 0 to n_classes - 1 do
      let p = ref (rd t (partial_head_off c)) in
      let prev = ref 0 in
      while !p <> 0 do
        if rd t (!p + f_kind) <> kind_small then fail "class %d: non-small sb on partial list" c;
        if rd t (!p + f_class) <> c then fail "class %d: wrong-class sb on partial list" c;
        if rd t (!p + f_on_partial) <> 1 then fail "class %d: unflagged sb on partial list" c;
        if rd t (!p + f_prev_partial) <> !prev then fail "class %d: broken prev link" c;
        prev := !p;
        p := rd t (!p + f_next_partial)
      done
    done)
