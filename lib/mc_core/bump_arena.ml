(** Per-thread bump-allocation hot tier over the shared Ralloc heap.

    Small, hot values dominate memcached's set path; serving them from
    Ralloc means size-class traffic (class locks, freelists, caches)
    on every store. This tier follows the lambdachine block/region
    idiom instead: 1 MiB {e regions} are carved out of the Ralloc heap
    as ordinary large blocks, each region is split into 32 KiB
    {e blocks}, and every block has at most one writer — the thread
    currently bumping it — so the allocation fast path is a pointer
    increment with no shared state.

    Because regions are plain Ralloc large blocks chained from a
    persistent root, crash recovery can sweep the tier: the store's
    recovery hands back the arena-resident live objects, the region
    heads keep the large blocks alive through {!Ralloc.recover}, and
    {!recover} rebuilds each block's bump offset and live count from
    the survivors (re-poisoning the dead spans, which Ralloc's own
    recovery unpoisoned wholesale as part of the live large block).

    Region layout (offsets relative to the region head):
    - block 0 is the directory: magic word, a pptr to the next region
      in the chain, then per-block records [(bump_off, live_count)];
    - blocks 1..31 hold objects, each prefixed by an 8-byte header
      carrying its usable size.

    Shared-memory writes happen only while the calling thread owns the
    block (bump path) or under the handle's host mutex (live counts,
    block recycling), so the tier adds no virtual-time lock traffic —
    that is the point. *)

module Region = Shm.Region

let region_size = 1 lsl 20

let block_size = 32 lsl 10

let blocks_per_region = region_size / block_size (* 32, incl. directory *)

let hot_max = 512
(** Largest request served by the tier (whole item: header+key+value). *)

let obj_header = 8 (* usable size of the object, read back by free *)

let magic = 0x41524E41 (* "ARNA" *)

(* Directory cells, relative to the region head. *)
let dir_magic = 0

let dir_next = 8 (* pptr: next region in the chain *)

let dir_block k = 16 + (16 * k) (* (bump_off i64, live i64) for block k *)

type t = {
  heap : Ralloc.t;
  reg : Region.t;
  anchor : int option;
  (** Offset of a pptr cell anchoring the region chain (a Ralloc
      persistent root in the plib build); [None] keeps the chain only
      in this handle — no crash recovery. *)
  lock : Mutex.t;
  (* Host-side mirrors of persistent state, rebuilt by [recover]. *)
  mutable regions : int list;  (** region heads, newest first *)
  mutable free_blocks : int list;  (** empty block heads, recyclable *)
  mutable frontier : (int * int) option;  (** (region, next uncarved k) *)
  owned : (int, unit) Hashtbl.t;  (** block heads currently cursored *)
  mutable gen : int;  (** bumped by recover: invalidates cursors *)
}

(* Effect-free host mutex: safe under the Vm (fibers never block inside). *)
let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rd64 t off = Int64.to_int (Region.read_i64_raw t.reg off)

let wr64 t off v = Region.write_i64_raw t.reg off (Int64.of_int v)

(* Walk the persistent chain (attach/recover): region heads, validated
   by magic, bounded by the heap size. *)
let walk_chain t =
  match t.anchor with
  | None -> []
  | Some at ->
    let max_regions = Ralloc.capacity t.heap / region_size in
    let rec go r n acc =
      if r = 0 || n > max_regions then List.rev acc
      else if rd64 t (r + dir_magic) <> magic then List.rev acc
      else go (Ralloc.Pptr.load t.reg ~at:(r + dir_next)) (n + 1) (r :: acc)
    in
    go (Ralloc.Pptr.load t.reg ~at) 0 []

let create ~heap ?anchor () =
  let t =
    { heap; reg = Ralloc.region heap; anchor; lock = Mutex.create ();
      regions = []; free_blocks = []; frontier = None;
      owned = Hashtbl.create 8; gen = 0 }
  in
  t.regions <- walk_chain t;
  (* Reattaching (bookkeeper restart, no crash): block state in the
     directories is intact; trust it. Cursors of the previous process
     are gone, so every partially-bumped block is simply not resumed —
     its slack returns when its live count drains to zero. *)
  List.iter
    (fun r ->
      for k = 1 to blocks_per_region - 1 do
        let rec_off = r + dir_block k in
        if rd64 t rec_off = 0 && rd64 t (rec_off + 8) = 0 then
          t.free_blocks <- (r + (k * block_size)) :: t.free_blocks
      done)
    t.regions;
  t

let owns t off =
  List.exists (fun r -> off > r && off < r + region_size) t.regions

let region_of t off =
  List.find (fun r -> off > r && off < r + region_size) t.regions

let block_index ~region off = (off - region) / block_size

(* ---- Region growth ------------------------------------------------------ *)

let add_region t =
  match Ralloc.alloc t.heap region_size with
  | exception Ralloc.Out_of_heap -> false
  | r ->
    wr64 t (r + dir_magic) magic;
    for k = 1 to blocks_per_region - 1 do
      wr64 t (r + dir_block k) 0;
      wr64 t (r + dir_block k + 8) 0
    done;
    (* Link: new region points at the old chain head, then the anchor
       (when present) moves — a crash between the two leaks nothing
       (the unanchored region is reclaimed by Ralloc.recover). *)
    let old_head = match t.regions with [] -> 0 | r0 :: _ -> r0 in
    Ralloc.Pptr.store t.reg ~at:(r + dir_next) old_head;
    (match t.anchor with
     | Some at -> Ralloc.Pptr.store t.reg ~at r
     | None -> ());
    t.regions <- r :: t.regions;
    t.frontier <- Some (r, 1);
    true

(* Take the next available block, lock held. 0 when the heap is out. *)
let take_block t =
  match t.free_blocks with
  | b :: rest ->
    t.free_blocks <- rest;
    b
  | [] ->
    let carve () =
      match t.frontier with
      | Some (r, k) when k < blocks_per_region ->
        t.frontier <- (if k + 1 < blocks_per_region then Some (r, k + 1)
                       else None);
        r + (k * block_size)
      | _ -> 0
    in
    (match carve () with
     | 0 -> if add_region t then carve () else 0
     | b -> b)

(* ---- Per-thread cursor --------------------------------------------------- *)

type cursor = { mutable cur_block : int; mutable cur_gen : int }

(* Keyed per heap handle: two arenas in one process must not share
   cursors. Generation-stamped so recovery orphans every cursor. *)
let cursors : (t * cursor) list ref Tls.key = Tls.new_key (fun () -> ref [])

let my_cursor t =
  let l = Tls.get cursors in
  match List.find_opt (fun (t', _) -> t' == t) !l with
  | Some (_, c) ->
    if c.cur_gen <> t.gen then begin
      c.cur_block <- 0;
      c.cur_gen <- t.gen
    end;
    c
  | None ->
    let c = { cur_block = 0; cur_gen = t.gen } in
    l := (t, c) :: !l;
    c

(* Release the cursor's block back to the pool bookkeeping; recycles
   it immediately if its contents already died. Lock held. *)
let release_block t b =
  Hashtbl.remove t.owned b;
  let r = region_of t b in
  let rec_off = r + dir_block (block_index ~region:r b) in
  if rd64 t (rec_off + 8) = 0 then begin
    wr64 t rec_off 0;
    t.free_blocks <- b :: t.free_blocks
  end

(* ---- alloc / free -------------------------------------------------------- *)

let alloc t size =
  if size <= 0 || size > hot_max then 0
  else begin
    let need = obj_header + ((size + 7) land lnot 7) in
    let c = my_cursor t in
    with_lock t (fun () ->
      let fits b =
        b <> 0
        &&
        let r = region_of t b in
        rd64 t (r + dir_block (block_index ~region:r b)) + need <= block_size
      in
      if not (fits c.cur_block) then begin
        if c.cur_block <> 0 then release_block t c.cur_block;
        let b = take_block t in
        c.cur_block <- b;
        if b <> 0 then Hashtbl.replace t.owned b ()
      end;
      if c.cur_block = 0 then 0
      else begin
        let b = c.cur_block in
        let r = region_of t b in
        let rec_off = r + dir_block (block_index ~region:r b) in
        let bump = rd64 t rec_off in
        let obj = b + bump + obj_header in
        wr64 t rec_off (bump + need);
        wr64 t (rec_off + 8) (rd64 t (rec_off + 8) + 1);
        Ralloc.poison_clear t.heap ~off:(obj - obj_header) ~len:need;
        wr64 t (obj - obj_header) size;
        obj
      end)
  end

let usable_size t off =
  if not (owns t off) then invalid_arg "Bump_arena.usable_size: not an arena object";
  let s = rd64 t (off - obj_header) in
  if s <= 0 || s > hot_max then
    invalid_arg "Bump_arena.usable_size: clobbered object header";
  s

let free t off =
  let size = usable_size t off in
  let need = obj_header + ((size + 7) land lnot 7) in
  with_lock t (fun () ->
    Ralloc.poison_mark t.heap ~off:(off - obj_header) ~len:need;
    let r = region_of t off in
    let b = r + (block_index ~region:r off * block_size) in
    let rec_off = r + dir_block (block_index ~region:r b) in
    let live = rd64 t (rec_off + 8) - 1 in
    if live < 0 then invalid_arg "Bump_arena.free: double free";
    wr64 t (rec_off + 8) live;
    (* An emptied block rewinds to zero — unless a cursor is mid-bump
       in it, in which case the owner keeps going and the rewind
       happens when it releases the block. *)
    if live = 0 && not (Hashtbl.mem t.owned b) then begin
      wr64 t rec_off 0;
      t.free_blocks <- b :: t.free_blocks
    end)

(* ---- Recovery ------------------------------------------------------------ *)

(* Region heads for Ralloc's live set: recovery of the underlying heap
   must keep the chain's large blocks. Walks the persistent chain, not
   the (possibly stale) host mirror. *)
let recovery_roots t = walk_chain t

let recover t ~live =
  with_lock t (fun () ->
    t.regions <- walk_chain t;
    t.free_blocks <- [];
    t.frontier <- None;
    Hashtbl.reset t.owned;
    t.gen <- t.gen + 1;
    (* Bucket survivors by block; everything else in the regions is
       dead, whatever the directories claim (a kill mid-bump can leave
       a header written but the object unreachable). *)
    let by_block = Hashtbl.create 64 in
    List.iter
      (fun off ->
        let r = region_of t off in
        let k = block_index ~region:r off in
        if k = 0 then invalid_arg "Bump_arena.recover: object in directory block";
        Hashtbl.replace by_block (r + (k * block_size))
          (off :: Option.value ~default:[]
                    (Hashtbl.find_opt by_block (r + (k * block_size)))))
      live;
    List.iter
      (fun r ->
        for k = 1 to blocks_per_region - 1 do
          let b = r + (k * block_size) in
          let objs = Option.value ~default:[] (Hashtbl.find_opt by_block b) in
          (* Ralloc.recover unpoisoned the whole region; re-poison the
             block, then carve the survivors back out. *)
          Ralloc.poison_mark t.heap ~off:b ~len:block_size;
          let bump = ref 0 in
          List.iter
            (fun off ->
              let size = rd64 t (off - obj_header) in
              if size <= 0 || size > hot_max then
                invalid_arg "Bump_arena.recover: live object with torn header";
              let need = obj_header + ((size + 7) land lnot 7) in
              Ralloc.poison_clear t.heap ~off:(off - obj_header) ~len:need;
              bump := max !bump (off - obj_header + need - b))
            objs;
          wr64 t (r + dir_block k) !bump;
          wr64 t (r + dir_block k + 8) (List.length objs);
          if objs = [] then t.free_blocks <- b :: t.free_blocks
        done)
      t.regions)

(* ---- Introspection ------------------------------------------------------- *)

let stats_kvs t =
  with_lock t (fun () ->
    let blocks_live = ref 0 and objs = ref 0 and bumped = ref 0 in
    List.iter
      (fun r ->
        for k = 1 to blocks_per_region - 1 do
          let live = rd64 t (r + dir_block k + 8) in
          if live > 0 then begin
            incr blocks_live;
            objs := !objs + live;
            bumped := !bumped + rd64 t (r + dir_block k)
          end
        done)
      t.regions;
    [ ("arena:regions", string_of_int (List.length t.regions));
      ("arena:blocks_live", string_of_int !blocks_live);
      ("arena:free_blocks", string_of_int (List.length t.free_blocks));
      ("arena:objects", string_of_int !objs);
      ("arena:bumped_bytes", string_of_int !bumped) ])
