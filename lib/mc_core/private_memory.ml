(** {!Memory_intf.MEMORY} over a process-private, growable arena with
    absolute pointer cells: what the baseline (socket) memcached server
    keeps its items in. No protection checks — the process boundary is
    the protection. *)

type t = {
  mutable data : Bytes.t;
  mutable hwm : int;  (** high-water mark: grown this far *)
  limit : int;
}

let create ~limit =
  { data = Bytes.make (1 lsl 20) '\000'; hwm = 0; limit }

(* The arena only grows via {!ensure}; offsets remain valid across
   growth because all addressing is offset-based. *)
let ensure t upto =
  if upto > t.limit then
    invalid_arg "Private_memory.ensure: beyond arena limit";
  let cur = Bytes.length t.data in
  if upto > cur then begin
    let n = ref cur in
    while upto > !n do
      n := !n * 2
    done;
    let d = Bytes.make (min !n t.limit) '\000' in
    Bytes.blit t.data 0 d 0 cur;
    t.data <- d
  end;
  if upto > t.hwm then t.hwm <- upto

let limit t = t.limit

let hwm t = t.hwm

let read_u8 t off = Char.code (Bytes.get t.data off)

let write_u8 t off v = Bytes.set t.data off (Char.chr (v land 0xff))

let read_i32 t off = Int32.to_int (Bytes.get_int32_le t.data off)

let write_i32 t off v = Bytes.set_int32_le t.data off (Int32.of_int v)

let read_i64 t off = Int64.to_int (Bytes.get_int64_le t.data off)

let write_i64 t off v = Bytes.set_int64_le t.data off (Int64.of_int v)

let read_i64_raw t off = Bytes.get_int64_le t.data off

let write_i64_raw t off v = Bytes.set_int64_le t.data off v

let load_ptr t ~at = read_i64 t at

let store_ptr t ~at v = write_i64 t at v

let read_string t ~off ~len = Bytes.sub_string t.data off len

let write_string t ~off s = Bytes.blit_string s 0 t.data off (String.length s)

let equal_string t ~off ~len s =
  len = String.length s
  &&
  let rec go i =
    i >= len
    || (Bytes.unsafe_get t.data (off + i) = String.unsafe_get s i && go (i + 1))
  in
  go 0
