(** Tenant registry mechanics — see tenant.mli for the model. *)

module R = Shm.Region

let max_name = 40

let quota_enforced = ref true
let namespace_enforced = ref true

(* Block layout: a 16-byte header, then [max] fixed-size slots.
   Everything is an 8-byte word so recovery's torn-write story is the
   store's own: single-word updates, recomputed where they can tear. *)
let magic = 0x7E4A_4E54 (* "~JNT" *)

let hdr_size = 16

(* slot: 0 name_len | 8 name[40] | 48 active | 56 uid | 64 vkey
   | 72 byte_quota | 80 item_quota | 88 bytes_used | 96 items_used
   | 104 cmd_get | 112 get_hits | 120 cmd_set | 128 evictions
   | 136 reserved *)
let esz = 144

let o_name_len = 0
let o_name = 8
let o_active = 48
let o_uid = 56
let o_vkey = 64
let o_byte_quota = 72
let o_item_quota = 80
let o_bytes_used = 88
let o_items_used = 96
let o_cmd_get = 104
let o_get_hits = 112
let o_cmd_set = 120
let o_evictions = 128

type t = { region : R.t; base : int; max : int }

let size_for ~max = hdr_size + (max * esz)

let base t = t.base

let max_tenants t = t.max

let entry t i =
  if i < 0 || i >= t.max then invalid_arg "Tenant: slot out of range";
  t.base + hdr_size + (i * esz)

let rd t off = R.read_i64 t.region off
let wr t off v = R.write_i64 t.region off v

let format region ~base ~max =
  if max < 1 then invalid_arg "Tenant.format: max < 1";
  let t = { region; base; max } in
  R.fill region ~off:base ~len:(size_for ~max) '\000';
  wr t base magic;
  wr t (base + 8) max;
  t

let attach region ~base =
  let probe = { region; base; max = 1 } in
  if rd probe base <> magic then
    invalid_arg "Tenant.attach: bad registry magic";
  { region; base; max = rd probe (base + 8) }

let active t i = rd t (entry t i + o_active) <> 0

let name_of t i =
  let e = entry t i in
  R.read_string t.region ~off:(e + o_name) ~len:(rd t (e + o_name_len))

let uid_of t i = rd t (entry t i + o_uid)

let vkey_of t i = rd t (entry t i + o_vkey)

let set_vkey t i vk = wr t (entry t i + o_vkey) vk

let byte_quota t i = rd t (entry t i + o_byte_quota)

let item_quota t i = rd t (entry t i + o_item_quota)

let bytes_used t i = rd t (entry t i + o_bytes_used)

let items_used t i = rd t (entry t i + o_items_used)

let iter_active t f =
  for i = 0 to t.max - 1 do
    if active t i then f i
  done

let count_active t =
  let n = ref 0 in
  iter_active t (fun _ -> incr n);
  !n

let find t name =
  let found = ref None in
  (try
     iter_active t (fun i ->
         if name_of t i = name then begin
           found := Some i;
           raise Exit
         end)
   with Exit -> ());
  !found

let valid_name name =
  let n = String.length name in
  n >= 1 && n <= max_name
  && String.for_all (fun c -> c > ' ' && c < '\x7f' && c <> '/') name

let register t ~name ~uid ~byte_quota ~item_quota =
  if not (valid_name name) then
    invalid_arg ("Tenant.register: invalid name " ^ String.escaped name);
  if find t name <> None then
    invalid_arg ("Tenant.register: duplicate tenant " ^ name);
  let rec first_free i =
    if i >= t.max then invalid_arg "Tenant.register: registry full"
    else if active t i then first_free (i + 1)
    else i
  in
  let i = first_free 0 in
  let e = entry t i in
  R.fill t.region ~off:e ~len:esz '\000';
  R.write_string t.region ~off:(e + o_name) name;
  wr t (e + o_name_len) (String.length name);
  wr t (e + o_uid) uid;
  wr t (e + o_byte_quota) byte_quota;
  wr t (e + o_item_quota) item_quota;
  (* active last: a crash mid-register leaves a never-active slot,
     which recovery sees as free *)
  wr t (e + o_active) 1;
  i

(* ---- namespacing ----------------------------------------------------- *)

let prefix t i = name_of t i ^ "/"

let scope t i key = if !namespace_enforced then prefix t i ^ key else key

let owner_slot_of_key t key =
  match String.index_opt key '/' with
  | None -> None
  | Some sl ->
    let name = String.sub key 0 sl in
    (match find t name with
     | Some i when active t i -> Some i
     | _ -> None)

(* ---- quotas and accounting ------------------------------------------- *)

let charge t i ~bytes ~items =
  let e = entry t i in
  wr t (e + o_bytes_used) (max 0 (rd t (e + o_bytes_used) + bytes));
  wr t (e + o_items_used) (max 0 (rd t (e + o_items_used) + items))

let set_usage t i ~bytes ~items =
  let e = entry t i in
  wr t (e + o_bytes_used) bytes;
  wr t (e + o_items_used) items

let would_exceed t i ~add_bytes ~add_items =
  !quota_enforced
  &&
  let e = entry t i in
  let bq = rd t (e + o_byte_quota) and iq = rd t (e + o_item_quota) in
  (bq > 0 && rd t (e + o_bytes_used) + add_bytes > bq)
  || (iq > 0 && rd t (e + o_items_used) + add_items > iq)

(* ---- stats ----------------------------------------------------------- *)

type stat = Cmd_get | Get_hits | Cmd_set | Evictions

let stat_off = function
  | Cmd_get -> o_cmd_get
  | Get_hits -> o_get_hits
  | Cmd_set -> o_cmd_set
  | Evictions -> o_evictions

let bump t i s =
  let off = entry t i + stat_off s in
  wr t off (rd t off + 1)

let stat t i s = rd t (entry t i + stat_off s)

let stats_kvs t =
  let rows = ref [] in
  iter_active t (fun i ->
      let n = name_of t i in
      let kv field v = (Printf.sprintf "tenant:%s:%s" n field, string_of_int v) in
      rows :=
        [ kv "cmd_get" (stat t i Cmd_get);
          kv "get_hits" (stat t i Get_hits);
          kv "cmd_set" (stat t i Cmd_set);
          kv "evictions" (stat t i Evictions);
          kv "bytes" (bytes_used t i);
          kv "items" (items_used t i);
          kv "bytes_quota" (byte_quota t i);
          kv "items_quota" (item_quota t i) ]
        :: !rows);
  List.concat (List.rev !rows)

let reset_stats t =
  iter_active t (fun i ->
      let e = entry t i in
      wr t (e + o_cmd_get) 0;
      wr t (e + o_get_hits) 0;
      wr t (e + o_cmd_set) 0;
      wr t (e + o_evictions) 0)

(* ---- executor hooks --------------------------------------------------- *)

let stats_hook : (unit -> (string * string) list) ref = ref (fun () -> [])

let reset_hook : (unit -> unit) ref = ref (fun () -> ())

let bump_hook : (string -> stat -> unit) ref = ref (fun _ _ -> ())
