(** memcached's slab allocator, for the baseline build.

    1 MiB pages are carved into fixed-size chunks; chunk sizes grow
    geometrically (factor 1.25 from 96 bytes, like memcached's default
    [-f 1.25]). Each page belongs to one class; freed chunks go on the
    class's free list. This is the ~1600 lines the paper deletes in
    favour of Ralloc — reproduced here so the baseline is faithful.

    Slab metadata (free lists, page map) is ordinary process-private
    state, as in memcached. A single lock protects it, as memcached's
    slabs_lock does; the store's per-item locks keep it mostly cold. *)

let page_size = 1 lsl 20

let base = 64 (* offset 0 is the null sentinel; waste a cache line *)

let chunk_sizes =
  let rec build acc sz =
    if sz >= page_size then List.rev (page_size :: acc)
    else build (sz :: acc) ((sz * 5 / 4 + 7) land lnot 7)
  in
  Array.of_list (build [] 96)

let n_classes = Array.length chunk_sizes

let class_of_size size =
  let rec go i =
    if i >= n_classes then -1
    else if chunk_sizes.(i) >= size then i
    else go (i + 1)
  in
  go 0

(* page_class markers beyond real class indices. *)
let cls_unassigned = -1

let cls_big_head = -2

let cls_big_cont = -3

type t = {
  arena : Private_memory.t;
  lock : Mutex.t;
  free_lists : int list ref array;
  mutable page_class : int array;  (** page index -> class or marker *)
  mutable n_pages : int;
  mutable free_pages : int list;  (** indices released by big frees *)
  partial : (int * int) option array;
  (** per class: (page base, next uncarved chunk index) *)
  big_sizes : (int, int * int) Hashtbl.t;  (** off -> (pages, size) *)
  mutable used : int;  (** allocated chunk bytes *)
  mem_limit : int;
}

let create ~arena ~mem_limit =
  { arena; lock = Mutex.create ();
    free_lists = Array.init n_classes (fun _ -> ref []);
    page_class = Array.make 64 cls_unassigned; n_pages = 0; free_pages = [];
    partial = Array.make n_classes None; big_sizes = Hashtbl.create 8;
    used = 0; mem_limit }

let page_of_off off = (off - base) / page_size

let grow_page_map t idx =
  if idx >= Array.length t.page_class then begin
    let m = Array.make (2 * (idx + 1)) (-1) in
    Array.blit t.page_class 0 m 0 (Array.length t.page_class);
    t.page_class <- m
  end

let new_page t c =
  if (t.n_pages + 1) * page_size > t.mem_limit then None
  else begin
    let idx = t.n_pages in
    t.n_pages <- idx + 1;
    grow_page_map t idx;
    t.page_class.(idx) <- c;
    let page_base = base + (idx * page_size) in
    Private_memory.ensure t.arena (page_base + page_size);
    Some page_base
  end

(* Structural allocations above the largest chunk size (the hash
   table, which memcached callocs outside the slab machinery): take a
   run of whole pages. *)
let big_alloc t size =
  let n = (size + page_size - 1) / page_size in
  if (t.n_pages + n) * page_size > t.mem_limit then 0
  else begin
    let idx = t.n_pages in
    t.n_pages <- idx + n;
    grow_page_map t (t.n_pages - 1);
    t.page_class.(idx) <- cls_big_head;
    for j = 1 to n - 1 do
      t.page_class.(idx + j) <- cls_big_cont
    done;
    let off = base + (idx * page_size) in
    Private_memory.ensure t.arena (off + (n * page_size));
    Hashtbl.replace t.big_sizes off (n, size);
    t.used <- t.used + size;
    off
  end

let alloc t size =
  let c = class_of_size size in
  if c < 0 then begin
    Mutex.lock t.lock;
    let off = big_alloc t size in
    Mutex.unlock t.lock;
    off
  end
  else begin
    Mutex.lock t.lock;
    let sz = chunk_sizes.(c) in
    let off =
      match !(t.free_lists.(c)) with
      | off :: rest ->
        t.free_lists.(c) := rest;
        off
      | [] ->
        let carve page_base next =
          let off = page_base + (next * sz) in
          if (next + 2) * sz <= page_size then
            t.partial.(c) <- Some (page_base, next + 1)
          else t.partial.(c) <- None;
          off
        in
        (match t.partial.(c) with
         | Some (page_base, next) -> carve page_base next
         | None ->
           (match new_page t c with
            | Some page_base -> carve page_base 0
            | None -> 0))
    in
    if off <> 0 then t.used <- t.used + sz;
    Mutex.unlock t.lock;
    off
  end

let free t off =
  Mutex.lock t.lock;
  let page = page_of_off off in
  let c = t.page_class.(page) in
  if c >= 0 then begin
    t.free_lists.(c) := off :: !(t.free_lists.(c));
    t.used <- t.used - chunk_sizes.(c);
    Mutex.unlock t.lock
  end
  else if c = cls_big_head then begin
    let n, size = Hashtbl.find t.big_sizes off in
    Hashtbl.remove t.big_sizes off;
    for j = 0 to n - 1 do
      t.page_class.(page + j) <- cls_unassigned
    done;
    (* The run is reusable only for future big allocations at the same
       spot; small classes draw fresh pages. Good enough for a store
       that frees its table at most on resize. *)
    t.used <- t.used - size;
    Mutex.unlock t.lock
  end
  else begin
    Mutex.unlock t.lock;
    invalid_arg "Slab.free: offset not in any slab page"
  end

let alloc_ns _t size = Platform.Cost_model.alloc_cost size

let usable_size t off =
  let c = t.page_class.(page_of_off off) in
  if c >= 0 then chunk_sizes.(c)
  else if c = cls_big_head then snd (Hashtbl.find t.big_sizes off)
  else invalid_arg "Slab.usable_size"

let used_bytes t = t.used

let capacity t = t.mem_limit

let class_of_off t off = t.page_class.(page_of_off off)

let class_kvs t =
  Mutex.lock t.lock;
  let acc = ref [] in
  for c = n_classes - 1 downto 0 do
    let pages = ref 0 in
    for p = 0 to t.n_pages - 1 do
      if t.page_class.(p) = c then incr pages
    done;
    if !pages > 0 || !(t.free_lists.(c)) <> [] then
      acc :=
        (Printf.sprintf "%d:chunk_size" c, string_of_int chunk_sizes.(c))
        :: (Printf.sprintf "%d:total_pages" c, string_of_int !pages)
        :: (Printf.sprintf "%d:free_chunks" c,
            string_of_int (List.length !(t.free_lists.(c))))
        :: !acc
  done;
  Mutex.unlock t.lock;
  !acc
