(** The two capability signatures the store is generic over.

    The protected-library build instantiates them with
    {!Shared_memory} (a {!Shm.Region} with self-relative pptrs) and
    {!Ralloc_alloc}; the baseline server uses {!Private_memory} (a
    process-private arena with absolute pointers) and {!Slab}
    (memcached's own slab allocator, which the paper deletes). *)

module type MEMORY = sig
  type t

  val read_u8 : t -> int -> int
  val write_u8 : t -> int -> int -> unit
  val read_i32 : t -> int -> int
  val write_i32 : t -> int -> int -> unit
  val read_i64 : t -> int -> int
  val write_i64 : t -> int -> int -> unit

  val read_i64_raw : t -> int -> int64
  (** Full 64-bit read. [read_i64] round-trips through the native
      63-bit int, which silently drops the top bit — unsigned fields
      (the CAS counter) must use the raw variants. *)

  val write_i64_raw : t -> int -> int64 -> unit

  val load_ptr : t -> at:int -> int
  (** Read the pointer cell at [at]: target offset, or [0] for null.
      Position independent in the shared implementation. *)

  val store_ptr : t -> at:int -> int -> unit

  val read_string : t -> off:int -> len:int -> string
  val write_string : t -> off:int -> string -> unit

  val equal_string : t -> off:int -> len:int -> string -> bool
  (** Compare a memory range to a string without copying. *)
end

module type ALLOCATOR = sig
  type t

  val alloc : t -> int -> int
  (** Offset of a block of at least the requested size, or [0] when
      storage is exhausted (the store then evicts and retries). *)

  val free : t -> int -> unit

  val usable_size : t -> int -> int

  val alloc_ns : t -> int -> int
  (** Modeled CPU cost (ns) of allocating [size] bytes, charged by the
      store around {!alloc}. Lets an allocator with a cheaper fast
      path (the bump-arena hot tier) price it into the virtual-time
      benchmarks. *)

  val used_bytes : t -> int

  val capacity : t -> int

  val class_kvs : t -> (string * string) list
  (** Per-size-class occupancy in `stats slabs` shape:
      ["<class>:chunk_size"], ["<class>:free_chunks"], ... — only
      classes with any footprint appear. *)
end
