(** {!Memory_intf.ALLOCATOR} over a Ralloc heap: the protected-library
    store's allocator. *)

type t = Ralloc.t

let of_heap h = h

let alloc (t : t) size =
  match Ralloc.alloc t size with
  | off -> off
  | exception Ralloc.Out_of_heap -> 0

let free = Ralloc.free

let usable_size = Ralloc.usable_size

let used_bytes = Ralloc.used_bytes

let capacity = Ralloc.capacity

let class_kvs (t : t) =
  let stats = Ralloc.class_stats t in
  List.concat
    (List.filteri (fun _ s -> s.Ralloc.cs_superblocks > 0
                              || s.Ralloc.cs_cached_blocks > 0)
       (Array.to_list stats)
     |> List.map (fun s ->
       let c = Printf.sprintf "%d" s.Ralloc.cs_block_size in
       [ (c ^ ":chunk_size", string_of_int s.Ralloc.cs_block_size);
         (c ^ ":superblocks", string_of_int s.Ralloc.cs_superblocks);
         (c ^ ":free_chunks",
          string_of_int (s.Ralloc.cs_free_blocks + s.Ralloc.cs_cached_blocks))
       ]))
