(** {!Memory_intf.ALLOCATOR} over a Ralloc heap: the protected-library
    store's allocator. Optionally fronted by a {!Bump_arena} hot tier
    that serves small items with a per-thread pointer bump, keeping
    Ralloc's size-class machinery off the hot set path. *)

type t = { heap : Ralloc.t; arena : Bump_arena.t option }

let of_heap h = { heap = h; arena = None }

let of_heap_with_arena h a = { heap = h; arena = Some a }

let heap t = t.heap

let arena t = t.arena

let heap_alloc t size =
  match Ralloc.alloc t.heap size with
  | off -> off
  | exception Ralloc.Out_of_heap -> 0

let alloc t size =
  match t.arena with
  | Some a when size <= Bump_arena.hot_max ->
    (* The tier declines (returns 0) when the heap cannot spare it a
       region; such requests fall through to the size classes. *)
    let off = Bump_arena.alloc a size in
    if off <> 0 then off else heap_alloc t size
  | _ -> heap_alloc t size

let free t off =
  match t.arena with
  | Some a when Bump_arena.owns a off -> Bump_arena.free a off
  | _ -> Ralloc.free t.heap off

let usable_size t off =
  match t.arena with
  | Some a when Bump_arena.owns a off -> Bump_arena.usable_size a off
  | _ -> Ralloc.usable_size t.heap off

let alloc_ns t size =
  match t.arena with
  | Some _ when size <= Bump_arena.hot_max ->
    Platform.Cost_model.current.alloc_bump
  | _ -> Platform.Cost_model.alloc_cost size

let used_bytes t = Ralloc.used_bytes t.heap

let capacity t = Ralloc.capacity t.heap

let class_kvs (t : t) =
  let stats = Ralloc.class_stats t.heap in
  List.concat
    (List.filteri (fun _ s -> s.Ralloc.cs_superblocks > 0
                              || s.Ralloc.cs_cached_blocks > 0)
       (Array.to_list stats)
     |> List.map (fun s ->
       let c = Printf.sprintf "%d" s.Ralloc.cs_block_size in
       [ (c ^ ":chunk_size", string_of_int s.Ralloc.cs_block_size);
         (c ^ ":superblocks", string_of_int s.Ralloc.cs_superblocks);
         (c ^ ":free_chunks",
          string_of_int (s.Ralloc.cs_free_blocks + s.Ralloc.cs_cached_blocks))
       ]))
  @ (match t.arena with Some a -> Bump_arena.stats_kvs a | None -> [])
