(** {!Memory_intf.MEMORY} over a shared {!Shm.Region}, with
    position-independent pointer cells (Ralloc pptrs): what the
    protected-library store runs on. Every access is pkru-checked by
    the region, and — when the region's heap has poisoning enabled
    (see {!Ralloc.set_poisoning}) — checked against the freed-block
    bitmap, so a store-level use-after-free raises
    {!Ralloc.Use_after_free} instead of silently reading recycled
    bytes. *)

module Region = Shm.Region

type t = Region.t

let of_region r = r

let guard (r : t) ~off ~len = Ralloc.poison_guard r ~off ~len

let read_u8 r off =
  guard r ~off ~len:1;
  Region.read_u8 r off

let write_u8 r off v =
  guard r ~off ~len:1;
  Region.write_u8 r off v

let read_i32 r off =
  guard r ~off ~len:4;
  Region.read_i32 r off

let write_i32 r off v =
  guard r ~off ~len:4;
  Region.write_i32 r off v

let read_i64 r off =
  guard r ~off ~len:8;
  Region.read_i64 r off

let write_i64 r off v =
  guard r ~off ~len:8;
  Region.write_i64 r off v

let read_i64_raw r off =
  guard r ~off ~len:8;
  Region.read_i64_raw r off

let write_i64_raw r off v =
  guard r ~off ~len:8;
  Region.write_i64_raw r off v

let load_ptr (r : t) ~at =
  guard r ~off:at ~len:8;
  Ralloc.Pptr.load r ~at

let store_ptr (r : t) ~at v =
  guard r ~off:at ~len:8;
  Ralloc.Pptr.store r ~at v

let read_string (r : t) ~off ~len =
  guard r ~off ~len;
  Region.read_string r ~off ~len

let write_string (r : t) ~off s =
  guard r ~off ~len:(String.length s);
  Region.write_string r ~off s

let equal_string (r : t) ~off ~len s =
  guard r ~off ~len;
  Region.equal_string r ~off ~len s
