(** The tenant registry: multi-tenant state persisted in the shared
    heap.

    A tenant is a named principal with (1) a key-prefix namespace
    ([<name>/]) that every tenant-scoped operation is confined to by
    construction, (2) byte/item quotas with usage accounting, (3) a
    virtual protection key ({!Pku.Vpkey}) acting as its capability —
    tenant-scoped calls bind it under the caller's uid, so only the
    owner (or root) can exercise the namespace — and (4) its own
    stats rollup ([cmd_get]/[get_hits]/[cmd_set]/[evictions]).

    The registry lives in one Ralloc block inside the protected heap,
    anchored under its own persistent root, so membership, quotas and
    vkey ids survive crashes; usage counters are recomputed from the
    store during recovery (they may be mid-update at the kill point).

    This module is pure registry mechanics over a {!Shm.Region};
    callers must hold access to the heap's pages (be inside a library
    crossing, or in kernel mode). Policy — quota eviction, scoped
    ops, recovery — lives in [Plib] (lib/core/plib_store.ml). *)

type t

val max_name : int
(** 40 bytes. *)

(** {1 Red-team toggles} (shipping default [true]) *)

val quota_enforced : bool ref
(** Off: tenants write past their quotas — the cross-tenant starvation
    attack. *)

val namespace_enforced : bool ref
(** Off: tenant-scoped keys pass through unprefixed — the forged
    cross-tenant read attack. *)

(** {1 Layout} *)

val size_for : max:int -> int
(** Bytes needed for a registry of [max] tenant slots. *)

val format : Shm.Region.t -> base:int -> max:int -> t
(** Initialise an empty registry in the block at [base]. *)

val attach : Shm.Region.t -> base:int -> t
(** Reattach; raises [Invalid_argument] if the magic doesn't match. *)

val base : t -> int

val max_tenants : t -> int

(** {1 Membership} *)

val register :
  t -> name:string -> uid:int -> byte_quota:int -> item_quota:int -> int
(** New tenant; returns its slot. The vkey is {e not} allocated here
    (the caller allocates one owned by [uid] and stores it with
    {!set_vkey}). Raises [Invalid_argument] on a duplicate name, a
    full registry, or a name that is empty, longer than {!max_name},
    or contains ['/'], spaces or control bytes. *)

val find : t -> string -> int option

val count_active : t -> int

val iter_active : t -> (int -> unit) -> unit

val active : t -> int -> bool

val name_of : t -> int -> string

val uid_of : t -> int -> int

val vkey_of : t -> int -> int

val set_vkey : t -> int -> int -> unit

(** {1 Namespacing} *)

val prefix : t -> int -> string
(** [name ^ "/"]. *)

val scope : t -> int -> string -> string
(** The tenant-confined key: [prefix ^ key] (identity when
    {!namespace_enforced} is off — the pre-fix stack). *)

val owner_slot_of_key : t -> string -> int option
(** Which active tenant's namespace a raw store key belongs to, by
    prefix. *)

(** {1 Quotas and accounting} *)

val byte_quota : t -> int -> int

val item_quota : t -> int -> int

val bytes_used : t -> int -> int

val items_used : t -> int -> int

val charge : t -> int -> bytes:int -> items:int -> unit
(** Adjust usage by a (possibly negative) delta, clamped at zero. *)

val set_usage : t -> int -> bytes:int -> items:int -> unit
(** Recovery: overwrite usage with recomputed truth. *)

val would_exceed : t -> int -> add_bytes:int -> add_items:int -> bool
(** Would the delta push usage past a quota? Always false with
    {!quota_enforced} off. *)

(** {1 Per-tenant stats} *)

type stat = Cmd_get | Get_hits | Cmd_set | Evictions

val bump : t -> int -> stat -> unit

val stat : t -> int -> stat -> int

val stats_kvs : t -> (string * string) list
(** The `stats tenants` payload: for each active tenant,
    [tenant:<name>:{cmd_get,get_hits,cmd_set,evictions,bytes,items,
    bytes_quota,items_quota}]. *)

val reset_stats : t -> unit
(** Zero the op tallies of every tenant. Membership, quotas, usage
    and vkeys are untouched — `stats reset` must not unregister
    anyone. *)

(** {1 Executor hooks}

    The protocol executor is store-generic and cannot see the
    registry; the library owner installs these. *)

val stats_hook : (unit -> (string * string) list) ref
(** Serves `stats tenants` (default: empty). *)

val reset_hook : (unit -> unit) ref
(** Chained into `stats reset` (default: no-op). *)

val bump_hook : (string -> stat -> unit) ref
(** Per-tenant stat bump by tenant {e name} — the socket path's
    rollup: a tenant-bound connection's commands are counted here by
    the server's executor (default: no-op). *)
