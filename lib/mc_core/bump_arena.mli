(** Per-thread bump-allocation hot tier over the shared Ralloc heap:
    1 MiB regions (plain Ralloc large blocks, chained from a
    persistent anchor) carved into 32 KiB blocks with one writer per
    block, serving small hot values with a pointer increment instead
    of size-class traffic. Crash-recoverable: region heads keep the
    chain alive through {!Ralloc.recover}, and {!recover} rebuilds
    per-block state from the store's surviving objects. *)

type t

val region_size : int

val block_size : int

val hot_max : int
(** Largest request (whole item) the tier serves; bigger requests must
    go to the underlying heap. *)

val create : heap:Ralloc.t -> ?anchor:int -> unit -> t
(** [create ~heap ~anchor ()] attaches to (or starts) the region chain
    anchored at the pptr cell [anchor] — typically a Ralloc persistent
    root cell. Without [anchor] the chain lives only in the handle (no
    crash recovery). *)

val alloc : t -> int -> int
(** Offset of a block of exactly the requested usable size, or [0]
    when the request is too big for the tier or the heap cannot grow
    it another region (callers fall through to the main allocator). *)

val free : t -> int -> unit

val owns : t -> int -> bool
(** Does this offset lie inside one of the tier's regions? The
    dispatch test for free/usable_size. *)

val usable_size : t -> int -> int

val recovery_roots : t -> int list
(** Region-head offsets from the persistent chain: these must be part
    of [live] for {!Ralloc.recover}, or the sweep reclaims the tier. *)

val recover : t -> live:int list -> unit
(** Rebuild per-block bump offsets and live counts from the store's
    surviving arena-resident objects (offsets as handed to the store),
    re-poisoning dead spans. Call after {!Ralloc.recover}, at
    quiescence. *)

val stats_kvs : t -> (string * string) list
(** [arena:*] occupancy rows for `stats slabs`. *)
