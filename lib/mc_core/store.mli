(** The memcached store: hash table, LRU lists, statistics, eviction,
    resize — one implementation for both of the paper's builds.

    - baseline server: [Make (Private_memory) (Slab) (S)]
    - protected library: [Make (Shared_memory) (Ralloc_alloc) (S)],
      where every pointer is a position-independent pptr in the shared
      Ralloc heap and client threads run these functions themselves
      through Hodor trampolines.

    Concurrency mirrors memcached: striped item locks keyed by key
    hash; per-LRU-list locks chosen by key hash (§3.2); statistics
    scattered over per-thread slots (§3.2). Lock order is always item
    lock then LRU lock. CPU costs are charged via [S.advance] where
    the work happens, so critical-section lengths — and therefore
    contention in the virtual-time benchmarks — reflect the modeled
    machine. *)

module Layout : sig
  val header_size : int

  val it_h_next : int
  val it_lru_next : int
  val it_lru_prev : int
  val it_cas : int
  val it_exptime : int
  val it_flags : int
  val it_nkey : int
  val it_nbytes : int
  val it_refcount : int
  val it_lru_id : int
  val it_state : int
  val it_hash : int
  val it_time : int

  val state_linked : int
  val state_fetched : int

  val ctl_hashpower : int
  val ctl_lru_count : int
  val ctl_stats_slots : int
  val ctl_cas : int
  val ctl_buckets : int
  val ctl_lru : int
  val ctl_stats : int
  val ctl_oldest_live : int
  val ctl_lock_count : int
  val ctl_seqs : int
  val ctl_size : int
end

type config = {
  hashpower : int;  (** 2^hashpower buckets *)
  lock_count : int;  (** item-lock stripes (power of two) *)
  lru_count : int;  (** number of LRU lists (ablation abl1 uses 1) *)
  stats_slots : int;  (** scattered statistics slots *)
  single_stats_lock : bool;  (** ablation abl2: one lock, one slot *)
  lru_by_size_class : bool;
  (** baseline behaviour: LRU list per allocation size class; the plib
      build chooses by key hash (§3.2) *)
  evict_batch : int;
  bump_interval_s : int;
  (** a get skips the LRU bump (and its lock) when the item already
      moved within this many seconds — memcached's rate-limiting that
      keeps hot keys off the LRU lock; [0] bumps on every hit *)
  optimistic_reads : bool;
  (** seqlock read path: a get snapshots the item without the stripe
      lock and validates against the stripe's version word, falling
      back to the locked path on conflict or when the hit needs a
      side effect (LRU bump, expiry unlink) *)
  opt_max_retries : int;
  (** snapshot attempts before an optimistic get gives up and takes
      the stripe lock *)
}

val default_config : config

val holding_stripes_now : unit -> int
(** Stripes the calling thread currently holds — per-op item locks plus
    [with_stripes] group pins, across every instantiation of {!Make}.
    Ground truth for the flight recorder's stripe breadcrumbs: the
    crash sweep snapshots it at the kill site and the forensic
    classifier must agree. *)

type store_result = Stored | Not_stored | Exists | Not_found | No_memory

type get_result = { value : string; flags : int; cas : int64 }

type counter_result = Counter of int64 | Counter_not_found | Non_numeric

module Make
    (M : Memory_intf.MEMORY)
    (A : Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) : sig
  type t

  (** {1 Lifecycle} *)

  val create : mem:M.t -> alloc:A.t -> config -> t
  (** Allocate and initialise the shared structures (control block,
      bucket table, LRU table, statistics area). *)

  val attach : mem:M.t -> alloc:A.t -> config -> ctrl:int -> t
  (** Reattach to a store found through a persistent root; geometry is
      read back from the control block at [ctrl]. *)

  val detach : t -> unit
  (** Persist volatile high-water marks (clean shutdown). *)

  val ctrl_off : t -> int

  val config : t -> config

  (** {1 Stripe groups (batch plane)}

      The item-lock table is striped; a batch executor can take every
      stripe a group of operations touches once, up front, and the
      per-op locking inside {!get}/{!delete}/{!touch} then skips the
      already-held stripes. Only non-allocating operations may run
      under a stripe group: allocation can evict from arbitrary other
      stripes, which would acquire same-class locks out of rank order. *)

  val stripe_of : t -> string -> int
  (** Item-lock stripe index the key hashes to, in
      [0 .. stripe_count - 1]. *)

  val stripe_count : t -> int

  val with_stripes : t -> stripes:int list -> (unit -> 'a) -> 'a
  (** [with_stripes t ~stripes f] locks each stripe in the order given,
      runs [f], and releases in reverse order. [stripes] must be
      duplicate-free and sorted ascending — stripe mutexes share one
      lockdep class ranked by creation (= index) order, so an inverted
      order trips lockdep. Exception-safe; raises [Invalid_argument] if
      a stripe is already held by this thread. *)

  (** {1 Operations (memcached command set)} *)

  val get : t -> string -> get_result option

  val set : t -> ?flags:int -> ?exptime:int -> string -> string -> store_result

  val add : t -> ?flags:int -> ?exptime:int -> string -> string -> store_result

  val replace :
    t -> ?flags:int -> ?exptime:int -> string -> string -> store_result

  val append : t -> string -> string -> store_result

  val prepend : t -> string -> string -> store_result

  val cas :
    t -> ?flags:int -> ?exptime:int -> cas:int64 -> string -> string ->
    store_result

  val delete : t -> string -> bool

  val incr : t -> string -> int64 -> counter_result
  (** Unsigned 64-bit, wrapping — memcached semantics. *)

  val decr : t -> string -> int64 -> counter_result
  (** Clamps at zero. *)

  val touch : t -> string -> int -> bool

  val flush_all : t -> unit

  val stats : t -> (string * string) list
  (** General statistics under the standard memcached key names
      ([cmd_get], [get_hits], [evictions], [expired_unfetched], ...). *)

  val stats_items : t -> (string * string) list
  (** Per-LRU-list occupancy and cold-end age ([items:<n>:number],
      [items:<n>:age]); only non-empty lists appear. *)

  val stats_slabs : t -> (string * string) list
  (** The allocator's per-size-class view plus totals. *)

  val stats_reset : t -> unit
  (** Zero the operation tallies. [curr_items] (live gauge) and
      [total_items] (recovery anchor: curr_items <= total_items)
      survive. *)

  val curr_items : t -> int

  val probe : t -> string -> int option
  (** The live item's key+value byte count — no stat bumps, no LRU
      bump, no expiry side effects. The tenant layer's accounting
      probe. *)

  (** {1 Bookkeeping-process duties} *)

  val maintain : ?hi:float -> ?lo:float -> t -> unit
  (** Evict from the LRU cold ends until usage is back under the low
      watermark (§3.2's intermittent cleaning). *)

  val evict_some : t -> hint:int -> int

  val evict_some_matching : t -> lru:int -> pred:(string -> bool) -> int
  (** One eviction pass over LRU list [lru]'s cold end reclaiming only
      items whose key satisfies [pred] — per-tenant quota eviction:
      with the tenant's items routed to their own list (see
      {!set_lru_selector}), a full tenant evicts only itself. *)

  (** {1 Multi-tenancy hooks} *)

  val set_lru_selector : t -> (string -> int option) option -> unit
  (** Route keys to LRU lists: [Some l] pins the key's items to list
      [l mod lru_count]; [None] falls back to the built-in hash or
      size-class policy. Host-side state — reinstall after
      attach/recover. *)

  val set_evict_hook : t -> (key:string -> bytes:int -> unit) option -> unit
  (** Fired once per item reclaimed by eviction or expiry reaping
      (not client deletes/replacement), with the item's key and
      key+value byte count; runs under the item's stripe lock, so keep
      it lock-free. The tenant layer credits usage here. *)

  val resize : t -> bool
  (** Double the bucket table: stop-the-world migration under every
      lock stripe, bucket pointer swapped behind the Figure-3
      indirection. False if the allocator cannot supply the new table.
      (The paper's evaluation ran with this disabled; here it works.) *)

  val maybe_resize : ?lf:float -> t -> bool
  (** {!resize} once if the load factor exceeds [lf] (default 1.5). *)

  val load_factor : t -> float

  val reap_expired : ?limit:int -> t -> int
  (** LRU-crawler flavour: proactively unlink already-expired items
      from the LRU cold ends; returns how many were reclaimed. *)

  val fold_keys :
    t -> ('a -> string -> nbytes:int -> exptime:int -> 'a) -> 'a -> 'a
  (** Administrative walk over every live item (stop-the-world, like
      {!resize}). *)

  (** {1 Test hooks} *)

  val seq_read : t -> int -> int
  (** Stripe [s]'s seqlock version word. Odd exactly while some thread
      may be mutating the stripe's chains — after recovery every word
      must be even again, the cross-check the forensic report runs. *)

  val check_invariants : t -> unit
  (** Walk hash chains and LRU lists, verifying linkage, stored
      hashes, hash↔LRU membership, allocator-backed sizing, CAS
      monotonicity, refcounts and counter consistency. Call at
      quiescence. *)

  val recover : t -> int list
  (** Post-crash recovery; call only at quiescence (no client threads
      inside the store). Replaces every stripe/LRU/stats lock (a dead
      thread may own any of them), sifts the hash chains dropping items
      torn mid-link (bad backing block, size overflow, hash/bucket/key
      mismatch), zeroes refcounts held by dead readers, rebuilds every
      LRU list from the hash table (orphans spliced into only an LRU
      disappear), recounts [curr_items], and restores the CAS source
      above every CAS ever issued. Returns the offsets of every block
      the store still reaches — control block, tables, live items — the
      [live] input for [Ralloc.recover]. *)
end
