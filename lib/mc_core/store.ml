(** The memcached store: hash table, LRU lists, statistics, eviction.

    One implementation serves both builds of the paper:
    - baseline: [Make (Private_memory) (Slab) (Real_sync or Vm.Sync)] —
      the socket server's private store;
    - protected library: [Make (Shared_memory) (Ralloc_alloc) (...)] —
      items, buckets and LRU links all live in the shared Ralloc heap
      as position-independent pointers, and client threads run these
      functions themselves through Hodor trampolines.

    Concurrency mirrors memcached: a striped array of item locks keyed
    by key hash guards hash chains, item state and refcounts; each LRU
    list has its own lock (the paper's [lru_locks], chosen by key hash
    — §3.2); statistics are scattered over per-thread slots (§3.2).
    Lock order is always item lock, then LRU lock.

    CPU costs are charged through [S.advance] at the points where the
    work happens, so critical-section lengths — and therefore contention
    in the virtual-time benchmarks — reflect the modeled machine. *)

module CM = Platform.Cost_model

module Layout = struct
  (* Item header; key bytes follow at [header_size], value after them. *)
  let it_h_next = 0 (* ptr: hash chain *)
  let it_lru_next = 8 (* ptr *)
  let it_lru_prev = 16 (* ptr *)
  let it_cas = 24 (* i64 *)
  let it_exptime = 32 (* i32, unix seconds; 0 = never *)
  let it_flags = 36 (* i32, client-opaque *)
  let it_nkey = 40 (* i32 *)
  let it_nbytes = 44 (* i32 *)
  let it_refcount = 48 (* i32 *)
  let it_lru_id = 52 (* i32 *)
  let it_state = 56 (* i32: bit 1 linked, bit 2 fetched *)
  let it_hash = 60 (* i32 *)
  let it_time = 64 (* i64, ns timestamp of last store *)
  let header_size = 80

  let state_linked = 1

  let state_fetched = 2

  (* Store control block, anchored by a persistent root in the plib
     build (the paper's Figure 3 idiom lives in Core.Plib_store). *)
  let ctl_hashpower = 0
  let ctl_lru_count = 8
  let ctl_stats_slots = 16
  let ctl_cas = 24 (* persisted high-water CAS, written on detach *)
  let ctl_buckets = 32 (* ptr *)
  let ctl_lru = 40 (* ptr *)
  let ctl_stats = 48 (* ptr *)
  let ctl_oldest_live = 56 (* i64 ns: flush_all watermark *)
  let ctl_lock_count = 64
  (* Stripe count is part of the persistent geometry: the seqlock
     word array below is indexed by stripe, so an attacher must use
     the creator's stripe mapping, not its own config's. *)
  let ctl_seqs = 72 (* ptr: per-stripe seqlock version words *)
  let ctl_size = 80
end

type config = {
  hashpower : int;  (** 2^hashpower buckets *)
  lock_count : int;  (** item-lock stripes (power of two) *)
  lru_count : int;  (** number of LRU lists (ablation abl1 uses 1) *)
  stats_slots : int;  (** scattered statistics slots *)
  single_stats_lock : bool;  (** ablation abl2: one lock, one slot *)
  lru_by_size_class : bool;
  (** baseline behaviour: LRU list per allocation size class; the plib
      build chooses by key hash (§3.2) *)
  evict_batch : int;
  bump_interval_s : int;
  (** a get skips the LRU bump (and its lock) when the item already
      moved within this many seconds — memcached's rate-limiting that
      keeps hot keys off the LRU lock; [0] bumps on every hit *)
  optimistic_reads : bool;
  (** seqlock read path: a get snapshots the item without the stripe
      lock and validates against the stripe's version word, falling
      back to the locked path on conflict or when the hit needs a
      side effect (LRU bump, expiry unlink) *)
  opt_max_retries : int;
  (** snapshot attempts before an optimistic get gives up and takes
      the stripe lock *)
}

let default_config =
  { hashpower = 16; lock_count = 1024; lru_count = 64; stats_slots = 64;
    single_stats_lock = false; lru_by_size_class = false; evict_batch = 8;
    bump_interval_s = 60; optimistic_reads = true; opt_max_retries = 3 }

type store_result = Stored | Not_stored | Exists | Not_found | No_memory

type get_result = { value : string; flags : int; cas : int64 }

type counter_result = Counter of int64 | Counter_not_found | Non_numeric

(* Statistics counter indices within a slot. *)
module C = struct
  let get_hits = 0
  let get_misses = 1
  let cmd_set = 2
  let delete_hits = 3
  let delete_misses = 4
  let incr_hits = 5
  let incr_misses = 6
  let evictions = 7
  let expired = 8
  let curr_items = 9 (* net links - unlinks *)
  let total_items = 10
  let cas_hits = 11
  let cas_badval = 12
  let cas_misses = 13
  let touch_hits = 14
  let touch_misses = 15
  let cmd_get = 16
  let count = 17
end

(* Mirror of each store counter in the telemetry subsystem, or -1 for
   gauges (curr_items) that only the store tracks. Keeping the two in
   step lets `stats` report boundary and store counters from one place
   and lets the crash sweep cross-check them. *)
let telemetry_id =
  let module T = Telemetry.Counters.Id in
  [| T.get_hits; T.get_misses; T.cmd_set; T.delete_hits; T.delete_misses;
     T.incr_hits; T.incr_misses; T.evictions; T.expired_unfetched; -1;
     T.total_items; T.cas_hits; T.cas_badval; T.cas_misses; T.touch_hits;
     T.touch_misses; T.cmd_get |]

(* Stripes a thread already holds through [with_stripes], and the
   acquisitions it has open for the contention profiler. This state
   lives OUTSIDE the functor: OCaml functors are applicative, so the
   same store handle flows between two instantiations of [Make] (the
   protected-library layer builds one, the server's executor another),
   and stripe reentrancy is a property of the physical handle, not of
   whichever module happens to touch it. A per-instantiation Tls key
   would make [holds_stripe] blind to stripes pinned through the other
   instance — a self-deadlock when, say, the quota gate probes a key
   whose stripe the batch executor already groups. Entries are keyed by
   the handle's physical identity. *)
let held_stripes : (Obj.t * int) list ref Tls.key =
  Tls.new_key (fun () -> ref [])

type hold_entry = {
  he_store : Obj.t;
  he_stripe : int;
  he_wait_ns : int;
  he_since : int;
  he_span : Telemetry.Span.t;
}

let open_holds : hold_entry list ref Tls.key = Tls.new_key (fun () -> ref [])

(* Stripes this thread currently holds, across both acquisition paths
   (per-op [lock_item] and grouped [with_stripes]) and across every
   store handle. This is the ground truth the crash sweep captures at
   the kill instant and checks the flight recorder's story against. *)
let holding_stripes_now () =
  List.length !(Tls.get open_holds) + List.length !(Tls.get held_stripes)

module Make
    (M : Memory_intf.MEMORY)
    (A : Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) =
struct
  open Layout

  type t = {
    mem : M.t;
    alloc : A.t;
    mutable cfg : config;
    ctrl : int;
    mutable buckets : int;
    lru : int;
    stats : int;
    seqs : int;  (* per-stripe seqlock version words (even = free) *)
    item_locks : S.mutex array;
    lru_locks : S.mutex array;
    mutable stats_mutex : S.mutex;
    cas_src : int64 Atomic.t;
    active : int Atomic.t;  (* threads currently executing a store op *)
    mutable hash_mask : int;
    lock_mask : int;
    (* Host-side policy hooks (not persisted; reinstalled by whoever
       owns the store after attach/recover). [lru_selector key] picks
       the LRU list for a key — the tenant layer routes each tenant's
       items onto its own list(s); [None] falls back to the built-in
       hash/size-class policy. [evict_hook] fires once per item
       reclaimed by eviction or expiry reaping (not by client deletes
       or replacement), so an accounting layer can credit usage. *)
    mutable lru_selector : (string -> int option) option;
    mutable evict_hook : (key:string -> bytes:int -> unit) option;
  }

  let adv = S.advance

  (* Concurrency-dependent cost: every additional thread concurrently
     inside the store adds coherence/contention traffic to this op.
     Saturates at the machine's hardware-context count. *)
  let op_enter t =
    let others = Atomic.fetch_and_add t.active 1 in
    adv (CM.current.coherence_ns * min others 19)

  let op_exit t = Atomic.decr t.active

  let with_op t f =
    op_enter t;
    (* One [store] span per op body. Host-side only, like every span:
       the cost model sees identical latencies with tracing off. *)
    let sp = Telemetry.Span.start ~phase:"store" () in
    let r =
      try f ()
      with e ->
        Telemetry.Span.finish sp;
        op_exit t;
        raise e
    in
    Telemetry.Span.finish sp;
    op_exit t;
    r

  let rd32 t off = M.read_i32 t.mem off

  let wr32 t off v = M.write_i32 t.mem off v

  let rd64 t off = M.read_i64 t.mem off

  let wr64 t off v = M.write_i64 t.mem off v

  (* Full-width 64-bit accessors: CAS values are unsigned and must not
     round-trip through the native 63-bit int — a CAS with the top
     bits set would otherwise truncate on read and false-match under
     [P_cas]. *)
  let rd64r t off = M.read_i64_raw t.mem off

  let wr64r t off v = M.write_i64_raw t.mem off v

  let ldp t at = M.load_ptr t.mem ~at

  let stp t at v = M.store_ptr t.mem ~at v

  let now_sec () = S.now_ns () / 1_000_000_000

  (* ---- Construction -------------------------------------------------- *)

  let alloc_exn alloc size what =
    let off = A.alloc alloc size in
    if off = 0 then failwith ("Store: no memory for " ^ what);
    off

  let zero_range t off len =
    let words = len / 8 in
    for i = 0 to words - 1 do
      wr64 t (off + (8 * i)) 0
    done

  let runtime ~mem ~alloc (cfg : config) ~ctrl ~buckets ~lru ~stats ~seqs =
    if cfg.lock_count land (cfg.lock_count - 1) <> 0 then
      invalid_arg "Store: lock_count must be a power of two";
    { mem; alloc; cfg; ctrl; buckets; lru; stats; seqs;
      item_locks =
        Array.init cfg.lock_count (fun _ -> S.mutex ~cls:"store.item" ());
      lru_locks =
        Array.init cfg.lru_count (fun _ -> S.mutex ~cls:"store.lru" ());
      stats_mutex = S.mutex ~cls:"store.stats" ();
      cas_src = Atomic.make 1L;
      active = Atomic.make 0;
      hash_mask = (1 lsl cfg.hashpower) - 1;
      lock_mask = cfg.lock_count - 1;
      lru_selector = None;
      evict_hook = None }

  let create ~mem ~alloc (cfg : config) =
    (* Allocate the five shared structures. *)
    let ctrl = alloc_exn alloc ctl_size "control block" in
    let nbuckets = 1 lsl cfg.hashpower in
    let buckets = alloc_exn alloc (8 * nbuckets) "bucket table" in
    let lru = alloc_exn alloc (16 * cfg.lru_count) "lru table" in
    let stats = alloc_exn alloc (8 * C.count * cfg.stats_slots) "stats area" in
    let seqs = alloc_exn alloc (8 * cfg.lock_count) "seqlock words" in
    let t = runtime ~mem ~alloc cfg ~ctrl ~buckets ~lru ~stats ~seqs in
    zero_range t buckets (8 * nbuckets);
    zero_range t lru (16 * cfg.lru_count);
    zero_range t stats (8 * C.count * cfg.stats_slots);
    zero_range t seqs (8 * cfg.lock_count);
    wr64 t (ctrl + ctl_hashpower) cfg.hashpower;
    wr64 t (ctrl + ctl_lru_count) cfg.lru_count;
    wr64 t (ctrl + ctl_stats_slots) cfg.stats_slots;
    wr64r t (ctrl + ctl_cas) 1L;
    stp t (ctrl + ctl_buckets) buckets;
    stp t (ctrl + ctl_lru) lru;
    stp t (ctrl + ctl_stats) stats;
    wr64 t (ctrl + ctl_oldest_live) 0;
    wr64 t (ctrl + ctl_lock_count) cfg.lock_count;
    stp t (ctrl + ctl_seqs) seqs;
    t

  (* Reattach to a store found through a persistent root: geometry is
     read back from the control block (Figure 3's extra indirection is
     handled by the caller, who stores the ctrl offset behind a root). *)
  let attach ~mem ~alloc (cfg : config) ~ctrl =
    let probe =
      runtime ~mem ~alloc cfg ~ctrl ~buckets:0 ~lru:0 ~stats:0 ~seqs:0
    in
    let cfg =
      { cfg with
        hashpower = rd64 probe (ctrl + ctl_hashpower);
        lru_count = rd64 probe (ctrl + ctl_lru_count);
        stats_slots = rd64 probe (ctrl + ctl_stats_slots);
        lock_count = rd64 probe (ctrl + ctl_lock_count) }
    in
    let t =
      runtime ~mem ~alloc cfg ~ctrl
        ~buckets:(ldp probe (ctrl + ctl_buckets))
        ~lru:(ldp probe (ctrl + ctl_lru))
        ~stats:(ldp probe (ctrl + ctl_stats))
        ~seqs:(ldp probe (ctrl + ctl_seqs))
    in
    Atomic.set t.cas_src (rd64r t (ctrl + ctl_cas));
    t

  (* Persist volatile high-water marks (clean shutdown). *)
  let detach t = wr64r t (t.ctrl + ctl_cas) (Atomic.get t.cas_src)

  let ctrl_off t = t.ctrl

  let config t = t.cfg

  (* ---- Statistics ------------------------------------------------------ *)

  let stat_add t ctr v =
    adv CM.current.stats_update;
    (* Telemetry mirror: host-side only, no [adv] — with telemetry off
       this is one ref read, so the cost model is unchanged. *)
    if v > 0 && Telemetry.Control.on () && telemetry_id.(ctr) >= 0 then
      Telemetry.Counters.add ~n:v telemetry_id.(ctr);
    if t.cfg.single_stats_lock then begin
      (* One global lock means one globally hot cache line: every
         acquisition under concurrency pays the line transfer. This is
         the contention that made the paper scatter its statistics. *)
      if Atomic.get t.active > 1 then adv CM.current.lock_handoff;
      S.lock t.stats_mutex;
      let off = t.stats + (8 * ctr) in
      wr64 t off (rd64 t off + v);
      S.unlock t.stats_mutex
    end
    else begin
      let slot = S.self_id () mod t.cfg.stats_slots in
      let off = t.stats + (8 * ((slot * C.count) + ctr)) in
      wr64 t off (rd64 t off + v)
    end

  let stat t ctr = stat_add t ctr 1

  let stat_sum t ctr =
    let sum = ref 0 in
    for slot = 0 to t.cfg.stats_slots - 1 do
      sum := !sum + rd64 t (t.stats + (8 * ((slot * C.count) + ctr)))
    done;
    !sum

  (* ---- Locks ------------------------------------------------------------ *)

  let item_mutex t h = t.item_locks.((h lsr 8) land t.lock_mask)

  let stripe_index t h = (h lsr 8) land t.lock_mask

  let stripe_of t key = stripe_index t (Hash.murmur3_32 key)

  let stripe_count t = t.lock_mask + 1

  (* ---- Seqlock version words --------------------------------------------
     One word per stripe, in shared memory next to the structures it
     versions. Discipline: every stripe acquisition bumps the word to
     odd on acquire and back to even on release, so a word is odd
     exactly while some thread may be mutating the stripe's chains.
     An optimistic reader snapshots item fields with no lock, then
     revalidates: if the word was odd at the start, or changed by the
     end, the snapshot may be torn and is discarded. Writers bump
     under the stripe lock, so the two increments need no atomicity of
     their own. Bumping costs no modeled time: it rides on the cache
     line the lock acquisition already paid for. *)

  let seq_off t s = t.seqs + (8 * s)

  let seq_bump t s = wr64 t (seq_off t s) (rd64 t (seq_off t s) + 1)

  let seq_read t s = rd64 t (seq_off t s)

  (* [held_stripes]/[open_holds] live at module level (above [Make]):
     the per-op [lock_item]/[unlock_item] inside a grouped batch become
     no-ops for stripes the thread pinned through [with_stripes], even
     when the pin went through a different instantiation of this
     functor. Handles are compared physically — two stores may coexist
     in one process (tests attach twice), and their stripe indices must
     not alias. *)
  let holds_stripe t s =
    let t = Obj.repr t in
    List.exists (fun (t', s') -> t' == t && s' = s) !(Tls.get held_stripes)

  let lock_item t h =
    if not (holds_stripe t (stripe_index t h)) then begin
      adv CM.current.lock_uncontended;
      (* [stripe_wait] covers only the blocking acquire: under the Vm
         it is nonzero exactly when another thread held the stripe. *)
      let wsp = Telemetry.Span.start ~phase:"stripe_wait" () in
      let t0 = S.now_ns () in
      S.lock (item_mutex t h);
      seq_bump t (stripe_index t h);
      let t1 = S.now_ns () in
      Telemetry.Span.finish wsp;
      let holds = Tls.get open_holds in
      holds :=
        { he_store = Obj.repr t; he_stripe = stripe_index t h;
          he_wait_ns = t1 - t0; he_since = t1;
          he_span = Telemetry.Span.start ~phase:"stripe_hold" () }
        :: !holds;
      (* Same sync-free region as the hold registration: the recorder
         and [holding_stripes_now] move atomically past a kill. *)
      Telemetry.Flight.record Telemetry.Flight.Stripe_acquire
        ~a:(holding_stripes_now ()) ~b:(stripe_index t h)
    end

  let unlock_item t h =
    if not (holds_stripe t (stripe_index t h)) then begin
      let s = stripe_index t h in
      let holds = Tls.get open_holds in
      (let rec pop acc = function
         | [] -> ()
         | e :: tl when e.he_store == Obj.repr t && e.he_stripe = s ->
           holds := List.rev_append acc tl;
           Telemetry.Span.finish e.he_span;
           Telemetry.Contention.record ~stripe:s ~wait_ns:e.he_wait_ns
             ~hold_ns:(S.now_ns () - e.he_since)
         | e :: tl -> pop (e :: acc) tl
       in
       pop [] !holds);
      Telemetry.Flight.record Telemetry.Flight.Stripe_release
        ~a:(holding_stripes_now ()) ~b:s;
      seq_bump t s;
      S.unlock (item_mutex t h)
    end

  (* Acquire a group of item-lock stripes for the duration of [f],
     in exactly the order given. Stripe mutexes share the lockdep
     class "store.item", whose rank is creation order — ascending
     stripe index. The caller must therefore pass [stripes] sorted
     ascending and duplicate-free; an inverted order is a lockdep
     violation (and the batch-plane test asserts it goes red).
     Released in reverse order between groups, exception-safe. *)
  let with_stripes t ~stripes f =
    let held = Tls.get held_stripes in
    let acquired = ref [] in
    (* Per-stripe waits collected under one group [stripe_wait] span;
       the hold side is one [stripe_hold] span for the whole group,
       and each stripe is charged the group's hold duration in the
       contention profiler (it was pinned that long). *)
    let waits = ref [] in
    let hold_span = ref Telemetry.Span.null in
    let hold_since = ref 0 in
    let release () =
      Telemetry.Span.finish !hold_span;
      hold_span := Telemetry.Span.null;
      let hold_ns = S.now_ns () - !hold_since in
      List.iter
        (fun s ->
          held :=
            (let rec rm = function
               | [] -> []
               | (t', s') :: tl when t' == Obj.repr t && s' = s -> tl
               | p :: tl -> p :: rm tl
             in
             rm !held);
          let wait_ns =
            match List.assoc_opt s !waits with Some w -> w | None -> 0
          in
          Telemetry.Contention.record ~stripe:s ~wait_ns ~hold_ns;
          Telemetry.Flight.record Telemetry.Flight.Stripe_release
            ~a:(holding_stripes_now ()) ~b:s;
          seq_bump t s;
          S.unlock t.item_locks.(s))
        !acquired
    in
    let wsp = Telemetry.Span.start ~phase:"stripe_wait" () in
    (try
       List.iter
         (fun s ->
           if holds_stripe t s then
             invalid_arg "Store.with_stripes: stripe already held";
           adv CM.current.lock_uncontended;
           let t0 = S.now_ns () in
           S.lock t.item_locks.(s);
           seq_bump t s;
           waits := (s, S.now_ns () - t0) :: !waits;
           acquired := s :: !acquired;
           held := (Obj.repr t, s) :: !held;
           (* Per stripe, not once per group: a kill between two of
              the group's acquisitions must still find the stripes
              already pinned on the record. *)
           Telemetry.Flight.record Telemetry.Flight.Stripe_acquire
             ~a:(holding_stripes_now ()) ~b:s)
         stripes
     with e ->
       Telemetry.Span.finish wsp;
       release ();
       raise e);
    Telemetry.Span.finish wsp;
    hold_span := Telemetry.Span.start ~phase:"stripe_hold" ();
    hold_since := S.now_ns ();
    match f () with
    | v ->
      release ();
      v
    | exception e ->
      release ();
      raise e

  let lock_lru t l =
    adv CM.current.lock_uncontended;
    S.lock t.lru_locks.(l)

  let unlock_lru t l = S.unlock t.lru_locks.(l)

  (* Stop-the-world (resize, fold_keys): every stripe, in index order,
     with the seq words bumped like any other acquisition so
     optimistic readers cannot snapshot mid-migration. *)
  let lock_all_stripes t =
    Array.iteri
      (fun s m ->
        S.lock m;
        seq_bump t s)
      t.item_locks

  let unlock_all_stripes t =
    Array.iteri
      (fun s m ->
        seq_bump t s;
        S.unlock m)
      t.item_locks

  (* ---- Item helpers (caller holds the item lock) ------------------------- *)

  let bucket_of t h = t.buckets + (8 * (h land t.hash_mask))

  let lru_head t l = t.lru + (16 * l)

  let lru_tail t l = t.lru + (16 * l) + 8

  let lru_of t ~h ~key ~size =
    match t.lru_selector with
    | Some f ->
      (match f key with
       | Some l -> l mod t.cfg.lru_count
       | None ->
         if t.cfg.lru_by_size_class then
           Slab.class_of_size size mod t.cfg.lru_count
         else h mod t.cfg.lru_count)
    | None ->
      if t.cfg.lru_by_size_class then
        Slab.class_of_size size mod t.cfg.lru_count
      else h mod t.cfg.lru_count

  let set_lru_selector t f = t.lru_selector <- f

  let set_evict_hook t f = t.evict_hook <- f

  let notify_evict t ~key ~bytes =
    match t.evict_hook with
    | Some f -> f ~key ~bytes
    | None -> ()

  let item_nkey t it = rd32 t (it + it_nkey)

  let item_nbytes t it = rd32 t (it + it_nbytes)

  let item_data_off t it = it + header_size + item_nkey t it

  let item_key t it =
    M.read_string t.mem ~off:(it + header_size) ~len:(item_nkey t it)

  let is_linked t it = rd32 t (it + it_state) land state_linked <> 0

  (* Expiry from already-snapshotted fields — shared by the locked
     check below and the optimistic read path, so both apply the same
     rule to one consistent view of the item. A negative exptime is
     the [real_exptime] sentinel for "born dead" (memcached expires
     negative TTLs immediately, whatever the clock says — under the
     virtual clock [now] starts at 0, so a past-absolute encoding
     could not represent it). *)
  let expired_fields ~exptime ~now = exptime < 0 || (exptime > 0 && exptime <= now)

  let expired t it ~now =
    expired_fields ~exptime:(rd32 t (it + it_exptime)) ~now
    ||
    let ol = rd64 t (t.ctrl + ctl_oldest_live) in
    ol > 0 && rd64 t (it + it_time) <= ol

  (* Walk the chain for [key]; probing costs are charged per node. *)
  let find t h key =
    let len = String.length key in
    let rec go it =
      if it = 0 then 0
      else begin
        adv CM.current.bucket_probe;
        if
          rd32 t (it + it_nkey) = len
          && (adv (CM.key_cmp_cost len);
              M.equal_string t.mem ~off:(it + header_size) ~len key)
        then it
        else go (ldp t (it + it_h_next))
      end
    in
    go (ldp t (bucket_of t h))

  (* Is the block at [it] currently linked on the bucket chain for
     hash [h]? Caller holds the stripe lock for [h]. Membership proves
     the block is a live item (and not freed storage), which is what
     eviction/reaping re-verify after having dropped the LRU lock. *)
  let on_chain t h it =
    let rec go cur =
      cur <> 0
      && (cur = it
          || begin
               adv CM.current.bucket_probe;
               go (ldp t (cur + it_h_next))
             end)
    in
    go (ldp t (bucket_of t h))

  let hash_insert t h it =
    let b = bucket_of t h in
    stp t (it + it_h_next) (ldp t b);
    stp t b it;
    wr32 t (it + it_state) (rd32 t (it + it_state) lor state_linked)

  let hash_unlink t h it =
    let b = bucket_of t h in
    let rec go at =
      let cur = ldp t at in
      if cur = 0 then ()
      else if cur = it then stp t at (ldp t (it + it_h_next))
      else begin
        adv CM.current.bucket_probe;
        go (cur + it_h_next)
      end
    in
    go b;
    wr32 t (it + it_state) (rd32 t (it + it_state) land lnot state_linked)

  (* LRU splicing; caller holds the matching lru lock. *)
  let lru_link t it l =
    adv CM.current.lru_update;
    let head = lru_head t l and tail = lru_tail t l in
    let old = ldp t head in
    stp t (it + it_lru_next) old;
    stp t (it + it_lru_prev) 0;
    if old <> 0 then stp t (old + it_lru_prev) it;
    stp t head it;
    if ldp t tail = 0 then stp t tail it;
    wr32 t (it + it_lru_id) l

  let lru_unlink t it l =
    adv CM.current.lru_update;
    let head = lru_head t l and tail = lru_tail t l in
    let nx = ldp t (it + it_lru_next) and pv = ldp t (it + it_lru_prev) in
    if pv <> 0 then stp t (pv + it_lru_next) nx else stp t head nx;
    if nx <> 0 then stp t (nx + it_lru_prev) pv else stp t tail pv;
    stp t (it + it_lru_next) 0;
    stp t (it + it_lru_prev) 0

  let lru_bump t it =
    let l = rd32 t (it + it_lru_id) in
    lock_lru t l;
    lru_unlink t it l;
    lru_link t it l;
    unlock_lru t l

  let free_item t it =
    adv CM.current.free_cost;
    A.free t.alloc it

  (* Remove a linked item from hash chain and LRU; frees it unless a
     reader still holds a reference. Caller holds the item lock. *)
  let unlink_item t h it =
    hash_unlink t h it;
    let l = rd32 t (it + it_lru_id) in
    lock_lru t l;
    lru_unlink t it l;
    unlock_lru t l;
    stat_add t C.curr_items (-1);
    if rd32 t (it + it_refcount) = 0 then free_item t it

  (* Drop a reader's reference; caller holds the item lock. *)
  let release t it =
    let r = rd32 t (it + it_refcount) - 1 in
    wr32 t (it + it_refcount) r;
    if r = 0 && not (is_linked t it) then free_item t it

  (* ---- Eviction ----------------------------------------------------------- *)

  (* Collect victims from one LRU's cold end, then take them item lock
     first, re-verify, and unlink. Returns how many were reclaimed.

     While the LRU lock is held, every item reachable through this
     list is guaranteed unfreed — [unlink_item] frees only after
     [lru_unlink] under the same lock — so reading [it_hash]/[it_cas]
     during the collect is safe. Once the lock is dropped those
     guarantees end: a concurrent delete may free the block and a
     concurrent set may reuse it. Each victim is therefore recorded as
     an (offset, hash, cas) triple and re-verified under its item
     stripe lock: bucket-chain membership proves the offset is still a
     live item, and the cas value (unique per stored item) defeats
     ABA reuse of the block by a different store. *)
  let evict_from ?pred t l =
    lock_lru t l;
    let rec collect it n acc =
      if it = 0 || n = 0 then acc
      else begin
        adv CM.current.bucket_probe;
        let acc =
          if
            rd32 t (it + it_refcount) = 0
            && (match pred with
                | None -> true
                | Some p -> p (item_key t it))
          then
            (it, rd32 t (it + it_hash) land 0xFFFFFFFF, rd64r t (it + it_cas))
            :: acc
          else acc
        in
        collect (ldp t (it + it_lru_prev)) (n - 1) acc
      end
    in
    let victims = collect (ldp t (lru_tail t l)) t.cfg.evict_batch [] in
    unlock_lru t l;
    let reclaimed = ref 0 in
    List.iter
      (fun (it, h, cas) ->
        lock_item t h;
        (* The world may have moved: only evict the same still-linked,
           idle item that still belongs to this LRU. *)
        if
          on_chain t h it
          && Int64.equal (rd64r t (it + it_cas)) cas
          && rd32 t (it + it_refcount) = 0
          && rd32 t (it + it_lru_id) = l
        then begin
          let key = item_key t it and nbytes = item_nbytes t it in
          unlink_item t h it;
          stat t C.evictions;
          notify_evict t ~key ~bytes:(String.length key + nbytes);
          incr reclaimed
        end;
        unlock_item t h)
      victims;
    !reclaimed

  (* Tenant-scoped eviction: reclaim only items whose key satisfies
     [pred], scanning the cold end of LRU list [lru]. The tenant layer
     points [lru] at the tenant's own list, so a full tenant evicts
     only its own items. *)
  let evict_some_matching t ~lru ~pred = evict_from ~pred t (lru mod t.cfg.lru_count)

  let evict_some t ~hint =
    let n = t.cfg.lru_count in
    let rec go i =
      if i >= n then 0
      else
        let got = evict_from t ((hint + i) mod n) in
        if got > 0 then got else go (i + 1)
    in
    go 0

  (* The background "cleaner" entry point (bookkeeping process):
     push usage back under the low watermark. Rotates over the LRU
     lists until the target is met or a full rotation reclaims
     nothing (everything left is referenced). *)
  let maintain ?(hi = 0.95) ?(lo = 0.90) t =
    let cap = float_of_int (A.capacity t.alloc) in
    if float_of_int (A.used_bytes t.alloc) > hi *. cap then begin
      let target = lo *. cap in
      let n = t.cfg.lru_count in
      let rec go l rotation_got =
        if float_of_int (A.used_bytes t.alloc) > target then begin
          let got = evict_from t (l mod n) in
          if (l + 1) mod n = 0 then begin
            if rotation_got + got > 0 then go (l + 1) 0
          end
          else go (l + 1) (rotation_got + got)
        end
      in
      go 0 0
    end

  (* ---- Table resize ----------------------------------------------------

     The feature the paper's authors had to disable ("our resizing code
     in the background process is not yet working correctly", §4) —
     implemented here as a stop-the-world migration run by the
     bookkeeping process: take every item-lock stripe (in index order,
     so concurrent resizes cannot deadlock each other), allocate the
     doubled table, relink every chain using the hash stored in each
     item header, swap the control block's bucket pointer (this is why
     Figure 3 kept an extra level of indirection), and release. Regular
     operations read the table pointer only while holding their stripe
     lock, so they always see a consistent table. *)

  let resize t =
    lock_all_stripes t;
    Fun.protect
      ~finally:(fun () -> unlock_all_stripes t)
      (fun () ->
        let old_hp = t.cfg.hashpower in
        let new_hp = old_hp + 1 in
        let nbuckets = 1 lsl new_hp in
        let nb = A.alloc t.alloc (8 * nbuckets) in
        if nb = 0 then false
        else begin
          adv (CM.alloc_cost (8 * nbuckets));
          zero_range t nb (8 * nbuckets);
          let new_mask = nbuckets - 1 in
          for b = 0 to (1 lsl old_hp) - 1 do
            let rec move it =
              if it <> 0 then begin
                adv CM.current.bucket_probe;
                let next = ldp t (it + it_h_next) in
                let h = rd32 t (it + it_hash) land 0xFFFFFFFF in
                let cell = nb + (8 * (h land new_mask)) in
                stp t (it + it_h_next) (ldp t cell);
                stp t cell it;
                move next
              end
            in
            move (ldp t (t.buckets + (8 * b)))
          done;
          let old_buckets = t.buckets in
          t.buckets <- nb;
          t.hash_mask <- new_mask;
          t.cfg <- { t.cfg with hashpower = new_hp };
          wr64 t (t.ctrl + ctl_hashpower) new_hp;
          stp t (t.ctrl + ctl_buckets) nb;
          A.free t.alloc old_buckets;
          true
        end)

  (* Grow when the load factor passes [lf]; the bookkeeping process
     calls this from its cleaning loop. *)
  let maybe_resize ?(lf = 1.5) t =
    let items = stat_sum t C.curr_items in
    if float_of_int items
       > lf *. float_of_int (1 lsl t.cfg.hashpower)
    then resize t
    else false

  let load_factor t =
    float_of_int (stat_sum t C.curr_items)
    /. float_of_int (1 lsl t.cfg.hashpower)

  let alloc_item t total ~h =
    let rec go attempts =
      let off = A.alloc t.alloc total in
      (* Allocator-priced: the bump-arena hot tier makes small-item
         allocation a pointer increment, and the set path should see
         that in virtual time too. *)
      adv (A.alloc_ns t.alloc total);
      if off <> 0 then off
      else if attempts = 0 then 0
      else if evict_some t ~hint:(h mod t.cfg.lru_count) = 0 then 0
      else go (attempts - 1)
    in
    go 10

  (* ---- Item construction --------------------------------------------------- *)

  (* CAS values are unsigned 64-bit end-to-end ([Atomic] has no 64-bit
     fetch-and-add, hence the CAS loop). *)
  let next_cas t =
    let rec go () =
      let c = Atomic.get t.cas_src in
      if Atomic.compare_and_set t.cas_src c (Int64.add c 1L) then c else go ()
    in
    go ()

  let real_exptime exptime ~now =
    if exptime = 0 then 0
    else if exptime < 0 then -1 (* expire immediately, memcached-style *)
    else if exptime <= 60 * 60 * 24 * 30 then now + exptime
    else exptime

  let write_item t it ~h ~key ~data ~flags ~exptime ~now =
    let nkey = String.length key and nbytes = String.length data in
    stp t (it + it_h_next) 0;
    stp t (it + it_lru_next) 0;
    stp t (it + it_lru_prev) 0;
    wr64r t (it + it_cas) (next_cas t);
    wr32 t (it + it_exptime) (real_exptime exptime ~now);
    wr32 t (it + it_flags) flags;
    wr32 t (it + it_nkey) nkey;
    wr32 t (it + it_nbytes) nbytes;
    wr32 t (it + it_refcount) 0;
    wr32 t (it + it_lru_id) 0;
    wr32 t (it + it_state) 0;
    wr32 t (it + it_hash) h;
    wr64 t (it + it_time) (S.now_ns ());
    M.write_string t.mem ~off:(it + header_size) key;
    M.write_string t.mem ~off:(it + header_size + nkey) data;
    adv (CM.memcpy_cost (nkey + nbytes))

  (* ---- Retrieval -------------------------------------------------------------- *)

  let locked_get t ~h ~now key =
    lock_item t h;
    let it = find t h key in
    if it = 0 then begin
      unlock_item t h;
      stat t C.get_misses;
      None
    end
    else if expired t it ~now then begin
      unlink_item t h it;
      unlock_item t h;
      stat t C.expired;
      stat t C.get_misses;
      None
    end
    else begin
      (* Figure 4's discipline: take a reference under the lock, copy
         the payload into a library-private buffer without the lock,
         then drop the reference. *)
      wr32 t (it + it_refcount) (rd32 t (it + it_refcount) + 1);
      wr32 t (it + it_state) (rd32 t (it + it_state) lor state_fetched);
      let flags = rd32 t (it + it_flags) in
      let cas = rd64r t (it + it_cas) in
      let nbytes = item_nbytes t it in
      let data_off = item_data_off t it in
      (* Rate-limited bump: a hot key that already moved within the
         last [bump_interval_s] skips the LRU lock entirely, so hot-key
         gets do not serialize on it. Refreshing [it_time] here is
         flush_all-safe because the expiry check above already ran. *)
      let bump_ns = t.cfg.bump_interval_s * 1_000_000_000 in
      if bump_ns = 0 || S.now_ns () - rd64 t (it + it_time) >= bump_ns
      then begin
        wr64 t (it + it_time) (S.now_ns ());
        lru_bump t it
      end;
      unlock_item t h;
      adv (CM.memcpy_cost nbytes);
      let value = M.read_string t.mem ~off:data_off ~len:nbytes in
      lock_item t h;
      release t it;
      unlock_item t h;
      (* Copy out to the caller's buffer (the paper's second memcpy,
         into ordinary malloc'd memory). *)
      adv CM.current.malloc_out;
      adv (CM.memcpy_cost nbytes);
      stat t C.get_hits;
      Some { value; flags; cas }
    end

  (* ---- Optimistic (seqlock) retrieval ------------------------------------
     Snapshot–validate–retry against the stripe's version word, with
     no lock and no refcount. Anything read mid-mutation can be torn:
     chain links may cycle, lengths may be garbage, and with heap
     poisoning armed a concurrently freed block raises — all of it is
     caught (bounded probes, [Invalid_argument] from the range checks,
     {!Ralloc.Use_after_free}) and classified as a conflict. A
     snapshot only counts if the version word is even before and
     unchanged after; what it then *means* is decided from the
     validated fields alone:
     - expired (or killed by the flush_all watermark) → fall back, the
       locked path owns the unlink side effect;
     - LRU bump due → fall back, the bump needs the stripe;
     - otherwise → a hit that never touched a lock.
     The watermark is re-read *after* validation: it is monotonic, so
     the check covers any flush_all that completed before the snapshot
     was validated — an optimistic get can never return an item a
     completed flush_all logically killed. *)

  exception Conflict

  (* Probe budget for the lock-free chain walk: a torn chain may
     cycle, so unlike [find] the walk must be bounded. *)
  let opt_probe_budget = 128

  let opt_find t h key =
    let len = String.length key in
    let rec go it n =
      if it = 0 then 0
      else if n = 0 then raise Conflict
      else begin
        adv CM.current.bucket_probe;
        if
          rd32 t (it + it_nkey) = len
          && (adv (CM.key_cmp_cost len);
              M.equal_string t.mem ~off:(it + header_size) ~len key)
        then it
        else go (ldp t (it + it_h_next)) (n - 1)
      end
    in
    go (ldp t (bucket_of t h)) opt_probe_budget

  let opt_attempt t ~h ~now key =
    let s = stripe_index t h in
    let v0 = seq_read t s in
    if v0 land 1 <> 0 then raise Conflict;
    let it = opt_find t h key in
    let outcome =
      if it = 0 then `Miss
      else begin
        let state = rd32 t (it + it_state) in
        let flags = rd32 t (it + it_flags) in
        let cas = rd64r t (it + it_cas) in
        let exptime = rd32 t (it + it_exptime) in
        let itime = rd64 t (it + it_time) in
        let nkey = rd32 t (it + it_nkey) in
        let nbytes = rd32 t (it + it_nbytes) in
        (* Bound before charging copy cost: a torn length would
           otherwise advance the virtual clock absurdly before the
           range check faults. *)
        if nbytes < 0 || nkey < 0 || nbytes > A.capacity t.alloc then
          raise Conflict;
        adv (CM.memcpy_cost nbytes);
        let value =
          M.read_string t.mem ~off:(it + header_size + nkey) ~len:nbytes
        in
        if state land state_linked = 0 then raise Conflict;
        `Snap (value, flags, cas, exptime, itime)
      end
    in
    if seq_read t s <> v0 then raise Conflict;
    (* The snapshot is consistent as of [v0]; interpret it. *)
    match outcome with
    | `Miss -> `Miss
    | `Snap (value, flags, cas, exptime, itime) ->
      if expired_fields ~exptime ~now then `Fallback
      else begin
        let ol = rd64 t (t.ctrl + ctl_oldest_live) in
        if ol > 0 && itime <= ol then `Fallback
        else begin
          let bump_ns = t.cfg.bump_interval_s * 1_000_000_000 in
          if bump_ns = 0 || S.now_ns () - itime >= bump_ns then `Fallback
          else begin
            adv CM.current.malloc_out;
            adv (CM.memcpy_cost (String.length value));
            `Hit { value; flags; cas }
          end
        end
      end

  let optimistic_get t ~h ~now key =
    let module TC = Telemetry.Counters in
    let rec go tries =
      if tries <= 0 then begin
        TC.incr TC.Id.opt_fallbacks;
        `Fallback
      end
      else
        match opt_attempt t ~h ~now key with
        | `Hit r ->
          TC.incr TC.Id.opt_hits;
          `Hit r
        | `Miss ->
          TC.incr TC.Id.opt_hits;
          `Miss
        | `Fallback ->
          TC.incr TC.Id.opt_fallbacks;
          `Fallback
        | exception (Conflict | Ralloc.Use_after_free _ | Invalid_argument _)
          ->
          TC.incr TC.Id.opt_retries;
          go (tries - 1)
    in
    go (t.cfg.opt_max_retries + 1)

  let get t key =
    with_op t @@ fun () ->
    stat t C.cmd_get;
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    if (not t.cfg.optimistic_reads) || holds_stripe t (stripe_index t h) then
      locked_get t ~h ~now key
    else
      match optimistic_get t ~h ~now key with
      | `Hit r ->
        stat t C.get_hits;
        Some r
      | `Miss ->
        stat t C.get_misses;
        None
      | `Fallback -> locked_get t ~h ~now key

  (* ---- Storage ------------------------------------------------------------------ *)

  type policy = P_set | P_add | P_replace | P_cas of int64

  (* [abs_exptime], when [Some], overrides [exptime] with an absolute
     expiry already in unix seconds (no [real_exptime] conversion) —
     used by paths that must carry an existing item's TTL forward. *)
  let store_with t policy ~abs_exptime ~key ~data ~flags ~exptime =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    let total = header_size + String.length key + String.length data in
    let it = alloc_item t total ~h in
    if it = 0 then No_memory
    else begin
      write_item t it ~h ~key ~data ~flags ~exptime ~now;
      (match abs_exptime with
       | Some e -> wr32 t (it + it_exptime) e
       | None -> ());
      lock_item t h;
      let old = find t h key in
      let old = if old <> 0 && expired t old ~now then begin
          unlink_item t h old;
          0
        end
        else old
      in
      let decide =
        match policy, old with
        | P_set, _ -> `Store
        | P_add, 0 -> `Store
        | P_add, _ -> `Fail Not_stored
        | P_replace, 0 -> `Fail Not_stored
        | P_replace, _ -> `Store
        | P_cas _, 0 -> `Fail Not_found
        | P_cas c, o ->
          if Int64.equal (rd64r t (o + it_cas)) c then `Store
          else `Fail Exists
      in
      let result =
        match decide with
        | `Fail r ->
          unlock_item t h;
          free_item t it;
          r
        | `Store ->
          if old <> 0 then unlink_item t h old;
          hash_insert t h it;
          let l = lru_of t ~h ~key ~size:total in
          lock_lru t l;
          lru_link t it l;
          unlock_lru t l;
          stat_add t C.curr_items 1;
          stat t C.total_items;
          unlock_item t h;
          Stored
      in
      stat t C.cmd_set;
      (match policy, result with
       | P_cas _, Stored -> stat t C.cas_hits
       | P_cas _, Exists -> stat t C.cas_badval
       | P_cas _, Not_found -> stat t C.cas_misses
       | _ -> ());
      result
    end

  let set t ?(flags = 0) ?(exptime = 0) key data =
    store_with t P_set ~abs_exptime:None ~key ~data ~flags ~exptime

  let add t ?(flags = 0) ?(exptime = 0) key data =
    store_with t P_add ~abs_exptime:None ~key ~data ~flags ~exptime

  let replace t ?(flags = 0) ?(exptime = 0) key data =
    store_with t P_replace ~abs_exptime:None ~key ~data ~flags ~exptime

  let cas t ?(flags = 0) ?(exptime = 0) ~cas key data =
    store_with t (P_cas cas) ~abs_exptime:None ~key ~data ~flags ~exptime

  (* Append/prepend: size the new item from a racy read, then verify
     under the lock and retry on interference. *)
  let concat_op t ~prepend key extra =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    let rec attempt tries =
      if tries = 0 then Not_stored
      else begin
        lock_item t h;
        let old = find t h key in
        if old = 0 || expired t old ~now then begin
          unlock_item t h;
          Not_stored
        end
        else begin
          let old_n = item_nbytes t old
          and old_cas = rd64r t (old + it_cas) in
          let flags = rd32 t (old + it_flags) in
          let exp = rd32 t (old + it_exptime) in
          let old_data =
            M.read_string t.mem ~off:(item_data_off t old) ~len:old_n
          in
          unlock_item t h;
          adv (CM.memcpy_cost old_n);
          let data = if prepend then extra ^ old_data else old_data ^ extra in
          let total = header_size + String.length key + String.length data in
          let it = alloc_item t total ~h in
          if it = 0 then No_memory
          else begin
            write_item t it ~h ~key ~data ~flags ~exptime:0 ~now;
            wr32 t (it + it_exptime) exp;
            lock_item t h;
            let cur = find t h key in
            if cur = 0 || not (Int64.equal (rd64r t (cur + it_cas)) old_cas)
            then begin
              unlock_item t h;
              free_item t it;
              attempt (tries - 1)
            end
            else begin
              unlink_item t h cur;
              hash_insert t h it;
              let l = lru_of t ~h ~key ~size:total in
              lock_lru t l;
              lru_link t it l;
              unlock_lru t l;
              stat_add t C.curr_items 1;
              stat t C.total_items;
              unlock_item t h;
              stat t C.cmd_set;
              Stored
            end
          end
        end
      end
    in
    attempt 5

  let append t key extra = concat_op t ~prepend:false key extra

  let prepend t key extra = concat_op t ~prepend:true key extra

  (* ---- Delete / touch ------------------------------------------------------------- *)

  let delete t key =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    lock_item t h;
    let it = find t h key in
    if it = 0 || expired t it ~now:(now_sec ()) then begin
      if it <> 0 then unlink_item t h it;
      unlock_item t h;
      stat t C.delete_misses;
      false
    end
    else begin
      unlink_item t h it;
      unlock_item t h;
      stat t C.delete_hits;
      true
    end

  (* Accounting probe: the live item's key+value byte count, with no
     stat bumps, no LRU bump and no expiry side effects — the tenant
     layer sizes replacements and deletes with it without polluting
     cmd_get/get_misses. *)
  let probe t key =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    lock_item t h;
    let it = find t h key in
    let r =
      if it = 0 || expired t it ~now then None
      else Some (item_nkey t it + item_nbytes t it)
    in
    unlock_item t h;
    r

  let touch t key exptime =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    lock_item t h;
    let it = find t h key in
    if it = 0 || expired t it ~now then begin
      unlock_item t h;
      stat t C.touch_misses;
      false
    end
    else begin
      wr32 t (it + it_exptime) (real_exptime exptime ~now);
      lru_bump t it;
      unlock_item t h;
      stat t C.touch_hits;
      true
    end

  (* ---- Counters ----------------------------------------------------------------------- *)

  (* Strict unsigned-64 decimal: values above 2^64-1 are rejected, not
     wrapped — memcached answers CLIENT_ERROR for an oversized stored
     counter rather than applying a silently wrapped delta. *)
  let max_u64_div10 = 1844674407370955161L (* (2^64 - 1) / 10 *)

  let parse_u64 s =
    let n = String.length s in
    if n = 0 || n > 20 then None
    else begin
      let rec go i (acc : int64) =
        if i >= n then Some acc
        else
          let c = s.[i] in
          if c < '0' || c > '9' then None
          else
            let d = Char.code c - Char.code '0' in
            if
              Int64.unsigned_compare acc max_u64_div10 > 0
              || (Int64.equal acc max_u64_div10 && d > 5)
            then None
            else go (i + 1) (Int64.add (Int64.mul acc 10L) (Int64.of_int d))
      in
      go 0 0L
    end

  let counter_op t ~decr key (delta : int64) =
    with_op t @@ fun () ->
    adv CM.current.hash_op;
    let h = Hash.murmur3_32 key in
    let now = now_sec () in
    lock_item t h;
    let it = find t h key in
    if it = 0 || expired t it ~now then begin
      if it <> 0 then unlink_item t h it;
      unlock_item t h;
      stat t C.incr_misses;
      Counter_not_found
    end
    else begin
      let nbytes = item_nbytes t it in
      adv CM.current.numeric_parse;
      let sval = M.read_string t.mem ~off:(item_data_off t it) ~len:nbytes in
      match parse_u64 sval with
      | None ->
        unlock_item t h;
        Non_numeric
      | Some v ->
        let nv =
          if decr then
            if Int64.unsigned_compare v delta < 0 then 0L
            else Int64.sub v delta
          else Int64.add v delta
        in
        let s = Printf.sprintf "%Lu" nv in
        let cap = A.usable_size t.alloc it - header_size - item_nkey t it in
        if String.length s <= cap then begin
          (* The common, in-place path: memcached overwrites the value
             under the item lock. *)
          M.write_string t.mem ~off:(item_data_off t it) s;
          wr32 t (it + it_nbytes) (String.length s);
          wr64r t (it + it_cas) (next_cas t);
          wr64 t (it + it_time) (S.now_ns ());
          adv (CM.memcpy_cost (String.length s));
          unlock_item t h;
          stat t C.incr_hits;
          Counter nv
        end
        else begin
          (* Rare: the textual value outgrew its block. Re-store with
             the counter's original flags and (absolute) expiry —
             an incr must not silently reset either. *)
          let flags = rd32 t (it + it_flags) in
          let exp = rd32 t (it + it_exptime) in
          unlock_item t h;
          match
            store_with t P_set ~abs_exptime:(Some exp) ~key ~data:s ~flags
              ~exptime:0
          with
          | Stored ->
            stat t C.incr_hits;
            Counter nv
          | No_memory | Not_stored | Exists | Not_found -> Counter_not_found
        end
    end

  let incr t key delta = counter_op t ~decr:false key delta

  let decr t key delta = counter_op t ~decr:true key delta

  (* ---- flush_all / stats ----------------------------------------------------------------- *)

  let flush_all t = wr64 t (t.ctrl + ctl_oldest_live) (S.now_ns ())

  let curr_items t = stat_sum t C.curr_items

  (* Standard memcached key names, so loadgen tooling written against
     real memcached output works unchanged. *)
  let stats t =
    adv (CM.current.stats_update * t.cfg.stats_slots);
    [ ("curr_items", string_of_int (stat_sum t C.curr_items));
      ("total_items", string_of_int (stat_sum t C.total_items));
      ("cmd_get", string_of_int (stat_sum t C.cmd_get));
      ("cmd_set", string_of_int (stat_sum t C.cmd_set));
      ("get_hits", string_of_int (stat_sum t C.get_hits));
      ("get_misses", string_of_int (stat_sum t C.get_misses));
      ("delete_hits", string_of_int (stat_sum t C.delete_hits));
      ("delete_misses", string_of_int (stat_sum t C.delete_misses));
      ("incr_hits", string_of_int (stat_sum t C.incr_hits));
      ("incr_misses", string_of_int (stat_sum t C.incr_misses));
      ("cas_hits", string_of_int (stat_sum t C.cas_hits));
      ("cas_badval", string_of_int (stat_sum t C.cas_badval));
      ("cas_misses", string_of_int (stat_sum t C.cas_misses));
      ("touch_hits", string_of_int (stat_sum t C.touch_hits));
      ("touch_misses", string_of_int (stat_sum t C.touch_misses));
      ("evictions", string_of_int (stat_sum t C.evictions));
      ("expired_unfetched", string_of_int (stat_sum t C.expired));
      ("bytes", string_of_int (A.used_bytes t.alloc));
      ("limit_maxbytes", string_of_int (A.capacity t.alloc));
      ("hash_power_level", string_of_int t.cfg.hashpower) ]

  (* `stats reset` zeroes the operation tallies. [curr_items] is a live
     gauge and [total_items] anchors the recovery invariant
     curr_items <= total_items, so both survive a reset. *)
  let stats_reset t =
    adv (CM.current.stats_update * t.cfg.stats_slots);
    for slot = 0 to t.cfg.stats_slots - 1 do
      for ctr = 0 to C.count - 1 do
        if ctr <> C.curr_items && ctr <> C.total_items then
          wr64 t (t.stats + (8 * ((slot * C.count) + ctr))) 0
      done
    done

  (* `stats items`: per-LRU-list occupancy and cold-end age, each list
     walked under its own lock (no stop-the-world). *)
  let stats_items t =
    let now = S.now_ns () in
    let acc = ref [] in
    for l = t.cfg.lru_count - 1 downto 0 do
      lock_lru t l;
      let rec count it n =
        if it = 0 then n
        else begin
          adv CM.current.bucket_probe;
          count (ldp t (it + it_lru_next)) (n + 1)
        end
      in
      let n = count (ldp t (lru_head t l)) 0 in
      let tail = ldp t (lru_tail t l) in
      let age_s =
        if tail = 0 then 0
        else max 0 ((now - rd64 t (tail + it_time)) / 1_000_000_000)
      in
      unlock_lru t l;
      if n > 0 then
        acc :=
          (Printf.sprintf "items:%d:number" l, string_of_int n)
          :: (Printf.sprintf "items:%d:age" l, string_of_int age_s)
          :: !acc
    done;
    !acc

  (* `stats slabs`: the allocator's per-size-class view plus totals. *)
  let stats_slabs t =
    A.class_kvs t.alloc
    @ [ ("total_malloced", string_of_int (A.used_bytes t.alloc));
        ("limit_maxbytes", string_of_int (A.capacity t.alloc)) ]

  (* ---- Iteration and proactive expiry ---------------------------------- *)

  (* Fold over every live item — an administrative walk (stats items /
     cachedump flavour). Items of one bucket can hash to any lock
     stripe, so a per-bucket lock cannot serialize a chain; like
     {!resize}, take every stripe for a consistent snapshot. [f]
     receives key, value length and the absolute expiry time. *)
  let fold_keys t f init =
    lock_all_stripes t;
    Fun.protect
      ~finally:(fun () -> unlock_all_stripes t)
      (fun () ->
        let acc = ref init in
        for b = 0 to t.hash_mask do
          let rec walk it =
            if it <> 0 then begin
              adv CM.current.bucket_probe;
              acc :=
                f !acc (item_key t it) ~nbytes:(item_nbytes t it)
                  ~exptime:(rd32 t (it + it_exptime));
              walk (ldp t (it + it_h_next))
            end
          in
          walk (ldp t (t.buckets + (8 * b)))
        done;
        !acc)

  (* The LRU crawler: walk the cold ends of the LRU lists and unlink
     items that have already expired, without waiting for a get to
     stumble on them. Returns how many were reaped. *)
  let reap_expired ?(limit = 1_000) t =
    let now = now_sec () in
    let reaped = ref 0 in
    for l = 0 to t.cfg.lru_count - 1 do
      (* Same re-verification discipline as [evict_from]: candidates
         are (offset, hash, cas) triples read while the LRU lock pins
         them unfreed, then re-checked under the item stripe lock. *)
      let rec candidates it n acc =
        if it = 0 || n = 0 then acc
        else begin
          adv CM.current.bucket_probe;
          let acc =
            if expired t it ~now then
              ( it,
                rd32 t (it + it_hash) land 0xFFFFFFFF,
                rd64r t (it + it_cas) )
              :: acc
            else acc
          in
          candidates (ldp t (it + it_lru_prev)) (n - 1) acc
        end
      in
      lock_lru t l;
      let victims =
        candidates (ldp t (lru_tail t l)) (limit / t.cfg.lru_count) []
      in
      unlock_lru t l;
      List.iter
        (fun (it, h, cas) ->
          lock_item t h;
          if on_chain t h it
             && Int64.equal (rd64r t (it + it_cas)) cas
             && expired t it ~now
             && rd32 t (it + it_refcount) = 0
          then begin
            let key = item_key t it and nbytes = item_nbytes t it in
            unlink_item t h it;
            stat t C.expired;
            notify_evict t ~key ~bytes:(String.length key + nbytes);
            Stdlib.incr reaped
          end;
          unlock_item t h)
        victims
    done;
    !reaped

  (* ---- Integrity check (tests; call only at quiescence) ------------------------------------ *)

  let check_invariants t =
    let next_cas = Atomic.get t.cas_src in
    let linked = ref 0 in
    for b = 0 to t.hash_mask do
      let rec walk it =
        if it <> 0 then begin
          if not (is_linked t it) then
            failwith "unlinked item on a hash chain";
          (* Accounting vs. the allocator's view: every linked item must
             be backed by a live allocation big enough for its header,
             key and value. *)
          (match A.usable_size t.alloc it with
           | exception _ ->
             failwith "linked item not backed by a live allocation"
           | us ->
             if us < header_size + item_nkey t it + item_nbytes t it then
               failwith "linked item larger than its block");
          let h = rd32 t (it + it_hash) land 0xFFFFFFFF in
          if h land t.hash_mask <> b then
            failwith "item chained into the wrong bucket";
          let key = item_key t it in
          if Hash.murmur3_32 key <> h then
            failwith "stored hash does not match key";
          if rd32 t (it + it_refcount) <> 0 then
            failwith "dangling refcount at quiescence";
          if Int64.unsigned_compare (rd64r t (it + it_cas)) next_cas >= 0 then
            failwith "item cas from the future (cas source not monotonic)";
          Stdlib.incr linked;
          walk (ldp t (it + it_h_next))
        end
      in
      walk (ldp t (t.buckets + (8 * b)))
    done;
    let in_lru = ref 0 in
    for l = 0 to t.cfg.lru_count - 1 do
      let rec walk it prev =
        if it <> 0 then begin
          if not (is_linked t it) then failwith "unlinked item on an LRU";
          if ldp t (it + it_lru_prev) <> prev then
            failwith "broken lru prev link";
          if rd32 t (it + it_lru_id) <> l then
            failwith "item on the wrong lru list";
          Stdlib.incr in_lru;
          walk (ldp t (it + it_lru_next)) it
        end
        else if ldp t (lru_tail t l) <> prev then failwith "lru tail mismatch"
      in
      walk (ldp t (lru_head t l)) 0
    done;
    if !linked <> !in_lru then
      failwith
        (Printf.sprintf "hash table has %d items but LRUs have %d" !linked
           !in_lru);
    if !linked <> curr_items t then
      failwith
        (Printf.sprintf "curr_items %d but %d items linked" (curr_items t)
           !linked)

  (* ---- Post-crash recovery (call only at quiescence) ------------------

     A process killed abruptly inside a call leaves three kinds of
     store-level damage, all bounded by the sync points inside an op:
     locks owned by its dead threads, items visible from only one of
     the two index structures (hash chain vs. LRU list), and counters
     it updated on only one side. Recovery takes the hash table as the
     source of truth: an item is the store's iff it sits on the correct
     bucket chain with intact geometry. Everything else is rebuilt. *)

  let recover t =
    (* Dead threads may own any stripe/LRU/stats lock: replace them
       all (the robust-ownership handoff a real OS gives futexes). *)
    for i = 0 to Array.length t.item_locks - 1 do
      t.item_locks.(i) <- S.mutex ~cls:"store.item" ()
    done;
    for l = 0 to Array.length t.lru_locks - 1 do
      t.lru_locks.(l) <- S.mutex ~cls:"store.lru" ()
    done;
    t.stats_mutex <- S.mutex ~cls:"store.stats" ();
    Atomic.set t.active 0;
    (* Sift every hash chain: keep exactly the items whose backing
       block is live, big enough, and whose stored hash matches both
       the key bytes and the bucket — anything torn mid-link drops. *)
    let live_items = ref [] in
    let kept_count = ref 0 in
    let max_cas = ref 0L in
    for b = 0 to t.hash_mask do
      let bucket = t.buckets + (8 * b) in
      let rec sift it acc =
        if it = 0 then List.rev acc
        else begin
          adv CM.current.bucket_probe;
          let next = ldp t (it + it_h_next) in
          let sane =
            match A.usable_size t.alloc it with
            | exception _ -> false
            | us ->
              let nkey = rd32 t (it + it_nkey) in
              let nbytes = rd32 t (it + it_nbytes) in
              nkey > 0
              && nbytes >= 0
              && us >= header_size + nkey + nbytes
              &&
              let h = rd32 t (it + it_hash) land 0xFFFFFFFF in
              h land t.hash_mask = b && Hash.murmur3_32 (item_key t it) = h
          in
          sift next (if sane then it :: acc else acc)
        end
      in
      let kept = sift (ldp t bucket) [] in
      let rec relink at = function
        | [] -> stp t at 0
        | it :: rest ->
          stp t at it;
          relink (it + it_h_next) rest
      in
      relink bucket kept;
      List.iter
        (fun it ->
          (* References held by dead readers die with them. *)
          wr32 t (it + it_refcount) 0;
          wr32 t (it + it_state) (rd32 t (it + it_state) lor state_linked);
          let c = rd64r t (it + it_cas) in
          if Int64.unsigned_compare c !max_cas > 0 then max_cas := c;
          live_items := it :: !live_items;
          Stdlib.incr kept_count)
        kept
    done;
    (* Rebuild every LRU list from the sifted hash table; half-deleted
       items still spliced into an LRU simply never reappear. Recency
       order is sacrificed — the paper's store persists no LRU age
       either. *)
    for l = 0 to t.cfg.lru_count - 1 do
      stp t (lru_head t l) 0;
      stp t (lru_tail t l) 0
    done;
    List.iter
      (fun it ->
        let h = rd32 t (it + it_hash) land 0xFFFFFFFF in
        let size = header_size + item_nkey t it + item_nbytes t it in
        lru_link t it (lru_of t ~h ~key:(item_key t it) ~size))
      !live_items;
    (* Item count from the ground truth; per-thread scatter collapses
       into slot 0. Hit/miss tallies are best-effort monitoring and are
       left as found (telemetry's recovery semantics are *sift*, not
       reset — see DESIGN.md). *)
    for slot = 0 to t.cfg.stats_slots - 1 do
      wr64 t (t.stats + (8 * ((slot * C.count) + C.curr_items))) 0
    done;
    wr64 t (t.stats + (8 * C.curr_items)) !kept_count;
    (* A crash between the curr_items and total_items updates of one
       store (or an eviction of an item whose total_items bump never
       landed) can leave total_items short of what the other counters
       prove happened. Clamp it so the monitoring invariant
       curr_items + removals <= total_items holds again. *)
    let removals =
      stat_sum t C.evictions + stat_sum t C.expired + stat_sum t C.delete_hits
    in
    let total = max (stat_sum t C.total_items) (!kept_count + removals) in
    for slot = 0 to t.cfg.stats_slots - 1 do
      wr64 t (t.stats + (8 * ((slot * C.count) + C.total_items))) 0
    done;
    wr64 t (t.stats + (8 * C.total_items)) total;
    Telemetry.Trace.emit ~sev:Telemetry.Trace.Info ~subsys:"store"
      (Printf.sprintf "recovery kept %d items, total_items=%d" !kept_count
         total);
    (* CAS monotonicity across the crash: restart above every CAS any
       client was ever acknowledged. *)
    let cur = Atomic.get t.cas_src in
    let above = Int64.add !max_cas 1L in
    let nc = if Int64.unsigned_compare cur above > 0 then cur else above in
    Atomic.set t.cas_src nc;
    wr64r t (t.ctrl + ctl_cas) nc;
    (* A kill inside a stripe acquisition leaves its seq word odd;
       every lock is being replaced above, so normalize the words back
       to even or optimistic readers would spin forever on the stripe. *)
    for s = 0 to t.lock_mask do
      let v = rd64 t (seq_off t s) in
      if v land 1 <> 0 then wr64 t (seq_off t s) (v + 1)
    done;
    (* The allocator's recovery scan needs every offset the store still
       reaches: control block, tables, seq words, and each live item. *)
    t.ctrl :: t.buckets :: t.lru :: t.stats :: t.seqs :: !live_items
end
