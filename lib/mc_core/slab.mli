(** memcached's slab allocator, for the baseline build: 1 MiB pages
    carved into geometrically growing chunk classes (factor 1.25 from
    96 B), per-class free lists, one lock — the ~1600 lines the paper
    deletes in favour of Ralloc. *)

type t

val page_size : int

val chunk_sizes : int array

val n_classes : int

val class_of_size : int -> int
(** Class index serving [size], or [-1] beyond the largest chunk
    (such requests take whole-page "big" allocations in {!alloc}). *)

val create : arena:Private_memory.t -> mem_limit:int -> t

val alloc : t -> int -> int
(** Arena offset of a chunk (or page run, for sizes beyond the largest
    class), or [0] when [mem_limit] is reached. *)

val free : t -> int -> unit

val alloc_ns : t -> int -> int

val usable_size : t -> int -> int

val used_bytes : t -> int

val capacity : t -> int

val class_of_off : t -> int -> int
(** Class owning the page that contains [off] (markers < 0 for big
    allocations). *)

val class_kvs : t -> (string * string) list
(** Per-class occupancy for `stats slabs`: [<class>:chunk_size],
    [<class>:total_pages], [<class>:free_chunks]. *)
