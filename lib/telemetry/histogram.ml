(** Log-scale latency histogram (HdrHistogram-style bucketing:
    32 sub-buckets per power of two gives ~3% value resolution), used
    for per-operation latencies in nanoseconds.

    This is the project-wide implementation; [Ycsb.Histogram] is a
    re-export so the load generator and the telemetry subsystem share
    one definition. *)

let sub_bits = 5

let sub_count = 1 lsl sub_bits

let n_buckets = 64 * sub_count

(* Most significant set bit of a positive int via [frexp]: exact for
   values below 2^53, far beyond any nanosecond latency recorded
   here. *)
let msb v =
  if v <= 0 then invalid_arg "Histogram.msb";
  snd (Float.frexp (float_of_int v)) - 1

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; sum = 0;
    vmin = max_int; vmax = 0 }

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let bucket_of v =
  let v = max v 1 in
  let msb = msb v in
  if msb < sub_bits then v
  else
    let minor = (v lsr (msb - sub_bits)) land (sub_count - 1) in
    ((msb - sub_bits + 1) * sub_count) + minor

let value_of b =
  if b < sub_count then b
  else
    let major = (b / sub_count) + sub_bits - 1 in
    let minor = b land (sub_count - 1) in
    (1 lsl major) lor (minor lsl (major - sub_bits))

let record t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let count t = t.total

let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let min_value t = if t.total = 0 then 0 else t.vmin

let max_value t = t.vmax

let sum t = t.sum

(* Percentile edge cases: an empty histogram returns the sentinel 0
   (there is no sample to interpolate towards); a single-sample
   histogram returns that sample exactly. In general the answer is a
   bucket's lower bound clamped into [vmin, vmax] — without the vmin
   clamp a lone sample of 1000 would report p50 = 992, the bucket
   floor, a value that was never recorded. *)
let percentile t p =
  if t.total = 0 then 0
  else if t.total = 1 then t.vmin
  else begin
    let target =
      int_of_float (Float.round (p /. 100.0 *. float_of_int t.total))
    in
    let target = max 1 (min target t.total) in
    let rec go b acc =
      if b >= n_buckets then t.vmax
      else
        let acc = acc + t.counts.(b) in
        if acc >= target then max t.vmin (min (value_of b) t.vmax)
        else go (b + 1) acc
    in
    go 0 0
  end

(** Flat summary of a histogram as stats-style key/value pairs, each
    key prefixed with [prefix ^ ":"]. *)
let kvs ~prefix t =
  [ (prefix ^ ":count", string_of_int (count t));
    (prefix ^ ":mean_ns", Printf.sprintf "%.0f" (mean t));
    (prefix ^ ":p50_ns", string_of_int (percentile t 50.0));
    (prefix ^ ":p99_ns", string_of_int (percentile t 99.0));
    (prefix ^ ":max_ns", string_of_int (max_value t)) ]
