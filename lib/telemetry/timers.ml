(** Keyed latency histograms: virtual-time cost per protected call and
    per protocol operation, keyed by operation name.

    Recording is host-side only and charges no virtual time; values
    are virtual nanoseconds measured by the caller (trampoline entry
    to exit, executor dispatch to reply). The table is tiny (one
    histogram per distinct operation name) and guarded by a real
    mutex whose critical sections never perform effects, so it is
    safe under both OS threads and the effects-based Vm. *)

let lock = Mutex.create ()

let tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~op ns =
  if Control.on () then
    with_lock (fun () ->
      let h =
        match Hashtbl.find_opt tbl op with
        | Some h -> h
        | None ->
          let h = Histogram.create () in
          Hashtbl.add tbl op h;
          h
      in
      Histogram.record h (max ns 0))

(** Merged copy of one operation's histogram, if it has been seen. *)
let get op =
  with_lock (fun () ->
    match Hashtbl.find_opt tbl op with
    | None -> None
    | Some h ->
      let c = Histogram.create () in
      Histogram.merge ~into:c h;
      Some c)

let ops () =
  with_lock (fun () ->
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []))

(** Stats-style dump: for each operation, count/mean/p50/p99/max. *)
let kvs () =
  let names = ops () in
  List.concat_map
    (fun op ->
      match get op with
      | None -> []
      | Some h -> Histogram.kvs ~prefix:op h)
    names

let reset () = with_lock (fun () -> Hashtbl.reset tbl)
