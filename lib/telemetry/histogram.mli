(** Log-scale latency histogram (HdrHistogram-style: 32 sub-buckets
    per power of two, ~3% value resolution), for per-operation
    nanosecond latencies. Shared by the YCSB load generator and the
    telemetry subsystem. *)

type t

val create : unit -> t

val reset : t -> unit

val record : t -> int -> unit

val merge : into:t -> t -> unit

val count : t -> int

val mean : t -> float

val sum : t -> int
(** Exact sum of every recorded value (the phase-attribution pass
    depends on sums being integers, not bucket approximations). *)

val min_value : t -> int

val max_value : t -> int

val percentile : t -> float -> int
(** [percentile t 99.0] — bucket-floor resolution (~3-4%), always
    clamped into [[min_value, max_value]]. Edge cases: an empty
    histogram returns the sentinel 0; a single-sample histogram
    returns the sample itself (never a bucket bound below it). *)

val kvs : prefix:string -> t -> (string * string) list
(** Stats-style summary: [prefix:count], [prefix:mean_ns],
    [prefix:p50_ns], [prefix:p99_ns], [prefix:max_ns]. *)
