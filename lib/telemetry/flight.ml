(** Crash-surviving flight recorder.

    A fixed-size per-lane breadcrumb ring written with the same
    publish-last stamping discipline as the transport rings: a
    record's payload words and checksum land first, its sequence word
    (position + 1) last, and the lane's position counter advances only
    after that. A kill anywhere inside the protocol leaves a record
    whose sequence or checksum does not validate — the record is
    simply absent from the post-mortem dump, never torn.

    The recorder writes through a pluggable word backend. The default
    is a host array (always live, so the write path is exercised even
    without a shared heap); the protected-library layer installs
    closures over its Ralloc heap block (root [root_flight]) so the
    breadcrumbs survive the process and feed {!Forensics} after
    recovery.

    Two record families with different atomicity:

    {b State records} (crossing enter/exit, stripe acquire/release,
    ring-drain begin/end) mark protocol-state transitions the
    post-mortem classifier keys on. They are written without any
    scheduler sync point, adjacent to the in-memory truth they mirror
    (the trampoline's depth counter, the store's held-stripe list),
    so under the simulator's cooperative scheduler the record and the
    state it describes move atomically — the classifier can never
    disagree with ground truth at a kill site. Each carries the
    post-transition state (depth, held count, drain flag) so a reader
    needs only the latest record of a family, not a balanced count.

    {b Info records} (op dispatch, tenant scope, large alloc/free)
    are annotations. Their publish deliberately crosses a scheduler
    sync point ({!Control.sync_point}, zero virtual cost) between the
    payload and the commit stamp, so the crash sweep exercises the
    torn-write window at every such site — the publish-last protocol
    is what keeps those kills invisible, and reverting it
    ({!publish_last_enabled}) makes the torn-record test go red.

    A small side area snapshots severity >= Error trace events
    ({!snapshot_trace}, called by {!Trace.emit}) so pre-crash
    warnings survive into the post-mortem even though the main trace
    ring is process-local. *)

type kind =
  | Cross_enter  (** a = trampoline depth after entry *)
  | Cross_exit  (** a = depth after exit *)
  | Op_dispatch  (** a = op code ({!Forensics} table), b = tenant, c = conn *)
  | Stripe_acquire  (** a = stripes held after, b = stripe index *)
  | Stripe_release  (** a = stripes held after, b = stripe index *)
  | Group_acquire  (** a = stripes held after, b = first stripe, c = count *)
  | Group_release  (** a = stripes held after, b = count released *)
  | Ring_drain_begin  (** a = 1, b = conn id, c = messages in window *)
  | Ring_drain_end  (** a = 0, b = conn id, c = messages drained *)
  | Tenant_scope  (** a = tenant slot *)
  | Tenant_unscope  (** a = tenant slot *)
  | Alloc_large  (** a = bytes, b = heap offset *)
  | Free_large  (** a = bytes, b = heap offset *)

let kind_code = function
  | Cross_enter -> 1
  | Cross_exit -> 2
  | Op_dispatch -> 3
  | Stripe_acquire -> 4
  | Stripe_release -> 5
  | Group_acquire -> 6
  | Group_release -> 7
  | Ring_drain_begin -> 8
  | Ring_drain_end -> 9
  | Tenant_scope -> 10
  | Tenant_unscope -> 11
  | Alloc_large -> 12
  | Free_large -> 13

let kind_of_code = function
  | 1 -> Some Cross_enter
  | 2 -> Some Cross_exit
  | 3 -> Some Op_dispatch
  | 4 -> Some Stripe_acquire
  | 5 -> Some Stripe_release
  | 6 -> Some Group_acquire
  | 7 -> Some Group_release
  | 8 -> Some Ring_drain_begin
  | 9 -> Some Ring_drain_end
  | 10 -> Some Tenant_scope
  | 11 -> Some Tenant_unscope
  | 12 -> Some Alloc_large
  | 13 -> Some Free_large
  | _ -> None

let kind_name = function
  | Cross_enter -> "cross_enter"
  | Cross_exit -> "cross_exit"
  | Op_dispatch -> "op_dispatch"
  | Stripe_acquire -> "stripe_acquire"
  | Stripe_release -> "stripe_release"
  | Group_acquire -> "group_acquire"
  | Group_release -> "group_release"
  | Ring_drain_begin -> "ring_drain_begin"
  | Ring_drain_end -> "ring_drain_end"
  | Tenant_scope -> "tenant_scope"
  | Tenant_unscope -> "tenant_unscope"
  | Alloc_large -> "alloc_large"
  | Free_large -> "free_large"

(* Info records cross a sync point mid-publish; state records must
   not (their atomicity with the state they mirror is what makes the
   post-mortem classification exact). *)
let tearable = function
  | Op_dispatch | Tenant_scope | Tenant_unscope | Alloc_large | Free_large ->
    true
  | Cross_enter | Cross_exit | Stripe_acquire | Stripe_release | Group_acquire
  | Group_release | Ring_drain_begin | Ring_drain_end ->
    false

(* ---- geometry --------------------------------------------------------- *)

let lanes = 16

let depth = 64

(* Record: [seq][kind][a][b][c][stamp][cksum]. [seq] is position + 1
   when published (0 = never written at this wrap). *)
let rec_words = 7

let magic = 0x464C5431 (* "FLT1" *)

(* Word layout: 0 magic, 1 lanes, 2 depth, 3 trace-snapshot cursor,
   4..7 reserved, 8..8+lanes-1 per-lane position counters, then lane
   records, then the trace-snapshot area. *)
let w_magic = 0

let w_lanes = 1

let w_depth = 2

let w_trace_next = 3

(* Death note: the crash path stamps the dying thread's lane + 1 here
   (a single word write, atomic under any schedule) — the post-mortem
   analyzer's pointer to the victim timeline, like a black box's last
   entry. 0 = no recorded death. *)
let w_victim = 4

let w_lane_pos lane = 8 + lane

let rec_base = 8 + lanes

let rec_off lane slot = rec_base + (((lane * depth) + slot) * rec_words)

(* Trace snapshots: [seq+1][at][sev][len] + 16 words (128 bytes) of
   rendered message text, publish-last on the seq word. *)
let trace_slots = 8

let trace_text_words = 16

let trace_entry_words = 4 + trace_text_words

let trace_base = rec_base + (lanes * depth * rec_words)

let trace_off slot = trace_base + (slot * trace_entry_words)

let total_words = trace_base + (trace_slots * trace_entry_words)

(** Bytes a backing store must provide (8 bytes per word). *)
let bytes = total_words * 8

(* ---- backend ----------------------------------------------------------- *)

type backend = { read : int -> int; write : int -> int -> unit }

let host_words = Array.make total_words 0

let host_backend =
  { read = (fun i -> host_words.(i)); write = (fun i v -> host_words.(i) <- v) }

let () =
  host_words.(w_magic) <- magic;
  host_words.(w_lanes) <- lanes;
  host_words.(w_depth) <- depth

let backend = ref host_backend

let format () =
  let be = !backend in
  for i = 0 to total_words - 1 do
    be.write i 0
  done;
  be.write w_magic magic;
  be.write w_lanes lanes;
  be.write w_depth depth

(** Format unless the block already carries this layout's header —
    re-attaching after a crash must preserve the breadcrumbs. *)
let ensure_formatted () =
  let be = !backend in
  if
    be.read w_magic <> magic
    || be.read w_lanes <> lanes
    || be.read w_depth <> depth
  then format ()

let install_backend b =
  backend := b;
  ensure_formatted ()

let reset_backend () = backend := host_backend

(** Zero the current backend (tests and bench harness isolation). *)
let reset () = format ()

(* ---- lane assignment --------------------------------------------------- *)

let lane_rr = Atomic.make 0

let my_lane_key : int Tls.key =
  Tls.new_key (fun () -> Atomic.fetch_and_add lane_rr 1 mod lanes)

let my_lane () = Tls.get my_lane_key

(* ---- publish ----------------------------------------------------------- *)

(* Red-team toggle (shipping default true): with it off the sequence
   word is stamped before the payload, so a kill at the info-record
   sync point leaves a record that claims to be published but whose
   checksum disagrees — the torn-record test flips red. *)
let publish_last_enabled = ref true

let cksum ~seq ~kind ~a ~b ~c ~stamp =
  let mix h w = ((h * 0x1000193) + w + 0x9E3779B9) land max_int in
  mix (mix (mix (mix (mix (mix 0x811C9DC5 seq) kind) a) b) c) stamp

let record ?(a = 0) ?(b = 0) ?(c = 0) kind =
  if Control.on () then begin
    let be = !backend in
    let lane = my_lane () in
    let pos = be.read (w_lane_pos lane) in
    let base = rec_off lane (pos mod depth) in
    let k = kind_code kind in
    let stamp = Control.now_ns () in
    let seq = pos + 1 in
    let ck = cksum ~seq ~kind:k ~a ~b ~c ~stamp in
    let payload () =
      be.write (base + 1) k;
      be.write (base + 2) a;
      be.write (base + 3) b;
      be.write (base + 4) c;
      be.write (base + 5) stamp;
      be.write (base + 6) ck
    in
    if !publish_last_enabled then begin
      payload ();
      if tearable kind then Control.sync_point ();
      be.write base seq
    end
    else begin
      be.write base seq;
      if tearable kind then Control.sync_point ();
      payload ()
    end;
    be.write (w_lane_pos lane) (pos + 1)
  end

(* ---- dump -------------------------------------------------------------- *)

type entry = {
  e_pos : int;
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_c : int;
  e_stamp : int;
}

let read_entry be lane pos =
  let base = rec_off lane (pos mod depth) in
  let seq = be.read base in
  if seq <> pos + 1 then None
  else begin
    let k = be.read (base + 1) in
    let a = be.read (base + 2) in
    let b = be.read (base + 3) in
    let c = be.read (base + 4) in
    let stamp = be.read (base + 5) in
    let ck = be.read (base + 6) in
    if ck <> cksum ~seq ~kind:k ~a ~b ~c ~stamp then None
    else
      match kind_of_code k with
      | None -> None
      | Some kind ->
        Some { e_pos = pos; e_kind = kind; e_a = a; e_b = b; e_c = c;
               e_stamp = stamp }
  end

(** Published records of one lane, oldest first. Walks back from the
    lane's position counter, including the salvage probe at the
    counter itself (a record fully stamped whose counter advance the
    kill pre-empted), truncating at the first record that fails
    validation — which absorbs the oldest slot when the kill landed
    mid-overwrite. *)
let dump_lane lane =
  let be = !backend in
  let hdr = be.read (w_lane_pos lane) in
  let top = match read_entry be lane hdr with Some _ -> hdr | None -> hdr - 1 in
  let lo = max 0 (hdr - depth + 1) in
  let rec collect pos acc =
    if pos < lo then acc
    else
      match read_entry be lane pos with
      | Some e -> collect (pos - 1) (e :: acc)
      | None -> acc
  in
  collect top []

(** A record at the lane head that claims publication (sequence word
    stamped) but fails validation — impossible under the shipping
    publish-last protocol, reachable with {!publish_last_enabled}
    off. *)
let torn_at_head lane =
  let be = !backend in
  let hdr = be.read (w_lane_pos lane) in
  let base = rec_off lane (hdr mod depth) in
  be.read base = hdr + 1 && read_entry be lane hdr = None

let torn_lanes () =
  List.filter torn_at_head (List.init lanes Fun.id)

(** Total records ever published per lane (the position counters). *)
let lane_counts () =
  let be = !backend in
  List.init lanes (fun l -> be.read (w_lane_pos l))

(* ---- death note -------------------------------------------------------- *)

let note_death () =
  if Control.on () then !backend.write w_victim (my_lane () + 1)

let victim_lane () = !backend.read w_victim - 1

let clear_victim () = !backend.write w_victim 0

(* ---- trace snapshots --------------------------------------------------- *)

type trace_snap = { t_seq : int; t_at : int; t_sev : int; t_msg : string }

let snapshot_trace ~seq ~at ~sev msg =
  if Control.on () then begin
    let be = !backend in
    let nxt = be.read w_trace_next in
    let base = trace_off (nxt mod trace_slots) in
    let len = min (String.length msg) (trace_text_words * 8) in
    be.write (base + 1) at;
    be.write (base + 2) sev;
    be.write (base + 3) len;
    for w = 0 to trace_text_words - 1 do
      let v = ref 0 in
      for j = 0 to 7 do
        let i = (w * 8) + j in
        if i < len then v := !v lor (Char.code msg.[i] lsl (8 * j))
      done;
      be.write (base + 4 + w) !v
    done;
    be.write base (seq + 1);
    be.write w_trace_next (nxt + 1)
  end

let dump_traces () =
  let be = !backend in
  let decode slot =
    let base = trace_off slot in
    let seq1 = be.read base in
    if seq1 = 0 then None
    else begin
      let len = max 0 (min (be.read (base + 3)) (trace_text_words * 8)) in
      let buf = Bytes.create len in
      for i = 0 to len - 1 do
        let v = be.read (base + 4 + (i / 8)) in
        Bytes.set buf i (Char.chr ((v lsr (8 * (i mod 8))) land 0xff))
      done;
      Some
        { t_seq = seq1 - 1; t_at = be.read (base + 1);
          t_sev = be.read (base + 2); t_msg = Bytes.to_string buf }
    end
  in
  List.init trace_slots decode
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> compare a.t_seq b.t_seq)

(* ---- introspection ----------------------------------------------------- *)

let settings_kvs () =
  [ ("flight_lanes", string_of_int lanes);
    ("flight_depth", string_of_int depth);
    ("flight_trace_slots", string_of_int trace_slots);
    ("flight_publish_last", if !publish_last_enabled then "1" else "0") ]
