(** Global telemetry switch and clock hook.

    Telemetry must be near-free when off: every emitter guards on
    {!on}, which is a single ref read, and records host-side only —
    no telemetry path ever charges virtual time, so the cost model
    (and the nullcall overhead gate) see the same simulated latencies
    with telemetry on or off.

    The clock hook exists because telemetry sits below every other
    library (it may depend only on [tls], so that pku/shm/ralloc/vm
    can all depend on it). Whoever owns a clock — the Vm while a
    simulation runs, a bench harness otherwise — installs it here;
    the default clock reads 0, which keeps emitters total outside any
    simulation. *)

let enabled =
  ref
    (match Sys.getenv_opt "TELEMETRY" with
     | Some ("0" | "off" | "false" | "no") -> false
     | _ -> true)

let on () = !enabled

let set_enabled b = enabled := b

let default_now () = 0

let now_hook : (unit -> int) ref = ref default_now

(** Current virtual time in ns, per the installed provider (0 when
    none is installed). *)
let now_ns () = !now_hook ()

(** Install a clock; returns the previous hook so the caller can
    restore it (the Vm does this in a [Fun.protect] finally). *)
let install_now now =
  let prev = !now_hook in
  now_hook := now;
  prev

let restore_now prev = now_hook := prev

(* The sync hook mirrors the clock hook: whoever owns a scheduler (the
   Vm) installs a thunk that performs a zero-cost sync point, so that
   deliberately tearable multi-word publishes (the flight recorder's
   info breadcrumbs) expose a kill window between their payload write
   and their commit stamp. The default is a no-op — outside a
   simulation there is nothing to yield to, and the publish is atomic
   with respect to any in-process observer anyway. *)

let default_sync () = ()

let sync_hook : (unit -> unit) ref = ref default_sync

(** A scheduler sync point that charges no virtual time (a no-op when
    no scheduler is installed). *)
let sync_point () = !sync_hook ()

let install_sync sync =
  let prev = !sync_hook in
  sync_hook := sync;
  prev

let restore_sync prev = sync_hook := prev
