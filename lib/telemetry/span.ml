(** Causal span trees — see span.mli for the contract.

    Everything here is host-side bookkeeping: no call advances virtual
    time, so the cost model (and the tracer-overhead CI gate) see the
    same simulated latencies with tracing on or off. Mutex-guarded
    critical sections never perform effects, so the module is safe
    under OS threads and the effects-based Vm alike. *)

type span = {
  sid : int;
  parent : int;
  phase : string;
  s_start : int;
  s_end : int;
  s_aborted : bool;
}

type trace = {
  trace_id : int;
  root_op : string;
  sampled : bool;
  t_aborted : bool;
  spans : span list;
  done_seq : int;
}

(* Open spans are mutable while the trace is live; they freeze into
   the immutable [span] at completion. *)
type open_span = {
  o_sid : int;
  o_parent : int;
  o_phase : string;
  o_start : int;
  mutable o_end : int;  (* -1 while open *)
  mutable o_aborted : bool;
}

type live = {
  l_id : int;
  l_op : string;
  l_sampled : bool;
  mutable l_spans : open_span list;  (* reverse start order *)
  mutable l_next : int;
  mutable l_stack : open_span list;  (* open spans, innermost first *)
  mutable l_closed : bool;
}

type t = No_span | Sp of live * open_span

let null = No_span

(* ---- Configuration --------------------------------------------------- *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let sample_every = ref (max 0 (int_env "TRACE_SAMPLE" 1))

let set_sampling n = sample_every := max 0 n

let sampling () = !sample_every

let slow_ns = ref (max 0 (int_env "TRACE_SLOW_NS" 0))

let set_slow_threshold_ns n = slow_ns := max 0 n

let slow_threshold_ns () = !slow_ns

(* ---- Per-thread state ------------------------------------------------- *)

let current : live option ref Tls.key = Tls.new_key (fun () -> ref None)

(* Completed traces: a bounded buffer per thread — the first
   [head_cap] traces, a ring of the last [tail_cap], and every
   over-threshold trace (the slow-op log, [slow_cap]-bounded). A
   global registry keeps buffers reachable after their thread exits,
   so post-run dumps see everything. One real mutex guards buffers,
   registry and accumulators; its critical sections are effect-free. *)
let head_cap = 8

let tail_cap = 32

let slow_cap = 64

type buffer = {
  mutable head : trace list;  (* newest first, first head_cap traces *)
  mutable head_n : int;
  tail : trace option array;
  mutable tail_at : int;
  mutable slow : trace list;  (* newest first *)
  mutable slow_n : int;
}

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let registry : buffer list ref = ref []

let buffer_key : buffer Tls.key =
  Tls.new_key (fun () ->
    let b =
      { head = []; head_n = 0; tail = Array.make tail_cap None; tail_at = 0;
        slow = []; slow_n = 0 }
    in
    with_lock (fun () -> registry := b :: !registry);
    b)

(* ---- Counters and accumulators ---------------------------------------- *)

let mint_counter = Atomic.make 0

let done_counter = Atomic.make 0

let phase_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 16

let e2e_hist = Histogram.create ()

(* ---- Building trees --------------------------------------------------- *)

(* An adopted [t_start] (a ring message's enqueue stamp, a batch's
   arrival time) was read off another thread's clock and can sit in
   this thread's future under the simulator's relaxed per-thread
   clocks; a span can never open later than the instant the owning
   thread opened it, so clamp — the common past-stamp case (queue-wait
   attribution) is unaffected. *)
let adopt_start t_start =
  let now = Control.now_ns () in
  match t_start with Some a -> min a now | None -> now

let start_in lv ?t_start ~phase () =
  let t0 = adopt_start t_start in
  let parent =
    match lv.l_stack with [] -> -1 | top :: _ -> top.o_sid
  in
  let sp =
    { o_sid = lv.l_next; o_parent = parent; o_phase = phase; o_start = t0;
      o_end = -1; o_aborted = false }
  in
  lv.l_next <- lv.l_next + 1;
  lv.l_spans <- sp :: lv.l_spans;
  lv.l_stack <- sp :: lv.l_stack;
  Sp (lv, sp)

let start ?t_start ~phase () =
  match !(Tls.get current) with
  | Some lv when lv.l_sampled && not lv.l_closed ->
    start_in lv ?t_start ~phase ()
  | _ -> No_span

let ingress ?t_start ~op () =
  if not (Control.on ()) || !sample_every = 0 then No_span
  else
    let r = Tls.get current in
    match !r with
    | Some lv when not lv.l_closed ->
      (* nested ingress: the inner op is a child phase of the outer
         trace (a library call under a server drain, say) *)
      if lv.l_sampled then start_in lv ?t_start ~phase:op () else No_span
    | _ ->
      let n = Atomic.fetch_and_add mint_counter 1 in
      let sampled = !sample_every = 1 || n mod !sample_every = 0 in
      let t0 = adopt_start t_start in
      let root =
        { o_sid = 0; o_parent = -1; o_phase = op; o_start = t0; o_end = -1;
          o_aborted = false }
      in
      let lv =
        { l_id = n; l_op = op; l_sampled = sampled; l_spans = [ root ];
          l_next = 1; l_stack = [ root ]; l_closed = false }
      in
      r := Some lv;
      Sp (lv, root)

let freeze (o : open_span) =
  { sid = o.o_sid; parent = o.o_parent; phase = o.o_phase;
    s_start = o.o_start; s_end = max o.o_end o.o_start;
    s_aborted = o.o_aborted }

let duration tr =
  match tr.spans with [] -> 0 | root :: _ -> root.s_end - root.s_start

(* Per-phase self time: each span's duration minus its direct
   children's. Integer arithmetic, so the sum over phases equals the
   root duration exactly. *)
let self_times tr =
  let n = List.length tr.spans in
  let child_sum = Array.make n 0 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 && sp.parent < n then
        child_sum.(sp.parent) <-
          child_sum.(sp.parent) + (sp.s_end - sp.s_start))
    tr.spans;
  let per_phase : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let self = sp.s_end - sp.s_start - child_sum.(sp.sid) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt per_phase sp.phase) in
      Hashtbl.replace per_phase sp.phase (prev + self))
    tr.spans;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_phase [])

let attribute tr =
  with_lock (fun () ->
    List.iter
      (fun (phase, self) ->
        let h =
          match Hashtbl.find_opt phase_tbl phase with
          | Some h -> h
          | None ->
            let h = Histogram.create () in
            Hashtbl.add phase_tbl phase h;
            h
        in
        Histogram.record h (max self 0))
      (self_times tr);
    Histogram.record e2e_hist (max (duration tr) 0))

let keep buf tr ~slow =
  if buf.head_n < head_cap then begin
    buf.head <- tr :: buf.head;
    buf.head_n <- buf.head_n + 1
  end
  else begin
    buf.tail.(buf.tail_at mod tail_cap) <- Some tr;
    buf.tail_at <- buf.tail_at + 1
  end;
  if slow then begin
    buf.slow <- tr :: buf.slow;
    buf.slow_n <- buf.slow_n + 1;
    if buf.slow_n > slow_cap then begin
      (* drop the oldest kept slow trace *)
      buf.slow <- List.filteri (fun i _ -> i < slow_cap) buf.slow;
      buf.slow_n <- slow_cap
    end
  end

let complete lv ~aborted =
  if not lv.l_closed then begin
    lv.l_closed <- true;
    let r = Tls.get current in
    (match !r with Some lv' when lv' == lv -> r := None | _ -> ());
    let spans =
      List.rev_map freeze lv.l_spans
      |> List.sort (fun a b -> compare a.sid b.sid)
    in
    let tr =
      { trace_id = lv.l_id; root_op = lv.l_op; sampled = lv.l_sampled;
        t_aborted = aborted; spans;
        done_seq = Atomic.fetch_and_add done_counter 1 }
    in
    if (not aborted) && lv.l_sampled then attribute tr;
    let slow = !slow_ns > 0 && duration tr >= !slow_ns in
    (* Unsampled traces exist only to detect slowness: buffer them
       when over threshold (or flushed aborted), drop them otherwise. *)
    if lv.l_sampled || slow || aborted then begin
      let buf = Tls.get buffer_key in
      with_lock (fun () -> keep buf tr ~slow)
    end;
    if slow && Trace.would_log Trace.Warn then
      Trace.emit ~sev:Trace.Warn ~subsys:"span"
        (Printf.sprintf "slow trace #%d %s: %d ns (threshold %d)" tr.trace_id
           tr.root_op (duration tr) !slow_ns);
    if aborted && Trace.would_log Trace.Warn then
      Trace.emit ~sev:Trace.Warn ~subsys:"span"
        (Printf.sprintf "trace #%d %s aborted: %d span(s) flushed" tr.trace_id
           tr.root_op (List.length tr.spans))
  end

let close_open lv at =
  List.iter
    (fun o ->
      if o.o_end < 0 then begin
        o.o_end <- max at o.o_start;
        o.o_aborted <- true
      end)
    lv.l_spans;
  lv.l_stack <- []

let finish = function
  | No_span -> ()
  | Sp (lv, sp) ->
    if (not lv.l_closed) && sp.o_end < 0 then begin
      sp.o_end <- Control.now_ns ();
      lv.l_stack <- List.filter (fun o -> o != sp) lv.l_stack;
      if sp.o_parent = -1 then begin
        (* robustness: a child left open under a finishing root is a
           bug in the instrumentation — flag it rather than hang *)
        close_open lv sp.o_end;
        complete lv ~aborted:false
      end
    end

let drop = function
  | No_span -> ()
  | Sp (lv, sp) ->
    if (not lv.l_closed) && sp.o_end < 0 then begin
      sp.o_end <- Control.now_ns ();
      sp.o_aborted <- true;
      lv.l_stack <- List.filter (fun o -> o != sp) lv.l_stack;
      if sp.o_parent = -1 then begin
        (* discard the whole trace: no attribution, no buffers *)
        lv.l_closed <- true;
        let r = Tls.get current in
        match !r with Some lv' when lv' == lv -> r := None | _ -> ()
      end
    end

let around ~phase f =
  let sp = start ~phase () in
  match f () with
  | v ->
    finish sp;
    v
  | exception e ->
    finish sp;
    raise e

let flush_aborted () =
  match !(Tls.get current) with
  | None -> ()
  | Some lv ->
    if not lv.l_closed then begin
      close_open lv (Control.now_ns ());
      complete lv ~aborted:true
    end

let active () =
  match !(Tls.get current) with
  | Some lv -> not lv.l_closed
  | None -> false

(* ---- Completed traces ------------------------------------------------- *)

let all_of buf =
  List.rev_append buf.head
    (Array.to_list buf.tail |> List.filter_map Fun.id)

let traces ?n () =
  let all =
    with_lock (fun () ->
      List.concat_map (fun b -> all_of b @ b.slow) !registry)
  in
  let all =
    List.sort_uniq (fun a b -> compare a.done_seq b.done_seq) all
  in
  match n with
  | None -> all
  | Some n when n >= List.length all -> all
  | Some n ->
    let drop = List.length all - n in
    List.filteri (fun i _ -> i >= drop) all

let slow_traces () =
  with_lock (fun () -> List.concat_map (fun b -> b.slow) !registry)
  |> List.sort (fun a b -> compare a.done_seq b.done_seq)

(* ---- Well-formedness -------------------------------------------------- *)

let well_formed tr =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let arr = Array.of_list tr.spans in
  let n = Array.length arr in
  if n = 0 then err "trace #%d has no spans" tr.trace_id
  else if arr.(0).sid <> 0 || arr.(0).parent <> -1 then
    err "trace #%d: span 0 is not a root" tr.trace_id
  else begin
    let bad = ref None in
    let check c msg = if !bad = None && not c then bad := Some msg in
    Array.iteri
      (fun i sp ->
        check (sp.sid = i) (Printf.sprintf "span ids not dense at %d" i);
        if i > 0 then begin
          check
            (sp.parent >= 0 && sp.parent < i)
            (Printf.sprintf "span %d: parent %d does not precede it" i
               sp.parent);
          if sp.parent >= 0 && sp.parent < i then begin
            let p = arr.(sp.parent) in
            check (p.s_start <= sp.s_start)
              (Printf.sprintf "span %d opens before its parent" i);
            check
              (sp.s_aborted || p.s_aborted || sp.s_end <= p.s_end)
              (Printf.sprintf "span %d outlives its parent" i)
          end
        end;
        check
          (sp.s_aborted || sp.s_end >= sp.s_start)
          (Printf.sprintf "span %d never finished" i);
        (* a crossing is a gate into the library: it can contain store
           work but never hang below it *)
        if sp.phase = "crossing" then begin
          let rec ancestor_store p =
            p >= 0
            && (arr.(p).phase = "store" || ancestor_store arr.(p).parent)
          in
          check
            (not (ancestor_store sp.parent))
            (Printf.sprintf "span %d: crossing nested inside store" i)
        end)
      arr;
    match !bad with
    | Some m -> err "trace #%d: %s" tr.trace_id m
    | None -> Ok ()
  end

(* ---- Rendering -------------------------------------------------------- *)

let render_tree tr =
  let b = Buffer.create 256 in
  let n = List.length tr.spans in
  let child_sum = Array.make (max n 1) 0 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 && sp.parent < n then
        child_sum.(sp.parent) <-
          child_sum.(sp.parent) + (sp.s_end - sp.s_start))
    tr.spans;
  let depth = Array.make (max n 1) 0 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 && sp.parent < n then
        depth.(sp.sid) <- depth.(sp.parent) + 1)
    tr.spans;
  Buffer.add_string b
    (Printf.sprintf "trace #%d %s: %d ns%s%s\n" tr.trace_id tr.root_op
       (duration tr)
       (if tr.sampled then "" else " [unsampled]")
       (if tr.t_aborted then " [ABORTED]" else ""));
  List.iter
    (fun sp ->
      let dur = sp.s_end - sp.s_start in
      Buffer.add_string b
        (Printf.sprintf "%s%s @%d +%d ns (self %d ns)%s\n"
           (String.make (2 * (depth.(sp.sid) + 1)) ' ')
           sp.phase sp.s_start dur
           (dur - child_sum.(sp.sid))
           (if sp.s_aborted then " [aborted]" else "")))
    tr.spans;
  Buffer.contents b

(* ---- Phase attribution ------------------------------------------------ *)

type phase_stats = {
  p_count : int;
  p_self_ns : int;
  p_p50_ns : int;
  p_p99_ns : int;
}

let stats_of h =
  { p_count = Histogram.count h; p_self_ns = Histogram.sum h;
    p_p50_ns = Histogram.percentile h 50.0;
    p_p99_ns = Histogram.percentile h 99.0 }

let phase_report () =
  with_lock (fun () ->
    Hashtbl.fold (fun k h acc -> (k, stats_of h) :: acc) phase_tbl [])
  |> List.sort compare

let e2e_report () = with_lock (fun () -> stats_of e2e_hist)

let phase_kvs () =
  let rows (name, s) =
    [ (Printf.sprintf "phase:%s:count" name, string_of_int s.p_count);
      (Printf.sprintf "phase:%s:self_ns" name, string_of_int s.p_self_ns);
      (Printf.sprintf "phase:%s:p50_ns" name, string_of_int s.p_p50_ns);
      (Printf.sprintf "phase:%s:p99_ns" name, string_of_int s.p_p99_ns) ]
  in
  let e = e2e_report () in
  List.concat_map rows (phase_report ())
  @ [ ("e2e:count", string_of_int e.p_count);
      ("e2e:total_ns", string_of_int e.p_self_ns);
      ("e2e:p50_ns", string_of_int e.p_p50_ns);
      ("e2e:p99_ns", string_of_int e.p_p99_ns) ]

let phases_json () =
  let field (name, s) =
    Printf.sprintf
      "\"%s\":{\"count\":%d,\"self_ns\":%d,\"p50_ns\":%d,\"p99_ns\":%d}" name
      s.p_count s.p_self_ns s.p_p50_ns s.p_p99_ns
  in
  let e = e2e_report () in
  Printf.sprintf
    "{\"e2e\":{\"count\":%d,\"total_ns\":%d,\"p50_ns\":%d,\"p99_ns\":%d},\"phases\":{%s}}"
    e.p_count e.p_self_ns e.p_p50_ns e.p_p99_ns
    (String.concat "," (List.map field (phase_report ())))

let reset_phases () =
  with_lock (fun () ->
    Hashtbl.reset phase_tbl;
    Histogram.reset e2e_hist)

let reset () =
  reset_phases ();
  (* clear buffers in place: live threads keep their TLS handle *)
  with_lock (fun () ->
    List.iter
      (fun b ->
        b.head <- [];
        b.head_n <- 0;
        Array.fill b.tail 0 tail_cap None;
        b.tail_at <- 0;
        b.slow <- [];
        b.slow_n <- 0)
      !registry);
  Atomic.set mint_counter 0;
  Atomic.set done_counter 0
