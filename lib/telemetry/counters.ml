(** Sharded event counters with a pluggable cell store.

    Counts are striped across {!stripes} cells per counter: each
    simulated (or OS) thread is assigned a stripe round-robin on first
    use, so concurrent bumps from different threads land in different
    cells and reads aggregate across stripes. This is the same
    scattered-statistics idea the store uses for its own counters
    (paper §4.2): writes stay contention-free, reads pay the loop.

    The cell store is pluggable because where the cells live depends
    on the deployment: the default backend is a process-local atomic
    array (benchmarks, unit tests, the socket baseline); the protected
    -library store installs a backend whose cells are 64-bit words in
    the shared Ralloc heap, anchored under a persistent root, so
    counters survive client crashes and bookkeeper restarts and are
    {e sifted} — not reset — by recovery (see DESIGN.md
    "Telemetry"). *)

let stripes = 16

(* Counter identifiers. Fixed small ints so a backend can be a flat
   [stripes * count] array of 64-bit cells; [names] must line up. *)
module Id = struct
  (* Store-operation mirrors (bumped from [Store.stat_add]). *)
  let get_hits = 0
  let get_misses = 1
  let cmd_get = 2
  let cmd_set = 3
  let delete_hits = 4
  let delete_misses = 5
  let incr_hits = 6
  let incr_misses = 7
  let evictions = 8
  let expired_unfetched = 9
  let cas_hits = 10
  let cas_badval = 11
  let cas_misses = 12
  let touch_hits = 13
  let touch_misses = 14
  let total_items = 15

  (* Protection-domain crossings (Hodor trampoline). *)
  let hodor_enter = 16
  let hodor_exit = 17
  let hodor_grace_hits = 18
  let hodor_kill_in_call = 19
  let hodor_poisoned = 20

  (* PKU events. *)
  let pkru_writes = 21
  let pku_faults = 22

  (* Allocator traffic (Ralloc). *)
  let alloc_calls = 23
  let alloc_bytes = 24
  let free_calls = 25

  (* Recovery. *)
  let recoveries = 26

  (* Batch plane: protected calls that carried a whole op batch, and
     the ops they carried. crossings/op = hodor_enter / ops served;
     with every op going through [Trampoline.call_batch],
     hodor_batch_ops / hodor_batch_calls is the mean batch size. *)
  let hodor_batch_calls = 27
  let hodor_batch_ops = 28

  (* Optimistic (seqlock) read path: gets that retired without the
     stripe lock, snapshot attempts that had to retry, and gets that
     gave up and took the locked path. *)
  let opt_hits = 29
  let opt_retries = 30
  let opt_fallbacks = 31

  (* Boundary hardening (the red-team fixes): trampoline gate-check
     violations, seccomp-style syscall filter denials, and binaries
     the loader's admission scan refused. *)
  let gate_violations = 32
  let seccomp_denials = 33
  let loader_rejects = 34

  (* Virtual pkeys (libmpk-style slot table): binds served, binds that
     missed the slot table (and had to re-tag lazily), and vkeys
     evicted from a hardware slot to the quarantine key. *)
  let vpkey_binds = 35
  let vpkey_slot_misses = 36
  let vpkey_evictions = 37

  (* Shared-ring transport: submissions enqueued by clients, doorbell
     syscalls actually paid (the amortization win is submits far above
     doorbells), drains fired by the adaptive window, the ops those
     drains carried (ops/drain = ring_drain_ops / ring_drains),
     completions published, producer stalls on a full ring, and
     connections bounced for forged slot headers. *)
  let ring_submits = 38
  let ring_doorbells = 39
  let ring_drains = 40
  let ring_drain_ops = 41
  let ring_completions = 42
  let ring_full_waits = 43
  let ring_kills = 44

  (* Per-pkey fault counts occupy the tail: [pku_fault_pkey + k] for
     pkey k in [0, pkeys). *)
  let pku_fault_pkey = 45

  let pkeys = 16

  let count = pku_fault_pkey + pkeys
end

let names =
  let a = Array.make Id.count "" in
  List.iter
    (fun (i, n) -> a.(i) <- n)
    [ (Id.get_hits, "get_hits"); (Id.get_misses, "get_misses");
      (Id.cmd_get, "cmd_get"); (Id.cmd_set, "cmd_set");
      (Id.delete_hits, "delete_hits"); (Id.delete_misses, "delete_misses");
      (Id.incr_hits, "incr_hits"); (Id.incr_misses, "incr_misses");
      (Id.evictions, "evictions");
      (Id.expired_unfetched, "expired_unfetched");
      (Id.cas_hits, "cas_hits"); (Id.cas_badval, "cas_badval");
      (Id.cas_misses, "cas_misses"); (Id.touch_hits, "touch_hits");
      (Id.touch_misses, "touch_misses"); (Id.total_items, "total_items");
      (Id.hodor_enter, "hodor_enter"); (Id.hodor_exit, "hodor_exit");
      (Id.hodor_grace_hits, "hodor_grace_hits");
      (Id.hodor_kill_in_call, "hodor_kill_in_call");
      (Id.hodor_poisoned, "hodor_poisoned");
      (Id.pkru_writes, "pkru_writes"); (Id.pku_faults, "pku_faults");
      (Id.alloc_calls, "alloc_calls"); (Id.alloc_bytes, "alloc_bytes");
      (Id.free_calls, "free_calls"); (Id.recoveries, "recoveries");
      (Id.hodor_batch_calls, "hodor_batch_calls");
      (Id.hodor_batch_ops, "hodor_batch_ops");
      (Id.opt_hits, "opt_hits"); (Id.opt_retries, "opt_retries");
      (Id.opt_fallbacks, "opt_fallbacks");
      (Id.gate_violations, "gate_violations");
      (Id.seccomp_denials, "seccomp_denials");
      (Id.loader_rejects, "loader_rejects");
      (Id.vpkey_binds, "vpkey_binds");
      (Id.vpkey_slot_misses, "vpkey_slot_misses");
      (Id.vpkey_evictions, "vpkey_evictions");
      (Id.ring_submits, "ring_submits");
      (Id.ring_doorbells, "ring_doorbells");
      (Id.ring_drains, "ring_drains");
      (Id.ring_drain_ops, "ring_drain_ops");
      (Id.ring_completions, "ring_completions");
      (Id.ring_full_waits, "ring_full_waits");
      (Id.ring_kills, "ring_kills") ];
  for k = 0 to Id.pkeys - 1 do
    a.(Id.pku_fault_pkey + k) <- Printf.sprintf "pku_fault_pkey:%d" k
  done;
  a

let name id = names.(id)

let cells = stripes * Id.count

(** A cell store: [add cell delta] / [read cell] / [zero ()] over
    [cells] 64-bit slots. Implementations must be safe to call from
    any thread; they are never called with telemetry off. *)
type backend = {
  add : int -> int -> unit;
  read : int -> int;
  zero : unit -> unit;
}

let local_backend () =
  let a = Array.init cells (fun _ -> Atomic.make 0) in
  { add = (fun c d -> ignore (Atomic.fetch_and_add a.(c) d));
    read = (fun c -> Atomic.get a.(c));
    zero = (fun () -> Array.iter (fun c -> Atomic.set c 0) a) }

let backend = ref (local_backend ())

let install_backend b = backend := b

let reset_backend () = backend := local_backend ()

(* Stripe assignment: round-robin at first use, held in (pluggable)
   TLS so each simulated thread under the Vm gets its own stripe. *)
let next_stripe = Atomic.make 0

let stripe_key = Tls.new_key (fun () -> ref (-1))

let my_stripe () =
  let r = Tls.get stripe_key in
  if !r < 0 then r := Atomic.fetch_and_add next_stripe 1 mod stripes;
  !r

let add ?(n = 1) id =
  if Control.on () then (!backend).add ((my_stripe () * Id.count) + id) n

let incr id = add id

(* Reads don't gate on [Control.on]: a snapshot taken after telemetry
   is switched off should still see the counts recorded while on. *)
let read id =
  let b = !backend in
  let s = ref 0 in
  for stripe = 0 to stripes - 1 do
    s := !s + b.read ((stripe * Id.count) + id)
  done;
  !s

let reset () = (!backend).zero ()

let pkey_fault k =
  if k >= 0 && k < Id.pkeys then add (Id.pku_fault_pkey + k)

(* Boundary/allocator counters — the ones merged into the protocol's
   plain `stats` reply. Store-op mirrors are excluded there because
   the store's own (authoritative, recovered) counters already report
   those keys; the mirrors appear in [all_kvs]. *)
let boundary_ids =
  [ Id.hodor_enter; Id.hodor_exit; Id.hodor_grace_hits;
    Id.hodor_kill_in_call; Id.hodor_poisoned; Id.pkru_writes;
    Id.pku_faults; Id.alloc_calls; Id.alloc_bytes; Id.free_calls;
    Id.recoveries; Id.hodor_batch_calls; Id.hodor_batch_ops;
    Id.vpkey_binds; Id.vpkey_slot_misses; Id.vpkey_evictions ]

let kv id = (name id, string_of_int (read id))

let boundary_kvs () =
  List.map kv boundary_ids
  @ List.filter_map
      (fun k ->
        let id = Id.pku_fault_pkey + k in
        let v = read id in
        if v = 0 then None else Some (name id, string_of_int v))
      (List.init Id.pkeys Fun.id)

(* Seqlock read-path counters — merged into `stats contention`, next
   to the stripe-wait profile they explain. *)
let optimistic_kvs () =
  List.map kv [ Id.opt_hits; Id.opt_retries; Id.opt_fallbacks ]

(* Shared-ring transport counters — the `stats rings` payload, next to
   the live window/occupancy figures the ring server appends. *)
let ring_kvs () =
  List.map kv
    [ Id.ring_submits; Id.ring_doorbells; Id.ring_drains;
      Id.ring_drain_ops; Id.ring_completions; Id.ring_full_waits;
      Id.ring_kills ]

let all_kvs () =
  List.filter_map
    (fun id ->
      let v = read id in
      if id >= Id.pku_fault_pkey && v = 0 then None
      else Some (name id, string_of_int v))
    (List.init Id.count Fun.id)
