(** Causal span trees: where inside one request the time goes.

    A {e trace} is minted at op ingress (a protected-library call, a
    socket-server batch drain) and follows the request through every
    layer — trampoline crossing, stripe-lock wait/hold, store body,
    allocator — as a tree of {e spans}, one per phase. Completed traces
    land in bounded per-thread buffers (head + tail + always-keep-slow
    sampling) and are folded into a per-phase latency breakdown whose
    {e self} times sum exactly to end-to-end latency, in integer
    virtual nanoseconds.

    Determinism contract: timestamps come from {!Control.now_ns} (the
    Vm installs its virtual clock there), trace ids from a global
    counter bumped in scheduling order — a seeded [Vm] run yields the
    same traces every time. Nothing here advances virtual time, so the
    simulated latencies are identical with tracing on, off, or at any
    sampling rate.

    Sampling rules: the 1-in-[n] head-sampling decision is taken once
    at ingress ([TRACE_SAMPLE], default 1 = every trace); an unsampled
    trace still carries a root span, so a slow op is detected and kept
    (root-only) regardless of the sampling draw. *)

type t
(** A span handle. Operations on {!null} are no-ops, so unsampled and
    trace-less paths cost a TLS read and a compare. *)

val null : t

(* ---- Configuration -------------------------------------------------- *)

val set_sampling : int -> unit
(** Head-sample one trace in [n]. [1] samples everything, [0] disables
    minting entirely. Initialised from [TRACE_SAMPLE]. *)

val sampling : unit -> int

val set_slow_threshold_ns : int -> unit
(** Traces with end-to-end duration >= the threshold are always kept
    (the slow-op log) and echoed into the trace ring. [0] disables.
    Initialised from [TRACE_SLOW_NS]. *)

val slow_threshold_ns : unit -> int

(* ---- Building trees -------------------------------------------------- *)

val ingress : ?t_start:int -> op:string -> unit -> t
(** Mint a trace rooted at phase [op] on this thread and return the
    root span. If a trace is already active here (a nested ingress —
    e.g. a library call under a server drain), degrades to {!start}.
    [t_start] backdates the root (a server uses the socket enqueue
    stamp so queueing is inside the trace). *)

val start : ?t_start:int -> phase:string -> unit -> t
(** Open a child of the innermost open span of this thread's active
    trace; {!null} when no sampled trace is active. *)

val finish : t -> unit
(** Close the span. Closing the root completes the trace: attribution
    runs and the trace lands in this thread's completed buffer. *)

val drop : t -> unit
(** Abandon: a dropped root discards its trace without attribution or
    buffering (parse garbage, error paths); a dropped child is closed
    but flagged aborted. *)

val around : phase:string -> (unit -> 'a) -> 'a
(** [around ~phase f] = start, run [f], finish (exception-safe). *)

val flush_aborted : unit -> unit
(** Kill-site hook (the Vm crash injector calls this in the dying
    thread's context): every open span of the thread's in-flight trace
    is closed as [aborted] and the trace is flushed into the buffers
    and echoed to the trace ring, so a post-mortem sees what the dead
    thread was inside. *)

val active : unit -> bool
(** Whether a trace is in flight on the calling thread. *)

(* ---- Completed traces ------------------------------------------------ *)

type span = {
  sid : int;  (** ids are preorder: a parent opens before its children *)
  parent : int;  (** parent sid; -1 for the root *)
  phase : string;
  s_start : int;
  s_end : int;
  s_aborted : bool;
}

type trace = {
  trace_id : int;
  root_op : string;
  sampled : bool;
  t_aborted : bool;
  spans : span list;  (** in sid order; [spans.(0)] is the root *)
  done_seq : int;  (** global completion order, for dump sorting *)
}

val traces : ?n:int -> unit -> trace list
(** Completed traces across all thread buffers, oldest first,
    deduplicated; [n] keeps the newest n. *)

val slow_traces : unit -> trace list
(** The slow-op log: every kept over-threshold trace, oldest first. *)

val duration : trace -> int

val self_times : trace -> (string * int) list
(** Per-phase self time of one trace: each span's duration minus its
    direct children's, summed by phase. The values sum exactly to
    {!duration}. *)

val well_formed : trace -> (unit, string) result
(** Structural invariants: parent opens before child and ids are
    preorder; every span closed or flagged aborted; children nest
    within their parent's window (aborted spans exempt); a [crossing]
    span never sits below a [store] span. *)

val render_tree : trace -> string
(** Multi-line pretty-printed tree (the [kv_shell trace-tree] view). *)

(* ---- Phase attribution ----------------------------------------------- *)

type phase_stats = {
  p_count : int;  (** spans folded in *)
  p_self_ns : int;  (** total self time *)
  p_p50_ns : int;
  p_p99_ns : int;
}

val phase_report : unit -> (string * phase_stats) list
(** Per-phase breakdown over every completed, non-aborted trace since
    the last reset, sorted by phase name. The [p_self_ns] columns sum
    exactly to the end-to-end total of {!e2e_report}. *)

val e2e_report : unit -> phase_stats
(** End-to-end (root duration) distribution over the same traces. *)

val phase_kvs : unit -> (string * string) list
(** The [stats phases] payload: one [phase:<name>:*] row group per
    phase plus the [e2e:*] rows. *)

val phases_json : unit -> string
(** The same breakdown as one line of JSON, for workflow artifacts. *)

val reset_phases : unit -> unit
(** Clear the phase/e2e accumulators (the [stats reset] contract);
    completed-trace buffers and ids survive. *)

val reset : unit -> unit
(** Full reset: accumulators, buffers, slow log, trace ids, sampling
    draw position. Tests call this for order independence. *)
