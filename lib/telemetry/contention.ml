(** Per-stripe lock-contention profiler.

    The store reports, for every item-lock stripe acquisition, how
    long the thread {e waited} for the stripe and how long it then
    {e held} it (virtual nanoseconds, measured by the caller around
    the substrate lock). Waits land in per-stripe histograms; the
    report ranks stripes by total wait — the top-K contended stripes
    are where lock splitting or batching would pay.

    Host-side only: recording charges no virtual time, and the mutex
    guards effect-free critical sections (safe under the Vm). *)

type cell = { wait_h : Histogram.t; hold_h : Histogram.t }

let lock = Mutex.create ()

let tbl : (int, cell) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~stripe ~wait_ns ~hold_ns =
  if Control.on () then
    with_lock (fun () ->
      let c =
        match Hashtbl.find_opt tbl stripe with
        | Some c -> c
        | None ->
          let c = { wait_h = Histogram.create (); hold_h = Histogram.create () } in
          Hashtbl.add tbl stripe c;
          c
      in
      Histogram.record c.wait_h (max wait_ns 0);
      Histogram.record c.hold_h (max hold_ns 0))

type stripe_stats = {
  c_stripe : int;
  c_acquisitions : int;
  c_wait_total_ns : int;
  c_wait_p99_ns : int;
  c_hold_p99_ns : int;
}

(* Stripes by total wait, descending; ties broken by stripe index so
   the report is deterministic under seeded runs. *)
let report ?(k = 8) () =
  with_lock (fun () ->
    Hashtbl.fold
      (fun stripe c acc ->
        { c_stripe = stripe; c_acquisitions = Histogram.count c.wait_h;
          c_wait_total_ns = Histogram.sum c.wait_h;
          c_wait_p99_ns = Histogram.percentile c.wait_h 99.0;
          c_hold_p99_ns = Histogram.percentile c.hold_h 99.0 }
        :: acc)
      tbl [])
  |> List.sort (fun a b ->
       match compare b.c_wait_total_ns a.c_wait_total_ns with
       | 0 -> compare a.c_stripe b.c_stripe
       | c -> c)
  |> List.filteri (fun i _ -> i < k)

(** (stripes tracked, total acquisitions, total wait ns). *)
let totals () =
  with_lock (fun () ->
    Hashtbl.fold
      (fun _ c (t, n, w) ->
        (t + 1, n + Histogram.count c.wait_h, w + Histogram.sum c.wait_h))
      tbl (0, 0, 0))

(** The [stats contention] payload: a summary plus the top-K rows. *)
let kvs ?k () =
  let tracked, n, wait = totals () in
  let top = report ?k () in
  [ ("contention:stripes_tracked", string_of_int tracked);
    ("contention:acquisitions", string_of_int n);
    ("contention:wait_total_ns", string_of_int wait) ]
  @ List.concat
      (List.mapi
         (fun i s ->
           let p = Printf.sprintf "contention:top%d" i in
           [ (p ^ ":stripe", string_of_int s.c_stripe);
             (p ^ ":acquisitions", string_of_int s.c_acquisitions);
             (p ^ ":wait_total_ns", string_of_int s.c_wait_total_ns);
             (p ^ ":wait_p99_ns", string_of_int s.c_wait_p99_ns);
             (p ^ ":hold_p99_ns", string_of_int s.c_hold_p99_ns) ])
         top)

let reset () = with_lock (fun () -> Hashtbl.reset tbl)
