(** Post-mortem forensics over the flight recorder.

    After a crash and {!Hodor.Library.recover}, the breadcrumbs that
    survived in the shared heap ({!Flight}) are the only record of
    what the library was doing when it died. This module turns them
    into a story: a per-lane timeline of the final events, a death
    classification (mid-crossing / holding-stripes / mid-ring-drain /
    idle), the victim op, tenant, stripes and ring window, plus the
    caller's cross-checks of the forensic story against what recovery
    actually repaired (stripe seqlocks released, rings quiesced, heap
    invariants holding).

    The analyzer is deliberately pure over the recorder's dump — it
    can run equally against a live store ([kv_shell doctor] on a
    healthy image reports "idle, no recorded death") or a freshly
    recovered one. *)

type classification = Idle | Mid_crossing | Holding_stripes | Mid_ring_drain

let class_name = function
  | Idle -> "idle"
  | Mid_crossing -> "mid_crossing"
  | Holding_stripes -> "holding_stripes"
  | Mid_ring_drain -> "mid_ring_drain"

(* The same precedence the ground-truth capture in the crash sweep
   uses: holding a stripe implies being inside a crossing, and a ring
   drain wraps a crossing that may take stripes, so the more specific
   (and more dangerous-to-recover) state wins. *)
let class_rank = function
  | Holding_stripes -> 3
  | Mid_ring_drain -> 2
  | Mid_crossing -> 1
  | Idle -> 0

(* ---- op interning ------------------------------------------------------ *)

(* Fixed table matching [Mc_protocol.Types.command_name]; breadcrumbs
   carry the index so a record stays one machine word per field. *)
let op_names =
  [| "?"; "get"; "gets"; "set"; "add"; "replace"; "append"; "prepend"; "cas";
     "delete"; "incr"; "decr"; "touch"; "stats"; "version"; "flush_all";
     "quit"; "noop"; "invalid" |]

let op_code name =
  let rec find i =
    if i >= Array.length op_names then 0
    else if op_names.(i) = name then i
    else find (i + 1)
  in
  find 1

let op_name code =
  if code > 0 && code < Array.length op_names then op_names.(code) else "?"

(* ---- per-lane state reconstruction ------------------------------------- *)

type lane_state = {
  ls_lane : int;
  ls_depth : int;  (** trampoline crossing depth at death *)
  ls_held : int;  (** stripes held at death *)
  ls_stripes : int list;  (** individually known held stripes *)
  ls_group : (int * int) option;  (** (first stripe, count) of open group *)
  ls_drain : bool;
  ls_conn : int;
  ls_msgs : int;
  ls_op : int;
  ls_tenant : int;
  ls_last_stamp : int;
  ls_entries : Flight.entry list;
}

let idle_lane lane =
  { ls_lane = lane; ls_depth = 0; ls_held = 0; ls_stripes = []; ls_group = None;
    ls_drain = false; ls_conn = -1; ls_msgs = 0; ls_op = 0; ls_tenant = -1;
    ls_last_stamp = 0; ls_entries = [] }

(* Fold a lane's surviving window oldest-to-newest. State records
   carry the post-transition value in [e_a], so the latest record of
   each family is authoritative even when the window wrapped past the
   matching begin/acquire. *)
let lane_state lane =
  let entries = Flight.dump_lane lane in
  List.fold_left
    (fun ls (e : Flight.entry) ->
      let ls = { ls with ls_last_stamp = max ls.ls_last_stamp e.e_stamp;
                         ls_entries = ls.ls_entries } in
      match e.e_kind with
      | Flight.Cross_enter | Flight.Cross_exit -> { ls with ls_depth = e.e_a }
      | Flight.Stripe_acquire ->
        { ls with ls_held = e.e_a; ls_stripes = e.e_b :: ls.ls_stripes }
      | Flight.Stripe_release ->
        { ls with ls_held = e.e_a;
                  ls_stripes = List.filter (fun s -> s <> e.e_b) ls.ls_stripes }
      | Flight.Group_acquire ->
        { ls with ls_held = e.e_a; ls_group = Some (e.e_b, e.e_c) }
      | Flight.Group_release -> { ls with ls_held = e.e_a; ls_group = None }
      | Flight.Ring_drain_begin ->
        { ls with ls_drain = true; ls_conn = e.e_b; ls_msgs = e.e_c }
      | Flight.Ring_drain_end ->
        { ls with ls_drain = false; ls_conn = e.e_b; ls_msgs = e.e_c }
      | Flight.Op_dispatch ->
        { ls with ls_op = e.e_a;
                  ls_tenant = (if e.e_b >= 0 then e.e_b else ls.ls_tenant);
                  ls_conn = (if e.e_c >= 0 then e.e_c else ls.ls_conn) }
      | Flight.Tenant_scope -> { ls with ls_tenant = e.e_a }
      | Flight.Tenant_unscope -> { ls with ls_tenant = -1 }
      | Flight.Alloc_large | Flight.Free_large -> ls)
    { (idle_lane lane) with ls_entries = entries }
    entries

let classify_lane ls =
  if ls.ls_held > 0 then Holding_stripes
  else if ls.ls_drain then Mid_ring_drain
  else if ls.ls_depth > 0 then Mid_crossing
  else Idle

(* ---- report ------------------------------------------------------------ *)

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type report = {
  f_class : classification;
  f_victim : int;  (** guilty lane, -1 when nothing died *)
  f_noted : bool;  (** victim identified by death note vs heuristic *)
  f_op : int;
  f_tenant : int;
  f_depth : int;
  f_held : int;
  f_stripes : int list;
  f_group : (int * int) option;
  f_conn : int;
  f_msgs : int;
  f_torn : int list;  (** lanes with torn head records — must be [] *)
  f_lanes : lane_state list;  (** every lane with surviving records *)
  f_checks : check list;
  f_heap : (string * string) list;
  f_traces : Flight.trace_snap list;
}

let analyze ?(heap = []) ?(checks = []) () =
  let states = List.init Flight.lanes lane_state in
  let noted = Flight.victim_lane () in
  let victim =
    if noted >= 0 && noted < Flight.lanes then Some (List.nth states noted)
    else
      (* No death note (e.g. a hard kill outside the simulator):
         fall back to the guiltiest lane — highest classification
         rank, latest surviving stamp breaking ties. *)
      List.fold_left
        (fun best ls ->
          let r = class_rank (classify_lane ls) in
          match best with
          | Some b
            when class_rank (classify_lane b) > r
                 || (class_rank (classify_lane b) = r
                     && b.ls_last_stamp >= ls.ls_last_stamp) ->
            best
          | _ -> if r > 0 then Some ls else best)
        None states
  in
  let v = match victim with Some ls -> ls | None -> idle_lane (-1) in
  { f_class = (match victim with Some ls -> classify_lane ls | None -> Idle);
    f_victim = v.ls_lane;
    f_noted = noted >= 0;
    f_op = v.ls_op;
    f_tenant = v.ls_tenant;
    f_depth = v.ls_depth;
    f_held = v.ls_held;
    f_stripes = List.sort_uniq compare v.ls_stripes;
    f_group = v.ls_group;
    f_conn = v.ls_conn;
    f_msgs = v.ls_msgs;
    f_torn = Flight.torn_lanes ();
    f_lanes = List.filter (fun ls -> ls.ls_entries <> []) states;
    f_checks = checks;
    f_heap = heap;
    f_traces = Flight.dump_traces () }

(** Structural soundness: the publish-last protocol held (no torn
    head records), a non-idle classification names its lane, and
    every repaired-state cross-check agrees with the story. *)
let well_formed r =
  r.f_torn = []
  && (r.f_class = Idle || r.f_victim >= 0)
  && List.for_all (fun c -> c.ck_ok) r.f_checks

(* ---- rendering --------------------------------------------------------- *)

let verdict r =
  match r.f_class with
  | Idle -> "idle: no in-flight work at the recorded instant"
  | Mid_crossing ->
    Printf.sprintf "killed mid-crossing (depth %d) during op '%s'" r.f_depth
      (op_name r.f_op)
  | Holding_stripes ->
    Printf.sprintf "killed holding %d stripe%s during op '%s'" r.f_held
      (if r.f_held = 1 then "" else "s")
      (op_name r.f_op)
  | Mid_ring_drain ->
    Printf.sprintf "killed mid-ring-drain (conn %d, %d msg window)" r.f_conn
      r.f_msgs

let render ?tenant_name r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "=== doctor: post-mortem forensic report ===\n";
  pf "classification: %s\n" (class_name r.f_class);
  pf "verdict: %s\n" (verdict r);
  pf "victim lane: %s%s\n"
    (if r.f_victim >= 0 then string_of_int r.f_victim else "none")
    (if r.f_noted then " (death note)"
     else if r.f_victim >= 0 then " (heuristic)"
     else "");
  if r.f_op > 0 then pf "victim op: %s\n" (op_name r.f_op);
  if r.f_tenant >= 0 then
    pf "tenant: %s\n"
      (match tenant_name with
       | Some f -> f r.f_tenant
       | None -> Printf.sprintf "slot %d" r.f_tenant);
  if r.f_held > 0 then begin
    pf "stripes held: %d" r.f_held;
    if r.f_stripes <> [] then
      pf " (known: %s)"
        (String.concat "," (List.map string_of_int r.f_stripes));
    (match r.f_group with
     | Some (first, n) -> pf " group from stripe %d x%d" first n
     | None -> ());
    pf "\n"
  end;
  if r.f_conn >= 0 then pf "ring conn: %d\n" r.f_conn;
  pf "torn records: %d lane(s)%s\n" (List.length r.f_torn)
    (if r.f_torn = [] then "" else " <- PUBLISH PROTOCOL VIOLATED");
  pf "--- recovery cross-checks ---\n";
  if r.f_checks = [] then pf "(none run)\n"
  else
    List.iter
      (fun c ->
        pf "[%s] %-24s %s\n" (if c.ck_ok then "ok" else "FAIL") c.ck_name
          c.ck_detail)
      r.f_checks;
  if r.f_heap <> [] then begin
    pf "--- heap at death ---\n";
    List.iter (fun (k, v) -> pf "%-28s %s\n" k v) r.f_heap
  end;
  if r.f_traces <> [] then begin
    pf "--- pre-crash trace tail ---\n";
    List.iter
      (fun (t : Flight.trace_snap) ->
        pf "[%8d ns] #%d sev%d %s\n" t.t_at t.t_seq t.t_sev t.t_msg)
      r.f_traces
  end;
  pf "--- timelines (%d lane%s with records) ---\n" (List.length r.f_lanes)
    (if List.length r.f_lanes = 1 then "" else "s");
  List.iter
    (fun ls ->
      pf "lane %d (%s): %d record%s\n" ls.ls_lane
        (class_name (classify_lane ls))
        (List.length ls.ls_entries)
        (if List.length ls.ls_entries = 1 then "" else "s");
      List.iter
        (fun (e : Flight.entry) ->
          pf "  [%8d ns] #%-4d %-16s a=%d b=%d c=%d\n" e.e_stamp e.e_pos
            (Flight.kind_name e.e_kind) e.e_a e.e_b e.e_c)
        ls.ls_entries)
    r.f_lanes;
  pf "=== end doctor report ===\n";
  Buffer.contents b

(** Flat key/value surface for [stats forensics] over both codecs. *)
let kvs r =
  [ ("forensics_class", class_name r.f_class);
    ("forensics_verdict", verdict r);
    ("forensics_victim_lane", string_of_int r.f_victim);
    ("forensics_noted", if r.f_noted then "1" else "0");
    ("forensics_op", op_name r.f_op);
    ("forensics_tenant", string_of_int r.f_tenant);
    ("forensics_depth", string_of_int r.f_depth);
    ("forensics_stripes_held", string_of_int r.f_held);
    ("forensics_ring_conn", string_of_int r.f_conn);
    ("forensics_torn_lanes", string_of_int (List.length r.f_torn));
    ("forensics_lanes_with_records", string_of_int (List.length r.f_lanes));
    ("forensics_well_formed", if well_formed r then "1" else "0") ]
  @ List.map
      (fun c -> ("forensics_check_" ^ c.ck_name, if c.ck_ok then "1" else "0"))
      r.f_checks
