(** Fixed-size event-trace ring buffer.

    The Vm, the Hodor trampoline, and the PKU fault path emit events
    here (sync points, crossings, faults, recovery steps). The ring
    holds the last {!capacity} events that pass the severity filter;
    older events are overwritten, so a dump after a failure shows the
    run's tail — which is what a post-mortem wants.

    Hot emitters should guard message construction with {!would_log}
    so that filtered-out severities cost one ref read and a compare. *)

type severity = Debug | Info | Warn | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  seq : int;  (** monotone across the whole run, survives wrap *)
  at : int;  (** virtual-time ns at emission ({!Control.now_ns}) *)
  sev : severity;
  subsys : string;
  msg : string;
}

let capacity = 1024

let ring : event option array = Array.make capacity None

let next_seq = ref 0

let level = ref Info

let set_level l = level := l

let get_level () = !level

let would_log sev =
  Control.on () && severity_rank sev >= severity_rank !level

let lock = Mutex.create ()

let emit ?at ~sev ~subsys msg =
  if would_log sev then begin
    let at = match at with Some a -> a | None -> Control.now_ns () in
    Mutex.lock lock;
    let seq = !next_seq in
    next_seq := seq + 1;
    ring.(seq mod capacity) <- Some { seq; at; sev; subsys; msg };
    Mutex.unlock lock;
    (* This ring is process-local and vanishes with the process; errors
       additionally snapshot into the flight recorder's shared-heap
       area so a post-crash dump still shows the pre-crash warnings.
       Outside the mutex: the snapshot writes through the recorder
       backend, which must never nest under our lock. *)
    if severity_rank sev >= severity_rank Error then
      Flight.snapshot_trace ~seq ~at ~sev:(severity_rank sev)
        (subsys ^ ": " ^ msg)
  end

let clear () =
  Mutex.lock lock;
  Array.fill ring 0 capacity None;
  next_seq := 0;
  Mutex.unlock lock

(** Events currently in the ring, oldest first. [n] limits to the most
    recent n; [subsys] keeps one subsystem's events; [min_sev] keeps
    events at or above a severity — both filters apply before the [n]
    cut, so "the last 20 hodor warnings" means what it says. *)
let dump ?n ?subsys ?min_sev () =
  Mutex.lock lock;
  let evs =
    List.sort
      (fun a b -> compare a.seq b.seq)
      (Array.to_list ring |> List.filter_map Fun.id)
  in
  Mutex.unlock lock;
  let evs =
    match subsys with
    | None -> evs
    | Some s -> List.filter (fun e -> e.subsys = s) evs
  in
  let evs =
    match min_sev with
    | None -> evs
    | Some sev ->
      List.filter (fun e -> severity_rank e.sev >= severity_rank sev) evs
  in
  match n with
  | None -> evs
  | Some n when n >= List.length evs -> evs
  | Some n ->
    (* keep the newest n *)
    let drop = List.length evs - n in
    List.filteri (fun i _ -> i >= drop) evs

(** Subsystems currently represented in the ring, sorted. *)
let subsystems () =
  Mutex.lock lock;
  let tags =
    Array.to_list ring |> List.filter_map (Option.map (fun e -> e.subsys))
  in
  Mutex.unlock lock;
  List.sort_uniq compare tags

let render e =
  Printf.sprintf "[%8d ns] #%d %-5s %-8s %s" e.at e.seq
    (severity_name e.sev) e.subsys e.msg

(** Total events ever emitted (including overwritten ones). *)
let emitted () = !next_seq
