module Config = struct
  type t = {
    cores : int;
    smt : int;
    smt_throughput : float;
    pressure_alpha : float;
    (** per-thread slowdown from cache/memory contention once the
        machine is oversubscribed: CPI multiplier grows linearly up to
        [1 + pressure_alpha] as runnable threads go from [cores] to
        [cores * (1 + pressure_span)] *)
    pressure_span : float;
    pressure_start : float;
    (** fraction of [cores] at which contention begins (memory-bound
        loads saturate the memory system before every core is busy) *)
  }

  let default =
    { cores = 10; smt = 2; smt_throughput = 1.2; pressure_alpha = 0.0;
      pressure_span = 1.0; pressure_start = 1.0 }

  let single_core =
    { cores = 1; smt = 1; smt_throughput = 1.0; pressure_alpha = 0.0;
      pressure_span = 1.0; pressure_start = 1.0 }
end

type state = Runnable | Blocked | Finished

type vthread = {
  tid : int;
  vname : string;
  table : Tls.table;
  mutable clock : int;
  mutable state : state;
  mutable join_waiters : (int -> unit) list;
  mutable held : vmutex list;
  (* vmutexes currently owned — consulted for robust release when the
     thread is crashed at a kill site *)
}

and vmutex = {
  mutable owner : int; (* tid, or -1 when free *)
  lock_waiters : (int * (int -> unit)) Queue.t;
}

exception Deadlock of string

exception Thread_failure of string * exn

exception Closed_chan

(* Waker convention: called exactly once, with the virtual time at which
   the wake-causing event happened; the waker re-schedules its thread. *)

type 'a vchan = {
  q : 'a Queue.t;
  cap : int;
  mutable chan_closed : bool;
  recv_waiters : ('a option -> int -> unit) Queue.t; (* None = closed *)
  send_waiters : (bool -> int -> unit) Queue.t; (* false = closed *)
}

type event = { at : int; prio : int; seq : int; go : unit -> unit }

(* Array-based binary min-heap on (at, prio, seq). [prio] equals [seq]
   in the default deterministic-FIFO mode; under seeded schedule
   exploration it is a random draw, so events tied at the same virtual
   time pop in a seed-determined order. *)
module Event_heap = struct
  type t = { mutable a : event array; mutable n : int }

  let dummy = { at = 0; prio = 0; seq = 0; go = ignore }

  let create () = { a = Array.make 256 dummy; n = 0 }

  let before x y =
    x.at < y.at
    || (x.at = y.at
        && (x.prio < y.prio || (x.prio = y.prio && x.seq < y.seq)))

  let push h ev =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- ev;
    h.n <- h.n + 1;
    let rec up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if before h.a.(i) h.a.(p) then begin
          let tmp = h.a.(i) in
          h.a.(i) <- h.a.(p);
          h.a.(p) <- tmp;
          up p
        end
      end
    in
    up (h.n - 1)

  let min_at h = if h.n = 0 then max_int else h.a.(0).at

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let s = if l < h.n && before h.a.(l) h.a.(i) then l else i in
        let s = if r < h.n && before h.a.(r) h.a.(s) then r else s in
        if s <> i then begin
          let tmp = h.a.(i) in
          h.a.(i) <- h.a.(s);
          h.a.(s) <- tmp;
          down s
        end
      in
      down 0;
      Some top
    end
end

type t = {
  config : Config.t;
  heap : Event_heap.t;
  mutable seq : int;
  mutable next_tid : int;
  mutable live : int;
  mutable runnable : int;
  mutable current : vthread option;
  mutable vnow : int;
  mutable nevents : int;
  mutable fails : (string * exn) list;
  mutable running : bool;
  mutable runnable_weighted : float;  (* integral of runnable over vtime *)
  mutable last_sample : int;
  rng : Random.State.t option;
  (* seeded schedule exploration: when set, same-time events pop in a
     seed-determined order instead of FIFO *)
  preempt_jitter : int;
  (* max extra ns (seeded-random) added per [advance], perturbing which
     thread reaches each synchronization point first *)
  (* Crash-point injection: every visible sync point performed by a
     thread matching [crash_filter] gets a dense index; when the index
     hits [crash_at] the thread is terminated abruptly at that point. *)
  mutable sync_points : int;
  mutable crash_at : int option;
  mutable crash_filter : string -> bool;
  mutable on_crash : (string -> int -> unit) option;
  mutable crashed : (string * int) list;
}

let create ?(config = Config.default) ?sched_seed ?(preempt_jitter = 0) () =
  { config; heap = Event_heap.create (); seq = 0; next_tid = 0; live = 0;
    runnable = 0; current = None; vnow = 0; nevents = 0; fails = [];
    running = false; runnable_weighted = 0.0; last_sample = 0;
    rng = Option.map (fun s -> Random.State.make [| s |]) sched_seed;
    preempt_jitter; sync_points = 0; crash_at = None;
    crash_filter = (fun _ -> true); on_crash = None; crashed = [] }

let set_crash_point t ?(filter = fun _ -> true) ~at ?on_crash () =
  t.crash_filter <- filter;
  t.crash_at <- Some at;
  t.on_crash <- on_crash

let clear_crash_point t = t.crash_at <- None

let sync_points_seen t = t.sync_points

let crashed t = List.rev t.crashed

let now t = t.vnow

let events_processed t = t.nevents

let failures t = t.fails

let push_event t at go =
  t.seq <- t.seq + 1;
  let prio =
    match t.rng with
    | Some st -> Random.State.bits st
    | None -> t.seq
  in
  Event_heap.push t.heap { at; prio; seq = t.seq; go }

(* CPU capacity model: below [cores] runnable threads each runs at full
   speed; between [cores] and [cores*smt] the extra threads share cores
   with SMT efficiency; beyond that, pure timesharing at peak capacity. *)
let dilate t n =
  let r = t.runnable in
  let c = t.config in
  if n <= 0 then n
  else begin
    let fc = float_of_int c.cores in
    let fr = float_of_int r in
    let cap =
      if r <= c.cores then fr
      else if c.smt <= 1 then fc
      else if r <= c.cores * c.smt then
        fc
        +. float_of_int (r - c.cores)
           *. (c.smt_throughput -. 1.0)
           /. float_of_int (c.smt - 1)
      else fc *. c.smt_throughput
    in
    (* Contention also lengthens every instruction (cache and memory
       system), starting before the cores are even fully busy. *)
    let start = c.pressure_start *. fc in
    let over = Float.max 0.0 (fr -. start) in
    let span = Float.max 1.0 (fc *. c.pressure_span) in
    let pressure =
      1.0 +. (c.pressure_alpha *. Float.min 1.0 (over /. span))
    in
    int_of_float (Float.round (float_of_int n *. fr *. pressure /. cap))
  end

type _ Effect.t +=
  | Advance : int -> unit Effect.t
  | Sleep_until : int -> unit Effect.t
  | Lock : vmutex -> unit Effect.t
  | Unlock : vmutex -> unit Effect.t
  | Send : 'a vchan * 'a -> unit Effect.t
  | Recv : 'a vchan -> 'a Effect.t
  | Try_recv : 'a vchan -> 'a option Effect.t
  | Close_chan : 'a vchan -> unit Effect.t
  | Spawn_in : string option * (unit -> unit) -> vthread Effect.t
  | Join_t : vthread -> unit Effect.t
  | Now_eff : int Effect.t
  | Self_eff : int Effect.t
  | Yield_eff : unit Effect.t

open Effect.Deep

let new_thread t name =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let vname =
    match name with Some n -> n | None -> Printf.sprintf "vthread-%d" tid
  in
  { tid; vname; table = Tls.fresh_table (); clock = 0; state = Runnable;
    join_waiters = []; held = [] }

let set_current t th = t.current <- Some th

let finish t th err =
  th.state <- Finished;
  t.live <- t.live - 1;
  if th.clock > t.vnow then begin
    (* account the runnable load over the stretch this thread ran
       inline past the last event boundary *)
    t.runnable_weighted <-
      t.runnable_weighted +. float_of_int (t.runnable * (th.clock - t.vnow));
    t.vnow <- th.clock
  end;
  t.runnable <- t.runnable - 1;
  (match err with
   | Some e ->
     t.fails <- (th.vname, e) :: t.fails;
     Telemetry.Trace.emit ~at:th.clock ~sev:Telemetry.Trace.Warn ~subsys:"vm"
       (Printf.sprintf "thread %s failed: %s" th.vname (Printexc.to_string e))
   | None -> ());
  let ws = th.join_waiters in
  th.join_waiters <- [];
  List.iter (fun w -> w th.clock) ws

(* Crash-point injection. Called at the entry of every visible sync
   point; returns [true] when this is the designated kill site, in which
   case the thread has been terminated {e abruptly}: its continuation is
   dropped without being resumed or discontinued, so no unwinding
   happens — finalizers do not run and whatever shared state the thread
   was mutating stays exactly as it was, which is precisely the
   SIGKILL-mid-call behaviour the recovery machinery must cope with.
   The only cleanup performed is robust-mutex handoff (a real OS does
   the equivalent for robust futexes): vmutexes owned by the dead thread
   are released, waking the next waiter, so surviving threads do not
   hang on the scheduler-level lock itself — they instead observe the
   half-mutated state it protected. *)
let crash_check t th =
  match t.crash_at with
  | None -> false
  | Some at ->
    if not (t.crash_filter th.vname) then false
    else begin
      let k = t.sync_points in
      t.sync_points <- k + 1;
      if k <> at then false
      else begin
        t.crash_at <- None;
        t.crashed <- (th.vname, k) :: t.crashed;
        (* Stamp the victim's flight-recorder lane before anything
           else: the dying thread is still [t.current], so its lane
           resolves — the post-mortem analyzer's pointer into the
           breadcrumb timelines (a real deployment would do this from
           the fault handler). *)
        Telemetry.Flight.note_death ();
        Telemetry.Trace.emit ~at:th.clock ~sev:Telemetry.Trace.Error
          ~subsys:"vm"
          (Printf.sprintf "crash point %d: %s killed abruptly" k th.vname);
        (* The dying thread is still [t.current], so its TLS resolves:
           flush whatever trace it was inside as aborted — the
           post-mortem view of where the kill landed. *)
        Telemetry.Span.flush_aborted ();
        List.iter
          (fun m ->
            if m.owner = th.tid then begin
              m.owner <- -1;
              match Queue.take_opt m.lock_waiters with
              | Some (tid, w) ->
                m.owner <- tid;
                w th.clock
              | None -> ()
            end)
          th.held;
        th.held <- [];
        finish t th None;
        (match t.on_crash with Some f -> f th.vname th.clock | None -> ());
        true
      end
    end

(* Park the thread and re-run [op] once its clock is globally minimal;
   run [op] inline when it already is (the common, event-free path).
   Under seeded exploration a thread exactly tied with the heap minimum
   may randomly requeue instead, letting the tied peer go first — this
   is where alternative interleavings of same-time synchronization ops
   come from. *)
let resync t th op =
  if Telemetry.Trace.would_log Telemetry.Trace.Debug then
    Telemetry.Trace.emit ~at:th.clock ~sev:Telemetry.Trace.Debug ~subsys:"vm"
      (th.vname ^ ": sync point");
  let min_at = Event_heap.min_at t.heap in
  let inline =
    if th.clock < min_at then true
    else if th.clock > min_at then false
    else
      match t.rng with
      | Some st -> Random.State.bool st
      | None -> true
  in
  if inline then op ()
  else
    push_event t th.clock (fun () ->
      set_current t th;
      op ())

(* Unblock [th], folding the waker time [at] into its clock, and run
   [resume] as a fresh scheduler event. *)
let wake t th at resume =
  th.clock <- max th.clock at;
  th.state <- Runnable;
  t.runnable <- t.runnable + 1;
  push_event t th.clock (fun () ->
    set_current t th;
    resume ())

let block t th =
  th.state <- Blocked;
  t.runnable <- t.runnable - 1

let rec handler : 'a. t -> vthread -> ('a, unit) Effect.Deep.handler =
  fun t th ->
  { retc = (fun _ -> finish t th None);
    exnc = (fun e -> finish t th (Some e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Advance n ->
          Some
            (fun (k : (a, unit) continuation) ->
              if crash_check t th then ()
              else begin
                th.clock <- th.clock + dilate t n;
                (match t.rng with
                 | Some st when t.preempt_jitter > 0 ->
                   th.clock <-
                     th.clock + Random.State.int st (t.preempt_jitter + 1)
                 | _ -> ());
                continue k ()
              end)
        | Now_eff -> Some (fun k -> continue k th.clock)
        | Self_eff -> Some (fun k -> continue k th.tid)
        | Yield_eff ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
                push_event t th.clock (fun () ->
                  set_current t th;
                  continue k ()))
        | Sleep_until at ->
          Some
            (fun k ->
              if crash_check t th then ()
              else begin
                (* Sleeping threads consume no CPU: leave the runnable
                   count while parked. *)
                th.clock <- max th.clock at;
                block t th;
                push_event t th.clock (fun () ->
                  th.state <- Runnable;
                  t.runnable <- t.runnable + 1;
                  set_current t th;
                  continue k ())
              end)
        | Lock m ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
                resync t th (fun () ->
                  if m.owner < 0 then begin
                    m.owner <- th.tid;
                    th.held <- m :: th.held;
                    continue k ()
                  end
                  else begin
                    block t th;
                    Queue.push
                      ( th.tid,
                        fun at ->
                          wake t th at (fun () ->
                            (* A contended acquisition pays the
                               cache-line handoff. *)
                            th.clock <-
                              th.clock
                              + Platform.Cost_model.current.lock_handoff;
                            th.held <- m :: th.held;
                            continue k ()) )
                      m.lock_waiters
                  end))
        | Unlock m ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
                resync t th (fun () ->
                  if m.owner <> th.tid then
                    discontinue k
                      (Invalid_argument "Vm.Sync.unlock: not the owner")
                  else begin
                    m.owner <- -1;
                    th.held <- List.filter (fun m' -> m' != m) th.held;
                    (match Queue.take_opt m.lock_waiters with
                     | Some (tid, w) ->
                       (* Direct handoff: no barging past a waiter. *)
                       m.owner <- tid;
                       w th.clock
                     | None -> ());
                    continue k ()
                  end))
        | Send (c, v) ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                if c.chan_closed then discontinue k Closed_chan
                else
                  match Queue.take_opt c.recv_waiters with
                  | Some w ->
                    w (Some v) th.clock;
                    continue k ()
                  | None ->
                    if Queue.length c.q < c.cap then begin
                      Queue.push v c.q;
                      continue k ()
                    end
                    else begin
                      block t th;
                      Queue.push
                        (fun ok at ->
                          if ok then
                            wake t th at (fun () ->
                              (* Deliver like a fresh send: a receiver
                                 may have parked while we waited, and
                                 the waiters-imply-empty-queue
                                 invariant must hold. *)
                              (match Queue.take_opt c.recv_waiters with
                               | Some w -> w (Some v) th.clock
                               | None -> Queue.push v c.q);
                              continue k ())
                          else
                            wake t th at (fun () ->
                              discontinue k Closed_chan))
                        c.send_waiters
                    end))
        | Recv c ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                match Queue.take_opt c.q with
                | Some v ->
                  (match Queue.take_opt c.send_waiters with
                   | Some w -> w true th.clock
                   | None -> ());
                  continue k v
                | None ->
                  if c.chan_closed then discontinue k Closed_chan
                  else begin
                    block t th;
                    Queue.push
                      (fun vo at ->
                        match vo with
                        | Some v -> wake t th at (fun () -> continue k v)
                        | None ->
                          wake t th at (fun () -> discontinue k Closed_chan))
                      c.recv_waiters
                  end))
        | Try_recv c ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                match Queue.take_opt c.q with
                | Some v ->
                  (match Queue.take_opt c.send_waiters with
                   | Some w -> w true th.clock
                   | None -> ());
                  continue k (Some v)
                | None ->
                  if c.chan_closed then discontinue k Closed_chan
                  else continue k None))
        | Close_chan c ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                c.chan_closed <- true;
                Queue.iter (fun w -> w None th.clock) c.recv_waiters;
                Queue.clear c.recv_waiters;
                Queue.iter (fun w -> w false th.clock) c.send_waiters;
                Queue.clear c.send_waiters;
                continue k ()))
        | Spawn_in (name, body) ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                let child = new_thread t name in
                child.clock <- th.clock;
                t.live <- t.live + 1;
                t.runnable <- t.runnable + 1;
                push_event t child.clock (fun () ->
                  set_current t child;
                  match_with body () (handler t child));
                continue k child))
        | Join_t target ->
          Some
            (fun k ->
              if crash_check t th then ()
              else
              resync t th (fun () ->
                if target.state = Finished then begin
                  th.clock <- max th.clock target.clock;
                  continue k ()
                end
                else begin
                  block t th;
                  target.join_waiters <-
                    (fun at -> wake t th at (fun () -> continue k ()))
                    :: target.join_waiters
                end))
        | _ -> None)
  }

let spawn t ?name body =
  let th = new_thread t name in
  t.live <- t.live + 1;
  t.runnable <- t.runnable + 1;
  if t.running then
    (* From inside a simulation, prefer [Sync.spawn]; this path exists
       for completeness and starts the child at the global floor. *)
    th.clock <- t.vnow;
  push_event t th.clock (fun () ->
    set_current t th;
    match_with body () (handler t th));
  th

let blocked_names t =
  (* The heap is empty, so every live thread is parked in some waiter
     queue; we only know them through our bookkeeping of [current]
     having spawned them, so report the count. *)
  Printf.sprintf "%d thread(s) blocked with no runnable peer" t.live

let run ?(raise_on_failure = true) t =
  if t.running then invalid_arg "Vm.run: already running";
  t.running <- true;
  let fallback = Tls.fresh_table () in
  Tls.install_provider (fun () ->
    match t.current with Some th -> th.table | None -> fallback);
  (* While the simulation runs, telemetry events are stamped with the
     running virtual thread's clock. *)
  let prev_now =
    Telemetry.Control.install_now (fun () ->
      match t.current with Some th -> th.clock | None -> t.vnow)
  in
  (* Telemetry publishes that want a kill window mid-protocol (the
     flight recorder's tearable breadcrumbs) ask for a sync point via
     this hook. [Advance 0] runs the crash check without charging any
     virtual time ([dilate] passes 0 through), so the recorder stays
     invisible to the cost model; [Sync.advance] itself elides n = 0,
     hence the direct perform. Host threads and scheduler-context
     emitters have no handler — for them the hook is a no-op. *)
  let prev_sync =
    Telemetry.Control.install_sync (fun () ->
      try Effect.perform (Advance 0) with Effect.Unhandled _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Control.restore_sync prev_sync;
      Telemetry.Control.restore_now prev_now;
      Tls.remove_provider ();
      t.running <- false)
    (fun () ->
      let rec loop () =
        match Event_heap.pop t.heap with
        | None ->
          if t.live > 0 then begin
            Telemetry.Trace.emit ~at:t.vnow ~sev:Telemetry.Trace.Error
              ~subsys:"vm" (blocked_names t);
            raise (Deadlock (blocked_names t))
          end
        | Some ev ->
          if ev.at > t.vnow then begin
            t.runnable_weighted <-
              t.runnable_weighted
              +. (float_of_int (t.runnable * (ev.at - t.vnow)));
            t.vnow <- ev.at
          end;
          t.nevents <- t.nevents + 1;
          ev.go ();
          loop ()
      in
      loop ();
      (* The global clock ends at the last thread's private clock. *)
      (match t.current with
       | Some th -> if th.clock > t.vnow then t.vnow <- th.clock
       | None -> ());
      if raise_on_failure then
        match List.rev t.fails with
        | (n, e) :: _ -> raise (Thread_failure (n, e))
        | [] -> ())

module Sync = struct
  let name = "vm"

  let advance n = if n > 0 then Effect.perform (Advance n)

  let now_ns () = Effect.perform Now_eff

  let sleep_ns ns =
    if ns > 0 then
      Effect.perform (Sleep_until (Effect.perform Now_eff + ns))

  type thread = vthread

  let spawn ?name f = Effect.perform (Spawn_in (name, f))

  let join th = Effect.perform (Join_t th)

  let self_id () = Effect.perform Self_eff

  let yield () = Effect.perform Yield_eff

  type mutex = vmutex

  let mutex ?cls:_ () = { owner = -1; lock_waiters = Queue.create () }

  let lock m = Effect.perform (Lock m)

  let unlock m = Effect.perform (Unlock m)

  type 'a chan = 'a vchan

  exception Closed = Closed_chan

  let chan ?(cap = max_int) () =
    { q = Queue.create (); cap; chan_closed = false;
      recv_waiters = Queue.create (); send_waiters = Queue.create () }

  let send c v = Effect.perform (Send (c, v))

  let recv c = Effect.perform (Recv c)

  let try_recv c = Effect.perform (Try_recv c)

  let close c = Effect.perform (Close_chan c)
end

let mean_runnable t =
  if t.vnow = 0 then 0.0 else t.runnable_weighted /. float_of_int t.vnow
