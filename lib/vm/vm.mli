(** Deterministic discrete-event virtual-time machine.

    The benchmark harness reproduces the paper's multicore throughput
    results on a single-core box by running the {e real} store code on
    simulated threads whose CPU consumption, lock contention, context
    switches and syscalls advance a virtual clock on a modeled machine
    (by default the paper's 10-core, 2-way-SMT Xeon).

    Execution model (conservative DES):
    - [Sync.advance n] adds [n] modeled nanoseconds to the calling
      thread's private clock without yielding;
    - every {e visible} operation (mutex lock/unlock, channel
      send/receive, spawn, join) first re-synchronises: the thread
      suspends unless its clock is the minimum among runnable threads,
      so visible events execute in global virtual-time order and
      contention outcomes are deterministic;
    - CPU dilation: when more threads are runnable than the machine has
      hardware contexts, [advance] stretches charged time according to
      the core/SMT capacity model.

    Simulated threads are cooperatively scheduled OCaml fibers
    (effects); while a machine runs, {!Tls} lookups resolve per
    {e virtual} thread, so per-thread state such as the pkru register
    is correctly private to each simulated thread. *)

module Config : sig
  type t = {
    cores : int;  (** physical cores *)
    smt : int;  (** hardware threads per core *)
    smt_throughput : float;
    (** total throughput of a core running [smt] busy threads,
        relative to one busy thread *)
    pressure_alpha : float;
    (** additional per-instruction slowdown from cache/memory-system
        contention under oversubscription, ramping to [1 + alpha] *)
    pressure_span : float;
    (** how many extra runnable threads (in multiples of [cores]) it
        takes to reach the full pressure slowdown *)
    pressure_start : float;
    (** fraction of [cores] at which contention begins *)
  }

  val default : t
  (** The paper's testbed: 10 cores, 2-way SMT. *)

  val single_core : t
end

type t

type vthread

exception Deadlock of string
(** Raised by {!run} when live threads remain but none can make
    progress; the payload names the blocked threads. *)

exception Thread_failure of string * exn
(** Raised at the end of {!run} if a simulated thread died with an
    uncaught exception (first failure wins). *)

val create :
  ?config:Config.t -> ?sched_seed:int -> ?preempt_jitter:int -> unit -> t
(** [sched_seed] switches the scheduler into seeded schedule
    exploration: whenever several events (or a resuming thread and a
    queued event) tie at the minimum virtual time, the winner is chosen
    by a seeded RNG instead of FIFO order. Each seed yields one
    deterministic, reproducible interleaving; sweeping seeds explores
    many interleavings of the same workload. [preempt_jitter] (ns,
    requires [sched_seed]) additionally adds up to that much random
    time to every [advance], perturbing which thread reaches each
    synchronization point first. Without [sched_seed] behaviour is
    bit-identical to the historical deterministic-FIFO scheduler. *)

val spawn : t -> ?name:string -> (unit -> unit) -> vthread
(** Register a thread to start at virtual time 0 (before {!run}), or at
    the spawner's current time (from inside a running simulation via
    [Sync.spawn]). *)

val run : ?raise_on_failure:bool -> t -> unit
(** Execute until every thread completes. Not reentrant. *)

val now : t -> int
(** Greatest virtual time reached (valid after {!run}). *)

val events_processed : t -> int
(** Scheduler events consumed — a determinism fingerprint for tests. *)

val failures : t -> (string * exn) list

val mean_runnable : t -> float
(** Time-weighted mean of the runnable-thread count — the CPU-demand
    diagnostic behind the dilation model. *)

(** {2 Crash-point injection}

    Every {e visible} sync point (advance, yield, sleep, lock, unlock,
    channel ops, spawn, join) performed by a thread whose name matches
    the filter is assigned a dense index 0, 1, 2, …; at the designated
    index the thread is killed {e abruptly}: its continuation is dropped
    without unwinding — no finalizers run, whatever it was mutating
    stays half-done. Scheduler-level mutexes it owned are
    robust-released (next waiter acquires), so survivors observe the
    protected state mid-mutation rather than hanging. Sweeping [at] over
    [0 .. sync_points_seen] deterministically explores every kill
    site of a workload. *)

val set_crash_point :
  t ->
  ?filter:(string -> bool) ->
  at:int ->
  ?on_crash:(string -> int -> unit) ->
  unit ->
  unit
(** Arm the (single-shot) crash point. [filter] selects victim threads
    by name (default: all). [at] is the sync-point index at which the
    matching thread dies; pass [max_int] to only count sync points.
    [on_crash name now] fires right after the kill (e.g. to mark the
    simulated process dead). *)

val clear_crash_point : t -> unit

val sync_points_seen : t -> int
(** Number of filter-matching sync points indexed so far — after a
    count-only run, the exclusive upper bound for a sweep over [at]. *)

val crashed : t -> (string * int) list
(** [(thread name, sync-point index)] for every injected crash, in
    order. *)

(** Substrate instance for functors over {!Platform.Sync_intf.S}.
    All operations except [mutex] and [chan] (pure constructors) must
    be called from inside a running simulation. *)
module Sync : Platform.Sync_intf.S
