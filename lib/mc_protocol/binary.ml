(** The memcached binary protocol: 24-byte big-endian header, then
    extras | key | value. One request maps to one frame, except [Stats],
    whose response is a frame sequence terminated by an empty STAT.

    Multi-key [Get] is an ASCII-protocol feature; this codec accepts
    single-key retrievals only. Real binary clients batch by pipelining
    a run of quiet gets (GetQ/GetKQ — miss replies suppressed)
    terminated by a Noop or a plain Get/GetK, which this codec models
    with {!Types.Getx} and {!Types.Noop}; {!parse_batch} drains such a
    run into an op batch. *)

open Types

let header_len = 24

let magic_req = 0x80

let magic_res = 0x81

module Op = struct
  let get = 0x00
  let getq = 0x09
  let getk = 0x0c
  let getkq = 0x0d
  let noop = 0x0a
  let set = 0x01
  let add = 0x02
  let replace = 0x03
  let delete = 0x04
  let increment = 0x05
  let decrement = 0x06
  let quit = 0x07
  let flush = 0x08
  let version = 0x0b
  let append = 0x0e
  let prepend = 0x0f
  let stat = 0x10
  let touch = 0x1c

  (* Quiet variants: the binary protocol's rendering of [noreply] — the
     server answers only on error. Encoding a noreply command picks the
     quiet opcode, and the parser maps it back, so noreply survives a
     binary round trip. [Touch] has no quiet opcode (real memcached
     reuses GAT for that); a noreply touch is normalised to a plain
     one. *)
  let setq = 0x11
  let addq = 0x12
  let replaceq = 0x13
  let deleteq = 0x14
  let incrementq = 0x15
  let decrementq = 0x16
  let appendq = 0x19
  let prependq = 0x1a
end

module Status = struct
  let ok = 0x00
  let key_not_found = 0x01
  let key_exists = 0x02
  let not_stored = 0x05
  let non_numeric = 0x06
  let unknown_command = 0x81
end

let put_u16 b v =
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u16 b ((v lsr 16) land 0xffff);
  put_u16 b (v land 0xffff)

let put_u64 b (v : int64) =
  put_u32 b (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff);
  put_u32 b (Int64.to_int v land 0xffffffff)

let get_u8 s i = Char.code s.[i]

let get_u16 s i = (get_u8 s i lsl 8) lor get_u8 s (i + 1)

let get_u32 s i = (get_u16 s i lsl 16) lor get_u16 s (i + 2)

let get_u64 s i =
  Int64.logor
    (Int64.shift_left (Int64.of_int (get_u32 s i)) 32)
    (Int64.of_int (get_u32 s (i + 4)))

let frame ~magic ~opcode ~status ~cas ~extras ~key ~value =
  let b = Buffer.create (header_len + String.length extras
                         + String.length key + String.length value) in
  Buffer.add_char b (Char.chr magic);
  Buffer.add_char b (Char.chr opcode);
  put_u16 b (String.length key);
  Buffer.add_char b (Char.chr (String.length extras));
  Buffer.add_char b '\000' (* data type *);
  put_u16 b status;
  put_u32 b (String.length extras + String.length key + String.length value);
  put_u32 b 0 (* opaque *);
  put_u64 b cas;
  Buffer.add_string b extras;
  Buffer.add_string b key;
  Buffer.add_string b value;
  Buffer.contents b

let store_extras flags exptime =
  let b = Buffer.create 8 in
  put_u32 b flags;
  put_u32 b exptime;
  Buffer.contents b

let counter_extras delta =
  let b = Buffer.create 20 in
  put_u64 b delta;
  put_u64 b 0L (* initial *);
  put_u32 b 0xffffffff (* no auto-create *);
  Buffer.contents b

let encode_command (c : command) : string =
  let req = frame ~magic:magic_req ~status:0 in
  match c with
  | Get [ k ] | Gets [ k ] ->
    req ~opcode:Op.get ~cas:0L ~extras:"" ~key:k ~value:""
  | Get _ | Gets _ -> invalid_arg "Binary.encode_command: multi-key get"
  | Getx { g_key; g_quiet; g_withkey } ->
    let opcode =
      match g_quiet, g_withkey with
      | false, false -> Op.get
      | true, false -> Op.getq
      | false, true -> Op.getk
      | true, true -> Op.getkq
    in
    req ~opcode ~cas:0L ~extras:"" ~key:g_key ~value:""
  | Noop -> req ~opcode:Op.noop ~cas:0L ~extras:"" ~key:"" ~value:""
  | Invalid _ -> invalid_arg "Binary.encode_command: Invalid is not a request"
  | Set p ->
    req
      ~opcode:(if p.noreply then Op.setq else Op.set)
      ~cas:0L ~extras:(store_extras p.flags p.exptime) ~key:p.key ~value:p.data
  | Cas (p, cas) ->
    req
      ~opcode:(if p.noreply then Op.setq else Op.set)
      ~cas ~extras:(store_extras p.flags p.exptime) ~key:p.key ~value:p.data
  | Add p ->
    req
      ~opcode:(if p.noreply then Op.addq else Op.add)
      ~cas:0L ~extras:(store_extras p.flags p.exptime) ~key:p.key ~value:p.data
  | Replace p ->
    req
      ~opcode:(if p.noreply then Op.replaceq else Op.replace)
      ~cas:0L ~extras:(store_extras p.flags p.exptime) ~key:p.key ~value:p.data
  | Append p ->
    req
      ~opcode:(if p.noreply then Op.appendq else Op.append)
      ~cas:0L ~extras:"" ~key:p.key ~value:p.data
  | Prepend p ->
    req
      ~opcode:(if p.noreply then Op.prependq else Op.prepend)
      ~cas:0L ~extras:"" ~key:p.key ~value:p.data
  | Delete (k, noreply) ->
    req
      ~opcode:(if noreply then Op.deleteq else Op.delete)
      ~cas:0L ~extras:"" ~key:k ~value:""
  | Incr (k, d, noreply) ->
    req
      ~opcode:(if noreply then Op.incrementq else Op.increment)
      ~cas:0L ~extras:(counter_extras d) ~key:k ~value:""
  | Decr (k, d, noreply) ->
    req
      ~opcode:(if noreply then Op.decrementq else Op.decrement)
      ~cas:0L ~extras:(counter_extras d) ~key:k ~value:""
  | Touch (k, e, _) ->
    let b = Buffer.create 4 in
    put_u32 b e;
    req ~opcode:Op.touch ~cas:0L ~extras:(Buffer.contents b) ~key:k ~value:""
  | Stats arg ->
    (* the sub-report selector travels in the key field, as in real
       memcached's STAT requests *)
    req ~opcode:Op.stat ~cas:0L ~extras:""
      ~key:(Option.value arg ~default:"") ~value:""
  | Version -> req ~opcode:Op.version ~cas:0L ~extras:"" ~key:"" ~value:""
  | Flush_all -> req ~opcode:Op.flush ~cas:0L ~extras:"" ~key:"" ~value:""
  | Quit -> req ~opcode:Op.quit ~cas:0L ~extras:"" ~key:"" ~value:""

type raw = {
  r_magic : int;
  r_opcode : int;
  r_status : int;
  r_cas : int64;
  r_extras : string;
  r_key : string;
  r_value : string;
  r_consumed : int;
}

let parse_frame (s : string) ~(at : int) : raw =
  if String.length s - at < header_len then raise Need_more_data;
  let key_len = get_u16 s (at + 2) in
  let extras_len = get_u8 s (at + 4) in
  let body_len = get_u32 s (at + 8) in
  if body_len > 64 * 1024 * 1024 then parse_error "insane body length";
  if String.length s - at < header_len + body_len then raise Need_more_data;
  if body_len < extras_len + key_len then parse_error "inconsistent body length";
  let body_at = at + header_len in
  { r_magic = get_u8 s at;
    r_opcode = get_u8 s (at + 1);
    r_status = get_u16 s (at + 6);
    r_cas = get_u64 s (at + 16);
    r_extras = String.sub s body_at extras_len;
    r_key = String.sub s (body_at + extras_len) key_len;
    r_value =
      String.sub s (body_at + extras_len + key_len)
        (body_len - extras_len - key_len);
    r_consumed = header_len + body_len }

exception Bad_key

exception Too_large

let parse_command (s : string) : command * int =
  let r = parse_frame s ~at:0 in
  if r.r_magic <> magic_req then parse_error "bad request magic %#x" r.r_magic;
  (* The frame carries an explicit key length, so only the length bound
     applies (mirroring the ASCII codec's 250-byte cap); the frame is
     already consumed, so the error maps to exactly this request. *)
  let key () =
    if not (validate_key_binary r.r_key) then raise Bad_key;
    r.r_key
  in
  (* Unlike ASCII, the frame is fully delimited even when the value is
     over the item-size limit, so the request frames and the error
     answers exactly this command ([Invalid] discipline). *)
  let bound_value () =
    if !parser_hardening && String.length r.r_value > max_data_bytes then
      raise Too_large
  in
  let store ~noreply =
    if String.length r.r_extras <> 8 then parse_error "store: bad extras";
    bound_value ();
    { key = key (); flags = get_u32 r.r_extras 0;
      exptime = get_u32 r.r_extras 4; data = r.r_value; noreply }
  in
  let concat ~noreply =
    bound_value ();
    { key = key (); flags = 0; exptime = 0; data = r.r_value; noreply }
  in
  let counter ~noreply what =
    if String.length r.r_extras <> 20 then parse_error "%s: bad extras" what;
    (key (), get_u64 r.r_extras 0, noreply)
  in
  let cmd =
    match r.r_opcode with
    | o when o = Op.get -> Get [ key () ]
    | o when o = Op.getq ->
      Getx { g_key = key (); g_quiet = true; g_withkey = false }
    | o when o = Op.getk ->
      Getx { g_key = key (); g_quiet = false; g_withkey = true }
    | o when o = Op.getkq ->
      Getx { g_key = key (); g_quiet = true; g_withkey = true }
    | o when o = Op.noop -> Noop
    | o when o = Op.set || o = Op.setq ->
      let noreply = r.r_opcode = Op.setq in
      if r.r_cas = 0L then Set (store ~noreply)
      else Cas (store ~noreply, r.r_cas)
    | o when o = Op.add -> Add (store ~noreply:false)
    | o when o = Op.addq -> Add (store ~noreply:true)
    | o when o = Op.replace -> Replace (store ~noreply:false)
    | o when o = Op.replaceq -> Replace (store ~noreply:true)
    | o when o = Op.append -> Append (concat ~noreply:false)
    | o when o = Op.appendq -> Append (concat ~noreply:true)
    | o when o = Op.prepend -> Prepend (concat ~noreply:false)
    | o when o = Op.prependq -> Prepend (concat ~noreply:true)
    | o when o = Op.delete -> Delete (key (), false)
    | o when o = Op.deleteq -> Delete (key (), true)
    | o when o = Op.increment ->
      let k, d, n = counter ~noreply:false "incr" in
      Incr (k, d, n)
    | o when o = Op.incrementq ->
      let k, d, n = counter ~noreply:true "incr" in
      Incr (k, d, n)
    | o when o = Op.decrement ->
      let k, d, n = counter ~noreply:false "decr" in
      Decr (k, d, n)
    | o when o = Op.decrementq ->
      let k, d, n = counter ~noreply:true "decr" in
      Decr (k, d, n)
    | o when o = Op.touch ->
      if String.length r.r_extras <> 4 then parse_error "touch: bad extras";
      Touch (key (), get_u32 r.r_extras 0, false)
    | o when o = Op.stat ->
      Stats (if r.r_key = "" then None else Some r.r_key)
    | o when o = Op.version -> Version
    | o when o = Op.flush -> Flush_all
    | o when o = Op.quit -> Quit
    | o -> parse_error "unknown opcode %#x" o
  in
  (cmd, r.r_consumed)

let parse_command (s : string) : command * int =
  match parse_command s with
  | cmd, consumed -> (cmd, consumed)
  | exception Bad_key ->
    let r = parse_frame s ~at:0 in
    (Invalid bad_key_error, r.r_consumed)
  | exception Too_large ->
    let r = parse_frame s ~at:0 in
    (Invalid "object too large for cache", r.r_consumed)

(* Drain every complete frame out of [s]: the binary rendering of an op
   batch — typically a run of quiet ops terminated by a noop or a
   non-quiet get/getk, but any frame sequence drains. Same contract as
   {!Ascii.parse_batch}. *)
let parse_batch ?(max_ops = max_int) (s : string) : command list * int =
  let n = String.length s in
  let rec go at acc ops =
    if at >= n || ops >= max_ops then (List.rev acc, at)
    else
      match parse_command (if at = 0 then s else String.sub s at (n - at)) with
      | cmd, consumed -> go (at + consumed) (cmd :: acc) (ops + 1)
      | exception Need_more_data -> (List.rev acc, at)
      | exception Parse_error _ when acc <> [] -> (List.rev acc, at)
  in
  go 0 [] 0

(* Responses carry the request opcode so the decoder knows the shape. *)
let encode_response ~(for_op : int) (resp : response) : string =
  let res = frame ~magic:magic_res ~opcode:for_op in
  match resp with
  | Values { vals = []; _ } ->
    res ~status:Status.key_not_found ~cas:0L ~extras:"" ~key:"" ~value:""
  | Values { vals = v :: _; _ } ->
    (* the binary header always carries the CAS, for get and gets
       alike — [with_cas] only shapes the ASCII rendering *)
    let extras =
      let b = Buffer.create 4 in
      put_u32 b v.v_flags;
      Buffer.contents b
    in
    res ~status:Status.ok ~cas:v.v_cas ~extras ~key:"" ~value:v.v_data
  | Stored -> res ~status:Status.ok ~cas:0L ~extras:"" ~key:"" ~value:""
  | Not_stored -> res ~status:Status.not_stored ~cas:0L ~extras:"" ~key:"" ~value:""
  | Exists -> res ~status:Status.key_exists ~cas:0L ~extras:"" ~key:"" ~value:""
  | Not_found -> res ~status:Status.key_not_found ~cas:0L ~extras:"" ~key:"" ~value:""
  | Deleted | Touched | Ok | Reset ->
    (* [Reset] is the `stats reset` ack: a lone empty-key Stat frame,
       i.e. a terminator with nothing before it *)
    res ~status:Status.ok ~cas:0L ~extras:"" ~key:"" ~value:""
  | Number n ->
    let b = Buffer.create 8 in
    put_u64 b n;
    res ~status:Status.ok ~cas:0L ~extras:"" ~key:"" ~value:(Buffer.contents b)
  | Stats_reply kvs ->
    let b = Buffer.create 128 in
    List.iter
      (fun (k, v) ->
        Buffer.add_string b
          (res ~status:Status.ok ~cas:0L ~extras:"" ~key:k ~value:v))
      kvs;
    Buffer.add_string b (res ~status:Status.ok ~cas:0L ~extras:"" ~key:"" ~value:"");
    Buffer.contents b
  | Version_reply v -> res ~status:Status.ok ~cas:0L ~extras:"" ~key:"" ~value:v
  | Error | Client_error _ | Server_error _ ->
    res ~status:Status.unknown_command ~cas:0L ~extras:"" ~key:"" ~value:""

(* The response opcode echoes the request's, so a pipelining client can
   match replies (in particular, spot the noop that flushes a quiet
   run). [Invalid] lost its original opcode when validation rejected
   it; the error status is what matters there. *)
let opcode_of_command (c : command) : int =
  match c with
  | Get _ | Gets _ -> Op.get
  | Getx { g_quiet; g_withkey; _ } ->
    (match g_quiet, g_withkey with
     | false, false -> Op.get
     | true, false -> Op.getq
     | false, true -> Op.getk
     | true, true -> Op.getkq)
  | Set p | Cas (p, _) -> if p.noreply then Op.setq else Op.set
  | Add p -> if p.noreply then Op.addq else Op.add
  | Replace p -> if p.noreply then Op.replaceq else Op.replace
  | Append p -> if p.noreply then Op.appendq else Op.append
  | Prepend p -> if p.noreply then Op.prependq else Op.prepend
  | Delete (_, n) -> if n then Op.deleteq else Op.delete
  | Incr (_, _, n) -> if n then Op.incrementq else Op.increment
  | Decr (_, _, n) -> if n then Op.decrementq else Op.decrement
  | Touch _ -> Op.touch
  | Stats _ -> Op.stat
  | Version -> Op.version
  | Flush_all -> Op.flush
  | Quit -> Op.quit
  | Noop -> Op.noop
  | Invalid _ -> Op.noop

(* Command-aware reply encoding: picks the echo opcode and, for
   GetK/GetKQ, carries the key back in the frame so quiet-run replies
   are attributable. *)
let encode_reply ~(for_cmd : command) (resp : response) : string =
  let opcode = opcode_of_command for_cmd in
  match for_cmd, resp with
  | Getx { g_withkey = true; g_key; _ }, Values { vals; _ } ->
    let res = frame ~magic:magic_res ~opcode in
    (match vals with
     | [] ->
       res ~status:Status.key_not_found ~cas:0L ~extras:"" ~key:g_key ~value:""
     | v :: _ ->
       let extras =
         let b = Buffer.create 4 in
         put_u32 b v.v_flags;
         Buffer.contents b
       in
       res ~status:Status.ok ~cas:v.v_cas ~extras ~key:g_key ~value:v.v_data)
  | _ -> encode_response ~for_op:opcode resp

(* Encode a batch's replies into one output buffer; quiet misses and
   noreply acks are dropped, errors always answer. *)
let encode_batch (pairs : (command * response) list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun (cmd, resp) ->
      if not (suppress_reply cmd resp) then
        Buffer.add_string b (encode_reply ~for_cmd:cmd resp))
    pairs;
  Buffer.contents b

let parse_response ~(for_cmd : command) (s : string) : response =
  let r = parse_frame s ~at:0 in
  if r.r_magic <> magic_res then parse_error "bad response magic %#x" r.r_magic;
  match for_cmd with
  | Get [ k ] | Gets [ k ] ->
    if r.r_status = Status.key_not_found then
      Values { with_cas = true; vals = [] }
    else if r.r_status <> Status.ok then Server_error "get failed"
    else
      let flags = if String.length r.r_extras >= 4 then get_u32 r.r_extras 0 else 0 in
      Values
        { with_cas = true;
          vals =
            [ { v_key = k; v_flags = flags; v_cas = r.r_cas;
                v_data = r.r_value } ] }
  | Get _ | Gets _ -> invalid_arg "Binary.parse_response: multi-key get"
  | Getx { g_key; _ } ->
    if r.r_status = Status.key_not_found then
      Values { with_cas = true; vals = [] }
    else if r.r_status <> Status.ok then Server_error "get failed"
    else
      let flags =
        if String.length r.r_extras >= 4 then get_u32 r.r_extras 0 else 0
      in
      let key = if r.r_key <> "" then r.r_key else g_key in
      Values
        { with_cas = true;
          vals =
            [ { v_key = key; v_flags = flags; v_cas = r.r_cas;
                v_data = r.r_value } ] }
  | Set _ | Add _ | Replace _ | Append _ | Prepend _ ->
    if r.r_status = Status.ok then Stored
    else if r.r_status = Status.key_exists then Exists
    else if r.r_status = Status.key_not_found then Not_found
    else Not_stored
  | Cas _ ->
    if r.r_status = Status.ok then Stored
    else if r.r_status = Status.key_exists then Exists
    else if r.r_status = Status.key_not_found then Not_found
    else Not_stored
  | Delete _ ->
    if r.r_status = Status.ok then Deleted else Not_found
  | Incr _ | Decr _ ->
    if r.r_status = Status.ok then Number (get_u64 r.r_value 0)
    else if r.r_status = Status.non_numeric then
      Client_error "cannot increment or decrement non-numeric value"
    else Not_found
  | Touch _ -> if r.r_status = Status.ok then Touched else Not_found
  | Stats (Some "reset") ->
    if r.r_status = Status.ok then Reset else Error
  | Stats _ ->
    let rec go at acc =
      let r = parse_frame s ~at in
      if r.r_key = "" then Stats_reply (List.rev acc)
      else go (at + r.r_consumed) ((r.r_key, r.r_value) :: acc)
    in
    go 0 []
  | Version -> Version_reply r.r_value
  | Flush_all -> if r.r_status = Status.ok then Ok else Error
  | Quit -> Ok
  | Noop -> if r.r_status = Status.ok then Ok else Error
  | Invalid _ -> invalid_arg "Binary.parse_response: Invalid is not a request"

(* One response frame (or, for [Stats], frame sequence) out of a
   pipelined reply buffer: the response and the bytes it spans. *)
let parse_response_at ~(for_cmd : command) (s : string) ~(at : int) :
  response * int =
  match for_cmd with
  | Stats (Some "reset") ->
    let r = parse_frame s ~at in
    (parse_response ~for_cmd (String.sub s at r.r_consumed), r.r_consumed)
  | Stats _ ->
    let rec go i acc =
      let r = parse_frame s ~at:i in
      if r.r_key = "" then (Stats_reply (List.rev acc), i + r.r_consumed - at)
      else go (i + r.r_consumed) ((r.r_key, r.r_value) :: acc)
    in
    go at []
  | _ ->
    let r = parse_frame s ~at in
    (parse_response ~for_cmd (String.sub s at r.r_consumed), r.r_consumed)
