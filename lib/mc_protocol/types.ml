(** Wire-level request/response model shared by the ASCII and binary
    codecs. The baseline (socket) memcached speaks these; the protected
    library needs none of it — deleting this layer is most of the
    paper's 24% code reduction. *)

type store_params = {
  key : string;
  flags : int;
  exptime : int;
  data : string;
  noreply : bool;
}

type command =
  | Get of string list
  | Gets of string list  (** get returning CAS uniques *)
  | Set of store_params
  | Add of store_params
  | Replace of store_params
  | Append of store_params
  | Prepend of store_params
  | Cas of store_params * int64
  | Delete of string * bool (* noreply *)
  | Incr of string * int64 * bool
  | Decr of string * int64 * bool
  | Touch of string * int * bool
  | Stats of string option
  (** [stats] or [stats <arg>] — the argument selects a sub-report
      ([items], [slabs], [reset], ...); the binary codec carries it in
      the request's key field, as real memcached does. *)
  | Version
  | Flush_all
  | Quit

type value = { v_key : string; v_flags : int; v_cas : int64; v_data : string }

type response =
  | Values of { with_cas : bool; vals : value list }
  (** terminated by END; empty list = miss. [with_cas] distinguishes a
      [gets] reply (VALUE lines carry the CAS unique) from a plain
      [get] reply (they must not) — the binary protocol always carries
      CAS in its response header, so the flag only shapes ASCII. *)
  | Stored
  | Not_stored
  | Exists
  | Not_found
  | Deleted
  | Touched
  | Number of int64
  | Stats_reply of (string * string) list
  | Reset
  (** reply to [stats reset]: ASCII "RESET", binary an empty Stat
      terminator frame *)
  | Version_reply of string
  | Ok
  | Error
  | Client_error of string
  | Server_error of string

exception Parse_error of string

exception Need_more_data
(** The buffer holds a prefix of a valid request: not an error, the
    socket just has not delivered the rest yet. Stream-mode servers
    keep accumulating; framed-mode callers treat it as malformed. *)

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let max_key_length = 250

let validate_key k =
  let n = String.length k in
  if n = 0 || n > max_key_length then false
  else
    let rec ok i =
      i >= n
      ||
      let c = k.[i] in
      c > ' ' && c <> '\127' && ok (i + 1)
    in
    ok 0

(* Does this command ask the server to suppress its reply? *)
let is_noreply = function
  | Set p | Add p | Replace p | Append p | Prepend p | Cas (p, _) -> p.noreply
  | Delete (_, n) | Incr (_, _, n) | Decr (_, _, n) | Touch (_, _, n) -> n
  | Get _ | Gets _ | Stats _ | Version | Flush_all | Quit -> false

let command_name = function
  | Get _ -> "get"
  | Gets _ -> "gets"
  | Set _ -> "set"
  | Add _ -> "add"
  | Replace _ -> "replace"
  | Append _ -> "append"
  | Prepend _ -> "prepend"
  | Cas _ -> "cas"
  | Delete _ -> "delete"
  | Incr _ -> "incr"
  | Decr _ -> "decr"
  | Touch _ -> "touch"
  | Stats _ -> "stats"
  | Version -> "version"
  | Flush_all -> "flush_all"
  | Quit -> "quit"
