(** Wire-level request/response model shared by the ASCII and binary
    codecs. The baseline (socket) memcached speaks these; the protected
    library needs none of it — deleting this layer is most of the
    paper's 24% code reduction. *)

type store_params = {
  key : string;
  flags : int;
  exptime : int;
  data : string;
  noreply : bool;
}

type command =
  | Get of string list
  | Gets of string list  (** get returning CAS uniques *)
  | Getx of { g_key : string; g_quiet : bool; g_withkey : bool }
  (** binary-only retrieval shapes: GetQ/GetK/GetKQ. [g_quiet]
      suppresses the miss reply (a quiet-get run is the binary
      protocol's pipelined mget); [g_withkey] echoes the key in the
      response frame so the client can match replies to a quiet run. *)
  | Set of store_params
  | Add of store_params
  | Replace of store_params
  | Append of store_params
  | Prepend of store_params
  | Cas of store_params * int64
  | Delete of string * bool (* noreply *)
  | Incr of string * int64 * bool
  | Decr of string * int64 * bool
  | Touch of string * int * bool
  | Stats of string option
  (** [stats] or [stats <arg>] — the argument selects a sub-report
      ([items], [slabs], [reset], ...); the binary codec carries it in
      the request's key field, as real memcached does. *)
  | Version
  | Flush_all
  | Quit
  | Noop
  (** binary-only: the frame that terminates a quiet-op run — it always
      elicits a reply, flushing any pipelined quiet gets before it *)
  | Invalid of string
  (** a request that framed correctly but failed validation (e.g. an
      over-long key). Unlike {!Parse_error}, the parser consumed the
      whole request — including a storage command's data block — so a
      pipelined batch stays in sync and the server answers
      [CLIENT_ERROR] for exactly this one command. *)

type value = { v_key : string; v_flags : int; v_cas : int64; v_data : string }

type response =
  | Values of { with_cas : bool; vals : value list }
  (** terminated by END; empty list = miss. [with_cas] distinguishes a
      [gets] reply (VALUE lines carry the CAS unique) from a plain
      [get] reply (they must not) — the binary protocol always carries
      CAS in its response header, so the flag only shapes ASCII. *)
  | Stored
  | Not_stored
  | Exists
  | Not_found
  | Deleted
  | Touched
  | Number of int64
  | Stats_reply of (string * string) list
  | Reset
  (** reply to [stats reset]: ASCII "RESET", binary an empty Stat
      terminator frame *)
  | Version_reply of string
  | Ok
  | Error
  | Client_error of string
  | Server_error of string

exception Parse_error of string

exception Need_more_data
(** The buffer holds a prefix of a valid request: not an error, the
    socket just has not delivered the rest yet. Stream-mode servers
    keep accumulating; framed-mode callers treat it as malformed. *)

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Strict unsigned-64 parse for protocol operands (CAS uniques, counter
   deltas): decimal digits only, and anything above 2^64-1 is rejected
   rather than wrapped. [Int64.of_string "0u..."] would accept
   underscores, and a wrap here would turn a garbage delta into a
   silently-applied huge one. *)
let max_u64_div10 = 1844674407370955161L (* (2^64-1) / 10 *)

let parse_u64 (s : string) : int64 option =
  let n = String.length s in
  if n = 0 then None
  else
    let rec go i acc =
      if i >= n then Some acc
      else
        match s.[i] with
        | '0' .. '9' as c ->
          let d = Char.code c - Char.code '0' in
          if
            Int64.unsigned_compare acc max_u64_div10 > 0
            || (Int64.equal acc max_u64_div10 && d > 5)
          then None
          else go (i + 1) (Int64.add (Int64.mul acc 10L) (Int64.of_int d))
        | _ -> None
    in
    go 0 0L

let max_key_length = 250

(* Largest value a storage command may carry (memcached's default
   item-size limit). The declared-length field of an ASCII storage
   command is attacker-controlled; without a bound, a huge length pins
   the connection buffer forever (the server waits for data that never
   comes), and a {e negative} length drove [String.sub] to raise
   [Invalid_argument] out of the parser — an uncaught crash, found by
   the red-team fuzzer (see test/corpus/). *)
let max_data_bytes = 1 lsl 20

(* Red-team toggle (default on): with hardening off, the ASCII parser
   reverts to [int_of_string]-style length parsing (accepts negatives,
   hex, unbounded values) and the binary codec stops bounding value
   sizes — the configuration the fuzzer breaks. *)
let parser_hardening = ref true

let validate_key k =
  let n = String.length k in
  if n = 0 || n > max_key_length then false
  else
    let rec ok i =
      i >= n
      ||
      let c = k.[i] in
      c > ' ' && c <> '\127' && ok (i + 1)
    in
    ok 0

(* The binary protocol frames the key with an explicit length, so any
   byte is unambiguous — only the length bound applies (real memcached
   accepts spaces and control bytes in binary keys). *)
let validate_key_binary k =
  let n = String.length k in
  n > 0 && n <= max_key_length

(* The one message every invalid-key path must produce, whichever codec
   and whichever command arm hit it. *)
let bad_key_error = "invalid key"

(* Does this command ask the server to suppress its reply? *)
let is_noreply = function
  | Set p | Add p | Replace p | Append p | Prepend p | Cas (p, _) -> p.noreply
  | Delete (_, n) | Incr (_, _, n) | Decr (_, _, n) | Touch (_, _, n) -> n
  | Getx { g_quiet; _ } -> g_quiet
  | Get _ | Gets _ | Stats _ | Version | Flush_all | Quit | Noop | Invalid _ ->
    false

(* Reply suppression is per (command, response): a quiet get answers on
   a hit but swallows the miss; noreply storage swallows everything;
   validation failures always answer, quiet or not (binary semantics —
   errors on quiet ops are reported). *)
let suppress_reply cmd (resp : response) =
  match cmd, resp with
  | _, (Client_error _ | Server_error _ | Error) -> false
  | Getx { g_quiet = true; _ }, Values { vals = []; _ } -> true
  | Getx _, _ -> false
  | cmd, _ -> is_noreply cmd

let command_name = function
  | Get _ -> "get"
  | Gets _ -> "gets"
  | Getx _ -> "get"
  | Set _ -> "set"
  | Add _ -> "add"
  | Replace _ -> "replace"
  | Append _ -> "append"
  | Prepend _ -> "prepend"
  | Cas _ -> "cas"
  | Delete _ -> "delete"
  | Incr _ -> "incr"
  | Decr _ -> "decr"
  | Touch _ -> "touch"
  | Stats _ -> "stats"
  | Version -> "version"
  | Flush_all -> "flush_all"
  | Quit -> "quit"
  | Noop -> "noop"
  | Invalid _ -> "invalid"
