(** The memcached ASCII ("text") protocol.

    Requests are CRLF-terminated command lines; storage commands carry
    a data block of declared length, also CRLF-terminated. Responses
    are lines, with VALUE blocks for retrievals. Each codec here works
    on a complete framed message (the transport preserves message
    boundaries, as one socket write per request does in practice). *)

open Types

let crlf = "\r\n"

(* ---- Request encoding (client side) --------------------------------- *)

let encode_store verb (p : store_params) ?cas () =
  let b = Buffer.create (String.length p.data + 64) in
  Buffer.add_string b verb;
  Buffer.add_char b ' ';
  Buffer.add_string b p.key;
  Buffer.add_string b
    (Printf.sprintf " %d %d %d" p.flags p.exptime (String.length p.data));
  (match cas with
   | Some c -> Buffer.add_string b (Printf.sprintf " %Lu" c)
   | None -> ());
  if p.noreply then Buffer.add_string b " noreply";
  Buffer.add_string b crlf;
  Buffer.add_string b p.data;
  Buffer.add_string b crlf;
  Buffer.contents b

let encode_command (c : command) : string =
  match c with
  | Get keys -> "get " ^ String.concat " " keys ^ crlf
  | Gets keys -> "gets " ^ String.concat " " keys ^ crlf
  | Set p -> encode_store "set" p ()
  | Add p -> encode_store "add" p ()
  | Replace p -> encode_store "replace" p ()
  | Append p -> encode_store "append" p ()
  | Prepend p -> encode_store "prepend" p ()
  | Cas (p, cas) -> encode_store "cas" p ~cas ()
  | Delete (k, noreply) ->
    "delete " ^ k ^ (if noreply then " noreply" else "") ^ crlf
  | Incr (k, d, noreply) ->
    Printf.sprintf "incr %s %Lu%s%s" k d (if noreply then " noreply" else "")
      crlf
  | Decr (k, d, noreply) ->
    Printf.sprintf "decr %s %Lu%s%s" k d (if noreply then " noreply" else "")
      crlf
  | Touch (k, exp, noreply) ->
    Printf.sprintf "touch %s %d%s%s" k exp (if noreply then " noreply" else "")
      crlf
  | Stats None -> "stats" ^ crlf
  | Stats (Some arg) -> "stats " ^ arg ^ crlf
  | Version -> "version" ^ crlf
  | Flush_all -> "flush_all" ^ crlf
  | Quit -> "quit" ^ crlf
  | Getx _ | Noop ->
    invalid_arg "Ascii.encode_command: binary-only command"
  | Invalid _ -> invalid_arg "Ascii.encode_command: Invalid is not a request"

(* ---- Request parsing (server side) ------------------------------------ *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let find_crlf s from =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i
    else go (i + 1)
  in
  go from

let int_of_token name tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> parse_error "bad %s: %S" name tok

let u64_of_token name tok =
  match parse_u64 tok with
  | Some v -> v
  | None -> parse_error "bad %s: %S" name tok

(* The declared data-block length of a storage command, hardened:
   strict non-negative decimal (no sign, no hex — [int_of_string_opt]
   accepts "0x10" and "-2") and bounded by [max_data_bytes]. A
   negative length used to pass the short-read guard ([after_line +
   len + 2] shrinks!) and crash in [String.sub]; an oversized one pins
   the connection buffer waiting for data that never comes. Neither
   request can be framed (the declared length is the only framing
   information and it is a lie), so both are connection-fatal
   [Parse_error]s, as in real memcached. *)
let data_len_of_token tok =
  if not !parser_hardening then int_of_token "bytes" tok
  else begin
    let n = String.length tok in
    let all_digits =
      let rec go i = i >= n || (tok.[i] >= '0' && tok.[i] <= '9' && go (i + 1)) in
      go 0
    in
    if n = 0 || n > 8 || not all_digits then
      parse_error "bad data chunk length %S" tok;
    let v = int_of_string tok in
    if v > max_data_bytes then parse_error "object too large for cache";
    v
  end

(* Key validation (memcached semantics): over-long keys and keys with
   control characters answer CLIENT_ERROR, uniformly across the get,
   gets, storage, delete, counter and touch arms. The command still
   frames — including any data block — so the reply maps to exactly
   this request and a pipelined batch stays in sync; [Invalid] carries
   the error to the executor. *)
let keys_ok ks = List.for_all validate_key ks

(* Parse a full request out of [s]; returns the command and the number
   of bytes consumed (so a pipelined buffer can be drained). *)
let parse_command (s : string) : command * int =
  match find_crlf s 0 with
  | None ->
    (* an over-long line without CRLF is garbage, not a short read
       (memcached bounds its command-line buffer similarly) *)
    if String.length s > 8192 then parse_error "request line too long"
    else raise Need_more_data
  | Some eol ->
    let line = String.sub s 0 eol in
    let after_line = eol + 2 in
    let store verb rest =
      match rest with
      | key :: flags :: exptime :: len :: tail ->
        let flags = int_of_token "flags" flags in
        let exptime = int_of_token "exptime" exptime in
        let len = data_len_of_token len in
        (* A bad CAS unique must not abort here: the data block is
           still on the wire, so the request frames in full and the
           error answers exactly this command ([Invalid] discipline) —
           aborting would desync every pipelined request behind it. *)
        let cas, tail =
          if verb = "cas" then
            match tail with
            | c :: t -> (Some (parse_u64 c), t)
            | [] -> parse_error "cas: missing unique"
          else (None, tail)
        in
        let noreply =
          match tail with
          | [] -> false
          | [ "noreply" ] -> true
          | t :: _ -> parse_error "%s: trailing %S" verb t
        in
        if String.length s < after_line + len + 2 then raise Need_more_data;
        if String.sub s (after_line + len) 2 <> crlf then
          parse_error "%s: data block not CRLF-terminated" verb;
        let data = String.sub s after_line len in
        let consumed = after_line + len + 2 in
        if not (validate_key key) then (Invalid bad_key_error, consumed)
        else
          let p = { key; flags; exptime; data; noreply } in
          let cmd =
            match verb, cas with
            | "set", None -> Set p
            | "add", None -> Add p
            | "replace", None -> Replace p
            | "append", None -> Append p
            | "prepend", None -> Prepend p
            | "cas", Some (Some c) -> Cas (p, c)
            | "cas", Some None ->
              (* non-numeric or > 2^64-1: framed, answered, not wrapped *)
              Invalid "bad command line format"
            | _ -> parse_error "unknown storage verb %S" verb
          in
          (cmd, consumed)
      | _ -> parse_error "%s: bad argument count" verb
    in
    (match split_ws line with
     | [] -> parse_error "empty command"
     | verb :: rest ->
       (match verb with
        | "get" ->
          if rest = [] then parse_error "get: no keys";
          if keys_ok rest then (Get rest, after_line)
          else (Invalid bad_key_error, after_line)
        | "gets" ->
          if rest = [] then parse_error "gets: no keys";
          if keys_ok rest then (Gets rest, after_line)
          else (Invalid bad_key_error, after_line)
        | "set" | "add" | "replace" | "append" | "prepend" | "cas" ->
          store verb rest
        | "delete" ->
          (match rest with
           | [ k ] | [ k; "noreply" ] ->
             if not (validate_key k) then (Invalid bad_key_error, after_line)
             else (Delete (k, rest <> [ k ]), after_line)
           | _ -> parse_error "delete: bad arguments")
        | "incr" | "decr" ->
          (match rest with
           | k :: d :: tail ->
             let noreply = tail = [ "noreply" ] in
             if not (validate_key k) then (Invalid bad_key_error, after_line)
             else
               (* memcached's wording; a 20-digit operand past 2^64-1
                  lands here too instead of wrapping modulo 2^64 *)
               (match parse_u64 d with
                | None ->
                  (Invalid "invalid numeric delta argument", after_line)
                | Some d ->
                  if verb = "incr" then (Incr (k, d, noreply), after_line)
                  else (Decr (k, d, noreply), after_line))
           | _ -> parse_error "%s: bad arguments" verb)
        | "touch" ->
          (match rest with
           | k :: e :: tail ->
             let noreply = tail = [ "noreply" ] in
             let e = int_of_token "exptime" e in
             if not (validate_key k) then (Invalid bad_key_error, after_line)
             else (Touch (k, e, noreply), after_line)
           | _ -> parse_error "touch: bad arguments")
        | "stats" ->
          (* the argument selects a sub-report; dropping it would turn
             e.g. `stats reset` into a read-only `stats` *)
          (match rest with
           | [] -> (Stats None, after_line)
           | [ arg ] -> (Stats (Some arg), after_line)
           | _ -> parse_error "stats: too many arguments")
        | "version" -> (Version, after_line)
        | "flush_all" -> (Flush_all, after_line)
        | "quit" -> (Quit, after_line)
        | v -> parse_error "unknown command %S" v))

(* ---- Batch (pipelined) parsing --------------------------------------- *)

(* Drain every complete request out of [s] in one pass — the op batch a
   connection's pending bytes amount to. Returns the parsed prefix and
   how many bytes it spans; the unconsumed tail is a partial request
   (or the start of a malformed one). Raises only if the very first
   request is malformed or incomplete — a mid-batch error is left in
   the buffer so the already-parsed prefix executes first and the next
   drain reports the error in sequence. *)
let parse_batch ?(max_ops = max_int) (s : string) : command list * int =
  let n = String.length s in
  let rec go at acc ops =
    if at >= n || ops >= max_ops then (List.rev acc, at)
    else
      match
        parse_command (if at = 0 then s else String.sub s at (n - at))
      with
      | cmd, consumed -> go (at + consumed) (cmd :: acc) (ops + 1)
      | exception Need_more_data -> (List.rev acc, at)
      | exception Parse_error _ when acc <> [] -> (List.rev acc, at)
  in
  go 0 [] 0

(* ---- Response encoding (server side) ----------------------------------- *)

let encode_response (r : response) : string =
  match r with
  | Values { with_cas; vals } ->
    let b = Buffer.create 128 in
    List.iter
      (fun v ->
        (* the CAS unique is a gets-only token; a plain get must not
           leak it *)
        (if with_cas then
           Buffer.add_string b
             (Printf.sprintf "VALUE %s %d %d %Lu%s" v.v_key v.v_flags
                (String.length v.v_data) v.v_cas crlf)
         else
           Buffer.add_string b
             (Printf.sprintf "VALUE %s %d %d%s" v.v_key v.v_flags
                (String.length v.v_data) crlf));
        Buffer.add_string b v.v_data;
        Buffer.add_string b crlf)
      vals;
    Buffer.add_string b ("END" ^ crlf);
    Buffer.contents b
  | Stored -> "STORED" ^ crlf
  | Not_stored -> "NOT_STORED" ^ crlf
  | Exists -> "EXISTS" ^ crlf
  | Not_found -> "NOT_FOUND" ^ crlf
  | Deleted -> "DELETED" ^ crlf
  | Touched -> "TOUCHED" ^ crlf
  | Number n -> Printf.sprintf "%Lu%s" n crlf
  | Stats_reply kvs ->
    let b = Buffer.create 128 in
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "STAT %s %s%s" k v crlf))
      kvs;
    Buffer.add_string b ("END" ^ crlf);
    Buffer.contents b
  | Reset -> "RESET" ^ crlf
  | Version_reply v -> "VERSION " ^ v ^ crlf
  | Ok -> "OK" ^ crlf
  | Error -> "ERROR" ^ crlf
  | Client_error m -> "CLIENT_ERROR " ^ m ^ crlf
  | Server_error m -> "SERVER_ERROR " ^ m ^ crlf

(* Encode a batch's replies into one output buffer — one write() per
   drained batch instead of one per op. [suppress_reply] filters
   noreply storage ops. *)
let encode_batch (pairs : (command * response) list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun (cmd, resp) ->
      if not (suppress_reply cmd resp) then
        Buffer.add_string b (encode_response resp))
    pairs;
  Buffer.contents b

(* ---- Response parsing (client side) -------------------------------------- *)

let parse_response (s : string) : response =
  let rec lines from acc =
    match find_crlf s from with
    | None -> List.rev acc
    | Some eol -> collect from eol acc
  and collect from eol acc =
    let line = String.sub s from (eol - from) in
    if String.length line >= 6 && String.sub line 0 6 = "VALUE " then begin
      match split_ws line with
      | _ :: key :: flags :: len :: rest ->
        let len = int_of_token "bytes" len in
        let cas, has_cas =
          match rest with
          | [ c ] -> (u64_of_token "cas" c, true)
          | _ -> (0L, false)
        in
        let data_start = eol + 2 in
        if String.length s < data_start + len + 2 then
          parse_error "VALUE data truncated";
        let data = String.sub s data_start len in
        lines (data_start + len + 2)
          (`Value
             ( has_cas,
               { v_key = key; v_flags = int_of_token "flags" flags;
                 v_cas = cas; v_data = data } )
           :: acc)
      | _ -> parse_error "malformed VALUE line"
    end
    else lines (eol + 2) (`Line line :: acc)
  in
  match lines 0 [] with
  | [ `Line "STORED" ] -> Stored
  | [ `Line "NOT_STORED" ] -> Not_stored
  | [ `Line "EXISTS" ] -> Exists
  | [ `Line "NOT_FOUND" ] -> Not_found
  | [ `Line "DELETED" ] -> Deleted
  | [ `Line "TOUCHED" ] -> Touched
  | [ `Line "RESET" ] -> Reset
  | [ `Line "OK" ] -> Ok
  | [ `Line "ERROR" ] -> Error
  | items ->
    (match items with
     | [ `Line l ] when String.length l >= 8 && String.sub l 0 8 = "VERSION " ->
       Version_reply (String.sub l 8 (String.length l - 8))
     | [ `Line l ]
       when String.length l >= 13 && String.sub l 0 13 = "CLIENT_ERROR " ->
       Client_error (String.sub l 13 (String.length l - 13))
     | [ `Line l ]
       when String.length l >= 13 && String.sub l 0 13 = "SERVER_ERROR " ->
       Server_error (String.sub l 13 (String.length l - 13))
     | [ `Line l ] when parse_u64 l <> None -> Number (Option.get (parse_u64 l))
     | _ ->
       (* VALUE* END, or STAT* END *)
       let rec gather items vals with_cas stats saw_end =
         match items with
         | [] ->
           if not saw_end then parse_error "missing END";
           if stats <> [] then Stats_reply (List.rev stats)
           else Values { with_cas; vals = List.rev vals }
         | `Value (has_cas, v) :: rest ->
           gather rest (v :: vals) (with_cas || has_cas) stats saw_end
         | `Line "END" :: rest -> gather rest vals with_cas stats true
         | `Line l :: rest
           when String.length l >= 5 && String.sub l 0 5 = "STAT " ->
           let body = String.sub l 5 (String.length l - 5) in
           (match String.index_opt body ' ' with
            | Some i ->
              gather rest vals with_cas
                ((String.sub body 0 i,
                  String.sub body (i + 1) (String.length body - i - 1))
                 :: stats)
                saw_end
            | None ->
              gather rest vals with_cas ((body, "") :: stats) saw_end)
         | `Line l :: _ -> parse_error "unexpected line %S" l
       in
       gather items [] false [] false)

(* One response frame out of a pipelined reply buffer: the response
   and the bytes it spans. A frame is a single line unless the first
   line opens a VALUE/STAT block, which runs through its END line. *)
let parse_response_at (s : string) ~(at : int) : response * int =
  let n = String.length s in
  let line_end i =
    match find_crlf s i with
    | None -> raise Need_more_data
    | Some eol -> eol
  in
  let starts p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let eol = line_end at in
  let first = String.sub s at (eol - at) in
  let fin stop = (parse_response (String.sub s at (stop - at)), stop - at) in
  if starts "VALUE " first || starts "STAT " first || first = "END" then
    let rec scan i =
      let eol = line_end i in
      let line = String.sub s i (eol - i) in
      if line = "END" then eol + 2
      else if starts "VALUE " line then
        match split_ws line with
        | _ :: _ :: _ :: len :: _ ->
          let len = int_of_token "bytes" len in
          let next = eol + 2 + len + 2 in
          if next > n then raise Need_more_data;
          scan next
        | _ -> parse_error "malformed VALUE line"
      else scan (eol + 2)
    in
    fin (scan at)
  else fin (eol + 2)
