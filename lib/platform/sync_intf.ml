(** Execution-substrate abstraction.

    Every concurrent component in this project (the store's critical
    sections, the socket transport, the baseline server, the YCSB
    runner) is a functor over {!S} so the same code runs in two modes:

    - {!Real_sync}: genuine OS threads, wall-clock time — used by the
      runnable examples and the interactive binaries;
    - [Vm.Sync]: simulated threads on the virtual-time machine — used
      by the benchmark harness to reproduce the paper's multicore
      results deterministically on this single-core box.

    [advance] is the bridge between the two: store code calls it with
    the modeled CPU cost (ns) of the work it just did. In real mode it
    is a no-op (the work itself took real time); in VM mode it advances
    the simulated thread's clock, which is what contention and
    throughput are computed from. *)

module type S = sig
  val name : string

  (** {1 Time and modeled cost} *)

  val advance : int -> unit
  (** Charge the calling thread [ns] nanoseconds of CPU work. *)

  val now_ns : unit -> int
  (** Monotonic time: wall-clock ns in real mode, virtual ns in VM mode. *)

  val sleep_ns : int -> unit
  (** Block (without consuming CPU in VM mode) for [ns]. *)

  (** {1 Threads} *)

  type thread

  val spawn : ?name:string -> (unit -> unit) -> thread
  val join : thread -> unit

  val self_id : unit -> int
  (** Small integer identifying the calling thread; stable for its
      lifetime and distinct among live threads. *)

  val yield : unit -> unit

  (** {1 Mutual exclusion}

      Mutexes here model the PTHREAD_PROCESS_SHARED locks of the paper:
      any simulated process may create and take them. *)

  type mutex

  val mutex : ?cls:string -> unit -> mutex
  (** [cls] is an optional lock-class label consumed by diagnostic
      wrappers (see {!Lockdep}): mutexes sharing a class are expected
      to be acquired in a consistent global order relative to other
      classes. Plain substrates ignore it. *)

  val lock : mutex -> unit
  val unlock : mutex -> unit

  (** {1 Bounded FIFO channels}

      The building block for the socket transport and the server's
      per-worker event queues. *)

  type 'a chan

  exception Closed

  val chan : ?cap:int -> unit -> 'a chan
  (** [cap] defaults to a large value (effectively unbounded). *)

  val send : 'a chan -> 'a -> unit
  (** Blocks while the channel is full. Raises {!Closed} if closed. *)

  val recv : 'a chan -> 'a
  (** Blocks while the channel is empty. Raises {!Closed} once the
      channel is closed and drained. *)

  val try_recv : 'a chan -> 'a option
  (** Non-blocking receive; [None] when empty. Raises {!Closed} once
      the channel is closed and drained. *)

  val close : 'a chan -> unit
end
