(** Calibrated CPU-cost constants, in nanoseconds.

    The virtual-time benchmarks charge these costs via [Sync.advance];
    the constants are calibrated so that the single-threaded latencies
    of Figure 5 of the paper come out at the reported values, and the
    throughput figures (6-9) then follow from structure (thread counts,
    lock contention, syscall path length) rather than further tuning.
    See EXPERIMENTS.md for the calibration notes.

    All values model the paper's testbed: a 2.5 GHz Intel Xeon Gold
    5215, Unix-domain-socket messaging with a 3.3-9.6 us minimum round
    trip, and a ~40 ns empty Hodor call. *)

type t = {
  (* Kernel interaction (baseline server path). *)
  mutable syscall_send : int;      (** write(2) on a Unix socket *)
  mutable syscall_recv : int;      (** read(2) on a Unix socket *)
  mutable syscall_select : int;    (** select/epoll returning ready *)
  mutable ctx_switch : int;        (** context switch: total added latency *)
  mutable ctx_switch_cpu : int;    (** CPU portion of a context switch *)
  mutable wakeup : int;            (** waking a blocked peer *)
  (* Wire protocol and client library (baseline path). *)
  mutable proto_parse : int;       (** server-side request parse *)
  mutable proto_pack : int;        (** server-side response pack *)
  mutable client_pack : int;       (** libmemcached request marshal *)
  mutable client_unpack : int;     (** libmemcached response parse *)
  mutable client_incr_extra : int; (** libmemcached incr/decr slow path *)
  (* Protected-library entry (plib path). *)
  mutable trampoline_hodor : int;  (** full Hodor trampoline, round trip *)
  mutable trampoline_plain : int;  (** plain indirect call, round trip *)
  mutable wrpkru : int;            (** one pkru write *)
  mutable pkey_mprotect : int;
  (** re-tagging one memory range to another pkey on a vpkey slot
      miss or eviction — libmpk's dominant multiplexing cost (a
      kernel page-table walk, ~1 us/call in their measurements) *)
  (* Store internals (both paths run this code). *)
  mutable hash_op : int;           (** murmur3 of a short key *)
  mutable bucket_probe : int;      (** one chain-node visit *)
  mutable key_cmp_per_16b : int;   (** key comparison, per 16 bytes *)
  mutable memcpy_per_256b : int;   (** bulk copy, per 256 bytes *)
  mutable alloc_small : int;       (** allocator fast path *)
  mutable alloc_per_kb : int;      (** extra per KB for large blocks *)
  mutable alloc_bump : int;
  (** bump-arena hot-tier allocation: one pointer increment in a
      thread-private block, no size-class or freelist traffic *)
  mutable malloc_out : int;   (** libc malloc of the caller's result buffer *)
  mutable free_cost : int;
  mutable lock_uncontended : int;  (** acquire+release, no contention *)
  mutable lock_handoff : int;
  (** extra cost of acquiring a lock another thread was just holding:
      the cache-line transfer plus wake-up path *)
  mutable lru_update : int;        (** LRU list splice under its lock *)
  mutable stats_update : int;      (** one scattered-slot bump *)
  mutable numeric_parse : int;     (** incr/decr text-to-int-to-text *)
  mutable coherence_ns : int;
  (** extra per-operation cost for each additional thread concurrently
      inside the store: cache-coherence and critical-section traffic on
      the shared structures — the contention the paper names as the
      protected library's bottleneck (§4.1) *)
  mutable wire_per_256b : int;
  (** kernel copy cost per 256 B of request payload on the socket
      write path (what separates Set 5 KB from Set 128 B in Fig. 5) *)
  mutable ycsb_driver : int;
  (** per-op overhead of the YCSB (Java) client harness itself,
      calibrated so the throughput figures peak where the paper's do;
      charged by the benchmark's DB adapters, not by the store *)
  mutable ring_slot : int;
  (** shared-ring slot bookkeeping per message: the header loads and
      the sequence-stamp store around the payload memcpy — cache-line
      traffic, no kernel involvement *)
}

let default () = {
  syscall_send = 1600;
  syscall_recv = 1600;
  syscall_select = 900;
  ctx_switch = 3000;
  ctx_switch_cpu = 800;
  wakeup = 600;
  proto_parse = 600;
  proto_pack = 500;
  client_pack = 500;
  client_unpack = 500;
  client_incr_extra = 44000;
  trampoline_hodor = 40;
  trampoline_plain = 5;
  wrpkru = 12;
  pkey_mprotect = 1100;
  hash_op = 60;
  bucket_probe = 10;
  key_cmp_per_16b = 3;
  memcpy_per_256b = 9;
  alloc_small = 520;
  alloc_per_kb = 24;
  alloc_bump = 60;
  malloc_out = 140;
  free_cost = 35;
  lock_uncontended = 18;
  lock_handoff = 350;
  lru_update = 180;
  stats_update = 12;
  numeric_parse = 1250;
  coherence_ns = 220;
  wire_per_256b = 190;
  ycsb_driver = 2000;
  ring_slot = 30;
}

let current = default ()

let reset () =
  let d = default () in
  current.syscall_send <- d.syscall_send;
  current.syscall_recv <- d.syscall_recv;
  current.syscall_select <- d.syscall_select;
  current.ctx_switch <- d.ctx_switch;
  current.ctx_switch_cpu <- d.ctx_switch_cpu;
  current.wakeup <- d.wakeup;
  current.proto_parse <- d.proto_parse;
  current.proto_pack <- d.proto_pack;
  current.client_pack <- d.client_pack;
  current.client_unpack <- d.client_unpack;
  current.client_incr_extra <- d.client_incr_extra;
  current.trampoline_hodor <- d.trampoline_hodor;
  current.trampoline_plain <- d.trampoline_plain;
  current.wrpkru <- d.wrpkru;
  current.pkey_mprotect <- d.pkey_mprotect;
  current.hash_op <- d.hash_op;
  current.bucket_probe <- d.bucket_probe;
  current.key_cmp_per_16b <- d.key_cmp_per_16b;
  current.memcpy_per_256b <- d.memcpy_per_256b;
  current.alloc_small <- d.alloc_small;
  current.alloc_per_kb <- d.alloc_per_kb;
  current.alloc_bump <- d.alloc_bump;
  current.malloc_out <- d.malloc_out;
  current.free_cost <- d.free_cost;
  current.lock_uncontended <- d.lock_uncontended;
  current.lock_handoff <- d.lock_handoff;
  current.lru_update <- d.lru_update;
  current.stats_update <- d.stats_update;
  current.numeric_parse <- d.numeric_parse;
  current.coherence_ns <- d.coherence_ns;
  current.wire_per_256b <- d.wire_per_256b;
  current.ycsb_driver <- d.ycsb_driver;
  current.ring_slot <- d.ring_slot

(* Derived helpers used throughout the store code. *)

let memcpy_cost bytes =
  if bytes <= 0 then 0
  else current.memcpy_per_256b * ((bytes + 255) / 256)

let key_cmp_cost bytes =
  if bytes <= 0 then 0
  else current.key_cmp_per_16b * ((bytes + 15) / 16)

let alloc_cost bytes =
  current.alloc_small
  + if bytes > 1024 then current.alloc_per_kb * (bytes / 1024) else 0

let wire_cost bytes =
  if bytes <= 0 then 0
  else current.wire_per_256b * ((bytes + 255) / 256)
