(** {!Sync_intf.S} over real OS threads and wall-clock time.

    Used by the runnable examples and binaries. [advance] is a no-op:
    real work takes real time. *)

let name = "real"

let advance (_ns : int) = ()

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let sleep_ns ns = if ns > 0 then Thread.delay (float_of_int ns /. 1e9)

type thread = Thread.t

let spawn ?name:_ f = Thread.create f ()

let join = Thread.join

let self_id () = Thread.id (Thread.self ())

let yield = Thread.yield

type mutex = Mutex.t

let mutex ?cls:_ () = Mutex.create ()

let lock = Mutex.lock

let unlock = Mutex.unlock

type 'a chan = {
  queue : 'a Queue.t;
  cap : int;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

exception Closed

let chan ?(cap = max_int) () =
  { queue = Queue.create (); cap; m = Mutex.create ();
    not_empty = Condition.create (); not_full = Condition.create ();
    closed = false }

let send c v =
  Mutex.lock c.m;
  let rec wait () =
    if c.closed then begin Mutex.unlock c.m; raise Closed end;
    if Queue.length c.queue >= c.cap then begin
      Condition.wait c.not_full c.m;
      wait ()
    end
  in
  wait ();
  Queue.push v c.queue;
  Condition.signal c.not_empty;
  Mutex.unlock c.m

let recv c =
  Mutex.lock c.m;
  let rec wait () =
    match Queue.take_opt c.queue with
    | Some v ->
      Condition.signal c.not_full;
      Mutex.unlock c.m;
      v
    | None ->
      if c.closed then begin Mutex.unlock c.m; raise Closed end;
      Condition.wait c.not_empty c.m;
      wait ()
  in
  wait ()

let try_recv c =
  Mutex.lock c.m;
  let r = Queue.take_opt c.queue in
  (match r with
   | Some _ -> Condition.signal c.not_full
   | None -> if c.closed then begin Mutex.unlock c.m; raise Closed end);
  Mutex.unlock c.m;
  r

let close c =
  Mutex.lock c.m;
  c.closed <- true;
  Condition.broadcast c.not_empty;
  Condition.broadcast c.not_full;
  Mutex.unlock c.m
