(** Lock-order validator ("lockdep") over any {!Sync_intf.S}.

    [Make (S)] is itself a {!Sync_intf.S} whose mutexes carry a
    {e lock class} (the [?cls] label given at creation; anonymous
    mutexes each get a singleton class). At every [lock] it checks,
    against the set of locks the calling thread already holds:

    - {b self-deadlock}: re-acquiring a mutex already held;
    - {b same-class order}: two locks of one class (e.g. the store's
      hash stripes) may nest only in increasing creation-rank order —
      the discipline [resize]/[fold_keys] follow by sweeping stripes in
      array index order;
    - {b cross-class order}: each observed nesting [held-class →
      new-class] becomes an edge in a global class graph; an
      acquisition whose class can already reach a held class through
      recorded edges closes a cycle (e.g. item-stripe → LRU in one
      thread, LRU → item-stripe in another) and is flagged even if the
      two threads never actually collide in this run.

    Violations raise {!Violation} at the offending acquire (before
    blocking on the real lock) so the stack points at the bug, and are
    also recorded for post-run inspection via {!violations}.

    The registry is global to the wrapped substrate and guarded by a
    stdlib [Mutex] — never an [S] primitive, so it works identically
    over OS threads and VM fibers (whose effects may not be performed
    while holding it). Call {!reset} between independent tests. *)

exception Violation of string

(* Unsealed: satisfies {!Sync_intf.S} structurally while also exposing
   [reset]/[violations] to the test harness. *)
module Make (S : Sync_intf.S) = struct
  let name = "lockdep:" ^ S.name

  let advance = S.advance
  let now_ns = S.now_ns
  let sleep_ns = S.sleep_ns

  type thread = S.thread

  let spawn = S.spawn
  let join = S.join
  let self_id = S.self_id
  let yield = S.yield

  type mutex = { m : S.mutex; id : int; cls : string; rank : int }

  (* ---- global registry ------------------------------------------- *)

  let reg_lock = Mutex.create ()

  let next_id = ref 0

  (* per-class creation counter: the rank a new mutex of that class gets *)
  let class_ranks : (string, int ref) Hashtbl.t = Hashtbl.create 16

  (* tid -> locks currently held, innermost first *)
  let held : (int, mutex list) Hashtbl.t = Hashtbl.create 64

  (* cls -> set of classes ever acquired while cls was held *)
  let edges : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16

  let violation_log : string list ref = ref []

  let with_reg f =
    Mutex.lock reg_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

  let reset () =
    with_reg (fun () ->
      Hashtbl.reset class_ranks;
      Hashtbl.reset held;
      Hashtbl.reset edges;
      violation_log := [])

  let violations () = with_reg (fun () -> List.rev !violation_log)

  (* ---- mutex operations ------------------------------------------ *)

  let mutex ?cls () =
    with_reg (fun () ->
      let id = !next_id in
      incr next_id;
      let cls =
        match cls with Some c -> c | None -> Printf.sprintf "anon#%d" id
      in
      let rank_ref =
        match Hashtbl.find_opt class_ranks cls with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.add class_ranks cls r;
          r
      in
      let rank = !rank_ref in
      incr rank_ref;
      { m = S.mutex ~cls (); id; cls; rank })

  (* Is [dst] reachable from [src] in the recorded nesting graph? *)
  let reaches src dst =
    let seen = Hashtbl.create 8 in
    let rec go c =
      String.equal c dst
      || (not (Hashtbl.mem seen c))
         && begin
           Hashtbl.add seen c ();
           match Hashtbl.find_opt edges c with
           | None -> false
           | Some succ ->
             Hashtbl.fold (fun s () acc -> acc || go s) succ false
         end
    in
    go src

  let check_acquire tid m =
    let hs = Option.value ~default:[] (Hashtbl.find_opt held tid) in
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          let msg = Printf.sprintf "lockdep: thread %d: %s" tid msg in
          violation_log := msg :: !violation_log;
          raise (Violation msg))
        fmt
    in
    List.iter
      (fun h ->
        if h.id = m.id then
          fail "self-deadlock on %s[%d] (already held)" m.cls m.rank;
        if String.equal h.cls m.cls && h.rank >= m.rank then
          fail
            "same-class order inversion: acquiring %s[%d] while holding \
             %s[%d]"
            m.cls m.rank h.cls h.rank)
      hs;
    (* Cross-class cycle: would the new edges held→m close a loop? *)
    List.iter
      (fun h ->
        if (not (String.equal h.cls m.cls)) && reaches m.cls h.cls then
          fail
            "lock-order inversion: acquiring class %s while holding %s, \
             but %s -> %s nesting was already observed"
            m.cls h.cls m.cls h.cls)
      hs;
    (* Record the nesting we are about to create. *)
    List.iter
      (fun h ->
        if not (String.equal h.cls m.cls) then begin
          let succ =
            match Hashtbl.find_opt edges h.cls with
            | Some s -> s
            | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.add edges h.cls s;
              s
          in
          if not (Hashtbl.mem succ m.cls) then Hashtbl.add succ m.cls ()
        end)
      hs

  let lock m =
    let tid = self_id () in
    with_reg (fun () -> check_acquire tid m);
    S.lock m.m;
    (* Register held only after the (possibly blocking) acquire, so a
       thread parked on a contended lock is not reported as holding
       it. The ordering check above already ran, so no violation can
       slip through the window. *)
    with_reg (fun () ->
      let hs = Option.value ~default:[] (Hashtbl.find_opt held tid) in
      Hashtbl.replace held tid (m :: hs))

  let unlock m =
    let tid = self_id () in
    with_reg (fun () ->
      let hs = Option.value ~default:[] (Hashtbl.find_opt held tid) in
      if not (List.exists (fun h -> h.id = m.id) hs) then begin
        let msg =
          Printf.sprintf
            "lockdep: thread %d: unlock of %s[%d] which it does not hold"
            tid m.cls m.rank
        in
        violation_log := msg :: !violation_log;
        raise (Violation msg)
      end;
      Hashtbl.replace held tid (List.filter (fun h -> h.id <> m.id) hs));
    S.unlock m.m

  (* ---- channels: passed straight through ------------------------- *)

  type 'a chan = 'a S.chan

  exception Closed = S.Closed

  let chan = S.chan
  let send = S.send
  let recv = S.recv
  let try_recv = S.try_recv
  let close = S.close
end
