(** The attacker's half of the Garmr gadget story: simulate a hijacked
    indirect branch landing at an arbitrary {e byte} offset of a loaded
    binary's image.

    The loader's legacy scan thinks in instructions: it breakpoints the
    addresses of stray pkru-writing {e instructions}. But the hardware
    fetches bytes, not instructions — a corrupted function pointer can
    land execution in the middle of an immediate or a data island, and
    if the bytes there happen to spell [wrpkru] (0F 01 EF) or
    [xrstor] (0F AE /5), pkru is rewritten from a location no
    breakpoint covers. Page gating is the one instruction-granular
    defense that does stop this (the whole page faults on fetch), so
    the simulation honors it. *)

type landing =
  | Trapped of string
      (** a defense caught the fetch: exact-address breakpoint (only
          when the jump landed exactly on the instruction start) or a
          gated page (any byte of it) *)
  | Pkru_written of int
      (** the bytes at the landing site decode as a pkru-writing
          gadget and nothing trapped it: the register was rewritten
          with the attacker's value — the breach. The write is
          actually performed on the calling thread's register so the
          caller can demonstrate what the forged rights now reach. *)
  | Harmless
      (** the landing bytes decode as something else (or a truncated
          pattern): the attacker got nothing this time *)

let pp_landing = function
  | Trapped m -> "trapped: " ^ m
  | Pkru_written v -> Printf.sprintf "pkru written: %08x" v
  | Harmless -> "harmless"

(* Jump into [b]'s image at [byte_off] and decode greedily from there,
   as the hardware would. *)
let jump_into (dr : Pku.Debug_regs.t) (b : Pku.Insn.binary) ~(byte_off : int) :
    landing =
  let img = Pku.Insn.byte_image b in
  if byte_off < 0 || byte_off >= String.length img then Harmless
  else
    match Pku.Insn.insn_at_byte b ~byte_off with
    | None -> Harmless
    | Some (addr, _) ->
      let offs = Pku.Insn.byte_offsets b in
      let name = b.Pku.Insn.binary_name in
      let at_insn_start = offs.(addr) = byte_off in
      if at_insn_start && Pku.Debug_regs.trips dr ~binary:name ~addr then
        Trapped (Printf.sprintf "breakpoint at %s+%d" name addr)
      else if Pku.Debug_regs.page_trips dr ~binary:name ~addr then
        (* the page-permission fallback faults the fetch wherever in
           the page it lands — the one legacy defense gadgets do not
           slip past *)
        Trapped (Printf.sprintf "gated page %d of %s"
                   (Pku.Debug_regs.page_of_addr addr) name)
      else
        let gadget =
          List.find_opt
            (fun (off, _) -> off = byte_off)
            (Pku.Insn.find_gadgets img)
        in
        (match gadget with
         | None -> Harmless
         | Some (off, kind) ->
           (match Pku.Insn.gadget_value img ~off kind with
            | None -> Harmless (* truncated pattern: the fetch faults *)
            | Some v ->
              Pku.Pkru.wrpkru v;
              Pkru_written v))

(* Sweep every byte of the image: the strongest position an attacker
   with a corrupted function pointer can hope for. Returns the first
   successful landing, if any. *)
let sweep (dr : Pku.Debug_regs.t) (b : Pku.Insn.binary) : (int * int) option =
  let img = Pku.Insn.byte_image b in
  let n = String.length img in
  let rec go off =
    if off >= n then None
    else
      match jump_into dr b ~byte_off:off with
      | Pkru_written v -> Some (off, v)
      | Trapped _ | Harmless -> go (off + 1)
  in
  go 0

(* ---- Gadget-bearing payload construction --------------------------- *)

(* A data island whose bytes contain a wrpkru gadget for [pkru_value]
   dressed as a 64-bit constant: the 2 leading bytes play the role of
   a [mov rax, imm64] opcode, so to the instruction-granular scan this
   is plain data; to a byte-granular fetch, offset +2 is a live
   wrpkru. *)
let wrpkru_island ~pkru_value =
  "\x48\xb8" ^ Pku.Insn.wrpkru_pattern ^ Pku.Insn.le32 pkru_value ^ "\x00"

let wrpkru_island_gadget_delta = 2
(** byte offset of the gadget within {!wrpkru_island}'s bytes *)

let xrstor_island ~pkru_value =
  "\x48\xb8"
  ^ Pku.Insn.xrstor_prefix
  ^ String.make 1 Pku.Insn.xrstor_modrm
  ^ Pku.Insn.le32 pkru_value ^ "\x00"

let xrstor_island_gadget_delta = 2
