(** Seeded grammar-aware fuzzer for the protocol parsers, aimed at the
    batch plane.

    Each case plays an adversarial client (connection A) against a real
    store that also serves an honest victim (connection B, which stored
    a secret under its own key before the attack). The attacker's
    input starts as a {e valid} pipelined batch — built with the real
    encoders, so it exercises the deep parser paths — and is then
    mutated a few seeded ways: truncation, byte flips, CRLF/header
    corruption, splicing of hostile length fields, slice duplication.

    The oracles, per case:
    - {b no crash}: draining the input must raise nothing but the
      protocol's own [Parse_error]/[Need_more_data];
    - {b no desync}: the drain loop terminates and every parser step
      makes progress;
    - {b no cross-connection leak}: the victim's secret bytes never
      appear in the attacker's reply stream;
    - {b no store damage}: afterwards the store still passes
      [check_invariants], a fresh connection round-trips a sentinel,
      and the victim's secret is still intact.

    Everything is deterministic in the seed, so any failing case is
    replayable byte-for-byte; killer inputs graduate into
    [test/corpus/]. *)

module P = Mc_protocol.Types
module A = Mc_protocol.Ascii
module B = Mc_protocol.Binary
module E =
  Mc_server.Executor.Make (Mc_core.Private_memory) (Mc_core.Slab)
    (Platform.Real_sync)

type proto = Ascii | Binary

let proto_string = function Ascii -> "ascii" | Binary -> "binary"

(* Corpus files are named "<proto>-<what>": the prefix picks the
   parser the bytes are replayed against. *)
let proto_of_filename name =
  if String.length name >= 6 && String.sub name 0 6 = "ascii-" then Some Ascii
  else if String.length name >= 7 && String.sub name 0 7 = "binary-" then
    Some Binary
  else None

(* "<proto>-tenant-<what>" additionally replays through the tenant
   harness: the input drains on a connection bound to tenant A while
   tenant B's secret sits in its own namespace. *)
let tenant_a = "ta"
let tenant_b = "tb"

let tenant_of_filename name =
  let pat = "-tenant-" in
  let n = String.length pat and h = String.length name in
  let rec find i = i + n <= h && (String.sub name i n = pat || find (i + 1)) in
  if find 0 then Some tenant_a else None

type failure =
  | Crash of string  (** parser raised something uncaught *)
  | Desync of string  (** drain loop stopped making progress *)
  | Leak of string  (** another connection's data in our replies *)
  | Store_damage of string  (** invariants or other keys broken *)

let failure_string = function
  | Crash m -> "crash: " ^ m
  | Desync m -> "desync: " ^ m
  | Leak m -> "leak: " ^ m
  | Store_damage m -> "store damage: " ^ m

(* ---- The target ----------------------------------------------------- *)

let secret_key = "rt-secret"
let secret_value = "REDTEAM-SECRET-d41d8cd98f00b204e9800998"

let fresh_store () =
  let arena = Mc_core.Private_memory.create ~limit:(16 lsl 20) in
  let slab = Mc_core.Slab.create ~arena ~mem_limit:(8 lsl 20) in
  let cfg =
    { Mc_core.Store.default_config with
      hashpower = 6; lock_count = 4; lru_count = 2; stats_slots = 4 }
  in
  E.Store.create ~mem:arena ~alloc:slab cfg

(* The per-connection drain loop, shaped like Server's: reassembly
   buffer, parse a batch, execute it in one go, encode replies
   honoring suppression, repeat until the buffer yields nothing
   more. A Parse_error answers CLIENT_ERROR and drops the rest of the
   buffer, exactly as the server does before killing the connection. *)
let drain ?tenant store proto (input : string) : (string, failure) result =
  let parse_batch =
    match proto with Ascii -> A.parse_batch | Binary -> B.parse_batch
  in
  let encode_reply cmd resp =
    match proto with
    | Ascii -> A.encode_response resp
    | Binary -> B.encode_reply ~for_cmd:cmd resp
  in
  let parse_error_reply m =
    match proto with
    | Ascii -> A.encode_response (P.Client_error m)
    | Binary -> ""  (* binary servers just drop the connection *)
  in
  let buf = ref input in
  let out = Buffer.create 256 in
  (* Each iteration must consume at least one byte, so the input
     length bounds the loop; beyond it the parser is treading water. *)
  let fuel = ref (String.length input + 8) in
  let result = ref (Ok ()) in
  (try
     let continue = ref true in
     while !continue && !buf <> "" do
       decr fuel;
       if !fuel < 0 then begin
         result := Error (Desync "drain loop exceeded its input-length bound");
         continue := false
       end
       else
         match parse_batch !buf with
         | [], _ ->
           (* incomplete trailing request: a real server would wait
              for bytes that will never come *)
           continue := false
         | cmds, consumed ->
           if consumed <= 0 then begin
             result :=
               Error
                 (Desync
                    (Printf.sprintf
                       "parser returned %d commands but consumed 0 bytes"
                       (List.length cmds)));
             continue := false
           end
           else begin
             buf := String.sub !buf consumed (String.length !buf - consumed);
             (* tenant mode: the server's host-side rewrite, applied
                exactly as Server.worker_loop would for a bound conn *)
             let cmds =
               match tenant with
               | None -> cmds
               | Some name ->
                 List.map
                   (Mc_server.Executor.scope_command ~prefix:(name ^ "/"))
                   cmds
             in
             let pairs = E.execute_batch store cmds in
             let pairs =
               match tenant with
               | None -> pairs
               | Some name ->
                 List.map
                   (fun (c, r) ->
                     ( c,
                       Mc_server.Executor.unscope_response
                         ~prefix:(name ^ "/") r ))
                   pairs
             in
             List.iter
               (fun (cmd, resp) ->
                 if not (P.suppress_reply cmd resp) then
                   Buffer.add_string out (encode_reply cmd resp))
               pairs
           end
         | exception P.Parse_error m ->
           Buffer.add_string out (parse_error_reply m);
           buf := "";
           continue := false
         | exception P.Need_more_data -> continue := false
     done
   with e -> result := Error (Crash (Printexc.to_string e)));
  match !result with Ok () -> Ok (Buffer.contents out) | Error f -> Error f

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let tenant_secret_value = "TENANT-B-SECRET-9f86d081884c7d659a2f"

(* Run one attacker input against a fresh store and apply every
   oracle. This is the unit the corpus replays. In tenant mode the
   victim's secret lives in tenant B's namespace (as B's own scoped
   connection stored it) and the attacker drains as tenant A — the
   leak oracle then catches any key that escapes A's prefix. *)
let run_input ?tenant proto (input : string) : failure list =
  let store = fresh_store () in
  let vic_key, vic_value =
    match tenant with
    | None -> (secret_key, secret_value)
    | Some _ -> (tenant_b ^ "/secret", tenant_secret_value)
  in
  (* connection B, the honest victim, stores its secret first *)
  (match
     E.execute store
       (P.Set
          { P.key = vic_key; flags = 7; exptime = 0; data = vic_value;
            noreply = false })
   with
   | P.Stored -> ()
   | _ -> failwith "fuzz harness: secret not stored");
  let failures = ref [] in
  (match drain ?tenant store proto input with
   | Error f -> failures := [ f ]
   | Ok replies ->
     if contains ~needle:vic_value replies then
       failures :=
         [ Leak "victim's secret appeared in the attacker's reply stream" ]);
  (* post-mortem: the store must still be whole *)
  (try
     E.Store.check_invariants store;
     (match
        E.execute store
          (P.Set
             { P.key = "rt-sentinel"; flags = 0; exptime = 0; data = "alive";
               noreply = false })
      with
      | P.Stored -> ()
      | _ ->
        failures := Store_damage "sentinel set failed" :: !failures);
     (match E.Store.get store "rt-sentinel" with
      | Some g when g.Mc_core.Store.value = "alive" -> ()
      | _ -> failures := Store_damage "sentinel does not read back" :: !failures);
     match E.Store.get store vic_key with
     | Some g when g.Mc_core.Store.value = vic_value -> ()
     | Some _ ->
       failures := Store_damage "victim's secret was altered" :: !failures
     | None ->
       (* legitimate only if the attacker's batch could delete it — it
          cannot: the generator never emits the victim's key, and a
          mutated key that collides would fail validation first *)
       failures := Store_damage "victim's secret vanished" :: !failures
   with e ->
     failures :=
       Store_damage ("check_invariants: " ^ Printexc.to_string e) :: !failures);
  List.rev !failures

(* ---- Grammar-aware generation --------------------------------------- *)

let keys = [| "k0"; "k1"; "k2"; "k3"; "k4"; "k5"; "k6"; "k7" |]

let gen_key rng = keys.(Random.State.int rng (Array.length keys))

let gen_data rng =
  let n = 1 + Random.State.int rng 48 in
  String.init n (fun _ -> Char.chr (0x21 + Random.State.int rng 0x5d))

let gen_params rng =
  { P.key = gen_key rng; flags = Random.State.int rng 0xffff; exptime = 0;
    data = gen_data rng;
    noreply = Random.State.bool rng }

(* One command, valid by construction. Binary mode avoids the two
   shapes its encoder rejects (multi-key get, Invalid). *)
let gen_command rng proto : P.command =
  match Random.State.int rng 10 with
  | 0 | 1 -> P.Set (gen_params rng)
  | 2 -> P.Add (gen_params rng)
  | 3 -> P.Replace (gen_params rng)
  | 4 -> P.Append { (gen_params rng) with P.noreply = false }
  | 5 -> P.Delete (gen_key rng, Random.State.bool rng)
  | 6 -> P.Incr (gen_key rng, Int64.of_int (Random.State.int rng 100), false)
  | 7 -> P.Touch (gen_key rng, 0, Random.State.bool rng)
  | 8 ->
    (match proto with
     | Ascii ->
       let n = 1 + Random.State.int rng 3 in
       P.Get (List.init n (fun _ -> gen_key rng))
     | Binary ->
       P.Getx
         { g_key = gen_key rng; g_quiet = Random.State.bool rng;
           g_withkey = Random.State.bool rng })
  | _ ->
    (match proto with
     | Ascii -> P.Gets [ gen_key rng ]
     | Binary -> P.Noop)

let encode proto cmd =
  match proto with
  | Ascii -> A.encode_command cmd
  | Binary -> B.encode_command cmd

let gen_batch rng proto =
  let n = 3 + Random.State.int rng 8 in
  let cmds = List.init n (fun _ -> gen_command rng proto) in
  let cmds =
    (* a quiet binary run must end with something that answers *)
    match proto with Binary -> cmds @ [ P.Noop ] | Ascii -> cmds
  in
  String.concat "" (List.map (encode proto) cmds)

(* Hostile length fields the grammar-aware splice injects: negative
   (the pre-hardening crash), hex, overflowing, over-limit, non-digit
   suffix. *)
let evil_len_tokens =
  [| "-2"; "-10"; "0x10"; "99999999999"; "4294967296"; "1048577"; "007x" |]

let evil_ascii_line rng =
  let tok = evil_len_tokens.(Random.State.int rng (Array.length evil_len_tokens)) in
  Printf.sprintf "set %s 0 0 %s\r\nxx\r\n" (gen_key rng) tok

(* a binary header whose body length claims far more than the limit *)
let evil_binary_frame rng =
  let b = Buffer.create 24 in
  Buffer.add_char b '\x80';
  Buffer.add_char b '\x01' (* SET *);
  Buffer.add_string b "\x00\x02" (* key len 2 *);
  Buffer.add_char b '\x08' (* extras len *);
  Buffer.add_string b "\x00\x00\x00";
  (* total body: hostile *)
  let body = 0x7f000000 lor Random.State.int rng 0xffff in
  Buffer.add_char b (Char.chr ((body lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((body lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((body lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (body land 0xff));
  Buffer.add_string b (String.make 12 '\x00');
  Buffer.contents b

let mutate rng proto (s : string) : string =
  if s = "" then s
  else
    match Random.State.int rng 5 with
    | 0 ->
      (* truncate: mid-request bytes then silence *)
      String.sub s 0 (Random.State.int rng (String.length s))
    | 1 ->
      (* flip one byte *)
      let i = Random.State.int rng (String.length s) in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int rng 8)));
      Bytes.to_string b
    | 2 ->
      (* corrupt framing: an ascii CRLF or a binary magic byte *)
      (match proto with
       | Ascii ->
         (match String.index_opt s '\r' with
          | Some i ->
            let b = Bytes.of_string s in
            Bytes.set b i 'X';
            Bytes.to_string b
          | None -> s ^ "\r\n")
       | Binary ->
         let b = Bytes.of_string s in
         Bytes.set b 0 '\x66';
         Bytes.to_string b)
    | 3 ->
      (* splice a hostile frame at a request boundary-ish offset *)
      let insert =
        match proto with
        | Ascii -> evil_ascii_line rng
        | Binary -> evil_binary_frame rng
      in
      let i = Random.State.int rng (String.length s + 1) in
      String.sub s 0 i ^ insert ^ String.sub s i (String.length s - i)
    | _ ->
      (* duplicate a slice: replayed partial requests *)
      let i = Random.State.int rng (String.length s) in
      let len = Random.State.int rng (String.length s - i) in
      s ^ String.sub s i len

let gen_case rng =
  let proto = if Random.State.bool rng then Ascii else Binary in
  let base = gen_batch rng proto in
  let muts = Random.State.int rng 4 in
  let input = ref base in
  for _ = 1 to muts do
    input := mutate rng proto !input
  done;
  (proto, !input)

(* ---- Tenant-targeted mutations --------------------------------------

   Keys an attacker on tenant A's connection aims across the namespace
   boundary: the victim's prefix forged outright, traversal-flavored
   variants, and bare prefix bytes spliced mid-stream so a key tears
   across a request boundary. Host-side scoping must neutralize every
   one of them — the leak oracle is the judge. *)

let tenant_forged_keys =
  [| "tb/secret"; "../tb/secret"; "tb/"; "/tb/secret"; "tb//secret";
     "ta/../tb/secret" |]

let evil_tenant_request rng proto =
  let k =
    tenant_forged_keys.(Random.State.int rng (Array.length tenant_forged_keys))
  in
  match proto with
  | Ascii ->
    (match Random.State.int rng 4 with
     | 0 -> Printf.sprintf "get %s\r\n" k
     | 1 -> Printf.sprintf "gets %s secret\r\n" k
     | 2 -> Printf.sprintf "delete %s\r\n" k
     | _ -> Printf.sprintf "set %s 0 0 4\r\nevil\r\n" k)
  | Binary ->
    B.encode_command
      (P.Getx { g_key = k; g_quiet = false; g_withkey = true })

let mutate_tenant rng proto (s : string) : string =
  match Random.State.int rng 3 with
  | 0 ->
    (* a forged-prefix request spliced at an arbitrary offset *)
    let ins = evil_tenant_request rng proto in
    let i = Random.State.int rng (String.length s + 1) in
    String.sub s 0 i ^ ins ^ String.sub s i (String.length s - i)
  | 1 ->
    (* bare victim-prefix bytes torn into the stream: a prefix splice
       across what the parser sees as one request *)
    let i = Random.State.int rng (String.length s + 1) in
    String.sub s 0 i ^ tenant_b ^ "/" ^ String.sub s i (String.length s - i)
  | _ -> mutate rng proto s

let gen_tenant_case rng =
  let proto = if Random.State.bool rng then Ascii else Binary in
  let base = gen_batch rng proto in
  let muts = 1 + Random.State.int rng 3 in
  let input = ref base in
  for _ = 1 to muts do
    input := mutate_tenant rng proto !input
  done;
  (proto, !input)

(* ---- The campaign --------------------------------------------------- *)

type verdict = {
  v_cases : int;
  v_failures : (proto * string * failure) list;
  (* (protocol, input, what broke) — inputs kept for corpus promotion *)
}

let default_cases = 200

let run ?(cases = default_cases) ~seed () : verdict =
  let rng = Random.State.make [| seed |] in
  let failures = ref [] in
  for _ = 1 to cases do
    let proto, input = gen_case rng in
    List.iter
      (fun f -> failures := (proto, input, f) :: !failures)
      (run_input proto input)
  done;
  { v_cases = cases; v_failures = List.rev !failures }

(* The tenant campaign: same oracles, attacker bound to tenant A,
   victim's secret in tenant B's namespace, every case carrying at
   least one cross-namespace mutation. *)
let run_tenant ?(cases = default_cases) ~seed () : verdict =
  let rng = Random.State.make [| seed; 0x7e4a |] in
  let failures = ref [] in
  for _ = 1 to cases do
    let proto, input = gen_tenant_case rng in
    List.iter
      (fun f -> failures := (proto, input, f) :: !failures)
      (run_input ~tenant:tenant_a proto input)
  done;
  { v_cases = cases; v_failures = List.rev !failures }

let pp_verdict v =
  if v.v_failures = [] then
    Printf.sprintf "%d cases: clean" v.v_cases
  else
    Printf.sprintf "%d cases: %d failures (first: [%s] %s)" v.v_cases
      (List.length v.v_failures)
      (let p, _, _ = List.hd v.v_failures in
       proto_string p)
      (let _, _, f = List.hd v.v_failures in
       failure_string f)
