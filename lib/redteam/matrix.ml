(** The attack-outcome matrix: every red-team scenario run both ways —
    against the unhardened stack (its defense toggled off or emulated
    away) and against the shipped stack. A healthy matrix reads
    BREACHED down the first column and BLOCKED down the second; any
    other cell is a regression. CI renders this to a markdown artifact
    via {!emit} (path in [$REDTEAM_MATRIX_OUT]). *)

type row = {
  scenario : string;
  vector : string;
  defense : string;
  unhardened : Scenarios.outcome;
  hardened : Scenarios.outcome;
}

(* A healthy row: the attack works when the defense is reverted and
   fails when it is in place. *)
let row_green r =
  (not (Scenarios.is_blocked r.unhardened)) && Scenarios.is_blocked r.hardened

let trace fmt =
  Printf.ksprintf
    (fun s ->
      if Sys.getenv_opt "REDTEAM_TRACE" <> None then (
        prerr_endline s;
        flush stderr))
    fmt

let collect () : row list =
  List.map
    (fun (s : Scenarios.t) ->
      trace "[matrix] %s: unhardened..." s.Scenarios.sc_name;
      let unhardened = s.Scenarios.run ~hardening:false in
      trace "[matrix] %s: hardened..." s.Scenarios.sc_name;
      let hardened = s.Scenarios.run ~hardening:true in
      trace "[matrix] %s: done" s.Scenarios.sc_name;
      { scenario = s.Scenarios.sc_name;
        vector = s.Scenarios.vector;
        defense = s.Scenarios.defense;
        unhardened;
        hardened })
    Scenarios.all

let cell = function
  | Scenarios.Breached _ -> "BREACHED"
  | Scenarios.Blocked _ -> "blocked"

let render (rows : row list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# Red-team attack matrix\n\n";
  Buffer.add_string b
    "| scenario | attack vector | unhardened | hardened | defense |\n";
  Buffer.add_string b "|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s | %s | %s |\n" r.scenario r.vector
           (cell r.unhardened) (cell r.hardened) r.defense))
    rows;
  Buffer.add_string b "\nDetails:\n\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "- **%s**\n  - unhardened: %s\n  - hardened: %s\n"
           r.scenario
           (Scenarios.outcome_string r.unhardened)
           (Scenarios.outcome_string r.hardened)))
    rows;
  Buffer.contents b

let env_var = "REDTEAM_MATRIX_OUT"

(* Write the rendered matrix where CI asked for it; silently a no-op
   in local runs with the variable unset. *)
let emit (rows : row list) : unit =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render rows))
