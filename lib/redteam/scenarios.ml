(** The red team: adversarial scenarios run as simulated processes
    against the real stack — loader, trampolines, pkeys, seccomp
    filters, regions, recovery.

    Every scenario runs in two configurations. [~hardening:true] is
    the shipped stack; [~hardening:false] reverts the corresponding
    fix (via its red-team toggle, or by emulating the pre-fix behavior
    where the defense is structural) and must let the attack through —
    the red-first discipline: an attack that does not breach the
    unhardened stack proves nothing about the fix. The attack matrix
    in DESIGN.md is generated from {!all} (see {!Matrix}). *)

module Process = Simos.Process
module Region = Shm.Region
module Library = Hodor.Library
module Loader = Hodor.Loader
module Trampoline = Hodor.Trampoline
module Runtime = Hodor.Runtime
module Pkru = Pku.Pkru
module Pkey = Pku.Pkey
module Insn = Pku.Insn

type outcome =
  | Blocked of string  (** the defense held; detail says how *)
  | Breached of string  (** the attacker won; detail says what it got *)

type t = {
  sc_name : string;
  vector : string;  (** the attack, in one line (Garmr taxonomy) *)
  defense : string;  (** what stands in the way when hardened *)
  toggle : string;
  (** the [bool ref] the unhardened run flips, or "structural
      (emulated)" when the fix has no toggle and the unhardened run
      reproduces the pre-fix behavior directly *)
  run : hardening:bool -> outcome;
}

let outcome_string = function
  | Blocked m -> "BLOCKED: " ^ m
  | Breached m -> "BREACHED: " ^ m

let is_blocked = function Blocked _ -> true | Breached _ -> false

let with_toggle r v f =
  let saved = !r in
  r := v;
  Fun.protect ~finally:(fun () -> r := saved) f

(* Monotonic suffix for region/file names: scenarios run repeatedly
   (both hardening modes, many seeds) and must never collide. *)
let fresh =
  let n = ref 0 in
  fun () -> incr n; !n

(* ---- 1+2: gadget bytes hidden in a data island ---------------------- *)

(* The loader-level scan attack: the binary contains no stray
   pkru-writing {e instruction} — the gadget hides as bytes inside a
   data island (a jump table, a constant), where the legacy
   instruction-granular scan never looks. A hijacked indirect branch
   lands on the bytes and rewrites pkru. *)
let gadget_island kind =
  let kname, vector =
    match kind with
    | `Wrpkru ->
      ("gadget-wrpkru-island",
       "wrpkru byte pattern hidden in a data island; hijacked jump lands on it")
    | `Xrstor ->
      ("gadget-xrstor-island",
       "xrstor byte pattern hidden in a data island; pkru restored from \
        attacker memory")
  in
  { sc_name = kname;
    vector;
    defense = "admission-time byte-granular gadget scan (Loader.admit)";
    toggle = "Hodor.Loader.gadget_scan_enabled";
    run =
      (fun ~hardening ->
        with_toggle Loader.gadget_scan_enabled hardening @@ fun () ->
        Fun.protect ~finally:(fun () ->
          Pkru.reset_thread ();
          Loader.forget_trampolines ())
        @@ fun () ->
        let island, delta =
          match kind with
          | `Wrpkru ->
            (Gadget.wrpkru_island ~pkru_value:Pkru.all_enabled,
             Gadget.wrpkru_island_gadget_delta)
          | `Xrstor ->
            (Gadget.xrstor_island ~pkru_value:Pkru.all_enabled,
             Gadget.xrstor_island_gadget_delta)
        in
        let b =
          Insn.make
            (Printf.sprintf "evil-app-%d" (fresh ()))
            [| Insn.Compute 10; Insn.Data island; Insn.Ret |]
        in
        let dr = Pku.Debug_regs.create () in
        match Loader.admit dr b with
        | Loader.Rejected reason -> Blocked ("admission refused: " ^ reason)
        | Loader.Admitted _ ->
          let offs = Insn.byte_offsets b in
          let byte_off = offs.(1) + delta in
          (match Gadget.jump_into dr b ~byte_off with
           | Gadget.Pkru_written v ->
             Breached
               (Printf.sprintf
                  "admitted binary carries a live gadget at byte +%d; pkru \
                   rewritten to %08x"
                  byte_off v)
           | Gadget.Trapped m -> Blocked ("fetch trapped: " ^ m)
           | Gadget.Harmless -> Blocked "gadget bytes fizzled")) }

(* ---- 3: forged (self-declared) trampoline table --------------------- *)

(* The attacker ships a binary whose trampoline table blesses its own
   stray wrpkru. The table lives inside the binary — attacker-authored
   — so "the wrpkru is at a declared trampoline" proves nothing. *)
let forged_trampoline_table =
  { sc_name = "forged-trampoline-table";
    vector = "binary self-declares its stray wrpkru as a trampoline";
    defense = "admission cross-checks claims against loader-installed records";
    toggle = "Hodor.Loader.gadget_scan_enabled";
    run =
      (fun ~hardening ->
        with_toggle Loader.gadget_scan_enabled hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "forge-victim-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release lib;
          Pkru.reset_thread ();
          Loader.forget_trampolines ())
        @@ fun () ->
        let key = Library.pkey lib in
        let payload = Pkru.set_perm Pkru.init_value key Pkru.Enable in
        let b =
          Insn.make ~trampolines:[ 1 ]
            (Printf.sprintf "forged-tramp-%d" (fresh ()))
            [| Insn.Compute 5; Insn.Wrpkru payload; Insn.Ret |]
        in
        let dr = Pku.Debug_regs.create () in
        match Loader.admit dr b with
        | Loader.Rejected reason -> Blocked ("admission refused: " ^ reason)
        | Loader.Admitted _ ->
          Loader.exec dr lib b;
          if Pkru.allows_read (Pkru.read ()) key then
            Breached
              "self-blessed trampoline executed: attacker holds the library \
               key outside any call"
          else Blocked "forged trampoline did not yield the key") }

(* ---- 4: patched binary inheriting a blessing ------------------------ *)

(* The loader did install this binary's trampolines — then the attacker
   patched the image (widening the trampoline's wrpkru payload) and
   kept the name and table. Without digest pinning the stale blessing
   transfers to the patched image. *)
let patched_binary =
  { sc_name = "patched-binary-blessing";
    vector = "image patched after trampoline installation, name/table kept";
    defense = "installation records are digest-pinned to the byte image";
    toggle = "Hodor.Loader.gadget_scan_enabled";
    run =
      (fun ~hardening ->
        with_toggle Loader.gadget_scan_enabled hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "patch-victim-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release lib;
          Pkru.reset_thread ();
          Loader.forget_trampolines ())
        @@ fun () ->
        let key = Library.pkey lib in
        let legit_v = Pkru.set_perm Pkru.init_value key Pkru.Enable in
        let bin_name = Printf.sprintf "app-bin-%d" (fresh ()) in
        let legit =
          Insn.make ~trampolines:[ 0 ] bin_name
            [| Insn.Wrpkru legit_v; Insn.Ret |]
        in
        Loader.install_trampolines legit;
        (* the fix must not break the legitimate image *)
        (match Loader.admit (Pku.Debug_regs.create ()) legit with
         | Loader.Admitted _ -> ()
         | Loader.Rejected r ->
           failwith ("defense broken: legitimate binary rejected: " ^ r));
        Pkru.reset_thread ();
        let patched =
          Insn.make ~trampolines:[ 0 ] bin_name
            [| Insn.Wrpkru Pkru.all_enabled; Insn.Ret |]
        in
        let dr = Pku.Debug_regs.create () in
        match Loader.admit dr patched with
        | Loader.Rejected reason -> Blocked ("admission refused: " ^ reason)
        | Loader.Admitted _ ->
          Loader.exec dr lib patched;
          if Pkru.read () = Pkru.all_enabled then
            Breached
              "patched image inherited the blessing; its trampoline opened \
               every key"
          else Blocked "patched trampoline did not widen pkru") }

(* ---- 5: pkru laundering through a legitimate crossing --------------- *)

(* The attacker arrives at the trampoline already holding the library's
   key (as if a gadget ran earlier). The trampoline saves pkru on
   entry and restores it on exit — so without the entry gate check the
   crossing itself {e launders} the forged register: after the call
   returns, the attacker holds standing rights, courtesy of Hodor. *)
let pkru_laundering =
  { sc_name = "pkru-laundering";
    vector = "caller enters a crossing with a forged pkru already open";
    defense = "trampoline entry gate: outermost caller must not hold the key";
    toggle = "Hodor.Trampoline.gate_checks_enabled";
    run =
      (fun ~hardening ->
        with_toggle Trampoline.gate_checks_enabled hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "laundry-lib-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-laundry-%d" (fresh ()))
            ~size:4096 ~pkey:(Library.pkey lib) ()
        in
        Library.protect_region lib region;
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "SECRET");
        let attacker = Process.make ~uid:5000 "laundry-attacker" in
        Process.with_process attacker @@ fun () ->
        Pkru.wrpkru
          (Pkru.set_perm (Pkru.read ()) (Library.pkey lib) Pkru.Enable);
        (match Trampoline.call lib (fun () -> ()) with
         | () ->
           if Pkru.allows_read (Pkru.read ()) (Library.pkey lib) then
             let leaked = Region.read_string region ~off:0 ~len:6 in
             Breached
               (Printf.sprintf
                  "forged register laundered through the crossing; standing \
                   rights read %S outside any call"
                  leaked)
           else Blocked "crossing sanitized the register"
         | exception Trampoline.Gate_violation _ ->
           if Pkru.allows_read (Pkru.read ()) (Library.pkey lib) then
             Breached "entry gate fired but the attacker kept the key"
           else if Process.alive attacker then
             Breached "entry gate fired but the attacker survived"
           else
             Blocked
               "entry gate caught the forged register; attacker killed, \
                register sanitized")) }

(* ---- 6: wrpkru executed inside the call ----------------------------- *)

(* A gadget fires while the thread is legitimately inside the library,
   widening pkru beyond what the trampoline wrote. Without the exit
   gate check the drift goes unnoticed and the attacker lives to
   escalate; with it, the drift is detected at the exit boundary and
   the offender is terminated — without poisoning the library for
   everyone else. *)
let in_call_tamper =
  { sc_name = "in-call-tamper";
    vector = "pkru widened by a wrpkru inside the library call";
    defense = "trampoline exit gate: register must equal the entry value";
    toggle = "Hodor.Trampoline.gate_checks_enabled";
    run =
      (fun ~hardening ->
        with_toggle Trampoline.gate_checks_enabled hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "tamper-lib-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let attacker = Process.make ~uid:5001 "tamper-attacker" in
        let result =
          Process.with_process attacker @@ fun () ->
          match Trampoline.call lib (fun () -> Pkru.wrpkru Pkru.all_enabled)
          with
          | () ->
            Breached
              "in-call wrpkru went unnoticed: no detection, the attacker \
               lives to retry"
          | exception Trampoline.Gate_violation _ ->
            if Process.alive attacker then
              Breached "exit gate fired but the attacker survived"
            else if Library.health lib <> Library.Healthy then
              Breached "enforcement wrongly poisoned the library"
            else Blocked "tamper detected at exit; offender killed"
        in
        (* enforcement must not cost honest clients the library *)
        match result with
        | Blocked m ->
          let honest = Process.make ~uid:5002 "honest-client" in
          Process.with_process honest (fun () ->
            Trampoline.call lib (fun () -> ()));
          Blocked (m ^ "; library stays healthy for honest callers")
        | r -> r) }

(* ---- 7: retag the shared heap via pkey_mprotect --------------------- *)

(* Linux lets any process pkey_mprotect pages mapped in its own address
   space: holding {e no} key, the attacker simply re-tags the shared
   heap to key 0 and reads it without ever entering the library. The
   only thing in the way is the seccomp filter. *)
let retag_shared_heap =
  { sc_name = "retag-shared-heap";
    vector = "pkey_mprotect retags the protected region to key 0";
    defense = "seccomp filter: pkey_mprotect not in the client allowlist";
    toggle = "Simos.Process.seccomp_enforced";
    run =
      (fun ~hardening ->
        with_toggle Process.seccomp_enforced hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "retag-lib-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-retag-%d" (fresh ()))
            ~size:4096 ~pkey:(Library.pkey lib) ()
        in
        Library.protect_region lib region;
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "TOPSECRET");
        let attacker = Process.make ~uid:6000 "retagger" in
        Process.install_filter attacker [ Process.Sys_open ];
        Process.with_process attacker @@ fun () ->
        match
          Region.tag_range region ~off:0 ~len:(Region.size region)
            ~pkey:Pkey.default
        with
        | () ->
          let s = Region.read_string region ~off:0 ~len:9 in
          Breached
            (Printf.sprintf
               "heap retagged to key 0; read %S without entering the library"
               s)
        | exception Process.Seccomp_violation m ->
          Blocked ("pkey_mprotect denied: " ^ m)) }

(* ---- 8: the same retag, raced against live crossings ---------------- *)

(* The racing version under the seeded Vm scheduler: the attacker times
   its retag against a victim's trampoline calls (mid-crossing,
   between crossings — the seed decides). Unhardened, the attacker
   retags under its own freshly-allocated key: the victim faults
   inside the library and the attacker reads the heap at leisure. *)
let retag_race =
  { sc_name = "retag-race";
    vector = "pkey_mprotect raced against crossings (seeded schedules)";
    defense = "seccomp filter: pkey_alloc/pkey_mprotect denied to clients";
    toggle = "Simos.Process.seccomp_enforced";
    run =
      (fun ~hardening ->
        with_toggle Process.seccomp_enforced hardening @@ fun () ->
        let breaches = ref [] in
        List.iter
          (fun seed ->
            let lib =
              Library.create
                ~name:(Printf.sprintf "race-lib-%d-%d" seed (fresh ()))
                ~owner_uid:1000 ()
            in
            let stolen_key = ref None in
            Fun.protect ~finally:(fun () ->
              (match !stolen_key with
               | Some k -> (try Pkey.free k with _ -> ())
               | None -> ());
              Library.release lib;
              Runtime.reset ();
              Pkru.reset_thread ())
            @@ fun () ->
            let region =
              Region.create
                ~name:(Printf.sprintf "/shm/rt-race-%d-%d" seed (fresh ()))
                ~size:4096 ~pkey:(Library.pkey lib) ()
            in
            Library.protect_region lib region;
            Region.kernel_mode (fun () ->
              Region.write_string region ~off:0 "RACE-SECRET");
            Runtime.configure ~advance:Vm.Sync.advance ~now:Vm.Sync.now_ns;
            let vm = Vm.create ~sched_seed:seed ~preempt_jitter:40 () in
            let victim_proc = Process.make ~uid:2000 "race-victim" in
            let attacker_proc = Process.make ~uid:6001 "race-attacker" in
            Process.install_filter attacker_proc [ Process.Sys_open ];
            let victim_error = ref None in
            ignore
              (Vm.spawn vm ~name:"victim" (fun () ->
                 Process.with_process victim_proc (fun () ->
                   try
                     for i = 1 to 8 do
                       Trampoline.call lib (fun () ->
                         Region.write_i64 region 64 i;
                         Vm.Sync.advance 200;
                         ignore (Region.read_i64 region 64))
                     done
                   with e -> victim_error := Some e)));
            ignore
              (Vm.spawn vm ~name:"attacker" (fun () ->
                 Process.with_process attacker_proc (fun () ->
                   try
                     Vm.Sync.advance 300;
                     let k = Pkey.alloc () in
                     stolen_key := Some k;
                     Region.tag_range region ~off:0 ~len:(Region.size region)
                       ~pkey:k;
                     Pkru.wrpkru
                       (Pkru.set_perm (Pkru.read ()) k Pkru.Enable);
                     let s = Region.read_string region ~off:0 ~len:11 in
                     breaches :=
                       (seed,
                        Printf.sprintf
                          "seed %d: retagged at t=%dns, read %S; victim: %s"
                          seed (Vm.Sync.now_ns ()) s
                          (match !victim_error with
                           | Some e -> Printexc.to_string e
                           | None -> "unaffected"))
                       :: !breaches
                   with Process.Seccomp_violation _ -> ())));
            Vm.run vm;
            if hardening then begin
              (match !victim_error with
               | Some e ->
                 failwith
                   ("victim failed under full hardening: "
                    ^ Printexc.to_string e)
               | None -> ());
              if Library.health lib <> Library.Healthy then
                failwith "library unhealthy under full hardening"
            end)
          [ 11; 23; 47 ];
        match !breaches with
        | [] ->
          Blocked
            "3 seeded schedules: every retag attempt denied; victim \
             crossings completed untouched"
        | (_, m) :: _ -> Breached m) }

(* ---- 9: pkey exhaustion (at the virtualized layer) ------------------ *)

(* PKU has 15 allocatable keys per process tree; pkey_alloc itself is
   already seccomp-denied to clients (scenario 13's filter). The
   surviving exhaustion vector is {e legitimate} demand: enough
   tenants, each entitled to a protection key, outnumber the hardware.
   The defense is virtualization — {!Pku.Vpkey} multiplexes unbounded
   virtual keys over the hw slots with LRU eviction, so slot pressure
   degrades to re-tag traffic, never to denial of protection. The
   unhardened run turns the eviction path off: the pre-libmpk world
   where the 16th key request simply fails. *)
let pkey_exhaustion =
  { sc_name = "pkey-exhaustion";
    vector = "key demand beyond the 16 hw slots (many tenants' capabilities)";
    defense = "Vpkey virtualization: slot LRU eviction + lazy re-bind";
    toggle = "Pku.Vpkey.eviction_enabled";
    run =
      (fun ~hardening ->
        with_toggle Pku.Vpkey.eviction_enabled hardening @@ fun () ->
        Fun.protect ~finally:(fun () ->
          Pku.Vpkey.reset ();
          Pkru.reset_thread ())
        @@ fun () ->
        (* a small slot budget makes the pressure cheap to reach; the
           victim is the 65th principal wanting its capability bound *)
        Pku.Vpkey.set_hw_cap 4;
        let vkeys = List.init 64 (fun _ -> Pku.Vpkey.alloc ~owner:7000 ()) in
        let victim_vk = Pku.Vpkey.alloc ~owner:7001 () in
        match
          Region.kernel_mode (fun () ->
            List.iter
              (fun vk -> ignore (Pku.Vpkey.bind ~owner:7000 vk))
              vkeys)
        with
        | exception Pkey.Out_of_keys ->
          Breached
            (Printf.sprintf
               "hw slots drained with only %d of 64 virtual keys bound; \
                every further tenant is denied protection"
               (Pku.Vpkey.slots_in_use ()))
        | () ->
          (match
             Region.kernel_mode (fun () ->
               Pku.Vpkey.bind ~owner:7001 victim_vk)
           with
           | _hw ->
             Blocked
               (Printf.sprintf
                  "64 virtual keys multiplexed over %d hw slots (%d \
                   evictions); the victim's capability still binds"
                  (Pku.Vpkey.slots_in_use ())
                  (Pku.Vpkey.evictions ()))
           | exception Pkey.Out_of_keys ->
             Breached
               "all 64 attacker vkeys bound, yet the victim's bind fails: \
                slots leak under multiplexing")) }

(* ---- 9b: binding a foreign tenant's virtual key --------------------- *)

(* The virtualization layer is itself a boundary: a vkey is a tenant's
   capability, and bind must refuse every caller but its owner (or the
   kernel-side root). The unhardened run drops the ownership check —
   any principal binds any vkey, opens it in pkru, and reads the
   owner's pages. *)
let cross_tenant_vkey_bind =
  { sc_name = "cross-tenant-vkey-bind";
    vector = "attacker binds the victim tenant's vkey and opens it in pkru";
    defense = "vkey ownership check at bind (Vpkey.Permission_denied)";
    toggle = "Pku.Vpkey.owner_checks_enabled";
    run =
      (fun ~hardening ->
        with_toggle Pku.Vpkey.owner_checks_enabled hardening @@ fun () ->
        Fun.protect ~finally:(fun () ->
          Pku.Vpkey.reset ();
          Pkru.reset_thread ())
        @@ fun () ->
        let victim_vk = Pku.Vpkey.alloc ~owner:1000 () in
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-vbind-%d" (fresh ()))
            ~size:4096 ~pkey:Pkey.default ()
        in
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "VKEY-SECRET");
        Pku.Vpkey.attach_retag victim_vk (fun hw ->
          Region.kernel_mode (fun () ->
            Region.tag_range region ~off:0 ~len:(Region.size region)
              ~pkey:hw));
        (* the owner exercises its capability once: pages now live
           under the vkey's current slot *)
        Region.kernel_mode (fun () ->
          ignore (Pku.Vpkey.bind ~owner:1000 victim_vk));
        match
          Region.kernel_mode (fun () ->
            Pku.Vpkey.enable ~owner:6007 victim_vk)
        with
        | _hw ->
          let s = Region.read_string region ~off:0 ~len:11 in
          Breached
            (Printf.sprintf
               "foreign bind granted the victim's key; read %S under the \
                attacker's own pkru"
               s)
        | exception Pku.Vpkey.Permission_denied _ ->
          (match Region.read_string region ~off:0 ~len:11 with
           | s -> Breached ("bind refused yet the pages read " ^ s)
           | exception Pku.Fault.Protection_fault _ ->
             Blocked
               "foreign bind refused; the victim's pages still fault for \
                the attacker")) }

(* ---- 9c: reading an evicted tenant through the recycled slot -------- *)

(* Slot eviction's dangerous edge: the evicted vkey's pages are still
   tagged with the hw key the slot table just handed to someone else.
   Without quarantine re-tagging, whoever binds next inherits read
   rights over the previous tenant's memory — a use-after-evict
   straight across the protection boundary. *)
let quarantine_evict_leak =
  { sc_name = "quarantine-evict-leak";
    vector = "evicted vkey's pages read through the recycled hw slot";
    defense = "eviction re-tags the victim's regions to the quarantine key";
    toggle = "Pku.Vpkey.quarantine_on_evict";
    run =
      (fun ~hardening ->
        with_toggle Pku.Vpkey.quarantine_on_evict hardening @@ fun () ->
        Fun.protect ~finally:(fun () ->
          Pku.Vpkey.reset ();
          Pkru.reset_thread ())
        @@ fun () ->
        (* one slot: the attacker's bind must recycle the victim's *)
        Pku.Vpkey.set_hw_cap 1;
        let victim_vk = Pku.Vpkey.alloc ~owner:1000 () in
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-quar-%d" (fresh ()))
            ~size:4096 ~pkey:Pkey.default ()
        in
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "EVICT-SECRET");
        Pku.Vpkey.attach_retag victim_vk (fun hw ->
          Region.kernel_mode (fun () ->
            Region.tag_range region ~off:0 ~len:(Region.size region)
              ~pkey:hw));
        let victim_hw =
          Region.kernel_mode (fun () ->
            Pku.Vpkey.bind ~owner:1000 victim_vk)
        in
        let attacker_vk = Pku.Vpkey.alloc ~owner:6008 () in
        let attacker_hw =
          Region.kernel_mode (fun () ->
            Pku.Vpkey.enable ~owner:6008 attacker_vk)
        in
        if attacker_hw <> victim_hw then
          Blocked "slot was not recycled (attack fizzled)"
        else
          match Region.read_string region ~off:0 ~len:12 with
          | s ->
            Breached
              (Printf.sprintf
                 "recycled slot %d still maps the victim's pages; read %S"
                 attacker_hw s)
          | exception Pku.Fault.Protection_fault _ ->
            Blocked
              "victim's pages re-tagged to quarantine on eviction; the \
               recycled slot reads fault") }

(* ---- 10: pkey hijack via pkey_free ---------------------------------- *)

(* pkey_free is not owner-checked by the kernel: any process that may
   issue it can free the {e victim's} key, then pkey_alloc until the
   recycled key lands in its own hands — two protection domains merged
   into one. *)
let pkey_hijack =
  { sc_name = "pkey-hijack";
    vector = "victim's pkey freed by the attacker, then reallocated to it";
    defense = "seccomp filter: pkey_free not in the client allowlist";
    toggle = "Simos.Process.seccomp_enforced";
    run =
      (fun ~hardening ->
        with_toggle Process.seccomp_enforced hardening @@ fun () ->
        let lib =
          Library.create
            ~name:(Printf.sprintf "hijack-lib-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        let extra = ref [] in
        Fun.protect ~finally:(fun () ->
          List.iter (fun k -> try Pkey.free k with _ -> ()) !extra;
          Library.release lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let victim_key = Library.pkey lib in
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-hijack-%d" (fresh ()))
            ~size:4096 ~pkey:victim_key ()
        in
        Library.protect_region lib region;
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "HIJACK-SECRET");
        let attacker = Process.make ~uid:6003 "key-thief" in
        Process.install_filter attacker [ Process.Sys_open ];
        Process.with_process attacker @@ fun () ->
        match Pkey.free victim_key with
        | exception Process.Seccomp_violation m ->
          Blocked ("pkey_free denied: " ^ m)
        | () ->
          (* grab allocations until the recycled key comes back *)
          let rec hunt n =
            if n > Pkey.count then None
            else
              let k = Pkey.alloc () in
              if k = victim_key then Some k
              else begin
                extra := k :: !extra;
                hunt (n + 1)
              end
          in
          (match hunt 0 with
           | None ->
             (* put the key back so release stays balanced *)
             extra := [];
             Breached
               "victim's key freed by the attacker (recycled elsewhere): \
                protection domain destroyed"
           | Some _k ->
             Pkru.wrpkru
               (Pkru.set_perm (Pkru.read ()) victim_key Pkru.Enable);
             let s = Region.read_string region ~off:0 ~len:13 in
             Breached
               (Printf.sprintf
                  "victim's key freed and reallocated to the attacker; \
                   domains merged, read %S"
                  s))) }

(* ---- 11: double admission of a protected region --------------------- *)

(* A second library claims the victim's region: protect_region would
   retag the victim's pages under the claimant's key, handing every
   byte to whoever enters the {e claimant's} trampolines. The claim
   registry is structural — the unhardened run reproduces the pre-fix
   loader by dropping the victim's claim first. *)
let double_admission =
  { sc_name = "double-admission";
    vector = "attacker library protect_regions the victim's live region";
    defense = "per-region claim registry (Region_already_protected)";
    toggle = "structural (emulated by unclaiming)";
    run =
      (fun ~hardening ->
        let victim_lib =
          Library.create
            ~name:(Printf.sprintf "dbladm-victim-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        let attacker_lib =
          Library.create
            ~name:(Printf.sprintf "dbladm-attacker-%d" (fresh ()))
            ~owner_uid:6004 ()
        in
        Fun.protect ~finally:(fun () ->
          Library.release attacker_lib;
          Library.release victim_lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let region =
          Region.create
            ~name:(Printf.sprintf "/shm/rt-dbladm-%d" (fresh ()))
            ~size:4096 ~pkey:(Library.pkey victim_lib) ()
        in
        Library.protect_region victim_lib region;
        Region.kernel_mode (fun () ->
          Region.write_string region ~off:0 "ADMIT-SECRET");
        if not hardening then Region.unclaim region;
        match Library.protect_region attacker_lib region with
        | exception Library.Region_already_protected _ ->
          Blocked
            "second admission refused; the victim keeps exclusive tagging"
        | () ->
          let attacker = Process.make ~uid:6004 "dbladm-attacker" in
          let s =
            Process.with_process attacker (fun () ->
              Trampoline.call attacker_lib (fun () ->
                Region.read_string region ~off:0 ~len:12))
          in
          Breached
            (Printf.sprintf
               "region retagged under the attacker's library; read %S \
                through the attacker's own trampoline"
               s)) }

(* ---- 12: crash-timed kills inside the grace window ------------------ *)

(* The crash-sweep attack: kill the victim at {e every} sync point of
   its in-library calls (the seeded Vm makes each site deterministic)
   and serve the store to an honest caller afterwards. The defense is
   the recovery protocol; the unhardened run reverts it by simply not
   running recovery — exactly what a deployment that ignores
   Killed_in_call would do. *)
let crash_in_grace =
  { sc_name = "crash-in-grace";
    vector = "victim killed at every sync point inside its library calls";
    defense = "grace-window semantics + recovery protocol before re-admission";
    toggle = "structural (emulated by skipping recovery)";
    run =
      (fun ~hardening ->
        let run_one ~at ~recover =
          let lib =
            Library.create ~grace_ns:1000
              ~name:(Printf.sprintf "grace-lib-%d" (fresh ()))
              ~owner_uid:1000 ()
          in
          Fun.protect ~finally:(fun () ->
            Library.release lib;
            Runtime.reset ();
            Pkru.reset_thread ())
          @@ fun () ->
          let region =
            Region.create
              ~name:(Printf.sprintf "/shm/rt-grace-%d" (fresh ()))
              ~size:4096 ~pkey:(Library.pkey lib) ()
          in
          Library.protect_region lib region;
          (* invariant: the two cells move together *)
          Library.set_recover lib (fun () ->
            Region.kernel_mode (fun () ->
              Region.write_i64 region 8 (Region.read_i64 region 0)));
          Runtime.configure ~advance:Vm.Sync.advance ~now:Vm.Sync.now_ns;
          let vm = Vm.create ~sched_seed:5 () in
          let victim_proc = Process.make ~uid:2100 "grace-victim" in
          Vm.set_crash_point vm
            ~filter:(fun n -> n = "victim")
            ~at
            ~on_crash:(fun _ now ->
              Region.kernel_mode (fun () ->
                Process.kill ~now_ns:now victim_proc))
            ();
          ignore
            (Vm.spawn vm ~name:"victim" (fun () ->
               Process.with_process victim_proc (fun () ->
                 try
                   for i = 1 to 4 do
                     Trampoline.call lib (fun () ->
                       Region.write_i64 region 0 i;
                       Vm.Sync.advance 1000;
                       Region.write_i64 region 8 i)
                   done
                 with
                 | Process.Process_killed _
                 | Trampoline.Library_call_failed _ -> ())));
          Vm.run vm;
          let sites = Vm.sync_points_seen vm in
          let verdict = ref (Ok ()) in
          let vm2 = Vm.create () in
          ignore
            (Vm.spawn vm2 ~name:"bookkeeper" (fun () ->
               try
                 if recover then Library.recover lib;
                 let honest = Process.make ~uid:2101 "grace-honest" in
                 Process.with_process honest (fun () ->
                   Trampoline.call lib (fun () ->
                     let a = Region.read_i64 region 0 in
                     let b = Region.read_i64 region 8 in
                     if a <> b then
                       verdict :=
                         Error
                           (Printf.sprintf "torn write served (%d <> %d)" a b)))
               with
               | Library.Library_needs_recovery _ ->
                 verdict := Error "store offline: stuck awaiting recovery"
               | Library.Library_poisoned m ->
                 verdict := Error ("library poisoned: " ^ m)));
          Vm.run vm2;
          (sites, !verdict)
        in
        let sites, _ = run_one ~at:max_int ~recover:false in
        let swept = min sites 24 in
        let failures = ref [] in
        for at = 0 to swept - 1 do
          match run_one ~at ~recover:hardening with
          | _, Ok () -> ()
          | _, Error m -> failures := (at, m) :: !failures
        done;
        let failures = List.rev !failures in
        match hardening, failures with
        | true, [] ->
          Blocked
            (Printf.sprintf
               "swept %d kill sites; recovery restored the invariant and \
                re-admitted callers at every one"
               swept)
        | true, (at, m) :: _ ->
          Breached (Printf.sprintf "defense failed at kill site %d: %s" at m)
        | false, [] -> Blocked "no kill site tore state (attack fizzled)"
        | false, l ->
          Breached
            (Printf.sprintf
               "%d of %d kill sites left torn or unserved state (first: \
                site %d, %s)"
               (List.length l) swept (fst (List.hd l)) (snd (List.hd l)))) }

(* ---- 13: syscall escape from inside the library --------------------- *)

(* The in-library attacker: a client already executing inside a
   crossing issues a syscall its filter forbids (unlinking the store's
   backing file). The filter must hold {e inside} the library too, the
   offender must die, and — critically — the library must NOT be
   poisoned: the kernel stopped the call before shared state was
   touched, and treating enforcement as a library crash would hand
   every attacker a one-syscall DoS. *)
let inlib_syscall_escape =
  { sc_name = "inlib-syscall-escape";
    vector = "filtered syscall issued from inside a library call";
    defense = "seccomp filter enforced in-library; enforcement kills without \
               poisoning";
    toggle = "Simos.Process.seccomp_enforced";
    run =
      (fun ~hardening ->
        with_toggle Process.seccomp_enforced hardening @@ fun () ->
        let path = Printf.sprintf "/shm/rt-escape-%d" (fresh ()) in
        let lib =
          Library.create
            ~name:(Printf.sprintf "escape-lib-%d" (fresh ()))
            ~owner_uid:1000 ()
        in
        Fun.protect ~finally:(fun () ->
          (try Simos.Sim_fs.unlink path with _ -> ());
          Library.release lib;
          Pkru.reset_thread ())
        @@ fun () ->
        let region =
          Region.create ~name:path ~size:4096 ~pkey:(Library.pkey lib) ()
        in
        Library.protect_region lib region;
        Simos.Sim_fs.create_file ~path ~owner:1000 ~mode:0o600 region;
        let attacker = Process.make ~uid:6005 "escape-attacker" in
        Process.install_filter attacker [];
        let honest = Process.make ~uid:6006 "escape-honest" in
        match
          Process.with_process attacker (fun () ->
            Trampoline.call lib (fun () -> Simos.Sim_fs.unlink path))
        with
        | () ->
          if Simos.Sim_fs.exists path then
            Blocked "unlink had no effect"
          else
            Breached
              "in-library attacker unlinked the store's backing file \
               (filter installed but never consulted)"
        | exception Process.Seccomp_violation _ ->
          if not (Simos.Sim_fs.exists path) then
            Breached "denied, yet the file is gone"
          else if Process.alive attacker then
            Breached "denied, but the offender survived"
          else if Library.health lib <> Library.Healthy then
            Breached
              "enforcement poisoned the library: one filtered syscall is a \
               universal DoS"
          else begin
            (* the library still serves honest clients *)
            Process.with_process honest (fun () ->
              Trampoline.call lib (fun () -> ()));
            Blocked
              "unlink denied inside the crossing; offender killed; library \
               unpoisoned and serving"
          end) }

(* ---- 14+15: multi-tenant scenarios over the full stack -------------- *)

module RCl = Core.Client.Make (Platform.Real_sync)
module RPlib = RCl.Plib
module RT = Transport.Sock.Make (Platform.Real_sync)

let has_sub ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let small_cfg =
  { Mc_core.Store.default_config with
    hashpower = 8; lock_count = 8; lru_count = 4; stats_slots = 4 }

let with_rplib ~tag f =
  let owner = Process.make ~uid:1000 (tag ^ "-bk") in
  let path = Printf.sprintf "/shm/rt-%s-%d" tag (fresh ()) in
  let p = RPlib.create ~store_cfg:small_cfg ~path ~size:(4 lsl 20) ~owner () in
  Fun.protect ~finally:(fun () ->
    Simos.Sim_fs.unlink path;
    Library.release (RPlib.library p);
    Pku.Vpkey.reset ();
    Pkru.reset_thread ())
  @@ fun () -> f p

(* A tenant that may write past its byte quota holds the whole heap
   hostage: its churn forces every neighbour's allocation through the
   eviction path, cannibalizing their acked items — resource-exhaustion
   as a cross-tenant attack. The quota + tenant-local eviction keep
   each tenant's footprint inside its own budget. *)
let cross_tenant_quota_starve =
  { sc_name = "cross-tenant-quota-starve";
    vector = "tenant floods writes far past its byte quota, starving a \
              neighbour";
    defense = "per-tenant quotas; a full tenant evicts only its own items";
    toggle = "Mc_core.Tenant.quota_enforced";
    run =
      (fun ~hardening ->
        with_toggle Mc_core.Tenant.quota_enforced hardening @@ fun () ->
        with_rplib ~tag:"quota" @@ fun p ->
        let a =
          RPlib.create_tenant p ~name:"qa" ~uid:3201
            ~byte_quota:(64 * 1024) ()
        in
        let b =
          RPlib.create_tenant p ~name:"qb" ~uid:3202
            ~byte_quota:(64 * 1024) ()
        in
        let pa = Process.make ~uid:3201 "quota-attacker" in
        let pb = Process.make ~uid:3202 "quota-victim" in
        Process.with_process pb (fun () ->
          if RPlib.tenant_set p b "keep" "b-acked-value" <> Mc_core.Store.Stored
          then failwith "quota scenario: victim's seed write failed");
        (* the flood: ~4.5 MB of writes into a 4 MiB heap *)
        let data = String.make 1500 'A' in
        Process.with_process pa (fun () ->
          for i = 0 to 2999 do
            ignore (RPlib.tenant_set p a (Printf.sprintf "flood%d" i) data)
          done);
        let fresh_ok = ref false and kept = ref false in
        Process.with_process pb (fun () ->
          fresh_ok := RPlib.tenant_set p b "fresh" "b2" = Mc_core.Store.Stored;
          kept :=
            (match RPlib.tenant_get p b "keep" with
             | Some r -> r.Mc_core.Store.value = "b-acked-value"
             | None -> false));
        let a_bytes, _ = RPlib.tenant_usage p a in
        if not !kept then
          Breached
            "flood forced the victim to cannibalize its acked item to \
             store anything at all"
        else if not !fresh_ok then
          Breached "victim starved: its write refused for the flood's memory"
        else if a_bytes > 64 * 1024 then
          Breached
            (Printf.sprintf
               "flooder holds %d bytes against a %d-byte quota" a_bytes
               (64 * 1024))
        else
          Blocked
            (Printf.sprintf
               "flood capped at %d bytes by tenant-local eviction; the \
                victim's acked and fresh writes both stand"
               a_bytes)) }

(* The socket path's isolation: tenant identity is bound to the
   connection at accept time and every key is rewritten host-side into
   the tenant's prefix. The unhardened run drops the rewrite — the
   pre-fix flat key space, where any connection reads (and flushes)
   anyone's data. *)
let cross_tenant_read =
  { sc_name = "cross-tenant-read";
    vector = "tenant connection addresses a neighbour's keys (incl. forged \
              prefix, flush_all)";
    defense = "connection-bound identity + host-side key-prefix scoping";
    toggle = "Mc_core.Tenant.namespace_enforced";
    run =
      (fun ~hardening ->
        with_toggle Mc_core.Tenant.namespace_enforced hardening @@ fun () ->
        with_rplib ~tag:"nsp" @@ fun p ->
        ignore (RPlib.create_tenant p ~name:"ra" ~uid:3101 ());
        ignore (RPlib.create_tenant p ~name:"rb" ~uid:3102 ());
        let sname = Printf.sprintf "rt-nsp-srv-%d" (fresh ()) in
        let assign =
          let q = ref [ "ra"; "rb" ] in
          fun _cid ->
            match !q with
            | [] -> None
            | x :: tl ->
              q := tl;
              Some x
        in
        let scfg =
          { Mc_server.Server.default_config with
            workers = 1; protocol = Mc_server.Server.Ascii;
            store = small_cfg }
        in
        let srv = RPlib.serve_remote ~cfg:scfg ~assign_tenant:assign p ~name:sname in
        Fun.protect ~finally:(fun () -> RPlib.stop_remote srv) @@ fun () ->
        let ca = RT.connect ~name:sname in
        let cb = RT.connect ~name:sname in
        let rpc c payload =
          RT.client_send c payload;
          RT.client_recv c
        in
        if not (has_sub ~needle:"STORED" (rpc cb "set secret 0 0 12\r\nb-classified\r\n"))
        then failwith "nsp scenario: victim's set failed";
        if has_sub ~needle:"b-classified" (rpc ca "get secret\r\n") then
          Breached
            "flat key space: the attacker's connection read the victim's \
             value by name"
        else if has_sub ~needle:"b-classified" (rpc ca "get rb/secret\r\n")
        then
          Breached
            "forged prefix escaped the attacker's namespace and read the \
             victim's value"
        else begin
          ignore (rpc ca "flush_all\r\n");
          if has_sub ~needle:"b-classified" (rpc cb "get secret\r\n") then
            Blocked
              "scoping held: name and forged-prefix reads both miss, and \
               flush_all is refused on a tenant connection"
          else
            Breached
              "tenant connection flushed the global store, taking the \
               victim's acked write"
        end) }

(* ---- 18: hostile ring client ---------------------------------------- *)

(* The transport-level attacker: a ring-mode client owns the producer
   side of its submission ring — pages sealed under its own vkey — so
   nothing stops it from writing slot headers directly instead of
   going through the client library. Three forgeries, each on a fresh
   connection (a bounced ring stays dead): a sequence stamp off its
   position, a length far past the message envelope, and an overfilled
   tail. Hardened, the consumer's validation walk refuses the window
   before anything downstream trusts a header and bounces only the
   forger; unhardened, the drain believes the forged length and reads
   it as one contiguous span — inside the library crossing, where the
   worker's keys reach the whole shared heap — and the crash poisons
   the library for every client. *)
let hostile_ring_client =
  let module Ring = Transport.Ring in
  let module RS = Platform.Real_sync in
  { sc_name = "hostile-ring-client";
    vector = "ring client stomps slot seq/len words and overfills the tail, \
              then rings the doorbell";
    defense = "validated window walk before the drain; fragment-clamped \
               reads; bounce kills only the forger's connection";
    toggle = "Transport.Ring.validation_enabled";
    run =
      (fun ~hardening ->
        with_toggle Ring.validation_enabled hardening @@ fun () ->
        with_rplib ~tag:"hring" @@ fun p ->
        let sname = Printf.sprintf "rt-hring-srv-%d" (fresh ()) in
        let scfg =
          { Mc_server.Server.default_config with
            workers = 1; protocol = Mc_server.Server.Ascii;
            store = small_cfg }
        in
        let srv =
          RPlib.serve_remote ~cfg:scfg
            ~rings:Mc_server.Server.default_ring_config p ~name:sname
        in
        Fun.protect ~finally:(fun () -> RPlib.stop_remote srv) @@ fun () ->
        let victim = Process.make ~uid:3301 "hring-victim" in
        let attacker = Process.make ~uid:3302 "hring-attacker" in
        let rpc c payload =
          RT.client_send c payload;
          RT.client_recv c
        in
        let cv =
          Process.with_process victim (fun () -> RT.connect ~name:sname)
        in
        if
          not
            (has_sub ~needle:"STORED"
               (Process.with_process victim (fun () ->
                    rpc cv "set keep 0 0 7\r\nv-acked\r\n")))
        then failwith "hring scenario: victim's seed write failed";
        (* Mount one forgery: raw header writes under the connection's
           own vkey, tail (the publish word) last, then the doorbell.
           Returns whether the consumer bounced the ring. *)
        let forge poke =
          Process.with_process attacker @@ fun () ->
          let c = RT.connect ~name:sname in
          match RT.rings_of c with
          | None -> failwith "hring scenario: server did not attach rings"
          | Some ra ->
            RT.ring_grant ra;
            let sub = ra.RT.ra_sub in
            poke (Ring.region sub) sub;
            (try
               RS.send c.RT.inbox
                 { RT.m_cid = c.RT.cid; m_payload = ""; m_at = RS.now_ns () }
             with RS.Closed -> ());
            (* The bounce revokes the connection's vkey and quarantines
               the ring pages, so losing the ability to even read the
               dead flag is itself the bounce signal. *)
            let rec dead n =
              match
                RT.ring_grant ra;
                Ring.is_dead sub
              with
              | true -> true
              | false ->
                if n = 0 then false
                else begin
                  RS.sleep_ns 2_000_000;
                  dead (n - 1)
                end
              | exception _ -> true
            in
            dead 500
        in
        let forge_seq r sub =
          let tl = Ring.tail sub in
          let off = Ring.slot_word sub tl in
          Region.write_i64 r (off + 8) 8;
          Region.write_i64 r (off + 16) (RS.now_ns ());
          Region.write_i64 r off (tl + 99) (* seq off its position *);
          Region.write_i64 r (Ring.tail_word sub) (tl + 1)
        in
        let forge_len r sub =
          let tl = Ring.tail sub in
          let off = Ring.slot_word sub tl in
          Region.write_i64 r (off + 8) (32 lsl 20) (* 32 MiB "message" *);
          Region.write_i64 r (off + 16) (RS.now_ns ());
          Region.write_i64 r off (tl + 1) (* honest seq, lying length *);
          Region.write_i64 r (Ring.tail_word sub) (tl + 1)
        in
        let forge_overfill r sub =
          Region.write_i64 r (Ring.tail_word sub) (Ring.head sub + 1_000_000)
        in
        if not hardening then begin
          (* Pre-fix stack: the forged length flows into a contiguous
             read that escapes the ring pages inside the crossing. *)
          ignore (forge forge_len);
          let rec poisoned n =
            match Library.health (RPlib.library p) with
            | Library.Poisoned _ -> true
            | _ ->
              if n = 0 then false
              else begin
                RS.sleep_ns 2_000_000;
                poisoned (n - 1)
              end
          in
          if poisoned 500 then
            Breached
              "forged length trusted: the drain read attacker-controlled \
               bytes past the ring pages inside the crossing and poisoned \
               the library for every client"
          else
            Blocked "forged length had no effect (attack fizzled)"
        end
        else begin
          let module C = Telemetry.Counters in
          let k0 = C.read C.Id.ring_kills in
          let b1 = forge forge_seq in
          let b2 = forge forge_len in
          let b3 = forge forge_overfill in
          if not (b1 && b2 && b3) then
            Breached
              (Printf.sprintf
                 "a forged window was never refused (seq=%b len=%b \
                  overfill=%b): the drain path trusted a stomped header"
                 b1 b2 b3)
          else
            let kills = C.read C.Id.ring_kills - k0 in
            let fresh_ok =
              has_sub ~needle:"STORED"
                (Process.with_process victim (fun () ->
                     rpc cv "set fresh 0 0 2\r\nv2\r\n"))
            in
            let kept =
              has_sub ~needle:"v-acked"
                (Process.with_process victim (fun () ->
                     rpc cv "get keep\r\n"))
            in
            if not (fresh_ok && kept) then
              Breached
                "the bounce took the victim's connection down with the \
                 forger"
            else if Library.health (RPlib.library p) <> Library.Healthy then
              Breached "a stomped header poisoned the hardened library"
            else
              Blocked
                (Printf.sprintf
                   "all three forged windows bounced before the parser (%d \
                    ring kills); the victim's connection never noticed"
                   kills)
        end) }

let all =
  [ gadget_island `Wrpkru;
    gadget_island `Xrstor;
    forged_trampoline_table;
    patched_binary;
    pkru_laundering;
    in_call_tamper;
    retag_shared_heap;
    retag_race;
    pkey_exhaustion;
    cross_tenant_vkey_bind;
    quarantine_evict_leak;
    pkey_hijack;
    double_admission;
    crash_in_grace;
    inlib_syscall_escape;
    cross_tenant_quota_starve;
    cross_tenant_read;
    hostile_ring_client ]

let find name = List.find (fun s -> s.sc_name = name) all
