(** The baseline: memcached as a socket server.

    The process owns a private slab-backed store; an acceptor thread
    hands incoming connections to worker threads round-robin (as
    memcached's dispatcher does); each worker runs an event loop over
    its own queue, parsing requests, executing them against the store,
    and writing replies. Every request crosses the kernel twice in
    each direction — the overhead the paper eliminates. *)

module P = Mc_protocol.Types
module CM = Platform.Cost_model

type protocol = Ascii | Binary

type config = {
  workers : int;
  protocol : protocol;
  mem_limit : int;
  store : Mc_core.Store.config;
}

let default_config =
  { workers = 4; protocol = Binary; mem_limit = 64 * 1024 * 1024;
    store =
      { Mc_core.Store.default_config with
        lru_by_size_class = true (* original memcached: LRU per slab class *) } }

type wrapper = { wrap : 'a. ops:int -> (unit -> 'a) -> 'a }
(** Runs each batch execution; [ops] is the number of operations the
    thunk will execute. The hybrid server passes the Hodor batch
    trampoline here, so one crossing covers the whole batch. The
    record makes the field polymorphic: the same wrapper must serve
    whatever result type the executor thunk produces. *)

let default_wrapper = { wrap = (fun ~ops:_ f -> f ()) }

(* Generic over the store's memory/allocator so the same server can
   front a private slab store (the classic baseline) or a shared Ralloc
   heap (the hybrid deployment of the paper's §6: remote clients over
   sockets, local clients through Hodor, one store). *)
module Make_generic
    (M : Mc_core.Memory_intf.MEMORY)
    (A : Mc_core.Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) =
struct
  module T = Transport.Sock.Make (S)
  module E = Executor.Make (M) (A) (S)
  module Store = E.Store

  type t = {
    cfg : config;
    store : Store.t;
    listener : T.listener;
    inboxes : T.message S.chan array;
    conns : (int, T.conn) Hashtbl.t;
    conns_lock : Mutex.t;
    tenant_of : (int, string) Hashtbl.t;
    (** connection-bound tenant identity (cid → tenant name), assigned
        once at accept time; also guarded by [conns_lock] *)
    assign_tenant : int -> string option;
    wrap : wrapper;
    (** runs each batch execution; the hybrid server passes the Hodor
        batch trampoline here so worker threads gain access rights to
        the shared heap the way any other client of the library does —
        one crossing per drained batch, not per request *)
    mutable threads : S.thread list;
  }

  let parse_batch cfg payload =
    match cfg.protocol with
    | Ascii -> Mc_protocol.Ascii.parse_batch payload
    | Binary -> Mc_protocol.Binary.parse_batch payload

  let encode_reply cfg (cmd : P.command) (resp : P.response) =
    match cfg.protocol with
    | Ascii -> Mc_protocol.Ascii.encode_response resp
    | Binary -> Mc_protocol.Binary.encode_reply ~for_cmd:cmd resp

  let find_conn t cid =
    Mutex.lock t.conns_lock;
    let c = Hashtbl.find_opt t.conns cid in
    Mutex.unlock t.conns_lock;
    match c with
    | Some c -> c
    | None -> failwith "worker: message from unregistered connection"

  let drop_conn t cid =
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns cid;
    Hashtbl.remove t.tenant_of cid;
    Mutex.unlock t.conns_lock

  let tenant_of t cid =
    Mutex.lock t.conns_lock;
    let r = Hashtbl.find_opt t.tenant_of cid in
    Mutex.unlock t.conns_lock;
    r

  (* Each worker owns an event loop over its queue. A read from a
     socket delivers an arbitrary byte chunk — possibly a fragment of
     one request, possibly several pipelined requests — so the worker
     keeps a per-connection reassembly buffer. The batch plane drains
     {e every} complete request out of it at once: one parse pass, one
     wrapped (= one protection crossing) batch execution with grouped
     stripe locking, one reply buffer, one send. *)
  let worker_loop t inbox =
    let buffers : (int, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
    let buffer_of cid =
      match Hashtbl.find_opt buffers cid with
      | Some b -> b
      | None ->
        let b = Buffer.create 256 in
        Hashtbl.add buffers cid b;
        b
    in
    (* [enq_at] is the socket enqueue stamp of the oldest chunk this
       drain is serving: the trace is backdated to it, so the time a
       request sat in the worker's event queue appears as its own
       [queue] phase. Re-entries (leftover pipelined bytes) pass no
       stamp — those bytes were just produced, nothing queued. *)
    let rec drain ?enq_at conn cid buf =
      let data = Buffer.contents buf in
      if String.length data = 0 then ()
      else begin
        let root = Telemetry.Span.ingress ?t_start:enq_at ~op:"srv.batch" () in
        (match enq_at with
         | Some at ->
           (* opened backdated, closed immediately: [at, now] is
              exactly the queueing window *)
           Telemetry.Span.finish
             (Telemetry.Span.start ~t_start:at ~phase:"queue" ())
         | None -> ());
        let psp = Telemetry.Span.start ~phase:"parse" () in
        match parse_batch t.cfg data with
        | [], _ ->
          (* an incomplete prefix: wait for the next chunk *)
          Telemetry.Span.finish psp;
          Telemetry.Span.drop root
        | cmds, consumed ->
          Buffer.clear buf;
          Buffer.add_substring buf data consumed (String.length data - consumed);
          S.advance (List.length cmds * CM.current.proto_parse);
          Telemetry.Span.finish psp;
          (* Quit closes the connection; everything before it still
             executes, anything after it is discarded with the
             connection (what a socket close does to pipelined bytes). *)
          let before_quit, quit =
            let rec split acc = function
              | [] -> (List.rev acc, false)
              | P.Quit :: _ -> (List.rev acc, true)
              | c :: tl -> split (c :: acc) tl
            in
            split [] cmds
          in
          (* Tenant-bound connection: rewrite every command into the
             tenant's namespace before execution, then strip the
             prefix back out of the replies and roll the per-tenant
             stats. The whole scoped batch still runs under one wrap
             (= one protection crossing in the hybrid server), so the
             batch plane — stripe groups, optimistic reads — stays
             tenant-scoped for free: the scoped key is the only key
             the store ever sees. *)
          let tenant = tenant_of t cid in
          let before_quit =
            match tenant with
            | None -> before_quit
            | Some name ->
              List.map
                (Executor.scope_command ~prefix:(name ^ "/"))
                before_quit
          in
          let pairs =
            match before_quit with
            | [] -> []
            | cmds ->
              t.wrap.wrap ~ops:(List.length cmds) (fun () ->
                let pairs = E.execute_batch t.store cmds in
                (* Accounting touches the tenant registry, which lives
                   in the protected heap — it must happen inside the
                   crossing, while this thread still holds access. *)
                (match tenant with
                 | None -> ()
                 | Some name ->
                   List.iter
                     (fun (c, r) -> Executor.account_tenant ~name c r)
                     pairs);
                pairs)
          in
          let pairs =
            match tenant with
            | None -> pairs
            | Some name ->
              let prefix = name ^ "/" in
              List.map
                (fun (c, r) -> (c, Executor.unscope_response ~prefix r))
                pairs
          in
          (* One output buffer for the whole batch, one send. *)
          Telemetry.Span.around ~phase:"reply" (fun () ->
            let out = Buffer.create 256 in
            List.iter
              (fun (cmd, resp) ->
                if not (P.suppress_reply cmd resp) then begin
                  S.advance CM.current.proto_pack;
                  Buffer.add_string out (encode_reply t.cfg cmd resp)
                end)
              pairs;
            if Buffer.length out > 0 then
              T.server_send conn (Buffer.contents out));
          Telemetry.Span.finish root;
          if quit then begin
            T.close_conn conn;
            drop_conn t cid;
            Hashtbl.remove buffers cid
          end
          else
            (* Whatever stayed buffered is an incomplete prefix — or
               garbage, which the re-entry reports and drops. *)
            drain conn cid buf
        | exception P.Need_more_data ->
          (* wait for the next chunk *)
          Telemetry.Span.finish psp;
          Telemetry.Span.drop root
        | exception P.Parse_error m ->
          (* resync by dropping the buffered garbage *)
          Telemetry.Span.finish psp;
          Buffer.clear buf;
          S.advance CM.current.proto_pack;
          T.server_send conn (encode_reply t.cfg (P.Invalid m) (P.Client_error m));
          Telemetry.Span.drop root
      end
    in
    let rec loop () =
      match T.worker_drain inbox with
      | exception S.Closed -> ()
      | msgs ->
        (* Append every drained chunk to its connection's buffer first,
           so pipelined requests split across chunks reassemble before
           the batch runs; then drain each touched connection once. *)
        let touched : (int * int) list ref = ref [] in
        List.iter
          (fun { T.m_cid = cid; m_payload = payload; m_at = at } ->
            Buffer.add_string (buffer_of cid) payload;
            (* first chunk per cid carries the earliest enqueue stamp
               (the inbox is FIFO) — that is the trace's backdate *)
            if not (List.mem_assoc cid !touched) then
              touched := (cid, at) :: !touched)
          msgs;
        List.iter
          (fun (cid, at) ->
            drain ~enq_at:at (find_conn t cid) cid (buffer_of cid))
          (List.rev !touched);
        loop ()
    in
    loop ()

  let acceptor_loop t =
    let next = ref 0 in
    let register conn =
      Mutex.lock t.conns_lock;
      Hashtbl.replace t.conns conn.T.cid conn;
      (* bind the tenant identity before the client is released, so no
         request can race ahead of its own scoping *)
      (match t.assign_tenant conn.T.cid with
       | Some name -> Hashtbl.replace t.tenant_of conn.T.cid name
       | None -> ());
      Mutex.unlock t.conns_lock
    in
    let rec loop () =
      match
        T.accept ~register t.listener
          ~inbox:t.inboxes.(!next mod t.cfg.workers)
      with
      | _conn ->
        incr next;
        loop ()
      | exception S.Closed -> ()
    in
    loop ()

  (* [prebuilt] lets benchmark sweeps reuse one loaded store across
     many server incarnations (the dataset outlives the threads), and
     is how the hybrid deployment hands the shared store in. *)
  let start_with ?(cfg = default_config) ?(wrap = default_wrapper)
      ?(assign_tenant = fun _ -> None) ~store ~name () =
    let listener = T.listen ~name in
    let inboxes = Array.init cfg.workers (fun _ -> S.chan ()) in
    let t =
      { cfg; store; listener; inboxes; conns = Hashtbl.create 64;
        conns_lock = Mutex.create (); tenant_of = Hashtbl.create 8;
        assign_tenant; wrap; threads = [] }
    in
    let acceptor = S.spawn ~name:(name ^ ".acceptor") (fun () -> acceptor_loop t) in
    let workers =
      List.init cfg.workers (fun i ->
        S.spawn
          ~name:(Printf.sprintf "%s.worker%d" name i)
          (fun () -> worker_loop t inboxes.(i)))
    in
    t.threads <- acceptor :: workers;
    t

  (* Shut down: refuse new connections, drain workers, close replies. *)
  let stop t =
    T.close_listener t.listener;
    Array.iter S.close t.inboxes;
    List.iter S.join t.threads;
    Mutex.lock t.conns_lock;
    Hashtbl.iter (fun _ c -> T.close_conn c) t.conns;
    Hashtbl.reset t.conns;
    Mutex.unlock t.conns_lock

  let store t = t.store
end

(* The classic baseline: a private slab-backed store behind sockets. *)
module Make (S : Platform.Sync_intf.S) = struct
  include Make_generic (Mc_core.Private_memory) (Mc_core.Slab) (S)

  let start ?(cfg = default_config) ?prebuilt ~name () =
    let store =
      match prebuilt with
      | Some store -> store
      | None ->
        let arena = Mc_core.Private_memory.create ~limit:(2 * cfg.mem_limit) in
        let slab = Mc_core.Slab.create ~arena ~mem_limit:cfg.mem_limit in
        Store.create ~mem:arena ~alloc:slab cfg.store
    in
    start_with ~cfg ~store ~name ()
end

(* The hybrid deployment (§6): the bookkeeping process exposes its
   shared, Hodor-protected store over sockets for remote clients while
   local clients keep calling through trampolines. *)
module Make_hybrid (S : Platform.Sync_intf.S) =
  Make_generic (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (S)
