(** The baseline: memcached as a socket server.

    The process owns a private slab-backed store; an acceptor thread
    hands incoming connections to worker threads round-robin (as
    memcached's dispatcher does); each worker runs an event loop over
    its own queue, parsing requests, executing them against the store,
    and writing replies. Every request crosses the kernel twice in
    each direction — the overhead the paper eliminates. *)

module P = Mc_protocol.Types
module CM = Platform.Cost_model

type protocol = Ascii | Binary

type config = {
  workers : int;
  protocol : protocol;
  mem_limit : int;
  store : Mc_core.Store.config;
}

let default_config =
  { workers = 4; protocol = Binary; mem_limit = 64 * 1024 * 1024;
    store =
      { Mc_core.Store.default_config with
        lru_by_size_class = true (* original memcached: LRU per slab class *) } }

(** Shared-ring mode: geometry of the per-connection ring pair plus
    the adaptive batch window's knobs. The window starts at 1
    (immediate dispatch), doubles toward the rate-matched target — as
    many arrivals as fit in [r_t_max_ns] at the EWMA arrival gap,
    capped at [r_b_max] — halves when a nagle deadline fires under the
    window or the arrival rate falls, and snaps back to 1 whenever the
    worker goes fully idle — so an unloaded server keeps the B=1
    latency point and a loaded one converges to the hand-batched
    B=32 crossing amortization with no caller cooperation. *)
type ring_config = {
  r_slots : int;  (** slots per ring *)
  r_slot_bytes : int;  (** bytes per slot (24 of them header) *)
  r_b_max : int;  (** window ceiling *)
  r_t_max_ns : int;  (** nagle deadline cap: max added latency *)
}

let default_ring_config =
  { r_slots = 64; r_slot_bytes = 256; r_b_max = 32; r_t_max_ns = 30_000 }

(* Per-connection adaptive-window state, owned by the connection's
   worker; the scalar fields feed `stats rings` without locking. *)
type wstate = {
  mutable w_window : int;
  mutable w_ewma_gap : int;  (** EWMA of request arrival gaps, ns *)
  mutable w_last_stamp : int;  (** newest slot stamp folded into the EWMA *)
  mutable w_occ : int;  (** occupancy at the last peek, messages *)
  mutable w_drains : int;
  mutable w_ops : int;
}

let fresh_wstate () =
  { w_window = 1; w_ewma_gap = 0; w_last_stamp = 0; w_occ = 0; w_drains = 0;
    w_ops = 0 }

type wrapper = { wrap : 'a. ops:int -> (unit -> 'a) -> 'a }
(** Runs each batch execution; [ops] is the number of operations the
    thunk will execute. The hybrid server passes the Hodor batch
    trampoline here, so one crossing covers the whole batch. The
    record makes the field polymorphic: the same wrapper must serve
    whatever result type the executor thunk produces. *)

let default_wrapper = { wrap = (fun ~ops:_ f -> f ()) }

(* Whether this thread is inside a ring-window drain — the ground
   truth the crash sweep compares against the flight recorder's
   Ring_drain_begin/end breadcrumbs. Module-level for the same reason
   as the store's held-stripe list: the drain spans functor
   boundaries (server -> executor -> store) and is a property of the
   thread, not of any one instantiation. *)
let in_ring_drain : bool ref Tls.key = Tls.new_key (fun () -> ref false)

let in_ring_drain_now () = !(Tls.get in_ring_drain)

(* Generic over the store's memory/allocator so the same server can
   front a private slab store (the classic baseline) or a shared Ralloc
   heap (the hybrid deployment of the paper's §6: remote clients over
   sockets, local clients through Hodor, one store). *)
module Make_generic
    (M : Mc_core.Memory_intf.MEMORY)
    (A : Mc_core.Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) =
struct
  module T = Transport.Sock.Make (S)
  module E = Executor.Make (M) (A) (S)
  module Store = E.Store

  (** Ring mode's tie to the heap owner: the library (Plib) carves ring
      pairs out of its shared heap, seals them under per-connection
      vkeys, and records them in the ring directory for recovery; the
      server just calls these at accept/teardown. *)
  type ring_ctx = {
    rc_cfg : ring_config;
    rc_alloc : int -> T.ring_attach;  (** cid -> sealed ring pair *)
    rc_free : int -> T.ring_attach -> unit;
  }

  type t = {
    cfg : config;
    store : Store.t;
    listener : T.listener;
    inboxes : T.message S.chan array;
    conns : (int, T.conn) Hashtbl.t;
    conns_lock : Mutex.t;
    tenant_of : (int, string) Hashtbl.t;
    (** connection-bound tenant identity (cid → tenant name), assigned
        once at accept time; also guarded by [conns_lock] *)
    assign_tenant : int -> string option;
    wrap : wrapper;
    (** runs each batch execution; the hybrid server passes the Hodor
        batch trampoline here so worker threads gain access rights to
        the shared heap the way any other client of the library does —
        one crossing per drained batch, not per request *)
    ring_ctx : ring_ctx option;
    ring_conns : (int, T.conn) Hashtbl.t array;
    (** per-worker ring connections (guarded by [conns_lock]) *)
    ring_states : (int, wstate) Hashtbl.t;
    (** cid -> adaptive-window state (created/removed under
        [conns_lock]; the scalar fields are the owning worker's) *)
    mutable threads : S.thread list;
  }

  let parse_batch cfg payload =
    match cfg.protocol with
    | Ascii -> Mc_protocol.Ascii.parse_batch payload
    | Binary -> Mc_protocol.Binary.parse_batch payload

  let encode_reply cfg (cmd : P.command) (resp : P.response) =
    match cfg.protocol with
    | Ascii -> Mc_protocol.Ascii.encode_response resp
    | Binary -> Mc_protocol.Binary.encode_reply ~for_cmd:cmd resp

  let find_conn t cid =
    Mutex.lock t.conns_lock;
    let c = Hashtbl.find_opt t.conns cid in
    Mutex.unlock t.conns_lock;
    match c with
    | Some c -> c
    | None -> failwith "worker: message from unregistered connection"

  let drop_conn t cid =
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns cid;
    Hashtbl.remove t.tenant_of cid;
    Mutex.unlock t.conns_lock

  let tenant_of t cid =
    Mutex.lock t.conns_lock;
    let r = Hashtbl.find_opt t.tenant_of cid in
    Mutex.unlock t.conns_lock;
    r

  (* Each worker owns an event loop over its queue. A read from a
     socket delivers an arbitrary byte chunk — possibly a fragment of
     one request, possibly several pipelined requests — so the worker
     keeps a per-connection reassembly buffer. The batch plane drains
     {e every} complete request out of it at once: one parse pass, one
     wrapped (= one protection crossing) batch execution with grouped
     stripe locking, one reply buffer, one send. *)
  let worker_loop t inbox =
    let buffers : (int, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
    let buffer_of cid =
      match Hashtbl.find_opt buffers cid with
      | Some b -> b
      | None ->
        let b = Buffer.create 256 in
        Hashtbl.add buffers cid b;
        b
    in
    (* [enq_at] is the socket enqueue stamp of the oldest chunk this
       drain is serving: the trace is backdated to it, so the time a
       request sat in the worker's event queue appears as its own
       [queue] phase. Re-entries (leftover pipelined bytes) pass no
       stamp — those bytes were just produced, nothing queued. *)
    let rec drain ?enq_at conn cid buf =
      let data = Buffer.contents buf in
      if String.length data = 0 then ()
      else begin
        let root = Telemetry.Span.ingress ?t_start:enq_at ~op:"srv.batch" () in
        (match enq_at with
         | Some at ->
           (* opened backdated, closed immediately: [at, now] is
              exactly the queueing window *)
           Telemetry.Span.finish
             (Telemetry.Span.start ~t_start:at ~phase:"queue" ())
         | None -> ());
        let psp = Telemetry.Span.start ~phase:"parse" () in
        match parse_batch t.cfg data with
        | [], _ ->
          (* an incomplete prefix: wait for the next chunk *)
          Telemetry.Span.finish psp;
          Telemetry.Span.drop root
        | cmds, consumed ->
          Buffer.clear buf;
          Buffer.add_substring buf data consumed (String.length data - consumed);
          S.advance (List.length cmds * CM.current.proto_parse);
          Telemetry.Span.finish psp;
          (* Quit closes the connection; everything before it still
             executes, anything after it is discarded with the
             connection (what a socket close does to pipelined bytes). *)
          let before_quit, quit =
            let rec split acc = function
              | [] -> (List.rev acc, false)
              | P.Quit :: _ -> (List.rev acc, true)
              | c :: tl -> split (c :: acc) tl
            in
            split [] cmds
          in
          (* Tenant-bound connection: rewrite every command into the
             tenant's namespace before execution, then strip the
             prefix back out of the replies and roll the per-tenant
             stats. The whole scoped batch still runs under one wrap
             (= one protection crossing in the hybrid server), so the
             batch plane — stripe groups, optimistic reads — stays
             tenant-scoped for free: the scoped key is the only key
             the store ever sees. *)
          let tenant = tenant_of t cid in
          let before_quit =
            match tenant with
            | None -> before_quit
            | Some name ->
              List.map
                (Executor.scope_command ~prefix:(name ^ "/"))
                before_quit
          in
          let pairs =
            match before_quit with
            | [] -> []
            | cmds ->
              t.wrap.wrap ~ops:(List.length cmds) (fun () ->
                let pairs = E.execute_batch t.store cmds in
                (* Accounting touches the tenant registry, which lives
                   in the protected heap — it must happen inside the
                   crossing, while this thread still holds access. *)
                (match tenant with
                 | None -> ()
                 | Some name ->
                   List.iter
                     (fun (c, r) -> Executor.account_tenant ~name c r)
                     pairs);
                pairs)
          in
          let pairs =
            match tenant with
            | None -> pairs
            | Some name ->
              let prefix = name ^ "/" in
              List.map
                (fun (c, r) -> (c, Executor.unscope_response ~prefix r))
                pairs
          in
          (* One output buffer for the whole batch, one send. *)
          Telemetry.Span.around ~phase:"reply" (fun () ->
            let out = Buffer.create 256 in
            List.iter
              (fun (cmd, resp) ->
                if not (P.suppress_reply cmd resp) then begin
                  S.advance CM.current.proto_pack;
                  Buffer.add_string out (encode_reply t.cfg cmd resp)
                end)
              pairs;
            if Buffer.length out > 0 then
              T.server_send conn (Buffer.contents out));
          Telemetry.Span.finish root;
          if quit then begin
            T.close_conn conn;
            drop_conn t cid;
            Hashtbl.remove buffers cid
          end
          else
            (* Whatever stayed buffered is an incomplete prefix — or
               garbage, which the re-entry reports and drops. *)
            drain conn cid buf
        | exception P.Need_more_data ->
          (* wait for the next chunk *)
          Telemetry.Span.finish psp;
          Telemetry.Span.drop root
        | exception P.Parse_error m ->
          (* resync by dropping the buffered garbage *)
          Telemetry.Span.finish psp;
          Buffer.clear buf;
          S.advance CM.current.proto_pack;
          T.server_send conn (encode_reply t.cfg (P.Invalid m) (P.Client_error m));
          Telemetry.Span.drop root
      end
    in
    let rec loop () =
      match T.worker_drain inbox with
      | exception S.Closed -> ()
      | msgs ->
        (* Append every drained chunk to its connection's buffer first,
           so pipelined requests split across chunks reassemble before
           the batch runs; then drain each touched connection once. *)
        let touched : (int * int) list ref = ref [] in
        List.iter
          (fun { T.m_cid = cid; m_payload = payload; m_at = at } ->
            Buffer.add_string (buffer_of cid) payload;
            (* first chunk per cid carries the earliest enqueue stamp
               (the inbox is FIFO) — that is the trace's backdate *)
            if not (List.mem_assoc cid !touched) then
              touched := (cid, at) :: !touched)
          msgs;
        List.iter
          (fun (cid, at) ->
            drain ~enq_at:at (find_conn t cid) cid (buffer_of cid))
          (List.rev !touched);
        loop ()
    in
    loop ()

  (* ---- shared-ring mode ---------------------------------------------- *)

  let ring_state t cid =
    Mutex.lock t.conns_lock;
    let st =
      match Hashtbl.find_opt t.ring_states cid with
      | Some st -> st
      | None ->
        let st = fresh_wstate () in
        Hashtbl.replace t.ring_states cid st;
        st
    in
    Mutex.unlock t.conns_lock;
    st

  let release_ring_conn t wi conn =
    let cid = conn.T.cid in
    (match (t.ring_ctx, T.rings_of conn) with
     | Some rc, Some ra -> rc.rc_free cid ra
     | _ -> ());
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.ring_conns.(wi) cid;
    Hashtbl.remove t.ring_states cid;
    Mutex.unlock t.conns_lock;
    drop_conn t cid

  (* Validation caught forged slot headers: kill this connection only.
     Its rings were private to its vkey, so nothing it stomped can have
     reached another connection or the library's own state. *)
  let bounce_ring_conn t wi conn =
    T.ring_bounce conn;
    release_ring_conn t wi conn

  (* One adaptive-window drain = one wrapped execution = one protection
     crossing. The ring consume (copy-in) runs *inside* the crossing,
     like the paper's copy_in idiom — the bytes leave the
     client-writable pages before the parser trusts them — and the
     whole window's parse + grouped execution rides the same crossing,
     so crossings/op is 1/window with no caller-side batching. *)
  let ring_drain t conn cid buf ~msgs ~first_stamp =
    let st = ring_state t cid in
    let root = Telemetry.Span.ingress ~t_start:first_stamp ~op:"srv.ring" () in
    Telemetry.Span.finish
      (Telemetry.Span.start ~t_start:first_stamp ~phase:"queue" ());
    let tenant = tenant_of t cid in
    let outcome =
      t.wrap.wrap ~ops:(max 1 msgs) (fun () ->
        (* Flag and breadcrumb move together in one sync-free region
           (and again on the way out): an abrupt kill leaves both
           saying mid-drain; a clean or exceptional exit clears both. *)
        let draining = Tls.get in_ring_drain in
        draining := true;
        Telemetry.Flight.record Telemetry.Flight.Ring_drain_begin ~a:1 ~b:cid
          ~c:msgs;
        Fun.protect
          ~finally:(fun () ->
            draining := false;
            Telemetry.Flight.record Telemetry.Flight.Ring_drain_end ~a:0
              ~b:cid ~c:msgs)
        @@ fun () ->
        match T.ring_consume conn with
        | Error e -> `Forged e
        | Ok chunks ->
            List.iter (fun (m, _stamp) -> Buffer.add_string buf m) chunks;
          let data = Buffer.contents buf in
          if String.length data = 0 then `Pairs ([], false)
          else begin
            let psp = Telemetry.Span.start ~phase:"parse" () in
            match parse_batch t.cfg data with
            | [], _ ->
              (* an incomplete prefix: wait for the next chunks *)
              Telemetry.Span.finish psp;
              `Pairs ([], false)
            | cmds, consumed ->
              Buffer.clear buf;
              Buffer.add_substring buf data consumed
                (String.length data - consumed);
              S.advance (List.length cmds * CM.current.proto_parse);
              Telemetry.Span.finish psp;
              let before_quit, quit =
                let rec split acc = function
                  | [] -> (List.rev acc, false)
                  | P.Quit :: _ -> (List.rev acc, true)
                  | c :: tl -> split (c :: acc) tl
                in
                split [] cmds
              in
              let before_quit =
                match tenant with
                | None -> before_quit
                | Some name ->
                  List.map
                    (Executor.scope_command ~prefix:(name ^ "/"))
                    before_quit
              in
              let pairs =
                match before_quit with
                | [] -> []
                | cmds ->
                  let pairs = E.execute_batch t.store cmds in
                  (match tenant with
                   | None -> ()
                   | Some name ->
                     List.iter
                       (fun (c, r) -> Executor.account_tenant ~name c r)
                       pairs);
                  pairs
              in
              `Pairs (pairs, quit)
            | exception P.Need_more_data ->
              Telemetry.Span.finish psp;
              `Pairs ([], false)
            | exception P.Parse_error m ->
              Telemetry.Span.finish psp;
              `Garbage m
          end)
    in
    match outcome with
    | `Forged _reason ->
      Telemetry.Span.drop root;
      `Bounce
    | `Garbage m ->
      (* resync by dropping the buffered garbage *)
      Buffer.clear buf;
      S.advance CM.current.proto_pack;
      T.server_send conn (encode_reply t.cfg (P.Invalid m) (P.Client_error m));
      Telemetry.Span.drop root;
      `Ok
    | `Pairs (pairs, quit) ->
      st.w_drains <- st.w_drains + 1;
      st.w_ops <- st.w_ops + max 1 msgs;
      let pairs =
        match tenant with
        | None -> pairs
        | Some name ->
          let prefix = name ^ "/" in
          List.map
            (fun (c, r) -> (c, Executor.unscope_response ~prefix r))
            pairs
      in
      Telemetry.Span.around ~phase:"reply" (fun () ->
        let out = Buffer.create 256 in
        List.iter
          (fun (cmd, resp) ->
            if not (P.suppress_reply cmd resp) then begin
              S.advance CM.current.proto_pack;
              Buffer.add_string out (encode_reply t.cfg cmd resp)
            end)
          pairs;
        if Buffer.length out > 0 then T.server_send conn (Buffer.contents out));
        Telemetry.Span.finish root;
      if quit then `Quit else `Ok

  (* The ring worker's event loop. Instead of blocking on the socket
     queue it polls its connections' submission rings (shared-memory
     header reads, no syscall), fires a drain when a window is due —
     occupancy reached the adaptive window, or the nagle deadline
     expired — and only parks (arming every ring for a doorbell) when
     every ring is empty. Parking resets the windows to 1: the first
     op after an idle period is dispatched immediately, which is what
     keeps the unloaded latency at the B=1 point. *)
  let ring_worker_loop t wi inbox =
    let rcfg =
      match t.ring_ctx with Some rc -> rc.rc_cfg | None -> assert false
    in
    let buffers : (int, Buffer.t) Hashtbl.t = Hashtbl.create 16 in
    let buffer_of cid =
      match Hashtbl.find_opt buffers cid with
      | Some b -> b
      | None ->
        let b = Buffer.create 256 in
        Hashtbl.add buffers cid b;
        b
    in
    let my_conns () =
      Mutex.lock t.conns_lock;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.ring_conns.(wi) [] in
      Mutex.unlock t.conns_lock;
      List.sort (fun a b -> compare a.T.cid b.T.cid) l
    in
    (* When the window is due by time rather than occupancy: the
       expected arrival of the Wth message — [w-1] gaps after the
       first, plus half a gap of jitter slack so a window that fills
       exactly on schedule counts as full rather than short — capped
       at [r_t_max_ns] of added latency. Anchoring at the *first*
       pending stamp keeps the bound per-op: however the window
       grows, no request waits past the cap. *)
    let deadline st (p : Transport.Ring.pending) =
      if st.w_ewma_gap <= 0 then p.Transport.Ring.p_first_stamp
      else
        p.Transport.Ring.p_first_stamp
        + min rcfg.r_t_max_ns
            ((st.w_ewma_gap * (2 * (st.w_window - 1) + 1)) / 2)
    in
    let update_ewma st (p : Transport.Ring.pending) =
      let open Transport.Ring in
      if p.p_last_stamp > st.w_last_stamp then begin
        let gap =
          if p.p_msgs >= 2 then
            (p.p_last_stamp - p.p_first_stamp) / (p.p_msgs - 1)
          else if st.w_last_stamp > 0 then p.p_last_stamp - st.w_last_stamp
          else 0
        in
        if gap > 0 then
          st.w_ewma_gap <-
            (if st.w_ewma_gap = 0 then gap
             else ((7 * st.w_ewma_gap) + gap) / 8);
        st.w_last_stamp <- p.p_last_stamp
      end
    in
    (* Adapt toward the rate-matched target: the largest window that
       fills within [r_t_max_ns] at the EWMA arrival rate. A fast
       stream (small gap) earns a big window — up to B_max — because
       each op's share of the nagle residue is tiny next to the
       crossings it saves; a slow stream's target degenerates to 1, so
       sporadic requests keep immediate dispatch. The drained count
       alone can't drive growth: at W=1 a drain fires on the first
       message, so every drain collects exactly one. Growth doubles
       toward the target; a drain that came in under the window halves
       it — which is also how a falling rate deflates the window,
       since the capped deadline then fires before the window fills. *)
    let adapt st ~drained =
      let target =
        if st.w_ewma_gap <= 0 then 1
        else max 1 (min rcfg.r_b_max (rcfg.r_t_max_ns / st.w_ewma_gap))
      in
      (* Overload raises the target past the rate-matched one: a drain
         that collected more than the window means the worker is
         behind, and then a bigger batch is free latency-wise — the
         queue is already longer than the window. *)
      let target = max target (min rcfg.r_b_max drained) in
      if drained >= st.w_window && st.w_window < target then
        st.w_window <- min (st.w_window * 2) target
      else if drained < st.w_window then
        st.w_window <- max (st.w_window / 2) 1
    in
    let rec loop () =
      let now = S.now_ns () in
      let acted = ref false in
      let next_deadline = ref max_int in
      List.iter
        (fun conn ->
          let cid = conn.T.cid in
          match T.ring_pending conn with
          | Error _ ->
            bounce_ring_conn t wi conn;
            Hashtbl.remove buffers cid;
            acted := true
          | Ok None ->
            (ring_state t cid).w_occ <- 0
          | Ok (Some p) ->
            let st = ring_state t cid in
            st.w_occ <- p.Transport.Ring.p_msgs;
            update_ewma st p;
            let dl = deadline st p in
            if p.Transport.Ring.p_msgs >= st.w_window || now >= dl then begin
              acted := true;
              T.ring_arm conn false;
              match
                ring_drain t conn cid (buffer_of cid)
                  ~msgs:p.Transport.Ring.p_msgs
                  ~first_stamp:p.Transport.Ring.p_first_stamp
              with
              | `Ok -> adapt st ~drained:p.Transport.Ring.p_msgs
              | `Quit ->
                T.close_conn conn;
                release_ring_conn t wi conn;
                Hashtbl.remove buffers cid
              | `Bounce ->
                bounce_ring_conn t wi conn;
                Hashtbl.remove buffers cid
            end
            else next_deadline := min !next_deadline dl)
        (my_conns ());
      if !acted then loop ()
      else if !next_deadline < max_int then begin
        (* a window is filling: sleep out the nagle residue *)
        S.sleep_ns (max 200 (!next_deadline - now));
        loop ()
      end
      else begin
        (* idle: arm every ring, re-check (the produce-then-check-armed
           protocol makes this race-free), then park on the doorbell *)
        let conns = my_conns () in
        List.iter (fun c -> T.ring_arm c true) conns;
        let ready =
          List.exists
            (fun c ->
              match T.ring_pending c with
              | Ok None -> false
              | Ok (Some _) | Error _ -> true)
            conns
        in
        if ready then begin
          List.iter (fun c -> T.ring_arm c false) conns;
          loop ()
        end
        else begin
          S.advance CM.current.syscall_select;
          match S.recv inbox with
          | exception S.Closed -> ()
          | _doorbell ->
            T.ctx_switch_penalty ();
            let rec clear () =
              match S.try_recv inbox with
              | Some _ -> clear ()
              | None -> ()
              | exception S.Closed -> ()
            in
            clear ();
            List.iter (fun c -> T.ring_arm c false) conns;
            (* waking from true idle: snap back to immediate dispatch *)
            List.iter (fun c -> (ring_state t c.T.cid).w_window <- 1) conns;
            loop ()
        end
      end
    in
    loop ()

  let acceptor_loop t =
    let next = ref 0 in
    let register conn =
      (match t.ring_ctx with
       | Some rc ->
         let ra = rc.rc_alloc conn.T.cid in
         T.attach_rings conn ra;
         (* the worker may already be parked: the first send must find
            the doorbell armed *)
         T.ring_arm conn true
       | None -> ());
      Mutex.lock t.conns_lock;
      Hashtbl.replace t.conns conn.T.cid conn;
      (match t.ring_ctx with
       | Some _ ->
         Hashtbl.replace t.ring_conns.(!next mod t.cfg.workers) conn.T.cid conn;
         Hashtbl.replace t.ring_states conn.T.cid (fresh_wstate ())
       | None -> ());
      (* bind the tenant identity before the client is released, so no
         request can race ahead of its own scoping *)
      (match t.assign_tenant conn.T.cid with
       | Some name -> Hashtbl.replace t.tenant_of conn.T.cid name
       | None -> ());
      Mutex.unlock t.conns_lock
    in
    let rec loop () =
      match
        T.accept ~register t.listener
          ~inbox:t.inboxes.(!next mod t.cfg.workers)
      with
      | _conn ->
        incr next;
        loop ()
      | exception S.Closed -> ()
    in
    loop ()

  (* [prebuilt] lets benchmark sweeps reuse one loaded store across
     many server incarnations (the dataset outlives the threads), and
     is how the hybrid deployment hands the shared store in. *)
  let start_with ?(cfg = default_config) ?(wrap = default_wrapper)
      ?(assign_tenant = fun _ -> None) ?ring_ctx ~store ~name () =
    let listener = T.listen ~name in
    let inboxes = Array.init cfg.workers (fun _ -> S.chan ()) in
    let t =
      { cfg; store; listener; inboxes; conns = Hashtbl.create 64;
        conns_lock = Mutex.create (); tenant_of = Hashtbl.create 8;
        assign_tenant; wrap; ring_ctx;
        ring_conns = Array.init cfg.workers (fun _ -> Hashtbl.create 8);
        ring_states = Hashtbl.create 16; threads = [] }
    in
    (match ring_ctx with
     | None -> ()
     | Some rc ->
       (* ring geometry and window knobs appended to `stats settings` *)
       let prev_settings = !Executor.settings_stats_hook in
       Executor.settings_stats_hook :=
         (fun () ->
           prev_settings ()
           @ [ ("ring_slots", string_of_int rc.rc_cfg.r_slots);
               ("ring_slot_bytes", string_of_int rc.rc_cfg.r_slot_bytes);
               ("ring_b_max", string_of_int rc.rc_cfg.r_b_max);
               ("ring_t_max_ns", string_of_int rc.rc_cfg.r_t_max_ns) ]);
       (* live window/occupancy figures appended to `stats rings` *)
       Executor.rings_stats_hook :=
         (fun () ->
           Mutex.lock t.conns_lock;
           let sts =
             Hashtbl.fold (fun cid st acc -> (cid, st) :: acc) t.ring_states []
           in
           Mutex.unlock t.conns_lock;
           List.concat_map
             (fun (cid, st) ->
               let tag k = Printf.sprintf "rings:conn%d:%s" cid k in
               [ (tag "window", string_of_int st.w_window);
                 (tag "occupancy", string_of_int st.w_occ);
                 (tag "drains", string_of_int st.w_drains);
                 (tag "ops", string_of_int st.w_ops) ])
             (List.sort compare sts)));
    let acceptor = S.spawn ~name:(name ^ ".acceptor") (fun () -> acceptor_loop t) in
    let workers =
      List.init cfg.workers (fun i ->
        S.spawn
          ~name:(Printf.sprintf "%s.worker%d" name i)
          (fun () ->
            match ring_ctx with
            | Some _ -> ring_worker_loop t i inboxes.(i)
            | None -> worker_loop t inboxes.(i)))
    in
    t.threads <- acceptor :: workers;
    t

  (* Shut down: refuse new connections, drain workers, close replies. *)
  let stop t =
    T.close_listener t.listener;
    Array.iter S.close t.inboxes;
    List.iter S.join t.threads;
    Mutex.lock t.conns_lock;
    Hashtbl.iter (fun _ c -> T.close_conn c) t.conns;
    Hashtbl.reset t.conns;
    Mutex.unlock t.conns_lock;
    match t.ring_ctx with
    | None -> ()
    | Some rc ->
      Array.iter
        (fun tbl ->
          Hashtbl.iter
            (fun cid c ->
              match T.rings_of c with
              | Some ra -> rc.rc_free cid ra
              | None -> ())
            tbl;
          Hashtbl.reset tbl)
        t.ring_conns;
      Hashtbl.reset t.ring_states;
      Executor.rings_stats_hook := (fun () -> []);
      Executor.settings_stats_hook := (fun () -> [])

  let store t = t.store
end

(* The classic baseline: a private slab-backed store behind sockets. *)
module Make (S : Platform.Sync_intf.S) = struct
  include Make_generic (Mc_core.Private_memory) (Mc_core.Slab) (S)

  let start ?(cfg = default_config) ?prebuilt ~name () =
    let store =
      match prebuilt with
      | Some store -> store
      | None ->
        let arena = Mc_core.Private_memory.create ~limit:(2 * cfg.mem_limit) in
        let slab = Mc_core.Slab.create ~arena ~mem_limit:cfg.mem_limit in
        Store.create ~mem:arena ~alloc:slab cfg.store
    in
    start_with ~cfg ~store ~name ()
end

(* The hybrid deployment (§6): the bookkeeping process exposes its
   shared, Hodor-protected store over sockets for remote clients while
   local clients keep calling through trampolines. *)
module Make_hybrid (S : Platform.Sync_intf.S) =
  Make_generic (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (S)
