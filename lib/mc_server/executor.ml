(** Mapping from protocol commands to store operations: the request
    execution engine shared by the ASCII and binary paths of the
    baseline server. *)

module P = Mc_protocol.Types

(* ---- Tenant scoping (connection-bound identity) ----------------------

   A connection bound to a tenant never addresses raw store keys: the
   server rewrites every key-carrying command into the tenant's
   [<name>/] namespace {e before} execution, and strips the prefix
   back out of the values on the way back, so the client sees its own
   flat key space. The rewrite happens host-side from the
   connection-bound identity — no byte sequence the client sends can
   escape its prefix. [Tenant.namespace_enforced] is the red-team
   toggle: with it off, keys pass through unscoped (the forged-prefix
   breach) and even [flush_all] reaches the whole store. *)

let scope_key ~prefix k = prefix ^ k

let scope_params ~prefix (p : P.store_params) =
  { p with P.key = scope_key ~prefix p.P.key }

let scope_command ~prefix (cmd : P.command) : P.command =
  if not !Mc_core.Tenant.namespace_enforced then cmd
  else
    match cmd with
    | P.Get keys -> P.Get (List.map (scope_key ~prefix) keys)
    | P.Gets keys -> P.Gets (List.map (scope_key ~prefix) keys)
    | P.Getx { g_key; g_quiet; g_withkey } ->
      P.Getx { g_key = scope_key ~prefix g_key; g_quiet; g_withkey }
    | P.Set p -> P.Set (scope_params ~prefix p)
    | P.Add p -> P.Add (scope_params ~prefix p)
    | P.Replace p -> P.Replace (scope_params ~prefix p)
    | P.Append p -> P.Append (scope_params ~prefix p)
    | P.Prepend p -> P.Prepend (scope_params ~prefix p)
    | P.Cas (p, u) -> P.Cas (scope_params ~prefix p, u)
    | P.Delete (k, n) -> P.Delete (scope_key ~prefix k, n)
    | P.Incr (k, d, n) -> P.Incr (scope_key ~prefix k, d, n)
    | P.Decr (k, d, n) -> P.Decr (scope_key ~prefix k, d, n)
    | P.Touch (k, e, n) -> P.Touch (scope_key ~prefix k, e, n)
    | P.Flush_all ->
      (* a global wipe from inside one namespace is exactly the
         cross-tenant attack; tenants flush through their own API *)
      P.Invalid "flush_all forbidden on tenant connections"
    | (P.Stats _ | P.Version | P.Quit | P.Noop | P.Invalid _) as c -> c

let unscope_response ~prefix (resp : P.response) : P.response =
  if not !Mc_core.Tenant.namespace_enforced then resp
  else
    match resp with
    | P.Values { with_cas; vals } ->
      let pl = String.length prefix in
      let strip v =
        let k = v.P.v_key in
        if String.length k >= pl && String.sub k 0 pl = prefix then
          { v with P.v_key = String.sub k pl (String.length k - pl) }
        else v
      in
      P.Values { with_cas; vals = List.map strip vals }
    | r -> r

(* Per-tenant rollup for the socket path (the in-process path counts
   inside the library). Keyed by name through [Tenant.bump_hook]; a
   no-op until a library owner installs the hook. *)
let account_tenant ~name (cmd : P.command) (resp : P.response) =
  let bump s = !Mc_core.Tenant.bump_hook name s in
  match (cmd, resp) with
  | (P.Get ks | P.Gets ks), P.Values { vals; _ } ->
    List.iter (fun _ -> bump Mc_core.Tenant.Cmd_get) ks;
    List.iter (fun _ -> bump Mc_core.Tenant.Get_hits) vals
  | P.Getx _, P.Values { vals; _ } ->
    bump Mc_core.Tenant.Cmd_get;
    List.iter (fun _ -> bump Mc_core.Tenant.Get_hits) vals
  | (P.Set _ | P.Add _ | P.Replace _ | P.Append _ | P.Prepend _ | P.Cas _), _
    ->
    bump Mc_core.Tenant.Cmd_set
  | _ -> ()

(* ---- Online quota enforcement (socket path) --------------------------

   The in-process API enforces tenant quotas inside the library; the
   socket path executes through this module, so without a gate a
   remote tenant could write past its budget. A library owner installs
   [quota_gate]; the executor then routes every mutating store arm
   through [g_apply], passing the (already scoped) key and what the op
   will do to that key's footprint. The gate — which owns the registry
   and can probe the store — blocks the op (after trying tenant-local
   eviction) or lets it run and recharges usage from the post-state.
   A [None] gate is the zero-cost default for untenanted servers. *)

type quota_op =
  | Q_set of int  (** set/add/replace/cas: final value length *)
  | Q_grow of int (** append/prepend: bytes added on top of the old value *)
  | Q_touch       (** delete/incr/decr: never blocks, recharge after *)

type quota_gate = {
  g_store : Obj.t;
  (** physical identity of the store the gate guards. The hook is
      process-global (like the tenant hooks) but must never tax an
      unrelated store — harnesses build private stores through this
      same executor — so it only engages when the executing store
      {e is} the one it was installed for. *)
  g_apply : key:string -> op:quota_op -> (unit -> P.response) -> P.response;
}

let quota_gate : quota_gate option ref = ref None

let with_quota ~store ~key ~op f =
  match !quota_gate with
  | Some g when g.g_store == Obj.repr store -> g.g_apply ~key ~op f
  | _ -> f ()

(* Live per-connection window/occupancy figures for `stats rings`,
   installed by a ring-mode server. *)
let rings_stats_hook : (unit -> (string * string) list) ref =
  ref (fun () -> [])

(* Deployment-specific settings (ring defaults, tenant count) appended
   to `stats settings` by whoever owns them — a ring server, the
   protected-library layer. *)
let settings_stats_hook : (unit -> (string * string) list) ref =
  ref (fun () -> [])

(* Heap-observatory and post-mortem surfaces. The heap and (for the
   plib build) the flight recorder live with the library owner, so
   `stats heap` / `stats forensics` are served through hooks it
   installs; an untenanted baseline server answers with the
   recorder-local analysis only. *)
let heap_stats_hook : (unit -> (string * string) list) ref =
  ref (fun () -> [])

let forensics_stats_hook : (unit -> (string * string) list) ref =
  ref (fun () ->
    Telemetry.Forensics.kvs (Telemetry.Forensics.analyze ()))

module Make
    (M : Mc_core.Memory_intf.MEMORY)
    (A : Mc_core.Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) =
struct
  module Store = Mc_core.Store.Make (M) (A) (S)

  let version = "1.6.0-plib-repro"

  let of_store_result : Mc_core.Store.store_result -> P.response = function
    | Mc_core.Store.Stored -> P.Stored
    | Mc_core.Store.Not_stored -> P.Not_stored
    | Mc_core.Store.Exists -> P.Exists
    | Mc_core.Store.Not_found -> P.Not_found
    | Mc_core.Store.No_memory -> P.Server_error "out of memory storing object"

  let retrieve store keys ~with_cas =
    let vals =
      List.filter_map
        (fun key ->
          match Store.get store key with
          | Some r ->
            Some
              { P.v_key = key; v_flags = r.Mc_core.Store.flags;
                v_cas = r.Mc_core.Store.cas; v_data = r.Mc_core.Store.value }
          | None -> None)
        keys
    in
    P.Values { with_cas; vals }

  let execute store (cmd : P.command) : P.response =
    match cmd with
    | P.Get keys -> retrieve store keys ~with_cas:false
    | P.Gets keys -> retrieve store keys ~with_cas:true
    | P.Getx { g_key; _ } -> retrieve store [ g_key ] ~with_cas:true
    | P.Set p ->
      with_quota ~store ~key:p.P.key ~op:(Q_set (String.length p.P.data)) (fun () ->
        of_store_result
          (Store.set store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key
             p.P.data))
    | P.Add p ->
      with_quota ~store ~key:p.P.key ~op:(Q_set (String.length p.P.data)) (fun () ->
        of_store_result
          (Store.add store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key
             p.P.data))
    | P.Replace p ->
      with_quota ~store ~key:p.P.key ~op:(Q_set (String.length p.P.data)) (fun () ->
        of_store_result
          (Store.replace store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key
             p.P.data))
    | P.Append p ->
      with_quota ~store ~key:p.P.key ~op:(Q_grow (String.length p.P.data)) (fun () ->
        of_store_result (Store.append store p.P.key p.P.data))
    | P.Prepend p ->
      with_quota ~store ~key:p.P.key ~op:(Q_grow (String.length p.P.data)) (fun () ->
        of_store_result (Store.prepend store p.P.key p.P.data))
    | P.Cas (p, unique) ->
      with_quota ~store ~key:p.P.key ~op:(Q_set (String.length p.P.data)) (fun () ->
        of_store_result
          (Store.cas store ~flags:p.P.flags ~exptime:p.P.exptime ~cas:unique
             p.P.key p.P.data))
    | P.Delete (key, _) ->
      with_quota ~store ~key ~op:Q_touch (fun () ->
        if Store.delete store key then P.Deleted else P.Not_found)
    | P.Incr (key, delta, _) ->
      with_quota ~store ~key ~op:Q_touch (fun () ->
        match Store.incr store key delta with
        | Mc_core.Store.Counter v -> P.Number v
        | Mc_core.Store.Counter_not_found -> P.Not_found
        | Mc_core.Store.Non_numeric ->
          P.Client_error "cannot increment or decrement non-numeric value")
    | P.Decr (key, delta, _) ->
      with_quota ~store ~key ~op:Q_touch (fun () ->
        match Store.decr store key delta with
        | Mc_core.Store.Counter v -> P.Number v
        | Mc_core.Store.Counter_not_found -> P.Not_found
        | Mc_core.Store.Non_numeric ->
          P.Client_error "cannot increment or decrement non-numeric value")
    | P.Touch (key, exptime, _) ->
      if Store.touch store key exptime then P.Touched else P.Not_found
    | P.Stats None ->
      (* store counters (authoritative, standard names) plus the
         telemetry boundary counters: crossings, pku events, allocator
         traffic *)
      P.Stats_reply (Store.stats store @ Telemetry.Counters.boundary_kvs ())
    | P.Stats (Some "items") -> P.Stats_reply (Store.stats_items store)
    | P.Stats (Some "slabs") -> P.Stats_reply (Store.stats_slabs store)
    | P.Stats (Some "latency") ->
      (* extension: the telemetry latency histograms, one summary
         block per operation *)
      P.Stats_reply (Telemetry.Timers.kvs ())
    | P.Stats (Some "phases") ->
      (* extension: per-phase p50/p99 self-time breakdown folded from
         the sampled span trees *)
      P.Stats_reply (Telemetry.Span.phase_kvs ())
    | P.Stats (Some "contention") ->
      (* extension: the stripe-contention profiler's top-K report,
         plus the seqlock read-path counters that explain a quiet
         profile (hits never queued on a stripe at all) *)
      P.Stats_reply
        (Telemetry.Contention.kvs () @ Telemetry.Counters.optimistic_kvs ())
    | P.Stats (Some "rings") ->
      (* extension: shared-ring transport counters, plus the live
         adaptive-window state the ring server appends *)
      P.Stats_reply
        (Telemetry.Counters.ring_kvs () @ !rings_stats_hook ())
    | P.Stats (Some "tenants") ->
      (* per-tenant rollups; served through the hook because the
         registry lives with the library owner, not the store *)
      P.Stats_reply (!Mc_core.Tenant.stats_hook ())
    | P.Stats (Some "settings") ->
      (* the standard introspection arm: which toggles this build is
         actually running with *)
      let cfg = Store.config store in
      P.Stats_reply
        ([ ("optimistic_reads",
            if cfg.Mc_core.Store.optimistic_reads then "1" else "0");
           ("lock_count", string_of_int cfg.Mc_core.Store.lock_count);
           ("hashpower", string_of_int cfg.Mc_core.Store.hashpower);
           ("lru_count", string_of_int cfg.Mc_core.Store.lru_count);
           ("evict_batch", string_of_int cfg.Mc_core.Store.evict_batch);
           ("trace_level",
            Telemetry.Trace.severity_name (Telemetry.Trace.get_level ()));
           ("trace_sample_every",
            string_of_int (Telemetry.Span.sampling ()));
           ("slow_threshold_ns",
            string_of_int (Telemetry.Span.slow_threshold_ns ()));
           ("telemetry", if Telemetry.Control.on () then "1" else "0") ]
         @ Telemetry.Flight.settings_kvs ()
         @ !settings_stats_hook ())
    | P.Stats (Some "heap") ->
      (* the heap observatory: per-class occupancy, fragmentation,
         largest free extent (hook-installed by the heap's owner) *)
      P.Stats_reply (!heap_stats_hook ())
    | P.Stats (Some "forensics") ->
      (* the post-mortem story: death classification, victim op and
         stripes, recovery cross-checks *)
      P.Stats_reply (!forensics_stats_hook ())
    | P.Stats (Some "reset") ->
      Store.stats_reset store;
      Telemetry.Counters.reset ();
      Telemetry.Timers.reset ();
      Telemetry.Span.reset_phases ();
      Telemetry.Contention.reset ();
      (* tenant op tallies reset too; registry membership, quotas and
         vkeys are durable state, not statistics *)
      !Mc_core.Tenant.reset_hook ();
      P.Reset
    | P.Stats (Some arg) -> P.Client_error ("unknown stats argument " ^ arg)
    | P.Version -> P.Version_reply version
    | P.Flush_all ->
      Store.flush_all store;
      P.Ok
    | P.Quit -> P.Ok
    | P.Noop -> P.Ok
    | P.Invalid m -> P.Client_error m

  (* Per-protocol-op latency, in virtual time, recorded host-side only
     (no [advance]): with telemetry off this is one ref read. *)
  let execute store (cmd : P.command) : P.response =
    Telemetry.Span.around ~phase:"exec" @@ fun () ->
    if not (Telemetry.Control.on ()) then execute store cmd
    else begin
      (* Tenant and conn ride on Tenant_scope / ring-drain records;
         the dispatch crumb names the op (interned against the
         forensics table — one word). An info record: its publish
         crosses a sync point, giving the crash sweep the torn-write
         window the publish-last protocol must absorb. *)
      Telemetry.Flight.record Telemetry.Flight.Op_dispatch
        ~a:(Telemetry.Forensics.op_code (P.command_name cmd)) ~b:(-1) ~c:(-1);
      let t0 = S.now_ns () in
      let resp = execute store cmd in
      Telemetry.Timers.record ~op:(P.command_name cmd) (S.now_ns () - t0);
      resp
    end

  (* ---- Batch execution ------------------------------------------------- *)

  (* Only operations whose store work stays within their own key's
     stripe may run under a stripe group. Storage and counter commands
     allocate, and allocation can evict items living in arbitrary
     other stripes — taking those locks while a group is held would be
     a same-class rank inversion. They execute per-op instead, with
     their usual internal locking, still inside the one crossing. *)
  let groupable = function
    | P.Get _ | P.Gets _ | P.Getx _ | P.Delete _ | P.Touch _ -> true
    | _ -> false

  let cmd_keys = function
    | P.Get keys | P.Gets keys -> keys
    | P.Getx { g_key; _ } -> [ g_key ]
    | P.Delete (k, _) -> [ k ]
    | P.Touch (k, _, _) -> [ k ]
    | _ -> []

  (* Execute a pipelined batch. Groupable runs acquire their distinct
     stripes once, sorted ascending (creation-rank order — the lockdep
     discipline for same-class mutexes), and ops execute in arrival
     order under the group, so two ops on one key keep their relative
     order. Responses align 1:1 with [cmds]. *)
  let execute_batch store (cmds : P.command list) :
      (P.command * P.response) list =
    let rec split_run acc = function
      | c :: rest when groupable c -> split_run (c :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec go acc = function
      | [] -> List.rev acc
      | c :: _ as cmds when groupable c ->
        let run, rest = split_run [] cmds in
        (* With the seqlock read path on, gets need no stripes — they
           validate against the version words and fall back per-op on
           conflict. Only the mutating groupables (delete/touch) still
           pin their stripes; an all-get run holds nothing at all. *)
        let optimistic =
          (Store.config store).Mc_core.Store.optimistic_reads
        in
        let stripes =
          List.sort_uniq compare
            (List.concat_map
               (fun c ->
                 match c with
                 | (P.Get _ | P.Gets _ | P.Getx _) when optimistic -> []
                 | c -> List.map (Store.stripe_of store) (cmd_keys c))
               run)
        in
        let resps =
          (* [group] covers the stripe-amortized run: stripe_wait/
             stripe_hold and the per-op [exec] children nest under it. *)
          Telemetry.Span.around ~phase:"group" (fun () ->
            Store.with_stripes store ~stripes (fun () ->
              List.map (fun c -> (c, execute store c)) run))
        in
        go (List.rev_append resps acc) rest
      | c :: rest -> go ((c, execute store c) :: acc) rest
    in
    go [] cmds
end
