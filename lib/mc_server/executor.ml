(** Mapping from protocol commands to store operations: the request
    execution engine shared by the ASCII and binary paths of the
    baseline server. *)

module P = Mc_protocol.Types

module Make
    (M : Mc_core.Memory_intf.MEMORY)
    (A : Mc_core.Memory_intf.ALLOCATOR)
    (S : Platform.Sync_intf.S) =
struct
  module Store = Mc_core.Store.Make (M) (A) (S)

  let version = "1.6.0-plib-repro"

  let of_store_result : Mc_core.Store.store_result -> P.response = function
    | Mc_core.Store.Stored -> P.Stored
    | Mc_core.Store.Not_stored -> P.Not_stored
    | Mc_core.Store.Exists -> P.Exists
    | Mc_core.Store.Not_found -> P.Not_found
    | Mc_core.Store.No_memory -> P.Server_error "out of memory storing object"

  let retrieve store keys ~with_cas =
    let vals =
      List.filter_map
        (fun key ->
          match Store.get store key with
          | Some r ->
            Some
              { P.v_key = key; v_flags = r.Mc_core.Store.flags;
                v_cas = r.Mc_core.Store.cas; v_data = r.Mc_core.Store.value }
          | None -> None)
        keys
    in
    P.Values { with_cas; vals }

  let execute store (cmd : P.command) : P.response =
    match cmd with
    | P.Get keys -> retrieve store keys ~with_cas:false
    | P.Gets keys -> retrieve store keys ~with_cas:true
    | P.Set p ->
      of_store_result
        (Store.set store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key p.P.data)
    | P.Add p ->
      of_store_result
        (Store.add store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key p.P.data)
    | P.Replace p ->
      of_store_result
        (Store.replace store ~flags:p.P.flags ~exptime:p.P.exptime p.P.key
           p.P.data)
    | P.Append p -> of_store_result (Store.append store p.P.key p.P.data)
    | P.Prepend p -> of_store_result (Store.prepend store p.P.key p.P.data)
    | P.Cas (p, unique) ->
      of_store_result
        (Store.cas store ~flags:p.P.flags ~exptime:p.P.exptime ~cas:unique
           p.P.key p.P.data)
    | P.Delete (key, _) ->
      if Store.delete store key then P.Deleted else P.Not_found
    | P.Incr (key, delta, _) ->
      (match Store.incr store key delta with
       | Mc_core.Store.Counter v -> P.Number v
       | Mc_core.Store.Counter_not_found -> P.Not_found
       | Mc_core.Store.Non_numeric ->
         P.Client_error "cannot increment or decrement non-numeric value")
    | P.Decr (key, delta, _) ->
      (match Store.decr store key delta with
       | Mc_core.Store.Counter v -> P.Number v
       | Mc_core.Store.Counter_not_found -> P.Not_found
       | Mc_core.Store.Non_numeric ->
         P.Client_error "cannot increment or decrement non-numeric value")
    | P.Touch (key, exptime, _) ->
      if Store.touch store key exptime then P.Touched else P.Not_found
    | P.Stats -> P.Stats_reply (Store.stats store)
    | P.Version -> P.Version_reply version
    | P.Flush_all ->
      Store.flush_all store;
      P.Ok
    | P.Quit -> P.Ok
end
