(** A shared memory region: the simulated equivalent of the
    memory-mapped file that Ralloc builds its shared heap on.

    Every load and store is checked against the calling thread's pkru
    register and the region's per-page protection keys — the PKU
    hardware semantics, enforced in software. A thread whose pkru does
    not open the page's key gets {!Pku.Fault.Protection_fault}, like
    the SEGV_PKUERR a stray access takes on real hardware.

    Offsets, not addresses, index the region: each simulated process
    maps it at its own base ({!Mapping}), which is what makes
    position-independent pptrs necessary — as in the paper. *)

type t

val page_size : int
(** 4096, as on the paper's hardware. *)

val create :
  ?atomic_slots:int -> name:string -> size:int -> pkey:Pku.Pkey.t -> unit -> t
(** A zero-filled region of [size] bytes (rounded up to whole pages),
    every page tagged with [pkey]. *)

val name : t -> string

val size : t -> int

val pages : t -> int

(** {1 Protection} *)

val pkey_of_page : t -> int -> Pku.Pkey.t

val set_page_pkey : t -> int -> Pku.Pkey.t -> unit

val tag_range : t -> off:int -> len:int -> pkey:Pku.Pkey.t -> unit
(** Retag pages (pkey_mprotect(2) in miniature). Outside
    {!kernel_mode}, the seccomp-style gate installed with
    {!set_mprotect_gate} is consulted first — Linux lets any process
    pkey_mprotect pages mapped in its own address space, so the only
    thing standing between an attacker and retagging the shared heap
    to key 0 is the syscall filter. *)

val set_mprotect_gate : (unit -> unit) -> unit
(** Install the gate consulted by non-kernel-mode retagging (wired up
    by [Simos.Process]; no-op by default). *)

val claim : t -> owner:string -> unit
(** Tag the region as owned by a named protected library (runtime
    bookkeeping, not persisted). *)

val unclaim : t -> unit

val claimant : t -> string option

val kernel_mode : (unit -> 'a) -> 'a
(** Run [f] with protection checks suspended, as ring-0 code (the
    loader, the bookkeeping process's setup, persistence) does.
    Restores the previous mode on exit, exceptions included. *)

val in_kernel_mode : unit -> bool

(** {1 Checked accessors}

    All raise [Invalid_argument] outside the region's bounds and
    {!Pku.Fault.Protection_fault} when the calling thread's pkru does
    not permit the access. Multi-byte accesses check every page they
    touch. *)

val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit

val read_i32 : t -> int -> int

val write_i32 : t -> int -> int -> unit

val read_i64 : t -> int -> int

val write_i64 : t -> int -> int -> unit

val read_i64_raw : t -> int -> int64
(** Full 64-bit read, without the native-int truncation of
    {!read_i64}. Used for unsigned quantities such as CAS values. *)

val write_i64_raw : t -> int -> int64 -> unit

val blit_from_bytes : t -> src:bytes -> src_off:int -> dst_off:int -> len:int -> unit

val blit_to_bytes : t -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val blit_within : t -> src_off:int -> dst_off:int -> len:int -> unit

val fill : t -> off:int -> len:int -> char -> unit

val read_string : t -> off:int -> len:int -> string

val write_string : t -> off:int -> string -> unit

val equal_string : t -> off:int -> len:int -> string -> bool
(** Compare a range to a string without copying (the store's key
    comparisons). *)

(** {1 Atomic slots}

    Words supporting compare-and-swap, standing in for the words Ralloc
    CASes in shared memory (OCaml [Bytes] has no atomics); persisted
    with the region. *)

val alloc_atomic : t -> int

val atomic : t -> int -> int Atomic.t

(** {1 Persistence} *)

val flush : t -> path:string -> unit
(** Write bytes, page keys and atomic slots to [path]. *)

val load : path:string -> t
(** Reconstruct a region from a {!flush}ed file. *)

val backing : t -> string option
