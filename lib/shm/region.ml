(** A shared memory region: the simulated equivalent of the
    memory-mapped file that Ralloc builds its shared heap on.

    Every load and store goes through a protection check against the
    calling thread's pkru register and the region's per-page protection
    keys — this is where the PKU hardware semantics are enforced.
    A thread whose pkru does not open the page's key gets a
    {!Pku.Fault.Protection_fault}, exactly like the SEGV_PKUERR a real
    stray access would take.

    The region also carries a small array of atomic slots (allocated
    via {!alloc_atomic}) standing in for words on which the real Ralloc
    performs compare-and-swap; OCaml [Bytes] offers no atomics, so the
    slots live beside the byte array and are persisted with it.

    Offsets, not addresses, index the region: each simulated process
    maps the region at its own base address ({!Mapping}), which is what
    makes position-independent [pptr]s necessary — as in the paper. *)

let page_size = 4096

type t = {
  name : string;
  data : Bytes.t;
  page_pkeys : int array;
  atomics : int Atomic.t array;
  next_atomic : int Atomic.t;
  mutable backing : string option;
  mutable claimed_by : string option;
  (** the protected library currently owning this region's pages, if
      any — runtime-only bookkeeping (not persisted) that lets
      [Hodor.Library] refuse to protect a region some other live
      library already claimed (the double-admission attack) *)
}

(* Bookkeeping code (the loader, the background process's setup, the
   persistence paths) runs as the "kernel side" and bypasses pkru
   checks, as ring-0 code does on real hardware. *)
let kernel_flag : bool ref Tls.key = Tls.new_key (fun () -> ref false)

let kernel_mode f =
  let flag = Tls.get kernel_flag in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let in_kernel_mode () = !(Tls.get kernel_flag)

let create ?(atomic_slots = 8192) ~name ~size ~pkey () =
  if size <= 0 then invalid_arg "Region.create: size";
  let pages = (size + page_size - 1) / page_size in
  { name;
    data = Bytes.make (pages * page_size) '\000';
    page_pkeys = Array.make pages pkey;
    atomics = Array.init atomic_slots (fun _ -> Atomic.make 0);
    next_atomic = Atomic.make 0;
    backing = None;
    claimed_by = None }

let name t = t.name

let size t = Bytes.length t.data

let pages t = Array.length t.page_pkeys

let pkey_of_page t page = t.page_pkeys.(page)

(* Retagging pages is pkey_mprotect(2): Linux allows it on any page
   mapped in the caller's address space — including a shared region —
   which is exactly why PKU sandboxes must seccomp-filter it (ERIM,
   Garmr). The gate hook is installed by [Simos.Process]; kernel-mode
   (ring-0) paths like the loader's protect_region are exempt. *)
let mprotect_gate : (unit -> unit) ref = ref (fun () -> ())

let set_mprotect_gate f = mprotect_gate := f

let set_page_pkey t page pkey =
  if not (Pku.Pkey.is_valid pkey) then invalid_arg "Region.set_page_pkey";
  if not (in_kernel_mode ()) then !mprotect_gate ();
  t.page_pkeys.(page) <- pkey

let tag_range t ~off ~len ~pkey =
  let first = off / page_size and last = (off + len - 1) / page_size in
  for p = first to last do
    set_page_pkey t p pkey
  done

let claim t ~owner = t.claimed_by <- Some owner

let unclaim t = t.claimed_by <- None

let claimant t = t.claimed_by

(* ---- Protection check ---------------------------------------------- *)

let fault t ~off ~write ~key =
  Telemetry.Counters.pkey_fault key;
  Pku.Fault.protection_fault
    "pkey fault: %s of %s+%d (page %d, %a) denied under %a"
    (if write then "store" else "load")
    t.name off (off / page_size)
    (fun () k -> Format.asprintf "%a" Pku.Pkey.pp k) key
    (fun () v -> Format.asprintf "%a" Pku.Pkru.pp v) (Pku.Pkru.read ())

let check t ~off ~len ~write =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Region %s: access [%d,+%d) out of bounds" t.name off len);
  if not (in_kernel_mode ()) then begin
    let pkru = Pku.Pkru.read () in
    let first = off / page_size and last = (off + len - 1) / page_size in
    if first = last then begin
      let key = t.page_pkeys.(first) in
      let ok =
        if write then Pku.Pkru.allows_write pkru key
        else Pku.Pkru.allows_read pkru key
      in
      if not ok then fault t ~off ~write ~key
    end
    else
      for p = first to last do
        let key = t.page_pkeys.(p) in
        let ok =
          if write then Pku.Pkru.allows_write pkru key
          else Pku.Pkru.allows_read pkru key
        in
        if not ok then fault t ~off:(p * page_size) ~write ~key
      done
  end

(* ---- Checked accessors --------------------------------------------- *)

let read_u8 t off =
  check t ~off ~len:1 ~write:false;
  Char.code (Bytes.unsafe_get t.data off)

let write_u8 t off v =
  check t ~off ~len:1 ~write:true;
  Bytes.unsafe_set t.data off (Char.unsafe_chr (v land 0xff))

let read_i32 t off =
  check t ~off ~len:4 ~write:false;
  Int32.to_int (Bytes.get_int32_le t.data off)

let write_i32 t off v =
  check t ~off ~len:4 ~write:true;
  Bytes.set_int32_le t.data off (Int32.of_int v)

let read_i64 t off =
  check t ~off ~len:8 ~write:false;
  Int64.to_int (Bytes.get_int64_le t.data off)

let write_i64 t off v =
  check t ~off ~len:8 ~write:true;
  Bytes.set_int64_le t.data off (Int64.of_int v)

(* Full-width variants: the store's CAS counter is an unsigned 64-bit
   quantity, which [read_i64]'s native-int round trip would truncate
   (OCaml ints are 63-bit). *)
let read_i64_raw t off =
  check t ~off ~len:8 ~write:false;
  Bytes.get_int64_le t.data off

let write_i64_raw t off v =
  check t ~off ~len:8 ~write:true;
  Bytes.set_int64_le t.data off v

let blit_from_bytes t ~src ~src_off ~dst_off ~len =
  check t ~off:dst_off ~len ~write:true;
  Bytes.blit src src_off t.data dst_off len

let blit_to_bytes t ~src_off ~dst ~dst_off ~len =
  check t ~off:src_off ~len ~write:false;
  Bytes.blit t.data src_off dst dst_off len

let blit_within t ~src_off ~dst_off ~len =
  check t ~off:src_off ~len ~write:false;
  check t ~off:dst_off ~len ~write:true;
  Bytes.blit t.data src_off t.data dst_off len

let fill t ~off ~len c =
  check t ~off ~len ~write:true;
  Bytes.fill t.data off len c

let read_string t ~off ~len =
  check t ~off ~len ~write:false;
  Bytes.sub_string t.data off len

let write_string t ~off s =
  let len = String.length s in
  check t ~off ~len ~write:true;
  Bytes.blit_string s 0 t.data off len

(* Equality of a region range and a string, without copying: the
   store's key comparisons use this. *)
let equal_string t ~off ~len s =
  check t ~off ~len ~write:false;
  len = String.length s
  &&
  let rec go i =
    i >= len
    || (Bytes.unsafe_get t.data (off + i) = String.unsafe_get s i && go (i + 1))
  in
  go 0

(* ---- Atomic slots --------------------------------------------------- *)

let alloc_atomic t =
  let slot = Atomic.fetch_and_add t.next_atomic 1 in
  if slot >= Array.length t.atomics then
    failwith (Printf.sprintf "Region %s: out of atomic slots" t.name);
  slot

let atomic t slot = t.atomics.(slot)

(* ---- Persistence ----------------------------------------------------- *)

type header = {
  h_name : string;
  h_size : int;
  h_pkeys : int array;
  h_atomics : int array;
  h_next_atomic : int;
}

let magic = "SHMREGN1"

let flush t ~path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
    output_string oc magic;
    let hdr =
      { h_name = t.name; h_size = Bytes.length t.data;
        h_pkeys = t.page_pkeys;
        h_atomics = Array.map Atomic.get t.atomics;
        h_next_atomic = Atomic.get t.next_atomic }
    in
    Marshal.to_channel oc hdr [];
    output_bytes oc t.data);
  t.backing <- Some path

let load ~path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
    let m = really_input_string ic (String.length magic) in
    if m <> magic then failwith (path ^ ": not a region file");
    let hdr : header = Marshal.from_channel ic in
    let data = Bytes.create hdr.h_size in
    really_input ic data 0 hdr.h_size;
    { name = hdr.h_name; data; page_pkeys = hdr.h_pkeys;
      atomics = Array.map Atomic.make hdr.h_atomics;
      next_atomic = Atomic.make hdr.h_next_atomic;
      backing = Some path;
      claimed_by = None })

let backing t = t.backing
