(** A Hodor protected library: code granted amplified access rights to
    a set of protected regions while (and only while) a thread executes
    inside it. *)

type protection =
  | Protected  (** full Hodor: pkru gating + trampoline cost *)
  | Unprotected
  (** the paper's "Plib, No Hodor" configuration: same code and direct
      calls, no pkru switching — faster by ~5% and not safe *)

(* Health ladder. [Killed_in_call] is the recoverable middle rung: a
   caller was killed and its in-flight call ran past the grace window,
   so the OS terminated it mid-call — shared state may be torn, but in
   bounded, enumerable ways the recovery protocol repairs. [Poisoned]
   stays terminal: the library {e code} itself crashed, so no
   structural repair can vouch for its logic. *)
type health =
  | Healthy
  | Killed_in_call of string
  | Poisoned of string

type t = {
  lib_name : string;
  pkey : Pku.Pkey.t;
  protection : protection;
  owner_uid : int;
  grace_ns : int;
  (** how long the OS lets an in-library call of a killed process keep
      running before terminating it anyway *)
  copy_args : bool;
  (** trampoline-level copying of arguments into the library domain
      (the paper leaves this off and copies manually; ablation abl3) *)
  exports : (string, Obj.t) Hashtbl.t;
  mutable regions : Shm.Region.t list;
  mutable health : health;
  mutable init_fn : (unit -> unit) option;
  mutable recover_fn : (unit -> unit) option;
  mutable released : bool;
}

exception Library_poisoned of string
(** The library crashed during a call (e.g. a fault while holding
    locks); as in the paper, this is unrecoverable for the store. *)

exception Library_needs_recovery of string
(** A caller died mid-call past the grace window; the store must be
    recovered (see {!recover}) before further calls are admitted. *)

exception Region_already_protected of string
(** An attempt to {!protect_region} a region some other live library
    already claimed: admitting it would retag the victim's pages under
    the attacker's key (the double-admission attack). *)

let default_grace_ns = 50_000_000 (* a "generous timeout": 50 ms *)

let create ?(protection = Protected) ?(grace_ns = default_grace_ns)
    ?(copy_args = false) ~name ~owner_uid () =
  let pkey =
    match protection with
    | Protected -> Pku.Pkey.alloc ()
    | Unprotected -> Pku.Pkey.default
  in
  { lib_name = name; pkey; protection; owner_uid; grace_ns; copy_args;
    exports = Hashtbl.create 8; regions = []; health = Healthy;
    init_fn = None; recover_fn = None; released = false }

let name t = t.lib_name

let pkey t = t.pkey

let protection t = t.protection

let owner_uid t = t.owner_uid

let grace_ns t = t.grace_ns

let copy_args t = t.copy_args

(* Claim a region as a protected resource: every page gets the
   library's key, so only threads inside the library can touch it.
   A region another live library already claimed is refused — retag
   would silently move the victim's pages into the claimant's
   protection domain. *)
let protect_region t region =
  (match Shm.Region.claimant region with
   | Some owner when owner <> t.lib_name ->
     raise
       (Region_already_protected
          (Printf.sprintf "%s: region %s is protected by %s" t.lib_name
             (Shm.Region.name region) owner))
   | Some _ | None -> ());
  Shm.Region.kernel_mode (fun () ->
    Shm.Region.tag_range region ~off:0
      ~len:(Shm.Region.size region)
      ~pkey:t.pkey);
  Shm.Region.claim region ~owner:t.lib_name;
  t.regions <- region :: t.regions

let regions t = t.regions

let set_init t f = t.init_fn <- Some f

let init_fn t = t.init_fn

(* Poison dominates: a code crash is terminal even if a kill was
   noticed first. *)
let poison t reason =
  match t.health with
  | Poisoned _ -> ()
  | Healthy | Killed_in_call _ -> t.health <- Poisoned reason

(* A second kill while already awaiting recovery keeps the first
   report (mirrors Process.kill: the first death timestamp wins). *)
let mark_killed t reason =
  match t.health with
  | Healthy -> t.health <- Killed_in_call reason
  | Killed_in_call _ | Poisoned _ -> ()

let health t = t.health

let poisoned t =
  match t.health with Poisoned r -> Some r | Healthy | Killed_in_call _ -> None

let killed t =
  match t.health with Killed_in_call r -> Some r | Healthy | Poisoned _ -> None

let check_poisoned t =
  match t.health with
  | Poisoned r -> raise (Library_poisoned (t.lib_name ^ ": " ^ r))
  | Killed_in_call r -> raise (Library_needs_recovery (t.lib_name ^ ": " ^ r))
  | Healthy -> ()

let set_recover t f = t.recover_fn <- Some f

(* Run the registered recovery routine and re-admit callers. Also
   callable on a [Healthy] library (e.g. after a kill so abrupt no
   trampoline ever observed it): recovery is idempotent at quiescence.
   A [Poisoned] library stays dead. *)
let recover t =
  (match t.health with
   | Poisoned r -> raise (Library_poisoned (t.lib_name ^ ": " ^ r))
   | Healthy | Killed_in_call _ -> ());
  (match t.recover_fn with Some f -> f () | None -> ());
  t.health <- Healthy;
  Telemetry.Counters.incr Telemetry.Counters.Id.recoveries;
  Telemetry.Trace.emit ~sev:Telemetry.Trace.Info ~subsys:"hodor"
    (t.lib_name ^ ": recovered, callers re-admitted")

(* Typed export registry, used by the loader's pseudo-binary
   interpreter. The Obj.t is always a [unit -> unit]. *)
let export t ~entry (f : unit -> unit) =
  Hashtbl.replace t.exports entry (Obj.repr f)

let find_export t entry : (unit -> unit) option =
  Option.map (fun o -> (Obj.obj o : unit -> unit)) (Hashtbl.find_opt t.exports entry)

(* Idempotent: the old unconditional [Pkey.free] let a double release
   free a key that had since been recycled to another library. *)
let release t =
  if not t.released then begin
    t.released <- true;
    (match t.protection with
     | Protected -> Pku.Pkey.free t.pkey
     | Unprotected -> ());
    List.iter Shm.Region.unclaim t.regions;
    t.regions <- []
  end
