(** The modified (trusted) loader.

    Responsibilities, as in the paper (§2, §3.3):
    - scan an about-to-run binary for stray [wrpkru] opcodes and plant
      hardware breakpoints on them; past four strays (the number of
      debug registers) fall back to gating the containing pages;
    - run each linked protected library's initialisation routine
      {e before main}, with the effective uid of the library's owner,
      so the library can open its backing store file even though the
      client's own uid could not (§3.3's euid dance);
    - install trampolines for the library's entry points (modeled by
      {!Trampoline}).

    Garmr's attacks on this design motivate the admission path
    ({!admit}): instruction-granular breakpoints miss a [wrpkru]
    byte pattern hidden inside an immediate or a data island (a
    hijacked indirect jump can land mid-instruction, where no
    breakpoint was planted), and the trampoline table inside a binary
    is attacker-authored, so "the wrpkru is at a declared trampoline"
    proves nothing. Admission therefore (1) cross-checks claimed
    trampolines against the loader's own installation records, keyed
    by an image digest so a renamed or patched binary cannot inherit
    a blessing, and (2) scans the {e byte image} for gadget patterns
    at every offset, rejecting the binary outright instead of trying
    to trap what breakpoints cannot cover. *)

module Process = Simos.Process

type report = {
  strays_found : int;
  breakpoints : int;
  pages_gated : int;
}

let scan_and_arm (dr : Pku.Debug_regs.t) (b : Pku.Insn.binary) : report =
  let strays = Pku.Insn.stray_wrpkru_addrs b in
  let bps = ref 0 and gated = ref 0 in
  List.iter
    (fun addr ->
      match Pku.Debug_regs.install dr ~binary:b.Pku.Insn.binary_name ~addr with
      | () -> incr bps
      | exception Pku.Debug_regs.Exhausted ->
        let page = Pku.Debug_regs.page_of_addr addr in
        Pku.Debug_regs.gate_page dr ~binary:b.Pku.Insn.binary_name ~page;
        incr gated)
    strays;
  { strays_found = List.length strays; breakpoints = !bps;
    pages_gated = !gated }

(* ---- Admission ------------------------------------------------------ *)

type verdict = Admitted of report | Rejected of string

(* The red-team toggle: with the gadget scan off, [admit] degrades to
   the legacy scan_and_arm-and-hope path, which the gadget scenarios
   in lib/redteam demonstrate is bypassable. *)
let gadget_scan_enabled = ref true

(* Trampolines the loader itself installed, keyed by binary name and
   pinned to an image digest: a binary's own trampoline table is
   attacker-authored, so admission only trusts entries recorded here,
   and only when the image has not changed since installation. *)
let installed_trampolines : (string, string * int list) Hashtbl.t =
  Hashtbl.create 8

let digest b = Digest.string (Pku.Insn.byte_image b)

let install_trampolines (b : Pku.Insn.binary) =
  Hashtbl.replace installed_trampolines b.Pku.Insn.binary_name
    (digest b, b.Pku.Insn.trampoline_addrs)

let forget_trampolines () = Hashtbl.reset installed_trampolines

let reject reason =
  Telemetry.Counters.incr Telemetry.Counters.Id.loader_rejects;
  Telemetry.Trace.emit ~sev:Telemetry.Trace.Warn ~subsys:"loader" reason;
  Rejected reason

let admit (dr : Pku.Debug_regs.t) (b : Pku.Insn.binary) : verdict =
  if not !gadget_scan_enabled then Admitted (scan_and_arm dr b)
  else begin
    let name = b.Pku.Insn.binary_name in
    let claimed = b.Pku.Insn.trampoline_addrs in
    let recorded = Hashtbl.find_opt installed_trampolines name in
    let trampoline_check =
      match claimed, recorded with
      | [], _ -> Ok []
      | _ :: _, None ->
        Error
          (Printf.sprintf
             "%s: claims %d trampolines the loader never installed" name
             (List.length claimed))
      | _ :: _, Some (d, addrs) ->
        if d <> digest b then
          Error (name ^ ": image tampered since trampoline installation")
        else if List.sort compare claimed <> List.sort compare addrs then
          Error (name ^ ": trampoline table does not match the loader's records")
        else Ok addrs
    in
    match trampoline_check with
    | Error reason -> reject reason
    | Ok trampolines ->
      (* Byte-granular gadget scan: every wrpkru/xrstor pattern in the
         image must be the encoding of a loader-installed trampoline,
         at its exact instruction start — anything else (stray insn,
         misaligned pattern inside an immediate, data island) rejects
         the binary, because no breakpoint can cover a jump into the
         middle of an instruction. *)
      let img = Pku.Insn.byte_image b in
      let offs = Pku.Insn.byte_offsets b in
      let legit_offsets =
        List.filter_map
          (fun addr ->
            if addr >= 0 && addr < Array.length offs then Some offs.(addr)
            else None)
          trampolines
      in
      let bad =
        List.find_opt
          (fun (off, kind) ->
            match kind with
            | Pku.Insn.Gadget_wrpkru -> not (List.mem off legit_offsets)
            | Pku.Insn.Gadget_xrstor -> true)
          (Pku.Insn.find_gadgets img)
      in
      (match bad with
       | Some (off, Pku.Insn.Gadget_wrpkru) ->
         reject (Printf.sprintf "%s: wrpkru gadget at byte +%d" name off)
       | Some (off, Pku.Insn.Gadget_xrstor) ->
         reject (Printf.sprintf "%s: xrstor gadget at byte +%d" name off)
       | None -> Admitted (scan_and_arm dr b))
  end

(* Library initialisation with the owner's effective uid: open the
   store's backing file as the owner, run init, revert. The client
   process never holds the rights itself. *)
let init_library (lib : Library.t) ~store_path =
  let p = Process.current () in
  let saved = Process.euid p in
  Process.set_euid p (Library.owner_uid lib);
  Fun.protect
    ~finally:(fun () -> Process.set_euid p saved)
    (fun () ->
      let region =
        Simos.Sim_fs.open_region ~euid:(Process.euid p) ~write:true store_path
      in
      (match Library.init_fn lib with
       | Some f -> Shm.Region.kernel_mode f
       | None -> ());
      region)

(* Minimal interpreter over pseudo-binaries: runs application "text",
   demonstrating that a stray wrpkru traps while trampoline-mediated
   calls work. Used by tests and the security example. *)
let exec (dr : Pku.Debug_regs.t) (lib : Library.t) (b : Pku.Insn.binary) =
  Array.iteri
    (fun addr insn ->
      match insn with
      | Pku.Insn.Compute n -> Runtime.advance n
      | Pku.Insn.Ret -> ()
      | Pku.Insn.Data _ ->
        (* a data island is never reached by straight-line execution;
           only a hijacked jump lands in it (see Redteam.Gadget) *)
        ()
      | Pku.Insn.Call entry ->
        (match Library.find_export lib entry with
         | Some f -> Trampoline.call lib f
         | None -> failwith ("unresolved symbol: " ^ entry))
      | Pku.Insn.Xrstor v ->
        if Pku.Debug_regs.trips dr ~binary:b.Pku.Insn.binary_name ~addr then
          Pku.Fault.breakpoint_trap
            "%s+%d: stray xrstor trapped by loader breakpoint"
            b.Pku.Insn.binary_name addr
        else
          (* unscanned binary: pkru rewritten from attacker memory *)
          Pku.Pkru.wrpkru v
      | Pku.Insn.Wrpkru v ->
        if Pku.Debug_regs.trips dr ~binary:b.Pku.Insn.binary_name ~addr then
          Pku.Fault.breakpoint_trap
            "%s+%d: stray wrpkru trapped by loader breakpoint"
            b.Pku.Insn.binary_name addr
        else if List.mem addr b.Pku.Insn.trampoline_addrs then
          (* a legitimate trampoline site *)
          Pku.Pkru.wrpkru v
        else
          (* unscanned binary: the attack the loader exists to stop *)
          Pku.Pkru.wrpkru v)
    b.Pku.Insn.text
