(** The modified (trusted) loader (paper §2, §3.3): scans binaries for
    stray [wrpkru] opcodes, arms hardware breakpoints (falling back to
    page gating past four), and runs library initialisation with the
    owner's effective uid. The admission path ({!admit}) additionally
    defends against Garmr-style gadget attacks that breakpoints cannot
    cover. *)

type report = {
  strays_found : int;
  breakpoints : int;
  pages_gated : int;
}

val scan_and_arm : Pku.Debug_regs.t -> Pku.Insn.binary -> report
(** The legacy instruction-granular pass: breakpoint every stray
    pkru-writing instruction, page-gate past four. Misses byte-level
    gadgets; {!admit} is the full check. *)

(** {1 Admission} *)

type verdict = Admitted of report | Rejected of string

val gadget_scan_enabled : bool ref
(** Red-team toggle (default [true]). Off, {!admit} degrades to
    {!scan_and_arm} and admits everything — the configuration the
    gadget scenarios in [lib/redteam] defeat. *)

val install_trampolines : Pku.Insn.binary -> unit
(** Record that the loader itself installed this binary's trampolines
    (the trusted link step). The record is pinned to a digest of the
    byte image: a patched or renamed binary cannot inherit it. *)

val forget_trampolines : unit -> unit
(** Drop all installation records (test isolation). *)

val admit : Pku.Debug_regs.t -> Pku.Insn.binary -> verdict
(** Full admission: claimed trampolines must match the loader's own
    installation records (digest-pinned), and the byte image must
    contain no [wrpkru]/[xrstor] pattern at any offset other than the
    exact start of a recorded trampoline — misaligned patterns inside
    immediates or data islands reject the binary, since no hardware
    breakpoint can trap a jump into the middle of an instruction.
    Admitted binaries are also run through {!scan_and_arm}. *)

val init_library : Library.t -> store_path:string -> Shm.Region.t
(** Open the library's backing store file under the {e owner's}
    effective uid (the §3.3 euid dance), run the library's init
    routine, revert the euid, and return the mapped region.
    @raise Simos.Sim_fs.Eacces if even the owner may not open it. *)

val exec : Pku.Debug_regs.t -> Library.t -> Pku.Insn.binary -> unit
(** Interpret a pseudo-binary: [Call]s go through trampolines; a
    [Wrpkru]/[Xrstor] at a breakpointed or gated address raises
    {!Pku.Fault.Breakpoint_trap}; on an unscanned binary it executes —
    the attack the loader exists to stop. [Data] islands are skipped
    (straight-line execution never reaches them). *)
