(** A Hodor protected library: code granted amplified access rights to
    a set of protected regions while (and only while) a thread executes
    inside it (paper §2). *)

type protection =
  | Protected  (** full Hodor: pkru gating + trampoline cost *)
  | Unprotected
  (** the paper's "Plib, No Hodor" configuration: same code, direct
      calls, no pkru switching — slightly faster, not safe *)

type t

(** Health ladder. [Killed_in_call]: a caller was killed and its call
    outlived the grace window, so it was terminated mid-call — shared
    state is torn in bounded ways and {!recover} can repair it.
    [Poisoned]: the library code itself crashed; terminal. *)
type health =
  | Healthy
  | Killed_in_call of string
  | Poisoned of string

exception Library_poisoned of string
(** Raised on calls into a library that crashed during an earlier call;
    as in the paper, such a crash is unrecoverable for the store. *)

exception Library_needs_recovery of string
(** Raised on calls into a library whose state is [Killed_in_call]:
    a caller must run {!recover} (normally via the bookkeeping
    process) before the store takes traffic again. *)

exception Region_already_protected of string
(** Raised by {!protect_region} when another live library already
    claimed the region — admitting the claim would retag the victim's
    pages under the claimant's key. *)

val default_grace_ns : int

val create :
  ?protection:protection ->
  ?grace_ns:int ->
  ?copy_args:bool ->
  name:string ->
  owner_uid:int ->
  unit ->
  t
(** Allocates a protection key for [Protected] libraries. [grace_ns]
    bounds how long an in-library call of a killed process may keep
    running; [copy_args] enables trampoline-level argument copying
    (off by default, as in the paper — see ablation abl3). *)

val name : t -> string

val pkey : t -> Pku.Pkey.t

val protection : t -> protection

val owner_uid : t -> int

val grace_ns : t -> int

val copy_args : t -> bool

val protect_region : t -> Shm.Region.t -> unit
(** Tag every page of the region with the library's key: from now on
    only threads inside the library can touch it.
    @raise Region_already_protected if another live library claimed
    the region first (double-admission defense). *)

val regions : t -> Shm.Region.t list

val set_init : t -> (unit -> unit) -> unit
(** Initialisation routine the loader runs before main, under the
    owner's effective uid. *)

val init_fn : t -> (unit -> unit) option

val poison : t -> string -> unit
(** Terminal: dominates any [Killed_in_call] state. *)

val mark_killed : t -> string -> unit
(** Record a kill-past-grace termination; recoverable. A later kill
    keeps the first report; an earlier {!poison} wins. *)

val health : t -> health

val poisoned : t -> string option
(** [Some reason] iff terminally poisoned. *)

val killed : t -> string option
(** [Some reason] iff awaiting recovery. *)

val check_poisoned : t -> unit
(** @raise Library_poisoned if the library has crashed.
    @raise Library_needs_recovery if it awaits post-kill recovery. *)

val set_recover : t -> (unit -> unit) -> unit
(** Register the recovery routine (the owner wires in
    [Store.recover] + [Ralloc.recover]). *)

val recover : t -> unit
(** Run the registered recovery routine and return the library to
    [Healthy]. Idempotent at quiescence; also callable while [Healthy]
    (a kill so abrupt no trampoline observed it still leaves torn
    state behind).
    @raise Library_poisoned when terminally poisoned. *)

val export : t -> entry:string -> (unit -> unit) -> unit
(** Register a named entry point for the loader's binary interpreter. *)

val find_export : t -> string -> (unit -> unit) option

val release : t -> unit
(** Return the protection key and drop (and unclaim) the protected
    regions. Idempotent: a second release is a no-op rather than a
    double [Pkey.free] that could yank a since-recycled key from
    another library. *)
