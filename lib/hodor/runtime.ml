(** Execution-substrate hooks for Hodor.

    Hodor sits below the store code and cannot be a functor over
    {!Platform.Sync_intf.S} without dragging the functor through every
    client; instead the two mode-dependent operations — charging
    modeled CPU cost and reading the clock — are installed here by
    whoever sets the mode up (benchmarks install the VM's; the default
    suits real-thread mode). *)

let advance_hook : (int -> unit) ref = ref ignore

let now_hook : (unit -> int) ref =
  ref (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))

let configure ~advance ~now =
  advance_hook := advance;
  now_hook := now;
  (* Slot-miss re-tags are kernel page-table work (libmpk's
     pkey_mprotect); charge them to whoever triggered the miss. *)
  Pku.Vpkey.retag_cost_hook :=
    fun n -> advance (n * Platform.Cost_model.current.pkey_mprotect)

let reset () =
  advance_hook := ignore;
  now_hook := (fun () -> int_of_float (Unix.gettimeofday () *. 1e9));
  Pku.Vpkey.retag_cost_hook := ignore

let advance n = !advance_hook n

let now_ns () = !now_hook ()
