(** The loader-installed trampoline: the only legitimate site of a
    [wrpkru]. Switches to a library-private stack and opens the
    library's protection key on the way in; restores both on the way
    out (paper §2).

    Fault-tolerance contract (§3.4):
    - a process killed from outside while a thread is inside the
      library has that call run to completion (up to the grace
      timeout), and only then does the thread observe its death;
    - a crash {e inside} the call poisons the library for good. *)

exception Library_call_failed of string * exn
(** Raised to the caller whose call crashed the library; carries the
    library name and the original exception. *)

exception Gate_violation of string
(** The call-site gate checks caught a forged pkru on entry (the
    caller already held the library's key) or a tampered pkru on exit
    (a wrpkru executed inside the call). The offending process is
    terminated; the library is {e not} poisoned — no forged access
    reached shared state. *)

val gate_checks_enabled : bool ref
(** Red-team toggle (default [true]): with the checks off, a forged
    entry pkru is laundered through the exit restore and in-call
    tampering goes unnoticed. *)

val call : Library.t -> (unit -> 'a) -> 'a
(** Enter the library, run [f] with amplified rights, leave.
    @raise Library.Library_poisoned if the library already crashed.
    @raise Simos.Process.Process_killed after completing [f] if the
    calling process died mid-call.
    @raise Library_call_failed if [f] itself raises. *)

val call_batch : Library.t -> ops:int -> (unit -> 'a) -> 'a
(** One crossing carrying a whole batch: identical to {!call} — one
    stack switch, one pkru swap pair — plus batch accounting
    ([hodor_batch_calls], [hodor_batch_ops], and the "batch_size"
    histogram), so crossings/op = 1/B and pkru writes/op = 2/B are
    measurable. [ops] is the number of operations the body executes;
    raises [Invalid_argument] if < 1. *)

val call_with_arg : Library.t -> arg:bytes -> (bytes -> 'a) -> 'a
(** Like {!call}; when the library was created with [copy_args], [f]
    receives a snapshot of [arg] taken before entry, so concurrent
    application threads cannot retarget it mid-call. *)

val call_with_args : Library.t -> args:bytes list -> (bytes list -> 'a) -> 'a

val on_library_stack : unit -> bool
(** True while the calling thread executes inside some library call
    (the "which stack am I on" bookkeeping). *)

val cost : Library.t -> int
(** Modeled round-trip cost of the trampoline, ns. *)
