(** The loader-installed trampoline: the only legitimate site of a
    [wrpkru]. On the way in it switches to a library-private stack and
    opens the library's protection key; on the way out it restores both.

    Fault-tolerance contract (paper §3.4):
    - if the calling process is killed by outside action while a thread
      is inside the library, the call runs to completion (up to the
      library's grace timeout) before the thread dies;
    - if the call outlives the grace, the thread was terminated
      mid-call: the library enters the recoverable [Killed_in_call]
      state and refuses callers until [Library.recover] has repaired
      the store (beyond the paper, which stopped at the grace);
    - if the call itself crashes (any escaping exception — a stray
      pointer dereference, a protection fault), the library is poisoned
      and every subsequent call fails, since invariants may be broken. *)

module Process = Simos.Process

exception Library_call_failed of string * exn
(** Wraps the exception that poisoned the library, for the caller that
    triggered it. *)

exception Gate_violation of string
(** The call-site gate checks caught a forged or tampered pkru (see
    below); the offending process has been terminated. *)

(* Red-team toggle: with the gate checks off, a caller arriving with a
   forged pkru that already opens the library's key sails through, and
   a wrpkru executed inside the call goes unnoticed — both exploited
   by lib/redteam. *)
let gate_checks_enabled = ref true

(* Depth of nested library calls on this thread, standing in for
   "which stack am I on". Tests observe it via [on_library_stack]. *)
let depth_key = Tls.new_key (fun () -> ref 0)

let on_library_stack () = !(Tls.get depth_key) > 0

let cost (lib : Library.t) =
  match Library.protection lib with
  | Library.Protected -> Platform.Cost_model.current.trampoline_hodor
  | Library.Unprotected -> Platform.Cost_model.current.trampoline_plain

(* A gate violation terminates the offender, as Hodor's monitor would
   on a SIGSYS: count it, kill the process (as the kernel — the
   attacker's own filter must not be able to veto its execution), and
   refuse the caller. *)
let gate_violation (lib : Library.t) (p : Process.t) msg =
  Telemetry.Counters.incr Telemetry.Counters.Id.gate_violations;
  Telemetry.Trace.emit ~sev:Telemetry.Trace.Error ~subsys:"hodor"
    (Printf.sprintf "%s: gate violation by %s: %s" (Library.name lib)
       (Process.name p) msg);
  if Process.alive p then
    Shm.Region.kernel_mode (fun () ->
      Process.kill ~signal:"SIGSYS" ~now_ns:(Runtime.now_ns ()) p);
  raise (Gate_violation (Printf.sprintf "%s: %s" (Library.name lib) msg))

let call (lib : Library.t) (f : unit -> 'a) : 'a =
  Library.check_poisoned lib;
  (* A thread of a dead process cannot start a new call; kills that
     land mid-call are handled on the way out. *)
  Process.check_alive ();
  (* Reconcile this thread's virtual-pkey grants with the slot table
     before reading pkru: a vkey evicted since our last crossing must
     not leave standing rights on a slot that now backs someone else.
     O(1) when the thread holds no vkey grants. *)
  Pku.Vpkey.sync_thread ();
  let p = Process.current () in
  let depth = Tls.get depth_key in
  let saved_pkru = Pku.Pkru.read () in
  (* Entry gate check: an outermost caller must NOT already hold the
     library's key — a pkru forged through a gadget would otherwise be
     laundered by the exit-path restore of [saved_pkru], leaving the
     attacker with standing access after the call returns. (At nested
     depth the key is legitimately open: the outer crossing opened
     it.) *)
  (match Library.protection lib with
   | Library.Protected
     when !gate_checks_enabled && !depth = 0
          && Pku.Pkru.allows_read saved_pkru (Library.pkey lib) ->
     (* sanitise the forged register before refusing the call *)
     Pku.Pkru.wrpkru
       (Pku.Pkru.set_perm saved_pkru (Library.pkey lib)
          Pku.Pkru.Access_disable);
     gate_violation lib p "caller arrived already holding the library key"
   | Library.Protected | Library.Unprotected -> ());
  Process.enter_library p;
  Telemetry.Counters.incr Telemetry.Counters.Id.hodor_enter;
  let entry_ns = Runtime.now_ns () in
  (* The crossing is its own trace phase: it covers wrpkru-in to
     wrpkru-out, so its self time (minus store/alloc children) is the
     per-call gate cost the paper's section 2 argues about. *)
  let span = Telemetry.Span.start ~phase:"crossing" () in
  (* Way in: stack switch + wrpkru opening the library's key. The
     breadcrumb lands in the same sync-free region as the depth
     increment (its publish has no sync point — Cross_enter is a state
     record), so the recorder and the stack state can never disagree
     at a kill site. *)
  incr depth;
  Telemetry.Flight.record Telemetry.Flight.Cross_enter ~a:!depth;
  let entered =
    match Library.protection lib with
    | Library.Protected ->
      let v = Pku.Pkru.set_perm saved_pkru (Library.pkey lib) Pku.Pkru.Enable in
      Pku.Pkru.wrpkru v;
      Some v
    | Library.Unprotected -> None
  in
  Runtime.advance (cost lib);
  let finish () =
    (* Exit gate check, before the restore erases the evidence: the
       register must still hold exactly the value the trampoline wrote
       on entry — any drift means a wrpkru executed inside the call. *)
    let tampered =
      match entered with
      | Some v when !gate_checks_enabled ->
        let cur = Pku.Pkru.read () in
        if cur <> v then Some cur else None
      | Some _ | None -> None
    in
    (* Way out: restore pkru, switch stacks back, leave the library. *)
    (match Library.protection lib with
     | Library.Protected -> Pku.Pkru.wrpkru saved_pkru
     | Library.Unprotected -> ());
    decr depth;
    Telemetry.Flight.record Telemetry.Flight.Cross_exit ~a:!depth;
    Process.leave_library p;
    Telemetry.Counters.incr Telemetry.Counters.Id.hodor_exit;
    Telemetry.Span.finish span;
    if Telemetry.Control.on () then
      Telemetry.Timers.record ~op:"hodor_call" (Runtime.now_ns () - entry_ns);
    tampered
  in
  let result =
    try f ()
    with
    | (Process.Seccomp_violation _ | Gate_violation _) as e ->
      (* The kernel killed the offending process before the filtered
         syscall (or forged wrpkru) touched anything: shared state is
         intact, so the library is NOT poisoned — grace-window and
         recovery semantics take over for everyone else. *)
      if Process.alive p then
        Shm.Region.kernel_mode (fun () ->
          Process.kill ~signal:"SIGSYS" ~now_ns:(Runtime.now_ns ()) p);
      ignore (finish ());
      raise e
    | e ->
      (* A crash inside library code is unrecoverable (paper §2): the
         library may hold locks or half-updated structures. *)
      Library.poison lib (Printexc.to_string e);
      Telemetry.Counters.incr Telemetry.Counters.Id.hodor_poisoned;
      Telemetry.Trace.emit ~sev:Telemetry.Trace.Error ~subsys:"hodor"
        (Printf.sprintf "%s poisoned: %s" (Library.name lib)
           (Printexc.to_string e));
      ignore (finish ());
      raise (Library_call_failed (Library.name lib, e))
  in
  (match finish () with
   | Some cur ->
     gate_violation lib p
       (Printf.sprintf "pkru tampered inside the call (now %08x)" cur)
   | None -> ());
  (* Completion guarantee: the call finished even if the process was
     killed mid-call — but only within the grace window. Boundary
     semantics, pinned by test/test_hodor.ml: with the kill at
     [kill_ns] and the call back at [end_ns], the call is covered iff
     [end_ns - kill_ns <= grace_ns] — exactly at the boundary the OS
     still waits; one ns past it the thread was terminated mid-call.
     Termination mid-call tears shared state in bounded ways (a sync
     point inside an op), so the library transitions to the
     recoverable [Killed_in_call] state: callers are refused until the
     bookkeeping process runs [Library.recover]. *)
  (match Process.killed_at p with
   | Some kill_ns ->
     let end_ns = max (Runtime.now_ns ()) entry_ns in
     if end_ns - kill_ns > Library.grace_ns lib then begin
       Telemetry.Counters.incr Telemetry.Counters.Id.hodor_kill_in_call;
       Telemetry.Trace.emit ~sev:Telemetry.Trace.Warn ~subsys:"hodor"
         (Printf.sprintf "%s: call outlived grace after %s was killed"
            (Library.name lib) (Process.name p));
       Library.mark_killed lib
         (Printf.sprintf
            "call outlived the %dns grace after %s was killed"
            (Library.grace_ns lib) (Process.name p))
     end
     else begin
       (* The grace window covered the rest of this call. *)
       Telemetry.Counters.incr Telemetry.Counters.Id.hodor_grace_hits;
       if Telemetry.Trace.would_log Telemetry.Trace.Info then
         Telemetry.Trace.emit ~sev:Telemetry.Trace.Info ~subsys:"hodor"
           (Printf.sprintf "%s: grace window covered a call of dead %s"
              (Library.name lib) (Process.name p))
     end;
     (* The thread itself now observes its death. *)
     Process.check_alive ()
   | None -> ());
  result

(* Batch entry: one crossing — one stack note, one pkru swap pair —
   carrying [ops] operations. The body is the same [call]; what the
   batch plane adds is the accounting that lets crossings/op and mean
   batch size fall out of the counters: every protected call that goes
   through here bumps [hodor_batch_calls] once and [hodor_batch_ops]
   by the batch size, and the batch-size distribution is recorded as a
   histogram under op "batch_size" (value in ops, not ns — the
   histogram machinery is unit-agnostic). *)
let call_batch (lib : Library.t) ~(ops : int) (f : unit -> 'a) : 'a =
  if ops < 1 then invalid_arg "Trampoline.call_batch: ops < 1";
  Telemetry.Counters.incr Telemetry.Counters.Id.hodor_batch_calls;
  Telemetry.Counters.add ~n:ops Telemetry.Counters.Id.hodor_batch_ops;
  if Telemetry.Control.on () then
    Telemetry.Timers.record ~op:"batch_size" ops;
  call lib f

(* Trampoline-level argument copying (optional in Hodor; ablation
   abl3): snapshot the caller's buffer into the library domain before
   the body runs, so concurrent application threads cannot retarget
   it mid-call. *)
let call_with_arg (lib : Library.t) ~(arg : bytes) (f : bytes -> 'a) : 'a =
  if Library.copy_args lib then begin
    let snapshot = Bytes.copy arg in
    Runtime.advance (Platform.Cost_model.memcpy_cost (Bytes.length arg));
    call lib (fun () -> f snapshot)
  end
  else call lib (fun () -> f arg)

(* Multi-argument variant: snapshot every buffer when the library asks
   for trampoline-level copying. *)
let call_with_args (lib : Library.t) ~(args : bytes list) (f : bytes list -> 'a)
  : 'a =
  if Library.copy_args lib then begin
    let snapshots = List.map Bytes.copy args in
    List.iter
      (fun b -> Runtime.advance (Platform.Cost_model.memcpy_cost (Bytes.length b)))
      args;
    call lib (fun () -> f snapshots)
  end
  else call lib (fun () -> f args)
