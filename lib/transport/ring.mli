(** Per-connection SPSC submission/completion rings in the shared
    heap.

    A ring is a fixed array of sequence-stamped slots plus a 64-byte
    header, formatted inside a caller-provided span of a
    {!Shm.Region} (in practice: a Ralloc block in the protected heap,
    its pages sealed under a per-connection {!Pku.Vpkey}). One side
    produces messages — byte strings spanning one or more consecutive
    slots — and the other consumes them; the publish protocol stamps
    the first slot's sequence word last, so a message killed
    mid-produce is absent after {!recover}, never torn.

    Pure region mechanics: no substrate, no simulated-cost charging,
    no pkru manipulation — callers hold the pages' key and charge
    their own costs. *)

type t

val validation_enabled : bool ref
(** Red-team toggle (shipping default [true]). Off: the consumer
    trusts slot headers verbatim — forged lengths and stomped
    sequence numbers flow straight into the drain path. *)

val hdr_bytes : int

val bytes_for : slots:int -> slot_bytes:int -> int
(** Region bytes needed for a ring of [slots] slots. *)

val init :
  Shm.Region.t -> base:int -> slots:int -> slot_bytes:int -> t
(** Format an empty ring at [base]. Raises [Invalid_argument] on
    degenerate geometry (fewer than 2 slots, or slots too small to
    carry a payload byte). *)

val attach : Shm.Region.t -> base:int -> t
(** Reattach to a formatted ring; raises [Invalid_argument] if the
    magic or geometry words are corrupt. *)

val frag_cap : t -> int
(** Payload bytes per slot. *)

val max_msg : t -> int
(** Largest single message ([slots * frag_cap]); producers chunk
    anything bigger into several messages. *)

val head : t -> int

val tail : t -> int

val acked : t -> int

val slots_used : t -> int

val is_empty : t -> bool

val has_room : t -> len:int -> bool

val produce : t -> stamp:int -> string -> unit
(** Publish one message, stamped with the producer's enqueue time.
    Raises [Invalid_argument] when the message is empty, larger than
    {!max_msg}, or the ring lacks room ({!has_room} first). *)

val consumer_armed : t -> bool

val set_armed : t -> bool -> unit
(** The doorbell handshake: a consumer that found the ring empty arms
    it, re-checks, and only then parks; a producer that sees the armed
    flag set pays the doorbell (syscall) to wake the consumer. *)

val is_dead : t -> bool

val mark_dead : t -> unit
(** Bounce: the consumer refuses the ring (validation failure or
    connection teardown); producers must stop and raise. *)

type pending = {
  p_msgs : int;  (** whole messages published and validated *)
  p_slots : int;  (** slots they occupy *)
  p_first_stamp : int;  (** enqueue time of the oldest *)
  p_last_stamp : int;  (** enqueue time of the newest *)
}

val pending : t -> (pending option, string) result
(** Validated walk of the published window ([Ok None] when empty).
    [Error] names the forgery: overfilled head/tail, a sequence stamp
    off its position, a length outside the envelope, a torn
    continuation. *)

val consume_all : t -> ((string * int) list, string) result
(** Drain every published message in order, with its stamp, advancing
    head and the acked watermark together. *)

val consume_one : t -> string option
(** Pop a single message (the completion-side client path). *)

val recover : t -> unit
(** Post-crash repair: clamp broken header invariants, truncate the
    published window at the first torn entry, disarm. Fully published
    entries survive; a mid-produce kill leaves nothing behind. *)

(** {2 Shared-memory layout}

    The ring is a wire format in shared pages, not an opaque object:
    both endpoints address the same bytes, and nothing stops the
    producer side from writing them directly instead of going through
    {!produce}. Exposing where they live grants no authority — the
    pages answer only to the protection key they are sealed under —
    but it is exactly the position the red team's hostile-client
    scenario models, so the layout is part of the public contract. *)

val region : t -> Shm.Region.t

val slot_hdr : int
(** Bytes of per-slot header: [[seq:8][len:8][stamp:8]], payload
    after. *)

val slot_word : t -> int -> int
(** Absolute region offset of slot [pos]'s header words. *)

val tail_word : t -> int
(** Absolute region offset of the producer-tail header word. *)
