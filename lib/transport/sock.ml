(** Unix-domain-socket model with memcached's event-dispatch shape.

    Architecture mirrors memcached + libevent:
    - a listener accepts connections and the server assigns each to a
      worker thread;
    - a worker owns one event queue; readiness of any of its
      connections lands there (client sends are tagged with the
      connection id), which is what a libevent loop over many sockets
      amounts to;
    - replies flow through a per-connection channel back to the client.

    Costs are charged per syscall from {!Platform.Cost_model}, plus a
    context-switch penalty when a receive actually has to block — the
    dynamics the paper uses to explain the baseline's scaling (§4.1):
    with enough clients, a worker's queue is never empty and the
    select returns without a context switch.

    The same code runs on real threads or on the virtual-time machine
    (functor over {!Platform.Sync_intf.S}). *)

module CM = Platform.Cost_model
module C = Telemetry.Counters

(* The listener namespace is process-global, like the filesystem
   namespace Unix-domain sockets live in: every instantiation of
   {!Make} over the same substrate shares it. Entries are segregated
   by [S.name], so a real-thread listener can never be dialed from
   inside the VM or vice versa; within one substrate the stored
   listener always has that substrate's type, making the [Obj]
   round-trip safe. *)
let global_listeners : (string, Obj.t) Hashtbl.t = Hashtbl.create 8

let global_lock = Mutex.create ()

module Make (S : Platform.Sync_intf.S) = struct
  type message = {
    m_cid : int;
    m_payload : string;
    m_at : int;
        (** enqueue stamp ({!S.now_ns} at [client_send]) — lets the
            server backdate a request's trace to when the bytes hit the
            socket, so queueing shows up as its own phase *)
  }

  (** Shared-ring attachment: when a ring-mode server accepts a
      connection it carves a submission/completion ring pair out of the
      shared heap, seals the pages under a per-connection vkey, and
      hangs the pair here. The data path below then dispatches on it —
      sends become ring produces (no syscall unless the consumer is
      parked and wants a doorbell), receives become ring consumes — and
      both {!Core.Socket_client} and the server's drain loop work
      unchanged on either kind of connection. *)
  type ring_attach = {
    ra_sub : Ring.t;  (** client -> server (requests) *)
    ra_comp : Ring.t;  (** server -> client (replies) *)
    ra_vkey : int;  (** seals both rings' pages; conn-private *)
  }

  type conn = {
    cid : int;
    inbox : message S.chan;  (** the owning worker's event queue *)
    reply : string S.chan;
    mutable rings : ring_attach option;
  }

  type listener = {
    l_name : string;
    backlog : (conn option -> unit) S.chan;
    (** connect() parks a resolver here; accept() completes it *)
  }

  exception Connection_closed

  (* --- listener registry (a simulated abstract-socket namespace) --- *)

  let scoped name = S.name ^ ":" ^ name

  let reset () =
    Mutex.lock global_lock;
    Hashtbl.reset global_listeners;
    Mutex.unlock global_lock

  let listen ~name =
    let l = { l_name = name; backlog = S.chan () } in
    Mutex.lock global_lock;
    Hashtbl.replace global_listeners (scoped name) (Obj.repr l);
    Mutex.unlock global_lock;
    l

  let close_listener l =
    Mutex.lock global_lock;
    Hashtbl.remove global_listeners (scoped l.l_name);
    Mutex.unlock global_lock;
    S.close l.backlog

  let next_cid = Atomic.make 1

  (* Client side: block until the server accepts and assigns a worker. *)
  let connect ~name =
    let l =
      Mutex.lock global_lock;
      let r = Hashtbl.find_opt global_listeners (scoped name) in
      Mutex.unlock global_lock;
      match r with
      | Some l -> (Obj.obj l : listener)
      | None -> failwith ("connect: no listener on " ^ name)
    in
    S.advance (2 * CM.current.syscall_send) (* socket() + connect() *);
    let cell = S.chan ~cap:1 () in
    (try S.send l.backlog (fun c -> S.send cell c)
     with S.Closed -> failwith ("connect: " ^ name ^ " is shut down"));
    match S.recv cell with
    | Some conn -> conn
    | None -> failwith ("connect: " ^ name ^ " refused the connection")

  (* Server side: accept the oldest pending connect and bind it to
     [inbox] (the chosen worker's event queue). [register] runs before
     the client is released, so server-side connection tables are
     populated before the first request can arrive. *)
  let accept ?(register = fun (_ : conn) -> ()) l ~inbox =
    let resolve = S.recv l.backlog in
    S.advance CM.current.syscall_recv (* accept() *);
    let conn =
      { cid = Atomic.fetch_and_add next_cid 1; inbox; reply = S.chan ();
        rings = None }
    in
    register conn;
    resolve (Some conn);
    conn

  (* --- ring attachment ------------------------------------------------ *)

  let attach_rings conn ra = conn.rings <- Some ra

  let rings_of conn = conn.rings

  (* Grant this thread the connection's vkey: ring pages open, the rest
     of the heap (and every other connection's rings) still sealed. *)
  let ring_grant ra = ignore (Pku.Vpkey.enable ra.ra_vkey)

  (* A receive that actually blocked pays a context switch: a little
     CPU, and scheduling latency during which the thread is off-CPU. *)
  let ctx_switch_penalty () =
    S.advance CM.current.ctx_switch_cpu;
    S.sleep_ns (CM.current.ctx_switch - CM.current.ctx_switch_cpu)

  (* Bounce a ring connection: the consumer refuses the rings (forged
     slot headers, or a peer that stopped draining); both sides'
     producers raise from now on, and a parked client wakes with
     [Connection_closed]. Only this connection dies — its ring pages
     are private to its vkey, so nothing it wrote can have desynced
     anyone else. *)
  let ring_bounce conn =
    match conn.rings with
    | None -> ()
    | Some ra ->
      ring_grant ra;
      Ring.mark_dead ra.ra_sub;
      Ring.mark_dead ra.ra_comp;
      C.incr C.Id.ring_kills;
      S.close conn.reply

  (* Producer-side flow control: spin-sleep until the ring has room.
     [bounded] callers (the server publishing completions) give up
     after a while — the client stopped consuming, dead or hostile —
     and bounce. *)
  let ring_wait_room ?(max_tries = max_int) ring ~len =
    let rec go tries =
      if Ring.is_dead ring then raise Connection_closed;
      if Ring.has_room ring ~len then true
      else if tries >= max_tries then false
      else begin
        C.incr C.Id.ring_full_waits;
        S.sleep_ns 2_000;
        go (tries + 1)
      end
    in
    go 0

  (* --- data path --- *)

  let legacy_client_send conn payload =
    S.advance CM.current.syscall_send;
    try
      S.send conn.inbox
        { m_cid = conn.cid; m_payload = payload; m_at = S.now_ns () }
    with S.Closed -> raise Connection_closed

  (* Submission-ring send: payload copied into sequence-stamped slots —
     no syscall at all unless the worker parked itself and asked for a
     doorbell. Messages larger than the ring carry as several chunks
     (the byte stream is what matters, framing is the parser's). *)
  let ring_client_send conn ra payload =
    let sub = ra.ra_sub in
    ring_grant ra;
    if Ring.is_dead sub then raise Connection_closed;
    let maxm = Ring.max_msg sub in
    let n = String.length payload in
    let at = ref 0 in
    while !at < n do
      let len = min maxm (n - !at) in
      let chunk = String.sub payload !at len in
      if not (ring_wait_room sub ~len) then raise Connection_closed;
      Ring.produce sub ~stamp:(S.now_ns ()) chunk;
      S.advance (CM.current.ring_slot + CM.memcpy_cost len);
      C.incr C.Id.ring_submits;
      at := !at + len
    done;
    if Ring.consumer_armed sub then begin
      (* the worker is parked: one syscall to ring its doorbell *)
      S.advance CM.current.syscall_send;
      C.incr C.Id.ring_doorbells;
      try
        S.send conn.inbox { m_cid = conn.cid; m_payload = ""; m_at = S.now_ns () }
      with S.Closed -> raise Connection_closed
    end

  let client_send conn payload =
    match conn.rings with
    | None -> legacy_client_send conn payload
    | Some ra -> ring_client_send conn ra payload

  let legacy_client_recv conn =
    (* If the reply is already there, the read returns straight from
       the kernel; otherwise the client blocks and pays a context
       switch on wake-up. *)
    match S.try_recv conn.reply with
    | Some m ->
      S.advance CM.current.syscall_recv;
      m
    | None ->
      S.advance CM.current.syscall_recv;
      let m =
        try S.recv conn.reply with S.Closed -> raise Connection_closed
      in
      ctx_switch_penalty ();
      m
    | exception S.Closed -> raise Connection_closed

  (* Completion-ring receive. Fast path: a completion is already
     published — consume it with zero kernel involvement. Slow path:
     arm the ring, re-check (the publish-then-check-armed producer
     protocol makes the wakeup race-free), then park on the reply
     channel, which stands in for a futex wait. *)
  let ring_client_recv conn ra =
    let comp = ra.ra_comp in
    ring_grant ra;
    let take msg =
      S.advance (CM.current.ring_slot + CM.memcpy_cost (String.length msg));
      msg
    in
    let rec await () =
      if Ring.is_dead comp then raise Connection_closed;
      match Ring.consume_one comp with
      | Some msg -> take msg
      | None ->
        Ring.set_armed comp true;
        (match Ring.consume_one comp with
         | Some msg ->
           Ring.set_armed comp false;
           take msg
         | None ->
           S.advance CM.current.syscall_recv (* futex-style wait *);
           (match S.recv conn.reply with
            | _token ->
              ctx_switch_penalty ();
              Ring.set_armed comp false;
              await ()
            | exception S.Closed -> raise Connection_closed))
    in
    await ()

  let client_recv conn =
    match conn.rings with
    | None -> legacy_client_recv conn
    | Some ra -> ring_client_recv conn ra

  (* Worker side: pull the next event off the queue. The
     immediate-vs-blocking distinction is the paper's select()
     behaviour. *)
  let worker_recv (inbox : message S.chan) =
    (* The kernel copies the payload out on read(2): charge the wire
       cost here, serialized into the server's critical path. *)
    match S.try_recv inbox with
    | Some m ->
      S.advance
        (CM.current.syscall_select + CM.current.syscall_recv
         + CM.wire_cost (String.length m.m_payload));
      m
    | None ->
      S.advance (CM.current.syscall_select + CM.current.syscall_recv);
      let m = S.recv inbox in
      ctx_switch_penalty ();
      S.advance (CM.wire_cost (String.length m.m_payload));
      m

  (* Batch plane: drain everything the event queue already holds in one
     go — one select() covering all ready connections, then one read(2)
     per connection that had pending bytes, the wire cost covering every
     byte copied out of that connection's kernel buffer. Blocks (with
     the context-switch penalty) only when nothing is pending at all.
     For a single pending message the total charge equals
     [worker_recv]'s; the amortization appears exactly when a
     connection pipelined multiple requests into the queue. *)
  let worker_drain (inbox : message S.chan) : message list =
    let first =
      match S.try_recv inbox with
      | Some m ->
        S.advance CM.current.syscall_select;
        m
      | None ->
        S.advance CM.current.syscall_select;
        let m = S.recv inbox in
        ctx_switch_penalty ();
        m
    in
    let rec drain acc =
      match S.try_recv inbox with
      | Some m -> drain (m :: acc)
      | None | (exception S.Closed) -> List.rev acc
    in
    let msgs = first :: drain [] in
    let cids = List.sort_uniq compare (List.map (fun m -> m.m_cid) msgs) in
    S.advance (List.length cids * CM.current.syscall_recv);
    List.iter
      (fun m -> S.advance (CM.wire_cost (String.length m.m_payload)))
      msgs;
    msgs

  let legacy_server_send conn payload =
    S.advance (CM.current.syscall_send + CM.current.wakeup);
    try S.send conn.reply payload with S.Closed -> ()

  (* Publish a coalesced reply into the completion ring. The syscall
     only happens when the client is parked; a pipelining client that
     keeps ahead of its completions never costs the server a wakeup. A
     client that stopped consuming (killed, or hostile) bounces after a
     bounded stall so one connection can never wedge its worker. *)
  let ring_server_send conn ra payload =
    let comp = ra.ra_comp in
    ring_grant ra;
    let maxm = Ring.max_msg comp in
    let n = String.length payload in
    (try
       let at = ref 0 in
       while !at < n do
         let len = min maxm (n - !at) in
         let chunk = String.sub payload !at len in
         if not (ring_wait_room ~max_tries:64 comp ~len) then begin
           ring_bounce conn;
           raise Connection_closed
         end;
         Ring.produce comp ~stamp:(S.now_ns ()) chunk;
         S.advance (CM.current.ring_slot + CM.memcpy_cost len);
         C.incr C.Id.ring_completions;
         at := !at + len
       done;
       if Ring.consumer_armed comp then begin
         S.advance (CM.current.syscall_send + CM.current.wakeup);
         try S.send conn.reply "" with S.Closed -> ()
       end
     with Connection_closed -> ())

  let server_send conn payload =
    match conn.rings with
    | None -> legacy_server_send conn payload
    | Some ra -> ring_server_send conn ra payload

  (* Worker-side ring primitives, used by the server's adaptive drain
     loop (lib/mc_server/server.ml). *)

  (* Validated peek at the published submission window — slot headers
     only, read outside the crossing under the connection's vkey. *)
  let ring_pending conn =
    match conn.rings with
    | None -> Ok None
    | Some ra ->
      ring_grant ra;
      S.advance CM.current.ring_slot;
      Ring.pending ra.ra_sub

  (* Copy the whole published window in — run *inside* the library
     crossing, like the paper's copy_in: the bytes leave the
     client-writable pages before anything parses them. An [Error]
     means the validation walk caught forged headers; the caller
     bounces the connection without entering the parser. *)
  let ring_consume conn =
    match conn.rings with
    | None -> Ok []
    | Some ra ->
      ring_grant ra;
      (match Ring.consume_all ra.ra_sub with
       | Ok msgs ->
         List.iter
           (fun (m, _) ->
             S.advance
               (CM.current.ring_slot + CM.memcpy_cost (String.length m)))
           msgs;
         if msgs <> [] then begin
           C.incr C.Id.ring_drains;
           C.add ~n:(List.length msgs) C.Id.ring_drain_ops
         end;
         Ok msgs
       | Error _ as e -> e)

  let ring_arm conn v =
    match conn.rings with
    | None -> ()
    | Some ra ->
      ring_grant ra;
      Ring.set_armed ra.ra_sub v

  let close_conn conn =
    (match conn.rings with
     | Some ra ->
       ring_grant ra;
       Ring.mark_dead ra.ra_sub;
       Ring.mark_dead ra.ra_comp
     | None -> ());
    S.close conn.reply

  (* --- a raw bidirectional pipe, for the null-call benchmark --- *)

  type pipe = { a2b : string S.chan; b2a : string S.chan }

  let pipe () = { a2b = S.chan (); b2a = S.chan () }

  let pipe_send ch payload =
    S.advance CM.current.syscall_send;
    S.send ch payload

  let pipe_recv ch =
    match S.try_recv ch with
    | Some m ->
      S.advance CM.current.syscall_recv;
      m
    | None ->
      S.advance CM.current.syscall_recv;
      let m = S.recv ch in
      ctx_switch_penalty ();
      m
end
