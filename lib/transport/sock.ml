(** Unix-domain-socket model with memcached's event-dispatch shape.

    Architecture mirrors memcached + libevent:
    - a listener accepts connections and the server assigns each to a
      worker thread;
    - a worker owns one event queue; readiness of any of its
      connections lands there (client sends are tagged with the
      connection id), which is what a libevent loop over many sockets
      amounts to;
    - replies flow through a per-connection channel back to the client.

    Costs are charged per syscall from {!Platform.Cost_model}, plus a
    context-switch penalty when a receive actually has to block — the
    dynamics the paper uses to explain the baseline's scaling (§4.1):
    with enough clients, a worker's queue is never empty and the
    select returns without a context switch.

    The same code runs on real threads or on the virtual-time machine
    (functor over {!Platform.Sync_intf.S}). *)

module CM = Platform.Cost_model

(* The listener namespace is process-global, like the filesystem
   namespace Unix-domain sockets live in: every instantiation of
   {!Make} over the same substrate shares it. Entries are segregated
   by [S.name], so a real-thread listener can never be dialed from
   inside the VM or vice versa; within one substrate the stored
   listener always has that substrate's type, making the [Obj]
   round-trip safe. *)
let global_listeners : (string, Obj.t) Hashtbl.t = Hashtbl.create 8

let global_lock = Mutex.create ()

module Make (S : Platform.Sync_intf.S) = struct
  type message = {
    m_cid : int;
    m_payload : string;
    m_at : int;
        (** enqueue stamp ({!S.now_ns} at [client_send]) — lets the
            server backdate a request's trace to when the bytes hit the
            socket, so queueing shows up as its own phase *)
  }

  type conn = {
    cid : int;
    inbox : message S.chan;  (** the owning worker's event queue *)
    reply : string S.chan;
  }

  type listener = {
    l_name : string;
    backlog : (conn option -> unit) S.chan;
    (** connect() parks a resolver here; accept() completes it *)
  }

  exception Connection_closed

  (* --- listener registry (a simulated abstract-socket namespace) --- *)

  let scoped name = S.name ^ ":" ^ name

  let reset () =
    Mutex.lock global_lock;
    Hashtbl.reset global_listeners;
    Mutex.unlock global_lock

  let listen ~name =
    let l = { l_name = name; backlog = S.chan () } in
    Mutex.lock global_lock;
    Hashtbl.replace global_listeners (scoped name) (Obj.repr l);
    Mutex.unlock global_lock;
    l

  let close_listener l =
    Mutex.lock global_lock;
    Hashtbl.remove global_listeners (scoped l.l_name);
    Mutex.unlock global_lock;
    S.close l.backlog

  let next_cid = Atomic.make 1

  (* Client side: block until the server accepts and assigns a worker. *)
  let connect ~name =
    let l =
      Mutex.lock global_lock;
      let r = Hashtbl.find_opt global_listeners (scoped name) in
      Mutex.unlock global_lock;
      match r with
      | Some l -> (Obj.obj l : listener)
      | None -> failwith ("connect: no listener on " ^ name)
    in
    S.advance (2 * CM.current.syscall_send) (* socket() + connect() *);
    let cell = S.chan ~cap:1 () in
    (try S.send l.backlog (fun c -> S.send cell c)
     with S.Closed -> failwith ("connect: " ^ name ^ " is shut down"));
    match S.recv cell with
    | Some conn -> conn
    | None -> failwith ("connect: " ^ name ^ " refused the connection")

  (* Server side: accept the oldest pending connect and bind it to
     [inbox] (the chosen worker's event queue). [register] runs before
     the client is released, so server-side connection tables are
     populated before the first request can arrive. *)
  let accept ?(register = fun (_ : conn) -> ()) l ~inbox =
    let resolve = S.recv l.backlog in
    S.advance CM.current.syscall_recv (* accept() *);
    let conn =
      { cid = Atomic.fetch_and_add next_cid 1; inbox; reply = S.chan () }
    in
    register conn;
    resolve (Some conn);
    conn

  (* --- data path --- *)

  let client_send conn payload =
    S.advance CM.current.syscall_send;
    try
      S.send conn.inbox
        { m_cid = conn.cid; m_payload = payload; m_at = S.now_ns () }
    with S.Closed -> raise Connection_closed

  (* A receive that actually blocked pays a context switch: a little
     CPU, and scheduling latency during which the thread is off-CPU. *)
  let ctx_switch_penalty () =
    S.advance CM.current.ctx_switch_cpu;
    S.sleep_ns (CM.current.ctx_switch - CM.current.ctx_switch_cpu)

  let client_recv conn =
    (* If the reply is already there, the read returns straight from
       the kernel; otherwise the client blocks and pays a context
       switch on wake-up. *)
    match S.try_recv conn.reply with
    | Some m ->
      S.advance CM.current.syscall_recv;
      m
    | None ->
      S.advance CM.current.syscall_recv;
      let m =
        try S.recv conn.reply with S.Closed -> raise Connection_closed
      in
      ctx_switch_penalty ();
      m
    | exception S.Closed -> raise Connection_closed

  (* Worker side: pull the next event off the queue. The
     immediate-vs-blocking distinction is the paper's select()
     behaviour. *)
  let worker_recv (inbox : message S.chan) =
    (* The kernel copies the payload out on read(2): charge the wire
       cost here, serialized into the server's critical path. *)
    match S.try_recv inbox with
    | Some m ->
      S.advance
        (CM.current.syscall_select + CM.current.syscall_recv
         + CM.wire_cost (String.length m.m_payload));
      m
    | None ->
      S.advance (CM.current.syscall_select + CM.current.syscall_recv);
      let m = S.recv inbox in
      ctx_switch_penalty ();
      S.advance (CM.wire_cost (String.length m.m_payload));
      m

  (* Batch plane: drain everything the event queue already holds in one
     go — one select() covering all ready connections, then one read(2)
     per connection that had pending bytes, the wire cost covering every
     byte copied out of that connection's kernel buffer. Blocks (with
     the context-switch penalty) only when nothing is pending at all.
     For a single pending message the total charge equals
     [worker_recv]'s; the amortization appears exactly when a
     connection pipelined multiple requests into the queue. *)
  let worker_drain (inbox : message S.chan) : message list =
    let first =
      match S.try_recv inbox with
      | Some m ->
        S.advance CM.current.syscall_select;
        m
      | None ->
        S.advance CM.current.syscall_select;
        let m = S.recv inbox in
        ctx_switch_penalty ();
        m
    in
    let rec drain acc =
      match S.try_recv inbox with
      | Some m -> drain (m :: acc)
      | None | (exception S.Closed) -> List.rev acc
    in
    let msgs = first :: drain [] in
    let cids = List.sort_uniq compare (List.map (fun m -> m.m_cid) msgs) in
    S.advance (List.length cids * CM.current.syscall_recv);
    List.iter
      (fun m -> S.advance (CM.wire_cost (String.length m.m_payload)))
      msgs;
    msgs

  let server_send conn payload =
    S.advance (CM.current.syscall_send + CM.current.wakeup);
    try S.send conn.reply payload with S.Closed -> ()

  let close_conn conn = S.close conn.reply

  (* --- a raw bidirectional pipe, for the null-call benchmark --- *)

  type pipe = { a2b : string S.chan; b2a : string S.chan }

  let pipe () = { a2b = S.chan (); b2a = S.chan () }

  let pipe_send ch payload =
    S.advance CM.current.syscall_send;
    S.send ch payload

  let pipe_recv ch =
    match S.try_recv ch with
    | Some m ->
      S.advance CM.current.syscall_recv;
      m
    | None ->
      S.advance CM.current.syscall_recv;
      let m = S.recv ch in
      ctx_switch_penalty ();
      m
end
