(** Per-connection SPSC submission/completion rings in the shared
    heap.

    Each ring is a fixed array of sequence-stamped slots plus a small
    header, living inside the Ralloc heap so it survives a crash with
    the rest of the store. The producer writes a message's payload
    (spanning one or more consecutive slots), stamps every slot's
    sequence word — the *first* slot last — and only then advances the
    header tail. A torn message therefore has a stale first-slot
    sequence and is simply absent after recovery: in-flight-but-unacked
    entries are discarded, while everything at or below the consumer's
    acked watermark was already executed and survives through the
    store itself.

    This module is pure region mechanics: no substrate, no cost
    charging, no pkru manipulation. Callers hold whatever protection
    key the ring's pages are sealed under ({!Pku.Vpkey} grants, wired
    up by the server) and charge their own simulated costs. *)

module Region = Shm.Region

(* Red-team toggle (shipping default true): with validation off the
   consumer trusts slot headers verbatim — the forged-length /
   stomped-sequence attacks in lib/redteam stop being bounced and
   start dereferencing attacker-controlled lengths. *)
let validation_enabled = ref true

type t = {
  region : Region.t;
  base : int;
  slots : int;
  slot_bytes : int;
}

let magic = 0x52494E4731 (* "RING1" *)

let hdr_bytes = 64

(* Header word offsets (bytes, relative to [base]). *)
let o_magic = 0
let o_slots = 8
let o_slot_bytes = 16
let o_head = 24 (* consumer position, slot-granular, monotonic *)
let o_tail = 32 (* producer position, slot-granular, monotonic *)
let o_acked = 40 (* consumer-acked watermark, <= head *)
let o_armed = 48 (* consumer parked, wants a doorbell *)
let o_dead = 56 (* connection bounced; producer must stop *)

(* Slot layout: [seq:8][len:8][stamp:8][payload]. [seq] is position+1
   when published (0 = never written at this wrap). [len] holds the
   message's total length in the first slot and the fragment length in
   continuations. [stamp] is the producer's enqueue time (first slot;
   0 in continuations) — the arrival signal the adaptive batch window
   feeds on. *)
let slot_hdr = 24

let bytes_for ~slots ~slot_bytes = hdr_bytes + (slots * slot_bytes)

let frag_cap t = t.slot_bytes - slot_hdr

let max_msg t = t.slots * frag_cap t

let slot_off t pos = t.base + hdr_bytes + (pos mod t.slots * t.slot_bytes)

let rd t o = Region.read_i64 t.region (t.base + o)

let wr t o v = Region.write_i64 t.region (t.base + o) v

let init region ~base ~slots ~slot_bytes =
  if slots < 2 || slot_bytes < slot_hdr + 8 then
    invalid_arg "Ring.init: degenerate geometry";
  let t = { region; base; slots; slot_bytes } in
  Region.fill region ~off:base ~len:(bytes_for ~slots ~slot_bytes) '\000';
  wr t o_slots slots;
  wr t o_slot_bytes slot_bytes;
  wr t o_magic magic;
  t

let attach region ~base =
  let t0 = { region; base; slots = 0; slot_bytes = 0 } in
  if rd t0 o_magic <> magic then invalid_arg "Ring.attach: bad magic";
  let slots = rd t0 o_slots and slot_bytes = rd t0 o_slot_bytes in
  if slots < 2 || slot_bytes < slot_hdr + 8 then
    invalid_arg "Ring.attach: corrupt geometry";
  { region; base; slots; slot_bytes }

let head t = rd t o_head
let tail t = rd t o_tail
let acked t = rd t o_acked

let slots_used t = tail t - head t

let is_empty t = slots_used t = 0

let consumer_armed t = rd t o_armed <> 0

let set_armed t v = wr t o_armed (if v then 1 else 0)

let is_dead t = rd t o_dead <> 0

let mark_dead t = wr t o_dead 1

let slots_for t len = (len + frag_cap t - 1) / frag_cap t

let has_room t ~len =
  let n = max 1 (slots_for t len) in
  slots_used t + n <= t.slots

(* ---- producer -------------------------------------------------------- *)

let produce t ~stamp payload =
  let len = String.length payload in
  if len = 0 || len > max_msg t then invalid_arg "Ring.produce: bad length";
  if not (has_room t ~len) then invalid_arg "Ring.produce: ring full";
  let cap = frag_cap t in
  let p0 = tail t in
  let nfrag = slots_for t len in
  (* Continuation fragments first, first slot's seq stamped last: the
     message becomes visible — and recoverable — atomically. *)
  for j = nfrag - 1 downto 0 do
    let pos = p0 + j in
    let off = slot_off t pos in
    let frag_at = j * cap in
    let frag_len = min cap (len - frag_at) in
    Region.write_i64 t.region (off + 8)
      (if j = 0 then len else frag_len);
    Region.write_i64 t.region (off + 16) (if j = 0 then stamp else 0);
    Region.blit_from_bytes t.region
      ~src:(Bytes.unsafe_of_string payload)
      ~src_off:frag_at ~dst_off:(off + slot_hdr) ~len:frag_len;
    Region.write_i64 t.region off (pos + 1)
  done;
  wr t o_tail (p0 + nfrag)

(* ---- consumer -------------------------------------------------------- *)

type pending = {
  p_msgs : int;
  p_slots : int;
  p_first_stamp : int;
  p_last_stamp : int;
}

(* Walk the published window, validating every slot header before
   anything downstream trusts it. Returns [Error] on the forgeries the
   red team throws at us: a stomped head/tail pair, a sequence stamp
   that does not match its position, a length outside the message
   envelope. *)
let walk t =
  let h = head t and tl = tail t in
  let used = tl - h in
  if used = 0 then Ok None
  else if !validation_enabled && (used < 0 || used > t.slots) then
    Error
      (Printf.sprintf "ring overfilled: head=%d tail=%d slots=%d" h tl t.slots)
  else begin
    let cap = frag_cap t in
    let bad = ref None in
    let msgs = ref 0 in
    let nslots = ref 0 in
    let first_stamp = ref 0 in
    let last_stamp = ref 0 in
    let pos = ref h in
    (* Bound the walk even when validation is off and the headers lie. *)
    let limit = min tl (h + t.slots) in
    while !bad = None && !pos < limit do
      let off = slot_off t !pos in
      let seq = Region.read_i64 t.region off in
      let len = Region.read_i64 t.region (off + 8) in
      let stamp = Region.read_i64 t.region (off + 16) in
      if !validation_enabled && seq <> !pos + 1 then
        bad := Some (Printf.sprintf "forged seq %d at position %d" seq !pos)
      else if !validation_enabled && (len <= 0 || len > max_msg t) then
        bad := Some (Printf.sprintf "forged length %d at position %d" len !pos)
      else begin
        let nfrag = max 1 (slots_for t (max 1 len)) in
        if !validation_enabled && !pos + nfrag > tl then
          bad :=
            Some
              (Printf.sprintf "truncated message at position %d (%d slots)"
                 !pos nfrag)
        else begin
          if !validation_enabled then
            for j = 1 to nfrag - 1 do
              let coff = slot_off t (!pos + j) in
              let cseq = Region.read_i64 t.region coff in
              let clen = Region.read_i64 t.region (coff + 8) in
              let want = min cap (len - (j * cap)) in
              if cseq <> !pos + j + 1 || clen <> want then
                bad :=
                  Some
                    (Printf.sprintf "torn continuation at position %d"
                       (!pos + j))
            done;
          if !bad = None then begin
            if !msgs = 0 then first_stamp := stamp;
            last_stamp := stamp;
            incr msgs;
            nslots := !nslots + nfrag;
            pos := !pos + nfrag
          end
        end
      end
    done;
    match !bad with
    | Some e -> Error e
    | None ->
      Ok
        (Some
           { p_msgs = !msgs; p_slots = !nslots; p_first_stamp = !first_stamp;
             p_last_stamp = !last_stamp })
  end

let pending t = walk t

let read_msg t pos len =
  let cap = frag_cap t in
  if !validation_enabled then begin
    (* Fragment-clamped copy: every read stays inside the ring no
       matter what the header claims (the walk already vetted [len]). *)
    let out = Bytes.create len in
    let nfrag = slots_for t len in
    for j = 0 to nfrag - 1 do
      let frag_at = j * cap in
      let frag_len = min cap (len - frag_at) in
      Region.blit_to_bytes t.region
        ~src_off:(slot_off t (pos + j) + slot_hdr)
        ~dst:out ~dst_off:frag_at ~len:frag_len
    done;
    Bytes.unsafe_to_string out
  end
  else
    (* Pre-fix fast path: trust the header's length and read the
       message as one contiguous span. A forged length walks straight
       off the ring — into whatever the caller's keys let it read. *)
    Region.read_string t.region ~off:(slot_off t pos + slot_hdr) ~len

(* Drain every published message, advancing head and the acked
   watermark together: once this returns, the entries are the
   consumer's problem (the server executes them under the same
   crossing), and recovery must not replay them. *)
let consume_all t =
  match walk t with
  | Error _ as e -> e
  | Ok None -> Ok []
  | Ok (Some _) ->
    let h = head t and tl = tail t in
    let limit = min tl (h + t.slots) in
    let out = ref [] in
    let pos = ref h in
    while !pos < limit do
      let off = slot_off t !pos in
      let len = Region.read_i64 t.region (off + 8) in
      let stamp = Region.read_i64 t.region (off + 16) in
      let msg = read_msg t !pos len in
      out := (msg, stamp) :: !out;
      pos := !pos + max 1 (slots_for t (max 1 len))
    done;
    wr t o_head !pos;
    wr t o_acked !pos;
    Ok (List.rev !out)

(* Pop a single message (the client consuming completions). Returns
   [None] when the ring is empty. *)
let consume_one t =
  match walk t with
  | Error e -> invalid_arg ("Ring.consume_one: " ^ e)
  | Ok None -> None
  | Ok (Some _) ->
    let h = head t in
    let off = slot_off t h in
    let len = Region.read_i64 t.region (off + 8) in
    let msg = read_msg t h len in
    let h' = h + max 1 (slots_for t (max 1 len)) in
    wr t o_head h';
    wr t o_acked h';
    Some msg

(* ---- recovery -------------------------------------------------------- *)

(* Repair a ring after a crash: clamp broken header invariants, then
   truncate the published window at the first torn entry. Entries the
   producer stamped-and-advanced survive verbatim; an entry whose
   first-slot sequence was never stamped (the kill landed mid-produce)
   is discarded — present-or-absent, never torn. *)
let recover t =
  let h = rd t o_head in
  let tl = rd t o_tail in
  let a = rd t o_acked in
  let h = max 0 h in
  let tl = if tl < h || tl - h > t.slots then h else tl in
  let a = min (max 0 a) h in
  wr t o_head h;
  wr t o_acked a;
  wr t o_armed 0;
  let cap = frag_cap t in
  let pos = ref h in
  let good = ref h in
  let stop = ref false in
  while (not !stop) && !pos < tl do
    let off = slot_off t !pos in
    let seq = Region.read_i64 t.region off in
    let len = Region.read_i64 t.region (off + 8) in
    if seq <> !pos + 1 || len <= 0 || len > max_msg t then stop := true
    else begin
      let nfrag = slots_for t len in
      if !pos + nfrag > tl then stop := true
      else begin
        for j = 1 to nfrag - 1 do
          let coff = slot_off t (!pos + j) in
          let want = min cap (len - (j * cap)) in
          if
            Region.read_i64 t.region coff <> !pos + j + 1
            || Region.read_i64 t.region (coff + 8) <> want
          then stop := true
        done;
        if not !stop then begin
          pos := !pos + nfrag;
          good := !pos
        end
      end
    end
  done;
  wr t o_tail !good

(* ---- layout introspection (the red team's map of the pages) ---------- *)

let region t = t.region

let slot_word t pos = slot_off t pos

let tail_word t = t.base + o_tail
