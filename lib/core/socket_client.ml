(** Client side of the baseline: libmemcached's wire path — marshal a
    request, write it to the Unix-domain socket, block for the reply,
    parse it. One kernel round trip per operation; this is what the
    protected library replaces with a 40 ns trampoline. *)

module P = Mc_protocol.Types
module CM = Platform.Cost_model

module Make (S : Platform.Sync_intf.S) = struct
  module T = Transport.Sock.Make (S)

  type protocol = Ascii | Binary

  type t = { conn : T.conn; protocol : protocol }

  let connect ?(protocol = Binary) ~name () =
    { conn = T.connect ~name; protocol }

  let encode t cmd =
    S.advance CM.current.client_pack;
    match t.protocol with
    | Ascii -> Mc_protocol.Ascii.encode_command cmd
    | Binary -> Mc_protocol.Binary.encode_command cmd

  let decode t cmd payload =
    S.advance CM.current.client_unpack;
    match t.protocol with
    | Ascii -> Mc_protocol.Ascii.parse_response payload
    | Binary -> Mc_protocol.Binary.parse_response ~for_cmd:cmd payload

  let roundtrip t cmd =
    let req = encode t cmd in
    T.client_send t.conn req;
    let reply = T.client_recv t.conn in
    decode t cmd reply

  let get t key : Mc_core.Store.get_result option =
    (* gets, not get: the result type exposes the CAS unique, and over
       ASCII only a gets reply carries it *)
    match roundtrip t (P.Gets [ key ]) with
    | P.Values { vals = []; _ } -> None
    | P.Values { vals = v :: _; _ } ->
      Some
        { Mc_core.Store.value = v.P.v_data; flags = v.P.v_flags;
          cas = v.P.v_cas }
    | _ -> None

  (* ---- Batch plane ---------------------------------------------------- *)

  let encode_only t cmd =
    match t.protocol with
    | Ascii -> Mc_protocol.Ascii.encode_command cmd
    | Binary -> Mc_protocol.Binary.encode_command cmd

  (* Parse one positioned reply out of the accumulation buffer,
     receiving more bytes whenever only a prefix has arrived. *)
  let rec parse_at t buf cmd at =
    let data = Buffer.contents buf in
    match
      match t.protocol with
      | Ascii -> Mc_protocol.Ascii.parse_response_at data ~at
      | Binary -> Mc_protocol.Binary.parse_response_at ~for_cmd:cmd data ~at
    with
    | r -> r
    | exception P.Need_more_data ->
      Buffer.add_string buf (T.client_recv t.conn);
      parse_at t buf cmd at

  (* Pipelining: the whole command list marshalled into one buffer,
     one send, replies parsed back in order — one kernel round trip
     where the one-op path pays B of them. Commands whose replies the
     server suppresses (noreply storage, quiet gets) would desync the
     positional parse and are refused; quiet-get runs go through
     {!mget}. *)
  let pipeline t (cmds : P.command list) : P.response list =
    match cmds with
    | [] -> []
    | cmds ->
      S.advance CM.current.client_pack;
      let req = Buffer.create 256 in
      List.iter
        (fun c ->
          if P.is_noreply c then
            invalid_arg "pipeline: command with a suppressed reply";
          Buffer.add_string req (encode_only t c))
        cmds;
      T.client_send t.conn (Buffer.contents req);
      S.advance CM.current.client_unpack;
      let buf = Buffer.create 256 in
      Buffer.add_string buf (T.client_recv t.conn);
      let rec go at = function
        | [] -> []
        | cmd :: rest ->
          let resp, used = parse_at t buf cmd at in
          resp :: go (at + used) rest
      in
      go 0 cmds

  let mget t keys : (string * Mc_core.Store.get_result) list =
    match keys with
    | [] -> []
    | keys ->
      (match t.protocol with
       | Ascii ->
         (match roundtrip t (P.Gets keys) with
          | P.Values { vals; _ } ->
            List.map
              (fun v ->
                ( v.P.v_key,
                  { Mc_core.Store.value = v.P.v_data; flags = v.P.v_flags;
                    cas = v.P.v_cas } ))
              vals
          | _ -> [])
       | Binary ->
         (* The binary protocol's pipelined multi-get: a run of GetKQ
            frames closed by a Noop. Misses are suppressed; each hit
            frame echoes its key, and the noop reply flushes and
            terminates the run — one round trip for the whole list. *)
         S.advance CM.current.client_pack;
         let req = Buffer.create 256 in
         List.iter
           (fun k ->
             Buffer.add_string req
               (encode_only t
                  (P.Getx { g_key = k; g_quiet = true; g_withkey = true })))
           keys;
         Buffer.add_string req (encode_only t P.Noop);
         T.client_send t.conn (Buffer.contents req);
         S.advance CM.current.client_unpack;
         let buf = Buffer.create 256 in
         Buffer.add_string buf (T.client_recv t.conn);
         let quiet_get =
           P.Getx { g_key = ""; g_quiet = true; g_withkey = true }
         in
         let rec collect at acc =
           (* A reply frame is either a hit for some quiet get (the key
              is echoed in the frame) or the terminating noop; the
              opcode byte tells which before committing to a parse. *)
           if Buffer.length buf < at + 2 then begin
             Buffer.add_string buf (T.client_recv t.conn);
             collect at acc
           end
           else if
             Char.code (Buffer.nth buf (at + 1)) = Mc_protocol.Binary.Op.noop
           then List.rev acc
           else
             match parse_at t buf quiet_get at with
             | P.Values { vals; _ }, used ->
               let acc =
                 List.fold_left
                   (fun acc v ->
                     ( v.P.v_key,
                       { Mc_core.Store.value = v.P.v_data;
                         flags = v.P.v_flags; cas = v.P.v_cas } )
                     :: acc)
                   acc vals
               in
               collect (at + used) acc
             | _, used -> collect (at + used) acc
         in
         collect 0 [])

  (* ---- Open-loop plane -------------------------------------------------

     Split send/await for the open-loop YCSB driver: [submit] marshals
     and sends without waiting for the reply; [await] parses the next
     reply (in submission order) off the connection's accumulated byte
     stream. With many requests in flight the stream interleaves reply
     frames back to back — exactly what the completion ring delivers —
     and the positional parse walks them one [await] at a time. *)

  type stream = { cl : t; sbuf : Buffer.t; mutable s_at : int }

  let stream t = { cl = t; sbuf = Buffer.create 256; s_at = 0 }

  let submit st cmd =
    if P.is_noreply cmd then invalid_arg "submit: command with a suppressed reply";
    S.advance CM.current.client_pack;
    T.client_send st.cl.conn (encode_only st.cl cmd)

  let await st cmd =
    S.advance CM.current.client_unpack;
    if st.s_at > 65536 then begin
      (* drop the consumed prefix so a long run stays bounded *)
      let rest = Buffer.sub st.sbuf st.s_at (Buffer.length st.sbuf - st.s_at) in
      Buffer.clear st.sbuf;
      Buffer.add_string st.sbuf rest;
      st.s_at <- 0
    end;
    let resp, used = parse_at st.cl st.sbuf cmd st.s_at in
    st.s_at <- st.s_at + used;
    resp

  let store_result_of_response : P.response -> Mc_core.Store.store_result =
    function
    | P.Stored -> Mc_core.Store.Stored
    | P.Not_stored -> Mc_core.Store.Not_stored
    | P.Exists -> Mc_core.Store.Exists
    | P.Not_found -> Mc_core.Store.Not_found
    | P.Server_error _ -> Mc_core.Store.No_memory
    | _ -> Mc_core.Store.Not_stored

  let set t ?(flags = 0) ?(exptime = 0) key data =
    store_result_of_response
      (roundtrip t (P.Set { P.key; flags; exptime; data; noreply = false }))

  let add t ?(flags = 0) ?(exptime = 0) key data =
    store_result_of_response
      (roundtrip t (P.Add { P.key; flags; exptime; data; noreply = false }))

  let replace t ?(flags = 0) ?(exptime = 0) key data =
    store_result_of_response
      (roundtrip t (P.Replace { P.key; flags; exptime; data; noreply = false }))

  let append t key extra =
    store_result_of_response
      (roundtrip t
         (P.Append { P.key; flags = 0; exptime = 0; data = extra;
                     noreply = false }))

  let prepend t key extra =
    store_result_of_response
      (roundtrip t
         (P.Prepend { P.key; flags = 0; exptime = 0; data = extra;
                      noreply = false }))

  let cas t ?(flags = 0) ?(exptime = 0) ~cas key data =
    store_result_of_response
      (roundtrip t
         (P.Cas ({ P.key; flags; exptime; data; noreply = false }, cas)))

  let delete t key =
    match roundtrip t (P.Delete (key, false)) with
    | P.Deleted -> true
    | _ -> false

  let counter t ~decr key delta : Mc_core.Store.counter_result =
    (* libmemcached's incr/decr path is substantially slower than its
       get/set path (Figure 5 reports 54 us vs 13 us); charge the
       measured client-side overhead. *)
    S.advance CM.current.client_incr_extra;
    let cmd = if decr then P.Decr (key, delta, false) else P.Incr (key, delta, false) in
    match roundtrip t cmd with
    | P.Number v -> Mc_core.Store.Counter v
    | P.Client_error _ -> Mc_core.Store.Non_numeric
    | _ -> Mc_core.Store.Counter_not_found

  let incr t key delta = counter t ~decr:false key delta

  let decr t key delta = counter t ~decr:true key delta

  let touch t key exptime =
    match roundtrip t (P.Touch (key, exptime, false)) with
    | P.Touched -> true
    | _ -> false

  let stats ?arg t =
    match roundtrip t (P.Stats arg) with
    | P.Stats_reply kvs -> kvs
    | P.Reset -> []
    | _ -> []

  let stats_reset t =
    match roundtrip t (P.Stats (Some "reset")) with
    | P.Reset -> true
    | _ -> false

  let version t =
    match roundtrip t P.Version with P.Version_reply v -> Some v | _ -> None

  let flush_all t = ignore (roundtrip t P.Flush_all)

  let quit t =
    let req = encode t P.Quit in
    (try T.client_send t.conn req with T.Connection_closed -> ())
end
