(** The two client APIs of §3.1.

    {b Classic API} — a drop-in replacement for libmemcached: every
    call takes a [memcached_st]. Behind it sits either the socket
    backend (talking to a {!Mc_server} instance, as stock libmemcached
    would) or the protected-library backend (direct Hodor calls). With
    the plib backend, the [memcached_st]'s server list and protocol
    configuration are irrelevant: configuration calls become no-ops by
    default, or errors when the application opts into strict mode to
    aid migration.

    {b Direct API} — the new, slimmer interface that omits the
    [memcached_st] argument entirely.

    {b Async API} — memcached's callback-style interface exists to
    hide socket latency; with the protected library every call
    completes immediately, so the callback is invoked on the spot,
    right after the trampoline returns (§3.1). *)

module Make (S : Platform.Sync_intf.S) = struct
  module Plib = Plib_store.Make (S)
  module Sock = Socket_client.Make (S)

  type backend = Plib_backend of Plib.t | Socket_backend of Sock.t

  type behavior =
    | BEHAVIOR_BINARY_PROTOCOL
    | BEHAVIOR_NO_BLOCK
    | BEHAVIOR_TCP_NODELAY
    | BEHAVIOR_SND_TIMEOUT
    | BEHAVIOR_RCV_TIMEOUT
    | BEHAVIOR_SERVER_FAILURE_LIMIT

  type memcached_st = {
    backend : backend;
    mutable strict_config : bool;
    behaviors : (behavior, int) Hashtbl.t;
  }

  open Errors

  let memcached_create backend =
    { backend; strict_config = false; behaviors = Hashtbl.create 8 }

  let memcached_strict_configuration st flag = st.strict_config <- flag

  (* Network-protocol knobs mean nothing without a network; no-op by
     default, error under strict mode to flag migration work (§3.1). *)
  let memcached_behavior_set st behavior value =
    match st.backend with
    | Socket_backend _ ->
      Hashtbl.replace st.behaviors behavior value;
      MEMCACHED_SUCCESS
    | Plib_backend _ ->
      if st.strict_config then
        MEMCACHED_NOT_SUPPORTED
          "network behaviors are meaningless for a protected library"
      else MEMCACHED_SUCCESS

  let memcached_behavior_get st behavior =
    match Hashtbl.find_opt st.behaviors behavior with Some v -> v | None -> 0

  (* ---- Retrieval ------------------------------------------------------ *)

  let memcached_get st key :
    (string * int, Errors.t) result =
    let r =
      match st.backend with
      | Plib_backend p -> Plib.get p key
      | Socket_backend s -> Sock.get s key
    in
    match r with
    | Some g -> Ok (g.Mc_core.Store.value, g.Mc_core.Store.flags)
    | None -> Error MEMCACHED_NOTFOUND

  let memcached_gets st key :
    (string * int * int64, Errors.t) result =
    let r =
      match st.backend with
      | Plib_backend p -> Plib.get p key
      | Socket_backend s -> Sock.get s key
    in
    match r with
    | Some g ->
      Ok (g.Mc_core.Store.value, g.Mc_core.Store.flags, g.Mc_core.Store.cas)
    | None -> Error MEMCACHED_NOTFOUND

  (* ---- Storage --------------------------------------------------------- *)

  let of_store_result : Mc_core.Store.store_result -> Errors.t = function
    | Mc_core.Store.Stored -> MEMCACHED_SUCCESS
    | Mc_core.Store.Not_stored -> MEMCACHED_NOTSTORED
    | Mc_core.Store.Exists -> MEMCACHED_DATA_EXISTS
    | Mc_core.Store.Not_found -> MEMCACHED_NOTFOUND
    | Mc_core.Store.No_memory -> MEMCACHED_MEMORY_ALLOCATION_FAILURE

  let memcached_set st ?(flags = 0) ?(exptime = 0) key data =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.set p ~flags ~exptime key data
       | Socket_backend s -> Sock.set s ~flags ~exptime key data)

  let memcached_add st ?(flags = 0) ?(exptime = 0) key data =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.add p ~flags ~exptime key data
       | Socket_backend s -> Sock.add s ~flags ~exptime key data)

  let memcached_replace st ?(flags = 0) ?(exptime = 0) key data =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.replace p ~flags ~exptime key data
       | Socket_backend s -> Sock.replace s ~flags ~exptime key data)

  let memcached_append st key extra =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.append p key extra
       | Socket_backend s -> Sock.append s key extra)

  let memcached_prepend st key extra =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.prepend p key extra
       | Socket_backend s -> Sock.prepend s key extra)

  let memcached_cas st ?(flags = 0) ?(exptime = 0) ~cas key data =
    of_store_result
      (match st.backend with
       | Plib_backend p -> Plib.cas p ~flags ~exptime ~cas key data
       | Socket_backend s -> Sock.cas s ~flags ~exptime ~cas key data)

  (* ---- Delete / counters / touch ----------------------------------------- *)

  let memcached_delete st key =
    let ok =
      match st.backend with
      | Plib_backend p -> Plib.delete p key
      | Socket_backend s -> Sock.delete s key
    in
    if ok then MEMCACHED_SUCCESS else MEMCACHED_NOTFOUND

  let counter_result = function
    | Mc_core.Store.Counter v -> Ok v
    | Mc_core.Store.Counter_not_found -> Error MEMCACHED_NOTFOUND
    | Mc_core.Store.Non_numeric ->
      Error (MEMCACHED_CLIENT_ERROR "cannot increment or decrement non-numeric value")

  let memcached_increment st key delta =
    counter_result
      (match st.backend with
       | Plib_backend p -> Plib.incr p key delta
       | Socket_backend s -> Sock.incr s key delta)

  let memcached_decrement st key delta =
    counter_result
      (match st.backend with
       | Plib_backend p -> Plib.decr p key delta
       | Socket_backend s -> Sock.decr s key delta)

  let memcached_touch st key exptime =
    let ok =
      match st.backend with
      | Plib_backend p -> Plib.touch p key exptime
      | Socket_backend s -> Sock.touch s key exptime
    in
    if ok then MEMCACHED_SUCCESS else MEMCACHED_NOTFOUND

  (* ---- Admin --------------------------------------------------------------- *)

  let memcached_stat st =
    match st.backend with
    | Plib_backend p -> Plib.stats p
    | Socket_backend s -> Sock.stats s

  let memcached_flush st =
    (match st.backend with
     | Plib_backend p -> Plib.flush_all p
     | Socket_backend s -> Sock.flush_all s);
    MEMCACHED_SUCCESS

  (* ---- Async (callback) interface -------------------------------------------- *)

  (* Multi-get, the batch plane's client face: one protection crossing
     (plib) or one kernel round trip (socket) for the whole key list.
     Returns hits in key-list order. *)
  let memcached_mget st keys : (string * Mc_core.Store.get_result) list =
    match st.backend with
    | Plib_backend p -> Plib.mget p keys
    | Socket_backend s -> Sock.mget s keys

  (* With sockets, mget hides latency by batching; with the protected
     library one trampoline crossing carries the whole run and the
     callbacks fire right after it returns. Either way the
     application-visible contract holds. *)
  let memcached_mget_execute st keys
      ~(callback : key:string -> value:string -> flags:int -> unit) =
    List.iter
      (fun (key, g) ->
        callback ~key ~value:g.Mc_core.Store.value ~flags:g.Mc_core.Store.flags)
      (memcached_mget st keys);
    MEMCACHED_SUCCESS

  (* ---- The slim Direct API (no memcached_st) ----------------------------------- *)

  module Direct = struct
    let default : Plib.t option ref = ref None

    exception Not_initialized

    let memcached_init p = default := Some p

    let the () = match !default with Some p -> p | None -> raise Not_initialized

    let get key = Plib.get (the ()) key

    let mget keys = Plib.mget (the ()) keys

    let batch ?on_op ops = Plib.batch ?on_op (the ()) ops

    let set ?flags ?exptime key data = Plib.set (the ()) ?flags ?exptime key data

    let add ?flags ?exptime key data = Plib.add (the ()) ?flags ?exptime key data

    let replace ?flags ?exptime key data =
      Plib.replace (the ()) ?flags ?exptime key data

    let append key extra = Plib.append (the ()) key extra

    let prepend key extra = Plib.prepend (the ()) key extra

    let cas ?flags ?exptime ~cas:c key data =
      Plib.cas (the ()) ?flags ?exptime ~cas:c key data

    let delete key = Plib.delete (the ()) key

    let incr key delta = Plib.incr (the ()) key delta

    let decr key delta = Plib.decr (the ()) key delta

    let touch key exptime = Plib.touch (the ()) key exptime

    let stats () = Plib.stats (the ())

    let flush_all () = Plib.flush_all (the ())
  end
end
