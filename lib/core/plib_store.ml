(** memcached as a Hodor protected library — the paper's contribution.

    Lifecycle (§3.2):
    - a {e bookkeeping process} creates the shared heap (a Ralloc heap
      over a region standing in for the memory-mapped file, owned
      uid-and-mode style via the simulated FS), builds the store in
      it, and anchors the control block behind a persistent root with
      one extra level of indirection (Figure 3's [hashtable_storage]
      idiom, so the structure may be reallocated later);
    - client processes "map" the heap by linking against the library:
      the loader opens the store file with the {e owner's} effective
      uid (§3.3), so clients never hold rights to the file itself;
    - every public operation runs through a Hodor trampoline; keys
      arriving from the client are copied into a library-private
      Ralloc buffer {e before} any lock is taken (Figure 4's
      [key_prot] idiom, §3.4);
    - on shutdown the bookkeeping process flushes the heap to its
      backing file; a restart maps the file and finds everything again
      through the roots — position independence makes the reload free.

    The [Protection] choice selects the paper's three measured
    configurations: the baseline server lives in {!Mc_server}; here
    [Protected] is "Plib, w/Hodor" and [Unprotected] is "Plib, No
    Hodor". *)

module CM = Platform.Cost_model
module Region = Shm.Region
module Process = Simos.Process

let root_primary = 0
(** Persistent root id anchoring the double-indirect cell that points
    at the store control block. *)

let root_telemetry = 1
(** Persistent root id anchoring the telemetry counter block: a flat
    array of [Telemetry.Counters.cells] 64-bit words in the shared
    heap. Because it hangs off a root, the block survives client
    crashes and bookkeeper restarts, and recovery {e sifts} it (keeps
    it live) rather than resetting it — the SIFT semantics DESIGN.md
    documents. *)

let root_arena = 2
(** Persistent root id anchoring the bump-arena hot tier: a pptr cell
    pointing at the newest 1 MiB arena region, whose directory chains
    to the older ones. Recovery walks the chain from here, so arena
    regions survive client crashes like everything else in the heap. *)

let root_tenants = 3
(** Persistent root id anchoring the tenant registry block
    ({!Mc_core.Tenant}): membership, quotas, per-tenant stats and
    virtual-pkey ids live in the shared heap, so tenancy survives
    client crashes and bookkeeper restarts. Usage counters inside the
    block may be mid-update at a kill; recovery recomputes them from
    the store itself. *)

let root_rings = 4
(** Persistent root id anchoring the shared-ring directory: a fixed
    table of (cid, block, sub, comp) rows, one per live ring-mode
    connection, with the ring pairs themselves carved out of this same
    heap. Recovery keeps every in-use pair alive through the directory
    and replays each ring's recovery protocol, so acked completions
    survive a crash while in-flight-but-unacked submissions are simply
    discarded with the connection. *)

let root_flight = 5
(** Persistent root id anchoring the flight-recorder block: the
    per-thread breadcrumb rings plus the pre-crash trace snapshot area
    ({!Telemetry.Flight}). Living in the shared heap, the breadcrumbs a
    dying client wrote survive its death — the forensic report
    ({!Telemetry.Forensics}) is reconstructed from this block after
    recovery. Records are published seq-word-last, so a record the
    victim was mid-write is simply invisible, never torn. *)

let max_ring_conns = 64
(** Ring-directory capacity: live ring-mode connections per store. *)

let ring_dir_row = 40
(** Directory row: in_use, cid, block, sub base, comp base — five
    64-bit words. [in_use] is written last on allocation and cleared
    first on teardown, so a kill at any point leaves either a fully
    described pair or an unreferenced block for recovery to reclaim. *)

let max_tenants = 64
(** Registry capacity — also the scale the vpkey layer is sized for:
    64 virtual keys multiplexed onto the 16 hardware slots. *)

module Make (S : Platform.Sync_intf.S) = struct
  module Store =
    Mc_core.Store.Make (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (S)

  module Tenant = Mc_core.Tenant

  type t = {
    lib : Hodor.Library.t;
    region : Region.t;
    heap : Ralloc.t;
    arena : Mc_core.Bump_arena.t;
    store : Store.t;
    tenants : Tenant.t;
    (* Per-tenant "vaults": one vkey-tagged page each, the visible
       proof of the tenant's protection domain. Host-side objects (the
       registry persists the vkey ids; vaults are re-created on
       restart as tenants re-authenticate). *)
    vaults : (int, Region.t) Hashtbl.t;
    path : string;
    owner : Process.t;
    stop_cleaner : bool Atomic.t;
    mutable cleaner : S.thread option;
    (* Report of the last post-crash recovery, reconstructed from the
       flight recorder at the end of [Library.recover]; [None] until a
       recovery has run. Served by [doctor]/[forensics]. *)
    mutable last_forensics : Telemetry.Forensics.report option;
  }

  type protection = Hodor.Library.protection = Protected | Unprotected

  let wire_runtime () =
    (* Hodor charges trampoline costs through these hooks; bind them to
       whichever substrate this instance runs on. *)
    Hodor.Runtime.configure ~advance:S.advance ~now:S.now_ns

  (* Find (restart) or allocate (first boot) the shared-heap telemetry
     block and point the process-wide counter store at it. Counter
     bumps are host-side bookkeeping: they run in kernel mode (a bump
     can happen before the trampoline has opened the pkru — e.g. the
     [hodor_enter] count itself) and charge no virtual time. The Vm
     schedules cooperatively at sync points only, so the read-modify-
     write below is atomic within a simulation. *)
  let attach_telemetry ~region ~heap =
    Region.kernel_mode (fun () ->
      let block =
        match Ralloc.get_root heap root_telemetry with
        | 0 ->
          let block = Ralloc.alloc heap (8 * Telemetry.Counters.cells) in
          Region.fill region ~off:block ~len:(8 * Telemetry.Counters.cells)
            '\000';
          Ralloc.set_root heap root_telemetry block;
          block
        | block -> block
      in
      Telemetry.Counters.install_backend
        { add =
            (fun cell d ->
              Region.kernel_mode (fun () ->
                let at = block + (8 * cell) in
                Region.write_i64 region at (Region.read_i64 region at + d)));
          read =
            (fun cell ->
              Region.kernel_mode (fun () ->
                Region.read_i64 region (block + (8 * cell))));
          zero =
            (fun () ->
              Region.kernel_mode (fun () ->
                Region.fill region ~off:block
                  ~len:(8 * Telemetry.Counters.cells) '\000')) })

  (* Find (restart) or allocate (first boot) the flight-recorder block
     and point the process-wide recorder at it. Like the counter block,
     breadcrumb writes are host-side bookkeeping running in kernel mode
     (a crumb can land inside the trampoline before the pkru is open)
     and charge no virtual time; the publish-last stamping inside
     [Telemetry.Flight] is what makes a mid-write kill leave no torn
     record. On re-attach the existing breadcrumbs are preserved — they
     are exactly the forensic evidence of the previous life. *)
  let attach_flight ~region ~heap =
    Region.kernel_mode (fun () ->
      let block =
        match Ralloc.get_root heap root_flight with
        | 0 ->
          let block = Ralloc.alloc heap Telemetry.Flight.bytes in
          Region.fill region ~off:block ~len:Telemetry.Flight.bytes '\000';
          Ralloc.set_root heap root_flight block;
          block
        | block -> block
      in
      Telemetry.Flight.install_backend
        { Telemetry.Flight.read =
            (fun w ->
              Region.kernel_mode (fun () ->
                Region.read_i64 region (block + (8 * w))));
          write =
            (fun w v ->
              Region.kernel_mode (fun () ->
                Region.write_i64 region (block + (8 * w)) v)) };
      Telemetry.Flight.ensure_formatted ())

  (* Tenant plumbing installed on every handle:
     - the LRU selector routes each tenant's items onto the LRU list
       matching its registry slot, so per-tenant eviction scans only
       the tenant's own cold end (and recovery rebuilds per-tenant
       LRUs for free — [Store.recover] relinks through the selector);
     - the evict hook credits the owning tenant's usage and bumps its
       eviction stat whenever the store reclaims one of its items;
     - the registry serves `stats tenants` / joins `stats reset`
       through the executor hooks. *)
  let install_tenant_hooks ~store ~tenants =
    Store.set_lru_selector store
      (Some (fun key -> Tenant.owner_slot_of_key tenants key));
    Store.set_evict_hook store
      (Some
         (fun ~key ~bytes ->
           match Tenant.owner_slot_of_key tenants key with
           | Some slot ->
             Tenant.charge tenants slot ~bytes:(-bytes) ~items:(-1);
             Tenant.bump tenants slot Tenant.Evictions
           | None -> ()));
    Tenant.stats_hook := (fun () -> Tenant.stats_kvs tenants);
    Tenant.reset_hook := (fun () -> Tenant.reset_stats tenants);
    Tenant.bump_hook :=
      (fun name s ->
        match Tenant.find tenants name with
        | Some slot -> Tenant.bump tenants slot s
        | None -> ());
    (* Online quota enforcement for the socket path: the executor
       routes every mutating store arm through this gate, inside the
       crossing. Same discipline as [t_set_in] — a full tenant evicts
       only its own items — and usage is recharged from the post-state
       so the account stays exact whatever the op returned. *)
    Mc_server.Executor.quota_gate :=
      Some
        { Mc_server.Executor.g_store = Obj.repr store;
          g_apply =
            (fun ~key ~op f ->
              match Tenant.owner_slot_of_key tenants key with
              | None -> f ()
              | Some slot ->
                let probe () =
                  match Store.probe store key with
                  | Some b -> (b, 1)
                  | None -> (0, 0)
                in
                let old_bytes, old_items = probe () in
                let add_bytes, add_items =
                  match op with
                  | Mc_server.Executor.Q_set n ->
                    ( String.length key + n - old_bytes,
                      if old_items = 0 then 1 else 0 )
                  | Mc_server.Executor.Q_grow n -> (n, 0)
                  | Mc_server.Executor.Q_touch -> (0, 0)
                in
                let pred =
                  let p = Tenant.prefix tenants slot in
                  fun k -> String.starts_with ~prefix:p k
                in
                let rec room tries =
                  if
                    not
                      (Tenant.would_exceed tenants slot
                         ~add_bytes:(max 0 add_bytes) ~add_items)
                  then true
                  else if tries = 0 then false
                  else if Store.evict_some_matching store ~lru:slot ~pred > 0
                  then room (tries - 1)
                  else false
                in
                if (add_bytes > 0 || add_items > 0) && not (room 64) then
                  Mc_protocol.Types.Server_error "out of memory storing object"
                else begin
                  let resp = f () in
                  let new_bytes, new_items = probe () in
                  Tenant.charge tenants slot ~bytes:(new_bytes - old_bytes)
                    ~items:(new_items - old_items);
                  resp
                end)
        }

  let build_handle ~lib ~region ~heap ~arena ~store ~tenants ~path ~owner =
    let t =
      { lib; region; heap; arena; store; tenants;
        vaults = Hashtbl.create 8; path; owner;
        stop_cleaner = Atomic.make false; cleaner = None;
        last_forensics = None }
    in
    attach_telemetry ~region ~heap;
    attach_flight ~region ~heap;
    install_tenant_hooks ~store ~tenants;
    (* The slot table is process-volatile; the registry is the truth.
       Re-create each persisted vkey so binds work after a restart. *)
    Region.kernel_mode (fun () ->
      Tenant.iter_active tenants (fun slot ->
        let vk = Tenant.vkey_of tenants slot in
        if vk > 0 then
          Pku.Vpkey.restore ~id:vk ~owner:(Tenant.uid_of tenants slot)));
    (* Recovery protocol, run by the bookkeeping process at quiescence
       after a client died mid-call: the store drops half-linked items
       and hands back the reachable set, which the allocator uses to
       rebuild its free lists — anything a dead thread allocated but
       never linked is reclaimed. The Figure-3 indirection cell is live
       too: it is reachable from the root, not from the store. *)
    Hodor.Library.set_recover lib (fun () ->
      Region.kernel_mode (fun () ->
        let live = Store.recover t.store in
        (* Items served by the bump arena live {e inside} its 1 MiB
           regions; the heap's recovery keeps those whole regions alive
           through the chain heads (and would reject interior offsets),
           so arena residents are peeled off and recovered by the
           arena's own sweep afterwards. *)
        let arena_live, live =
          List.partition (Mc_core.Bump_arena.owns t.arena) live
        in
        let live = Mc_core.Bump_arena.recovery_roots t.arena @ live in
        let live =
          match Ralloc.get_root t.heap root_primary with
          | 0 -> live
          | cell -> cell :: live
        in
        (* The telemetry block is sifted, not reset: the counters it
           holds are monotone event counts and survive recovery. *)
        let live =
          match Ralloc.get_root t.heap root_telemetry with
          | 0 -> live
          | block -> block :: live
        in
        let live =
          match Ralloc.get_root t.heap root_arena with
          | 0 -> live
          | cell -> cell :: live
        in
        (* The tenant registry is sifted like the telemetry block:
           membership, quotas and vkey ids are durable. *)
        let live =
          match Ralloc.get_root t.heap root_tenants with
          | 0 -> live
          | block -> block :: live
        in
        (* The flight recorder is the one block that must survive with
           its contents intact: it holds the dying thread's last
           breadcrumbs — the evidence the forensic pass below reads. *)
        let live =
          match Ralloc.get_root t.heap root_flight with
          | 0 -> live
          | block -> block :: live
        in
        (* Ring pairs of live connections stay carved; each ring then
           runs its own recovery protocol — acked completions survive,
           a message the dead client was mid-publish is truncated away
           (its first-slot seq was stamped last), and in-flight-but-
           unacked submissions simply vanish with the window. *)
        let live =
          match Ralloc.get_root t.heap root_rings with
          | 0 -> live
          | dir ->
            let live = ref (dir :: live) in
            for i = 0 to max_ring_conns - 1 do
              let row = dir + (i * ring_dir_row) in
              if Region.read_i64 t.region row <> 0 then begin
                live := Region.read_i64 t.region (row + 16) :: !live;
                Transport.Ring.recover
                  (Transport.Ring.attach t.region
                     ~base:(Region.read_i64 t.region (row + 24)));
                Transport.Ring.recover
                  (Transport.Ring.attach t.region
                     ~base:(Region.read_i64 t.region (row + 32)))
              end
            done;
            !live
        in
        Ralloc.recover t.heap ~live;
        Mc_core.Bump_arena.recover t.arena ~live:arena_live;
        (* Rebuild the volatile tenant state from durable truth:
           re-create each tenant's vkey in the slot table, then
           recompute usage by walking the recovered store — the
           in-block counters may have been mid-update at the kill. *)
        let reg = t.tenants in
        Tenant.iter_active reg (fun slot ->
          let vk = Tenant.vkey_of reg slot in
          if vk > 0 then
            Pku.Vpkey.restore ~id:vk ~owner:(Tenant.uid_of reg slot));
        let bytes = Array.make (Tenant.max_tenants reg) 0 in
        let items = Array.make (Tenant.max_tenants reg) 0 in
        Store.fold_keys t.store
          (fun () key ~nbytes ~exptime:_ ->
            match Tenant.owner_slot_of_key reg key with
            | Some slot ->
              bytes.(slot) <- bytes.(slot) + String.length key + nbytes;
              items.(slot) <- items.(slot) + 1
            | None -> ())
          ();
        Tenant.iter_active reg (fun slot ->
          Tenant.set_usage reg slot ~bytes:bytes.(slot) ~items:items.(slot));
        (* ---- Post-crash forensics --------------------------------------
           Recovery has just repaired the store; now cross-check the
           repaired state against what the flight recorder says the
           victim was doing, reconstruct the per-thread timelines, and
           stash the report for [doctor] / `stats forensics`. *)
        let checks =
          let stripes = Store.stripe_count t.store in
          let odd = ref 0 in
          for s = 0 to stripes - 1 do
            if Store.seq_read t.store s land 1 <> 0 then incr odd
          done;
          let seq_ck =
            { Telemetry.Forensics.ck_name = "stripe_seqs_even";
              ck_ok = !odd = 0;
              ck_detail =
                (if !odd = 0 then
                   Printf.sprintf "all %d stripe seq words even" stripes
                 else Printf.sprintf "%d stripe seq words still odd" !odd) }
          in
          let rings_ck =
            let bad = ref 0 and seen = ref 0 in
            (match Ralloc.get_root t.heap root_rings with
             | 0 -> ()
             | dir ->
               for i = 0 to max_ring_conns - 1 do
                 let row = dir + (i * ring_dir_row) in
                 if Region.read_i64 t.region row <> 0 then begin
                   incr seen;
                   List.iter
                     (fun base ->
                       match
                         Transport.Ring.pending
                           (Transport.Ring.attach t.region ~base)
                       with
                       | Ok _ -> ()
                       | Error _ -> incr bad)
                     [ Region.read_i64 t.region (row + 24);
                       Region.read_i64 t.region (row + 32) ]
                 end
               done);
            { Telemetry.Forensics.ck_name = "rings_valid";
              ck_ok = !bad = 0;
              ck_detail =
                Printf.sprintf "%d live pairs, %d invalid windows" !seen !bad }
          in
          let inv_ck =
            match Ralloc.check_invariants t.heap with
            | () ->
              { Telemetry.Forensics.ck_name = "heap_invariants";
                ck_ok = true; ck_detail = "superblock walk clean" }
            | exception Failure msg ->
              { Telemetry.Forensics.ck_name = "heap_invariants";
                ck_ok = false; ck_detail = msg }
          in
          let recon_ck =
            let hm = Ralloc.heap_map t.heap in
            let used = Ralloc.used_bytes t.heap in
            { Telemetry.Forensics.ck_name = "heap_reconciles";
              ck_ok = hm.Ralloc.hm_live_bytes = used;
              ck_detail =
                Printf.sprintf "map %d bytes vs counter %d bytes"
                  hm.Ralloc.hm_live_bytes used }
          in
          [ seq_ck; rings_ck; inv_ck; recon_ck ]
        in
        let report =
          Telemetry.Forensics.analyze ~heap:(Ralloc.heap_kvs t.heap) ~checks ()
        in
        t.last_forensics <- Some report;
        Telemetry.Trace.emit ~sev:Telemetry.Trace.Info ~subsys:"forensics"
          ("recovery verdict: " ^ Telemetry.Forensics.verdict report);
        (* The death note served its purpose; don't let it finger the
           same victim at the next, unrelated recovery. *)
        Telemetry.Flight.clear_victim ()));
    (* Observability hooks for the socket surface: `stats heap` serves
       the allocator map plus the hot tier's and store slab accounting;
       `stats forensics` serves the stashed post-recovery report (or a
       live recorder analysis when no recovery has run yet). *)
    Mc_server.Executor.heap_stats_hook :=
      (fun () ->
        Region.kernel_mode (fun () ->
          Ralloc.heap_kvs t.heap
          @ Mc_core.Bump_arena.stats_kvs t.arena
          @ Store.stats_slabs t.store));
    Mc_server.Executor.forensics_stats_hook :=
      (fun () ->
        match t.last_forensics with
        | Some r -> Telemetry.Forensics.kvs r
        | None -> Telemetry.Forensics.kvs (Telemetry.Forensics.analyze ()));
    Mc_server.Executor.settings_stats_hook :=
      (fun () ->
        Region.kernel_mode (fun () ->
          [ ("tenants_active", string_of_int (Tenant.count_active t.tenants));
            ("tenants_max", string_of_int (Tenant.max_tenants t.tenants)) ]));
    t

  (* The bookkeeping process creates the store from nothing. *)
  let create ?(protection = Protected) ?(copy_args = false)
      ?(store_cfg = Mc_core.Store.default_config) ~path ~size
      ~(owner : Process.t) () =
    wire_runtime ();
    let lib =
      Hodor.Library.create ~protection ~copy_args ~name:("libmemcached:" ^ path)
        ~owner_uid:(Process.uid owner) ()
    in
    let region =
      Region.create ~name:path ~size ~pkey:(Hodor.Library.pkey lib) ()
    in
    Hodor.Library.protect_region lib region;
    Simos.Sim_fs.create_file ~path ~owner:(Process.uid owner) ~mode:0o600 region;
    let heap = Ralloc.create region in
    let arena, store, tenants =
      Region.kernel_mode (fun () ->
        let anchor = Ralloc.alloc heap 16 in
        Ralloc.Pptr.store region ~at:anchor 0;
        Ralloc.set_root heap root_arena anchor;
        let arena = Mc_core.Bump_arena.create ~heap ~anchor () in
        let store =
          Store.create
            ~mem:(Mc_core.Shared_memory.of_region region)
            ~alloc:(Mc_core.Ralloc_alloc.of_heap_with_arena heap arena)
            store_cfg
        in
        (* Figure 3: root -> cell -> control block, so the block could
           move (e.g. on a future table resize) without re-rooting. *)
        let cell = Ralloc.alloc heap 16 in
        Ralloc.Pptr.store region ~at:cell (Store.ctrl_off store);
        Ralloc.set_root heap root_primary cell;
        let tblock = Ralloc.alloc heap (Tenant.size_for ~max:max_tenants) in
        let tenants = Tenant.format region ~base:tblock ~max:max_tenants in
        Ralloc.set_root heap root_tenants tblock;
        (arena, store, tenants))
    in
    build_handle ~lib ~region ~heap ~arena ~store ~tenants ~path ~owner

  (* Restart: map the flushed heap file and find the store through the
     persistent root. No data-rebuilding code exists — that is the
     paper's point (§6). *)
  let restart ?(protection = Protected) ?(copy_args = false)
      ?(store_cfg = Mc_core.Store.default_config) ~disk_path ~path
      ~(owner : Process.t) () =
    wire_runtime ();
    let region = Region.load ~path:disk_path in
    let lib =
      Hodor.Library.create ~protection ~copy_args ~name:("libmemcached:" ^ path)
        ~owner_uid:(Process.uid owner) ()
    in
    Hodor.Library.protect_region lib region;
    Simos.Sim_fs.create_file ~path ~owner:(Process.uid owner) ~mode:0o600 region;
    let heap = Ralloc.attach region in
    let arena, store, tenants =
      Region.kernel_mode (fun () ->
        let anchor =
          (* Heaps flushed before the hot tier existed have no arena
             root; give them an empty chain to grow from. *)
          match Ralloc.get_root heap root_arena with
          | 0 ->
            let cell = Ralloc.alloc heap 16 in
            Ralloc.Pptr.store region ~at:cell 0;
            Ralloc.set_root heap root_arena cell;
            cell
          | cell -> cell
        in
        let arena = Mc_core.Bump_arena.create ~heap ~anchor () in
        let cell = Ralloc.get_root heap root_primary in
        if cell = 0 then failwith "restart: no store rooted in this heap";
        let ctrl = Ralloc.Pptr.load region ~at:cell in
        let store =
          Store.attach
            ~mem:(Mc_core.Shared_memory.of_region region)
            ~alloc:(Mc_core.Ralloc_alloc.of_heap_with_arena heap arena)
            store_cfg ~ctrl
        in
        let tenants =
          (* Heaps flushed before multi-tenancy have no registry. *)
          match Ralloc.get_root heap root_tenants with
          | 0 ->
            let tblock =
              Ralloc.alloc heap (Tenant.size_for ~max:max_tenants)
            in
            let reg = Tenant.format region ~base:tblock ~max:max_tenants in
            Ralloc.set_root heap root_tenants tblock;
            reg
          | tblock -> Tenant.attach region ~base:tblock
        in
        (arena, store, tenants))
    in
    build_handle ~lib ~region ~heap ~arena ~store ~tenants ~path ~owner

  (* A client process links the library: the loader performs the euid
     dance to open the store file on the client's behalf (§3.3). *)
  let open_client t ~(process : Process.t) =
    Process.with_process process (fun () ->
      let region = Hodor.Loader.init_library t.lib ~store_path:t.path in
      assert (region == t.region))

  let library t = t.lib

  let path t = t.path

  let store t = t.store

  let heap t = t.heap

  let arena t = t.arena

  let region t = t.region

  (* ---- Post-crash forensics surface ----------------------------------

     [forensics] hands back the report stashed by the last recovery —
     or, when no recovery has run, a live analysis of the recorder
     (useful for inspecting a healthy store's recent activity).
     [doctor] renders it for humans, resolving tenant slots to names
     through the registry. *)

  let forensics t =
    match t.last_forensics with
    | Some r -> r
    | None -> Telemetry.Forensics.analyze ()

  let doctor t =
    let tenant_name slot =
      if slot >= 0 && slot < Tenant.max_tenants t.tenants
         && Region.kernel_mode (fun () -> Tenant.active t.tenants slot)
      then
        Printf.sprintf "%s (slot %d)"
          (Region.kernel_mode (fun () -> Tenant.name_of t.tenants slot))
          slot
      else Printf.sprintf "slot %d" slot
    in
    Telemetry.Forensics.render ~tenant_name (forensics t)

  let heap_report t =
    Region.kernel_mode (fun () -> Ralloc.render_heap_map t.heap)

  (* ---- Figure 4's copy-in idiom ------------------------------------- *)

  (* Copy client-supplied bytes into a library-private Ralloc buffer
     before any shared state is touched; the returned string is the
     library's stable snapshot. *)
  let copy_in t (buf : bytes) : string =
    let len = Bytes.length buf in
    let prot = Ralloc.alloc t.heap (max len 16) in
    Region.blit_from_bytes t.region ~src:buf ~src_off:0 ~dst_off:prot ~len;
    S.advance (CM.memcpy_cost len);
    let snapshot = Region.read_string t.region ~off:prot ~len in
    Ralloc.free t.heap prot;
    snapshot

  let enter t f = Hodor.Trampoline.call t.lib f

  (* Trace ingress on the client-facing surface: each public op mints a
     trace rooted at [plib.<op>] (or, when already under a server-drain
     trace, degrades to a child span). An exception on the way out
     drops the root — a failed call carries no latency worth
     attributing. *)
  let span_root name f =
    let r = Telemetry.Span.ingress ~op:("plib." ^ name) () in
    match f () with
    | v ->
      Telemetry.Span.finish r;
      v
    | exception e ->
      Telemetry.Span.drop r;
      raise e

  (* ---- Raw (bytes-keyed) operations: the real protection boundary --- *)

  let get_raw t (key : bytes) =
    span_root "get" @@ fun () ->
    Hodor.Trampoline.call_with_arg t.lib ~arg:key (fun key ->
      let key_prot = copy_in t key in
      Store.get t.store key_prot)

  let set_raw t ?(flags = 0) ?(exptime = 0) (key : bytes) (data : bytes) =
    span_root "set" @@ fun () ->
    Hodor.Trampoline.call_with_args t.lib ~args:[ key; data ] (fun args ->
      match args with
      | [ key; data ] ->
        let key_prot = copy_in t key in
        let data_prot = copy_in t data in
        Store.set t.store ~flags ~exptime key_prot data_prot
      | _ -> assert false)

  let delete_raw t (key : bytes) =
    span_root "delete" @@ fun () ->
    Hodor.Trampoline.call_with_arg t.lib ~arg:key (fun key ->
      let key_prot = copy_in t key in
      Store.delete t.store key_prot)

  (* ---- String-keyed operations (OCaml strings are immutable, so the
     copy is for cost and idiom fidelity) -------------------------------- *)

  let get t key =
    span_root "get" @@ fun () ->
    enter t (fun () -> Store.get t.store (copy_in t (Bytes.unsafe_of_string key)))

  let set t ?(flags = 0) ?(exptime = 0) key data =
    span_root "set" @@ fun () ->
    enter t (fun () ->
      let key_prot = copy_in t (Bytes.unsafe_of_string key) in
      Store.set t.store ~flags ~exptime key_prot data)

  let add t ?(flags = 0) ?(exptime = 0) key data =
    span_root "add" @@ fun () ->
    enter t (fun () ->
      Store.add t.store ~flags ~exptime
        (copy_in t (Bytes.unsafe_of_string key))
        data)

  let replace t ?(flags = 0) ?(exptime = 0) key data =
    span_root "replace" @@ fun () ->
    enter t (fun () ->
      Store.replace t.store ~flags ~exptime
        (copy_in t (Bytes.unsafe_of_string key))
        data)

  let append t key extra =
    span_root "append" @@ fun () ->
    enter t (fun () ->
      Store.append t.store (copy_in t (Bytes.unsafe_of_string key)) extra)

  let prepend t key extra =
    span_root "prepend" @@ fun () ->
    enter t (fun () ->
      Store.prepend t.store (copy_in t (Bytes.unsafe_of_string key)) extra)

  let cas t ?(flags = 0) ?(exptime = 0) ~cas key data =
    span_root "cas" @@ fun () ->
    enter t (fun () ->
      Store.cas t.store ~flags ~exptime ~cas
        (copy_in t (Bytes.unsafe_of_string key))
        data)

  let delete t key =
    span_root "delete" @@ fun () ->
    enter t (fun () -> Store.delete t.store (copy_in t (Bytes.unsafe_of_string key)))

  let incr t key delta =
    span_root "incr" @@ fun () ->
    enter t (fun () ->
      Store.incr t.store (copy_in t (Bytes.unsafe_of_string key)) delta)

  let decr t key delta =
    span_root "decr" @@ fun () ->
    enter t (fun () ->
      Store.decr t.store (copy_in t (Bytes.unsafe_of_string key)) delta)

  let touch t key exptime =
    span_root "touch" @@ fun () ->
    enter t (fun () ->
      Store.touch t.store (copy_in t (Bytes.unsafe_of_string key)) exptime)

  (* ---- Batch plane: many operations, one crossing --------------------- *)

  (* Multi-get: the whole key list rides one trampoline crossing (one
     pkru swap pair, one stack note), keys are copied into the library
     domain first (Figure 4 idiom, before any lock), and the distinct
     item-lock stripes the keys hash to are taken once for the group —
     ascending, the creation-rank order lockdep demands. *)
  let mget t keys : (string * Mc_core.Store.get_result) list =
    match keys with
    | [] -> []
    | keys ->
      span_root "mget" @@ fun () ->
      Hodor.Trampoline.call_batch t.lib ~ops:(List.length keys) (fun () ->
        let prot =
          List.map (fun k -> copy_in t (Bytes.unsafe_of_string k)) keys
        in
        (* With the seqlock read path on, an all-get group needs no
           stripes at all: each lookup validates against the version
           words, and the rare conflict falls back to per-op locking. *)
        let stripes =
          if (Store.config t.store).Mc_core.Store.optimistic_reads then []
          else
            List.sort_uniq compare (List.map (Store.stripe_of t.store) prot)
        in
        Store.with_stripes t.store ~stripes (fun () ->
          List.filter_map
            (fun key ->
              (* The batch fans out one [exec] child per op, so a trace
                 tree shows every key's lookup under one crossing. *)
              Telemetry.Span.around ~phase:"exec" (fun () ->
                Option.map (fun r -> (key, r)) (Store.get t.store key)))
            prot))

  (* A mixed batch for pipelining arbitrary operations through one
     crossing. Storage ops allocate (and may evict from arbitrary
     stripes), so a mixed batch keeps the ops' own internal locking;
     the crossing amortization is the win, the stripe-group
     amortization belongs to the uniform [mget]. *)
  type batch_op =
    | B_get of string
    | B_set of { b_key : string; b_data : string; b_flags : int;
                 b_exptime : int }
    | B_delete of string
    | B_touch of string * int

  type batch_result =
    | R_get of Mc_core.Store.get_result option
    | R_store of Mc_core.Store.store_result
    | R_found of bool

  let exec_op t = function
    | B_get k ->
      R_get (Store.get t.store (copy_in t (Bytes.unsafe_of_string k)))
    | B_set { b_key; b_data; b_flags; b_exptime } ->
      let key_prot = copy_in t (Bytes.unsafe_of_string b_key) in
      R_store (Store.set t.store ~flags:b_flags ~exptime:b_exptime key_prot
                 b_data)
    | B_delete k ->
      R_found (Store.delete t.store (copy_in t (Bytes.unsafe_of_string k)))
    | B_touch (k, e) ->
      R_found (Store.touch t.store (copy_in t (Bytes.unsafe_of_string k)) e)

  (* [on_op i r] fires after op [i] fully completed inside the library
     — an application-level ack. The crash sweep leans on it: if the
     calling thread dies mid-batch, every op that acked before the
     kill must still be readable after recovery (the batch's committed
     prefix), while the op in flight may have been torn and dropped. *)
  let batch ?on_op t (ops : batch_op list) : batch_result list =
    match ops with
    | [] -> []
    | ops ->
      span_root "batch" @@ fun () ->
      Hodor.Trampoline.call_batch t.lib ~ops:(List.length ops) (fun () ->
        List.mapi
          (fun i op ->
            let r =
              Telemetry.Span.around ~phase:"exec" (fun () -> exec_op t op)
            in
            (match on_op with Some f -> f i r | None -> ());
            r)
          ops)

  let flush_all t = enter t (fun () -> Store.flush_all t.store)

  let stats t = enter t (fun () -> Store.stats t.store)

  let stats_items t = enter t (fun () -> Store.stats_items t.store)

  let stats_slabs t = enter t (fun () -> Store.stats_slabs t.store)

  let stats_reset t = enter t (fun () -> Store.stats_reset t.store)

  (* ---- Multi-tenant surface ------------------------------------------- *)

  (* A tenant-scoped operation is confined to its namespace {e by
     construction}: the connection- (or caller-)bound tenant slot
     picks the [<name>/] prefix host-side, before the key is even
     copied into the library, so no client-supplied byte sequence can
     address another tenant's items. The tenant's virtual pkey is its
     capability: every scoped op binds it under the caller's euid
     first — the bind is refused (Vpkey.Permission_denied) for anyone
     but the owner or root. *)

  let tenants t = t.tenants

  let vault t slot = Hashtbl.find_opt t.vaults slot

  let bind_capability t slot =
    let uid = Process.euid (Process.current ()) in
    (* The multiplexing (slot grab, re-tag) is kernel-side work, as in
       libmpk's kernel module; the ownership check runs regardless.
       Callers run this {e before} entering the crossing — a refusal
       is a clean Permission_denied at the door, never an in-call
       failure that would poison the shared library. *)
    Region.kernel_mode (fun () ->
      let vk = Tenant.vkey_of t.tenants slot in
      if vk <= 0 then invalid_arg "Plib: tenant has no vkey";
      ignore (Pku.Vpkey.bind ~owner:uid vk))

  let create_tenant t ~name ~uid ?(byte_quota = 0) ?(item_quota = 0) () =
    span_root "create_tenant" @@ fun () ->
    enter t (fun () ->
      let slot =
        Tenant.register t.tenants ~name ~uid ~byte_quota ~item_quota
      in
      let vk = Pku.Vpkey.alloc ~owner:uid () in
      Tenant.set_vkey t.tenants slot vk;
      (* The tenant's vault: one page tagged through the vkey, proving
         the namespace's protection domain. Readable only under the
         owner's bound key; quarantined whenever the vkey loses its
         hardware slot. *)
      let vault =
        Region.kernel_mode (fun () ->
          Region.create
            ~name:(Printf.sprintf "%s!vault!%s" t.path name)
            ~size:Region.page_size ~pkey:Pku.Pkey.default ())
      in
      Pku.Vpkey.attach_retag vk (fun hw ->
        Region.kernel_mode (fun () ->
          Region.tag_range vault ~off:0 ~len:Region.page_size ~pkey:hw));
      Region.kernel_mode (fun () ->
        Region.write_string vault ~off:8 ("vault:" ^ name));
      Hashtbl.replace t.vaults slot vault;
      slot)

  let find_tenant t name = enter t (fun () -> Tenant.find t.tenants name)

  (* In-library bodies (callers hold the crossing and have bound the
     capability); shared by the scalar wrappers and the batch plane. *)

  let t_scope t slot key = Tenant.scope t.tenants slot key

  let t_prefix_pred t slot =
    let p = Tenant.prefix t.tenants slot in
    fun key -> String.starts_with ~prefix:p key

  (* Breadcrumb bracket for tenant-scoped bodies: a kill inside the op
     leaves [Tenant_scope slot] as the lane's last tenant record, so
     the forensic report names the tenant; on normal completion the
     unscope crumb clears the attribution. (An abrupt kill abandons the
     thread at a sync point — the finally never runs, which is the
     point.) *)
  let t_crumb slot f =
    Telemetry.Flight.record Telemetry.Flight.Tenant_scope ~a:slot;
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Flight.record Telemetry.Flight.Tenant_unscope ~a:slot)
      f

  let t_get_in t slot key =
    t_crumb slot @@ fun () ->
    let k = copy_in t (Bytes.unsafe_of_string (t_scope t slot key)) in
    Tenant.bump t.tenants slot Tenant.Cmd_get;
    match Store.get t.store k with
    | Some r ->
      Tenant.bump t.tenants slot Tenant.Get_hits;
      Some r
    | None -> None

  let t_set_in t slot ?(flags = 0) ?(exptime = 0) key data =
    t_crumb slot @@ fun () ->
    let reg = t.tenants in
    let k = copy_in t (Bytes.unsafe_of_string (t_scope t slot key)) in
    let new_bytes = String.length k + String.length data in
    (* Quota discipline: a full tenant evicts only its own items —
       the eviction pass walks the tenant's LRU list under its prefix
       predicate, never touching a neighbour's. *)
    let rec room tries =
      let old = Store.probe t.store k in
      let add_bytes = new_bytes - Option.value old ~default:0 in
      let add_items = if old = None then 1 else 0 in
      if not (Tenant.would_exceed reg slot ~add_bytes ~add_items) then
        `Fit old
      else if tries = 0 then `Full
      else if
        Store.evict_some_matching t.store ~lru:slot
          ~pred:(t_prefix_pred t slot)
        > 0
      then room (tries - 1)
      else `Full
    in
    match room 64 with
    | `Full -> Mc_core.Store.No_memory
    | `Fit old ->
      Tenant.bump reg slot Tenant.Cmd_set;
      (match Store.set t.store ~flags ~exptime k data with
       | Mc_core.Store.Stored as r ->
         Tenant.charge reg slot
           ~bytes:(new_bytes - Option.value old ~default:0)
           ~items:(if old = None then 1 else 0);
         r
       | r -> r)

  let t_delete_in t slot key =
    t_crumb slot @@ fun () ->
    let k = copy_in t (Bytes.unsafe_of_string (t_scope t slot key)) in
    let old = Store.probe t.store k in
    let ok = Store.delete t.store k in
    (match old with
     | Some b when ok ->
       Tenant.charge t.tenants slot ~bytes:(-b) ~items:(-1)
     | _ -> ());
    ok

  let t_touch_in t slot key exptime =
    t_crumb slot @@ fun () ->
    Store.touch t.store
      (copy_in t (Bytes.unsafe_of_string (t_scope t slot key)))
      exptime

  (* Tenant-scoped flush: only the tenant's own namespace is swept —
     tenant A's flush storm cannot take tenant B's acked writes. *)
  let t_flush_in t slot =
    t_crumb slot @@ fun () ->
    let reg = t.tenants in
    let pred = t_prefix_pred t slot in
    let keys =
      Store.fold_keys t.store
        (fun acc key ~nbytes:_ ~exptime:_ ->
          if pred key then key :: acc else acc)
        []
    in
    List.iter
      (fun k ->
        let old = Store.probe t.store k in
        if Store.delete t.store k then
          match old with
          | Some b -> Tenant.charge reg slot ~bytes:(-b) ~items:(-1)
          | None -> ())
      keys;
    List.length keys

  let tenant_get t slot key =
    span_root "tenant_get" @@ fun () ->
    bind_capability t slot;
    enter t (fun () ->
      t_get_in t slot key)

  let tenant_set t slot ?flags ?exptime key data =
    span_root "tenant_set" @@ fun () ->
    bind_capability t slot;
    enter t (fun () ->
      t_set_in t slot ?flags ?exptime key data)

  let tenant_delete t slot key =
    span_root "tenant_delete" @@ fun () ->
    bind_capability t slot;
    enter t (fun () ->
      t_delete_in t slot key)

  let tenant_touch t slot key exptime =
    span_root "tenant_touch" @@ fun () ->
    bind_capability t slot;
    enter t (fun () ->
      t_touch_in t slot key exptime)

  let tenant_flush t slot =
    span_root "tenant_flush" @@ fun () ->
    bind_capability t slot;
    enter t (fun () ->
      t_flush_in t slot)

  let tenant_usage t slot =
    enter t (fun () ->
      (Tenant.bytes_used t.tenants slot, Tenant.items_used t.tenants slot))

  let stats_tenants t = enter t (fun () -> Tenant.stats_kvs t.tenants)

  (* Tenant-scoped multi-get: same one-crossing, stripe-group (or
     seqlock) plan as {!mget}, over scoped keys — the optimistic read
     path stays inside the namespace because the scoped key {e is} the
     lookup key. *)
  let tenant_mget t slot keys =
    match keys with
    | [] -> []
    | keys ->
      span_root "tenant_mget" @@ fun () ->
      bind_capability t slot;
      Hodor.Trampoline.call_batch t.lib ~ops:(List.length keys) (fun () ->
        t_crumb slot @@ fun () ->
        let prot =
          List.map
            (fun k ->
              (k, copy_in t (Bytes.unsafe_of_string (t_scope t slot k))))
            keys
        in
        let stripes =
          if (Store.config t.store).Mc_core.Store.optimistic_reads then []
          else
            List.sort_uniq compare
              (List.map (fun (_, k) -> Store.stripe_of t.store k) prot)
        in
        Store.with_stripes t.store ~stripes (fun () ->
          List.filter_map
            (fun (orig, key) ->
              Telemetry.Span.around ~phase:"exec" (fun () ->
                Tenant.bump t.tenants slot Tenant.Cmd_get;
                match Store.get t.store key with
                | Some r ->
                  Tenant.bump t.tenants slot Tenant.Get_hits;
                  Some (orig, r)
                | None -> None))
            prot))

  (* ---- Bookkeeping process duties ------------------------------------ *)

  (* Intermittent cleaning (§3.2): run in the bookkeeping process. *)
  let start_cleaner ?(interval_ns = 1_000_000) t =
    match t.cleaner with
    | Some _ -> ()
    | None ->
      Atomic.set t.stop_cleaner false;
      let th =
        S.spawn ~name:"memcached-bk.cleaner" (fun () ->
          Process.with_process t.owner (fun () ->
            while not (Atomic.get t.stop_cleaner) do
              enter t (fun () ->
                Store.maintain t.store;
                ignore (Store.reap_expired t.store);
                ignore (Store.maybe_resize t.store));
              S.sleep_ns interval_ns
            done))
      in
      t.cleaner <- Some th

  let stop_cleaner t =
    match t.cleaner with
    | None -> ()
    | Some th ->
      Atomic.set t.stop_cleaner true;
      S.join th;
      t.cleaner <- None

  let maintain t = enter t (fun () -> Store.maintain t.store)

  (* Post-kill repair (bookkeeping process, at quiescence): releases
     dead threads' locks, drops torn items, reclaims their memory and
     re-admits callers. Safe to run even when no trampoline observed
     the kill (the library is still [Healthy]). *)
  let recover t = Hodor.Library.recover t.lib

  (* Table resize (the paper's background process had this disabled;
     see Store.resize). Run by the bookkeeping process. *)
  let resize t = enter t (fun () -> Store.resize t.store)

  let maybe_resize ?lf t = enter t (fun () -> Store.maybe_resize ?lf t.store)

  let fold_keys t f init = enter t (fun () -> Store.fold_keys t.store f init)

  let reap_expired ?limit t =
    enter t (fun () -> Store.reap_expired ?limit t.store)

  (* ---- The hybrid deployment of §6 -----------------------------------

     "There is no reason ... not to allow the memcached background
     process to provide a socket-based interface for remote clients
     while still permitting local clients to use the Hodor interface."
     The bookkeeping process serves its own shared store over sockets;
     its worker threads enter the store through the same trampolines
     as any local client, so the protection story is unchanged. *)

  module Remote = Mc_server.Server.Make_hybrid (S)

  (* ---- Shared-ring transport (the heap-owner side) -------------------

     Ring mode replaces the per-message socket hand-off with
     per-connection submission/completion rings carved out of this
     same shared heap: the client enqueues into pages sealed under a
     connection-private vkey (it can fill its own rings, never touch
     library state or a neighbour's rings), and the server drains
     whole windows through one batch crossing. The pairs are recorded
     in the [root_rings] directory so the recovery protocol finds
     them. *)

  let ring_dir t =
    Region.kernel_mode (fun () ->
      match Ralloc.get_root t.heap root_rings with
      | 0 ->
        let dir = Ralloc.alloc t.heap (max_ring_conns * ring_dir_row) in
        Region.fill t.region ~off:dir ~len:(max_ring_conns * ring_dir_row)
          '\000';
        Ralloc.set_root t.heap root_rings dir;
        dir
      | dir -> dir)

  let ring_ctx t (rcfg : Mc_server.Server.ring_config) : Remote.ring_ctx =
    let dir = ring_dir t in
    let page = Region.page_size in
    (* page-rounded per ring so the pair's pages can be sealed under
       the connection's vkey without touching heap neighbours; the
       allocation is padded by one page because Ralloc block starts
       are not page-aligned *)
    let span =
      let b =
        Transport.Ring.bytes_for ~slots:rcfg.r_slots
          ~slot_bytes:rcfg.r_slot_bytes
      in
      (b + page - 1) / page * page
    in
    let rc_alloc cid =
      Region.kernel_mode (fun () ->
        let block = Ralloc.alloc t.heap ((2 * span) + page) in
        let sub_base = (block + page - 1) / page * page in
        let comp_base = sub_base + span in
        let sub =
          Transport.Ring.init t.region ~base:sub_base ~slots:rcfg.r_slots
            ~slot_bytes:rcfg.r_slot_bytes
        in
        let comp =
          Transport.Ring.init t.region ~base:comp_base ~slots:rcfg.r_slots
            ~slot_bytes:rcfg.r_slot_bytes
        in
        (* owner 0: any process of this simulation may bind — the
           capability is the vkey id held in the connection object,
           private to the two endpoints *)
        let vk = Pku.Vpkey.alloc () in
        Pku.Vpkey.attach_retag vk (fun hw ->
          Region.kernel_mode (fun () ->
            Region.tag_range t.region ~off:sub_base ~len:(2 * span) ~pkey:hw));
        let row =
          let rec scan i =
            if i >= max_ring_conns then
              invalid_arg "Plib: ring directory full"
            else if Region.read_i64 t.region (dir + (i * ring_dir_row)) = 0
            then dir + (i * ring_dir_row)
            else scan (i + 1)
          in
          scan 0
        in
        Region.write_i64 t.region (row + 8) cid;
        Region.write_i64 t.region (row + 16) block;
        Region.write_i64 t.region (row + 24) sub_base;
        Region.write_i64 t.region (row + 32) comp_base;
        Region.write_i64 t.region row 1 (* in_use last *);
        { Remote.T.ra_sub = sub; ra_comp = comp; ra_vkey = vk })
    in
    let rc_free cid (ra : Remote.T.ring_attach) =
      Region.kernel_mode (fun () ->
        let rec scan i =
          if i >= max_ring_conns then ()
          else
            let row = dir + (i * ring_dir_row) in
            if
              Region.read_i64 t.region row <> 0
              && Region.read_i64 t.region (row + 8) = cid
            then begin
              let block = Region.read_i64 t.region (row + 16) in
              let sub_base = Region.read_i64 t.region (row + 24) in
              Region.write_i64 t.region row 0 (* in_use first *);
              (* retire the vkey (quarantines the pages), hand them
                 back to the library's own key, free the block *)
              Pku.Vpkey.free ra.Remote.T.ra_vkey;
              Region.tag_range t.region ~off:sub_base ~len:(2 * span)
                ~pkey:(Hodor.Library.pkey t.lib);
              Ralloc.free t.heap block
            end
            else scan (i + 1)
        in
        scan 0)
    in
    { Remote.rc_cfg = rcfg; rc_alloc; rc_free }

  let serve_remote ?(cfg = Mc_server.Server.default_config) ?assign_tenant
      ?rings t ~name =
    let wrap =
      { Mc_server.Server.wrap =
          (fun ~ops f ->
            Process.with_process t.owner (fun () ->
              Hodor.Trampoline.call_batch t.lib ~ops f)) }
    in
    let ring_ctx = Option.map (ring_ctx t) rings in
    Remote.start_with ~cfg:{ cfg with store = Store.config t.store } ~wrap
      ?assign_tenant ?ring_ctx ~store:t.store ~name ()

  let stop_remote srv = Remote.stop srv

  (* Shutdown (§3.2): flush all updates back to the underlying file so
     a restarted store comes up with its contents intact. *)
  let shutdown t ~disk_path =
    stop_cleaner t;
    Region.kernel_mode (fun () -> Store.detach t.store);
    Ralloc.flush t.heap ~path:disk_path;
    Simos.Sim_fs.unlink t.path;
    Hodor.Library.release t.lib;
    (* The executor hooks closed over this handle's registry. *)
    Tenant.stats_hook := (fun () -> []);
    Tenant.reset_hook := (fun () -> ());
    Tenant.bump_hook := (fun _ _ -> ());
    Mc_server.Executor.quota_gate := None;
    Mc_server.Executor.heap_stats_hook := (fun () -> []);
    Mc_server.Executor.settings_stats_hook := (fun () -> []);
    Mc_server.Executor.forensics_stats_hook :=
      (fun () -> Telemetry.Forensics.kvs (Telemetry.Forensics.analyze ()));
    (* The counter cells and the flight-recorder block lived in this
       heap; don't leave the process-wide backends pointing into a
       detached region. Both were flushed with the heap and reappear on
       restart. *)
    Telemetry.Counters.reset_backend ();
    Telemetry.Flight.reset_backend ()
end
