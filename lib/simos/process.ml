(** Simulated OS processes.

    A "process" here is an identity — pid, uid/euid, liveness — that
    threads (real or virtual) bind to with {!with_process}. It gives
    the reproduction the parts of process semantics the paper depends
    on:

    - distinct uids, so Hodor's file-permission story (the library
      initialisation runs with the bookkeeping process's effective uid)
      is testable;
    - independent failure: {!kill} marks a process dead; its threads
      observe that at cancellation points ({!check_alive}) — except
      while inside a protected-library call, which Hodor lets run to
      completion (that exception is implemented in {!Hodor}, which
      consults {!set_in_library}/{!killed_at}). *)

type status = Running | Killed of string | Exited

type t = {
  pid : int;
  pname : string;
  uid : int;
  mutable euid : int;
  mutable status : status;
  mutable killed_at_ns : int option;
  mutable kill_count : int;  (** total {!kill} deliveries, duplicates included *)
  in_library : int Atomic.t;  (** threads currently inside a protected call *)
}

exception Process_killed of string
(** Raised at a cancellation point of a thread whose process died. *)

let next_pid = Atomic.make 1

let make ?(uid = 0) name =
  { pid = Atomic.fetch_and_add next_pid 1; pname = name; uid; euid = uid;
    status = Running; killed_at_ns = None; kill_count = 0;
    in_library = Atomic.make 0 }

let init_process = make ~uid:0 "init"

let current_key = Tls.new_key (fun () -> ref init_process)

let current () = !(Tls.get current_key)

let with_process p f =
  let cell = Tls.get current_key in
  let saved = !cell in
  cell := p;
  Fun.protect ~finally:(fun () -> cell := saved) f

let pid t = t.pid

let name t = t.pname

let uid t = t.uid

let euid t = t.euid

let set_euid t e = t.euid <- e

let alive t = t.status = Running

let status t = t.status

(* Death is once: the first kill fixes the timestamp and signal the
   grace-window arithmetic uses; later deliveries to an already-dead
   process are explicit no-ops, counted in [kill_count] so callers
   (and the grace tests) can observe that a duplicate arrived rather
   than having it silently swallowed. A duplicate timestamped before
   the recorded death is a driver bug — time cannot run backwards. *)
let kill ?(signal = "SIGKILL") ~now_ns t =
  t.kill_count <- t.kill_count + 1;
  match t.status with
  | Running ->
    t.status <- Killed signal;
    t.killed_at_ns <- Some now_ns
  | Killed _ ->
    (match t.killed_at_ns with
     | Some first when now_ns < first ->
       invalid_arg
         (Printf.sprintf
            "Process.kill: duplicate %s for %s timestamped %dns before its \
             recorded death"
            signal t.pname (first - now_ns))
     | _ -> ())
  | Exited -> ()

let exit t = if t.status = Running then t.status <- Exited

let killed_at t = t.killed_at_ns

let kill_count t = t.kill_count

(* Library-call accounting, used by Hodor's completion guarantee. *)

let enter_library t = Atomic.incr t.in_library

let leave_library t = Atomic.decr t.in_library

let in_library_calls t = Atomic.get t.in_library

(* A cancellation point: ordinary (non-library) code of a dead process
   stops here. Hodor-protected code never calls this while holding
   library state; it checks only at trampoline exit. *)
let check_alive () =
  let p = current () in
  match p.status with
  | Running -> ()
  | Killed s -> raise (Process_killed (Printf.sprintf "%s: %s" p.pname s))
  | Exited -> raise (Process_killed (p.pname ^ ": exited"))
