(** Simulated OS processes.

    A "process" here is an identity — pid, uid/euid, liveness — that
    threads (real or virtual) bind to with {!with_process}. It gives
    the reproduction the parts of process semantics the paper depends
    on:

    - distinct uids, so Hodor's file-permission story (the library
      initialisation runs with the bookkeeping process's effective uid)
      is testable;
    - independent failure: {!kill} marks a process dead; its threads
      observe that at cancellation points ({!check_alive}) — except
      while inside a protected-library call, which Hodor lets run to
      completion (that exception is implemented in {!Hodor}, which
      consults {!set_in_library}/{!killed_at}). *)

type status = Running | Killed of string | Exited

(* The syscalls the simulation models, each standing for the real one
   a PKU sandbox must police: file-system access, signal delivery, and
   the pkey management calls Garmr shows an unfiltered sandbox escapes
   through (pkey_alloc/pkey_free exhaustion and hijack,
   pkey_mprotect retagging of shared pages). *)
type syscall =
  | Sys_open
  | Sys_unlink
  | Sys_kill
  | Sys_pkey_alloc
  | Sys_pkey_free
  | Sys_pkey_mprotect

let syscall_name = function
  | Sys_open -> "open"
  | Sys_unlink -> "unlink"
  | Sys_kill -> "kill"
  | Sys_pkey_alloc -> "pkey_alloc"
  | Sys_pkey_free -> "pkey_free"
  | Sys_pkey_mprotect -> "pkey_mprotect"

type t = {
  pid : int;
  pname : string;
  uid : int;
  mutable euid : int;
  mutable status : status;
  mutable killed_at_ns : int option;
  mutable kill_count : int;  (** total {!kill} deliveries, duplicates included *)
  in_library : int Atomic.t;  (** threads currently inside a protected call *)
  mutable filter : syscall list option;
  (** seccomp-style allowlist; [None] = unfiltered (no filter ever
      installed) *)
}

exception Process_killed of string
(** Raised at a cancellation point of a thread whose process died. *)

exception Seccomp_violation of string
(** A filtered process attempted a syscall outside its allowlist. *)

(* Red-team toggle: with enforcement off, installed filters are
   recorded but never consulted — the configuration the syscall-escape
   scenarios in lib/redteam exploit. *)
let seccomp_enforced = ref true

let next_pid = Atomic.make 1

let make ?(uid = 0) name =
  { pid = Atomic.fetch_and_add next_pid 1; pname = name; uid; euid = uid;
    status = Running; killed_at_ns = None; kill_count = 0;
    in_library = Atomic.make 0; filter = None }

let init_process = make ~uid:0 "init"

let current_key = Tls.new_key (fun () -> ref init_process)

let current () = !(Tls.get current_key)

let with_process p f =
  let cell = Tls.get current_key in
  let saved = !cell in
  cell := p;
  Fun.protect ~finally:(fun () -> cell := saved) f

let pid t = t.pid

let name t = t.pname

let uid t = t.uid

let euid t = t.euid

let set_euid t e = t.euid <- e

let alive t = t.status = Running

let status t = t.status

(* Death is once: the first kill fixes the timestamp and signal the
   grace-window arithmetic uses; later deliveries to an already-dead
   process are explicit no-ops, counted in [kill_count] so callers
   (and the grace tests) can observe that a duplicate arrived rather
   than having it silently swallowed. A duplicate timestamped before
   the recorded death is a driver bug — time cannot run backwards. *)
(* Filter installation mirrors seccomp(2)'s one-way ratchet: the first
   install sets the allowlist, every later one can only intersect with
   it. A sandboxed attacker re-running install_filter with a wider
   list gains nothing. *)
let install_filter t allowed =
  t.filter <-
    (match t.filter with
     | None -> Some allowed
     | Some cur -> Some (List.filter (fun sc -> List.mem sc cur) allowed))

let filter t = t.filter

let check_syscall sc =
  if !seccomp_enforced && not (Shm.Region.in_kernel_mode ()) then begin
    let p = current () in
    match p.filter with
    | None -> ()
    | Some allowed ->
      if not (List.mem sc allowed) then begin
        Telemetry.Counters.incr Telemetry.Counters.Id.seccomp_denials;
        Telemetry.Trace.emit ~sev:Telemetry.Trace.Warn ~subsys:"seccomp"
          (Printf.sprintf "%s: %s denied by filter" p.pname (syscall_name sc));
        raise
          (Seccomp_violation
             (Printf.sprintf "%s: syscall %s blocked by seccomp filter"
                p.pname (syscall_name sc)))
      end
  end

(* Route the pkey-management "syscalls" of lib/pku and lib/shm through
   the filter. Hooks keep the dependency arrows pointing simos -> pku
   and simos -> shm. *)
let () =
  Pku.Pkey.set_syscall_gate (function
    | `Alloc -> check_syscall Sys_pkey_alloc
    | `Free -> check_syscall Sys_pkey_free);
  Shm.Region.set_mprotect_gate (fun () -> check_syscall Sys_pkey_mprotect)

let kill ?(signal = "SIGKILL") ~now_ns t =
  check_syscall Sys_kill;
  t.kill_count <- t.kill_count + 1;
  match t.status with
  | Running ->
    t.status <- Killed signal;
    t.killed_at_ns <- Some now_ns
  | Killed _ ->
    (match t.killed_at_ns with
     | Some first when now_ns < first ->
       invalid_arg
         (Printf.sprintf
            "Process.kill: duplicate %s for %s timestamped %dns before its \
             recorded death"
            signal t.pname (first - now_ns))
     | _ -> ())
  | Exited -> ()

let exit t = if t.status = Running then t.status <- Exited

let killed_at t = t.killed_at_ns

let kill_count t = t.kill_count

(* Library-call accounting, used by Hodor's completion guarantee. *)

let enter_library t = Atomic.incr t.in_library

let leave_library t = Atomic.decr t.in_library

let in_library_calls t = Atomic.get t.in_library

(* A cancellation point: ordinary (non-library) code of a dead process
   stops here. Hodor-protected code never calls this while holding
   library state; it checks only at trampoline exit. *)
let check_alive () =
  let p = current () in
  match p.status with
  | Running -> ()
  | Killed s -> raise (Process_killed (Printf.sprintf "%s: %s" p.pname s))
  | Exited -> raise (Process_killed (p.pname ^ ": exited"))
