(** Simulated OS processes: an identity (pid, uid/euid, liveness) that
    threads bind to with {!with_process}. Provides the pieces of
    process semantics the paper's safety story depends on — distinct
    uids for the file-permission dance, and independent failure with
    Hodor's completion-grace semantics. *)

type status = Running | Killed of string | Exited

(** The syscalls the simulation models — the surface a seccomp-style
    per-process allowlist polices. The pkey management calls are the
    ones Garmr shows an unfiltered PKU sandbox escapes through. *)
type syscall =
  | Sys_open
  | Sys_unlink
  | Sys_kill
  | Sys_pkey_alloc
  | Sys_pkey_free
  | Sys_pkey_mprotect

type t

exception Process_killed of string
(** Raised at a cancellation point of a thread whose process died. *)

exception Seccomp_violation of string
(** A filtered process attempted a syscall outside its allowlist. *)

val make : ?uid:int -> string -> t

val current : unit -> t
(** The process the calling thread belongs to (the "init" process by
    default). *)

val with_process : t -> (unit -> 'a) -> 'a
(** Bind the calling thread to [t] for the duration of [f]; restores
    the previous binding, exceptions included. *)

val pid : t -> int

val name : t -> string

val uid : t -> int

val euid : t -> int

val set_euid : t -> int -> unit

val alive : t -> bool

val status : t -> status

val kill : ?signal:string -> now_ns:int -> t -> unit
(** SIGKILL-style death from outside. The first kill fixes the
    timestamp and signal used by the grace-window arithmetic; a second
    kill is a counted no-op (see {!kill_count}).
    @raise Invalid_argument if a duplicate kill carries a timestamp
    earlier than the recorded death — virtual time cannot run
    backwards. *)

val exit : t -> unit

val killed_at : t -> int option

val kill_count : t -> int
(** Total {!kill} deliveries, duplicates included — lets tests assert
    that a second kill during the grace window was observed (and
    ignored) rather than silently replacing the first timestamp. *)

(** {1 Library-call accounting (Hodor's completion guarantee)} *)

val enter_library : t -> unit

val leave_library : t -> unit

val in_library_calls : t -> int

val check_alive : unit -> unit
(** A cancellation point: ordinary code of a dead process stops here;
    Hodor-protected code only checks at trampoline exit.
    @raise Process_killed *)

(** {1 Seccomp-style syscall filtering} *)

val install_filter : t -> syscall list -> unit
(** Install (or tighten) the process's allowlist. Like seccomp(2),
    this is a one-way ratchet: the first install sets the list, later
    installs can only {e intersect} with it — a sandboxed process
    cannot widen its own filter. *)

val filter : t -> syscall list option
(** [None] = unfiltered (no filter ever installed). *)

val check_syscall : syscall -> unit
(** Consult the calling thread's process filter. Ring-0 paths
    ([Shm.Region.kernel_mode]) are exempt, as kernel code is.
    @raise Seccomp_violation on a denied syscall. *)

val seccomp_enforced : bool ref
(** Red-team toggle (default [true]): with enforcement off, filters
    are recorded but never consulted. *)
