(** A tiny simulated file system, holding shared-region "files" with
    Unix-style owner and permission bits.

    Hodor relies on file-system permissions to control who may map a
    protected library's backing file: the K-V store file is owned by
    the bookkeeping process's uid with mode 0o600, and the loader runs
    the library initialisation under that euid (see
    {!Hodor.Loader}), so clients can use the store without being able
    to open the file themselves. This module provides exactly that
    checkable surface. *)

exception Eacces of string

exception Enoent of string

type entry = {
  path : string;
  owner : int;
  mode : int;  (** e.g. 0o600 *)
  mutable region : Shm.Region.t option;
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 16

let lock = Mutex.create ()

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let create_file ~path ~owner ~mode region =
  Process.check_syscall Process.Sys_open;
  Mutex.lock lock;
  Hashtbl.replace table path { path; owner; mode; region = Some region };
  Mutex.unlock lock

let lookup path =
  Mutex.lock lock;
  let e = Hashtbl.find_opt table path in
  Mutex.unlock lock;
  match e with Some e -> e | None -> raise (Enoent path)

let exists path =
  Mutex.lock lock;
  let r = Hashtbl.mem table path in
  Mutex.unlock lock;
  r

let unlink path =
  Process.check_syscall Process.Sys_unlink;
  Mutex.lock lock;
  Hashtbl.remove table path;
  Mutex.unlock lock

(* Permission check with the caller's *effective* uid, as the kernel
   does. Root (euid 0) bypasses, owner uses the owner triad, everyone
   else the "other" triad. *)
let permits ~euid ~write e =
  let bits =
    if euid = 0 then 0o7
    else if euid = e.owner then (e.mode lsr 6) land 0o7
    else e.mode land 0o7
  in
  let need = if write then 0o6 else 0o4 in
  bits land need = need

let open_region ~euid ?(write = false) path =
  Process.check_syscall Process.Sys_open;
  let e = lookup path in
  if not (permits ~euid ~write e) then
    raise
      (Eacces
         (Printf.sprintf "%s: euid %d denied (owner %d mode %o)" path euid
            e.owner e.mode));
  match e.region with
  | Some r -> r
  | None -> raise (Enoent (path ^ ": no region attached"))

let owner path = (lookup path).owner

let mode path = (lookup path).mode
