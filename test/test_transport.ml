(** The socket model and the baseline server, driven inside the
    virtual-time machine. *)

module S = Vm.Sync
module T = Transport.Sock.Make (Vm.Sync)
module Srv = Mc_server.Server.Make (Vm.Sync)
module P = Mc_protocol.Types

let in_vm f =
  let vm = Vm.create () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  Option.get !out

let test_connect_accept_roundtrip () =
  ignore (in_vm (fun () ->
    let l = T.listen ~name:"svc" in
    let inbox = S.chan () in
    let server =
      S.spawn ~name:"srv" (fun () ->
        let conn = T.accept l ~inbox in
        let m = T.worker_recv inbox in
        Alcotest.(check int) "tagged with the conn id" conn.T.cid m.T.m_cid;
        T.server_send conn ("pong:" ^ m.T.m_payload))
    in
    let conn = T.connect ~name:"svc" in
    T.client_send conn "ping";
    Alcotest.(check string) "reply" "pong:ping" (T.client_recv conn);
    S.join server;
    T.close_listener l))

let test_connect_unknown_fails () =
  ignore (in_vm (fun () ->
    match T.connect ~name:"no-such-service" with
    | _ -> Alcotest.fail "expected failure"
    | exception Failure _ -> ()))

let test_messages_cost_latency () =
  let elapsed = in_vm (fun () ->
    let l = T.listen ~name:"lat" in
    let inbox = S.chan () in
    let server =
      S.spawn (fun () ->
        let conn = T.accept l ~inbox in
        for _ = 1 to 10 do
          let m = T.worker_recv inbox in
          T.server_send conn m.T.m_payload
        done)
    in
    let conn = T.connect ~name:"lat" in
    let t0 = S.now_ns () in
    for _ = 1 to 10 do
      T.client_send conn "x";
      ignore (T.client_recv conn)
    done;
    let dt = (S.now_ns () - t0) / 10 in
    S.join server;
    T.close_listener l;
    dt)
  in
  (* a Unix-socket round trip costs microseconds, not nanoseconds *)
  Alcotest.(check bool)
    (Printf.sprintf "round trip %dns in plausible range" elapsed)
    true
    (elapsed > 3_000 && elapsed < 20_000)

let with_server ?(cfg = { Mc_server.Server.default_config with workers = 2 })
    name f =
  in_vm (fun () ->
    let srv = Srv.start ~cfg ~name () in
    let r = f () in
    Srv.stop srv;
    r)

module Cl = Core.Client.Make (Vm.Sync)

let test_server_binary_ops () =
  ignore (with_server "srv-bin" (fun () ->
    let c = Cl.Sock.connect ~name:"srv-bin" () in
    Alcotest.(check bool) "set" true
      (Cl.Sock.set c ~flags:3 "k" "v" = Mc_core.Store.Stored);
    (match Cl.Sock.get c "k" with
     | Some r ->
       Alcotest.(check string) "value" "v" r.Mc_core.Store.value;
       Alcotest.(check int) "flags" 3 r.Mc_core.Store.flags
     | None -> Alcotest.fail "hit expected");
    Alcotest.(check bool) "delete" true (Cl.Sock.delete c "k");
    Alcotest.(check bool) "get miss" true (Cl.Sock.get c "k" = None);
    ignore (Cl.Sock.set c "n" "41");
    Alcotest.(check bool) "incr" true
      (Cl.Sock.incr c "n" 1L = Mc_core.Store.Counter 42L);
    Alcotest.(check bool) "version" true (Cl.Sock.version c <> None);
    let stats = Cl.Sock.stats c in
    Alcotest.(check bool) "stats over the wire" true
      (List.mem_assoc "curr_items" stats);
    Cl.Sock.quit c))

let test_server_ascii_ops () =
  let cfg =
    { Mc_server.Server.default_config with workers = 2;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-ascii" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-ascii" () in
    ignore (Cl.Sock.set c "a" "1");
    ignore (Cl.Sock.set c "b" "2");
    (* ASCII multi-get *)
    let hits = Cl.Sock.mget c [ "a"; "b"; "missing" ] in
    Alcotest.(check int) "two hits of three keys" 2 (List.length hits);
    Alcotest.(check bool) "append" true
      (Cl.Sock.append c "a" "!" = Mc_core.Store.Stored);
    (match Cl.Sock.get c "a" with
     | Some r -> Alcotest.(check string) "appended" "1!" r.Mc_core.Store.value
     | None -> Alcotest.fail "hit");
    Cl.Sock.quit c))

let test_server_parse_error_keeps_connection () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-err" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-err" () in
    (* raw garbage first *)
    let conn = c.Cl.Sock.conn in
    T.client_send conn "n0nsense command\r\n";
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | Mc_protocol.Types.Client_error _ -> ()
     | _ -> Alcotest.fail "expected CLIENT_ERROR");
    (* the connection still works afterwards *)
    ignore (Cl.Sock.set c "k" "v");
    Alcotest.(check bool) "conn survives a bad request" true
      (Cl.Sock.get c "k" <> None)))

let test_many_clients_two_workers () =
  ignore (with_server "srv-many" (fun () ->
    let clients = List.init 8 (fun _ -> Cl.Sock.connect ~name:"srv-many" ()) in
    let done_ = Atomic.make 0 in
    let ths =
      List.mapi
        (fun i c ->
          S.spawn (fun () ->
            for j = 0 to 30 do
              let k = Printf.sprintf "c%d-%d" i j in
              assert (Cl.Sock.set c k k = Mc_core.Store.Stored);
              assert (Cl.Sock.get c k <> None)
            done;
            Atomic.incr done_))
        clients
    in
    List.iter S.join ths;
    Alcotest.(check int) "all clients finished" 8 (Atomic.get done_)))

let test_noreply_suppresses_response () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-noreply" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-noreply" () in
    let conn = c.Cl.Sock.conn in
    (* a noreply set produces no response frame; the next command's
       response must be the very next frame on the wire *)
    T.client_send conn
      (Mc_protocol.Ascii.encode_command
         (P.Set { P.key = "quiet"; flags = 0; exptime = 0; data = "v";
                  noreply = true }));
    T.client_send conn (Mc_protocol.Ascii.encode_command (P.Get [ "quiet" ]));
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | P.Values { vals = [ v ]; _ } ->
       Alcotest.(check string) "noreply set applied" "v" v.P.v_data
     | _ -> Alcotest.fail "expected the GET's VALUE as the first frame")))

(* Byte-stream semantics: the server must reassemble requests that
   arrive in fragments, and drain several pipelined requests delivered
   in one read. *)
let test_fragmented_request_reassembled () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-frag" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-frag" () in
    let conn = c.Cl.Sock.conn in
    let wire =
      Mc_protocol.Ascii.encode_command
        (P.Set { P.key = "frag"; flags = 0; exptime = 0;
                 data = "reassembled-data"; noreply = false })
    in
    (* deliver it in 5 ragged chunks, as read(2) might *)
    let n = String.length wire in
    let cuts = [ 0; 3; 7; n / 2; n - 2; n ] in
    let rec send_pieces = function
      | a :: (b :: _ as rest) ->
        T.client_send conn (String.sub wire a (b - a));
        send_pieces rest
      | _ -> ()
    in
    send_pieces cuts;
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | P.Stored -> ()
     | _ -> Alcotest.fail "expected STORED after reassembly");
    (match Cl.Sock.get c "frag" with
     | Some r ->
       Alcotest.(check string) "value intact" "reassembled-data"
         r.Mc_core.Store.value
     | None -> Alcotest.fail "hit expected")))

let test_pipelined_requests_one_chunk () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-pipe2" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-pipe2" () in
    let conn = c.Cl.Sock.conn in
    (* three requests in a single write *)
    let wire =
      Mc_protocol.Ascii.encode_command
        (P.Set { P.key = "p1"; flags = 0; exptime = 0; data = "a";
                 noreply = false })
      ^ Mc_protocol.Ascii.encode_command
          (P.Set { P.key = "p2"; flags = 0; exptime = 0; data = "b";
                   noreply = false })
      ^ Mc_protocol.Ascii.encode_command (P.Get [ "p1"; "p2" ])
    in
    T.client_send conn wire;
    (* The batch plane answers a pipelined chunk with one coalesced
       reply buffer: one send carrying all three replies in order. *)
    let reply = T.client_recv conn in
    let r1, u1 = Mc_protocol.Ascii.parse_response_at reply ~at:0 in
    let r2, u2 = Mc_protocol.Ascii.parse_response_at reply ~at:u1 in
    let r3, u3 = Mc_protocol.Ascii.parse_response_at reply ~at:(u1 + u2) in
    Alcotest.(check int) "one send carried everything" (String.length reply)
      (u1 + u2 + u3);
    (match r1 with P.Stored -> () | _ -> Alcotest.fail "first reply");
    (match r2 with P.Stored -> () | _ -> Alcotest.fail "second reply");
    (match r3 with
     | P.Values { vals; _ } ->
       Alcotest.(check int) "both keys served" 2 (List.length vals)
     | _ -> Alcotest.fail "third reply")))

let test_binary_fragmentation () =
  ignore (with_server "srv-binfrag" (fun () ->
    let c = Cl.Sock.connect ~name:"srv-binfrag" () in
    let conn = c.Cl.Sock.conn in
    let wire =
      Mc_protocol.Binary.encode_command
        (P.Set { P.key = "bk"; flags = 1; exptime = 0; data = "bin-data";
                 noreply = false })
    in
    (* header split from the body *)
    T.client_send conn (String.sub wire 0 10);
    T.client_send conn (String.sub wire 10 (String.length wire - 10));
    (match
       Mc_protocol.Binary.parse_response
         ~for_cmd:(P.Set { P.key = "bk"; flags = 1; exptime = 0;
                           data = "bin-data"; noreply = false })
         (T.client_recv conn)
     with
    | P.Stored -> ()
    | _ -> Alcotest.fail "expected Stored");
    (match Cl.Sock.get c "bk" with
     | Some r ->
       Alcotest.(check string) "value" "bin-data" r.Mc_core.Store.value
     | None -> Alcotest.fail "hit")))

let test_pipe () =
  ignore (in_vm (fun () ->
    let p = T.pipe () in
    let peer =
      S.spawn (fun () ->
        let m = T.pipe_recv p.T.a2b in
        T.pipe_send p.T.b2a (m ^ "!"))
    in
    T.pipe_send p.T.a2b "hello";
    Alcotest.(check string) "pipe roundtrip" "hello!" (T.pipe_recv p.T.b2a);
    S.join peer))

(* ---- Shared rings ------------------------------------------------------
   Pure region mechanics — no substrate, no VM: the ring is exercised
   directly against an unsealed region, the way the crash-recovery
   path sees it. *)

module Ring = Transport.Ring
module Region = Shm.Region

let mk_ring ?(slots = 8) ?(slot_bytes = 64) () =
  let r = Region.create ~name:"ring" ~size:Region.page_size ~pkey:0 () in
  (r, Ring.init r ~base:0 ~slots ~slot_bytes)

(* First-slot offset of ring position [pos] (base 0, matching mk_ring). *)
let slot_off ~slot_bytes ~slots pos =
  Ring.hdr_bytes + (pos mod slots * slot_bytes)

let test_ring_roundtrip () =
  let _r, t = mk_ring () in
  Alcotest.(check bool) "fresh ring empty" true (Ring.is_empty t);
  Ring.produce t ~stamp:10 "alpha";
  Ring.produce t ~stamp:20 "beta";
  Ring.produce t ~stamp:30 "gamma";
  (match Ring.pending t with
   | Ok (Some p) ->
     Alcotest.(check int) "three pending" 3 p.Ring.p_msgs;
     Alcotest.(check int) "oldest stamp" 10 p.Ring.p_first_stamp;
     Alcotest.(check int) "newest stamp" 30 p.Ring.p_last_stamp
   | _ -> Alcotest.fail "expected three pending messages");
  (match Ring.consume_all t with
   | Ok msgs ->
     Alcotest.(check (list (pair string int)))
       "in order, with stamps"
       [ ("alpha", 10); ("beta", 20); ("gamma", 30) ]
       msgs
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "drained" true (Ring.is_empty t);
  Alcotest.(check int) "acked watermark tracks head" (Ring.head t)
    (Ring.acked t)

let test_ring_chunking () =
  let _r, t = mk_ring () in
  let cap = Ring.frag_cap t in
  (* Three-fragment message with a position-dependent pattern, so a
     misassembled fragment order cannot produce the same bytes. *)
  let big = String.init ((2 * cap) + 7) (fun i -> Char.chr (32 + (i mod 95))) in
  Ring.produce t ~stamp:1 big;
  Alcotest.(check int) "occupies three slots" 3 (Ring.slots_used t);
  (match Ring.consume_one t with
   | Some m -> Alcotest.(check string) "reassembled verbatim" big m
   | None -> Alcotest.fail "message lost");
  (* Degenerate producer inputs are refused outright. *)
  (match Ring.produce t ~stamp:1 "" with
   | () -> Alcotest.fail "empty message accepted"
   | exception Invalid_argument _ -> ());
  match Ring.produce t ~stamp:1 (String.make (Ring.max_msg t + 1) 'x') with
  | () -> Alcotest.fail "oversized message accepted"
  | exception Invalid_argument _ -> ()

let test_ring_wraparound () =
  let _r, t = mk_ring () in
  let cap = Ring.frag_cap t in
  for i = 1 to 100 do
    (* Alternate one- and two-fragment messages so wrap boundaries
       land inside multi-slot messages too. *)
    let m =
      Printf.sprintf "m%03d:%s" i (String.make (if i mod 2 = 0 then cap else 3) 'y')
    in
    Ring.produce t ~stamp:i m;
    match Ring.consume_one t with
    | Some got -> Alcotest.(check string) "survives the wrap" m got
    | None -> Alcotest.fail "message lost at wrap"
  done;
  Alcotest.(check bool) "positions ran past the ring size" true
    (Ring.head t > 8)

let test_ring_backpressure () =
  let _r, t = mk_ring () in
  for i = 1 to 8 do
    Alcotest.(check bool) "room while filling" true (Ring.has_room t ~len:1);
    Ring.produce t ~stamp:i "z"
  done;
  Alcotest.(check bool) "full ring reports no room" false
    (Ring.has_room t ~len:1);
  (match Ring.produce t ~stamp:9 "z" with
   | () -> Alcotest.fail "produce into a full ring"
   | exception Invalid_argument _ -> ());
  (match Ring.consume_all t with
   | Ok msgs -> Alcotest.(check int) "all eight drained" 8 (List.length msgs)
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "room again after the drain" true
    (Ring.has_room t ~len:1)

let test_ring_doorbell_and_death () =
  let _r, t = mk_ring () in
  Alcotest.(check bool) "fresh ring unarmed" false (Ring.consumer_armed t);
  Ring.set_armed t true;
  Alcotest.(check bool) "armed" true (Ring.consumer_armed t);
  Ring.set_armed t false;
  Alcotest.(check bool) "disarmed" false (Ring.consumer_armed t);
  Alcotest.(check bool) "alive" false (Ring.is_dead t);
  Ring.mark_dead t;
  Alcotest.(check bool) "dead after bounce" true (Ring.is_dead t)

let test_ring_forgery_detected () =
  (* Stomped sequence word. *)
  let r, t = mk_ring () in
  Ring.produce t ~stamp:1 "aaaa";
  Ring.produce t ~stamp:2 "bbbb";
  Region.write_i64 r (slot_off ~slot_bytes:64 ~slots:8 0) 99;
  (match Ring.pending t with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "forged seq not caught");
  (* Forged length. *)
  let r, t = mk_ring () in
  Ring.produce t ~stamp:1 "aaaa";
  Region.write_i64 r (slot_off ~slot_bytes:64 ~slots:8 0 + 8)
    (Ring.max_msg t + 4096);
  (match Ring.pending t with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "forged length not caught");
  (* Overfilled window: tail stomped past head + slots. *)
  let r, t = mk_ring () in
  Ring.produce t ~stamp:1 "aaaa";
  Region.write_i64 r 32 (Ring.head t + 8 + 5);
  match Ring.pending t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overfill not caught"

let test_ring_validation_toggle () =
  (* The pre-hardening consumer trusts headers verbatim: the same
     stomped sequence word sails through the walk. The red-team suite
     turns this into a full breach; here we pin just the toggle. *)
  let r, t = mk_ring () in
  Ring.produce t ~stamp:1 "aaaa";
  Region.write_i64 r (slot_off ~slot_bytes:64 ~slots:8 0) 99;
  Fun.protect
    ~finally:(fun () -> Ring.validation_enabled := true)
    (fun () ->
      Ring.validation_enabled := false;
      match Ring.pending t with
      | Ok (Some p) ->
        Alcotest.(check int) "forgery walks right through" 1 p.Ring.p_msgs
      | Ok None -> Alcotest.fail "pending message vanished"
      | Error _ -> Alcotest.fail "unhardened walk must not validate")

let test_ring_recover_truncates_torn () =
  let r, t = mk_ring () in
  Ring.produce t ~stamp:5 "committed";
  Ring.produce t ~stamp:6 "torn";
  (* Simulate the kill landing mid-produce of the second message: its
     first-slot sequence word was never stamped (the producer writes
     it last), but the tail already moved. *)
  Region.write_i64 r (slot_off ~slot_bytes:64 ~slots:8 1) 0;
  Ring.set_armed t true;
  Ring.recover t;
  Alcotest.(check bool) "recovery disarms" false (Ring.consumer_armed t);
  (match Ring.consume_all t with
   | Ok msgs ->
     Alcotest.(check (list (pair string int)))
       "committed entry survives, torn entry absent — never partial"
       [ ("committed", 5) ] msgs
   | Error e -> Alcotest.fail e);
  (* Broken header invariants get clamped, not trusted. *)
  let r2, t2 = mk_ring () in
  Ring.produce t2 ~stamp:1 "x";
  ignore (Ring.consume_all t2);
  Region.write_i64 r2 40 77 (* acked way past head *);
  Region.write_i64 r2 32 0 (* tail behind head *);
  Ring.recover t2;
  Alcotest.(check bool) "acked clamped to head" true
    (Ring.acked t2 <= Ring.head t2);
  Alcotest.(check bool) "tail clamped to head" true
    (Ring.tail t2 >= Ring.head t2)

let test_ring_attach () =
  let r, t = mk_ring () in
  Ring.produce t ~stamp:3 "persisted";
  let t2 = Ring.attach r ~base:0 in
  Alcotest.(check int) "geometry recovered" (Ring.max_msg t) (Ring.max_msg t2);
  (match Ring.consume_one t2 with
   | Some m -> Alcotest.(check string) "visible through reattach" "persisted" m
   | None -> Alcotest.fail "message lost across attach");
  Region.write_i64 r 0 0xBAD;
  match Ring.attach r ~base:0 with
  | _ -> Alcotest.fail "attach accepted a corrupt magic"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "transport"
    [ ( "sockets",
        [ Alcotest.test_case "connect/accept" `Quick
            test_connect_accept_roundtrip;
          Alcotest.test_case "unknown service" `Quick test_connect_unknown_fails;
          Alcotest.test_case "latency model" `Quick test_messages_cost_latency;
          Alcotest.test_case "pipe" `Quick test_pipe ] );
      ( "server",
        [ Alcotest.test_case "binary protocol ops" `Quick test_server_binary_ops;
          Alcotest.test_case "ascii protocol ops" `Quick test_server_ascii_ops;
          Alcotest.test_case "parse error handling" `Quick
            test_server_parse_error_keeps_connection;
          Alcotest.test_case "8 clients, 2 workers" `Quick
            test_many_clients_two_workers;
          Alcotest.test_case "noreply suppression" `Quick
            test_noreply_suppresses_response ] );
      ( "byte-stream semantics",
        [ Alcotest.test_case "fragmented request" `Quick
            test_fragmented_request_reassembled;
          Alcotest.test_case "pipelined requests" `Quick
            test_pipelined_requests_one_chunk;
          Alcotest.test_case "binary fragmentation" `Quick
            test_binary_fragmentation ] );
      ( "shared rings",
        [ Alcotest.test_case "produce/consume roundtrip" `Quick
            test_ring_roundtrip;
          Alcotest.test_case "multi-slot chunking" `Quick test_ring_chunking;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "backpressure when full" `Quick
            test_ring_backpressure;
          Alcotest.test_case "doorbell and death flags" `Quick
            test_ring_doorbell_and_death;
          Alcotest.test_case "forgeries detected" `Quick
            test_ring_forgery_detected;
          Alcotest.test_case "validation toggle" `Quick
            test_ring_validation_toggle;
          Alcotest.test_case "recover truncates torn" `Quick
            test_ring_recover_truncates_torn;
          Alcotest.test_case "reattach" `Quick test_ring_attach ] ) ]
