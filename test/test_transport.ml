(** The socket model and the baseline server, driven inside the
    virtual-time machine. *)

module S = Vm.Sync
module T = Transport.Sock.Make (Vm.Sync)
module Srv = Mc_server.Server.Make (Vm.Sync)
module P = Mc_protocol.Types

let in_vm f =
  let vm = Vm.create () in
  let out = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () -> out := Some (f ())));
  Vm.run vm;
  Option.get !out

let test_connect_accept_roundtrip () =
  ignore (in_vm (fun () ->
    let l = T.listen ~name:"svc" in
    let inbox = S.chan () in
    let server =
      S.spawn ~name:"srv" (fun () ->
        let conn = T.accept l ~inbox in
        let m = T.worker_recv inbox in
        Alcotest.(check int) "tagged with the conn id" conn.T.cid m.T.m_cid;
        T.server_send conn ("pong:" ^ m.T.m_payload))
    in
    let conn = T.connect ~name:"svc" in
    T.client_send conn "ping";
    Alcotest.(check string) "reply" "pong:ping" (T.client_recv conn);
    S.join server;
    T.close_listener l))

let test_connect_unknown_fails () =
  ignore (in_vm (fun () ->
    match T.connect ~name:"no-such-service" with
    | _ -> Alcotest.fail "expected failure"
    | exception Failure _ -> ()))

let test_messages_cost_latency () =
  let elapsed = in_vm (fun () ->
    let l = T.listen ~name:"lat" in
    let inbox = S.chan () in
    let server =
      S.spawn (fun () ->
        let conn = T.accept l ~inbox in
        for _ = 1 to 10 do
          let m = T.worker_recv inbox in
          T.server_send conn m.T.m_payload
        done)
    in
    let conn = T.connect ~name:"lat" in
    let t0 = S.now_ns () in
    for _ = 1 to 10 do
      T.client_send conn "x";
      ignore (T.client_recv conn)
    done;
    let dt = (S.now_ns () - t0) / 10 in
    S.join server;
    T.close_listener l;
    dt)
  in
  (* a Unix-socket round trip costs microseconds, not nanoseconds *)
  Alcotest.(check bool)
    (Printf.sprintf "round trip %dns in plausible range" elapsed)
    true
    (elapsed > 3_000 && elapsed < 20_000)

let with_server ?(cfg = { Mc_server.Server.default_config with workers = 2 })
    name f =
  in_vm (fun () ->
    let srv = Srv.start ~cfg ~name () in
    let r = f () in
    Srv.stop srv;
    r)

module Cl = Core.Client.Make (Vm.Sync)

let test_server_binary_ops () =
  ignore (with_server "srv-bin" (fun () ->
    let c = Cl.Sock.connect ~name:"srv-bin" () in
    Alcotest.(check bool) "set" true
      (Cl.Sock.set c ~flags:3 "k" "v" = Mc_core.Store.Stored);
    (match Cl.Sock.get c "k" with
     | Some r ->
       Alcotest.(check string) "value" "v" r.Mc_core.Store.value;
       Alcotest.(check int) "flags" 3 r.Mc_core.Store.flags
     | None -> Alcotest.fail "hit expected");
    Alcotest.(check bool) "delete" true (Cl.Sock.delete c "k");
    Alcotest.(check bool) "get miss" true (Cl.Sock.get c "k" = None);
    ignore (Cl.Sock.set c "n" "41");
    Alcotest.(check bool) "incr" true
      (Cl.Sock.incr c "n" 1L = Mc_core.Store.Counter 42L);
    Alcotest.(check bool) "version" true (Cl.Sock.version c <> None);
    let stats = Cl.Sock.stats c in
    Alcotest.(check bool) "stats over the wire" true
      (List.mem_assoc "curr_items" stats);
    Cl.Sock.quit c))

let test_server_ascii_ops () =
  let cfg =
    { Mc_server.Server.default_config with workers = 2;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-ascii" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-ascii" () in
    ignore (Cl.Sock.set c "a" "1");
    ignore (Cl.Sock.set c "b" "2");
    (* ASCII multi-get *)
    let hits = Cl.Sock.mget c [ "a"; "b"; "missing" ] in
    Alcotest.(check int) "two hits of three keys" 2 (List.length hits);
    Alcotest.(check bool) "append" true
      (Cl.Sock.append c "a" "!" = Mc_core.Store.Stored);
    (match Cl.Sock.get c "a" with
     | Some r -> Alcotest.(check string) "appended" "1!" r.Mc_core.Store.value
     | None -> Alcotest.fail "hit");
    Cl.Sock.quit c))

let test_server_parse_error_keeps_connection () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-err" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-err" () in
    (* raw garbage first *)
    let conn = c.Cl.Sock.conn in
    T.client_send conn "n0nsense command\r\n";
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | Mc_protocol.Types.Client_error _ -> ()
     | _ -> Alcotest.fail "expected CLIENT_ERROR");
    (* the connection still works afterwards *)
    ignore (Cl.Sock.set c "k" "v");
    Alcotest.(check bool) "conn survives a bad request" true
      (Cl.Sock.get c "k" <> None)))

let test_many_clients_two_workers () =
  ignore (with_server "srv-many" (fun () ->
    let clients = List.init 8 (fun _ -> Cl.Sock.connect ~name:"srv-many" ()) in
    let done_ = Atomic.make 0 in
    let ths =
      List.mapi
        (fun i c ->
          S.spawn (fun () ->
            for j = 0 to 30 do
              let k = Printf.sprintf "c%d-%d" i j in
              assert (Cl.Sock.set c k k = Mc_core.Store.Stored);
              assert (Cl.Sock.get c k <> None)
            done;
            Atomic.incr done_))
        clients
    in
    List.iter S.join ths;
    Alcotest.(check int) "all clients finished" 8 (Atomic.get done_)))

let test_noreply_suppresses_response () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-noreply" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-noreply" () in
    let conn = c.Cl.Sock.conn in
    (* a noreply set produces no response frame; the next command's
       response must be the very next frame on the wire *)
    T.client_send conn
      (Mc_protocol.Ascii.encode_command
         (P.Set { P.key = "quiet"; flags = 0; exptime = 0; data = "v";
                  noreply = true }));
    T.client_send conn (Mc_protocol.Ascii.encode_command (P.Get [ "quiet" ]));
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | P.Values { vals = [ v ]; _ } ->
       Alcotest.(check string) "noreply set applied" "v" v.P.v_data
     | _ -> Alcotest.fail "expected the GET's VALUE as the first frame")))

(* Byte-stream semantics: the server must reassemble requests that
   arrive in fragments, and drain several pipelined requests delivered
   in one read. *)
let test_fragmented_request_reassembled () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-frag" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-frag" () in
    let conn = c.Cl.Sock.conn in
    let wire =
      Mc_protocol.Ascii.encode_command
        (P.Set { P.key = "frag"; flags = 0; exptime = 0;
                 data = "reassembled-data"; noreply = false })
    in
    (* deliver it in 5 ragged chunks, as read(2) might *)
    let n = String.length wire in
    let cuts = [ 0; 3; 7; n / 2; n - 2; n ] in
    let rec send_pieces = function
      | a :: (b :: _ as rest) ->
        T.client_send conn (String.sub wire a (b - a));
        send_pieces rest
      | _ -> ()
    in
    send_pieces cuts;
    (match Mc_protocol.Ascii.parse_response (T.client_recv conn) with
     | P.Stored -> ()
     | _ -> Alcotest.fail "expected STORED after reassembly");
    (match Cl.Sock.get c "frag" with
     | Some r ->
       Alcotest.(check string) "value intact" "reassembled-data"
         r.Mc_core.Store.value
     | None -> Alcotest.fail "hit expected")))

let test_pipelined_requests_one_chunk () =
  let cfg =
    { Mc_server.Server.default_config with workers = 1;
      protocol = Mc_server.Server.Ascii }
  in
  ignore (with_server ~cfg "srv-pipe2" (fun () ->
    let c = Cl.Sock.connect ~protocol:Cl.Sock.Ascii ~name:"srv-pipe2" () in
    let conn = c.Cl.Sock.conn in
    (* three requests in a single write *)
    let wire =
      Mc_protocol.Ascii.encode_command
        (P.Set { P.key = "p1"; flags = 0; exptime = 0; data = "a";
                 noreply = false })
      ^ Mc_protocol.Ascii.encode_command
          (P.Set { P.key = "p2"; flags = 0; exptime = 0; data = "b";
                   noreply = false })
      ^ Mc_protocol.Ascii.encode_command (P.Get [ "p1"; "p2" ])
    in
    T.client_send conn wire;
    (* The batch plane answers a pipelined chunk with one coalesced
       reply buffer: one send carrying all three replies in order. *)
    let reply = T.client_recv conn in
    let r1, u1 = Mc_protocol.Ascii.parse_response_at reply ~at:0 in
    let r2, u2 = Mc_protocol.Ascii.parse_response_at reply ~at:u1 in
    let r3, u3 = Mc_protocol.Ascii.parse_response_at reply ~at:(u1 + u2) in
    Alcotest.(check int) "one send carried everything" (String.length reply)
      (u1 + u2 + u3);
    (match r1 with P.Stored -> () | _ -> Alcotest.fail "first reply");
    (match r2 with P.Stored -> () | _ -> Alcotest.fail "second reply");
    (match r3 with
     | P.Values { vals; _ } ->
       Alcotest.(check int) "both keys served" 2 (List.length vals)
     | _ -> Alcotest.fail "third reply")))

let test_binary_fragmentation () =
  ignore (with_server "srv-binfrag" (fun () ->
    let c = Cl.Sock.connect ~name:"srv-binfrag" () in
    let conn = c.Cl.Sock.conn in
    let wire =
      Mc_protocol.Binary.encode_command
        (P.Set { P.key = "bk"; flags = 1; exptime = 0; data = "bin-data";
                 noreply = false })
    in
    (* header split from the body *)
    T.client_send conn (String.sub wire 0 10);
    T.client_send conn (String.sub wire 10 (String.length wire - 10));
    (match
       Mc_protocol.Binary.parse_response
         ~for_cmd:(P.Set { P.key = "bk"; flags = 1; exptime = 0;
                           data = "bin-data"; noreply = false })
         (T.client_recv conn)
     with
    | P.Stored -> ()
    | _ -> Alcotest.fail "expected Stored");
    (match Cl.Sock.get c "bk" with
     | Some r ->
       Alcotest.(check string) "value" "bin-data" r.Mc_core.Store.value
     | None -> Alcotest.fail "hit")))

let test_pipe () =
  ignore (in_vm (fun () ->
    let p = T.pipe () in
    let peer =
      S.spawn (fun () ->
        let m = T.pipe_recv p.T.a2b in
        T.pipe_send p.T.b2a (m ^ "!"))
    in
    T.pipe_send p.T.a2b "hello";
    Alcotest.(check string) "pipe roundtrip" "hello!" (T.pipe_recv p.T.b2a);
    S.join peer))

let () =
  Alcotest.run "transport"
    [ ( "sockets",
        [ Alcotest.test_case "connect/accept" `Quick
            test_connect_accept_roundtrip;
          Alcotest.test_case "unknown service" `Quick test_connect_unknown_fails;
          Alcotest.test_case "latency model" `Quick test_messages_cost_latency;
          Alcotest.test_case "pipe" `Quick test_pipe ] );
      ( "server",
        [ Alcotest.test_case "binary protocol ops" `Quick test_server_binary_ops;
          Alcotest.test_case "ascii protocol ops" `Quick test_server_ascii_ops;
          Alcotest.test_case "parse error handling" `Quick
            test_server_parse_error_keeps_connection;
          Alcotest.test_case "8 clients, 2 workers" `Quick
            test_many_clients_two_workers;
          Alcotest.test_case "noreply suppression" `Quick
            test_noreply_suppresses_response ] );
      ( "byte-stream semantics",
        [ Alcotest.test_case "fragmented request" `Quick
            test_fragmented_request_reassembled;
          Alcotest.test_case "pipelined requests" `Quick
            test_pipelined_requests_one_chunk;
          Alcotest.test_case "binary fragmentation" `Quick
            test_binary_fragmentation ] ) ]
