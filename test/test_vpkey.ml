(** Virtual pkey layer: unbounded vkeys multiplexed onto the 16
    hardware slots — slot LRU eviction, quarantine re-tag, lazy
    re-bind, per-thread pkru shadow, ownership checks. *)

module Vpkey = Pku.Vpkey
module Pkey = Pku.Pkey
module Pkru = Pku.Pkru
module Region = Shm.Region

let with_clean f =
  Vpkey.reset ();
  Pkru.reset_thread ();
  Fun.protect
    ~finally:(fun () ->
      Vpkey.reset ();
      Pkru.reset_thread ())
    f

(* A one-page region owned by a vkey: tagged to the vkey's current
   hardware mapping (quarantine while unbound) and re-tagged on every
   eviction/rebind, exactly as the tenant vaults do. *)
let attach_region vk ~name ~payload =
  let r =
    Region.kernel_mode (fun () ->
      Region.create ~name ~size:Region.page_size ~pkey:Pkey.default ())
  in
  Vpkey.attach_retag vk (fun hw ->
    Region.kernel_mode (fun () ->
      Region.tag_range r ~off:0 ~len:Region.page_size ~pkey:hw));
  Region.kernel_mode (fun () -> Region.write_string r ~off:0 payload);
  r

let readable r ~len =
  match Region.read_string r ~off:0 ~len with
  | _ -> true
  | exception Pku.Fault.Protection_fault _ -> false

(* ---- allocation ------------------------------------------------------- *)

let test_alloc_free () =
  with_clean @@ fun () ->
  let a = Vpkey.alloc () in
  let b = Vpkey.alloc () in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "two live" 2 (Vpkey.live_vkeys ());
  Alcotest.(check bool) "unbound at birth" true (Vpkey.hw_key a = None);
  Vpkey.free a;
  Alcotest.(check int) "one live" 1 (Vpkey.live_vkeys ());
  Alcotest.check_raises "double free" (Vpkey.Unknown_vkey a) (fun () ->
    Vpkey.free a);
  Alcotest.check_raises "bind after free" (Vpkey.Unknown_vkey a) (fun () ->
    ignore (Vpkey.bind a));
  Vpkey.check_invariants ()

let test_restore_idempotent () =
  with_clean @@ fun () ->
  Vpkey.restore ~id:7 ~owner:4242;
  Vpkey.restore ~id:7 ~owner:4242;
  Alcotest.(check int) "one live" 1 (Vpkey.live_vkeys ());
  Alcotest.(check int) "owner restored" 4242 (Vpkey.owner_of 7);
  Alcotest.(check bool) "restored unbound" true (Vpkey.hw_key 7 = None);
  (* fresh ids never collide with restored ones *)
  let fresh = Vpkey.alloc () in
  Alcotest.(check bool) "fresh id distinct" true (fresh <> 7);
  Vpkey.check_invariants ()

(* ---- slot multiplexing ------------------------------------------------ *)

let test_bind_beyond_cap_evicts () =
  with_clean @@ fun () ->
  Vpkey.set_hw_cap 4;
  let vks = List.init 10 (fun _ -> Vpkey.alloc ()) in
  let hws = Region.kernel_mode (fun () -> List.map Vpkey.bind vks) in
  List.iter
    (fun hw ->
      Alcotest.(check bool) "hw key valid" true (Pkey.is_valid hw))
    hws;
  Alcotest.(check bool) "cap respected" true (Vpkey.slots_in_use () <= 4);
  Alcotest.(check int) "all vkeys alive" 10 (Vpkey.live_vkeys ());
  Alcotest.(check bool) "evictions happened" true (Vpkey.evictions () >= 6);
  Alcotest.(check int) "every first bind is a miss" 10 (Vpkey.slot_misses ());
  (* rebinding a bound vkey is a hit, not a miss *)
  let last = List.nth vks 9 in
  let misses0 = Vpkey.slot_misses () in
  ignore (Region.kernel_mode (fun () -> Vpkey.bind last));
  Alcotest.(check int) "hot rebind: no miss" misses0 (Vpkey.slot_misses ());
  Vpkey.check_invariants ()

let test_exhaustion_without_eviction () =
  with_clean @@ fun () ->
  Vpkey.eviction_enabled := false;
  Vpkey.set_hw_cap 3;
  let vks = List.init 4 (fun _ -> Vpkey.alloc ()) in
  Region.kernel_mode (fun () ->
    List.iteri
      (fun i vk ->
        if i < 3 then ignore (Vpkey.bind vk)
        else
          Alcotest.check_raises "table full, eviction off" Pkey.Out_of_keys
            (fun () -> ignore (Vpkey.bind vk)))
      vks);
  Vpkey.check_invariants ()

let test_quarantine_and_lazy_rebind () =
  with_clean @@ fun () ->
  Vpkey.set_hw_cap 2;
  let a = Vpkey.alloc () and b = Vpkey.alloc () and c = Vpkey.alloc () in
  let ra = attach_region a ~name:"vpk-lazy-a" ~payload:"payload-A" in
  let _rb = attach_region b ~name:"vpk-lazy-b" ~payload:"payload-B" in
  let _rc = attach_region c ~name:"vpk-lazy-c" ~payload:"payload-C" in
  let hwa = Vpkey.enable a in
  Alcotest.(check bool) "a readable while bound" true (readable ra ~len:9);
  (* bind b then c: the 2-slot table evicts a *)
  ignore (Region.kernel_mode (fun () -> Vpkey.bind b));
  ignore (Region.kernel_mode (fun () -> Vpkey.bind c));
  Alcotest.(check bool) "a evicted" true (Vpkey.hw_key a = None);
  (* a's page is quarantined: even with a's old slot still open in
     this thread's pkru, the read faults *)
  Alcotest.(check bool) "old grant useless post-evict" false
    (readable ra ~len:9);
  Alcotest.(check bool) "page quarantine-tagged" true
    (Region.pkey_of_page ra 0 = Vpkey.quarantine_key ());
  ignore hwa;
  (* next enable lazily re-tags to the fresh slot and reopens access *)
  let hwa' = Vpkey.enable a in
  Alcotest.(check bool) "rebind re-tags" true
    (Region.pkey_of_page ra 0 = hwa');
  Alcotest.(check string) "payload intact" "payload-A"
    (Region.read_string ra ~off:0 ~len:9);
  Vpkey.check_invariants ()

(* ---- per-thread pkru shadow ------------------------------------------- *)

let test_sync_thread_follows_moves () =
  with_clean @@ fun () ->
  Vpkey.set_hw_cap 2;
  let v = Vpkey.alloc () in
  let rv = attach_region v ~name:"vpk-sync-v" ~payload:"sync-payload" in
  ignore (Vpkey.enable v);
  Alcotest.(check bool) "readable after enable" true (readable rv ~len:12);
  (* churn the table until v is evicted *)
  let churn = List.init 4 (fun _ -> Vpkey.alloc ()) in
  Region.kernel_mode (fun () ->
    List.iter (fun vk -> ignore (Vpkey.bind vk)) churn);
  Alcotest.(check bool) "v evicted by churn" true (Vpkey.hw_key v = None);
  Alcotest.(check bool) "stale grant faults" false (readable rv ~len:12);
  (* what the Hodor trampoline does on every crossing *)
  Vpkey.sync_thread ();
  Alcotest.(check bool) "sync re-binds the held vkey" true
    (Vpkey.hw_key v <> None);
  Alcotest.(check bool) "readable again after sync" true (readable rv ~len:12);
  Vpkey.disable v;
  Alcotest.(check bool) "disable closes access" false (readable rv ~len:12);
  Vpkey.check_invariants ()

let test_slot_reuse_never_leaks_rights () =
  with_clean @@ fun () ->
  Vpkey.set_hw_cap 1;
  let victim = Vpkey.alloc () in
  let rv = attach_region victim ~name:"vpk-reuse-v" ~payload:"victim-bytes" in
  ignore (Vpkey.enable victim);
  let thief = Vpkey.alloc () in
  ignore (Region.kernel_mode (fun () -> Vpkey.bind thief));
  (* thief inherited the only slot; sync revokes this thread's stale
     right on it, then re-binds victim (evicting thief back out) *)
  Vpkey.sync_thread ();
  Alcotest.(check bool) "victim readable via its new binding" true
    (readable rv ~len:12);
  Alcotest.(check bool) "thief lost the slot" true (Vpkey.hw_key thief = None);
  Vpkey.check_invariants ()

(* ---- ownership -------------------------------------------------------- *)

let test_owner_checks () =
  with_clean @@ fun () ->
  let v = Vpkey.alloc ~owner:1042 () in
  Alcotest.(check int) "owner recorded" 1042 (Vpkey.owner_of v);
  Region.kernel_mode (fun () ->
    (match Vpkey.bind ~owner:1043 v with
     | _ -> Alcotest.fail "foreign bind must be denied"
     | exception Vpkey.Permission_denied _ -> ());
    ignore (Vpkey.bind ~owner:1042 v);
    (* uid 0 is the kernel-side bypass *)
    ignore (Vpkey.bind ~owner:0 v));
  Vpkey.owner_checks_enabled := false;
  ignore (Region.kernel_mode (fun () -> Vpkey.bind ~owner:1043 v));
  Vpkey.check_invariants ()

(* ---- the acceptance sweep: 64 tenants on 16 hardware keys ------------- *)

let test_sixty_four_tenants_isolated () =
  with_clean @@ fun () ->
  let n = 64 in
  let tenants =
    Array.init n (fun i ->
      let uid = 9000 + i in
      let vk = Vpkey.alloc ~owner:uid () in
      let r =
        attach_region vk
          ~name:(Printf.sprintf "vpk-64-%02d" i)
          ~payload:(Printf.sprintf "tenant-%02d-secret" i)
      in
      (vk, uid, r))
  in
  Alcotest.(check int) "64 live vkeys" n (Vpkey.live_vkeys ());
  (* bind all 64 under their owners: far beyond the hw table, so the
     LRU must cycle; every bind still succeeds *)
  Array.iter
    (fun (vk, uid, _) ->
      ignore (Region.kernel_mode (fun () -> Vpkey.bind ~owner:uid vk)))
    tenants;
  Alcotest.(check bool) "slot table stayed within the hw budget" true
    (Vpkey.slots_in_use () <= 14);
  Alcotest.(check bool) "evictions forced" true (Vpkey.evictions () >= n - 14);
  (* every region is readable exactly under its owner's bound key:
     enable tenant i, check region i opens and a neighbour's stays
     shut, then drop the grant *)
  Array.iteri
    (fun i (vk, uid, r) ->
      ignore (Vpkey.enable ~owner:uid vk);
      Alcotest.(check string)
        (Printf.sprintf "tenant %d reads its own region" i)
        (Printf.sprintf "tenant-%02d-secret" i)
        (Region.read_string r ~off:0 ~len:16);
      let j = (i + 1) mod n in
      let _, _, rj = tenants.(j) in
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d cannot read tenant %d" i j)
        false (readable rj ~len:16);
      Vpkey.disable vk;
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d loses access on disable" i)
        false (readable r ~len:16))
    tenants;
  Vpkey.check_invariants ()

(* ---- counters --------------------------------------------------------- *)

let test_counters_mirror_telemetry () =
  with_clean @@ fun () ->
  Telemetry.Counters.reset ();
  Vpkey.set_hw_cap 2;
  let vks = List.init 5 (fun _ -> Vpkey.alloc ()) in
  Region.kernel_mode (fun () ->
    List.iter (fun vk -> ignore (Vpkey.bind vk)) vks);
  Alcotest.(check bool) "binds counted" true (Vpkey.binds () >= 5);
  Alcotest.(check int) "telemetry binds" (Vpkey.binds ())
    (Telemetry.Counters.read Telemetry.Counters.Id.vpkey_binds);
  Alcotest.(check int) "telemetry misses" (Vpkey.slot_misses ())
    (Telemetry.Counters.read Telemetry.Counters.Id.vpkey_slot_misses);
  Alcotest.(check int) "telemetry evictions" (Vpkey.evictions ())
    (Telemetry.Counters.read Telemetry.Counters.Id.vpkey_evictions)

let () =
  Alcotest.run "vpkey"
    [ ( "allocation",
        [ Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "restore idempotent" `Quick
            test_restore_idempotent ] );
      ( "slot table",
        [ Alcotest.test_case "bind beyond cap evicts" `Quick
            test_bind_beyond_cap_evicts;
          Alcotest.test_case "exhaustion with eviction off" `Quick
            test_exhaustion_without_eviction;
          Alcotest.test_case "quarantine + lazy rebind" `Quick
            test_quarantine_and_lazy_rebind ] );
      ( "pkru shadow",
        [ Alcotest.test_case "sync_thread follows moves" `Quick
            test_sync_thread_follows_moves;
          Alcotest.test_case "slot reuse leaks nothing" `Quick
            test_slot_reuse_never_leaks_rights ] );
      ( "ownership",
        [ Alcotest.test_case "owner checks" `Quick test_owner_checks ] );
      ( "scale",
        [ Alcotest.test_case "64 tenants on 16 hw keys" `Quick
            test_sixty_four_tenants_isolated ] );
      ( "counters",
        [ Alcotest.test_case "telemetry mirror" `Quick
            test_counters_mirror_telemetry ] ) ]
