(** The store proper, exercised identically over both instantiations:
    private memory + slab (the baseline server's) and shared region +
    Ralloc (the protected library's). Includes a model-based property
    test against a reference Hashtbl. *)

module Store = Mc_core.Store

module Make_suite
    (M : Mc_core.Memory_intf.MEMORY)
    (A : Mc_core.Memory_intf.ALLOCATOR)
    (Env : sig
       val name : string
       val fresh : ?cfg:Store.config -> unit -> M.t * A.t
     end) =
struct
  module St = Store.Make (M) (A) (Platform.Real_sync)

  let small_cfg =
    { Store.default_config with hashpower = 8; lock_count = 16; lru_count = 4;
      stats_slots = 4 }

  let fresh ?(cfg = small_cfg) () =
    let mem, alloc = Env.fresh ~cfg () in
    St.create ~mem ~alloc cfg

  let check_sr = Alcotest.(check bool)

  let get_value st k =
    match St.get st k with Some r -> Some r.Store.value | None -> None

  let test_set_get () =
    let st = fresh () in
    check_sr "stored" true (St.set st ~flags:5 "alpha" "one" = Store.Stored);
    (match St.get st "alpha" with
     | Some r ->
       Alcotest.(check string) "value" "one" r.Store.value;
       Alcotest.(check int) "flags" 5 r.Store.flags
     | None -> Alcotest.fail "hit expected");
    Alcotest.(check (option string)) "miss" None (get_value st "beta");
    (* overwrite *)
    check_sr "overwrite" true (St.set st "alpha" "two" = Store.Stored);
    Alcotest.(check (option string)) "new value" (Some "two")
      (get_value st "alpha");
    St.check_invariants st

  let test_cas_monotonic () =
    let st = fresh () in
    ignore (St.set st "k" "1");
    let c1 = (Option.get (St.get st "k")).Store.cas in
    ignore (St.set st "k" "2");
    let c2 = (Option.get (St.get st "k")).Store.cas in
    Alcotest.(check bool) "cas increases" true (Int64.compare c2 c1 > 0)

  let test_add_replace () =
    let st = fresh () in
    check_sr "add new" true (St.add st "k" "v" = Store.Stored);
    check_sr "add existing fails" true (St.add st "k" "w" = Store.Not_stored);
    Alcotest.(check (option string)) "unchanged" (Some "v") (get_value st "k");
    check_sr "replace existing" true (St.replace st "k" "w" = Store.Stored);
    check_sr "replace missing fails" true
      (St.replace st "nope" "x" = Store.Not_stored);
    St.check_invariants st

  let test_cas_op () =
    let st = fresh () in
    check_sr "cas on missing" true
      (St.cas st ~cas:1L "k" "v" = Store.Not_found);
    ignore (St.set st "k" "v0");
    let c = (Option.get (St.get st "k")).Store.cas in
    check_sr "stale cas" true (St.cas st ~cas:99999L "k" "v1" = Store.Exists);
    Alcotest.(check (option string)) "unchanged" (Some "v0") (get_value st "k");
    check_sr "fresh cas" true (St.cas st ~cas:c "k" "v1" = Store.Stored);
    Alcotest.(check (option string)) "updated" (Some "v1") (get_value st "k");
    check_sr "reused cas rejected" true
      (St.cas st ~cas:c "k" "v2" = Store.Exists)

  let test_append_prepend () =
    let st = fresh () in
    check_sr "append missing" true (St.append st "k" "x" = Store.Not_stored);
    ignore (St.set st ~flags:3 "k" "mid");
    check_sr "append" true (St.append st "k" ">>" = Store.Stored);
    check_sr "prepend" true (St.prepend st "k" "<<" = Store.Stored);
    (match St.get st "k" with
     | Some r ->
       Alcotest.(check string) "combined" "<<mid>>" r.Store.value;
       Alcotest.(check int) "flags preserved" 3 r.Store.flags
     | None -> Alcotest.fail "hit expected");
    St.check_invariants st

  let test_delete () =
    let st = fresh () in
    Alcotest.(check bool) "delete missing" false (St.delete st "k");
    ignore (St.set st "k" "v");
    Alcotest.(check bool) "delete hit" true (St.delete st "k");
    Alcotest.(check (option string)) "gone" None (get_value st "k");
    Alcotest.(check bool) "double delete" false (St.delete st "k");
    St.check_invariants st

  let test_counters () =
    let st = fresh () in
    check_sr "incr missing" true (St.incr st "n" 1L = Store.Counter_not_found);
    ignore (St.set st "n" "10");
    check_sr "incr" true (St.incr st "n" 5L = Store.Counter 15L);
    Alcotest.(check (option string)) "textual" (Some "15") (get_value st "n");
    check_sr "decr" true (St.decr st "n" 6L = Store.Counter 9L);
    check_sr "decr clamps at zero" true (St.decr st "n" 100L = Store.Counter 0L);
    ignore (St.set st "s" "pony");
    check_sr "non numeric" true (St.incr st "s" 1L = Store.Non_numeric);
    St.check_invariants st

  let test_counter_growth_reallocates () =
    let st = fresh () in
    ignore (St.set st "n" "9");
    (* growing from 1 digit to 20 digits overflows the block's slack
       and forces the re-store path *)
    (match St.incr st "n" (Int64.neg 616L) (* u64: 2^64-616 *) with
     | Store.Counter v ->
       Alcotest.(check string) "20-digit value intact"
         (Printf.sprintf "%Lu" v)
         (Option.get (get_value st "n"))
     | _ -> Alcotest.fail "counter expected");
    St.check_invariants st

  let test_counter_wraps_u64 () =
    let st = fresh () in
    ignore (St.set st "n" "18446744073709551615");
    check_sr "wraps like memcached" true (St.incr st "n" 1L = Store.Counter 0L)

  let test_touch () =
    let st = fresh () in
    Alcotest.(check bool) "touch missing" false (St.touch st "k" 100);
    ignore (St.set st "k" "v");
    Alcotest.(check bool) "touch hit" true (St.touch st "k" 100);
    Alcotest.(check (option string)) "still there" (Some "v") (get_value st "k")

  let test_expiry_absolute_past () =
    let st = fresh () in
    (* an absolute exptime in the past (2001) expires immediately *)
    ignore (St.set st ~exptime:1_000_000_000 "old" "v");
    Alcotest.(check (option string)) "expired on read" None
      (get_value st "old");
    (* expired items can be re-added *)
    check_sr "re-add after expiry" true (St.add st "old" "new" = Store.Stored);
    St.check_invariants st

  let test_flush_all () =
    let st = fresh () in
    ignore (St.set st "a" "1");
    ignore (St.set st "b" "2");
    St.flush_all st;
    Alcotest.(check (option string)) "a flushed" None (get_value st "a");
    Alcotest.(check (option string)) "b flushed" None (get_value st "b");
    ignore (St.set st "c" "3");
    Alcotest.(check (option string)) "new set after flush lives" (Some "3")
      (get_value st "c");
    St.check_invariants st

  let test_stats_counters () =
    let st = fresh () in
    ignore (St.set st "a" "1");
    ignore (St.get st "a");
    ignore (St.get st "miss");
    ignore (St.delete st "a");
    ignore (St.delete st "a");
    let s = St.stats st in
    let get k = int_of_string (List.assoc k s) in
    Alcotest.(check int) "cmd_set" 1 (get "cmd_set");
    Alcotest.(check int) "get_hits" 1 (get "get_hits");
    Alcotest.(check int) "get_misses" 1 (get "get_misses");
    Alcotest.(check int) "delete_hits" 1 (get "delete_hits");
    Alcotest.(check int) "delete_misses" 1 (get "delete_misses");
    Alcotest.(check int) "curr_items" 0 (get "curr_items");
    Alcotest.(check int) "total_items" 1 (get "total_items")

  let test_large_values () =
    let st = fresh () in
    let v = String.init 5120 (fun i -> Char.chr (i land 0xff)) in
    check_sr "5KB set" true (St.set st "big" v = Store.Stored);
    Alcotest.(check (option string)) "5KB get" (Some v) (get_value st "big");
    St.check_invariants st

  let test_many_keys_no_collision_confusion () =
    let st = fresh () in
    for i = 0 to 999 do
      ignore (St.set st (Printf.sprintf "key-%d" i) (string_of_int i))
    done;
    for i = 0 to 999 do
      Alcotest.(check (option string)) "value by key"
        (Some (string_of_int i))
        (get_value st (Printf.sprintf "key-%d" i))
    done;
    Alcotest.(check int) "curr_items" 1000 (St.curr_items st);
    St.check_invariants st

  (* Model-based property: any op sequence agrees with a Hashtbl. *)
  let op_gen =
    QCheck.Gen.(
      let key = map (Printf.sprintf "k%d") (int_range 0 15) in
      let value = map (Printf.sprintf "v%d") (int_range 0 99) in
      frequency
        [ (4, map2 (fun k v -> `Set (k, v)) key value);
          (4, map (fun k -> `Get k) key);
          (2, map (fun k -> `Delete k) key);
          (1, map2 (fun k v -> `Add (k, v)) key value);
          (1, map2 (fun k v -> `Replace (k, v)) key value);
          (1, map2 (fun k v -> `Append (k, v)) key value);
          (1, map2 (fun k d -> `Incr (k, Int64.of_int d)) key (int_range 0 50)) ])

  let qcheck_model =
    QCheck.Test.make
      ~name:(Env.name ^ " agrees with a reference model")
      ~count:60
      QCheck.(make Gen.(list_size (int_range 0 200) op_gen))
      (fun ops ->
        let st = fresh () in
        let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
        let ok = ref true in
        let expect b = if not b then ok := false in
        List.iter
          (fun op ->
            match op with
            | `Set (k, v) ->
              expect (St.set st k v = Store.Stored);
              Hashtbl.replace model k v
            | `Get k ->
              expect (get_value st k = Hashtbl.find_opt model k)
            | `Delete k ->
              expect (St.delete st k = Hashtbl.mem model k);
              Hashtbl.remove model k
            | `Add (k, v) ->
              if Hashtbl.mem model k then
                expect (St.add st k v = Store.Not_stored)
              else begin
                expect (St.add st k v = Store.Stored);
                Hashtbl.replace model k v
              end
            | `Replace (k, v) ->
              if Hashtbl.mem model k then begin
                expect (St.replace st k v = Store.Stored);
                Hashtbl.replace model k v
              end
              else expect (St.replace st k v = Store.Not_stored)
            | `Append (k, v) ->
              (match Hashtbl.find_opt model k with
               | Some old ->
                 expect (St.append st k v = Store.Stored);
                 Hashtbl.replace model k (old ^ v)
               | None -> expect (St.append st k v = Store.Not_stored))
            | `Incr (k, d) ->
              (match Hashtbl.find_opt model k with
               | None -> expect (St.incr st k d = Store.Counter_not_found)
               | Some old ->
                 (match Int64.of_string_opt old with
                  | Some n when n >= 0L ->
                    let expected = Int64.add n d in
                    expect (St.incr st k d = Store.Counter expected);
                    Hashtbl.replace model k (Printf.sprintf "%Lu" expected)
                  | _ -> expect (St.incr st k d = Store.Non_numeric))))
          ops;
        St.check_invariants st;
        expect (St.curr_items st = Hashtbl.length model);
        !ok)

  let suite =
    [ Alcotest.test_case "set/get" `Quick test_set_get;
      Alcotest.test_case "cas monotonic" `Quick test_cas_monotonic;
      Alcotest.test_case "add/replace" `Quick test_add_replace;
      Alcotest.test_case "cas op" `Quick test_cas_op;
      Alcotest.test_case "append/prepend" `Quick test_append_prepend;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "counter growth" `Quick
        test_counter_growth_reallocates;
      Alcotest.test_case "counter wrap" `Quick test_counter_wraps_u64;
      Alcotest.test_case "touch" `Quick test_touch;
      Alcotest.test_case "expiry" `Quick test_expiry_absolute_past;
      Alcotest.test_case "flush_all" `Quick test_flush_all;
      Alcotest.test_case "stats" `Quick test_stats_counters;
      Alcotest.test_case "large values" `Quick test_large_values;
      Alcotest.test_case "1000 keys" `Quick
        test_many_keys_no_collision_confusion;
      QCheck_alcotest.to_alcotest qcheck_model ]
end

module Private_env = struct
  let name = "private+slab"

  let fresh ?cfg:_ () =
    let arena = Mc_core.Private_memory.create ~limit:(64 lsl 20) in
    let slab = Mc_core.Slab.create ~arena ~mem_limit:(32 lsl 20) in
    (arena, slab)
end

module Shared_env = struct
  let name = "shared+ralloc"

  let fresh ?cfg:_ () =
    let reg = Shm.Region.create ~name:"store-test" ~size:(32 lsl 20) ~pkey:0 () in
    let heap = Ralloc.create reg in
    (Mc_core.Shared_memory.of_region reg, Mc_core.Ralloc_alloc.of_heap heap)
end

module Private_suite =
  Make_suite (Mc_core.Private_memory) (Mc_core.Slab) (Private_env)
module Shared_suite =
  Make_suite (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (Shared_env)

(* Eviction and concurrency get their own cases over the shared build. *)

module SSt = Shared_suite.St

let shared_store ~heap_mb ~cfg =
  let reg =
    Shm.Region.create ~name:"evict-test" ~size:(heap_mb lsl 20) ~pkey:0 ()
  in
  let heap = Ralloc.create reg in
  SSt.create
    ~mem:(Mc_core.Shared_memory.of_region reg)
    ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
    cfg

let test_eviction_under_pressure () =
  let cfg =
    { Store.default_config with hashpower = 8; lock_count = 16; lru_count = 4;
      stats_slots = 4 }
  in
  let st = shared_store ~heap_mb:4 ~cfg in
  for i = 0 to 4_000 do
    match SSt.set st (Printf.sprintf "k%d" i) (String.make 900 'x') with
    | Store.Stored -> ()
    | r ->
      Alcotest.fail
        (Printf.sprintf "set %d failed unexpectedly (%s)" i
           (match r with
            | Store.No_memory -> "no memory"
            | _ -> "other"))
  done;
  let s = SSt.stats st in
  Alcotest.(check bool) "evictions happened" true
    (int_of_string (List.assoc "evictions" s) > 0);
  SSt.check_invariants st

let test_lru_eviction_order () =
  (* One LRU list: the re-fetched key must survive eviction. The test
     exercises LRU ordering, not bump rate-limiting, so bump on every
     hit. *)
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 1;
      stats_slots = 2; evict_batch = 2; bump_interval_s = 0 }
  in
  let st = shared_store ~heap_mb:1 ~cfg in
  ignore (SSt.set st "hot" (String.make 400 'h'));
  let i = ref 0 in
  let evicted_any = ref false in
  while not !evicted_any && !i < 3_000 do
    incr i;
    ignore (SSt.set st (Printf.sprintf "cold%d" !i) (String.make 400 'c'));
    (* keep "hot" at the head of the LRU *)
    ignore (SSt.get st "hot");
    let s = SSt.stats st in
    evicted_any := int_of_string (List.assoc "evictions" s) > 0
  done;
  Alcotest.(check bool) "eviction occurred" true !evicted_any;
  Alcotest.(check bool) "the hot key survived" true (SSt.get st "hot" <> None);
  SSt.check_invariants st

let test_zero_length_value () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:2 ~cfg in
  Alcotest.(check bool) "empty value stores" true
    (SSt.set st "empty" "" = Store.Stored);
  (match SSt.get st "empty" with
   | Some r -> Alcotest.(check string) "empty value reads back" "" r.Store.value
   | None -> Alcotest.fail "hit expected");
  Alcotest.(check bool) "append onto empty" true
    (SSt.append st "empty" "x" = Store.Stored);
  SSt.check_invariants st

let test_relative_expiry_in_future () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:2 ~cfg in
  (* a relative exptime (<= 30 days) lands in the future: still live *)
  ignore (SSt.set st ~exptime:3600 "soon" "v");
  Alcotest.(check bool) "not yet expired" true (SSt.get st "soon" <> None);
  (* touch can force an absolute past time, expiring it *)
  ignore (SSt.touch st "soon" 1_000_000_000);
  Alcotest.(check bool) "touch to the past expires" true
    (SSt.get st "soon" = None)

let test_lru_by_size_class_mode () =
  (* the baseline's slab-class LRU selection: different-size items land
     on different lists; all operations remain correct *)
  let cfg =
    { Store.default_config with hashpower = 8; lock_count = 8; lru_count = 8;
      stats_slots = 2; lru_by_size_class = true }
  in
  let st = shared_store ~heap_mb:8 ~cfg in
  for i = 0 to 99 do
    ignore (SSt.set st (Printf.sprintf "small%d" i) (String.make 50 's'));
    ignore (SSt.set st (Printf.sprintf "large%d" i) (String.make 3000 'l'))
  done;
  for i = 0 to 99 do
    assert (SSt.get st (Printf.sprintf "small%d" i) <> None);
    assert (SSt.get st (Printf.sprintf "large%d" i) <> None)
  done;
  Alcotest.(check int) "all items live" 200 (SSt.curr_items st);
  SSt.check_invariants st

let test_single_stats_lock_mode_functional () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2; single_stats_lock = true }
  in
  let st = shared_store ~heap_mb:2 ~cfg in
  ignore (SSt.set st "a" "1");
  ignore (SSt.get st "a");
  ignore (SSt.get st "b");
  let stats = SSt.stats st in
  Alcotest.(check string) "hits under one lock" "1"
    (List.assoc "get_hits" stats);
  Alcotest.(check string) "misses under one lock" "1"
    (List.assoc "get_misses" stats);
  SSt.check_invariants st

let test_get_bumps_protect_from_eviction_pressure () =
  (* total_items only ever grows; evictions are counted separately *)
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:1 ~cfg in
  for i = 0 to 1_500 do
    ignore (SSt.set st (Printf.sprintf "k%d" i) (String.make 500 'x'))
  done;
  let stats = SSt.stats st in
  let total = int_of_string (List.assoc "total_items" stats) in
  let curr = int_of_string (List.assoc "curr_items" stats) in
  let evicted = int_of_string (List.assoc "evictions" stats) in
  Alcotest.(check int) "total = 1501 stores" 1501 total;
  Alcotest.(check bool) "eviction kept curr below total" true (curr < total);
  Alcotest.(check bool) "books balance" true (curr + evicted = total);
  SSt.check_invariants st

let test_fold_keys_enumerates_everything () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:4 ~cfg in
  for i = 0 to 49 do
    ignore (SSt.set st (Printf.sprintf "k%d" i) (String.make (i + 1) 'v'))
  done;
  let seen = SSt.fold_keys st (fun acc key ~nbytes ~exptime:_ ->
    (key, nbytes) :: acc) [] in
  Alcotest.(check int) "all keys enumerated" 50 (List.length seen);
  Alcotest.(check (option int)) "sizes reported" (Some 8)
    (List.assoc_opt "k7" seen);
  SSt.check_invariants st

let test_reap_expired_collects_proactively () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:4 ~cfg in
  for i = 0 to 19 do
    (* absolute past expiry: dead on arrival, but still occupying
       memory until something notices *)
    ignore (SSt.set st ~exptime:1_000_000_000 (Printf.sprintf "dead%d" i) "x");
    ignore (SSt.set st (Printf.sprintf "live%d" i) "y")
  done;
  Alcotest.(check int) "all 40 still linked" 40 (SSt.curr_items st);
  let reaped = SSt.reap_expired st in
  Alcotest.(check int) "reaper collected the dead" 20 reaped;
  Alcotest.(check int) "the living remain" 20 (SSt.curr_items st);
  for i = 0 to 19 do
    assert (SSt.get st (Printf.sprintf "live%d" i) <> None)
  done;
  Alcotest.(check int) "second pass finds nothing" 0 (SSt.reap_expired st);
  SSt.check_invariants st

let test_resize_doubles_and_preserves () =
  let cfg =
    { Store.default_config with hashpower = 4; lock_count = 8; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:8 ~cfg in
  for i = 0 to 199 do
    ignore (SSt.set st (Printf.sprintf "k%d" i) (string_of_int i))
  done;
  Alcotest.(check bool) "load factor high before" true
    (SSt.load_factor st > 10.0);
  Alcotest.(check bool) "resize succeeds" true (SSt.resize st);
  Alcotest.(check int) "hashpower doubled" 5
    (SSt.config st).Store.hashpower;
  for i = 0 to 199 do
    (match SSt.get st (Printf.sprintf "k%d" i) with
     | Some r -> Alcotest.(check string) "value" (string_of_int i) r.Store.value
     | None -> Alcotest.fail "key lost in resize")
  done;
  SSt.check_invariants st

let test_maybe_resize_tracks_load_factor () =
  let cfg =
    { Store.default_config with hashpower = 4; lock_count = 8; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:8 ~cfg in
  Alcotest.(check bool) "no resize while sparse" false (SSt.maybe_resize st);
  for i = 0 to 499 do
    ignore (SSt.set st (Printf.sprintf "k%d" i) "v")
  done;
  let grew = ref 0 in
  while SSt.maybe_resize st do
    Stdlib.incr grew
  done;
  Alcotest.(check bool) "grew several times" true (!grew >= 3);
  Alcotest.(check bool) "load factor now reasonable" true
    (SSt.load_factor st <= 1.5);
  for i = 0 to 499 do
    if SSt.get st (Printf.sprintf "k%d" i) = None then
      Alcotest.fail "key lost across repeated resizes"
  done;
  SSt.check_invariants st

let test_resize_under_concurrent_ops () =
  let cfg =
    { Store.default_config with hashpower = 5; lock_count = 16; lru_count = 4;
      stats_slots = 4 }
  in
  let st = shared_store ~heap_mb:16 ~cfg in
  let stop = Atomic.make false in
  let workers =
    List.init 3 (fun t ->
      Thread.create
        (fun () ->
          let rng = Random.State.make [| t |] in
          let i = ref 0 in
          while not (Atomic.get stop) do
            Stdlib.incr i;
            let k = Printf.sprintf "t%d-%d" t (Random.State.int rng 500) in
            if Random.State.bool rng then ignore (SSt.set st k k)
            else ignore (SSt.get st k)
          done)
        ())
  in
  let resizes = ref 0 in
  for _ = 1 to 4 do
    Thread.yield ();
    if SSt.resize st then Stdlib.incr resizes
  done;
  Atomic.set stop true;
  List.iter Thread.join workers;
  Alcotest.(check int) "all resizes applied" 4 !resizes;
  SSt.check_invariants st

let test_concurrent_threads_no_corruption () =
  let cfg =
    { Store.default_config with hashpower = 10; lock_count = 64; lru_count = 8;
      stats_slots = 8 }
  in
  let st = shared_store ~heap_mb:16 ~cfg in
  let threads =
    List.init 4 (fun t ->
      Thread.create
        (fun () ->
          let rng = Random.State.make [| t |] in
          for i = 0 to 2_000 do
            let k = Printf.sprintf "k%d" (Random.State.int rng 200) in
            match Random.State.int rng 5 with
            | 0 -> ignore (SSt.set st k (Printf.sprintf "t%d-%d" t i))
            | 1 | 2 -> ignore (SSt.get st k)
            | 3 -> ignore (SSt.delete st k)
            | _ -> ignore (SSt.incr st k 1L)
          done)
        ())
  in
  List.iter Thread.join threads;
  SSt.check_invariants st

(* incr/decr must not clobber the item's metadata when the new value
   no longer fits the old block and the counter is re-stored. *)
let test_incr_preserves_flags_and_exptime () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  let st = shared_store ~heap_mb:2 ~cfg in
  ignore (SSt.set st ~flags:7 ~exptime:3600 "n" "9");
  let exptime_of key =
    SSt.fold_keys st
      (fun acc k ~nbytes:_ ~exptime -> if k = key then Some exptime else acc)
      None
  in
  let exp_before = Option.get (exptime_of "n") in
  Alcotest.(check bool) "absolute expiry recorded" true (exp_before > 3600);
  (* growing 1 digit -> 20 digits overflows the block and forces the
     re-store path *)
  (match SSt.incr st "n" (Int64.neg 616L) with
   | Store.Counter _ -> ()
   | _ -> Alcotest.fail "counter expected");
  (match SSt.get st "n" with
   | Some r ->
     Alcotest.(check int) "flags survive counter re-store" 7 r.Store.flags;
     Alcotest.(check int) "value is 20 digits" 20 (String.length r.Store.value)
   | None -> Alcotest.fail "hit expected");
  Alcotest.(check int) "exptime survives counter re-store" exp_before
    (Option.get (exptime_of "n"));
  SSt.check_invariants st

(* Seeded-VM races: the same workload replayed under many perturbed
   schedules, with heap poisoning armed so any use-after-free in the
   eviction or counter paths faults instead of silently reading
   recycled memory. *)

module VSt = Store.Make (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (Vm.Sync)

let run_seeded_vm ~seed ~heap_bytes ~cfg body =
  let vm = Vm.create ~sched_seed:seed ~preempt_jitter:40 () in
  let reg =
    Shm.Region.create ~name:"vm-race-test" ~size:heap_bytes ~pkey:0 ()
  in
  let heap = Ralloc.create reg in
  Ralloc.set_poisoning heap true;
  Fun.protect
    ~finally:(fun () -> Ralloc.set_poisoning heap false)
    (fun () ->
      ignore
        (Vm.spawn vm ~name:"main" (fun () ->
           let st =
             VSt.create
               ~mem:(Mc_core.Shared_memory.of_region reg)
               ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
               cfg
           in
           body st;
           VSt.check_invariants st));
      Vm.run vm)

let test_seeded_eviction_vs_set () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2; evict_batch = 2 }
  in
  (* distinct 900-byte values against a 384 KiB region: the single
     item size class holds ~63 items, so the writers race eviction
     throughout *)
  let total_evictions = ref 0 in
  for seed = 0 to 9 do
    run_seeded_vm ~seed ~heap_bytes:(384 lsl 10) ~cfg (fun st ->
      let writers =
        List.init 3 (fun t ->
          Vm.Sync.spawn ~name:(Printf.sprintf "w%d" t) (fun () ->
            for i = 0 to 149 do
              let k = Printf.sprintf "t%d-%d" t i in
              (match i mod 5 with
               | 3 -> ignore (VSt.get st (Printf.sprintf "t%d-%d" t (i - 1)))
               | 4 -> ignore (VSt.delete st (Printf.sprintf "t%d-%d" t (i - 2)))
               | _ -> ignore (VSt.set st k (String.make 900 'x')));
              Vm.Sync.advance 50
            done))
      in
      List.iter Vm.Sync.join writers;
      let s = VSt.stats st in
      total_evictions :=
        !total_evictions + int_of_string (List.assoc "evictions" s))
  done;
  Alcotest.(check bool) "sweep exercised eviction" true (!total_evictions > 0)

let test_seeded_incr_overflow () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
      stats_slots = 2 }
  in
  for seed = 0 to 9 do
    run_seeded_vm ~seed ~heap_bytes:(2 lsl 20) ~cfg (fun st ->
      (* 2^64 - 6: a few concurrent increments wrap the counter *)
      ignore (VSt.set st "n" "18446744073709551610");
      let workers =
        List.init 3 (fun t ->
          Vm.Sync.spawn ~name:(Printf.sprintf "i%d" t) (fun () ->
            for _ = 1 to 4 do
              (match VSt.incr st "n" 2L with
               | Store.Counter _ -> ()
               | _ -> Alcotest.fail "counter expected");
              Vm.Sync.advance 30
            done))
      in
      List.iter Vm.Sync.join workers;
      (* (2^64 - 6 + 24) mod 2^64 = 18, whatever the interleaving *)
      (match VSt.get st "n" with
       | Some r -> Alcotest.(check string) "wrapped total" "18" r.Store.value
       | None -> Alcotest.fail "counter vanished"))
  done

(* ---- Seqlock read path and the int64 correctness sweep ------------------ *)

(* A CAS source past 2^62 exercises the bits a round-trip through the
   native 63-bit OCaml int silently drops. Injected by detaching (so
   the persisted source is authoritative), rewriting the control word
   raw, and attaching — the store must carry the full unsigned word
   end-to-end: issue, report via get, match via cas, survive
   check_invariants' monotonicity walk. *)
let test_cas_above_two_pow_62 () =
  let cfg =
    { Store.default_config with hashpower = 8; lock_count = 16; lru_count = 4;
      stats_slots = 4 }
  in
  let reg =
    Shm.Region.create ~name:"cas-top-bit" ~size:(4 lsl 20) ~pkey:0 ()
  in
  let heap = Ralloc.create reg in
  let mem = Mc_core.Shared_memory.of_region reg in
  let alloc = Mc_core.Ralloc_alloc.of_heap heap in
  let st = SSt.create ~mem ~alloc cfg in
  let ctrl = SSt.ctrl_off st in
  SSt.detach st;
  let big = Int64.add Int64.min_int 5L (* 2^63 + 5 as unsigned *) in
  Shm.Region.write_i64_raw reg (ctrl + Store.Layout.ctl_cas) big;
  let st = SSt.attach ~mem ~alloc cfg ~ctrl in
  Alcotest.(check bool) "stored" true (SSt.set st "k" "v" = Store.Stored);
  (match SSt.get st "k" with
   | None -> Alcotest.fail "hit expected"
   | Some r ->
     Alcotest.(check int64) "get reports all 64 bits" big r.Store.cas;
     Alcotest.(check bool) "cas matches the full unique" true
       (SSt.cas st ~cas:r.Store.cas "k" "v2" = Store.Stored);
     Alcotest.(check bool) "stale full-width unique rejected" true
       (SSt.cas st ~cas:big "k" "v3" = Store.Exists));
  (* More uniques issued above 2^63 stay unsigned-ordered. *)
  ignore (SSt.set st "k2" "w");
  let c2 = (Option.get (SSt.get st "k2")).Store.cas in
  Alcotest.(check bool) "uniques keep growing unsigned" true
    (Int64.unsigned_compare c2 big > 0);
  SSt.check_invariants st;
  (* And a detach/attach round-trip preserves the high source. *)
  SSt.detach st;
  let st = SSt.attach ~mem ~alloc cfg ~ctrl in
  ignore (SSt.set st "k3" "x");
  let c3 = (Option.get (SSt.get st "k3")).Store.cas in
  Alcotest.(check bool) "source survives detach/attach" true
    (Int64.unsigned_compare c3 c2 > 0);
  SSt.check_invariants st

(* Counter operand bounds at the store layer: 2^64-1 is a legal stored
   value (wraps on arithmetic); anything one digit longer must answer
   Non_numeric, not wrap modulo 2^64 into a quietly wrong counter. *)
let test_counter_value_bounds () =
  let st = shared_store ~heap_mb:4 ~cfg:Shared_suite.small_cfg in
  ignore (SSt.set st "max" "18446744073709551615");
  (match SSt.incr st "max" 1L with
   | Store.Counter v -> Alcotest.(check int64) "2^64-1 + 1 wraps" 0L v
   | _ -> Alcotest.fail "boundary value must stay numeric");
  ignore (SSt.set st "over" "18446744073709551616");
  (match SSt.incr st "over" 1L with
   | Store.Non_numeric -> ()
   | Store.Counter v ->
     Alcotest.failf "2^64 parsed as a counter (wrapped to %Lu)" v
   | _ -> Alcotest.fail "unexpected result");
  ignore (SSt.set st "over20" "99999999999999999999");
  (match SSt.incr st "over20" 1L with
   | Store.Non_numeric -> ()
   | Store.Counter v ->
     Alcotest.failf "20-digit overflow parsed as a counter (%Lu)" v
   | _ -> Alcotest.fail "unexpected result");
  SSt.check_invariants st

(* memcached expires negative TTLs immediately. Under the virtual
   clock [now] starts near 0, so the old "absolute time in the past"
   encoding could not represent them — the sentinel must survive
   real_exptime and both read paths must honour it. *)
let test_negative_exptime_born_dead () =
  let st = shared_store ~heap_mb:4 ~cfg:Shared_suite.small_cfg in
  Alcotest.(check bool) "stored" true
    (SSt.set st ~exptime:(-1) "dead" "v" = Store.Stored);
  Alcotest.(check bool) "born dead" true (SSt.get st "dead" = None);
  Alcotest.(check bool) "add over the corpse" true
    (SSt.add st "dead" "w" = Store.Stored);
  (match SSt.get st "dead" with
   | Some r -> Alcotest.(check string) "replacement lives" "w" r.Store.value
   | None -> Alcotest.fail "replacement must be readable");
  SSt.check_invariants st

(* The optimistic path retires reads without the stripe and reports
   itself; a reader inside a stripe group must take the locked path
   (its snapshot could deadlock against its own group). *)
let test_optimistic_path_counts () =
  let module C = Telemetry.Counters in
  let st = shared_store ~heap_mb:4 ~cfg:Shared_suite.small_cfg in
  ignore (SSt.set st "k" "v");
  let h0 = C.read C.Id.opt_hits in
  for _ = 1 to 10 do
    match SSt.get st "k" with
    | Some r -> Alcotest.(check string) "value" "v" r.Store.value
    | None -> Alcotest.fail "hit expected"
  done;
  Alcotest.(check bool) "gets retire optimistically" true
    (C.read C.Id.opt_hits - h0 >= 10);
  let h1 = C.read C.Id.opt_hits in
  SSt.with_stripes st ~stripes:[ SSt.stripe_of st "k" ] (fun () ->
    match SSt.get st "k" with
    | Some _ -> ()
    | None -> Alcotest.fail "hit expected under group");
  Alcotest.(check int) "held stripe routes to the locked path" h1
    (C.read C.Id.opt_hits)

(* Racing flush_all vs optimistic gets under seeded schedules: once
   flush_all has returned, no get that starts afterwards may return an
   item the watermark killed — the seqlock snapshot must re-read the
   watermark after validation, not before. *)
let test_seeded_flush_vs_optimistic_get () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 2; lru_count = 2;
      stats_slots = 2 }
  in
  for seed = 0 to 19 do
    run_seeded_vm ~seed ~heap_bytes:(1 lsl 20) ~cfg (fun st ->
      for i = 0 to 19 do
        ignore (VSt.set st (Printf.sprintf "pre-%d" i) "doomed")
      done;
      let flushed = ref false in
      let flusher =
        Vm.Sync.spawn ~name:"flusher" (fun () ->
          Vm.Sync.advance (100 + (seed * 37));
          VSt.flush_all st;
          flushed := true)
      in
      let readers =
        List.init 3 (fun t ->
          Vm.Sync.spawn ~name:(Printf.sprintf "g%d" t) (fun () ->
            for i = 0 to 39 do
              (* Cooperative fibers: the flag read and the get are not
                 separated by a schedule point we don't control — if
                 the flush was complete when this get began, a hit is
                 a correctness bug. *)
              let flush_done = !flushed in
              (match VSt.get st (Printf.sprintf "pre-%d" ((i + t) mod 20)) with
               | Some _ when flush_done ->
                 Alcotest.fail "optimistic get returned a flushed item"
               | _ -> ());
              Vm.Sync.advance 25
            done))
      in
      List.iter Vm.Sync.join (flusher :: readers);
      (match VSt.get st "pre-3" with
       | Some _ -> Alcotest.fail "flushed item visible at quiescence"
       | None -> ()))
  done

(* One hot key hammered by set/delete (plus eviction pressure from
   filler writers) against concurrent optimistic readers: every hit
   must be an untorn (value, flags, length) triple — the value encodes
   the flags word, so a snapshot stitched from two writes mismatches.
   Heap poisoning is armed by [run_seeded_vm], so an optimistic reader
   touching recycled memory faults (and must retry) rather than
   silently reading garbage. *)
let test_seeded_optimistic_torn_triple () =
  let cfg =
    { Store.default_config with hashpower = 6; lock_count = 2; lru_count = 2;
      stats_slots = 2; evict_batch = 2 }
  in
  for seed = 0 to 19 do
    run_seeded_vm ~seed ~heap_bytes:(384 lsl 10) ~cfg (fun st ->
      let tag_len tag = 40 + (tag mod 50) in
      let writers =
        List.init 2 (fun t ->
          Vm.Sync.spawn ~name:(Printf.sprintf "w%d" t) (fun () ->
            for i = 0 to 59 do
              let tag = (t * 100) + (i mod 7) in
              (match i mod 9 with
               | 8 -> ignore (VSt.delete st "hot")
               | _ ->
                 ignore
                   (VSt.set st ~flags:tag "hot"
                      (Printf.sprintf "%03d%s" tag
                         (String.make (tag_len tag) 'x'))));
              Vm.Sync.advance 30
            done))
      in
      let filler =
        Vm.Sync.spawn ~name:"filler" (fun () ->
          for i = 0 to 199 do
            ignore (VSt.set st (Printf.sprintf "f%d" i) (String.make 900 'f'));
            Vm.Sync.advance 40
          done)
      in
      let readers =
        List.init 2 (fun t ->
          Vm.Sync.spawn ~name:(Printf.sprintf "r%d" t) (fun () ->
            for _ = 0 to 79 do
              (match VSt.get st "hot" with
               | None -> ()
               | Some r ->
                 let tag = int_of_string (String.sub r.Store.value 0 3) in
                 Alcotest.(check int) "flags match the value's tag" tag
                   r.Store.flags;
                 Alcotest.(check int) "length matches the value's tag"
                   (3 + tag_len tag)
                   (String.length r.Store.value));
              Vm.Sync.advance 20
            done))
      in
      List.iter Vm.Sync.join ((writers @ readers) @ [ filler ]))
  done

let () =
  Alcotest.run "store"
    [ ("private+slab", Private_suite.suite);
      ("shared+ralloc", Shared_suite.suite);
      ( "eviction & concurrency",
        [ Alcotest.test_case "eviction under pressure" `Quick
            test_eviction_under_pressure;
          Alcotest.test_case "lru order respected" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "4-thread soup" `Slow
            test_concurrent_threads_no_corruption;
          Alcotest.test_case "incr preserves flags/exptime" `Quick
            test_incr_preserves_flags_and_exptime;
          Alcotest.test_case "seeded eviction vs set" `Quick
            test_seeded_eviction_vs_set;
          Alcotest.test_case "seeded incr overflow" `Quick
            test_seeded_incr_overflow ] );
      ( "seqlock & int64",
        [ Alcotest.test_case "cas above 2^62" `Quick
            test_cas_above_two_pow_62;
          Alcotest.test_case "counter value bounds" `Quick
            test_counter_value_bounds;
          Alcotest.test_case "negative exptime" `Quick
            test_negative_exptime_born_dead;
          Alcotest.test_case "optimistic path counts" `Quick
            test_optimistic_path_counts;
          Alcotest.test_case "seeded flush vs optimistic get" `Quick
            test_seeded_flush_vs_optimistic_get;
          Alcotest.test_case "seeded torn-triple hammer" `Quick
            test_seeded_optimistic_torn_triple ] );
      ( "edge cases",
        [ Alcotest.test_case "zero-length value" `Quick test_zero_length_value;
          Alcotest.test_case "relative expiry" `Quick
            test_relative_expiry_in_future;
          Alcotest.test_case "lru by size class" `Quick
            test_lru_by_size_class_mode;
          Alcotest.test_case "single stats lock mode" `Quick
            test_single_stats_lock_mode_functional;
          Alcotest.test_case "eviction bookkeeping" `Quick
            test_get_bumps_protect_from_eviction_pressure ] );
      ( "admin",
        [ Alcotest.test_case "fold_keys" `Quick
            test_fold_keys_enumerates_everything;
          Alcotest.test_case "reap expired" `Quick
            test_reap_expired_collects_proactively ] );
      ( "resize",
        [ Alcotest.test_case "doubles and preserves" `Quick
            test_resize_doubles_and_preserves;
          Alcotest.test_case "maybe_resize tracks load" `Quick
            test_maybe_resize_tracks_load_factor;
          Alcotest.test_case "resize under concurrency" `Slow
            test_resize_under_concurrent_ops ] ) ]
