(** The telemetry subsystem: sharded counters (local and shared-heap
    backends), latency histograms, the event-trace ring, and the full
    memcached [stats] surface over both codecs. *)

open Mc_protocol.Types
module Ascii = Mc_protocol.Ascii
module Binary = Mc_protocol.Binary
module C = Telemetry.Counters
module H = Telemetry.Histogram

(* Telemetry state is process-global; every test starts from a clean
   slate so the suite is order-independent. *)
let fresh () =
  Telemetry.Control.set_enabled true;
  C.reset_backend ();
  Telemetry.Timers.reset ();
  Telemetry.Trace.clear ();
  Telemetry.Trace.set_level Telemetry.Trace.Info;
  Telemetry.Span.flush_aborted ();
  Telemetry.Span.set_sampling 1;
  Telemetry.Span.set_slow_threshold_ns 0;
  Telemetry.Span.reset ();
  Telemetry.Contention.reset ()

(* ---- Counters ------------------------------------------------------- *)

let test_counters_basic () =
  fresh ();
  Alcotest.(check int) "starts at zero" 0 (C.read C.Id.get_hits);
  C.incr C.Id.get_hits;
  C.add ~n:41 C.Id.get_hits;
  Alcotest.(check int) "accumulates" 42 (C.read C.Id.get_hits);
  Alcotest.(check int) "others untouched" 0 (C.read C.Id.get_misses);
  C.reset ();
  Alcotest.(check int) "reset zeroes" 0 (C.read C.Id.get_hits)

let test_counters_striped_across_vm_threads () =
  fresh ();
  (* Each Vm thread gets its own TLS, hence its own stripe; reads must
     aggregate across all of them. *)
  let vm = Vm.create ~sched_seed:7 () in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
       let worker i =
         Vm.Sync.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
           for _ = 1 to 10 do
             C.incr C.Id.hodor_enter;
             Vm.Sync.advance 10
           done)
       in
       let ws = List.init 6 worker in
       List.iter Vm.Sync.join ws));
  Vm.run vm;
  Alcotest.(check int) "all stripes aggregate" 60 (C.read C.Id.hodor_enter)

let test_counters_toggle_off () =
  fresh ();
  C.add ~n:5 C.Id.pku_faults;
  Telemetry.Control.set_enabled false;
  C.add ~n:100 C.Id.pku_faults;
  (* reads are not gated: a snapshot after switch-off still sees the
     counts recorded while on *)
  Alcotest.(check int) "off means no bumps, reads survive" 5
    (C.read C.Id.pku_faults);
  Telemetry.Control.set_enabled true;
  C.incr C.Id.pku_faults;
  Alcotest.(check int) "back on" 6 (C.read C.Id.pku_faults)

let test_counters_kvs () =
  fresh ();
  C.incr C.Id.hodor_enter;
  C.pkey_fault 3;
  let b = C.boundary_kvs () in
  Alcotest.(check (option string))
    "boundary has crossings" (Some "1")
    (List.assoc_opt "hodor_enter" b);
  Alcotest.(check (option string))
    "nonzero per-pkey fault shows" (Some "1")
    (List.assoc_opt "pku_fault_pkey:3" b);
  Alcotest.(check (option string))
    "zero per-pkey faults elided" None
    (List.assoc_opt "pku_fault_pkey:7" b);
  Alcotest.(check bool) "boundary excludes store mirrors" false
    (List.mem_assoc "get_hits" b);
  Alcotest.(check bool) "all_kvs includes store mirrors" true
    (List.mem_assoc "get_hits" (C.all_kvs ()))

(* ---- Histograms (one implementation, shared with YCSB) -------------- *)

let test_histogram_shared_with_ycsb () =
  (* Type equality is the point: the YCSB generator's histogram IS the
     telemetry histogram. *)
  let h : H.t = Ycsb.Histogram.create () in
  List.iter (H.record h) [ 100; 200; 300; 400; 10_000 ];
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check int) "max exact" 10_000 (H.max_value h);
  Alcotest.(check int) "min exact" 100 (H.min_value h);
  let p50 = H.percentile h 50.0 and p99 = H.percentile h 99.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %d <= p99 %d <= max" p50 p99)
    true
    (p50 <= p99 && p99 <= H.max_value h);
  (* ~3% bucket resolution around the true median *)
  Alcotest.(check bool) "p50 near 300" true (p50 >= 280 && p50 <= 310);
  let kvs = H.kvs ~prefix:"op" h in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k kvs))
    [ "op:count"; "op:mean_ns"; "op:p50_ns"; "op:p99_ns"; "op:max_ns" ];
  H.reset h;
  Alcotest.(check int) "reset" 0 (H.count h)

let test_histogram_percentile_edges () =
  (* Regression: percentiles on 0/1/2-sample histograms used to report
     bucket floors — a lone sample of 1000 came back as 992, a value
     never recorded. *)
  let h = H.create () in
  Alcotest.(check int) "empty p50 is the sentinel 0" 0 (H.percentile h 50.0);
  Alcotest.(check int) "empty p99 is the sentinel 0" 0 (H.percentile h 99.0);
  H.record h 1000;
  Alcotest.(check int) "lone sample reported exactly (p50)" 1000
    (H.percentile h 50.0);
  Alcotest.(check int) "lone sample reported exactly (p99)" 1000
    (H.percentile h 99.0);
  Alcotest.(check int) "lone sample reported exactly (p0)" 1000
    (H.percentile h 0.0);
  H.record h 3000;
  let p0 = H.percentile h 0.0
  and p50 = H.percentile h 50.0
  and p99 = H.percentile h 99.0 in
  Alcotest.(check bool)
    (Printf.sprintf "two samples clamp into [min,max]: %d %d %d" p0 p50 p99)
    true
    (List.for_all (fun p -> p >= 1000 && p <= 3000) [ p0; p50; p99 ]);
  Alcotest.(check bool) "two-sample p99 reaches the larger sample" true
    (p99 >= 2900);
  (* clamping also holds when every sample lands in one bucket *)
  let h1 = H.create () in
  List.iter (H.record h1) [ 1000; 1000; 1000 ];
  Alcotest.(check int) "identical samples, exact p99" 1000
    (H.percentile h1 99.0)

let test_timers () =
  fresh ();
  List.iter (fun v -> Telemetry.Timers.record ~op:"get" v) [ 50; 60; 70 ];
  Telemetry.Timers.record ~op:"set" 500;
  Alcotest.(check (list string)) "ops sorted" [ "get"; "set" ]
    (Telemetry.Timers.ops ());
  (match Telemetry.Timers.get "get" with
   | Some h -> Alcotest.(check int) "per-op count" 3 (H.count h)
   | None -> Alcotest.fail "get histogram missing");
  Alcotest.(check bool) "kvs carries per-op summaries" true
    (List.mem_assoc "set:count" (Telemetry.Timers.kvs ()));
  Telemetry.Control.set_enabled false;
  Telemetry.Timers.record ~op:"get" 999_999;
  Telemetry.Control.set_enabled true;
  (match Telemetry.Timers.get "get" with
   | Some h -> Alcotest.(check int) "off means no samples" 3 (H.count h)
   | None -> Alcotest.fail "get histogram missing");
  Telemetry.Timers.reset ();
  Alcotest.(check (list string)) "reset clears" [] (Telemetry.Timers.ops ())

(* ---- Trace ring ------------------------------------------------------ *)

let test_trace_ring_wraps () =
  fresh ();
  let module T = Telemetry.Trace in
  let n = T.capacity + 50 in
  for i = 0 to n - 1 do
    T.emit ~at:i ~sev:T.Info ~subsys:"test" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "emitted counts everything" n (T.emitted ());
  let evs = T.dump () in
  Alcotest.(check int) "ring holds capacity" T.capacity (List.length evs);
  (match evs with
   | first :: _ ->
     Alcotest.(check int) "oldest surviving seq" 50 first.T.seq
   | [] -> Alcotest.fail "empty dump");
  let last = List.nth evs (List.length evs - 1) in
  Alcotest.(check int) "newest seq" (n - 1) last.T.seq;
  Alcotest.(check int) "timestamp carried" (n - 1) last.T.at;
  let tail = T.dump ~n:10 () in
  Alcotest.(check int) "bounded dump" 10 (List.length tail);
  Alcotest.(check int) "bounded dump keeps newest"
    (n - 10)
    (List.hd tail).T.seq;
  Alcotest.(check bool) "render is printable" true
    (String.length (T.render last) > 0);
  T.clear ();
  Alcotest.(check int) "clear" 0 (List.length (T.dump ()))

let test_trace_severity_filter () =
  fresh ();
  let module T = Telemetry.Trace in
  T.set_level T.Warn;
  Alcotest.(check bool) "info filtered" false (T.would_log T.Info);
  Alcotest.(check bool) "error passes" true (T.would_log T.Error);
  T.emit ~sev:T.Info ~subsys:"test" "dropped";
  T.emit ~sev:T.Error ~subsys:"test" "kept";
  let evs = T.dump () in
  Alcotest.(check int) "only the error landed" 1 (List.length evs);
  Alcotest.(check string) "kept message" "kept" (List.hd evs).T.msg;
  Telemetry.Control.set_enabled false;
  Alcotest.(check bool) "off filters everything" false (T.would_log T.Error);
  T.emit ~sev:T.Error ~subsys:"test" "silent";
  Alcotest.(check int) "off means no events" 1 (List.length (T.dump ()))

let test_trace_subsys_filter () =
  fresh ();
  let module T = Telemetry.Trace in
  T.emit ~sev:T.Info ~subsys:"vm" "a";
  T.emit ~sev:T.Warn ~subsys:"hodor" "b";
  T.emit ~sev:T.Error ~subsys:"vm" "c";
  Alcotest.(check int) "subsys filter keeps one tag" 2
    (List.length (T.dump ~subsys:"vm" ()));
  Alcotest.(check int) "severity floor" 2
    (List.length (T.dump ~min_sev:T.Warn ()));
  (match T.dump ~subsys:"vm" ~min_sev:T.Warn () with
   | [ e ] -> Alcotest.(check string) "filters compose" "c" e.T.msg
   | evs ->
     Alcotest.fail (Printf.sprintf "expected 1 event, got %d"
                      (List.length evs)));
  (* filters apply before the n-cut: "the last 1 vm event" is c, not b *)
  (match T.dump ~n:1 ~subsys:"vm" () with
   | [ e ] -> Alcotest.(check string) "n cuts after filtering" "c" e.T.msg
   | _ -> Alcotest.fail "expected 1 event");
  Alcotest.(check (list string)) "subsystems listed sorted" [ "hodor"; "vm" ]
    (T.subsystems ());
  (* the shell's severity parser, including the "warning" alias *)
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) ("severity_of_string " ^ s) true
        (T.severity_of_string s = expect))
    [ ("debug", Some T.Debug); ("warn", Some T.Warn);
      ("warning", Some T.Warn); ("error", Some T.Error); ("bogus", None) ]

(* ---- The stats surface through the executor ------------------------- *)

module E =
  Mc_server.Executor.Make (Mc_core.Private_memory) (Mc_core.Slab)
    (Platform.Real_sync)

let fresh_store () =
  let arena = Mc_core.Private_memory.create ~limit:(64 lsl 20) in
  let slab = Mc_core.Slab.create ~arena ~mem_limit:(32 lsl 20) in
  E.Store.create ~mem:arena ~alloc:slab
    { Mc_core.Store.default_config with hashpower = 8; lock_count = 8;
      lru_count = 2; stats_slots = 2 }

let stats_of = function
  | Stats_reply kvs -> kvs
  | _ -> Alcotest.fail "expected Stats_reply"

let test_executor_stats_surface () =
  fresh ();
  let st = fresh_store () in
  ignore (E.execute st (Set { key = "a"; flags = 0; exptime = 0;
                              data = "1"; noreply = false }));
  ignore (E.execute st (Set { key = "b"; flags = 0; exptime = 0;
                              data = String.make 200 'b'; noreply = false }));
  ignore (E.execute st (Get [ "a" ]));
  ignore (E.execute st (Get [ "nope" ]));
  let kvs = stats_of (E.execute st (Stats None)) in
  let v k =
    match List.assoc_opt k kvs with
    | Some s -> int_of_string s
    | None -> Alcotest.fail ("stats missing key " ^ k)
  in
  Alcotest.(check int) "get_hits" 1 (v "get_hits");
  Alcotest.(check int) "get_misses" 1 (v "get_misses");
  Alcotest.(check int) "cmd_get" 2 (v "cmd_get");
  Alcotest.(check int) "cmd_set" 2 (v "cmd_set");
  Alcotest.(check int) "curr_items" 2 (v "curr_items");
  Alcotest.(check int) "total_items" 2 (v "total_items");
  Alcotest.(check int) "evictions" 0 (v "evictions");
  Alcotest.(check int) "expired_unfetched" 0 (v "expired_unfetched");
  Alcotest.(check int) "cas_badval" 0 (v "cas_badval");
  (* boundary counters ride along in the same reply *)
  Alcotest.(check bool) "hodor counters present" true
    (List.mem_assoc "hodor_enter" kvs);
  Alcotest.(check bool) "pku counters present" true
    (List.mem_assoc "pku_faults" kvs);
  (* stats items: per-LRU item counts *)
  let items = stats_of (E.execute st (Stats (Some "items"))) in
  let total_listed =
    List.fold_left
      (fun acc (k, v) ->
        if String.length k > 6 && String.sub k (String.length k - 6) 6 = "number"
        then acc + int_of_string v
        else acc)
      0 items
  in
  Alcotest.(check int) "items lists both" 2 total_listed;
  (* stats slabs: per-class allocator occupancy *)
  let slabs = stats_of (E.execute st (Stats (Some "slabs"))) in
  Alcotest.(check bool) "slabs has total_malloced" true
    (List.mem_assoc "total_malloced" slabs);
  Alcotest.(check bool) "slabs has limit_maxbytes" true
    (List.mem_assoc "limit_maxbytes" slabs);
  Alcotest.(check bool) "slabs has a chunk_size row" true
    (List.exists
       (fun (k, _) ->
         String.length k > 10
         && String.sub k (String.length k - 10) 10 = "chunk_size")
       slabs);
  (* stats latency (extension): executor-recorded per-op histograms *)
  let lat = stats_of (E.execute st (Stats (Some "latency"))) in
  Alcotest.(check bool) "latency has get summary" true
    (List.mem_assoc "get:count" lat);
  Alcotest.(check bool) "latency has set summary" true
    (List.mem_assoc "set:count" lat);
  (* unknown argument is a client error *)
  (match E.execute st (Stats (Some "bogus")) with
   | Client_error _ -> ()
   | _ -> Alcotest.fail "expected Client_error");
  (* stats reset zeroes tallies but keeps the item gauges *)
  (match E.execute st (Stats (Some "reset")) with
   | Reset -> ()
   | _ -> Alcotest.fail "expected Reset");
  let kvs = stats_of (E.execute st (Stats None)) in
  let v k = int_of_string (List.assoc k kvs) in
  Alcotest.(check int) "get_hits zeroed" 0 (v "get_hits");
  Alcotest.(check int) "cmd_set zeroed" 0 (v "cmd_set");
  Alcotest.(check int) "hodor_enter zeroed" 0
    (int_of_string (List.assoc "hodor_enter" kvs));
  Alcotest.(check int) "curr_items survives reset" 2 (v "curr_items");
  Alcotest.(check int) "total_items survives reset" 2 (v "total_items");
  Alcotest.(check bool) "latency histograms cleared" true
    (Telemetry.Timers.get "get" = None)

let test_executor_latency_off () =
  fresh ();
  let st = fresh_store () in
  Telemetry.Control.set_enabled false;
  ignore (E.execute st (Get [ "k" ]));
  Telemetry.Control.set_enabled true;
  Alcotest.(check bool) "no histogram recorded while off" true
    (Telemetry.Timers.get "get" = None)

(* ---- Protocol conformance: all four stats forms, both codecs -------- *)

let test_stats_commands_roundtrip_ascii () =
  List.iter
    (fun cmd ->
      let wire = Ascii.encode_command cmd in
      let parsed, consumed = Ascii.parse_command wire in
      Alcotest.(check int) "consumed" (String.length wire) consumed;
      Alcotest.(check bool)
        (Printf.sprintf "ascii roundtrip %s" (Ascii.encode_command cmd))
        true (parsed = cmd))
    [ Stats None; Stats (Some "items"); Stats (Some "slabs");
      Stats (Some "reset") ]

let test_stats_commands_roundtrip_binary () =
  List.iter
    (fun cmd ->
      let wire = Binary.encode_command cmd in
      let parsed, consumed = Binary.parse_command wire in
      Alcotest.(check int) "consumed" (String.length wire) consumed;
      Alcotest.(check bool) "binary roundtrip" true (parsed = cmd))
    [ Stats None; Stats (Some "items"); Stats (Some "slabs");
      Stats (Some "reset") ]

let test_stats_arg_not_dropped_ascii () =
  (* The bug this PR fixes: "stats items" used to parse as plain
     [Stats], silently dropping the argument. *)
  (match Ascii.parse_command "stats items\r\n" with
   | Stats (Some "items"), _ -> ()
   | _ -> Alcotest.fail "stats argument dropped by the ASCII parser");
  match Ascii.parse_command "stats a b\r\n" with
  | _ -> Alcotest.fail "two stats arguments must be rejected"
  | exception Parse_error _ -> ()

let test_stats_replies_roundtrip () =
  let reply = Stats_reply [ ("pid", "1"); ("get_hits", "42") ] in
  (match Ascii.parse_response (Ascii.encode_response reply) with
   | Stats_reply [ ("pid", "1"); ("get_hits", "42") ] -> ()
   | _ -> Alcotest.fail "ascii stats reply");
  (match
     Binary.parse_response ~for_cmd:(Stats (Some "items"))
       (Binary.encode_response ~for_op:Binary.Op.stat reply)
   with
   | Stats_reply [ ("pid", "1"); ("get_hits", "42") ] -> ()
   | _ -> Alcotest.fail "binary stats reply");
  (* RESET, both codecs *)
  (match Ascii.parse_response (Ascii.encode_response Reset) with
   | Reset -> ()
   | _ -> Alcotest.fail "ascii RESET");
  match
    Binary.parse_response ~for_cmd:(Stats (Some "reset"))
      (Binary.encode_response ~for_op:Binary.Op.stat Reset)
  with
  | Reset -> ()
  | _ -> Alcotest.fail "binary RESET"

(* ---- Live wire: the stats family over a running server -------------- *)

module VCl = Core.Client.Make (Vm.Sync)
module VSrv = Mc_server.Server.Make (Vm.Sync)

let in_vm f =
  let vm = Vm.create () in
  ignore (Vm.spawn vm ~name:"main" f);
  Vm.run vm

let fresh_srv = ref 0

let over_the_wire protocol =
  fresh ();
  incr fresh_srv;
  let client_protocol =
    match protocol with
    | Mc_server.Server.Ascii -> VCl.Sock.Ascii
    | Mc_server.Server.Binary -> VCl.Sock.Binary
  in
  let name = Printf.sprintf "telemetry-srv-%d" !fresh_srv in
  in_vm (fun () ->
    let srv =
      VSrv.start
        ~cfg:
          { Mc_server.Server.default_config with workers = 2; protocol;
            store =
              { Mc_core.Store.default_config with hashpower = 8;
                lock_count = 8; lru_count = 2; stats_slots = 2;
                lru_by_size_class = true } }
        ~name ()
    in
    let c = VCl.Sock.connect ~protocol:client_protocol ~name () in
    ignore (VCl.Sock.set c "wire" "1");
    ignore (VCl.Sock.get c "wire");
    ignore (VCl.Sock.get c "miss");
    let kvs = VCl.Sock.stats c in
    let v k =
      match List.assoc_opt k kvs with
      | Some s -> int_of_string s
      | None -> Alcotest.fail ("wire stats missing " ^ k)
    in
    Alcotest.(check int) "wire get_hits" 1 (v "get_hits");
    Alcotest.(check int) "wire get_misses" 1 (v "get_misses");
    Alcotest.(check int) "wire curr_items" 1 (v "curr_items");
    Alcotest.(check bool) "wire boundary counters" true
      (List.mem_assoc "pku_faults" kvs);
    Alcotest.(check bool) "wire stats items" true
      (VCl.Sock.stats ~arg:"items" c <> []);
    Alcotest.(check bool) "wire stats slabs" true
      (List.mem_assoc "total_malloced" (VCl.Sock.stats ~arg:"slabs" c));
    (* the causal-span surface, over the wire: phase self times must
       sum (exactly — integer attribution) to the e2e total *)
    let phase_sum ph =
      List.fold_left
        (fun acc (k, v) ->
          let is_self =
            String.length k > 14
            && String.sub k 0 6 = "phase:"
            && String.sub k (String.length k - 8) 8 = ":self_ns"
          in
          if is_self then acc + int_of_string v else acc)
        0 ph
    in
    let ph = VCl.Sock.stats ~arg:"phases" c in
    let pv k =
      match List.assoc_opt k ph with
      | Some s -> int_of_string s
      | None -> Alcotest.fail ("stats phases missing " ^ k)
    in
    let count_before = pv "e2e:count" in
    Alcotest.(check bool) "wire phases folded traces" true (count_before > 0);
    Alcotest.(check int) "wire phases sum to e2e" (pv "e2e:total_ns")
      (phase_sum ph);
    Alcotest.(check bool) "wire phases include the parse phase" true
      (List.mem_assoc "phase:parse:self_ns" ph);
    let ct = VCl.Sock.stats ~arg:"contention" c in
    Alcotest.(check bool) "wire contention summary" true
      (List.mem_assoc "contention:acquisitions" ct);
    Alcotest.(check bool) "wire stats reset acked" true
      (VCl.Sock.stats_reset c);
    let kvs = VCl.Sock.stats c in
    Alcotest.(check (option string)) "wire get_hits zeroed" (Some "0")
      (List.assoc_opt "get_hits" kvs);
    Alcotest.(check (option string)) "wire curr_items survives" (Some "1")
      (List.assoc_opt "curr_items" kvs);
    (* reset cleared the phase and contention accumulators too; the
       requests since the reset re-mint a few traces, so "cleared"
       means "far fewer than before", with the invariant intact *)
    let ph = VCl.Sock.stats ~arg:"phases" c in
    let pv k = int_of_string (List.assoc k ph) in
    Alcotest.(check bool)
      (Printf.sprintf "wire reset cleared phases (%d -> %d)" count_before
         (pv "e2e:count"))
      true
      (pv "e2e:count" < count_before);
    Alcotest.(check int) "wire phases still sum after reset"
      (pv "e2e:total_ns") (phase_sum ph);
    VCl.Sock.quit c;
    VSrv.stop srv)

let test_stats_over_ascii_server () = over_the_wire Mc_server.Server.Ascii

let test_stats_over_binary_server () = over_the_wire Mc_server.Server.Binary

(* ---- Shared-heap backend: counters live in the store file ----------- *)

module Cl = Core.Client.Make (Platform.Real_sync)
module Plib = Cl.Plib
module Process = Simos.Process

let test_shared_backend_survives_restart () =
  fresh ();
  let disk = Filename.temp_file "telemetry" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove disk)
    (fun () ->
      let owner = Process.make ~uid:1000 "bk-telemetry" in
      let cfg =
        { Mc_core.Store.default_config with hashpower = 7; lock_count = 8;
          lru_count = 2; stats_slots = 2 }
      in
      let p =
        Plib.create ~store_cfg:cfg ~path:"/shm/telemetry-a"
          ~size:(2 lsl 20) ~owner ()
      in
      ignore (Plib.set p "k" "v");
      ignore (Plib.get p "k");
      ignore (Plib.get p "missing");
      let crossings = C.read C.Id.hodor_enter in
      Alcotest.(check bool) "crossings counted in shared heap" true
        (crossings >= 3);
      Alcotest.(check int) "balanced" crossings (C.read C.Id.hodor_exit);
      Alcotest.(check bool) "pkru writes counted" true
        (C.read C.Id.pkru_writes > 0);
      Alcotest.(check bool) "allocator traffic counted" true
        (C.read C.Id.alloc_calls > 0);
      (* the block really is rooted in the heap (root inspection is a
         kernel-side act: the heap is sealed outside library calls) *)
      Alcotest.(check bool) "telemetry root set" true
        (Shm.Region.kernel_mode (fun () ->
           Ralloc.get_root (Plib.heap p) Core.Plib_store.root_telemetry)
         <> 0);
      Plib.shutdown p ~disk_path:disk;
      (* shutdown restored the process-local backend: fresh counts *)
      Alcotest.(check int) "local backend after shutdown" 0
        (C.read C.Id.hodor_enter);
      (* restart maps the flushed heap: the counts come back with it *)
      let p2 =
        Plib.restart ~store_cfg:cfg ~disk_path:disk ~path:"/shm/telemetry-b"
          ~owner ()
      in
      Fun.protect
        ~finally:(fun () ->
          Simos.Sim_fs.unlink "/shm/telemetry-b";
          Hodor.Library.release (Plib.library p2);
          C.reset_backend ())
        (fun () ->
          Alcotest.(check int) "crossings survive restart" crossings
            (C.read C.Id.hodor_enter);
          ignore (Plib.get p2 "k");
          Alcotest.(check bool) "and keep counting" true
            (C.read C.Id.hodor_enter > crossings)))

(* ---- Flight recorder & forensics ------------------------------------ *)

module Fl = Telemetry.Flight
module F = Telemetry.Forensics

let fresh_flight () =
  fresh ();
  Fl.reset_backend ();
  Fl.reset ()

(* Every classifier arm from synthesized breadcrumbs, including
   mid-ring-drain (end-to-end the crash sweep only ever kills ring
   *clients*; the drain state lives in server workers). *)
let test_forensics_classifier_arms () =
  fresh_flight ();
  let r = F.analyze () in
  Alcotest.(check bool) "empty ring classifies idle" true
    (r.F.f_class = F.Idle);
  Fl.record Fl.Cross_enter ~a:1;
  Fl.record Fl.Op_dispatch ~a:2 ~b:(-1) ~c:5;
  Fl.note_death ();
  let r = F.analyze () in
  Alcotest.(check bool) "open crossing -> mid-crossing" true
    (r.F.f_class = F.Mid_crossing);
  Alcotest.(check int) "crossing depth named" 1 r.F.f_depth;
  Alcotest.(check bool) "victim came from the death note" true r.F.f_noted;
  Fl.record Fl.Ring_drain_begin ~a:1 ~b:7 ~c:12;
  let r = F.analyze () in
  Alcotest.(check bool) "drain begun, never ended -> mid-ring-drain" true
    (r.F.f_class = F.Mid_ring_drain);
  Alcotest.(check int) "drain connection named" 7 r.F.f_conn;
  Alcotest.(check int) "drain window named" 12 r.F.f_msgs;
  Fl.record Fl.Stripe_acquire ~a:1 ~b:3;
  let r = F.analyze () in
  Alcotest.(check bool) "held stripe outranks the drain" true
    (r.F.f_class = F.Holding_stripes);
  Alcotest.(check (list int)) "held stripe named" [ 3 ] r.F.f_stripes;
  Alcotest.(check bool) "report is well-formed" true (F.well_formed r);
  (* Balance everything: the lane's story returns to idle. *)
  Fl.record Fl.Stripe_release ~a:0 ~b:3;
  Fl.record Fl.Ring_drain_end ~a:0 ~b:7 ~c:12;
  Fl.record Fl.Cross_exit ~a:0;
  Fl.clear_victim ();
  let r = F.analyze () in
  Alcotest.(check bool) "balanced lane classifies idle" true
    (r.F.f_class = F.Idle);
  Fl.reset ()

(* The breadcrumb window wraps: only the last [depth] records survive,
   and the survivors are the *newest* ones in publication order. *)
let test_flight_window_wraps () =
  fresh_flight ();
  let total = (2 * Fl.depth) + 17 in
  for i = 1 to total do
    Fl.record Fl.Op_dispatch ~a:(i mod 16) ~b:i ~c:0
  done;
  let lane =
    match
      List.filteri (fun _ c -> c > 0) (Fl.lane_counts ()) |> List.length
    with
    | 1 ->
      (* exactly one lane took records; find its index *)
      let rec find i = function
        | c :: _ when c > 0 -> i
        | _ :: rest -> find (i + 1) rest
        | [] -> Alcotest.fail "no lane took records"
      in
      find 0 (Fl.lane_counts ())
    | n -> Alcotest.fail (Printf.sprintf "%d lanes took records" n)
  in
  let entries = Fl.dump_lane lane in
  Alcotest.(check bool)
    (Printf.sprintf "window bounded by depth (%d entries)"
       (List.length entries))
    true
    (List.length entries <= Fl.depth && List.length entries > 0);
  let last = List.nth entries (List.length entries - 1) in
  Alcotest.(check int) "newest record survives" total last.Fl.e_b;
  let rec consecutive = function
    | a :: (b : Fl.entry) :: rest ->
      a.Fl.e_pos + 1 = b.e_pos && consecutive (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "survivors are consecutive in publication order"
    true (consecutive entries);
  Fl.reset ()

(* Severity >= Error trace lines are snapshotted into the shared
   flight block (the host-process trace ring dies with the victim;
   the snapshot is what the post-mortem can still read). *)
let test_flight_trace_snapshot () =
  fresh_flight ();
  Telemetry.Trace.emit ~sev:Telemetry.Trace.Info ~subsys:"t" "routine line";
  Telemetry.Trace.emit ~sev:Telemetry.Trace.Error ~subsys:"t"
    "fatal: boom at site 42";
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let snaps = Fl.dump_traces () in
  Alcotest.(check bool) "error line snapshotted" true
    (List.exists (fun s -> contains s.Fl.t_msg "boom at site 42") snaps);
  Alcotest.(check bool) "info line not snapshotted" true
    (not (List.exists (fun s -> contains s.Fl.t_msg "routine line") snaps));
  (* The forensic report replays the snapshot. *)
  let r = F.analyze () in
  Alcotest.(check bool) "report carries the snapshot" true
    (List.exists (fun s -> contains s.Fl.t_msg "boom") r.F.f_traces);
  Fl.reset ()

(* The recorder's settings surface (depth, lanes, publish protocol)
   is part of [stats settings]. *)
let test_flight_settings_surface () =
  fresh_flight ();
  let kvs = Fl.settings_kvs () in
  Alcotest.(check (option string)) "depth surfaced"
    (Some (string_of_int Fl.depth))
    (List.assoc_opt "flight_depth" kvs);
  Alcotest.(check (option string)) "publish-last surfaced" (Some "1")
    (List.assoc_opt "flight_publish_last" kvs)

let () =
  Alcotest.run "telemetry"
    [ ( "counters",
        [ Alcotest.test_case "basic add/read/reset" `Quick test_counters_basic;
          Alcotest.test_case "striped across vm threads" `Quick
            test_counters_striped_across_vm_threads;
          Alcotest.test_case "toggle off" `Quick test_counters_toggle_off;
          Alcotest.test_case "kv rendering" `Quick test_counters_kvs ] );
      ( "histograms",
        [ Alcotest.test_case "shared with ycsb" `Quick
            test_histogram_shared_with_ycsb;
          Alcotest.test_case "percentile edge cases" `Quick
            test_histogram_percentile_edges;
          Alcotest.test_case "keyed timers" `Quick test_timers ] );
      ( "trace",
        [ Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "severity filter" `Quick
            test_trace_severity_filter;
          Alcotest.test_case "subsystem filter" `Quick
            test_trace_subsys_filter ] );
      ( "stats-surface",
        [ Alcotest.test_case "executor stats forms" `Quick
            test_executor_stats_surface;
          Alcotest.test_case "latency off" `Quick test_executor_latency_off ] );
      ( "protocol",
        [ Alcotest.test_case "ascii command forms" `Quick
            test_stats_commands_roundtrip_ascii;
          Alcotest.test_case "binary command forms" `Quick
            test_stats_commands_roundtrip_binary;
          Alcotest.test_case "ascii arg regression" `Quick
            test_stats_arg_not_dropped_ascii;
          Alcotest.test_case "replies incl. RESET" `Quick
            test_stats_replies_roundtrip;
          Alcotest.test_case "live ascii server" `Quick
            test_stats_over_ascii_server;
          Alcotest.test_case "live binary server" `Quick
            test_stats_over_binary_server ] );
      ( "shared-heap",
        [ Alcotest.test_case "counters survive restart" `Quick
            test_shared_backend_survives_restart ] );
      ( "flight",
        [ Alcotest.test_case "classifier arms" `Quick
            test_forensics_classifier_arms;
          Alcotest.test_case "window wraps" `Quick test_flight_window_wraps;
          Alcotest.test_case "trace snapshot" `Quick
            test_flight_trace_snapshot;
          Alcotest.test_case "settings surface" `Quick
            test_flight_settings_surface ] ) ]
