(** The red team: adversarial scenarios against the protection
    boundary, the seeded protocol fuzzer, and the hostile-flush storm
    against the optimistic read path.

    The heart of the suite is the attack matrix: every scenario in
    {!Redteam.Scenarios.all} runs twice — once with its defense
    reverted (the pre-fix stack, where the attack must BREACH) and
    once against the shipped stack (where it must be BLOCKED). An
    attack that cannot breach the unhardened stack is a broken attack;
    a hardened breach is a broken defense. Both fail the suite. *)

module S = Redteam.Scenarios
module M = Redteam.Matrix
module F = Redteam.Fuzz
module P = Mc_protocol.Types

(* ---- The attack matrix ---------------------------------------------- *)

let test_attack_matrix () =
  let rows = M.collect () in
  Alcotest.(check int) "every scenario ran" (List.length S.all)
    (List.length rows);
  M.emit rows;
  List.iter
    (fun (r : M.row) ->
      (match r.M.unhardened with
       | S.Breached _ -> ()
       | S.Blocked m ->
         Alcotest.failf
           "%s: attack failed to breach the UNHARDENED stack — the red half \
            of the red/green pair is broken (%s)"
           r.M.scenario m);
      match r.M.hardened with
      | S.Blocked _ -> ()
      | S.Breached m ->
        Alcotest.failf "%s: attack breached the HARDENED stack: %s"
          r.M.scenario m)
    rows

(* ---- Gadget-scan soundness (property) ------------------------------- *)

(* Mutating any admitted binary so that its bytes contain a
   pkru-writing gadget sequence must flip admission to rejected —
   wherever the gadget lands and whichever flavor it is. *)
let qcheck_gadget_scan_soundness =
  QCheck.Test.make ~name:"gadget byte injection flips admission" ~count:100
    QCheck.(triple small_nat small_nat bool)
    (fun (seed, pos_seed, use_xrstor) ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let n = 3 + Random.State.int rng 6 in
      let insns =
        Array.init n (fun _ ->
          match Random.State.int rng 4 with
          | 0 -> Pku.Insn.Compute (1 + Random.State.int rng 9)
          | 1 -> Pku.Insn.Ret
          | 2 ->
            (* benign data: printable bytes, no 0x0f anywhere *)
            Pku.Insn.Data
              (String.init
                 (1 + Random.State.int rng 12)
                 (fun _ -> Char.chr (0x20 + Random.State.int rng 0x50)))
          | _ -> Pku.Insn.Compute 1)
      in
      let clean = Pku.Insn.make (Printf.sprintf "qc-clean-%d" seed) insns in
      (match Hodor.Loader.admit (Pku.Debug_regs.create ()) clean with
       | Hodor.Loader.Admitted _ -> ()
       | Hodor.Loader.Rejected m ->
         QCheck.Test.fail_reportf "clean binary rejected: %s" m);
      let island =
        if use_xrstor then
          Redteam.Gadget.xrstor_island ~pkru_value:Pku.Pkru.all_enabled
        else Redteam.Gadget.wrpkru_island ~pkru_value:Pku.Pkru.all_enabled
      in
      let at = pos_seed mod (n + 1) in
      let mutated =
        Pku.Insn.make
          (Printf.sprintf "qc-evil-%d-%d-%b" seed pos_seed use_xrstor)
          (Array.init (n + 1) (fun i ->
             if i < at then insns.(i)
             else if i = at then Pku.Insn.Data island
             else insns.(i - 1)))
      in
      match Hodor.Loader.admit (Pku.Debug_regs.create ()) mutated with
      | Hodor.Loader.Rejected _ -> true
      | Hodor.Loader.Admitted _ ->
        QCheck.Test.fail_reportf
          "binary still admitted with a %s gadget spliced at insn %d"
          (if use_xrstor then "xrstor" else "wrpkru")
          at)

(* ---- Fuzzer: red demonstration then the green campaign -------------- *)

(* The canonical killer input from the unhardened era: a negative data
   length that reaches String.sub. The corpus replays it; here we
   revert the parser hardening and check the fuzzer's crash oracle
   still catches it — proof the oracle is live, not vacuous. *)
let killer_input = "set k0 0 0 -2\r\nxx\r\n"

let test_fuzz_oracle_catches_unhardened_crash () =
  P.parser_hardening := false;
  Fun.protect ~finally:(fun () -> P.parser_hardening := true) @@ fun () ->
  match F.run_input F.Ascii killer_input with
  | [] -> Alcotest.fail "unhardened parser survived the negative length"
  | fs ->
    Alcotest.(check bool)
      "failure is a crash" true
      (List.exists (function F.Crash _ -> true | _ -> false) fs)

let test_killer_input_hardened () =
  Alcotest.(check (list string))
    "hardened parser survives the killer input" []
    (List.map F.failure_string (F.run_input F.Ascii killer_input))

let seeds_cap () =
  match Sys.getenv_opt "REDTEAM_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 2)
  | None -> 2

let test_fuzz_campaign () =
  for seed = 1 to seeds_cap () do
    let v = F.run ~cases:F.default_cases ~seed () in
    match v.F.v_failures with
    | [] -> ()
    | (proto, input, f) :: _ ->
      Alcotest.failf "seed %d [%s]: %s (input %S)" seed
        (F.proto_string proto) (F.failure_string f) input
  done

(* Same campaign, attacker bound to tenant A with tenant B's secret
   across the namespace boundary; every case carries a forged-prefix
   or prefix-splice mutation. The leak oracle is the isolation proof. *)
let test_fuzz_tenant_campaign () =
  for seed = 1 to seeds_cap () do
    let v = F.run_tenant ~cases:F.default_cases ~seed () in
    match v.F.v_failures with
    | [] -> ()
    | (proto, input, f) :: _ ->
      Alcotest.failf "tenant seed %d [%s]: %s (input %S)" seed
        (F.proto_string proto) (F.failure_string f) input
  done

(* Red half of the tenant fuzz pair: with namespace enforcement
   reverted, the forged prefix must actually reach the victim's value
   — proof the leak oracle bites. *)
let test_fuzz_tenant_oracle_catches_unhardened_leak () =
  Mc_core.Tenant.namespace_enforced := false;
  Fun.protect
    ~finally:(fun () -> Mc_core.Tenant.namespace_enforced := true)
  @@ fun () ->
  match F.run_input ~tenant:F.tenant_a F.Ascii "get tb/secret\r\n" with
  | [] ->
    Alcotest.fail
      "unhardened namespace let the forged prefix through unnoticed"
  | fs ->
    Alcotest.(check bool)
      "failure is a leak" true
      (List.exists (function F.Leak _ -> true | _ -> false) fs)

(* ---- Corpus replay --------------------------------------------------- *)

(* Every interesting input the fuzzer (or a bug report) ever surfaced
   lives in test/corpus/ and replays deterministically: file prefix
   picks the protocol, file bytes are the attacker's exact input, and
   all oracles must stay green. *)
let test_corpus_replay () =
  (* dune runtest runs with cwd = the test dir; dune exec does not —
     fall back to the executable's own directory *)
  let dir =
    List.find_opt Sys.file_exists
      [ "corpus"; "test/corpus";
        Filename.concat (Filename.dirname Sys.executable_name) "corpus" ]
    |> function
    | Some d -> d
    | None -> Alcotest.fail "corpus directory not found"
  in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  if List.length files < 6 then
    Alcotest.failf "corpus too small: %d files" (List.length files);
  List.iter
    (fun name ->
      match F.proto_of_filename name with
      | None -> Alcotest.failf "corpus file %S has no protocol prefix" name
      | Some proto ->
        let ic = open_in_bin (Filename.concat dir name) in
        let input =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match F.run_input ?tenant:(F.tenant_of_filename name) proto input with
         | [] -> ()
         | f :: _ ->
           Alcotest.failf "corpus %S: %s" name (F.failure_string f)))
    files;
  (* the tenant corpus must actually exist: forged-prefix and
     prefix-splice inputs replay through the tenant harness *)
  let tenant_files =
    List.filter (fun n -> F.tenant_of_filename n <> None) files
  in
  if List.length tenant_files < 2 then
    Alcotest.failf "tenant corpus too small: %d files"
      (List.length tenant_files)

(* ---- Hostile flush storm vs the optimistic read path ----------------- *)

(* An attacker with nothing but flush_all and eviction pressure tries
   to make the seqlock read path serve torn or stale-beyond-flush
   values. Readers race gets against a storm of flushes, churn-driven
   evictions and re-sets under seeded schedules; every get must return
   either a miss or the exact expected bytes. *)
module VStore = Mc_core.Store.Make (Mc_core.Private_memory) (Mc_core.Slab) (Vm.Sync)

let test_hostile_flush_storm () =
  List.iter
    (fun seed ->
      let arena = Mc_core.Private_memory.create ~limit:(8 lsl 20) in
      let slab = Mc_core.Slab.create ~arena ~mem_limit:(4 lsl 20) in
      let cfg =
        { Mc_core.Store.default_config with
          hashpower = 6; lock_count = 4; lru_count = 2; stats_slots = 4;
          optimistic_reads = true }
      in
      let store = VStore.create ~mem:arena ~alloc:slab cfg in
      let keys = List.init 8 (fun i -> Printf.sprintf "h%d" i) in
      let expected k = "stable-value-" ^ k in
      let vm = Vm.create ~sched_seed:seed ~preempt_jitter:30 () in
      let bad = ref None in
      for r = 0 to 2 do
        ignore
          (Vm.spawn vm
             ~name:(Printf.sprintf "reader-%d" r)
             (fun () ->
               for _ = 1 to 40 do
                 List.iter
                   (fun k ->
                     (match VStore.get store k with
                      | Some g when g.Mc_core.Store.value <> expected k ->
                        bad :=
                          Some
                            (Printf.sprintf
                               "seed %d: reader saw %S for %s (want %S or a \
                                miss)"
                               seed g.Mc_core.Store.value k (expected k))
                      | _ -> ());
                     Vm.Sync.advance 7)
                   keys
               done))
      done;
      ignore
        (Vm.spawn vm ~name:"flusher" (fun () ->
             for i = 1 to 30 do
               VStore.flush_all store;
               Vm.Sync.advance 13;
               (* churn well past the slab limit so eviction runs hot *)
               for j = 0 to 7 do
                 ignore
                   (VStore.set store
                      (Printf.sprintf "junk-%d-%d" i j)
                      (String.make 8192 'j'))
               done;
               List.iter
                 (fun k -> ignore (VStore.set store k (expected k)))
                 keys;
               Vm.Sync.advance 11
             done));
      Vm.run vm;
      (match !bad with None -> () | Some m -> Alcotest.fail m);
      (* invariants checked inside a simulation context: the store's
         locks belong to Vm.Sync *)
      let vm2 = Vm.create () in
      ignore
        (Vm.spawn vm2 ~name:"checker" (fun () ->
             VStore.check_invariants store));
      Vm.run vm2)
    [ 101; 202; 303 ]

let () =
  Alcotest.run "redteam"
    [ ( "attack matrix",
        [ Alcotest.test_case "18 scenarios, red then green" `Slow
            test_attack_matrix ] );
      ( "loader",
        [ QCheck_alcotest.to_alcotest qcheck_gadget_scan_soundness ] );
      ( "fuzz",
        [ Alcotest.test_case "oracle catches the unhardened crash" `Quick
            test_fuzz_oracle_catches_unhardened_crash;
          Alcotest.test_case "killer input is harmless hardened" `Quick
            test_killer_input_hardened;
          Alcotest.test_case "seeded campaign (200+ cases/seed)" `Slow
            test_fuzz_campaign;
          Alcotest.test_case "tenant oracle catches the unhardened leak"
            `Quick test_fuzz_tenant_oracle_catches_unhardened_leak;
          Alcotest.test_case "tenant campaign (forged prefixes)" `Slow
            test_fuzz_tenant_campaign;
          Alcotest.test_case "corpus replay" `Quick test_corpus_replay ] );
      ( "optimistic reads",
        [ Alcotest.test_case "hostile flush storm" `Slow
            test_hostile_flush_storm ] ) ]
