(** YCSB workload generator: distribution properties, determinism,
    histogram math, and the runner harness. *)

module W = Ycsb.Workload
module H = Ycsb.Histogram

let test_rng_deterministic () =
  let a = Ycsb.Rng.create 7 and b = Ycsb.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Ycsb.Rng.next_i64 a)
      (Ycsb.Rng.next_i64 b)
  done

let test_rng_ranges () =
  let r = Ycsb.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Ycsb.Rng.next_int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "next_int out of range";
    let f = Ycsb.Rng.next_float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "next_float out of range"
  done

let test_zipfian_bounds_and_skew () =
  let n = 10_000 in
  let z = Ycsb.Zipfian.create n in
  let rng = Ycsb.Rng.create 99 in
  let counts = Array.make n 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let v = Ycsb.Zipfian.next z rng in
    if v < 0 || v >= n then Alcotest.fail "zipfian out of range";
    counts.(v) <- counts.(v) + 1
  done;
  (* rank 0 is the most popular and gets roughly 1/zeta(n) of traffic *)
  let max_count = Array.fold_left max 0 counts in
  Alcotest.(check int) "rank 0 is the mode" counts.(0) max_count;
  let p0 = float_of_int counts.(0) /. float_of_int samples in
  Alcotest.(check bool)
    (Printf.sprintf "rank-0 share %.3f in [0.05, 0.20]" p0)
    true
    (p0 > 0.05 && p0 < 0.20);
  (* the head dominates: top 1% of keys get the majority of traffic *)
  let head = Array.sub counts 0 (n / 100) in
  let head_share =
    float_of_int (Array.fold_left ( + ) 0 head) /. float_of_int samples
  in
  Alcotest.(check bool)
    (Printf.sprintf "head share %.3f > 0.5" head_share)
    true (head_share > 0.5)

let test_scrambled_zipfian_spreads_hotset () =
  let n = 10_000 in
  let z = Ycsb.Zipfian.create n in
  let rng = Ycsb.Rng.create 5 in
  let seen_high = ref false in
  for _ = 1 to 2_000 do
    let v = Ycsb.Zipfian.next_scrambled z rng in
    if v < 0 || v >= n then Alcotest.fail "scrambled out of range";
    if v > n / 2 then seen_high := true
  done;
  Alcotest.(check bool) "hot keys land across the whole keyspace" true
    !seen_high

let test_workload_mix_ratio () =
  let w =
    W.make ~record_count:1000 ~operation_count:0 ~read_proportion:0.95
      ~field_length:16 ()
  in
  let rng = Ycsb.Rng.create w.W.seed in
  let choose = W.chooser w rng in
  let reads = ref 0 in
  let total = 20_000 in
  for _ = 1 to total do
    match W.next_op w rng choose with
    | W.Read _ -> incr reads
    | W.Update _ -> ()
  done;
  let share = float_of_int !reads /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "read share %.3f ~ 0.95" share)
    true
    (abs_float (share -. 0.95) < 0.01)

let test_workload_values_sized () =
  let w =
    W.make ~record_count:10 ~operation_count:0 ~read_proportion:0.0
      ~field_length:128 ()
  in
  for i = 0 to 9 do
    Alcotest.(check int) "value length" 128 (String.length (W.value_of w i))
  done;
  Alcotest.(check bool) "values differ by key" true
    (W.value_of w 1 <> W.value_of w 2);
  Alcotest.(check bool) "keys validate" true
    (Mc_protocol.Types.validate_key (W.key_of w 3))

let test_paper_workloads () =
  let w = W.paper ~small_value:true ~read_heavy:false ~operation_count:100 () in
  Alcotest.(check int) "scaled records" 400_000 w.W.record_count;
  Alcotest.(check int) "field length" 128 w.W.field_length;
  Alcotest.(check (float 0.001)) "write heavy" 0.5 w.W.read_proportion;
  let w5 = W.paper ~small_value:false ~read_heavy:true ~operation_count:100 () in
  Alcotest.(check int) "5KB records" 10_000 w5.W.record_count;
  Alcotest.(check int) "5KB field" 5120 w5.W.field_length;
  Alcotest.(check (float 0.001)) "read heavy" 0.95 w5.W.read_proportion

let test_histogram_percentiles () =
  let h = H.create () in
  for v = 1 to 1000 do
    H.record h v
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  Alcotest.(check int) "min" 1 (H.min_value h);
  Alcotest.(check int) "max" 1000 (H.max_value h);
  let p50 = H.percentile h 50.0 in
  let p99 = H.percentile h 99.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50=%d within 5%%" p50)
    true
    (abs (p50 - 500) < 50);
  Alcotest.(check bool)
    (Printf.sprintf "p99=%d within 5%%" p99)
    true
    (abs (p99 - 990) < 50);
  Alcotest.(check bool) "p100 = max" true (H.percentile h 100.0 <= 1000);
  Alcotest.(check (float 10.0)) "mean" 500.5 (H.mean h)

let test_histogram_merge () =
  let a = H.create () and b = H.create () in
  H.record a 10;
  H.record b 1000;
  H.merge ~into:a b;
  Alcotest.(check int) "count" 2 (H.count a);
  Alcotest.(check int) "min" 10 (H.min_value a);
  Alcotest.(check int) "max" 1000 (H.max_value a)

let test_histogram_wide_range () =
  let h = H.create () in
  List.iter (fun v -> H.record h v) [ 1; 100; 10_000; 1_000_000; 100_000_000 ];
  Alcotest.(check int) "count" 5 (H.count h);
  (* bucketing error stays within ~3% *)
  let p100 = H.percentile h 100.0 in
  Alcotest.(check bool) "extreme value representable" true
    (p100 <= 100_000_000 && p100 > 96_000_000)

let test_runner_in_vm () =
  let module Run = Ycsb.Runner.Make (Vm.Sync) in
  let w =
    W.make ~record_count:500 ~operation_count:2_000 ~read_proportion:0.5
      ~field_length:32 ()
  in
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let lock = Mutex.create () in
  let db : Ycsb.Runner.db =
    { db_read =
        (fun k ->
          Vm.Sync.advance 500;
          Mutex.lock lock;
          let r = Hashtbl.mem table k in
          Mutex.unlock lock;
          r);
      db_update =
        (fun k v ->
          Vm.Sync.advance 800;
          Mutex.lock lock;
          Hashtbl.replace table k v;
          Mutex.unlock lock;
          true) }
  in
  let vm = Vm.create () in
  let res = ref None in
  ignore (Vm.spawn vm ~name:"main" (fun () ->
    Run.load w db;
    res := Some (Run.run ~threads:4 w ~db_for:(fun _ -> db))));
  Vm.run vm;
  let r = Option.get !res in
  Alcotest.(check int) "ops counted" 2_000 r.Ycsb.Runner.r_ops;
  Alcotest.(check int) "all reads hit a loaded store" 0
    r.Ycsb.Runner.r_misses;
  Alcotest.(check int) "latencies recorded per op" 2_000
    (H.count r.Ycsb.Runner.r_hist);
  Alcotest.(check bool) "throughput computed" true
    (Ycsb.Runner.throughput_ktps r > 0.0);
  Alcotest.(check bool) "read + update hists partition ops" true
    (H.count r.Ycsb.Runner.r_read_hist + H.count r.Ycsb.Runner.r_update_hist
     = 2_000)

(* Determinism regression: the whole pipeline — workload generation, VM
   scheduling, latency measurement — is seeded. Running the same seeded
   workload in two fresh VMs must produce byte-identical op streams (as
   observed by the db hooks, i.e. including thread interleaving) and
   identical histogram statistics. A regression here silently breaks
   every "same seed reproduces the run" claim the test suite relies on. *)

let hist_fingerprint h =
  Printf.sprintf "n=%d min=%d max=%d mean=%.6f p50=%d p90=%d p99=%d p999=%d"
    (H.count h) (H.min_value h) (H.max_value h) (H.mean h)
    (H.percentile h 50.0) (H.percentile h 90.0) (H.percentile h 99.0)
    (H.percentile h 99.9)

let run_seeded_ycsb ~sched_seed ~workload_seed =
  let module Run = Ycsb.Runner.Make (Vm.Sync) in
  let w =
    W.make ~seed:workload_seed ~record_count:300 ~operation_count:1_200
      ~read_proportion:0.6 ~field_length:24 ()
  in
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let lock = Mutex.create () in
  let trace = Buffer.create 4096 in
  let db : Ycsb.Runner.db =
    { db_read =
        (fun k ->
          Vm.Sync.advance 500;
          Mutex.lock lock;
          Buffer.add_string trace ("R " ^ k ^ "\n");
          let r = Hashtbl.mem table k in
          Mutex.unlock lock;
          r);
      db_update =
        (fun k v ->
          Vm.Sync.advance 800;
          Mutex.lock lock;
          Buffer.add_string trace
            (Printf.sprintf "U %s %d\n" k (String.length v));
          Hashtbl.replace table k v;
          Mutex.unlock lock;
          true) }
  in
  let vm = Vm.create ~sched_seed () in
  let res = ref None in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
         Run.load w db;
         res := Some (Run.run ~threads:4 w ~db_for:(fun _ -> db))));
  Vm.run vm;
  let r = Option.get !res in
  ( Buffer.contents trace,
    [ hist_fingerprint r.Ycsb.Runner.r_hist;
      hist_fingerprint r.Ycsb.Runner.r_read_hist;
      hist_fingerprint r.Ycsb.Runner.r_update_hist ],
    (r.Ycsb.Runner.r_ops, r.Ycsb.Runner.r_hits, r.Ycsb.Runner.r_misses),
    Vm.events_processed vm )

let test_determinism_same_seed () =
  let t1, h1, c1, e1 = run_seeded_ycsb ~sched_seed:4242 ~workload_seed:17 in
  let t2, h2, c2, e2 = run_seeded_ycsb ~sched_seed:4242 ~workload_seed:17 in
  Alcotest.(check int) "op stream bytes" (String.length t1) (String.length t2);
  Alcotest.(check bool) "op streams byte-identical" true (String.equal t1 t2);
  Alcotest.(check (list string)) "histogram stats identical" h1 h2;
  let ops1, hits1, miss1 = c1 and ops2, hits2, miss2 = c2 in
  Alcotest.(check int) "ops" ops1 ops2;
  Alcotest.(check int) "hits" hits1 hits2;
  Alcotest.(check int) "misses" miss1 miss2;
  Alcotest.(check int) "scheduler events" e1 e2

let test_determinism_seed_sensitivity () =
  (* Different workload seed must produce a different op stream — otherwise
     the "identical" assertions above would pass vacuously. *)
  let t1, _, _, _ = run_seeded_ycsb ~sched_seed:4242 ~workload_seed:17 in
  let t3, _, _, _ = run_seeded_ycsb ~sched_seed:4242 ~workload_seed:18 in
  Alcotest.(check bool) "different workload seed diverges" false
    (String.equal t1 t3);
  (* And a different scheduler seed reorders the interleaved stream. *)
  let t4, _, _, _ = run_seeded_ycsb ~sched_seed:4243 ~workload_seed:17 in
  Alcotest.(check bool) "different sched seed reorders stream" false
    (String.equal t1 t4)

(* Batch-plane determinism: the batched runner draws from exactly the
   same per-thread rng streams as the scalar one, so (a) two same-seed
   runs at any batch size are byte-identical, and (b) each thread's op
   stream — keys, order, update sizes — is byte-identical at every
   batch size. Only the execution grouping (and hence cross-thread
   interleaving) may move. *)

let run_seeded_ycsb_batched ~sched_seed ~workload_seed ~batch =
  let module Run = Ycsb.Runner.Make (Vm.Sync) in
  let w =
    W.make ~seed:workload_seed ~record_count:300 ~operation_count:1_200
      ~read_proportion:0.6 ~field_length:24 ()
  in
  let table : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let lock = Mutex.create () in
  let threads = 4 in
  let traces = Array.init threads (fun _ -> Buffer.create 4096) in
  let loader : Ycsb.Runner.db =
    { db_read = (fun k -> Hashtbl.mem table k);
      db_update =
        (fun k v ->
          Hashtbl.replace table k v;
          true) }
  in
  let db_for tid : Ycsb.Runner.batch_db =
    { b_run =
        (fun ops ->
          Vm.Sync.advance 300;
          Mutex.lock lock;
          let oks =
            List.map
              (fun op ->
                match op with
                | W.Read k ->
                  Vm.Sync.advance 500;
                  Buffer.add_string traces.(tid) ("R " ^ k ^ "\n");
                  Hashtbl.mem table k
                | W.Update (k, v) ->
                  Vm.Sync.advance 800;
                  Buffer.add_string traces.(tid)
                    (Printf.sprintf "U %s %d\n" k (String.length v));
                  Hashtbl.replace table k v;
                  true)
              ops
          in
          Mutex.unlock lock;
          oks) }
  in
  let vm = Vm.create ~sched_seed () in
  let res = ref None in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
         Run.load w loader;
         res := Some (Run.run_batched ~threads ~batch w ~db_for)));
  Vm.run vm;
  let r = Option.get !res in
  ( Array.to_list (Array.map Buffer.contents traces),
    [ hist_fingerprint r.Ycsb.Runner.r_hist;
      hist_fingerprint r.Ycsb.Runner.r_read_hist;
      hist_fingerprint r.Ycsb.Runner.r_update_hist ],
    (r.Ycsb.Runner.r_ops, r.Ycsb.Runner.r_hits, r.Ycsb.Runner.r_misses),
    Vm.events_processed vm )

let test_determinism_batched_same_seed () =
  List.iter
    (fun batch ->
      let t1, h1, c1, e1 =
        run_seeded_ycsb_batched ~sched_seed:4242 ~workload_seed:17 ~batch
      in
      let t2, h2, c2, e2 =
        run_seeded_ycsb_batched ~sched_seed:4242 ~workload_seed:17 ~batch
      in
      let tag fmt = Printf.sprintf fmt batch in
      Alcotest.(check (list string))
        (tag "B=%d per-thread op streams byte-identical") t1 t2;
      Alcotest.(check (list string)) (tag "B=%d histogram stats") h1 h2;
      let ops1, hits1, miss1 = c1 and ops2, hits2, miss2 = c2 in
      Alcotest.(check int) (tag "B=%d ops") ops1 ops2;
      Alcotest.(check int) (tag "B=%d hits") hits1 hits2;
      Alcotest.(check int) (tag "B=%d misses") miss1 miss2;
      Alcotest.(check int) (tag "B=%d scheduler events") e1 e2)
    [ 1; 8; 32 ]

let test_batch_size_preserves_op_streams () =
  (* The knob moves execution grouping only: every thread draws the
     same keys in the same order whether it flushes every op or every
     32. *)
  let t1, _, (ops1, _, _), _ =
    run_seeded_ycsb_batched ~sched_seed:4242 ~workload_seed:17 ~batch:1
  in
  List.iter
    (fun batch ->
      let tb, _, (opsb, _, _), _ =
        run_seeded_ycsb_batched ~sched_seed:4242 ~workload_seed:17 ~batch
      in
      Alcotest.(check int)
        (Printf.sprintf "B=%d executes the same op count" batch)
        ops1 opsb;
      Alcotest.(check (list string))
        (Printf.sprintf "B=%d leaves per-thread op streams unchanged" batch)
        t1 tb)
    [ 8; 32 ]

(* Same-seed determinism through the real protected-library store with
   the seqlock read path on. An optimistic get's outcome — hit on the
   first snapshot, retry after a conflict, or fall back to the stripe
   lock — depends on what concurrent writers do, so the whole cascade
   must replay identically under the seeded scheduler, at every batch
   size the acceptance sweep cares about. The opt_* counter deltas are
   the sharp assertion: equal retries means equal interleavings, not
   just equal final answers. *)
let plib_det_names = Atomic.make 0

let run_seeded_ycsb_plib ~sched_seed ~workload_seed ~batch =
  let module Cl = Core.Client.Make (Vm.Sync) in
  let module Plib = Cl.Plib in
  let module Run = Ycsb.Runner.Make (Vm.Sync) in
  let module TC = Telemetry.Counters in
  let w =
    W.make ~seed:workload_seed ~record_count:300 ~operation_count:1_200
      ~read_proportion:0.95 ~field_length:24 ()
  in
  let path =
    Printf.sprintf "/dev/shm/ycsb-det-%d"
      (Atomic.fetch_and_add plib_det_names 1)
  in
  let owner = Simos.Process.make ~uid:1000 "mc-det" in
  let plib =
    (* few stripes so the zipfian hot keys actually collide *)
    Plib.create
      ~store_cfg:
        { Mc_core.Store.default_config with hashpower = 9; lock_count = 8;
          lru_count = 4; stats_slots = 4 }
      ~path ~size:(8 lsl 20) ~owner ()
  in
  let opt0 =
    ( TC.read TC.Id.opt_hits, TC.read TC.Id.opt_retries,
      TC.read TC.Id.opt_fallbacks )
  in
  let db : Ycsb.Runner.batch_db =
    { b_run =
        (fun ops ->
          let bops =
            List.map
              (function
                | W.Read k -> Plib.B_get k
                | W.Update (k, v) ->
                  Plib.B_set
                    { b_key = k; b_data = v; b_flags = 0; b_exptime = 0 })
              ops
          in
          List.map
            (function
              | Plib.R_get r -> r <> None
              | Plib.R_store r -> r = Mc_core.Store.Stored
              | Plib.R_found b -> b)
            (Plib.batch plib bops)) }
  in
  let vm = Vm.create ~sched_seed () in
  let res = ref None in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
         Run.load w
           { db_read = (fun k -> Plib.get plib k <> None);
             db_update =
               (fun k v -> Plib.set plib k v = Mc_core.Store.Stored) };
         res := Some (Run.run_batched ~threads:4 ~batch w ~db_for:(fun _ -> db))));
  Vm.run vm;
  let r = Option.get !res in
  let h0, r0, f0 = opt0 in
  ( (r.Ycsb.Runner.r_ops, r.Ycsb.Runner.r_hits, r.Ycsb.Runner.r_misses),
    ( TC.read TC.Id.opt_hits - h0, TC.read TC.Id.opt_retries - r0,
      TC.read TC.Id.opt_fallbacks - f0 ),
    Vm.events_processed vm )

let test_determinism_plib_optimistic_same_seed () =
  List.iter
    (fun batch ->
      let c1, o1, e1 =
        run_seeded_ycsb_plib ~sched_seed:4242 ~workload_seed:17 ~batch
      in
      let c2, o2, e2 =
        run_seeded_ycsb_plib ~sched_seed:4242 ~workload_seed:17 ~batch
      in
      let tag fmt = Printf.sprintf fmt batch in
      let ops1, hits1, miss1 = c1 and ops2, hits2, miss2 = c2 in
      Alcotest.(check int) (tag "B=%d ops") ops1 ops2;
      Alcotest.(check int) (tag "B=%d hits") hits1 hits2;
      Alcotest.(check int) (tag "B=%d misses") miss1 miss2;
      let oh1, or1, of1 = o1 and oh2, or2, of2 = o2 in
      Alcotest.(check int) (tag "B=%d optimistic hits") oh1 oh2;
      Alcotest.(check int) (tag "B=%d optimistic retries") or1 or2;
      Alcotest.(check int) (tag "B=%d optimistic fallbacks") of1 of2;
      Alcotest.(check bool) (tag "B=%d read path exercised") true (oh1 > 0);
      Alcotest.(check int) (tag "B=%d scheduler events") e1 e2)
    [ 1; 8; 32 ]

(* Open-loop determinism end-to-end through the shared-ring transport:
   paced submitters stream requests into per-connection submission
   rings, the server's adaptive window batches drains, and completions
   come back through the completion ring. The window ceiling [r_b_max]
   must change only *where* execution batches — two same-seed runs are
   identical at every setting, and the per-thread submission streams
   (keys, order, sizes) are byte-identical across settings. *)

let rings_det_names = Atomic.make 0

let run_seeded_open_rings ~sched_seed ~workload_seed ~b_max =
  let module Cl = Core.Client.Make (Vm.Sync) in
  let module Plib = Cl.Plib in
  let module Sock = Cl.Sock in
  let module Run = Ycsb.Runner.Make (Vm.Sync) in
  let module TC = Telemetry.Counters in
  let module P = Mc_protocol.Types in
  let w =
    W.make ~seed:workload_seed ~record_count:300 ~operation_count:1_200
      ~read_proportion:0.9 ~field_length:24 ()
  in
  let id = Atomic.fetch_and_add rings_det_names 1 in
  let plib =
    Plib.create
      ~store_cfg:
        { Mc_core.Store.default_config with hashpower = 9; lock_count = 8;
          lru_count = 4; stats_slots = 4 }
      ~path:(Printf.sprintf "/dev/shm/ycsb-rings-%d" id)
      ~size:(8 lsl 20)
      ~owner:(Simos.Process.make ~uid:1000 "mc-rings-det")
      ()
  in
  let rings = { Mc_server.Server.default_ring_config with r_b_max = b_max } in
  let d0 = TC.read TC.Id.ring_drains in
  let o0 = TC.read TC.Id.ring_drain_ops in
  let threads = 2 in
  let traces = Array.init threads (fun _ -> Buffer.create 4096) in
  let vm = Vm.create ~sched_seed () in
  let res = ref None in
  Fun.protect
    ~finally:(fun () -> Hodor.Library.release (Plib.library plib))
    (fun () ->
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
         Run.load w
           { db_read = (fun k -> Plib.get plib k <> None);
             db_update =
               (fun k v -> Plib.set plib k v = Mc_core.Store.Stored) };
         let name = Printf.sprintf "rings-det-%d" id in
         let srv = Plib.serve_remote ~rings plib ~name in
         let open_db tid : Ycsb.Runner.open_db =
           let st = Sock.stream (Sock.connect ~name ()) in
           let inflight = Queue.create () in
           { o_submit =
               (fun op ->
                 let cmd =
                   match op with
                   | W.Read k ->
                     Buffer.add_string traces.(tid) ("R " ^ k ^ "\n");
                     P.Gets [ k ]
                   | W.Update (k, v) ->
                     Buffer.add_string traces.(tid)
                       (Printf.sprintf "U %s %d\n" k (String.length v));
                     P.Set { P.key = k; flags = 0; exptime = 0; data = v;
                             noreply = false }
                 in
                 Queue.push cmd inflight;
                 Sock.submit st cmd);
             o_await =
               (fun () ->
                 match Sock.await st (Queue.pop inflight) with
                 | P.Values { vals; _ } -> vals <> []
                 | P.Stored -> true
                 | _ -> false) }
         in
         res := Some (Run.run_open ~threads ~rate_kops:400 w ~db_for:open_db);
         Plib.stop_remote srv));
  Vm.run vm;
  let r = Option.get !res in
  ( Array.to_list (Array.map Buffer.contents traces),
    (r.Ycsb.Runner.r_ops, r.Ycsb.Runner.r_hits, r.Ycsb.Runner.r_misses),
    ( TC.read TC.Id.ring_drains - d0,
      TC.read TC.Id.ring_drain_ops - o0 ),
    Vm.events_processed vm ))

let test_determinism_open_rings_same_seed () =
  List.iter
    (fun b_max ->
      let t1, c1, r1, e1 =
        run_seeded_open_rings ~sched_seed:4242 ~workload_seed:17 ~b_max
      in
      let t2, c2, r2, e2 =
        run_seeded_open_rings ~sched_seed:4242 ~workload_seed:17 ~b_max
      in
      let tag fmt = Printf.sprintf fmt b_max in
      Alcotest.(check (list string))
        (tag "B_max=%d submission streams byte-identical") t1 t2;
      let ops1, hits1, miss1 = c1 and ops2, hits2, miss2 = c2 in
      Alcotest.(check int) (tag "B_max=%d ops") ops1 ops2;
      Alcotest.(check int) (tag "B_max=%d hits") hits1 hits2;
      Alcotest.(check int) (tag "B_max=%d misses") miss1 miss2;
      let d1, o1 = r1 and d2, o2 = r2 in
      Alcotest.(check int) (tag "B_max=%d ring drains") d1 d2;
      Alcotest.(check int) (tag "B_max=%d drained ops") o1 o2;
      Alcotest.(check bool) (tag "B_max=%d rings exercised") true (d1 > 0);
      Alcotest.(check int) (tag "B_max=%d scheduler events") e1 e2)
    [ 1; 8; 32 ]

let test_window_preserves_op_streams () =
  (* The adaptive window moves execution grouping only: every client
     submits the same keys in the same order whether the server drains
     one at a time or thirty-two. And the ceiling is real: B_max=1
     pins one op per crossing while B_max=32 batches them. *)
  let t1, (ops1, hits1, miss1), (d1, o1), _ =
    run_seeded_open_rings ~sched_seed:4242 ~workload_seed:17 ~b_max:1
  in
  (* B_max=1 never *waits* to batch; a drain may still scoop up the
     couple of requests that arrived during the previous one. *)
  Alcotest.(check bool)
    (Printf.sprintf "B_max=1 stays near one op per drain (%d/%d)" o1 d1)
    true
    (o1 >= d1 && 2 * o1 < 3 * d1);
  let batched = ref false in
  List.iter
    (fun b_max ->
      let tb, (opsb, hitsb, missb), (db, ob), _ =
        run_seeded_open_rings ~sched_seed:4242 ~workload_seed:17 ~b_max
      in
      let tag fmt = Printf.sprintf fmt b_max in
      Alcotest.(check int) (tag "B_max=%d same op count") ops1 opsb;
      Alcotest.(check int) (tag "B_max=%d same hits") hits1 hitsb;
      Alcotest.(check int) (tag "B_max=%d same misses") miss1 missb;
      Alcotest.(check (list string))
        (tag "B_max=%d identical submission streams") t1 tb;
      if ob > db then batched := true)
    [ 8; 32 ];
  Alcotest.(check bool) "a wider window actually batches" true !batched

let qcheck_histogram_value_in_bucket_bounds =
  QCheck.Test.make ~name:"percentile(100) bounds any recorded value" ~count:200
    QCheck.(int_range 1 1_000_000_000)
    (fun v ->
      let h = H.create () in
      H.record h v;
      let p = H.percentile h 100.0 in
      (* bucket midpoint error < 4% *)
      float_of_int (abs (p - v)) <= 0.04 *. float_of_int v)

let () =
  Alcotest.run "ycsb"
    [ ( "generators",
        [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_bounds_and_skew;
          Alcotest.test_case "scrambled spread" `Quick
            test_scrambled_zipfian_spreads_hotset;
          Alcotest.test_case "mix ratio" `Quick test_workload_mix_ratio;
          Alcotest.test_case "value sizing" `Quick test_workload_values_sized;
          Alcotest.test_case "paper workloads" `Quick test_paper_workloads ] );
      ( "histogram",
        [ Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "wide range" `Quick test_histogram_wide_range;
          QCheck_alcotest.to_alcotest qcheck_histogram_value_in_bucket_bounds ] );
      ( "runner",
        [ Alcotest.test_case "vm harness" `Quick test_runner_in_vm ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, identical run" `Quick
            test_determinism_same_seed;
          Alcotest.test_case "seed sensitivity" `Quick
            test_determinism_seed_sensitivity;
          Alcotest.test_case "batched run, same seed" `Quick
            test_determinism_batched_same_seed;
          Alcotest.test_case "batch size preserves op streams" `Quick
            test_batch_size_preserves_op_streams;
          Alcotest.test_case "plib + seqlock reads, same seed" `Quick
            test_determinism_plib_optimistic_same_seed;
          Alcotest.test_case "open-loop rings, same seed" `Quick
            test_determinism_open_rings_same_seed;
          Alcotest.test_case "window preserves op streams" `Quick
            test_window_preserves_op_streams ] ) ]
