(** The race-hunting harness: lockdep, heap poisoning, and seeded
    schedule exploration, exercised together over the shared store.

    Unit tests pin down each detector (lock-order inversion,
    self-deadlock, same-class rank inversion, use-after-free faulting);
    the sweep tests then replay concurrent store workloads under ~100
    perturbed-but-deterministic VM schedules with both detectors armed,
    asserting structural invariants at quiescence and zero recorded
    lock-order violations. *)

module Store = Mc_core.Store

(* ---- lockdep unit tests (over OS threads; the wrapper is
   substrate-agnostic) --------------------------------------------- *)

module LD = Platform.Lockdep.Make (Platform.Real_sync)

let check_raises_violation name f =
  match f () with
  | () -> Alcotest.fail (name ^ ": expected Lockdep.Violation")
  | exception Platform.Lockdep.Violation _ -> ()

let test_lockdep_cross_class_inversion () =
  LD.reset ();
  let a = LD.mutex ~cls:"A" () in
  let b = LD.mutex ~cls:"B" () in
  (* Establish A -> B, then attempt B -> A: closes a cycle. *)
  LD.lock a; LD.lock b; LD.unlock b; LD.unlock a;
  LD.lock b;
  check_raises_violation "B->A after A->B" (fun () -> LD.lock a);
  LD.unlock b;
  Alcotest.(check int) "violation recorded" 1 (List.length (LD.violations ()))

let test_lockdep_self_deadlock () =
  LD.reset ();
  let m = LD.mutex ~cls:"M" () in
  LD.lock m;
  check_raises_violation "relock" (fun () -> LD.lock m);
  LD.unlock m

let test_lockdep_same_class_rank () =
  LD.reset ();
  let m0 = LD.mutex ~cls:"stripe" () in
  let m1 = LD.mutex ~cls:"stripe" () in
  (* Increasing creation rank is the sanctioned sweep order... *)
  LD.lock m0; LD.lock m1; LD.unlock m1; LD.unlock m0;
  (* ...decreasing rank is an inversion. *)
  LD.lock m1;
  check_raises_violation "rank inversion" (fun () -> LD.lock m0);
  LD.unlock m1

let test_lockdep_unlock_not_held () =
  LD.reset ();
  let m = LD.mutex ~cls:"M" () in
  check_raises_violation "unheld unlock" (fun () -> LD.unlock m)

let test_lockdep_cross_thread_cycle () =
  (* The cycle need not happen in one thread: thread 1 records
     A -> B; thread 2's B -> A attempt is flagged even though the
     threads never collide at runtime. *)
  LD.reset ();
  let a = LD.mutex ~cls:"A" () in
  let b = LD.mutex ~cls:"B" () in
  let t1 = LD.spawn (fun () -> LD.lock a; LD.lock b; LD.unlock b; LD.unlock a) in
  LD.join t1;
  let caught = ref false in
  let t2 =
    LD.spawn (fun () ->
      LD.lock b;
      (match LD.lock a with
       | () -> ()
       | exception Platform.Lockdep.Violation _ -> caught := true);
      LD.unlock b)
  in
  LD.join t2;
  Alcotest.(check bool) "flagged without a real deadlock" true !caught

(* ---- heap-poisoning unit tests ---------------------------------- *)

module SM = Mc_core.Shared_memory

let test_poisoning_faults_freed_access () =
  let reg = Shm.Region.create ~name:"poison-unit" ~size:(1 lsl 20) ~pkey:0 () in
  let heap = Ralloc.create reg in
  let mem = SM.of_region reg in
  Ralloc.set_poisoning heap true;
  Fun.protect ~finally:(fun () -> Ralloc.set_poisoning heap false)
    (fun () ->
      let off = Ralloc.alloc heap 64 in
      SM.write_i64 mem off 42;
      Alcotest.(check int) "live read" 42 (SM.read_i64 mem off);
      Ralloc.free heap off;
      (match SM.read_i64 mem off with
       | _ -> Alcotest.fail "read of freed block should fault"
       | exception Ralloc.Use_after_free _ -> ());
      (match SM.write_i64 mem (off + 8) 1 with
       | () -> Alcotest.fail "write into freed block should fault"
       | exception Ralloc.Use_after_free _ -> ());
      (* Re-allocating the block heals it. *)
      let off' = Ralloc.alloc heap 64 in
      SM.write_i64 mem off' 7;
      Alcotest.(check int) "recycled block usable" 7 (SM.read_i64 mem off'))

let test_poisoning_off_is_silent () =
  let reg = Shm.Region.create ~name:"poison-off" ~size:(1 lsl 20) ~pkey:0 () in
  let heap = Ralloc.create reg in
  let mem = SM.of_region reg in
  let off = Ralloc.alloc heap 64 in
  Ralloc.free heap off;
  (* Without poisoning the dangling read is undetected (and must not
     raise): the default fast path costs nothing. *)
  ignore (SM.read_i64 mem (off + 8))

(* ---- seeded schedule sweeps over the full store ----------------- *)

module LVm = Platform.Lockdep.Make (Vm.Sync)
module RSt = Store.Make (Mc_core.Shared_memory) (Mc_core.Ralloc_alloc) (LVm)

let sweep_cfg =
  { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
    stats_slots = 2; evict_batch = 2 }

let run_seed ~seed ~heap_bytes ~cfg body =
  LVm.reset ();
  let vm = Vm.create ~sched_seed:seed ~preempt_jitter:60 () in
  let reg =
    Shm.Region.create ~name:"race-sweep" ~size:heap_bytes ~pkey:0 ()
  in
  let heap = Ralloc.create reg in
  Ralloc.set_poisoning heap true;
  Fun.protect ~finally:(fun () -> Ralloc.set_poisoning heap false)
    (fun () ->
      ignore
        (Vm.spawn vm ~name:"main" (fun () ->
           let st =
             RSt.create
               ~mem:(Mc_core.Shared_memory.of_region reg)
               ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
               cfg
           in
           body st;
           RSt.check_invariants st));
      (* Any use-after-free or lockdep violation inside a fiber
         surfaces here as Vm.Thread_failure — or, when the victim died
         holding a lock its peers then block on, as Vm.Deadlock with
         the root cause in [Vm.failures]. *)
      (match Vm.run vm with
       | () -> ()
       | exception Vm.Thread_failure (name, e) ->
         Alcotest.fail
           (Printf.sprintf "seed %d: thread %s died: %s" seed name
              (Printexc.to_string e))
       | exception Vm.Deadlock d ->
         (match Vm.failures vm with
          | (name, e) :: _ ->
            Alcotest.fail
              (Printf.sprintf "seed %d: thread %s died: %s (peers then %s)"
                 seed name (Printexc.to_string e) d)
          | [] ->
            Alcotest.fail (Printf.sprintf "seed %d: deadlock: %s" seed d)));
      match LVm.violations () with
      | [] -> ()
      | v :: _ ->
        Alcotest.fail (Printf.sprintf "seed %d: lock-order violation: %s"
                         seed v))

let evictions_of st =
  int_of_string (List.assoc "evictions" (RSt.stats st))

let test_seed_sweep_mixed_workload () =
  (* ~100 distinct interleavings of a mixed workload under real memory
     pressure (distinct 900-byte values overflow the 256 KiB region):
     sets (some born expired), gets, deletes, counters, and an
     explicit reaper, all racing eviction. *)
  let total_evictions = ref 0 in
  for seed = 0 to 99 do
    run_seed ~seed ~heap_bytes:(384 lsl 10) ~cfg:sweep_cfg (fun st ->
      ignore (RSt.set st "ctr" "1");
      let worker t =
        LVm.spawn ~name:(Printf.sprintf "w%d" t) (fun () ->
          for i = 0 to 79 do
            let k = Printf.sprintf "t%d-%d" t i in
            let prev = Printf.sprintf "t%d-%d" t (max 0 (i - 2)) in
            (match i mod 7 with
             | 0 | 1 | 2 -> ignore (RSt.set st k (String.make 900 'x'))
             | 3 -> ignore (RSt.set st ~exptime:1 k "soon-dead")
             | 4 -> ignore (RSt.get st prev)
             | 5 -> ignore (RSt.delete st prev)
             | _ -> ignore (RSt.incr st "ctr" 1L));
            LVm.advance 40
          done)
      in
      let reaper =
        LVm.spawn ~name:"reaper" (fun () ->
          (* jump past the 1 s relative expiries, then collect *)
          LVm.advance 1_500_000_000;
          ignore (RSt.reap_expired st))
      in
      let ws = List.init 3 worker in
      List.iter LVm.join ws;
      LVm.join reaper;
      total_evictions := !total_evictions + evictions_of st)
  done;
  Alcotest.(check bool) "sweep exercised eviction" true (!total_evictions > 0)

let test_seed_sweep_evict_vs_delete () =
  (* The regression the harness was built to catch: eviction collects
     victims from an LRU list while a racing delete frees them. With
     the collect-then-reverify fix this is clean under every schedule;
     with the old deref-after-unlock code, poisoning faults it. The
     deleter runs for the setter's whole lifetime, cycling over the
     key range, so its frees land inside eviction's collect-to-unlink
     window under many of the explored schedules. *)
  let total_evictions = ref 0 in
  for seed = 0 to 49 do
    run_seed ~seed ~heap_bytes:(384 lsl 10) ~cfg:sweep_cfg (fun st ->
      let stop = Atomic.make false in
      let setter =
        LVm.spawn ~name:"setter" (fun () ->
          Fun.protect ~finally:(fun () -> Atomic.set stop true)
            (fun () ->
              for i = 0 to 249 do
                ignore (RSt.set st (Printf.sprintf "k%d" i)
                          (String.make 900 's'));
                LVm.advance 30
              done))
      in
      let deleter =
        LVm.spawn ~name:"deleter" (fun () ->
          let j = ref 0 in
          (* the iteration bound is a safety valve: normally the stop
             flag ends the loop when the setter finishes *)
          while (not (Atomic.get stop)) && !j < 3_000 do
            ignore (RSt.delete st (Printf.sprintf "k%d" (!j mod 250)));
            incr j;
            LVm.advance 5_000
          done)
      in
      LVm.join setter;
      LVm.join deleter;
      total_evictions := !total_evictions + evictions_of st)
  done;
  Alcotest.(check bool) "sweep exercised eviction" true (!total_evictions > 0)

(* ---- batch plane: grouped stripe acquisition ---------------------- *)

let test_stripe_groups_lockdep_clean () =
  (* Grouped acquisition takes same-class item-lock stripes in
     creation-rank (= ascending index) order, holds them across the
     group, and releases between groups. Racing it against single-op
     writers (whose [lock_item] path skips a held stripe only in the
     thread that holds it) must stay lockdep-clean. *)
  run_seed ~seed:7 ~heap_bytes:(512 lsl 10)
    ~cfg:{ sweep_cfg with lock_count = 8 }
    (fun st ->
      for i = 0 to 19 do
        ignore (RSt.set st (Printf.sprintf "g%d" i) (string_of_int i))
      done;
      let reader =
        LVm.spawn ~name:"grouped-reader" (fun () ->
          let keys = List.init 6 (fun i -> Printf.sprintf "g%d" i) in
          let stripes =
            List.sort_uniq compare (List.map (RSt.stripe_of st) keys)
          in
          for _round = 0 to 24 do
            RSt.with_stripes st ~stripes (fun () ->
              List.iter (fun k -> ignore (RSt.get st k)) keys);
            (* released between groups: a fresh group re-acquires *)
            LVm.advance 50
          done)
      in
      let writer =
        LVm.spawn ~name:"writer" (fun () ->
          for i = 0 to 49 do
            ignore (RSt.set st (Printf.sprintf "g%d" (i mod 20)) "w");
            LVm.advance 35
          done)
      in
      LVm.join reader;
      LVm.join writer)

let test_stripe_group_inversion_goes_red () =
  (* The discipline is real: handing [with_stripes] a descending pair
     acquires same-class mutexes against creation-rank order, and
     lockdep must flag it. *)
  LVm.reset ();
  let vm = Vm.create ~sched_seed:0 () in
  let reg =
    Shm.Region.create ~name:"stripe-inv" ~size:(1 lsl 20) ~pkey:0 ()
  in
  let heap = Ralloc.create reg in
  let caught = ref false in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
       let st =
         RSt.create
           ~mem:(Mc_core.Shared_memory.of_region reg)
           ~alloc:(Mc_core.Ralloc_alloc.of_heap heap)
           { sweep_cfg with lock_count = 8 }
       in
       match RSt.with_stripes st ~stripes:[ 5; 2 ] (fun () -> ()) with
       | () -> ()
       | exception Platform.Lockdep.Violation _ -> caught := true));
  (match Vm.run vm with
   | () -> ()
   | exception Vm.Thread_failure (_, Platform.Lockdep.Violation _) ->
     caught := true
   | exception _ -> ());
  Alcotest.(check bool) "descending stripe order goes red" true
    (!caught || LVm.violations () <> [])

let test_store_locking_is_lockdep_clean () =
  (* One deterministic pass over every store entry point (including
     resize and fold_keys, whose stripe sweeps rely on the same-class
     rank rule) with lockdep active: no violation may be recorded. *)
  run_seed ~seed:0 ~heap_bytes:(4 lsl 20)
    ~cfg:{ sweep_cfg with hashpower = 4; lock_count = 8 }
    (fun st ->
      for i = 0 to 99 do
        ignore (RSt.set st (Printf.sprintf "k%d" i) (string_of_int i))
      done;
      ignore (RSt.resize st);
      ignore (RSt.fold_keys st (fun n _ ~nbytes:_ ~exptime:_ -> n + 1) 0);
      ignore (RSt.incr st "k1" 1L);
      ignore (RSt.append st "k2" "!");
      ignore (RSt.touch st "k3" 100);
      ignore (RSt.reap_expired st);
      RSt.flush_all st;
      ignore (RSt.stats st))



let () =
  Alcotest.run "race"
    [ ( "lockdep",
        [ Alcotest.test_case "cross-class inversion" `Quick
            test_lockdep_cross_class_inversion;
          Alcotest.test_case "self-deadlock" `Quick
            test_lockdep_self_deadlock;
          Alcotest.test_case "same-class rank order" `Quick
            test_lockdep_same_class_rank;
          Alcotest.test_case "unlock not held" `Quick
            test_lockdep_unlock_not_held;
          Alcotest.test_case "cross-thread cycle" `Quick
            test_lockdep_cross_thread_cycle ] );
      ( "poisoning",
        [ Alcotest.test_case "freed access faults" `Quick
            test_poisoning_faults_freed_access;
          Alcotest.test_case "disabled is silent" `Quick
            test_poisoning_off_is_silent ] );
      ( "seed sweeps",
        [ Alcotest.test_case "100-seed mixed workload" `Slow
            test_seed_sweep_mixed_workload;
          Alcotest.test_case "50-seed evict vs delete" `Slow
            test_seed_sweep_evict_vs_delete;
          Alcotest.test_case "store is lockdep-clean" `Quick
            test_store_locking_is_lockdep_clean ] );
      ( "stripe groups",
        [ Alcotest.test_case "grouped acquisition is clean" `Quick
            test_stripe_groups_lockdep_clean;
          Alcotest.test_case "order inversion goes red" `Quick
            test_stripe_group_inversion_goes_red ] ) ]
