(** Multi-tenancy: the persisted registry, per-tenant namespaces and
    quotas through Plib, vault capability protection, per-tenant stats
    over both wire codecs, and a seeded cross-tenant isolation sweep
    under the deterministic VM. *)

module Cl = Core.Client.Make (Platform.Real_sync)
module Plib = Cl.Plib
module Process = Simos.Process
module Store = Mc_core.Store
module Tenant = Mc_core.Tenant
module Region = Shm.Region
module T = Transport.Sock.Make (Platform.Real_sync)
module P = Mc_protocol.Types

let small_cfg =
  { Store.default_config with hashpower = 8; lock_count = 8; lru_count = 8;
    stats_slots = 4 }

let fresh_id = ref 0

let with_plib f =
  incr fresh_id;
  let owner = Process.make ~uid:1000 "tenant-bk" in
  let path = Printf.sprintf "/shm/tenant-test-%d" !fresh_id in
  let p =
    Plib.create ~store_cfg:small_cfg ~path ~size:(8 lsl 20) ~owner ()
  in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Vpkey.reset ();
      Pku.Pkru.reset_thread ())
    (fun () -> f p ~owner)

let as_uid uid f =
  let proc = Process.make ~uid (Printf.sprintf "tenant-u%d" uid) in
  Process.with_process proc f

let has_sub ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- registry mechanics (raw block in a scratch region) --------------- *)

let with_registry f =
  let r =
    Region.create ~name:"tenant-reg-scratch" ~size:(64 * 1024) ~pkey:0 ()
  in
  f (Tenant.format r ~base:64 ~max:8) r

let test_registry_crud () =
  with_registry @@ fun reg r ->
  let a = Tenant.register reg ~name:"alpha" ~uid:101 ~byte_quota:1000
      ~item_quota:10 in
  let b = Tenant.register reg ~name:"beta" ~uid:102 ~byte_quota:0
      ~item_quota:0 in
  Alcotest.(check bool) "distinct slots" true (a <> b);
  Alcotest.(check int) "two active" 2 (Tenant.count_active reg);
  Alcotest.(check (option int)) "find alpha" (Some a) (Tenant.find reg "alpha");
  Alcotest.(check (option int)) "find nobody" None (Tenant.find reg "gamma");
  Alcotest.(check string) "name" "alpha" (Tenant.name_of reg a);
  Alcotest.(check int) "uid" 101 (Tenant.uid_of reg a);
  Alcotest.(check int) "byte quota" 1000 (Tenant.byte_quota reg a);
  Alcotest.(check string) "prefix" "alpha/" (Tenant.prefix reg a);
  Alcotest.(check string) "scope" "alpha/k" (Tenant.scope reg a "k");
  Alcotest.(check (option int)) "owner of scoped key" (Some a)
    (Tenant.owner_slot_of_key reg "alpha/k");
  Alcotest.(check (option int)) "unscoped key owned by nobody" None
    (Tenant.owner_slot_of_key reg "alphak");
  (* a reattach sees the same membership *)
  let reg' = Tenant.attach r ~base:64 in
  Alcotest.(check (option int)) "attach finds beta" (Some b)
    (Tenant.find reg' "beta")

let test_registry_rejects () =
  with_registry @@ fun reg _ ->
  ignore (Tenant.register reg ~name:"dup" ~uid:1 ~byte_quota:0 ~item_quota:0);
  let rejected name =
    match Tenant.register reg ~name ~uid:1 ~byte_quota:0 ~item_quota:0 with
    | _ -> Alcotest.fail (Printf.sprintf "name %S must be rejected" name)
    | exception Invalid_argument _ -> ()
  in
  rejected "dup";
  rejected "";
  rejected "with/slash";
  rejected "with space";
  rejected "ctrl\001byte";
  rejected (String.make (Tenant.max_name + 1) 'x');
  (* registry full *)
  for i = 2 to 8 do
    ignore
      (Tenant.register reg ~name:(Printf.sprintf "t%d" i) ~uid:i
         ~byte_quota:0 ~item_quota:0)
  done;
  rejected "overflow"

let test_registry_quota_accounting () =
  with_registry @@ fun reg _ ->
  let a = Tenant.register reg ~name:"q" ~uid:7 ~byte_quota:100 ~item_quota:3 in
  Alcotest.(check bool) "fits" false
    (Tenant.would_exceed reg a ~add_bytes:100 ~add_items:3);
  Alcotest.(check bool) "byte overflow" true
    (Tenant.would_exceed reg a ~add_bytes:101 ~add_items:0);
  Alcotest.(check bool) "item overflow" true
    (Tenant.would_exceed reg a ~add_bytes:0 ~add_items:4);
  Tenant.charge reg a ~bytes:60 ~items:2;
  Alcotest.(check int) "bytes used" 60 (Tenant.bytes_used reg a);
  Alcotest.(check bool) "incremental overflow" true
    (Tenant.would_exceed reg a ~add_bytes:41 ~add_items:0);
  (* negative deltas clamp at zero, never wrap *)
  Tenant.charge reg a ~bytes:(-100) ~items:(-5);
  Alcotest.(check (pair int int)) "clamped" (0, 0)
    (Tenant.bytes_used reg a, Tenant.items_used reg a);
  (* toggle off: quotas are advisory nothing *)
  Tenant.quota_enforced := false;
  Fun.protect ~finally:(fun () -> Tenant.quota_enforced := true) (fun () ->
    Alcotest.(check bool) "unenforced never exceeds" false
      (Tenant.would_exceed reg a ~add_bytes:10_000 ~add_items:100))

let test_registry_stats_reset_keeps_membership () =
  with_registry @@ fun reg _ ->
  let a = Tenant.register reg ~name:"s" ~uid:9 ~byte_quota:500 ~item_quota:0 in
  Tenant.bump reg a Tenant.Cmd_get;
  Tenant.bump reg a Tenant.Cmd_set;
  Tenant.charge reg a ~bytes:42 ~items:1;
  let kvs = Tenant.stats_kvs reg in
  Alcotest.(check (option string)) "cmd_get rolled up" (Some "1")
    (List.assoc_opt "tenant:s:cmd_get" kvs);
  Alcotest.(check (option string)) "bytes rolled up" (Some "42")
    (List.assoc_opt "tenant:s:bytes" kvs);
  Tenant.reset_stats reg;
  let kvs = Tenant.stats_kvs reg in
  Alcotest.(check (option string)) "tallies zeroed" (Some "0")
    (List.assoc_opt "tenant:s:cmd_get" kvs);
  Alcotest.(check (option string)) "usage untouched" (Some "42")
    (List.assoc_opt "tenant:s:bytes" kvs);
  Alcotest.(check (option string)) "quota untouched" (Some "500")
    (List.assoc_opt "tenant:s:bytes_quota" kvs);
  Alcotest.(check (option int)) "membership untouched" (Some a)
    (Tenant.find reg "s")

(* ---- the Plib tenant surface ------------------------------------------ *)

let test_tenant_ops_and_namespaces () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"ta" ~uid:4001 () in
  let b = Plib.create_tenant p ~name:"tb" ~uid:4002 () in
  Alcotest.(check (option int)) "find_tenant" (Some a)
    (Plib.find_tenant p "ta");
  as_uid 4001 (fun () ->
    Alcotest.(check bool) "a sets" true
      (Plib.tenant_set p a "k" "from-a" = Store.Stored));
  as_uid 4002 (fun () ->
    Alcotest.(check bool) "b sets same unscoped key" true
      (Plib.tenant_set p b "k" "from-b" = Store.Stored));
  as_uid 4001 (fun () ->
    (match Plib.tenant_get p a "k" with
     | Some r -> Alcotest.(check string) "a reads its own" "from-a"
                   r.Store.value
     | None -> Alcotest.fail "a's write lost");
    Alcotest.(check bool) "forged prefix is just a miss" true
      (Plib.tenant_get p a "tb/k" = None);
    Alcotest.(check bool) "a deletes its own" true (Plib.tenant_delete p a "k");
    Alcotest.(check bool) "a's gone" true (Plib.tenant_get p a "k" = None));
  as_uid 4002 (fun () ->
    match Plib.tenant_get p b "k" with
    | Some r ->
      Alcotest.(check string) "b's copy untouched" "from-b" r.Store.value
    | None -> Alcotest.fail "b's write lost to a's delete")

let test_tenant_capability_binding () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"cap" ~uid:4100 () in
  (* Only the owner's euid (or root) may exercise the namespace.  The
     refusal must happen at the door, before the crossing: a raw
     Permission_denied, not a wrapped in-call failure — otherwise one
     denied foreign attempt would poison the library for the owner. *)
  as_uid 4199 (fun () ->
    match Plib.tenant_set p a "x" "nope" with
    | _ -> Alcotest.fail "foreign uid must not bind the capability"
    | exception Pku.Vpkey.Permission_denied _ -> ());
  as_uid 4100 (fun () ->
    Alcotest.(check bool) "owner binds and writes" true
      (Plib.tenant_set p a "x" "yes" = Store.Stored))

let test_vault_readable_only_under_owner_key () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"va" ~uid:4201 () in
  let b = Plib.create_tenant p ~name:"vb" ~uid:4202 () in
  let vault s =
    match Plib.vault p s with Some v -> v | None -> Alcotest.fail "no vault"
  in
  let va = vault a and vb = vault b in
  let vk s =
    Region.kernel_mode (fun () -> Tenant.vkey_of (Plib.tenants p) s)
  in
  (* enable tenant a's capability: its vault opens, b's stays sealed *)
  ignore (Pku.Vpkey.enable ~owner:4201 (vk a));
  Alcotest.(check string) "a's vault readable under a's key" "vault:va"
    (Region.read_string va ~off:8 ~len:8);
  (match Region.read_string vb ~off:8 ~len:8 with
   | _ -> Alcotest.fail "b's vault must be sealed to a"
   | exception Pku.Fault.Protection_fault _ -> ());
  Pku.Vpkey.disable (vk a);
  (match Region.read_string va ~off:8 ~len:8 with
   | _ -> Alcotest.fail "vault must seal on disable"
   | exception Pku.Fault.Protection_fault _ -> ());
  (* a cannot enable b's capability *)
  match Pku.Vpkey.enable ~owner:4201 (vk b) with
  | _ -> Alcotest.fail "cross-tenant enable must be denied"
  | exception Pku.Vpkey.Permission_denied _ -> ()

let test_quota_eviction_is_tenant_local () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"qa" ~uid:4301
      ~byte_quota:(8 * 1024) () in
  let b = Plib.create_tenant p ~name:"qb" ~uid:4302 () in
  as_uid 4302 (fun () ->
    Alcotest.(check bool) "b seeds" true
      (Plib.tenant_set p b "keep" "b-acked" = Store.Stored));
  as_uid 4301 (fun () ->
    let v = String.make 500 'a' in
    for i = 0 to 39 do
      Alcotest.(check bool)
        (Printf.sprintf "a's set %d lands (own eviction makes room)" i)
        true
        (Plib.tenant_set p a (Printf.sprintf "f%d" i) v = Store.Stored)
    done;
    let bytes, items = Plib.tenant_usage p a in
    Alcotest.(check bool) "a capped by quota" true (bytes <= 8 * 1024);
    Alcotest.(check bool) "a kept a working set" true (items > 0));
  as_uid 4302 (fun () ->
    match Plib.tenant_get p b "keep" with
    | Some r -> Alcotest.(check string) "b untouched" "b-acked" r.Store.value
    | None -> Alcotest.fail "a's quota churn evicted b's item");
  (* an item that can never fit is refused, not force-fed *)
  as_uid 4301 (fun () ->
    Alcotest.(check bool) "oversized single item refused" true
      (Plib.tenant_set p a "big" (String.make 9000 'x') = Store.No_memory))

let test_tenant_flush_and_mget () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"fa" ~uid:4401 () in
  let b = Plib.create_tenant p ~name:"fb" ~uid:4402 () in
  as_uid 4402 (fun () ->
    ignore (Plib.tenant_set p b "other" "b-still-here"));
  as_uid 4401 (fun () ->
    for i = 0 to 4 do
      ignore (Plib.tenant_set p a (Printf.sprintf "m%d" i) (string_of_int i))
    done;
    let hits = Plib.tenant_mget p a [ "m0"; "m3"; "missing"; "m4" ] in
    Alcotest.(check int) "mget hits" 3 (List.length hits);
    Alcotest.(check bool) "mget keys are unscoped" true
      (List.mem_assoc "m3" (List.map (fun (k, r) -> (k, r.Store.value)) hits));
    Alcotest.(check int) "flush sweeps own namespace" 5
      (Plib.tenant_flush p a);
    Alcotest.(check bool) "flushed" true (Plib.tenant_get p a "m0" = None));
  as_uid 4402 (fun () ->
    Alcotest.(check bool) "b survives a's flush" true
      (Plib.tenant_get p b "other" <> None))

let test_stats_tenants_rollup () =
  with_plib @@ fun p ~owner:_ ->
  let a = Plib.create_tenant p ~name:"st" ~uid:4501 ~byte_quota:4096 () in
  as_uid 4501 (fun () ->
    ignore (Plib.tenant_set p a "k" "v");
    ignore (Plib.tenant_get p a "k");
    ignore (Plib.tenant_get p a "miss"));
  let kvs = Plib.stats_tenants p in
  let v k = List.assoc_opt ("tenant:st:" ^ k) kvs in
  Alcotest.(check (option string)) "cmd_get" (Some "2") (v "cmd_get");
  Alcotest.(check (option string)) "get_hits" (Some "1") (v "get_hits");
  Alcotest.(check (option string)) "cmd_set" (Some "1") (v "cmd_set");
  Alcotest.(check (option string)) "bytes_quota" (Some "4096")
    (v "bytes_quota");
  Alcotest.(check bool) "items tracked" true (v "items" = Some "1")

(* ---- the socket path: connection-bound identity, both codecs ---------- *)

let serve ~protocol ~assign p name =
  let scfg =
    { Mc_server.Server.default_config with
      workers = 1; protocol; store = small_cfg }
  in
  Plib.serve_remote ~cfg:scfg ~assign_tenant:assign p ~name

let queue_assign names =
  let q = ref names in
  fun _cid ->
    match !q with
    | [] -> None
    | x :: tl ->
      q := tl;
      Some x

let test_server_ascii_tenants () =
  with_plib @@ fun p ~owner:_ ->
  ignore (Plib.create_tenant p ~name:"ta" ~uid:4601 ());
  ignore (Plib.create_tenant p ~name:"tb" ~uid:4602 ());
  let srv =
    serve ~protocol:Mc_server.Server.Ascii
      ~assign:(queue_assign [ "ta"; "tb" ])
      p "tenant-ascii-srv"
  in
  Fun.protect ~finally:(fun () -> Plib.stop_remote srv) @@ fun () ->
  let ca = T.connect ~name:"tenant-ascii-srv" in
  let cb = T.connect ~name:"tenant-ascii-srv" in
  let rpc c payload =
    T.client_send c payload;
    T.client_recv c
  in
  Alcotest.(check bool) "a stores" true
    (has_sub ~needle:"STORED" (rpc ca "set k 0 0 6\r\nfrom-a\r\n"));
  Alcotest.(check bool) "b misses a's key" false
    (has_sub ~needle:"from-a" (rpc cb "get k\r\n"));
  let got = rpc ca "get k\r\n" in
  Alcotest.(check bool) "a hits its own, unscoped name" true
    (has_sub ~needle:"VALUE k 0 6" got && has_sub ~needle:"from-a" got);
  Alcotest.(check bool) "forged prefix misses" false
    (has_sub ~needle:"from-a" (rpc cb "get ta/k\r\n"));
  Alcotest.(check bool) "flush_all refused on tenant conn" true
    (has_sub ~needle:"ERROR" (rpc cb "flush_all\r\n"));
  let stats = rpc ca "stats tenants\r\n" in
  Alcotest.(check bool) "rollup lists ta" true
    (has_sub ~needle:"tenant:ta:cmd_get" stats);
  Alcotest.(check bool) "rollup lists tb" true
    (has_sub ~needle:"tenant:tb:cmd_get" stats);
  ignore (rpc ca "stats reset\r\n");
  let stats = rpc ca "stats tenants\r\n" in
  Alcotest.(check bool) "reset keeps membership" true
    (has_sub ~needle:"STAT tenant:ta:cmd_get 0" stats);
  Alcotest.(check (option int)) "registry intact after reset" (Some 1)
    (Plib.find_tenant p "tb")

let test_server_binary_tenants () =
  with_plib @@ fun p ~owner:_ ->
  ignore (Plib.create_tenant p ~name:"ba" ~uid:4701 ());
  ignore (Plib.create_tenant p ~name:"bb" ~uid:4702 ());
  let srv =
    serve ~protocol:Mc_server.Server.Binary
      ~assign:(queue_assign [ "ba"; "bb" ])
      p "tenant-bin-srv"
  in
  Fun.protect ~finally:(fun () -> Plib.stop_remote srv) @@ fun () ->
  let ca = T.connect ~name:"tenant-bin-srv" in
  let cb = T.connect ~name:"tenant-bin-srv" in
  let rpc c cmd =
    T.client_send c (Mc_protocol.Binary.encode_command cmd);
    T.client_recv c
  in
  let set_k =
    P.Set
      { P.key = "k"; flags = 0; exptime = 0; data = "bin-secret-a";
        noreply = false }
  in
  let get_k = P.Getx { g_key = "k"; g_quiet = false; g_withkey = true } in
  ignore (rpc ca set_k);
  Alcotest.(check bool) "binary: a reads its own" true
    (has_sub ~needle:"bin-secret-a" (rpc ca get_k));
  Alcotest.(check bool) "binary: b misses a's key" false
    (has_sub ~needle:"bin-secret-a" (rpc cb get_k));
  Alcotest.(check bool) "binary: forged prefix misses" false
    (has_sub ~needle:"bin-secret-a"
       (rpc cb
          (P.Getx { g_key = "ba/k"; g_quiet = false; g_withkey = true })));
  let stats = rpc ca (P.Stats (Some "tenants")) in
  Alcotest.(check bool) "binary stats tenants rolls up" true
    (has_sub ~needle:"tenant:ba:cmd_get" stats
     && has_sub ~needle:"tenant:bb:cmd_get" stats)

(* Online quota enforcement on the socket path: the executor's store
   arm consults the tenant registry before admitting bytes, evicting
   tenant-locally to make room, and refuses what can never fit — same
   policy the trampoline path enforces, now for remote clients. The
   same assertions run over the legacy per-message transport and the
   shared-ring transport: enforcement lives below both. *)
let server_quota_enforcement ~rings () =
  with_plib @@ fun p ~owner:_ ->
  ignore (Plib.create_tenant p ~name:"qs" ~uid:4801 ~byte_quota:4096 ());
  ignore (Plib.create_tenant p ~name:"qo" ~uid:4802 ());
  let scfg =
    { Mc_server.Server.default_config with
      workers = 1; protocol = Mc_server.Server.Ascii; store = small_cfg }
  in
  let rings = if rings then Some Mc_server.Server.default_ring_config
    else None in
  let name = "tenant-quota-srv" ^ if rings <> None then "-rings" else "" in
  let srv =
    Plib.serve_remote ~cfg:scfg ?rings
      ~assign_tenant:(queue_assign [ "qs"; "qo" ])
      p ~name
  in
  Fun.protect ~finally:(fun () -> Plib.stop_remote srv) @@ fun () ->
  let cs = T.connect ~name in
  let co = T.connect ~name in
  let rpc c payload =
    T.client_send c payload;
    T.client_recv c
  in
  Alcotest.(check bool) "bystander tenant seeds" true
    (has_sub ~needle:"STORED" (rpc co "set keep 0 0 7\r\nqo-safe\r\n"));
  (* Churn well past the quota: every set lands because the tenant's
     own LRU gives ground, and usage stays capped the whole time. *)
  let v = String.make 300 'q' in
  for i = 0 to 29 do
    Alcotest.(check bool)
      (Printf.sprintf "set %d admitted via tenant-local eviction" i)
      true
      (has_sub ~needle:"STORED"
         (rpc cs (Printf.sprintf "set f%d 0 0 300\r\n%s\r\n" i v)))
  done;
  let slot = Option.get (Plib.find_tenant p "qs") in
  let bytes, items = Plib.tenant_usage p slot in
  Alcotest.(check bool)
    (Printf.sprintf "usage %dB capped by the 4096B quota" bytes)
    true (bytes <= 4096);
  Alcotest.(check bool) "a working set survives" true (items > 0);
  (* An item that can never fit is refused online, not force-fed. *)
  Alcotest.(check bool) "oversized item refused with SERVER_ERROR" true
    (has_sub ~needle:"SERVER_ERROR out of memory"
       (rpc cs
          (Printf.sprintf "set big 0 0 6000\r\n%s\r\n" (String.make 6000 'x'))));
  (* The churn never spilled into the other namespace. *)
  Alcotest.(check bool) "bystander untouched by the churn" true
    (has_sub ~needle:"qo-safe" (rpc co "get keep\r\n"))

let test_server_quota_legacy () = server_quota_enforcement ~rings:false ()

let test_server_quota_rings () = server_quota_enforcement ~rings:true ()

(* ---- seeded cross-tenant isolation sweep under the VM ----------------- *)

module VCl = Core.Client.Make (Vm.Sync)
module VPlib = VCl.Plib

let iso_seeds () =
  match Sys.getenv_opt "REDTEAM_SEEDS" with
  | Some s -> (try max 4 (int_of_string s) with _ -> 24)
  | None -> 24

let iso_fresh = ref 0

(* Four tenants race under a perturbed-but-deterministic schedule:
   A churns and mid-run flushes its namespace, B and C run disjoint
   acked workloads through the trampoline, and D runs its acked
   workload remotely — over a ring-transport socket connection, so
   the executor's online quota/namespace enforcement is in the raced
   path too. At quiescence: every surviving acked write is readable
   exactly in its own namespace, nothing migrated, usage equals a
   recomputation, and the vpkey table is consistent. *)
let run_iso ~seed =
  incr iso_fresh;
  let path = Printf.sprintf "/shm/iso-%d-%d" seed !iso_fresh in
  let owner = Process.make ~uid:1000 "iso-bk" in
  let p = VPlib.create ~store_cfg:small_cfg ~path ~size:(4 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (VPlib.library p);
      Pku.Vpkey.reset ();
      Pku.Pkru.reset_thread ())
    (fun () ->
      let vm = Vm.create ~sched_seed:seed ~preempt_jitter:60 () in
      let fail = ref [] in
      let model_b : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let model_c : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let model_d : (string, string) Hashtbl.t = Hashtbl.create 16 in
      ignore
        (Vm.spawn vm ~name:"main" (fun () ->
           let sa, sb, sc, sd =
             Process.with_process owner (fun () ->
               ( VPlib.create_tenant p ~name:"ia" ~uid:5001
                   ~byte_quota:(16 * 1024) (),
                 VPlib.create_tenant p ~name:"ib" ~uid:5002 (),
                 VPlib.create_tenant p ~name:"ic" ~uid:5003 (),
                 VPlib.create_tenant p ~name:"id" ~uid:5004
                   ~byte_quota:(8 * 1024) () ))
           in
           let srv_name = Printf.sprintf "iso-srv-%d-%d" seed !iso_fresh in
           let srv =
             VPlib.serve_remote
               ~cfg:
                 { Mc_server.Server.default_config with
                   workers = 1; store = small_cfg }
               ~rings:Mc_server.Server.default_ring_config
               ~assign_tenant:(fun _ -> Some "id")
               p ~name:srv_name
           in
           let dconn = VCl.Sock.connect ~name:srv_name () in
           let tA =
             Vm.Sync.spawn ~name:"ten-a" (fun () ->
               as_uid 5001 (fun () ->
                 for i = 0 to 13 do
                   if i = 7 then ignore (VPlib.tenant_flush p sa)
                   else
                     ignore
                       (VPlib.tenant_set p sa
                          (Printf.sprintf "a%d" (i mod 4))
                          (String.make (50 + (i * 37 mod 200)) 'a'));
                   Vm.Sync.advance 30
                 done))
           in
           let worker name uid slot prefix model =
             Vm.Sync.spawn ~name (fun () ->
               as_uid uid (fun () ->
                 for i = 0 to 13 do
                   let k = Printf.sprintf "%s%d" prefix (i mod 4) in
                   (match i mod 5 with
                    | 4 ->
                      if VPlib.tenant_delete p slot k then
                        Hashtbl.remove model k
                    | 3 -> ignore (VPlib.tenant_get p slot k)
                    | _ ->
                      let v = Printf.sprintf "%s-%d-%d" prefix seed i in
                      if VPlib.tenant_set p slot k v = Store.Stored then
                        Hashtbl.replace model k v);
                   Vm.Sync.advance 30
                 done))
           in
           let tB = worker "ten-b" 5002 sb "b" model_b in
           let tC = worker "ten-c" 5003 sc "c" model_c in
           (* D's workload rides the ring transport; its connection is
              bound to tenant "id", so every key below is scoped by
              the server, and its stores go through the executor's
              online quota arm. *)
           let tD =
             Vm.Sync.spawn ~name:"ten-d" (fun () ->
               for i = 0 to 13 do
                 let k = Printf.sprintf "d%d" (i mod 4) in
                 (match i mod 5 with
                  | 4 ->
                    if VCl.Sock.delete dconn k then Hashtbl.remove model_d k
                  | 3 -> ignore (VCl.Sock.get dconn k)
                  | _ ->
                    let v = Printf.sprintf "d-%d-%d" seed i in
                    if VCl.Sock.set dconn k v = Store.Stored then
                      Hashtbl.replace model_d k v);
                 Vm.Sync.advance 30
               done)
           in
           Vm.Sync.join tA;
           Vm.Sync.join tB;
           Vm.Sync.join tC;
           Vm.Sync.join tD;
           (* quiescence: verify isolation *)
           let note m = fail := m :: !fail in
           Hashtbl.iter
             (fun k v ->
               match VCl.Sock.get dconn k with
               | Some r when r.Store.value = v -> ()
               | _ -> note ("d acked write wrong: " ^ k))
             model_d;
           Hashtbl.iter
             (fun k _ ->
               if VCl.Sock.get dconn k <> None then
                 note ("b key visible through d's connection: " ^ k))
             model_b;
           VPlib.stop_remote srv;
           as_uid 5002 (fun () ->
             Hashtbl.iter
               (fun k v ->
                 match VPlib.tenant_get p sb k with
                 | Some r when r.Store.value = v -> ()
                 | _ -> note ("b acked write wrong: " ^ k))
               model_b;
             Hashtbl.iter
               (fun k _ ->
                 if VPlib.tenant_get p sb k <> None then
                   note ("c key visible through b: " ^ k))
               model_c);
           as_uid 5003 (fun () ->
             Hashtbl.iter
               (fun k v ->
                 match VPlib.tenant_get p sc k with
                 | Some r when r.Store.value = v -> ()
                 | _ -> note ("c acked write wrong: " ^ k))
               model_c;
             Hashtbl.iter
               (fun k _ ->
                 if VPlib.tenant_get p sc k <> None then
                   note ("b key visible through c: " ^ k))
               model_b);
           let reg = VPlib.tenants p in
           Region.kernel_mode (fun () ->
             VPlib.Store.check_invariants (VPlib.store p);
             VPlib.Store.fold_keys (VPlib.store p)
               (fun () key ~nbytes:_ ~exptime:_ ->
                 if Tenant.owner_slot_of_key reg key = None then
                   note ("key outside every namespace: " ^ key))
               ());
           (* usage counters match the store's truth *)
           let usage = Hashtbl.create 4 in
           Region.kernel_mode (fun () ->
             VPlib.Store.fold_keys (VPlib.store p)
               (fun () key ~nbytes ~exptime:_ ->
                 match Tenant.owner_slot_of_key reg key with
                 | Some s ->
                   let b, i =
                     Option.value (Hashtbl.find_opt usage s) ~default:(0, 0)
                   in
                   Hashtbl.replace usage s
                     (b + String.length key + nbytes, i + 1)
                 | None -> ())
               ());
           List.iter
             (fun slot ->
               let want =
                 Option.value (Hashtbl.find_opt usage slot) ~default:(0, 0)
               in
               if VPlib.tenant_usage p slot <> want then
                 note (Printf.sprintf "usage drift on slot %d" slot))
             [ sa; sb; sc; sd ];
           Pku.Vpkey.check_invariants ()));
      Vm.run vm;
      match !fail with
      | [] -> ()
      | m :: _ ->
        Alcotest.fail (Printf.sprintf "seed %d: %s" seed m))

let test_iso_sweep () =
  let n = iso_seeds () in
  for seed = 1 to n do
    run_iso ~seed
  done

let () =
  Alcotest.run "tenant"
    [ ( "registry",
        [ Alcotest.test_case "crud" `Quick test_registry_crud;
          Alcotest.test_case "rejects" `Quick test_registry_rejects;
          Alcotest.test_case "quota accounting" `Quick
            test_registry_quota_accounting;
          Alcotest.test_case "stats reset keeps membership" `Quick
            test_registry_stats_reset_keeps_membership ] );
      ( "plib",
        [ Alcotest.test_case "ops + namespaces" `Quick
            test_tenant_ops_and_namespaces;
          Alcotest.test_case "capability binding" `Quick
            test_tenant_capability_binding;
          Alcotest.test_case "vault sealed to others" `Quick
            test_vault_readable_only_under_owner_key;
          Alcotest.test_case "quota eviction is tenant-local" `Quick
            test_quota_eviction_is_tenant_local;
          Alcotest.test_case "flush + mget" `Quick test_tenant_flush_and_mget;
          Alcotest.test_case "stats tenants rollup" `Quick
            test_stats_tenants_rollup ] );
      ( "server",
        [ Alcotest.test_case "ascii codec" `Quick test_server_ascii_tenants;
          Alcotest.test_case "binary codec" `Quick test_server_binary_tenants;
          Alcotest.test_case "online quota, legacy transport" `Quick
            test_server_quota_legacy;
          Alcotest.test_case "online quota, ring transport" `Quick
            test_server_quota_rings ] );
      ( "isolation sweep",
        [ Alcotest.test_case "seeded schedules" `Quick test_iso_sweep ] ) ]
