(** Ralloc reimplementation: size classes, superblock lifecycle,
    thread caches, large allocations, roots, pptrs, recovery. *)

module Region = Shm.Region

let fresh ?(size = 8 * 1024 * 1024) () =
  let reg = Region.create ~name:"heap" ~size ~pkey:0 () in
  (reg, Ralloc.create reg)

let test_class_of_size () =
  Alcotest.(check int) "size 1 -> class 0" 0 (Ralloc.class_of_size 1);
  Alcotest.(check int) "size 16 -> class 0" 0 (Ralloc.class_of_size 16);
  Alcotest.(check int) "size 17 -> class 1" 1 (Ralloc.class_of_size 17);
  Alcotest.(check int) "max small maps to last class"
    (Array.length Ralloc.size_classes - 1)
    (Ralloc.class_of_size Ralloc.max_small);
  Alcotest.(check int) "beyond max small is large"
    (Array.length Ralloc.size_classes)
    (Ralloc.class_of_size (Ralloc.max_small + 1))

let test_alloc_separates_blocks () =
  let reg, h = fresh () in
  let a = Ralloc.alloc h 64 and b = Ralloc.alloc h 64 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Region.write_i64 reg a 1;
  Region.write_i64 reg b 2;
  Alcotest.(check int) "no overlap" 1 (Region.read_i64 reg a)

let test_usable_size () =
  let _, h = fresh () in
  let a = Ralloc.alloc h 50 in
  Alcotest.(check int) "rounded to class" 64 (Ralloc.usable_size h a);
  let big = Ralloc.alloc h 100_000 in
  Alcotest.(check bool) "large usable covers request" true
    (Ralloc.usable_size h big >= 100_000)

let test_free_reuse_through_cache () =
  let _, h = fresh () in
  let a = Ralloc.alloc h 64 in
  Ralloc.free h a;
  let b = Ralloc.alloc h 64 in
  Alcotest.(check int) "cache returns the freed block" a b

let test_used_bytes_accounting () =
  let _, h = fresh () in
  Alcotest.(check int) "fresh heap unused" 0 (Ralloc.used_bytes h);
  let offs = List.init 100 (fun _ -> Ralloc.alloc h 128) in
  Alcotest.(check bool) "used grows" true (Ralloc.used_bytes h >= 100 * 128);
  List.iter (Ralloc.free h) offs;
  Ralloc.flush_thread_cache h;
  Alcotest.(check int) "all returned" 0 (Ralloc.used_bytes h)

let test_superblock_released_when_empty () =
  let _, h = fresh ~size:(2 * 1024 * 1024) () in
  (* Exhaust most of the heap with one class, free everything, then
     allocate a different class: storage must be recycled. *)
  let n = 100 in
  let offs = List.init n (fun _ -> Ralloc.alloc h 12_000) in
  List.iter (Ralloc.free h) offs;
  Ralloc.flush_thread_cache h;
  let offs2 = List.init n (fun _ -> Ralloc.alloc h 3_000) in
  Alcotest.(check int) "second class allocated fine" n (List.length offs2);
  Ralloc.check_invariants h

let test_large_alloc_roundtrip () =
  let reg, h = fresh () in
  let big = Ralloc.alloc h (3 * Ralloc.superblock_size) in
  Region.write_i64 reg (big + (3 * Ralloc.superblock_size) - 8) 7;
  Ralloc.check_invariants h;
  Ralloc.free h big;
  Alcotest.(check int) "freed" 0 (Ralloc.used_bytes h);
  let big2 = Ralloc.alloc h (3 * Ralloc.superblock_size) in
  Alcotest.(check bool) "storage reused" true (big2 <> 0);
  Ralloc.check_invariants h

let test_out_of_heap () =
  let _, h = fresh ~size:(256 * 1024) () in
  (match
     let rec go acc = go (Ralloc.alloc h 16_000 :: acc) in
     go []
   with
  | _ -> Alcotest.fail "expected Out_of_heap"
  | exception Ralloc.Out_of_heap -> ());
  Ralloc.check_invariants h

let test_free_rejects_garbage () =
  let _, h = fresh () in
  List.iter
    (fun off ->
      match Ralloc.free h off with
      | _ -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())
    [ -1; 0; 17 ]

let test_roots_and_pptr () =
  let reg, h = fresh () in
  let a = Ralloc.alloc h 64 in
  Ralloc.set_root h 5 a;
  Alcotest.(check int) "root readable" a (Ralloc.get_root h 5);
  Alcotest.(check int) "unset root is null" 0 (Ralloc.get_root h 6);
  Ralloc.set_root h 5 0;
  Alcotest.(check int) "root cleared" 0 (Ralloc.get_root h 5);
  (* raw pptr cells *)
  let cell = Ralloc.alloc h 16 in
  Ralloc.Pptr.store reg ~at:cell a;
  Alcotest.(check int) "pptr resolves" a (Ralloc.Pptr.load reg ~at:cell);
  Alcotest.(check bool) "non-null" false (Ralloc.Pptr.is_null reg ~at:cell);
  Ralloc.Pptr.store reg ~at:cell 0;
  Alcotest.(check bool) "null encoding" true (Ralloc.Pptr.is_null reg ~at:cell)

let test_root_id_bounds () =
  let _, h = fresh () in
  (match Ralloc.set_root h Ralloc.root_slots 1 with
   | _ -> Alcotest.fail "expected bounds failure"
   | exception Invalid_argument _ -> ())

let test_recovery_scan () =
  let path = Filename.temp_file "heap" ".img" in
  let reg, h = fresh () in
  let keep = Ralloc.alloc h 200 in
  let dead = Ralloc.alloc h 200 in
  Region.write_string reg ~off:keep "survivor";
  Ralloc.free h dead;
  Ralloc.set_root h 0 keep;
  Ralloc.flush h ~path;
  let reg2 = Region.load ~path in
  let h2 = Ralloc.attach reg2 in
  let keep2 = Ralloc.get_root h2 0 in
  Alcotest.(check string) "data reachable after reattach" "survivor"
    (Region.read_string reg2 ~off:keep2 ~len:8);
  Alcotest.(check int) "used bytes rescanned (one 256B block)" 256
    (Ralloc.used_bytes h2);
  Ralloc.check_invariants h2;
  Sys.remove path

let test_attach_rejects_unformatted () =
  let reg = Region.create ~name:"raw" ~size:(1 lsl 20) ~pkey:0 () in
  (match Ralloc.attach reg with
   | _ -> Alcotest.fail "expected magic failure"
   | exception Failure _ -> ())

let test_multithreaded_churn () =
  let _, h = fresh ~size:(16 * 1024 * 1024) () in
  let threads =
    List.init 4 (fun t ->
      Thread.create
        (fun () ->
          let rng = Random.State.make [| t |] in
          let live = ref [] in
          for _ = 0 to 3_000 do
            let sz = 1 + Random.State.int rng 2_000 in
            live := Ralloc.alloc h sz :: !live;
            if List.length !live > 50 then begin
              match !live with
              | x :: rest ->
                Ralloc.free h x;
                live := rest
              | [] -> ()
            end
          done;
          List.iter (Ralloc.free h) !live;
          Ralloc.flush_thread_cache h)
        ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all memory returned" 0 (Ralloc.used_bytes h);
  Ralloc.check_invariants h

let test_exact_superblock_boundary_sizes () =
  let _, h = fresh () in
  (* sizes straddling the small/large boundary and sb multiples *)
  List.iter
    (fun sz ->
      let o = Ralloc.alloc h sz in
      Alcotest.(check bool) (Printf.sprintf "size %d allocates" sz) true (o <> 0);
      Alcotest.(check bool) "usable covers" true (Ralloc.usable_size h o >= sz);
      Ralloc.free h o)
    [ Ralloc.max_small - 1; Ralloc.max_small; Ralloc.max_small + 1;
      Ralloc.superblock_size - 128; Ralloc.superblock_size;
      Ralloc.superblock_size + 1; (2 * Ralloc.superblock_size) - 128 ];
  Ralloc.flush_thread_cache h;
  Alcotest.(check int) "all returned" 0 (Ralloc.used_bytes h);
  Ralloc.check_invariants h

let test_two_heaps_independent () =
  let rega, ha = fresh () in
  let regb, hb = fresh () in
  let a = Ralloc.alloc ha 64 and b = Ralloc.alloc hb 64 in
  Shm.Region.write_string rega ~off:a "AAAA";
  Shm.Region.write_string regb ~off:b "BBBB";
  Alcotest.(check string) "heap A unaffected by heap B" "AAAA"
    (Shm.Region.read_string rega ~off:a ~len:4);
  Ralloc.set_root ha 0 a;
  Alcotest.(check int) "roots are per-heap" 0 (Ralloc.get_root hb 0)

let test_attach_returns_shared_runtime () =
  let reg, h = fresh () in
  let h2 = Ralloc.attach reg in
  (* both handles share the runtime: an alloc through one is visible
     in the accounting of the other *)
  let o = Ralloc.alloc h 64 in
  Alcotest.(check bool) "shared used accounting" true
    (Ralloc.used_bytes h2 >= 64);
  Ralloc.free h o

let test_root_overwrite () =
  let _, h = fresh () in
  let a = Ralloc.alloc h 64 and b = Ralloc.alloc h 64 in
  Ralloc.set_root h 0 a;
  Ralloc.set_root h 0 b;
  Alcotest.(check int) "root re-points" b (Ralloc.get_root h 0)

(* ---- Heap observatory ------------------------------------------------ *)

let test_heap_map_reconciles () =
  let _, h = fresh () in
  let reconcile tag =
    let m = Ralloc.heap_map h in
    Alcotest.(check int) (tag ^ ": live bytes = used bytes")
      (Ralloc.used_bytes h) m.Ralloc.hm_live_bytes;
    let small =
      Array.fold_left
        (fun a hc -> a + (hc.Ralloc.hc_live * hc.Ralloc.hc_block_size))
        0 m.Ralloc.hm_classes
    in
    Alcotest.(check int) (tag ^ ": classes + large runs sum to live")
      m.Ralloc.hm_live_bytes
      (small + m.Ralloc.hm_large_bytes);
    Alcotest.(check int) (tag ^ ": superblock kinds partition the heap")
      m.Ralloc.hm_total_sbs
      (m.Ralloc.hm_small_sbs + m.Ralloc.hm_large_sbs + m.Ralloc.hm_free_sbs
       + m.Ralloc.hm_fresh_sbs);
    Array.iter
      (fun hc ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: class %d live <= carved <= capacity" tag
             hc.Ralloc.hc_block_size)
          true
          (hc.Ralloc.hc_live <= hc.Ralloc.hc_carved
           && hc.Ralloc.hc_carved <= hc.Ralloc.hc_capacity))
      m.Ralloc.hm_classes
  in
  reconcile "fresh heap";
  let small =
    List.init 200 (fun i -> Ralloc.alloc h (16 + ((i mod 40) * 50)))
  in
  let large =
    List.init 4 (fun i -> Ralloc.alloc h (100_000 + (i * 30_000)))
  in
  reconcile "after mixed allocs";
  (* Every other small block goes back: it parks in the thread cache
     yet must still count as live on both sides of the reconciliation
     (the cache is a loan, not a return). *)
  List.iteri (fun i o -> if i mod 2 = 0 then Ralloc.free h o) small;
  reconcile "with frees parked in the thread cache";
  Ralloc.flush_thread_cache h;
  reconcile "after cache flush";
  List.iteri (fun i o -> if i mod 2 = 1 then Ralloc.free h o) small;
  List.iter (Ralloc.free h) large;
  Ralloc.flush_thread_cache h;
  reconcile "after freeing everything";
  Alcotest.(check int) "empty heap maps to zero live bytes" 0
    (Ralloc.heap_map h).Ralloc.hm_live_bytes

let test_heap_map_fragmentation_monotone () =
  let _, h = fresh () in
  (* 2k+1 single-superblock large runs carved back to back; freeing
     the interior even-indexed ones one at a time punches isolated
     one-superblock holes while the largest free extent (the fresh
     tail) stays put, so the external-fragmentation ratio must climb
     monotonically — the pathological interleaving the observatory
     exists to expose. *)
  let run_bytes = max (Ralloc.max_small + 1) (Ralloc.superblock_size / 2) in
  let k = 8 in
  let runs = Array.init ((2 * k) + 1) (fun _ -> Ralloc.alloc h run_bytes) in
  let frag0 = (Ralloc.heap_map h).Ralloc.hm_ext_frag in
  let prev = ref frag0 in
  for i = 0 to k - 1 do
    Ralloc.free h runs.(2 * i);
    let m = Ralloc.heap_map h in
    Alcotest.(check int)
      (Printf.sprintf "hole %d visible as a free superblock" i)
      (i + 1) m.Ralloc.hm_free_sbs;
    Alcotest.(check bool)
      (Printf.sprintf "ext frag non-decreasing at hole %d (%.4f -> %.4f)" i
         !prev m.Ralloc.hm_ext_frag)
      true
      (m.Ralloc.hm_ext_frag >= !prev -. 1e-9);
    prev := m.Ralloc.hm_ext_frag
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fragmentation climbed overall (%.4f -> %.4f)" frag0 !prev)
    true
    (!prev > frag0 +. 0.01);
  (* Freeing the separators coalesces every hole into one extent
     ending at the carve frontier: the ratio collapses to zero. *)
  Array.iteri
    (fun i o -> if i mod 2 = 1 || i = 2 * k then Ralloc.free h o)
    runs;
  let m = Ralloc.heap_map h in
  Alcotest.(check (float 1e-9)) "defragmented heap has zero ext frag" 0.
    m.Ralloc.hm_ext_frag;
  Alcotest.(check int) "no live bytes remain" 0 m.Ralloc.hm_live_bytes

let qcheck_usable_size_covers_request =
  QCheck.Test.make ~name:"usable_size always covers the request" ~count:200
    QCheck.(int_range 1 200_000)
    (fun sz ->
      let _, h = fresh () in
      let o = Ralloc.alloc h sz in
      let ok = Ralloc.usable_size h o >= sz in
      Ralloc.free h o;
      ok)

let qcheck_churn_preserves_invariants =
  QCheck.Test.make ~name:"random alloc/free preserves heap invariants"
    ~count:25
    QCheck.(small_list (int_range 1 20_000))
    (fun sizes ->
      let _, h = fresh () in
      let offs = List.map (fun sz -> (Ralloc.alloc h sz, sz)) sizes in
      (* no two live blocks overlap *)
      let sorted = List.sort compare offs in
      let rec no_overlap = function
        | (o1, _) :: ((o2, _) :: _ as rest) ->
          o1 + Ralloc.usable_size h o1 <= o2 && no_overlap rest
        | _ -> true
      in
      let ok = no_overlap sorted in
      List.iter (fun (o, _) -> Ralloc.free h o) offs;
      Ralloc.flush_thread_cache h;
      Ralloc.check_invariants h;
      ok && Ralloc.used_bytes h = 0)

let qcheck_pptr_position_independent =
  QCheck.Test.make ~name:"pptr encodes distance, not address" ~count:100
    QCheck.(pair (int_range 64 2048) (int_range 64 2048))
    (fun (cell8, target8) ->
      (* distance 0 encodes null, so a pptr cannot name its own cell *)
      QCheck.assume (cell8 <> target8);
      let reg = Region.create ~name:"q" ~size:65536 ~pkey:0 () in
      let cell = cell8 * 8 and target = target8 * 8 in
      Ralloc.Pptr.store reg ~at:cell target;
      (* the stored word is the self-relative distance *)
      Region.read_i64 reg cell = target - cell
      && Ralloc.Pptr.load reg ~at:cell = target)

let () =
  Alcotest.run "ralloc"
    [ ( "classes",
        [ Alcotest.test_case "class_of_size" `Quick test_class_of_size;
          Alcotest.test_case "blocks disjoint" `Quick
            test_alloc_separates_blocks;
          Alcotest.test_case "usable_size" `Quick test_usable_size ] );
      ( "lifecycle",
        [ Alcotest.test_case "cache reuse" `Quick test_free_reuse_through_cache;
          Alcotest.test_case "used accounting" `Quick
            test_used_bytes_accounting;
          Alcotest.test_case "superblock release" `Quick
            test_superblock_released_when_empty;
          Alcotest.test_case "large roundtrip" `Quick test_large_alloc_roundtrip;
          Alcotest.test_case "out of heap" `Quick test_out_of_heap;
          Alcotest.test_case "free rejects garbage" `Quick
            test_free_rejects_garbage;
          Alcotest.test_case "multithreaded churn" `Slow
            test_multithreaded_churn;
          Alcotest.test_case "boundary sizes" `Quick
            test_exact_superblock_boundary_sizes;
          Alcotest.test_case "two heaps independent" `Quick
            test_two_heaps_independent;
          Alcotest.test_case "attach shares runtime" `Quick
            test_attach_returns_shared_runtime;
          Alcotest.test_case "root overwrite" `Quick test_root_overwrite;
          Alcotest.test_case "heap map reconciles" `Quick
            test_heap_map_reconciles;
          Alcotest.test_case "heap map fragmentation monotone" `Quick
            test_heap_map_fragmentation_monotone;
          QCheck_alcotest.to_alcotest qcheck_usable_size_covers_request;
          QCheck_alcotest.to_alcotest qcheck_churn_preserves_invariants ] );
      ( "persistence",
        [ Alcotest.test_case "roots and pptr" `Quick test_roots_and_pptr;
          Alcotest.test_case "root bounds" `Quick test_root_id_bounds;
          Alcotest.test_case "recovery scan" `Quick test_recovery_scan;
          Alcotest.test_case "attach rejects raw region" `Quick
            test_attach_rejects_unformatted;
          QCheck_alcotest.to_alcotest qcheck_pptr_position_independent ] ) ]
