(** Crash-point injection sweep + post-crash recovery (the PR's
    headline test).

    Every visible sync point of a victim thread is an indexed kill
    site; the sweep runs the same deterministic workload once per site,
    SIGKILLs the victim abruptly there (continuation dropped, no
    unwinding — whatever it was mutating stays half-done), then runs
    the recovery protocol and asserts:

    - [Store.check_invariants] and [Ralloc.check_invariants] pass;
    - every write a {e surviving} client had acknowledged is still
      readable with the acknowledged value (and acknowledged deletes
      stay deleted);
    - the allocator's used-byte accounting equals exactly the live
      set handed back by [Store.recover] — a reverted or weakened
      [Ralloc.recover] shows up here as a leak;
    - the store takes fresh traffic afterwards.

    Workload A drives the full protected-library stack (trampolines,
    copy-in, shared heap) with one victim and two surviving client
    processes. Workload B drives the store directly under memory
    pressure (evictions, expiry reaping) with any of three workers as
    the victim. [CRASH_SWEEP_KMAX] caps the number of sites per
    workload (the CI smoke job sets it); unset, the two sweeps
    together cover 200+ kill sites. *)

module VCl = Core.Client.Make (Vm.Sync)
module Plib = VCl.Plib
module Process = Simos.Process
module Store = Mc_core.Store
module SM = Mc_core.Shared_memory
module RA = Mc_core.Ralloc_alloc

let cap () =
  match Sys.getenv_opt "CRASH_SWEEP_KMAX" with
  | Some s -> (try int_of_string s with _ -> max_int)
  | None -> max_int

(* Sites actually killed, accumulated across the sweep tests and
   checked by the final coverage case. *)
let sites_a = ref 0

let sites_b = ref 0

type expect = Val of string | Absent

let assert_conserved heap live =
  let expected =
    List.fold_left (fun acc off -> acc + Ralloc.usable_size heap off) 0 live
  in
  let used = Ralloc.used_bytes heap in
  if used <> expected then
    Alcotest.fail
      (Printf.sprintf
         "allocator leak after recovery: used=%d bytes but the live set \
          accounts for %d"
         used expected)

(* Post-recovery telemetry consistency: the counter block is rooted in
   the shared heap and sifted by recovery, so after a kill + repair it
   must still tell a coherent story. [stats] is the store's own
   key/value reply. *)
let assert_telemetry_consistent stats =
  let v k =
    match List.assoc_opt k stats with
    | Some s -> (try int_of_string s with _ ->
        Alcotest.fail (Printf.sprintf "stats %s=%S is not an integer" k s))
    | None -> 0
  in
  let module C = Telemetry.Counters in
  let enter = C.read C.Id.hodor_enter and exits = C.read C.Id.hodor_exit in
  if exits > enter then
    Alcotest.fail
      (Printf.sprintf "telemetry: hodor_exit %d exceeds hodor_enter %d" exits
         enter);
  let total = v "total_items" in
  if v "curr_items" > total then
    Alcotest.fail
      (Printf.sprintf "telemetry: curr_items %d exceeds total_items %d"
         (v "curr_items") total);
  if v "evictions" + v "expired_unfetched" + v "delete_hits" > total then
    Alcotest.fail
      (Printf.sprintf
         "telemetry: removals (%d+%d+%d) exceed total_items %d after recovery"
         (v "evictions") (v "expired_unfetched") (v "delete_hits") total);
  (* Latency histogram summaries parse and are ordered. *)
  List.iter
    (fun op ->
      match Telemetry.Timers.get op with
      | None -> ()
      | Some h ->
        let module H = Telemetry.Histogram in
        let p50 = H.percentile h 50.0 and p99 = H.percentile h 99.0 in
        if not (p50 <= p99 && p99 <= H.max_value h) then
          Alcotest.fail
            (Printf.sprintf "telemetry: %s percentiles disordered: %d/%d/%d"
               op p50 p99 (H.max_value h)))
    (Telemetry.Timers.ops ())

(* ---- Forensic ground truth ----------------------------------------- *)

(* Captured inside [on_crash], while the dying thread's TLS is still
   current: the same per-thread state the breadcrumbs are written from,
   read directly at the kill instant. The post-recovery forensic
   report must reproduce this classification from the flight ring
   alone, under the classifier's own priority (stripes held > ring
   drain > trampoline crossing > idle). *)
let kill_site_truth () =
  let module F = Telemetry.Forensics in
  if Store.holding_stripes_now () > 0 then F.Holding_stripes
  else if Mc_server.Server.in_ring_drain_now () then F.Mid_ring_drain
  else if Hodor.Trampoline.on_library_stack () then F.Mid_crossing
  else F.Idle

(* Death-classification tallies per workload, printed after each sweep
   (the greppable [forensics.*] lines EXPERIMENTS.md's table quotes). *)
let class_ix = function
  | Telemetry.Forensics.Idle -> 0
  | Telemetry.Forensics.Mid_crossing -> 1
  | Telemetry.Forensics.Holding_stripes -> 2
  | Telemetry.Forensics.Mid_ring_drain -> 3

let print_tally name t =
  Printf.printf
    "forensics.%s idle=%d mid_crossing=%d holding_stripes=%d \
     mid_ring_drain=%d\n%!"
    name t.(0) t.(1) t.(2) t.(3)

(* Post-recovery: the report [Plib.recover] stashed right after
   repairing the heap is structurally sound (no torn records, victim
   named), classifies the death exactly as the ground-truth snapshot,
   and every cross-check it ran against the repaired state agreed. *)
let assert_forensics ?tally ~at ~expect p =
  let module F = Telemetry.Forensics in
  (match tally with
   | Some t -> t.(class_ix expect) <- t.(class_ix expect) + 1
   | None -> ());
  let r = Plib.forensics p in
  if not (F.well_formed r) then
    Alcotest.fail
      (Printf.sprintf "kill at %d: malformed forensic report\n%s" at
         (F.render r));
  if r.F.f_class <> expect then
    Alcotest.fail
      (Printf.sprintf "kill at %d misclassified: truth %s, report %s\n%s" at
         (F.class_name expect) (F.class_name r.F.f_class) (F.render r));
  List.iter
    (fun (c : F.check) ->
      if not c.F.ck_ok then
        Alcotest.fail
          (Printf.sprintf "kill at %d: recovery cross-check %s failed: %s" at
             c.F.ck_name c.F.ck_detail))
    r.F.f_checks

(* ---- Workload A: full Plib stack, one victim + two survivors ------- *)

let cfg_a =
  { Store.default_config with hashpower = 7; lock_count = 8; lru_count = 2;
    stats_slots = 2 }

let fresh_a = ref 0

(* One deterministic run with the crash point armed at [at] (pass
   [max_int] to only count sync points). Returns (crashes, sync-point
   count, events fingerprint). [recover_anyway] additionally runs the
   recovery protocol when no crash fired — recovery over an untorn
   store must be conservative. *)
let run_a ?(recover_anyway = false) ?tally ~at () =
  incr fresh_a;
  let path = Printf.sprintf "/shm/crash-a-%d" !fresh_a in
  let owner = Process.make ~uid:1000 "bk-crash" in
  let p = Plib.create ~store_cfg:cfg_a ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Pkru.reset_thread ())
    (fun () ->
      Telemetry.Span.reset ();
      let vm = Vm.create ~sched_seed:1234 ~preempt_jitter:50 () in
      let victim_proc = Process.make ~uid:2000 "victim-proc" in
      let truth = ref None in
      Vm.set_crash_point vm
        ~filter:(fun n -> n = "victim")
        ~at
        ~on_crash:(fun _name now ->
          truth := Some (kill_site_truth ());
          Process.kill ~now_ns:now victim_proc)
        ();
      (* Host-side model of every acknowledged surviving-client write:
         an entry is recorded only after the library call returned. *)
      let model : (string, expect) Hashtbl.t = Hashtbl.create 64 in
      ignore
        (Vm.spawn vm ~name:"victim" (fun () ->
           Process.with_process victim_proc (fun () ->
             try
               for i = 0 to 63 do
                 let k = Printf.sprintf "v-%d" (i mod 11) in
                 if i = 0 then ignore (Plib.set p "v-ctr" "0");
                 match i mod 6 with
                 | 0 | 1 ->
                   ignore
                     (Plib.set p k (String.make (100 + (i * 37 mod 700)) 'v'))
                 | 2 -> ignore (Plib.get p k)
                 | 3 -> ignore (Plib.delete p k)
                 | 4 -> ignore (Plib.incr p "v-ctr" 1L)
                 | _ -> ignore (Plib.touch p k 1000)
               done
             with Process.Process_killed _ -> ())));
      let survivor idx =
        ignore
          (Vm.spawn vm ~name:(Printf.sprintf "surv%d" idx) (fun () ->
             let proc =
               Process.make ~uid:(3000 + idx) (Printf.sprintf "app%d" idx)
             in
             Process.with_process proc (fun () ->
               let ctr_key = Printf.sprintf "s%d-ctr" idx in
               (match Plib.set p ctr_key "0" with
                | Store.Stored -> Hashtbl.replace model ctr_key (Val "0")
                | _ -> ());
               (* Stop looping once the victim died: at most the one
                  in-flight call runs over the torn store, covered by
                  the robust-mutex handoff. *)
               let i = ref 0 in
               while !i < 20 && Vm.crashed vm = [] do
                 let k = Printf.sprintf "s%d-%d" idx (!i mod 5) in
                 (match !i mod 6 with
                  | 5 ->
                    ignore (Plib.delete p k);
                    Hashtbl.replace model k Absent
                  | 4 -> (
                    match Plib.incr p ctr_key 1L with
                    | Store.Counter v ->
                      Hashtbl.replace model ctr_key (Val (Int64.to_string v))
                    | _ -> ())
                  | _ ->
                    let v =
                      Printf.sprintf "s%d-%d-%s" idx !i
                        (String.make
                           (30 + (!i * 53 mod 400))
                           (Char.chr (Char.code 'a' + idx)))
                    in
                    (match Plib.set p k v with
                     | Store.Stored -> Hashtbl.replace model k (Val v)
                     | _ -> ()));
                 incr i
               done)))
      in
      survivor 0;
      survivor 1;
      Vm.run vm;
      let crashes = Vm.crashed vm in
      let n = Vm.sync_points_seen vm in
      let events = Vm.events_processed vm in
      (* Whatever the kill site, every completed trace — including the
         aborted flush from the dying thread — is a well-shaped tree. *)
      List.iter
        (fun tr ->
          match Telemetry.Span.well_formed tr with
          | Ok () -> ()
          | Error m ->
            Alcotest.fail (Printf.sprintf "span tree after kill at %d: %s" at m))
        (Telemetry.Span.traces ());
      (* Recovery and verification charge virtual time, so they run as
         the bookkeeping process inside a fresh simulation. *)
      let vm2 = Vm.create () in
      ignore
        (Vm.spawn vm2 ~name:"bookkeeper" (fun () ->
           Process.with_process owner (fun () ->
             let crashed = crashes <> [] in
             if crashed || recover_anyway then Plib.recover p;
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.check_invariants (Plib.store p);
               Ralloc.check_invariants (Plib.heap p));
             if crashed || recover_anyway then
               Shm.Region.kernel_mode (fun () ->
                 (* Idempotent second pass, to get our hands on the
                    live set for the conservation check. *)
                 let store = Plib.store p and heap = Plib.heap p in
                 let arena = Plib.arena p in
                 let live = Plib.Store.recover store in
                 (* Arena-resident items recover through the arena's
                    own sweep; the heap sees their whole regions via
                    the chain heads. *)
                 let arena_live, live =
                   List.partition (Mc_core.Bump_arena.owns arena) live
                 in
                 let live =
                   Mc_core.Bump_arena.recovery_roots arena @ live
                 in
                 let cell =
                   Ralloc.get_root heap Core.Plib_store.root_primary
                 in
                 let live = if cell = 0 then live else cell :: live in
                 (* The telemetry counter block is rooted too: it must
                    survive the sweep (SIFT), not be reclaimed. *)
                 let tblock =
                   Ralloc.get_root heap Core.Plib_store.root_telemetry
                 in
                 let live = if tblock = 0 then live else tblock :: live in
                 let acell =
                   Ralloc.get_root heap Core.Plib_store.root_arena
                 in
                 let live = if acell = 0 then live else acell :: live in
                 (* The flight-recorder ring is rooted and must survive
                    the sweep with its breadcrumbs intact — the
                    forensic story below reads them post-repair. *)
                 let fblock =
                   Ralloc.get_root heap Core.Plib_store.root_flight
                 in
                 let live = if fblock = 0 then live else fblock :: live in
                 Ralloc.recover heap ~live;
                 Mc_core.Bump_arena.recover arena ~live:arena_live;
                 assert_conserved heap live);
             (* The flight recorder's post-mortem agrees with the
                ground truth snapshotted at the kill instant. *)
             (match !truth with
              | Some expect -> assert_forensics ?tally ~at ~expect p
              | None -> ());
             (* Every acknowledged surviving write is still served. *)
             Hashtbl.iter
               (fun k e ->
                 match (e, Plib.get p k) with
                 | Val v, Some r when r.Store.value = v -> ()
                 | Val v, Some r ->
                   Alcotest.fail
                     (Printf.sprintf
                        "acked write %s corrupted: wanted %d bytes, got %d" k
                        (String.length v)
                        (String.length r.Store.value))
                 | Val _, None ->
                   Alcotest.fail ("acked write lost after recovery: " ^ k)
                 | Absent, None -> ()
                 | Absent, Some _ ->
                   Alcotest.fail ("acked delete resurrected: " ^ k))
               model;
             (* The surviving telemetry is internally consistent. *)
             assert_telemetry_consistent
               (Shm.Region.kernel_mode (fun () ->
                  Plib.Store.stats (Plib.store p)));
             (* And the store takes fresh traffic. *)
             if Plib.set p "post-crash" "recovered" <> Store.Stored then
               Alcotest.fail "store refuses writes after recovery";
             match Plib.get p "post-crash" with
             | Some r when r.Store.value = "recovered" -> ()
             | _ -> Alcotest.fail "post-recovery write not readable")));
      Vm.run vm2;
      (crashes, n, events))

let check_crashes = Alcotest.(check (list (pair string int)))

let tally_a = Array.make 4 0

let test_sweep_plib () =
  (* Count pass: index the kill sites without firing. *)
  let crashes, n, _ = run_a ~at:max_int () in
  check_crashes "count pass kills nobody" [] crashes;
  Alcotest.(check bool)
    (Printf.sprintf "workload exposes enough kill sites (%d)" n)
    true (n >= 130);
  let m = min 130 (cap ()) in
  for i = 0 to m - 1 do
    let k = i * n / m in
    let crashes, _, _ = run_a ~tally:tally_a ~at:k () in
    check_crashes
      (Printf.sprintf "kill fired at site %d/%d" k n)
      [ ("victim", k) ] crashes;
    incr sites_a
  done;
  print_tally "A" tally_a

let test_sweep_is_deterministic () =
  let c1, n1, e1 = run_a ~at:37 () in
  let c2, n2, e2 = run_a ~at:37 () in
  check_crashes "same kill site" c1 c2;
  Alcotest.(check int) "same sync-point count" n1 n2;
  Alcotest.(check int) "same event fingerprint" e1 e2

let test_crash_point_beyond_workload () =
  (* A crash point past the last sync point never fires; the workload
     and all checks complete untouched. *)
  let _, n, _ = run_a ~at:max_int () in
  let crashes, _, _ = run_a ~at:(n + 11) () in
  check_crashes "no kill fired" [] crashes

let test_recovery_is_conservative () =
  (* Running the full recovery protocol over an untorn store must not
     drop a single acknowledged write. *)
  let crashes, _, _ = run_a ~recover_anyway:true ~at:max_int () in
  check_crashes "no kill fired" [] crashes

(* ---- Workload B: direct store under memory pressure ---------------- *)

module BSt = Store.Make (SM) (RA) (Vm.Sync)

let cfg_b =
  { Store.default_config with hashpower = 6; lock_count = 4; lru_count = 2;
    stats_slots = 2; evict_batch = 2 }

(* Distinct 900-byte values overflow the 384 KiB heap, so sets race
   eviction; expired items race the reaper. Any of the three workers
   dies at site [at]. *)
let run_b ~at =
  let vm = Vm.create ~sched_seed:77 ~preempt_jitter:60 () in
  Vm.set_crash_point vm ~filter:(fun n -> n.[0] = 'w') ~at ();
  let reg = Shm.Region.create ~name:"crash-b" ~size:(384 lsl 10) ~pkey:0 () in
  let heap = Ralloc.create reg in
  let store_ref = ref None in
  ignore
    (Vm.spawn vm ~name:"main" (fun () ->
       let st =
         BSt.create ~mem:(SM.of_region reg) ~alloc:(RA.of_heap heap) cfg_b
       in
       store_ref := Some st;
       ignore (BSt.set st "ctr" "1");
       let worker t =
         Vm.Sync.spawn ~name:(Printf.sprintf "w%d" t) (fun () ->
           let i = ref 0 in
           while !i < 60 && Vm.crashed vm = [] do
             let k = Printf.sprintf "t%d-%d" t !i in
             let prev = Printf.sprintf "t%d-%d" t (max 0 (!i - 2)) in
             (match !i mod 7 with
              | 0 | 1 | 2 -> ignore (BSt.set st k (String.make 900 'x'))
              | 3 -> ignore (BSt.set st ~exptime:1 k "soon-dead")
              | 4 -> ignore (BSt.get st prev)
              | 5 -> ignore (BSt.delete st prev)
              | _ -> ignore (BSt.incr st "ctr" 1L));
             Vm.Sync.advance 40;
             incr i
           done)
       in
       let ws = List.init 3 worker in
       List.iter Vm.Sync.join ws;
       if Vm.crashed vm = [] then begin
         (* clean runs also exercise the reap + explicit-evict paths *)
         Vm.Sync.advance 1_500_000_000;
         ignore (BSt.reap_expired st);
         ignore (BSt.evict_some st ~hint:4);
         BSt.check_invariants st
       end));
  Vm.run vm;
  let crashes = Vm.crashed vm in
  let n = Vm.sync_points_seen vm in
  let st = Option.get !store_ref in
  let vm2 = Vm.create () in
  ignore
    (Vm.spawn vm2 ~name:"recovery" (fun () ->
       if crashes <> [] then
         Shm.Region.kernel_mode (fun () ->
           let live = BSt.recover st in
           Ralloc.recover heap ~live;
           assert_conserved heap live);
       Shm.Region.kernel_mode (fun () ->
         BSt.check_invariants st;
         Ralloc.check_invariants heap);
       if BSt.set st "post-crash" "ok" <> Store.Stored then
         Alcotest.fail "store refuses writes after recovery";
       match BSt.get st "post-crash" with
       | Some r when r.Store.value = "ok" -> ()
       | _ -> Alcotest.fail "post-recovery write not readable"));
  Vm.run vm2;
  (crashes, n)

let test_sweep_store_pressure () =
  let crashes, n = run_b ~at:max_int in
  check_crashes "count pass kills nobody" [] crashes;
  Alcotest.(check bool)
    (Printf.sprintf "workload exposes enough kill sites (%d)" n)
    true (n >= 90);
  let m = min 90 (cap ()) in
  for i = 0 to m - 1 do
    let k = i * n / m in
    let crashes, _ = run_b ~at:k in
    (match crashes with
     | [ (name, k') ] when k' = k && name.[0] = 'w' -> ()
     | _ ->
       Alcotest.fail
         (Printf.sprintf "expected exactly one worker kill at site %d/%d" k n));
    incr sites_b
  done

(* ---- Workload C: batched protected calls --------------------------- *)

(* The batch plane pushes many operations through one trampoline
   crossing, so a kill mid-batch leaves the library with a committed
   prefix and one possibly-torn op in flight. [Plib.batch]'s [on_op]
   callback is the application-level ack: the sweep records each acked
   (key, value) host-side and, after recovery, demands the acked
   prefix verbatim while unacked ops may be present-or-absent — but
   never torn. *)

let sites_c = ref 0

let fresh_c = ref 0

let batch_val i = Printf.sprintf "c%d-%s" i (String.make (60 + (i * 41 mod 300)) 'b')

let run_c ?tally ~at () =
  incr fresh_c;
  let path = Printf.sprintf "/shm/crash-c-%d" !fresh_c in
  let owner = Process.make ~uid:1000 "bk-crash-c" in
  let p = Plib.create ~store_cfg:cfg_a ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Pkru.reset_thread ())
    (fun () ->
      Telemetry.Span.reset ();
      let vm = Vm.create ~sched_seed:4321 ~preempt_jitter:50 () in
      let victim_proc = Process.make ~uid:2100 "victim-proc-c" in
      let truth = ref None in
      Vm.set_crash_point vm
        ~filter:(fun n -> n = "victim")
        ~at
        ~on_crash:(fun _name now ->
          truth := Some (kill_site_truth ());
          Process.kill ~now_ns:now victim_proc)
        ();
      (* Acked = the batch prefix whose per-op callbacks ran before the
         kill. Issued = everything handed to [batch]; an unacked issued
         key may or may not have landed. Keys are unique per op, so
         present ⇒ exactly the issued value. *)
      let acked : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let issued : (string, string) Hashtbl.t = Hashtbl.create 64 in
      ignore
        (Vm.spawn vm ~name:"victim" (fun () ->
           Process.with_process victim_proc (fun () ->
             try
               for b = 0 to 7 do
                 let keys = List.init 8 (fun j -> Printf.sprintf "c-%d" ((b * 8) + j)) in
                 let ops =
                   List.mapi
                     (fun j k ->
                       let v = batch_val ((b * 8) + j) in
                       Hashtbl.replace issued k v;
                       Plib.B_set
                         { b_key = k; b_data = v; b_flags = 0; b_exptime = 0 })
                     keys
                 in
                 ignore
                   (Plib.batch p ops
                      ~on_op:(fun j _r ->
                        let k = List.nth keys j in
                        Hashtbl.replace acked k (batch_val ((b * 8) + j))));
                 (* Read the batch back through the grouped-stripe path
                    so kill sites land inside [mget]'s stripe group
                    too. *)
                 ignore (Plib.mget p keys)
               done
             with Process.Process_killed _ -> ())));
      Vm.run vm;
      let crashes = Vm.crashed vm in
      let n = Vm.sync_points_seen vm in
      let events = Vm.events_processed vm in
      (* A kill mid-batch must still flush a well-shaped span tree:
         the crossing span with the committed prefix's exec children. *)
      List.iter
        (fun tr ->
          match Telemetry.Span.well_formed tr with
          | Ok () -> ()
          | Error m ->
            Alcotest.fail (Printf.sprintf "span tree after kill at %d: %s" at m))
        (Telemetry.Span.traces ());
      let vm2 = Vm.create () in
      ignore
        (Vm.spawn vm2 ~name:"bookkeeper" (fun () ->
           Process.with_process owner (fun () ->
             if crashes <> [] then Plib.recover p;
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.check_invariants (Plib.store p);
               Ralloc.check_invariants (Plib.heap p));
             if crashes <> [] then
               Shm.Region.kernel_mode (fun () ->
                 let store = Plib.store p and heap = Plib.heap p in
                 let arena = Plib.arena p in
                 let live = Plib.Store.recover store in
                 let arena_live, live =
                   List.partition (Mc_core.Bump_arena.owns arena) live
                 in
                 let live =
                   Mc_core.Bump_arena.recovery_roots arena @ live
                 in
                 let cell =
                   Ralloc.get_root heap Core.Plib_store.root_primary
                 in
                 let live = if cell = 0 then live else cell :: live in
                 let tblock =
                   Ralloc.get_root heap Core.Plib_store.root_telemetry
                 in
                 let live = if tblock = 0 then live else tblock :: live in
                 let acell =
                   Ralloc.get_root heap Core.Plib_store.root_arena
                 in
                 let live = if acell = 0 then live else acell :: live in
                 let fblock =
                   Ralloc.get_root heap Core.Plib_store.root_flight
                 in
                 let live = if fblock = 0 then live else fblock :: live in
                 Ralloc.recover heap ~live;
                 Mc_core.Bump_arena.recover arena ~live:arena_live;
                 assert_conserved heap live);
             (match !truth with
              | Some expect -> assert_forensics ?tally ~at ~expect p
              | None -> ());
             (* The acked prefix survives verbatim. *)
             Hashtbl.iter
               (fun k v ->
                 match Plib.get p k with
                 | Some r when r.Store.value = v -> ()
                 | Some r ->
                   Alcotest.fail
                     (Printf.sprintf
                        "acked batch op %s corrupted: wanted %d bytes, got %d"
                        k (String.length v)
                        (String.length r.Store.value))
                 | None ->
                   Alcotest.fail
                     ("acked batch op lost after recovery: " ^ k))
               acked;
             (* Unacked issued ops: present-or-absent, never torn. *)
             Hashtbl.iter
               (fun k v ->
                 if not (Hashtbl.mem acked k) then
                   match Plib.get p k with
                   | None -> ()
                   | Some r when r.Store.value = v -> ()
                   | Some r ->
                     Alcotest.fail
                       (Printf.sprintf
                          "unacked batch op %s torn: wanted %d bytes, got %d"
                          k (String.length v)
                          (String.length r.Store.value)))
               issued;
             (* The store takes fresh traffic after the batch kill. *)
             if Plib.set p "post-crash" "recovered" <> Store.Stored then
               Alcotest.fail "store refuses writes after recovery";
             match Plib.get p "post-crash" with
             | Some r when r.Store.value = "recovered" -> ()
             | _ -> Alcotest.fail "post-recovery write not readable")));
      Vm.run vm2;
      (crashes, n, events))

let tally_c = Array.make 4 0

let test_sweep_batched () =
  let crashes, n, _ = run_c ~at:max_int () in
  check_crashes "count pass kills nobody" [] crashes;
  Alcotest.(check bool)
    (Printf.sprintf "batched workload exposes enough kill sites (%d)" n)
    true (n >= 40);
  let m = min 40 (cap ()) in
  for i = 0 to m - 1 do
    let k = i * n / m in
    let crashes, _, _ = run_c ~tally:tally_c ~at:k () in
    check_crashes
      (Printf.sprintf "kill fired at site %d/%d" k n)
      [ ("victim", k) ] crashes;
    incr sites_c
  done;
  print_tally "C" tally_c

(* ---- Workload D: multi-tenant stack, tenant-A victim, B/C survive --- *)

(* Three live tenants; the victim dies at every sync point inside its
   tenant-scoped calls. Post-recovery the durable tenant state must be
   whole: registry membership/quotas/vkeys intact, every surviving
   tenant's acked write readable in its own namespace only, usage
   counters equal to a recomputation from the store, the vpkey slot
   table rebuilt from the registry (we wipe it before recovery to
   model the process loss), and quota eviction still tenant-local. *)

let cfg_d =
  { Store.default_config with hashpower = 7; lock_count = 8; lru_count = 8;
    stats_slots = 2 }

let fresh_d = ref 0

let run_d ?tally ~at () =
  incr fresh_d;
  let path = Printf.sprintf "/shm/crash-d-%d" !fresh_d in
  let owner = Process.make ~uid:1000 "bk-crash-d" in
  let p = Plib.create ~store_cfg:cfg_d ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Vpkey.reset ();
      Pku.Pkru.reset_thread ())
    (fun () ->
      Telemetry.Span.reset ();
      (* Library crossings charge virtual time, so tenant setup runs
         inside its own simulation before the kill-armed one. *)
      let sa = ref (-1) and sb = ref (-1) and sc = ref (-1) in
      let vm0 = Vm.create () in
      ignore
        (Vm.spawn vm0 ~name:"setup" (fun () ->
           Process.with_process owner (fun () ->
             sa :=
               Plib.create_tenant p ~name:"ta" ~uid:2001
                 ~byte_quota:(96 * 1024) ();
             sb :=
               Plib.create_tenant p ~name:"tb" ~uid:2002
                 ~byte_quota:(96 * 1024) ();
             sc :=
               Plib.create_tenant p ~name:"tc" ~uid:2003
                 ~byte_quota:(16 * 1024) ())));
      Vm.run vm0;
      let sa = !sa and sb = !sb and sc = !sc in
      let proc_a = Process.make ~uid:2001 "tenant-a" in
      let proc_b = Process.make ~uid:2002 "tenant-b" in
      let proc_c = Process.make ~uid:2003 "tenant-c" in
      let vm = Vm.create ~sched_seed:4321 ~preempt_jitter:50 () in
      let truth = ref None in
      Vm.set_crash_point vm
        ~filter:(fun n -> n = "victim")
        ~at
        ~on_crash:(fun _name now ->
          truth := Some (kill_site_truth ());
          Process.kill ~now_ns:now proc_a)
        ();
      (* Host-side models of the survivors' acked writes, keyed by the
         {e unscoped} tenant key. Key names are disjoint across
         tenants, so a cross-namespace hit can only be migration. *)
      let model_b : (string, expect) Hashtbl.t = Hashtbl.create 16 in
      let model_c : (string, expect) Hashtbl.t = Hashtbl.create 16 in
      ignore
        (Vm.spawn vm ~name:"victim" (fun () ->
           Process.with_process proc_a (fun () ->
             try
               for i = 0 to 47 do
                 let k = Printf.sprintf "a-%d" (i mod 7) in
                 match i mod 8 with
                 | 0 | 1 | 2 ->
                   ignore
                     (Plib.tenant_set p sa k
                        (String.make (60 + (i * 31 mod 300)) 'a'))
                 | 3 -> ignore (Plib.tenant_get p sa k)
                 | 4 -> ignore (Plib.tenant_delete p sa k)
                 | 5 -> ignore (Plib.tenant_touch p sa k 1000)
                 | 6 ->
                   ignore
                     (Plib.tenant_mget p sa [ "a-0"; "a-1"; "a-2" ])
                 | _ -> if i = 47 then ignore (Plib.tenant_flush p sa)
               done
             with Process.Process_killed _ -> ())));
      let survivor name proc slot prefix model =
        ignore
          (Vm.spawn vm ~name (fun () ->
             Process.with_process proc (fun () ->
               let i = ref 0 in
               while !i < 16 && Vm.crashed vm = [] do
                 let k = Printf.sprintf "%s-%d" prefix (!i mod 5) in
                 (match !i mod 5 with
                  | 4 ->
                    if Plib.tenant_delete p slot k then
                      Hashtbl.replace model k Absent
                  | 3 -> ignore (Plib.tenant_get p slot k)
                  | _ ->
                    let v =
                      Printf.sprintf "%s-%d-%s" prefix !i
                        (String.make (40 + (!i * 29 mod 200)) prefix.[0])
                    in
                    if Plib.tenant_set p slot k v = Store.Stored then
                      Hashtbl.replace model k (Val v));
                 incr i
               done)))
      in
      survivor "survB" proc_b sb "b" model_b;
      survivor "survC" proc_c sc "c" model_c;
      Vm.run vm;
      let crashes = Vm.crashed vm in
      let n = Vm.sync_points_seen vm in
      let events = Vm.events_processed vm in
      List.iter
        (fun tr ->
          match Telemetry.Span.well_formed tr with
          | Ok () -> ()
          | Error m ->
            Alcotest.fail
              (Printf.sprintf "span tree after kill at %d: %s" at m))
        (Telemetry.Span.traces ());
      let vm2 = Vm.create () in
      ignore
        (Vm.spawn vm2 ~name:"bookkeeper" (fun () ->
           Process.with_process owner (fun () ->
             if crashes <> [] then begin
               (* The slot table is process-volatile: model the dead
                  process by wiping it, so recovery must rebuild every
                  vkey from the persisted registry. *)
               Pku.Vpkey.reset ();
               Plib.recover p
             end;
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.check_invariants (Plib.store p);
               Ralloc.check_invariants (Plib.heap p));
             (match !truth with
              | Some expect -> assert_forensics ?tally ~at ~expect p
              | None -> ());
             Pku.Vpkey.check_invariants ();
             (* Registry: membership, uids, quotas, vkeys all stand. *)
             let reg = Plib.tenants p in
             Shm.Region.kernel_mode (fun () ->
               List.iter
                 (fun (name, slot, uid, bq) ->
                   (match Mc_core.Tenant.find reg name with
                    | Some s when s = slot -> ()
                    | _ ->
                      Alcotest.fail
                        ("tenant lost from the registry: " ^ name));
                   Alcotest.(check int) (name ^ " uid") uid
                     (Mc_core.Tenant.uid_of reg slot);
                   Alcotest.(check int) (name ^ " byte quota") bq
                     (Mc_core.Tenant.byte_quota reg slot);
                   let vk = Mc_core.Tenant.vkey_of reg slot in
                   Alcotest.(check bool) (name ^ " has a vkey") true (vk > 0);
                   Alcotest.(check int) (name ^ " vkey owner") uid
                     (Pku.Vpkey.owner_of vk))
                 [ ("ta", sa, 2001, 96 * 1024);
                   ("tb", sb, 2002, 96 * 1024);
                   ("tc", sc, 2003, 16 * 1024) ]);
             (* Every surviving acked write readable in its namespace;
                acked deletes stay deleted. *)
             let check_model proc slot model =
               Process.with_process proc (fun () ->
                 Hashtbl.iter
                   (fun k e ->
                     match (e, Plib.tenant_get p slot k) with
                     | Val v, Some r when r.Store.value = v -> ()
                     | Val _, Some _ ->
                       Alcotest.fail ("acked tenant write corrupted: " ^ k)
                     | Val _, None ->
                       Alcotest.fail ("acked tenant write lost: " ^ k)
                     | Absent, None -> ()
                     | Absent, Some _ ->
                       Alcotest.fail ("acked tenant delete resurrected: " ^ k))
                   model)
             in
             check_model proc_b sb model_b;
             check_model proc_c sc model_c;
             (* No cross-namespace migration: B's keys miss through
                C's scope and vice versa, and every store key still
                parses into a registered namespace. *)
             Process.with_process proc_c (fun () ->
               Hashtbl.iter
                 (fun k e ->
                   if e <> Absent && Plib.tenant_get p sc k <> None then
                     Alcotest.fail ("tenant key migrated b->c: " ^ k))
                 model_b);
             Process.with_process proc_b (fun () ->
               Hashtbl.iter
                 (fun k e ->
                   if e <> Absent && Plib.tenant_get p sb k <> None then
                     Alcotest.fail ("tenant key migrated c->b: " ^ k))
                 model_c);
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.fold_keys (Plib.store p)
                 (fun () key ~nbytes:_ ~exptime:_ ->
                   match Mc_core.Tenant.owner_slot_of_key reg key with
                   | Some _ -> ()
                   | None ->
                     Alcotest.fail
                       ("store key outside every tenant namespace: " ^ key))
                 ());
             (* Usage counters equal a recomputation from the store
                (they may have been mid-update at the kill). *)
             let recomputed = Array.make 3 (0, 0) in
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.fold_keys (Plib.store p)
                 (fun () key ~nbytes ~exptime:_ ->
                   match Mc_core.Tenant.owner_slot_of_key reg key with
                   | Some s when s < 3 ->
                     let b, i = recomputed.(s) in
                     recomputed.(s) <- (b + String.length key + nbytes, i + 1)
                   | _ -> ())
                 ());
             List.iteri
               (fun i slot ->
                 let b, it = Plib.tenant_usage p slot in
                 let rb, ri = recomputed.(i) in
                 Alcotest.(check (pair int int))
                   (Printf.sprintf "tenant %d usage = recomputed truth" i)
                   (rb, ri) (b, it))
               [ sa; sb; sc ];
             (* The rebuilt vkeys are bindable and fresh tenant traffic
                flows; a post-recovery quota flood in C evicts only C's
                own items. *)
             Process.with_process proc_b (fun () ->
               if Plib.tenant_set p sb "fresh" "post-crash-b" <> Store.Stored
               then Alcotest.fail "tenant refuses writes after recovery";
               match Plib.tenant_get p sb "fresh" with
               | Some r when r.Store.value = "post-crash-b" -> ()
               | _ -> Alcotest.fail "post-recovery tenant write unreadable");
             Process.with_process proc_c (fun () ->
               let blob = String.make 1000 'z' in
               for i = 0 to 39 do
                 ignore
                   (Plib.tenant_set p sc (Printf.sprintf "flood-%d" i) blob)
               done;
               let cb, _ = Plib.tenant_usage p sc in
               Alcotest.(check bool) "flood capped by C's quota" true
                 (cb <= 16 * 1024));
             check_model proc_b sb model_b)));
      Vm.run vm2;
      (crashes, n, events))

let sites_d = ref 0

let tally_d = Array.make 4 0

let test_sweep_tenants () =
  let crashes, n, _ = run_d ~at:max_int () in
  check_crashes "count pass kills nobody" [] crashes;
  Alcotest.(check bool)
    (Printf.sprintf "tenant workload exposes enough kill sites (%d)" n)
    true (n >= 60);
  let m = min 40 (cap ()) in
  for i = 0 to m - 1 do
    let k = i * n / m in
    let crashes, _, _ = run_d ~tally:tally_d ~at:k () in
    check_crashes
      (Printf.sprintf "kill fired at site %d/%d" k n)
      [ ("victim", k) ] crashes;
    incr sites_d
  done;
  print_tally "D" tally_d

(* ---- Workload E: shared-ring transport, client victim mid-stream --- *)

(* The victim talks to a ring-mode server and dies at every sync point
   of its submit/await path — including mid-[Ring.produce] with only
   some fragments of a multi-slot message published, and mid-await with
   completions it never consumed. The sweep asserts the ring transport's
   crash contract: every write whose reply the client had parsed out of
   its completion ring ("acked") is still readable with the exact value
   after recovery; a submitted-but-unacked write is present-or-absent
   but never torn (the value, when there, is byte-exact — a half-
   published entry is truncated by [Ring.recover], not executed); and a
   fresh ring-mode server serves traffic over the recovered heap. *)

let cfg_e =
  { Store.default_config with hashpower = 7; lock_count = 8; lru_count = 2;
    stats_slots = 2 }

let fresh_e = ref 0

let run_e ?tally ~at () =
  incr fresh_e;
  let path = Printf.sprintf "/shm/crash-e-%d" !fresh_e in
  let owner = Process.make ~uid:1000 "bk-crash-e" in
  let p = Plib.create ~store_cfg:cfg_e ~path ~size:(2 lsl 20) ~owner () in
  Fun.protect
    ~finally:(fun () ->
      Simos.Sim_fs.unlink path;
      Hodor.Library.release (Plib.library p);
      Pku.Pkru.reset_thread ())
    (fun () ->
      Telemetry.Span.reset ();
      let vm = Vm.create ~sched_seed:2718 ~preempt_jitter:50 () in
      let victim_proc = Process.make ~uid:2100 "ring-victim" in
      let truth = ref None in
      Vm.set_crash_point vm
        ~filter:(fun n -> n = "victim")
        ~at
        ~on_crash:(fun _name now ->
          truth := Some (kill_site_truth ());
          Process.kill ~now_ns:now victim_proc)
        ();
      (* [acked k] = the reply was parsed from the completion ring
         before the kill; [submitted k] = the op entered (possibly only
         partially) the submission ring. Every op uses a fresh key, so
         the legal post-recovery states of a key are exactly {its acked
         value} or {its submitted value, absent}. Values span multiple
         ring slots so a mid-publish kill really does leave a torn
         multi-fragment entry behind. *)
      let acked : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let submitted : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let srv_name = Printf.sprintf "crash-e-srv-%d" !fresh_e in
      let victim_done = ref false in
      ignore
        (Vm.spawn vm ~name:"main" (fun () ->
           let srv =
             Plib.serve_remote
               ~cfg:
                 { Mc_server.Server.default_config with
                   workers = 1; store = cfg_e }
               ~rings:Mc_server.Server.default_ring_config p ~name:srv_name
           in
           let victim =
             Vm.Sync.spawn ~name:"victim" (fun () ->
               (try
                  Process.with_process victim_proc (fun () ->
                    try
                      let conn = VCl.Sock.connect ~name:srv_name () in
                      for i = 0 to 39 do
                        let k = Printf.sprintf "e-%d" i in
                        let v = String.make (60 + (i * 97 mod 540)) 'e' in
                        Hashtbl.replace submitted k v;
                        (match VCl.Sock.set conn k v with
                         | Store.Stored -> Hashtbl.replace acked k v
                         | _ -> ());
                        if i mod 7 = 3 then ignore (VCl.Sock.get conn k)
                      done
                    with VCl.Sock.T.Connection_closed -> ())
                with Process.Process_killed _ -> ());
               victim_done := true)
           in
           ignore victim;
           let survivor =
             Vm.Sync.spawn ~name:"surv" (fun () ->
               let proc = Process.make ~uid:3100 "ring-app" in
               Process.with_process proc (fun () ->
                 let conn = VCl.Sock.connect ~name:srv_name () in
                 let i = ref 0 in
                 while !i < 16 && Vm.crashed vm = [] do
                   let k = Printf.sprintf "s-%d" !i in
                   let v =
                     Printf.sprintf "s-%d-%s" !i
                       (String.make (40 + (!i * 53 mod 300)) 's')
                   in
                   (match VCl.Sock.set conn k v with
                    | Store.Stored -> Hashtbl.replace acked k v
                    | _ -> ());
                   incr i
                 done))
           in
           Vm.Sync.join survivor;
           (* Wait for the victim to finish or die — a killed thread's
              continuation is dropped, so it cannot be joined. *)
           while not !victim_done && Vm.crashed vm = [] do
             Vm.Sync.sleep_ns 500
           done;
           (* Let the worker run out any in-flight drain. *)
           Vm.Sync.advance 100_000;
           Plib.stop_remote srv));
      Vm.run vm;
      let crashes = Vm.crashed vm in
      let n = Vm.sync_points_seen vm in
      let events = Vm.events_processed vm in
      List.iter
        (fun tr ->
          match Telemetry.Span.well_formed tr with
          | Ok () -> ()
          | Error m ->
            Alcotest.fail
              (Printf.sprintf "span tree after kill at %d: %s" at m))
        (Telemetry.Span.traces ());
      let vm2 = Vm.create () in
      ignore
        (Vm.spawn vm2 ~name:"bookkeeper" (fun () ->
           Process.with_process owner (fun () ->
             if crashes <> [] then Plib.recover p;
             Shm.Region.kernel_mode (fun () ->
               Plib.Store.check_invariants (Plib.store p);
               Ralloc.check_invariants (Plib.heap p));
             (match !truth with
              | Some expect -> assert_forensics ?tally ~at ~expect p
              | None -> ());
             (* Acked writes are durable and byte-exact. *)
             Hashtbl.iter
               (fun k v ->
                 match Plib.get p k with
                 | Some r when r.Store.value = v -> ()
                 | Some r ->
                   Alcotest.fail
                     (Printf.sprintf
                        "acked ring write %s torn: wanted %d bytes, got %d" k
                        (String.length v)
                        (String.length r.Store.value))
                 | None ->
                   Alcotest.fail ("acked ring write lost after recovery: " ^ k))
               acked;
             (* Submitted-but-unacked: present-or-absent, never torn. *)
             Hashtbl.iter
               (fun k v ->
                 if not (Hashtbl.mem acked k) then
                   match Plib.get p k with
                   | None -> ()
                   | Some r when r.Store.value = v -> ()
                   | Some r ->
                     Alcotest.fail
                       (Printf.sprintf
                          "unacked ring write %s torn: %d bytes of %d" k
                          (String.length r.Store.value)
                          (String.length v)))
               submitted;
             (* A fresh ring-mode server runs over the recovered heap. *)
             let srv2 =
               Plib.serve_remote
                 ~cfg:
                   { Mc_server.Server.default_config with
                     workers = 1; store = cfg_e }
                 ~rings:Mc_server.Server.default_ring_config p
                 ~name:(srv_name ^ "-post")
             in
             let conn = VCl.Sock.connect ~name:(srv_name ^ "-post") () in
             if VCl.Sock.set conn "post-crash" "recovered" <> Store.Stored then
               Alcotest.fail "ring server refuses writes after recovery";
             (match VCl.Sock.get conn "post-crash" with
              | Some r when r.Store.value = "recovered" -> ()
              | _ -> Alcotest.fail "post-recovery ring write not readable");
             Plib.stop_remote srv2)));
      Vm.run vm2;
      (crashes, n, events))

let sites_e = ref 0

let tally_e = Array.make 4 0

let test_sweep_rings () =
  let crashes, n, _ = run_e ~at:max_int () in
  check_crashes "count pass kills nobody" [] crashes;
  Alcotest.(check bool)
    (Printf.sprintf "ring workload exposes enough kill sites (%d)" n)
    true (n >= 40);
  let m = min 40 (cap ()) in
  for i = 0 to m - 1 do
    let k = i * n / m in
    let crashes, _, _ = run_e ~tally:tally_e ~at:k () in
    check_crashes
      (Printf.sprintf "kill fired at site %d/%d" k n)
      [ ("victim", k) ] crashes;
    incr sites_e
  done;
  print_tally "E" tally_e

(* ---- Publish-last protocol is load-bearing (red/green) ------------- *)

(* A tearable info breadcrumb exposes its internal sync point — the
   window between payload write and commit stamp — as a kill site.
   Under the shipping publish-last ordering, no kill site can leave a
   head record that claims publication (sequence word stamped) but
   fails validation; with the ordering reverted, the same sweep finds
   exactly that torn head. The protocol, not luck, keeps the
   post-mortem story readable. *)
let torn_after ~publish_last ~at =
  Telemetry.Flight.reset_backend ();
  Telemetry.Flight.reset ();
  Telemetry.Flight.publish_last_enabled := publish_last;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Flight.publish_last_enabled := true;
      Telemetry.Flight.reset ())
    (fun () ->
      let vm = Vm.create () in
      Vm.set_crash_point vm ~filter:(fun n -> n = "w") ~at ();
      ignore
        (Vm.spawn vm ~name:"w" (fun () ->
           Telemetry.Flight.record Telemetry.Flight.Op_dispatch ~a:3 ~b:1 ~c:7;
           Telemetry.Flight.record Telemetry.Flight.Tenant_scope ~a:2;
           Vm.Sync.advance 10));
      Vm.run vm;
      let n = Vm.sync_points_seen vm in
      (Vm.crashed vm, n, Telemetry.Flight.torn_lanes () <> []))

let test_publish_last_protocol () =
  let _, n, _ = torn_after ~publish_last:true ~at:max_int in
  Alcotest.(check bool)
    (Printf.sprintf "tearable records expose kill sites (%d)" n)
    true (n >= 2);
  (* Green: the shipping ordering never leaves a torn head. *)
  for k = 0 to n - 1 do
    let crashes, _, torn = torn_after ~publish_last:true ~at:k in
    if crashes <> [] && torn then
      Alcotest.fail
        (Printf.sprintf "publish-last left a torn head record at site %d" k)
  done;
  (* Red: the reverted (sequence-first) ordering tears at some site. *)
  let torn_somewhere = ref false in
  for k = 0 to n - 1 do
    let crashes, _, torn = torn_after ~publish_last:false ~at:k in
    if crashes <> [] && torn then torn_somewhere := true
  done;
  Alcotest.(check bool)
    "seq-first ordering leaves a torn head at some kill site" true
    !torn_somewhere

(* ---- Coverage floor (must run after the sweeps) -------------------- *)

let test_coverage () =
  if cap () = max_int then
    Alcotest.(check bool)
      (Printf.sprintf "sweeps killed at %d + %d + %d + %d + %d distinct sites"
         !sites_a !sites_b !sites_c !sites_d !sites_e)
      true
      (!sites_a + !sites_b + !sites_c + !sites_d + !sites_e >= 320)

let () =
  Alcotest.run "crash"
    [ ( "sweep",
        [ Alcotest.test_case "plib stack, victim + survivors" `Quick
            test_sweep_plib;
          Alcotest.test_case "direct store under pressure" `Quick
            test_sweep_store_pressure;
          Alcotest.test_case "batched protected calls" `Quick
            test_sweep_batched;
          Alcotest.test_case "multi-tenant stack, tenant victim" `Quick
            test_sweep_tenants;
          Alcotest.test_case "ring transport, client victim" `Quick
            test_sweep_rings ] );
      ( "edges",
        [ Alcotest.test_case "sweep is deterministic" `Quick
            test_sweep_is_deterministic;
          Alcotest.test_case "crash point beyond workload" `Quick
            test_crash_point_beyond_workload;
          Alcotest.test_case "recovery is conservative" `Quick
            test_recovery_is_conservative;
          Alcotest.test_case "publish-last protocol red/green" `Quick
            test_publish_last_protocol ] );
      ( "coverage",
        [ Alcotest.test_case "site floor" `Quick test_coverage ] ) ]
